#!/bin/sh
# Chaos gauntlet for the campaign daemon, used by CI and runnable
# locally:
#
#   1. run one solo `szc campaign` per tenant as the byte-identity
#      reference (fixed seeds, run faults on);
#   2. start szcd, submit the same three campaigns from three tenants
#      concurrently — run faults AND heavy storage faults armed, so
#      checkpoint writes are being torn/bit-flipped while the pool is
#      shared;
#   3. SIGKILL the daemon mid-flight; the clients keep retrying with
#      backoff;
#   4. restart szcd on the same spool: it fsck-repairs whatever the
#      crash left, resumes every interrupted campaign from its
#      checkpoint (storage faults disarmed, as `--resume` after a
#      crash does), and the waiting clients re-attach and follow each
#      campaign to exit 0;
#   5. every tenant's CSV, checkpoint and ledger must be byte-identical
#      (`cmp`) to its solo reference;
#   6. SIGTERM the daemon and demand a clean drain (exit 0).
#
# The ops plane rides along the whole way: the daemon runs with
# --oplog and --ops-export, `szc remote top --once --raw` scrapes a
# stats snapshot mid-gauntlet, the Prometheus textfile is checked to
# parse, and after the SIGKILL the oplog must fsck clean or
# salvageable (`szc fsck --repair` brings it back to exit 0).
#
# Usage: scripts/check_daemon.sh [OUTDIR]  (default: ./daemon-artifacts)
# Exits nonzero on any divergence.
set -eu

outdir=${1:-daemon-artifacts}
mkdir -p "$outdir"

dune build bin/szc.exe bin/szcd.exe
SZC=_build/default/bin/szc.exe
SZCD=_build/default/bin/szcd.exe

sock="$outdir/szcd.sock"
spool="$outdir/spool"
rm -rf "$spool" "$sock"

runs=40
common="bzip2 --runs $runs --scale 0.05 --faults light --quiet"

echo "== solo reference campaigns, one per tenant"
for s in 1 2 3; do
  seed=$((100 + s))
  $SZC campaign $common --seed "$seed" \
    --csv "$outdir/solo-t$s.csv" \
    --checkpoint "$outdir/solo-t$s.ck" \
    --ledger "$outdir/solo-t$s.ledger"
done

# Sets $dpid. Runs in the current shell (no command substitution), so
# the daemon stays a direct child and `wait $dpid` can collect its
# drain status.
start_daemon() {
  $SZCD --socket "$sock" --spool "$spool" --slots 4 --quantum 2 --verbose \
    --oplog "$outdir/ops.log" --ops-export "$outdir/ops.prom" \
    >>"$outdir/szcd.log" 2>&1 &
  dpid=$!
}

# Every non-comment line of a Prometheus textfile is
# `name{labels} value` or `name value`; anything else is a parse
# error. Checked with awk so CI needs no scrape client.
check_prometheus() {
  awk '
    /^#/ || /^$/ { next }
    !/^[A-Za-z_][A-Za-z0-9_]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ {
      print "bad exposition line: " $0; bad = 1
    }
    END { exit bad }
  ' "$1"
}

echo "== szcd up, three tenants submit concurrently (storage faults armed)"
start_daemon

cpids=""
for s in 1 2 3; do
  seed=$((100 + s))
  $SZC remote submit "t$s" "c$s" $common --seed "$seed" --ledger \
    --storage-faults heavy --storage-seed "$s" \
    --socket "$sock" --deadline 300 --retry-seed "$s" --wait \
    >"$outdir/client-t$s.log" 2>&1 &
  cpids="$cpids $!"
done

echo "== waiting for the first checkpoint write, then SIGKILLing szcd"
i=0
while [ -z "$(find "$spool" -name 'checkpoint.ck*' 2>/dev/null | head -1)" ] \
  && [ "$i" -lt 300 ]; do
  sleep 0.1
  i=$((i + 1))
done

echo "== mid-gauntlet ops scrape: szc remote top --once --raw"
$SZC remote top --once --raw --socket "$sock" --deadline 30 \
  >"$outdir/top.raw" 2>&1
grep -q '^hist loop.tick_us count' "$outdir/top.raw"
grep -q '^counter wire.rx.submit ' "$outdir/top.raw"
grep -q '^counter admit.ok ' "$outdir/top.raw"
grep -q '^tenant t1 ' "$outdir/top.raw"
echo "stats snapshot carries tick histogram, wire/admit counters, tenant rows"

# The exporter rewrites the file about once a second; the very first
# write can predate the first tick sample, so wait for a snapshot
# that already carries the histogram.
i=0
until grep -qs '^# TYPE szcd_loop_tick_us summary' "$outdir/ops.prom"; do
  if [ "$i" -ge 100 ]; then
    echo "exporter never published the tick histogram"
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
check_prometheus "$outdir/ops.prom"
echo "exporter textfile parses as Prometheus exposition"

sleep 0.2
if kill -9 "$dpid" 2>/dev/null; then
  echo "SIGKILLed szcd pid $dpid mid-campaign"
else
  echo "WARNING: szcd exited before the kill landed (still checking recovery)"
fi
wait "$dpid" 2>/dev/null || true
# Runners orphaned by the daemon's death exit at their next batch
# boundary; the restarted daemon also SIGKILLs any that linger.

echo "== oplog survives the SIGKILL: fsck clean or salvageable"
code=0
$SZC fsck "$outdir/ops.log" || code=$?
case "$code" in
  0) echo "oplog intact across SIGKILL" ;;
  2)
    echo "oplog torn by SIGKILL; repairing"
    # --repair reports the salvage it performed (exit 2); the re-check
    # must then come back fully clean.
    $SZC fsck --repair "$outdir/ops.log" || [ "$?" -eq 2 ]
    $SZC fsck "$outdir/ops.log"
    echo "oplog repaired to a clean container"
    ;;
  *)
    echo "oplog unrecoverable after SIGKILL (fsck exit $code)"
    exit 1
    ;;
esac

echo "== restarting szcd on the crashed spool; clients retry and re-attach"
start_daemon

fail=0
for cpid in $cpids; do
  code=0
  wait "$cpid" || code=$?
  if [ "$code" -ne 0 ]; then
    echo "client pid $cpid exited $code (wanted 0)"
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "--- client logs ---"
  cat "$outdir"/client-t*.log
  exit 1
fi
echo "all three clients converged to exit 0 across the daemon crash"

echo "== per-tenant artifacts byte-identical to the solo references"
for s in 1 2 3; do
  dir="$spool/t$s/c$s"
  cmp "$outdir/solo-t$s.csv" "$dir/out.csv"
  echo "t$s csv: byte-identical to solo"
  cmp "$outdir/solo-t$s.ck" "$dir/checkpoint.ck"
  echo "t$s checkpoint: byte-identical to solo"
  cmp "$outdir/solo-t$s.ledger" "$dir/ledger"
  echo "t$s ledger: byte-identical to solo"
done

echo "== SIGTERM drains the daemon to exit 0"
kill -TERM "$dpid"
code=0
wait "$dpid" || code=$?
if [ "$code" -ne 0 ]; then
  echo "szcd drain exited $code (wanted 0)"
  exit 1
fi

echo "== after the drain: oplog fscks clean, final export parses"
$SZC fsck "$outdir/ops.log"
grep -q '"ev":"daemon.drained"' "$outdir/ops.log"
check_prometheus "$outdir/ops.prom"

echo "daemon chaos gauntlet: OK"
