#!/bin/sh
# Self-timing perf harness driver, used by CI and runnable locally:
#
#   1. build and run bench/perf.exe over the workload matrix, emitting
#      BENCH_9.json at the repo root and appending one history-ledger
#      entry per workload (seconds per simulated run);
#   2. dog-food gate: point `szc regress` — the same Cohen's-d
#      confidence-interval machinery that judges simulated campaigns —
#      at the harness's own ledger, per workload label. The latest
#      entry is compared against the oldest recorded baseline with the
#      same label. A generous --min-effect absorbs wall-clock noise
#      (shared CI runners drift); only a large confirmed slowdown
#      fails. Exit 3 (no baseline yet / too few repeats) is not a
#      failure: the first recorded run IS the baseline.
#
# Usage: scripts/bench_perf.sh
# Knobs: OUT, LEDGER, PERF_RUNS, PERF_REPEATS, PERF_WARMUP,
#        PERF_MATRIX (full|quick), PERF_MIN_EFFECT, STZ_SCALE.
set -eu

cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_9.json}
LEDGER=${LEDGER:-bench/perf.ledger}
PERF_RUNS=${PERF_RUNS:-12}
PERF_REPEATS=${PERF_REPEATS:-5}
PERF_WARMUP=${PERF_WARMUP:-1}
PERF_MATRIX=${PERF_MATRIX:-full}
# Generous on purpose: repeats on a quiet machine have tiny sd, so
# even a few percent of CPU-frequency or cache drift shows up as
# d ~ 1-3. A real interpreter regression (e.g. reverting the paged
# memory store) measures d > 40 on this matrix.
PERF_MIN_EFFECT=${PERF_MIN_EFFECT:-10.0}

dune build bench/perf.exe bin/szc.exe
PERF=_build/default/bench/perf.exe
SZC=_build/default/bin/szc.exe

echo "== measuring (matrix=$PERF_MATRIX, $PERF_REPEATS repeats x $PERF_RUNS runs, warmup $PERF_WARMUP)"
"$PERF" --out "$OUT" --ledger "$LEDGER" --runs "$PERF_RUNS" \
  --repeats "$PERF_REPEATS" --warmup "$PERF_WARMUP" --matrix "$PERF_MATRIX"

case "$PERF_MATRIX" in
quick) labels="astar mcf sjeng" ;;
*) labels="astar hmmer libquantum mcf sjeng" ;;
esac

echo "== dog-food regression gate (min-effect d=$PERF_MIN_EFFECT)"
status=0
for w in $labels; do
  printf '%-12s ' "perf:$w"
  rc=0
  "$SZC" regress "$LEDGER" --label "perf:$w" --min-n 2 \
    --min-effect "$PERF_MIN_EFFECT" || rc=$?
  case $rc in
  0) ;;
  3) echo "   (no baseline yet -- this run becomes it)" ;;
  2) status=2 ;;
  *) exit "$rc" ;;
  esac
done

if [ "$status" -ne 0 ]; then
  echo "FAIL: simulator performance regressed beyond d=$PERF_MIN_EFFECT"
  exit "$status"
fi
echo "OK: $OUT written, ledger $LEDGER gated clean"
