#!/bin/sh
# Layout-attribution acceptance gauntlet, used by CI and runnable
# locally:
#
#   1. planted conflict: `szc explain conflict` must attribute the
#      cycle variance to layout (eta2 >= 0.5) and rank the planted
#      wrapper <-> rider pair #1 in the L1i cache, while the
#      conflict-free control stays layout-indifferent (eta2 < 0.1) —
#      the profiler finds what was planted and nothing else;
#   2. determinism: the same explain invocation under --jobs 1 and
#      --jobs 4 must write byte-identical CSV and trace reports;
#   3. SIGKILL + --resume: a layout sweep killed mid-campaign and
#      resumed must finish with a ledger (and reproducer set)
#      byte-identical to an uninterrupted run's;
#   4. fsck: a bit-flipped sweep ledger is detected as salvageable and
#      `--repair` leaves a valid ledger.
#
# Usage: scripts/check_attrib.sh [OUTDIR]   (default: ./attrib-artifacts)
# Knobs: SWEEP_COUNT (default 150), SWEEP_SEED (default 5),
#        JOBS (default 4).
# Exits nonzero on any divergence.
set -eu

outdir=${1:-attrib-artifacts}
SWEEP_COUNT=${SWEEP_COUNT:-150}
SWEEP_SEED=${SWEEP_SEED:-5}
JOBS=${JOBS:-4}
mkdir -p "$outdir"

dune build bin/szc.exe
SZC=_build/default/bin/szc.exe

# First stdout line of `szc explain` is the decomposition:
#   layout_eta2 X partial_eta2 X workload_share X residual_share X
eta2_of() {
  awk 'NR == 1 { print $2 }' "$1"
}

echo "== planted conflict is attributed; control is layout-indifferent"
$SZC explain conflict --seeds 8 --variants 4 --jobs "$JOBS" \
  >"$outdir/conflict.txt"
eta2=$(eta2_of "$outdir/conflict.txt")
if ! awk "BEGIN { exit !($eta2 >= 0.5) }"; then
  echo "explain conflict: layout_eta2 $eta2 (want >= 0.5)"
  cat "$outdir/conflict.txt"
  exit 1
fi
top=$(awk '$1 == "1" { print $2, $3, $4, $5 }' "$outdir/conflict.txt")
if [ "$top" != "l1i wrapper <-> rider" ]; then
  echo "explain conflict: top-ranked pair is '$top' (want the planted" \
    "'l1i wrapper <-> rider')"
  cat "$outdir/conflict.txt"
  exit 1
fi
$SZC explain conflict-control --seeds 8 --variants 4 --jobs "$JOBS" \
  >"$outdir/control.txt"
ceta2=$(eta2_of "$outdir/control.txt")
if ! awk "BEGIN { exit !($ceta2 < 0.1) }"; then
  echo "explain conflict-control: layout_eta2 $ceta2 (want < 0.1)"
  cat "$outdir/control.txt"
  exit 1
fi
echo "explain: conflict eta2=$eta2 ranks the planted pair #1," \
  "control eta2=$ceta2"

echo "== determinism: explain --jobs 1 vs --jobs $JOBS byte-identical"
$SZC explain conflict --seeds 6 --variants 3 --jobs 1 \
  --csv "$outdir/det1.csv" --trace "$outdir/det1.json" >/dev/null
$SZC explain conflict --seeds 6 --variants 3 --jobs "$JOBS" \
  --csv "$outdir/detN.csv" --trace "$outdir/detN.json" >/dev/null
cmp "$outdir/det1.csv" "$outdir/detN.csv"
cmp "$outdir/det1.json" "$outdir/detN.json"
echo "explain reports: byte-identical across worker counts"

echo "== SIGKILL + --resume converges to the identical sweep ledger"
rm -rf "$outdir/kill"
$SZC layout sweep --seed "$SWEEP_SEED" --count "$SWEEP_COUNT" --jobs 2 \
  --threshold 0.02 --shrink-budget 30 --out "$outdir/kill" --quiet \
  >/dev/null &
pid=$!
# Let a prefix land, then kill mid-campaign. If the campaign wins the
# race and finishes, --resume over a complete ledger must still be a
# byte-preserving no-op, so the cmp below stays meaningful.
i=0
while [ ! -s "$outdir/kill/sweep.log" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
sleep 0.3
if kill -9 "$pid" 2>/dev/null; then
  echo "SIGKILLed pid $pid mid-sweep"
else
  echo "WARNING: sweep finished before the kill landed (still checking resume)"
fi
wait "$pid" 2>/dev/null || true
$SZC layout sweep --seed "$SWEEP_SEED" --count "$SWEEP_COUNT" --jobs 2 \
  --threshold 0.02 --shrink-budget 30 --out "$outdir/kill" --resume --quiet \
  >/dev/null
rm -rf "$outdir/full"
$SZC layout sweep --seed "$SWEEP_SEED" --count "$SWEEP_COUNT" --jobs 2 \
  --threshold 0.02 --shrink-budget 30 --out "$outdir/full" --quiet >/dev/null
cmp "$outdir/kill/sweep.log" "$outdir/full/sweep.log"
(cd "$outdir/kill" && ls repro-*.szt 2>/dev/null || true) >"$outdir/kill.repros"
(cd "$outdir/full" && ls repro-*.szt 2>/dev/null || true) >"$outdir/full.repros"
cmp "$outdir/kill.repros" "$outdir/full.repros"
while IFS= read -r f; do
  cmp "$outdir/kill/$f" "$outdir/full/$f"
  $SZC exec "$outdir/full/$f" >/dev/null
done <"$outdir/full.repros"
echo "sweep ledger + reproducers: byte-identical after SIGKILL + --resume"

echo "== fsck detects sweep-ledger corruption and --repair salvages"
cp "$outdir/full/sweep.log" "$outdir/flipped.log"
size=$(wc -c <"$outdir/flipped.log")
# Flip one byte two-thirds of the way in (inside a case record).
off=$((size * 2 / 3))
printf '\377' | dd of="$outdir/flipped.log" bs=1 seek="$off" conv=notrunc \
  2>/dev/null
code=0
$SZC fsck "$outdir/flipped.log" >/dev/null || code=$?
if [ "$code" -ne 2 ]; then
  echo "fsck: corrupt sweep ledger not flagged salvageable (exit $code, want 2)"
  exit 1
fi
$SZC fsck --repair "$outdir/flipped.log" >/dev/null || true
$SZC fsck "$outdir/flipped.log" >/dev/null
echo "fsck: bit-flip detected, --repair leaves a valid ledger"

echo "attrib gauntlet: OK"
