#!/bin/sh
# Crash-recovery acceptance check, used by CI and runnable locally:
#
#   1. run a fixed-seed campaign uninterrupted, serially and under
#      --jobs 4, and demand byte-identical CSV and checkpoint;
#   2. run the same campaign with heavy storage-fault injection
#      (checkpoint writes torn / bit-flipped / shortened / renames
#      dropped) and SIGKILL it mid-flight;
#   3. diagnose and repair whatever the crash left with `szc fsck`;
#   4. resume with storage faults off and demand the final CSV and
#      checkpoint are byte-identical to the uninterrupted run's;
#   5. verify artifact integrity (`szc fsck`, `szc check-trace`).
#
# Usage: scripts/check_recovery.sh [OUTDIR]  (default: ./recovery-artifacts)
# Exits nonzero on any divergence.
set -eu

outdir=${1:-recovery-artifacts}
mkdir -p "$outdir"

dune build bin/szc.exe
SZC=_build/default/bin/szc.exe

common="campaign bzip2 --runs 30 --seed 11 --scale 0.05 --faults light --quiet"

echo "== reference campaign, --jobs 1"
$SZC $common --csv "$outdir/ref1.csv" --checkpoint "$outdir/ref1.ck"
echo "== reference campaign, --jobs 4"
$SZC $common --jobs 4 --csv "$outdir/ref4.csv" --checkpoint "$outdir/ref4.ck"

echo "== uninterrupted byte identity across worker counts"
cmp "$outdir/ref1.csv" "$outdir/ref4.csv"
echo "csv: byte-identical across worker counts"
cmp "$outdir/ref1.ck" "$outdir/ref4.ck"
echo "checkpoint: byte-identical across worker counts"

echo "== storage-faulted campaign, SIGKILLed mid-flight"
ck="$outdir/crash.ck"
rm -f "$ck" "$ck.tmp" "$ck.corrupt" "$outdir/crash.csv"
$SZC $common --checkpoint "$ck" --storage-faults heavy --storage-seed 5 &
pid=$!
# Wait for the first checkpoint write (the file, or a temp file left
# by an injected dropped rename), then pull the plug.
i=0
while [ ! -e "$ck" ] && [ ! -e "$ck.tmp" ] && [ "$i" -lt 200 ]; do
  sleep 0.1
  i=$((i + 1))
done
sleep 0.3
if kill -9 "$pid" 2>/dev/null; then
  echo "SIGKILLed pid $pid mid-campaign"
else
  echo "WARNING: campaign finished before the kill landed (still checking recovery)"
fi
wait "$pid" 2>/dev/null || true

echo "== fsck the crash site"
code=0
$SZC fsck --repair "$ck" || code=$?
if [ "$code" -ne 0 ] && [ "$code" -ne 2 ]; then
  echo "fsck: checkpoint unrecoverable (exit $code)"
  exit 1
fi

echo "== resume, storage faults off"
$SZC $common --checkpoint "$ck" --resume --csv "$outdir/crash.csv" \
  --trace "$outdir/crash-trace.json"

echo "== recovered artifacts byte-identical to uninterrupted"
cmp "$outdir/ref1.csv" "$outdir/crash.csv"
echo "csv: recovered run matches the uninterrupted one"
cmp "$outdir/ref1.ck" "$ck"
echo "checkpoint: recovered run matches the uninterrupted one"

echo "== artifact integrity"
$SZC fsck "$outdir/crash.csv" "$ck"
$SZC check-trace "$outdir/crash-trace.json"

echo "crash-recovery check: OK"
