#!/bin/sh
# Differential-fuzzing acceptance gauntlet, used by CI and runnable
# locally:
#
#   1. smoke: fuzz FUZZ_COUNT programs against the real optimizer and
#      demand a clean exit (0) — any reproducer here is a genuine
#      VM/optimizer bug and fails the job loudly, with the ledger and
#      reproducers left in OUTDIR for the artifact upload;
#   2. determinism: the same seed under --jobs 1 and --jobs 4 must
#      produce a byte-identical fuzz ledger (and reproducer set);
#   3. SIGKILL + --resume: a campaign killed mid-flight and resumed
#      must finish with a ledger byte-identical to an uninterrupted
#      run's;
#   4. planted bug: with the pre-PR-7 shift-clamp miscompile armed
#      (--plant shift-clamp) the oracles must catch it within
#      PLANT_COUNT programs (exit 2), every reproducer must shrink to
#      <= 25 instructions, and each must parse and run via `szc exec`;
#   5. fsck: a bit-flipped ledger is detected and `--repair` salvages
#      the longest valid prefix.
#
# Usage: scripts/check_fuzz.sh [OUTDIR]   (default: ./fuzz-artifacts)
# Knobs: FUZZ_COUNT (default 200), PLANT_COUNT (default 200),
#        FUZZ_SEED (default 1), JOBS (default 4).
# Exits nonzero on any divergence.
set -eu

outdir=${1:-fuzz-artifacts}
FUZZ_COUNT=${FUZZ_COUNT:-200}
PLANT_COUNT=${PLANT_COUNT:-200}
FUZZ_SEED=${FUZZ_SEED:-1}
JOBS=${JOBS:-4}
mkdir -p "$outdir"

dune build bin/szc.exe
SZC=_build/default/bin/szc.exe

echo "== smoke: $FUZZ_COUNT programs against the real optimizer (seed $FUZZ_SEED)"
rm -rf "$outdir/smoke"
code=0
$SZC fuzz --seed "$FUZZ_SEED" --count "$FUZZ_COUNT" --jobs "$JOBS" \
  --out "$outdir/smoke" --quiet || code=$?
if [ "$code" -ne 0 ]; then
  echo "fuzz smoke: exit $code — reproducers (real bugs!) left in $outdir/smoke"
  ls "$outdir/smoke"
  exit 1
fi
echo "fuzz smoke: clean (exit 0)"

echo "== determinism: --jobs 1 vs --jobs $JOBS byte-identical"
rm -rf "$outdir/det1" "$outdir/detN"
$SZC fuzz --seed 42 --count 60 --jobs 1 --out "$outdir/det1" --quiet >/dev/null
$SZC fuzz --seed 42 --count 60 --jobs "$JOBS" --out "$outdir/detN" --quiet >/dev/null
cmp "$outdir/det1/fuzz.log" "$outdir/detN/fuzz.log"
echo "fuzz ledger: byte-identical across worker counts"

echo "== SIGKILL + --resume converges to the identical ledger"
rm -rf "$outdir/kill"
$SZC fuzz --seed 42 --count 200 --jobs 2 --out "$outdir/kill" --quiet \
  >/dev/null &
pid=$!
# Let a prefix land, then kill mid-campaign. If the campaign wins the
# race and finishes, --resume over a complete ledger must still be a
# byte-preserving no-op, so the cmp below stays meaningful.
i=0
while [ ! -s "$outdir/kill/fuzz.log" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
sleep 0.3
if kill -9 "$pid" 2>/dev/null; then
  echo "SIGKILLed pid $pid mid-campaign"
else
  echo "WARNING: campaign finished before the kill landed (still checking resume)"
fi
wait "$pid" 2>/dev/null || true
$SZC fuzz --seed 42 --count 200 --jobs 2 --out "$outdir/kill" --resume --quiet \
  >/dev/null
rm -rf "$outdir/full"
$SZC fuzz --seed 42 --count 200 --jobs 2 --out "$outdir/full" --quiet >/dev/null
cmp "$outdir/kill/fuzz.log" "$outdir/full/fuzz.log"
echo "fuzz ledger: byte-identical after SIGKILL + --resume"

echo "== planted shift-clamp is caught and shrunk (<= 25 instructions)"
rm -rf "$outdir/plant"
code=0
$SZC fuzz --seed 7 --count "$PLANT_COUNT" --jobs "$JOBS" --out "$outdir/plant" \
  --plant shift-clamp --quiet >"$outdir/plant.txt" || code=$?
if [ "$code" -ne 2 ]; then
  echo "planted bug not caught in $PLANT_COUNT programs (exit $code, want 2)"
  cat "$outdir/plant.txt"
  exit 1
fi
repros=$(ls "$outdir/plant"/repro-*.szt | wc -l)
echo "planted shift-clamp: caught (exit 2, $repros reproducers)"
for f in "$outdir/plant"/repro-*.szt; do
  n=$(sed -n 's/^# instructions=\([0-9]*\).*/\1/p' "$f")
  if [ -z "$n" ] || [ "$n" -gt 25 ]; then
    echo "$f: reproducer has $n instructions (want <= 25)"
    exit 1
  fi
  $SZC exec "$f" >/dev/null
done
echo "reproducers: all <= 25 instructions, all parse and run via szc exec"

echo "== fsck detects corruption and --repair salvages the prefix"
cp "$outdir/full/fuzz.log" "$outdir/flipped.log"
size=$(wc -c <"$outdir/flipped.log")
# Flip one byte two-thirds of the way in (inside a case record).
off=$((size * 2 / 3))
printf '\377' | dd of="$outdir/flipped.log" bs=1 seek="$off" conv=notrunc \
  2>/dev/null
code=0
$SZC fsck "$outdir/flipped.log" >/dev/null || code=$?
if [ "$code" -ne 2 ]; then
  echo "fsck: corrupt fuzz ledger not flagged salvageable (exit $code, want 2)"
  exit 1
fi
$SZC fsck --repair "$outdir/flipped.log" >/dev/null || true
$SZC fsck "$outdir/flipped.log" >/dev/null
echo "fsck: bit-flip detected, --repair leaves a valid ledger"

echo "fuzz gauntlet: OK"
