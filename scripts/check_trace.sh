#!/bin/sh
# Telemetry acceptance check, used by CI and runnable locally:
#
#   1. run a fixed-seed traced campaign serially and under --jobs 4;
#   2. demand the trace and metrics files are byte-identical;
#   3. validate the trace's Chrome trace_event structure with
#      `szc check-trace`.
#
# Usage: scripts/check_trace.sh [OUTDIR]   (default: ./trace-artifacts)
# Leaves t-jobs1.json / t-jobs4.json / m-jobs1.txt / m-jobs4.txt in
# OUTDIR for artifact upload. Exits nonzero on any divergence.
set -eu

outdir=${1:-trace-artifacts}
mkdir -p "$outdir"

szc() { dune exec --no-build bin/szc.exe -- "$@"; }
dune build bin/szc.exe

common="campaign bzip2 --runs 20 --seed 7 --scale 0.05 --faults light --quiet"

echo "== traced campaign, --jobs 1"
szc $common --trace "$outdir/t-jobs1.json" --metrics "$outdir/m-jobs1.txt"

echo "== traced campaign, --jobs 4"
szc $common --jobs 4 --trace "$outdir/t-jobs4.json" --metrics "$outdir/m-jobs4.txt"

echo "== byte identity"
cmp "$outdir/t-jobs1.json" "$outdir/t-jobs4.json"
echo "trace: byte-identical across worker counts"
cmp "$outdir/m-jobs1.txt" "$outdir/m-jobs4.txt"
echo "metrics: byte-identical across worker counts"

echo "== trace structure"
szc check-trace "$outdir/t-jobs4.json"

echo "telemetry check: OK"
