#!/bin/sh
# Regression-gate acceptance check, used by CI and runnable locally:
#
#   1. run a fixed-seed monitored campaign serially and under --jobs 4,
#      and demand byte-identical monitor output (status lines and
#      final stopping verdict);
#   2. record a baseline campaign (O2) into a fresh history ledger,
#      then a planted slowdown (same benchmark at O0) — `szc regress`
#      must flag it via the effect-size CI (exit 2);
#   3. rerun the identical baseline configuration and demand
#      `szc regress` stays silent (exit 0);
#   4. SIGKILL a monitored campaign mid-flight, resume it, and demand
#      the final verdict and the appended ledger record are
#      byte-identical to the uninterrupted run's;
#   5. verify ledger integrity (`szc fsck`, `szc history`).
#
# Usage: scripts/check_regress.sh [OUTDIR]  (default: ./regress-artifacts)
# Exits nonzero on any divergence.
set -eu

outdir=${1:-regress-artifacts}
mkdir -p "$outdir"

dune build bin/szc.exe
SZC=_build/default/bin/szc.exe

common="campaign bzip2 --runs 20 --seed 11 --scale 0.05 --quiet"

echo "== monitor determinism across worker counts"
$SZC $common --monitor >"$outdir/mon1.txt"
$SZC $common --monitor --jobs 4 >"$outdir/mon4.txt"
cmp "$outdir/mon1.txt" "$outdir/mon4.txt"
echo "monitor output: byte-identical --jobs 1 vs --jobs 4"
grep -q "^monitor verdict: " "$outdir/mon1.txt"
echo "monitor output: final verdict present"

echo "== baseline (O2) into a fresh ledger"
ledger="$outdir/history.ledger"
rm -f "$ledger" "$ledger.tmp"
$SZC $common --opt O2 --ledger "$ledger" >/dev/null

echo "== planted slowdown (same benchmark, O0)"
$SZC $common --opt O0 --ledger "$ledger" >/dev/null
code=0
$SZC regress "$ledger" || code=$?
if [ "$code" -ne 2 ]; then
  echo "regress: planted slowdown not flagged (exit $code, want 2)"
  exit 1
fi
echo "regress: planted O2-vs-O0 slowdown flagged (exit 2)"

echo "== identical-configuration rerun stays silent"
rm -f "$ledger" "$ledger.tmp"
$SZC $common --opt O2 --ledger "$ledger" >/dev/null
$SZC $common --opt O2 --ledger "$ledger" >/dev/null
$SZC regress "$ledger"
echo "regress: identical rerun passes (exit 0)"

echo "== SIGKILL + resume reaches the identical verdict and ledger record"
ref_ledger="$outdir/ref.ledger"
rm -f "$ref_ledger" "$ref_ledger.tmp"
$SZC $common --monitor --ledger "$ref_ledger" >"$outdir/ref-mon.txt"

crash_ledger="$outdir/crash.ledger"
ck="$outdir/crash.ck"
rm -f "$crash_ledger" "$crash_ledger.tmp" "$ck" "$ck.tmp"
$SZC $common --monitor --checkpoint "$ck" >"$outdir/crash-mon-1.txt" &
pid=$!
i=0
while [ ! -e "$ck" ] && [ ! -e "$ck.tmp" ] && [ "$i" -lt 200 ]; do
  sleep 0.1
  i=$((i + 1))
done
if kill -9 "$pid" 2>/dev/null; then
  echo "SIGKILLed pid $pid mid-campaign"
else
  echo "WARNING: campaign finished before the kill landed (still checking resume)"
fi
wait "$pid" 2>/dev/null || true

$SZC $common --monitor --checkpoint "$ck" --resume --ledger "$crash_ledger" \
  >"$outdir/crash-mon-2.txt"
ref_verdict=$(grep "^monitor verdict: " "$outdir/ref-mon.txt")
crash_verdict=$(grep "^monitor verdict: " "$outdir/crash-mon-2.txt")
if [ "$ref_verdict" != "$crash_verdict" ]; then
  echo "verdict diverged: '$ref_verdict' vs '$crash_verdict'"
  exit 1
fi
echo "monitor verdict: identical after SIGKILL + resume"
cmp "$ref_ledger" "$crash_ledger"
echo "ledger record: byte-identical after SIGKILL + resume"

echo "== ledger integrity"
$SZC fsck "$ledger" "$ref_ledger" "$crash_ledger"
$SZC history "$ref_ledger" >/dev/null

echo "regression-gate check: OK"
