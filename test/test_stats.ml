module S = Stz_stats

let checkf msg ?(eps = 1e-4) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_bool = Alcotest.(check bool)

(* Deterministic Box-Muller normal sampler for calibration tests. *)
let normal_samples ~seed n =
  let g = Stz_prng.Xorshift.create ~seed in
  Array.init n (fun _ ->
      let u1 = Stz_prng.Xorshift.next_float g +. 1e-12 in
      let u2 = Stz_prng.Xorshift.next_float g in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* ------------------------------------------------------------------ *)
(* Special functions                                                   *)
(* ------------------------------------------------------------------ *)

let special_gold () =
  checkf "erf(1)" ~eps:1e-9 0.8427007929497149 (S.Special.erf 1.0);
  checkf "erf(-1) odd" ~eps:1e-9 (-0.8427007929497149) (S.Special.erf (-1.0));
  checkf "erfc(2)" ~eps:1e-9 0.004677734981063 (S.Special.erfc 2.0);
  checkf "log_gamma(5)=ln 24" ~eps:1e-9 (log 24.0) (S.Special.log_gamma 5.0);
  checkf "log_gamma(0.5)=ln sqrt(pi)" ~eps:1e-9
    (0.5 *. log Float.pi)
    (S.Special.log_gamma 0.5)

let gamma_pq_complementary =
  QCheck.Test.make ~name:"gamma_p + gamma_q = 1" ~count:300
    QCheck.(pair (float_range 0.1 20.0) (float_range 0.0 40.0))
    (fun (a, x) ->
      abs_float (S.Special.gamma_p a x +. S.Special.gamma_q a x -. 1.0) < 1e-9)

let beta_inc_symmetry =
  QCheck.Test.make ~name:"I_x(a,b) = 1 - I_(1-x)(b,a)" ~count:300
    QCheck.(triple (float_range 0.2 10.0) (float_range 0.2 10.0) (float_range 0.01 0.99))
    (fun (a, b, x) ->
      abs_float (S.Special.beta_inc a b x -. (1.0 -. S.Special.beta_inc b a (1.0 -. x)))
      < 1e-8)

let beta_inc_monotone () =
  let prev = ref (-1.0) in
  for i = 0 to 100 do
    let x = float_of_int i /. 100.0 in
    let v = S.Special.beta_inc 2.5 3.5 x in
    check_bool "monotone nondecreasing" true (v >= !prev -. 1e-12);
    prev := v
  done

(* ------------------------------------------------------------------ *)
(* Distributions                                                       *)
(* ------------------------------------------------------------------ *)

let normal_gold () =
  checkf "cdf(0)" 0.5 (S.Dist.Normal.cdf 0.0);
  checkf "cdf(1.96)" ~eps:1e-6 0.9750021 (S.Dist.Normal.cdf 1.96);
  checkf "sf(1.6449)" ~eps:1e-4 0.05 (S.Dist.Normal.sf 1.6449);
  checkf "quantile(0.975)" ~eps:1e-5 1.959964 (S.Dist.Normal.quantile 0.975);
  checkf "quantile(0.5)" ~eps:1e-9 0.0 (S.Dist.Normal.quantile 0.5);
  checkf "pdf(0)" ~eps:1e-9 (1.0 /. sqrt (2.0 *. Float.pi)) (S.Dist.Normal.pdf 0.0)

let normal_quantile_roundtrip =
  QCheck.Test.make ~name:"quantile (cdf x) = x" ~count:500
    QCheck.(float_range (-5.0) 5.0)
    (fun x ->
      let p = S.Dist.Normal.cdf x in
      p <= 0.0 || p >= 1.0 || abs_float (S.Dist.Normal.quantile p -. x) < 1e-6)

let student_t_gold () =
  (* Critical values from standard t tables. *)
  checkf "t(10) 95%" ~eps:2e-4 0.95 (S.Dist.Student_t.cdf ~df:10.0 1.8125);
  checkf "t(1) 95%" ~eps:2e-4 0.95 (S.Dist.Student_t.cdf ~df:1.0 6.3138);
  checkf "t(30) 97.5%" ~eps:2e-4 0.975 (S.Dist.Student_t.cdf ~df:30.0 2.0423);
  checkf "symmetric" ~eps:1e-9
    (1.0 -. S.Dist.Student_t.cdf ~df:7.0 1.3)
    (S.Dist.Student_t.cdf ~df:7.0 (-1.3))

let f_dist_gold () =
  (* F table: F(0.95; 1, 17) = 4.4513, F(0.95; 2, 10) = 4.1028. *)
  checkf "F(1,17) upper 5%" ~eps:2e-4 0.05 (S.Dist.F_dist.sf ~df1:1.0 ~df2:17.0 4.4513);
  checkf "F(2,10) upper 5%" ~eps:2e-4 0.05 (S.Dist.F_dist.sf ~df1:2.0 ~df2:10.0 4.1028);
  checkf "cdf + sf = 1" ~eps:1e-9
    1.0
    (S.Dist.F_dist.cdf ~df1:3.0 ~df2:8.0 2.5 +. S.Dist.F_dist.sf ~df1:3.0 ~df2:8.0 2.5)

let chi2_gold () =
  checkf "chi2(1) 95%" ~eps:2e-4 0.05 (S.Dist.Chi2.sf ~df:1.0 3.8415);
  checkf "chi2(5) 95%" ~eps:2e-4 0.05 (S.Dist.Chi2.sf ~df:5.0 11.0705);
  checkf "chi2(2) cdf is exponential" ~eps:1e-9
    (1.0 -. exp (-1.5))
    (S.Dist.Chi2.cdf ~df:2.0 3.0)

(* ------------------------------------------------------------------ *)
(* Descriptive statistics                                              *)
(* ------------------------------------------------------------------ *)

let desc_gold () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf "mean" 5.0 (S.Desc.mean xs);
  checkf "variance" ~eps:1e-9 (32.0 /. 7.0) (S.Desc.variance xs);
  checkf "median" 4.5 (S.Desc.median xs);
  checkf "min" 2.0 (S.Desc.min xs);
  checkf "max" 9.0 (S.Desc.max xs);
  checkf "q0" 2.0 (S.Desc.quantile xs 0.0);
  checkf "q1" 9.0 (S.Desc.quantile xs 1.0)

let desc_ranks_ties () =
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  let r = S.Desc.ranks xs in
  Alcotest.(check (array (float 1e-9)))
    "average ranks for ties" [| 3.0; 1.5; 4.0; 1.5; 5.0 |] r

let desc_geometric () =
  checkf "geomean" ~eps:1e-9 4.0 (S.Desc.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "rejects non-positive"
    (Invalid_argument "Desc.geometric_mean: requires positive samples")
    (fun () -> ignore (S.Desc.geometric_mean [| 1.0; -1.0 |]))

let desc_variance_nonneg =
  QCheck.Test.make ~name:"variance >= 0" ~count:300
    QCheck.(list_of_size (Gen.int_range 2 40) (float_range (-1000.) 1000.))
    (fun l ->
      let xs = Array.of_list l in
      S.Desc.variance xs >= 0.0)

let desc_quantile_in_range =
  QCheck.Test.make ~name:"quantile within [min,max]" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.)) (float_range 0. 1.))
    (fun (l, q) ->
      let xs = Array.of_list l in
      let v = S.Desc.quantile xs q in
      v >= S.Desc.min xs -. 1e-9 && v <= S.Desc.max xs +. 1e-9)

let desc_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Desc.mean: empty input")
    (fun () -> ignore (S.Desc.mean [||]))

(* ------------------------------------------------------------------ *)
(* t-tests                                                             *)
(* ------------------------------------------------------------------ *)

let welch_gold () =
  (* Classic textbook example. *)
  let a = [| 30.02; 29.99; 30.11; 29.97; 30.01; 29.99 |] in
  let b = [| 29.89; 29.93; 29.72; 29.98; 30.02; 29.98 |] in
  let r = S.Ttest.welch a b in
  checkf "t" ~eps:1e-3 1.959 r.S.Ttest.t;
  checkf "df" ~eps:0.05 7.03 r.S.Ttest.df;
  checkf "p" ~eps:2e-3 0.0909 r.S.Ttest.p_value

let two_sample_equal_means () =
  let a = normal_samples ~seed:1L 50 in
  let b = normal_samples ~seed:2L 50 in
  let r = S.Ttest.two_sample a b in
  check_bool "no significance on same dist" true (r.S.Ttest.p_value > 0.01)

let ttest_detects_shift () =
  let a = normal_samples ~seed:3L 40 in
  let b = Array.map (fun x -> x +. 2.0) (normal_samples ~seed:4L 40) in
  let r = S.Ttest.welch a b in
  check_bool "detects 2-sigma shift" true (r.S.Ttest.p_value < 1e-6);
  check_bool "sign of difference" true (r.S.Ttest.mean_difference < 0.0)

let paired_matches_one_sample () =
  let a = [| 1.0; 2.0; 3.0; 4.5; 6.0 |] in
  let b = [| 0.5; 2.5; 2.0; 4.0; 5.0 |] in
  let diffs = Array.init 5 (fun i -> a.(i) -. b.(i)) in
  let p1 = (S.Ttest.paired a b).S.Ttest.p_value in
  let p2 = (S.Ttest.one_sample ~mu:0.0 diffs).S.Ttest.p_value in
  checkf "paired = one-sample on diffs" ~eps:1e-12 p2 p1

let ttest_symmetry =
  QCheck.Test.make ~name:"welch p symmetric under swap" ~count:100
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = normal_samples ~seed:(Int64.of_int (s1 + 10)) 12 in
      let b = Array.map (fun x -> x +. 0.5) (normal_samples ~seed:(Int64.of_int (s2 + 999)) 12) in
      let p1 = (S.Ttest.welch a b).S.Ttest.p_value in
      let p2 = (S.Ttest.welch b a).S.Ttest.p_value in
      abs_float (p1 -. p2) < 1e-12)

(* ------------------------------------------------------------------ *)
(* Wilcoxon                                                            *)
(* ------------------------------------------------------------------ *)

let wilcoxon_null () =
  let a = normal_samples ~seed:5L 30 in
  let b = normal_samples ~seed:6L 30 in
  let r = S.Wilcoxon.signed_rank a b in
  check_bool "no significance" true (r.S.Wilcoxon.p_value > 0.01)

let wilcoxon_shift () =
  let a = normal_samples ~seed:7L 30 in
  let b = Array.map (fun x -> x +. 1.5) a in
  let r = S.Wilcoxon.signed_rank a b in
  check_bool "detects shift" true (r.S.Wilcoxon.p_value < 1e-4)

let wilcoxon_drops_zeros () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let b = [| 1.0; 2.0; 2.0; 5.0; 4.0; 7.0 |] in
  let r = S.Wilcoxon.signed_rank a b in
  Alcotest.(check int) "zero differences dropped" 4 r.S.Wilcoxon.n_effective

let wilcoxon_exact_small_sample () =
  (* Known critical values of the signed-rank null distribution:
     P(W+ <= 0 | n=5) = 1/32; P(W+ <= 2 | n=8) = 4/256. *)
  checkf "n=5, w=0" ~eps:1e-12 (1.0 /. 32.0) (S.Wilcoxon.exact_cdf ~n:5 0.0);
  checkf "n=8, w=2" ~eps:1e-12 (3.0 /. 256.0) (S.Wilcoxon.exact_cdf ~n:8 2.0);
  checkf "full mass" ~eps:1e-12 1.0 (S.Wilcoxon.exact_cdf ~n:10 55.0);
  (* A strictly one-sided 6-pair sample: W = 0, exact two-sided
     p = 2/64 = 0.03125. *)
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let b = [| 1.5; 2.7; 3.1; 4.9; 5.2; 6.4 |] in
  let r = S.Wilcoxon.signed_rank a b in
  check_bool "exact path taken" true r.S.Wilcoxon.exact;
  checkf "exact p" ~eps:1e-12 0.03125 r.S.Wilcoxon.p_value

let wilcoxon_exact_reports_equivalent_z () =
  (* The exact path used to report z = 0; now it reports the normal
     deviate equivalent to the exact p, so exact and approximate
     results read alike downstream. *)
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let b = [| 1.5; 2.7; 3.1; 4.9; 5.2; 6.4 |] in
  let r = S.Wilcoxon.signed_rank a b in
  check_bool "exact path" true r.S.Wilcoxon.exact;
  checkf "z is the deviate of p/2" ~eps:1e-9
    (S.Dist.Normal.quantile (r.S.Wilcoxon.p_value /. 2.0))
    r.S.Wilcoxon.z;
  check_bool "z in the lower tail" true (r.S.Wilcoxon.z < -1.5)

let wilcoxon_rejects_nan () =
  let with_nan = [| 1.0; Float.nan; 3.0; 4.0 |] in
  let clean = [| 1.5; 2.5; 3.5; 4.5 |] in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "signed_rank refuses NaN" true
    (raises (fun () -> S.Wilcoxon.signed_rank with_nan clean));
  check_bool "rank_sum refuses NaN" true
    (raises (fun () -> S.Wilcoxon.rank_sum with_nan clean))

let desc_order_is_total_on_nan () =
  (* Float.compare's total order: NaNs sort first and tie together,
     instead of the unspecified shuffle a polymorphic sort gives. *)
  let s = S.Desc.sorted [| 2.0; Float.nan; 1.0 |] in
  check_bool "nan first" true (Float.is_nan s.(0));
  checkf "then ascending" ~eps:0.0 1.0 s.(1);
  checkf "then ascending" ~eps:0.0 2.0 s.(2);
  let r = S.Desc.ranks [| 2.0; Float.nan; Float.nan; 1.0 |] in
  checkf "nans tie on the lowest ranks" ~eps:0.0 1.5 r.(1);
  checkf "nans tie on the lowest ranks" ~eps:0.0 1.5 r.(2);
  checkf "real values rank above" ~eps:0.0 4.0 r.(0)

let wilcoxon_exact_agrees_with_normal_approx () =
  (* At n = 25 the exact and approximate p-values should be close. *)
  let g = Stz_prng.Xorshift.create ~seed:77L in
  let a = Array.init 25 (fun i -> float_of_int i +. Stz_prng.Xorshift.next_float g) in
  let b =
    Array.mapi (fun i x -> x +. 0.4 +. (0.3 *. sin (float_of_int i))) a
  in
  let exact = S.Wilcoxon.signed_rank a b in
  check_bool "exact used" true exact.S.Wilcoxon.exact;
  (* Force the approximation path by going one sample over the cutoff. *)
  let a26 = Array.append a [| 100.0 |] in
  let b26 = Array.append b [| 100.7 |] in
  let approx = S.Wilcoxon.signed_rank a26 b26 in
  check_bool "approx used" false approx.S.Wilcoxon.exact;
  check_bool
    (Printf.sprintf "p-values in the same regime (%.4f vs %.4f)"
       exact.S.Wilcoxon.p_value approx.S.Wilcoxon.p_value)
    true
    (abs_float (exact.S.Wilcoxon.p_value -. approx.S.Wilcoxon.p_value) < 0.05)

let student_t_quantile_roundtrip () =
  List.iter
    (fun df ->
      List.iter
        (fun p ->
          let q = S.Dist.Student_t.quantile ~df p in
          checkf (Printf.sprintf "cdf(quantile) df=%g p=%g" df p) ~eps:1e-9 p
            (S.Dist.Student_t.cdf ~df q))
        [ 0.01; 0.1; 0.5; 0.9; 0.975; 0.999 ])
    [ 1.0; 3.0; 10.0; 30.0 ];
  (* Table value: t(0.975, 3) = 3.1824. *)
  checkf "critical value" ~eps:1e-3 3.1824 (S.Dist.Student_t.quantile ~df:3.0 0.975)

let rank_sum_detects () =
  let a = normal_samples ~seed:8L 25 in
  let b = Array.map (fun x -> x +. 2.0) (normal_samples ~seed:9L 35) in
  let r = S.Wilcoxon.rank_sum a b in
  check_bool "detects shift" true (r.S.Wilcoxon.p_value < 1e-5)

(* ------------------------------------------------------------------ *)
(* Shapiro-Wilk                                                        *)
(* ------------------------------------------------------------------ *)

let shapiro_normal_scores () =
  (* Perfect normal scores: W should be very close to 1. *)
  let xs =
    Array.init 30 (fun i ->
        S.Dist.Normal.quantile ((float_of_int i +. 0.625) /. 30.25))
  in
  let r = S.Shapiro.test xs in
  check_bool "W near 1" true (r.S.Shapiro.w > 0.99);
  check_bool "not rejected" true (r.S.Shapiro.p_value > 0.5)

let shapiro_rejects_exponential () =
  let xs =
    Array.init 30 (fun i -> -.log (1.0 -. ((float_of_int i +. 0.5) /. 30.0)))
  in
  let r = S.Shapiro.test xs in
  check_bool "rejected" true (r.S.Shapiro.p_value < 0.01)

let shapiro_rejects_bimodal () =
  let xs = Array.init 40 (fun i -> if i < 20 then 0.0 +. (0.01 *. float_of_int i) else 10.0 +. (0.01 *. float_of_int i)) in
  let r = S.Shapiro.test xs in
  check_bool "bimodal rejected" true (r.S.Shapiro.p_value < 0.01)

let shapiro_calibration () =
  (* Under H0 the rejection rate at alpha must be close to alpha. *)
  let trials = 500 in
  let rejected = ref 0 in
  for t = 1 to trials do
    let xs = normal_samples ~seed:(Int64.of_int (t * 7919)) 30 in
    if (S.Shapiro.test xs).S.Shapiro.p_value < 0.05 then incr rejected
  done;
  let rate = float_of_int !rejected /. float_of_int trials in
  check_bool
    (Printf.sprintf "rejection rate %.3f within [0.02, 0.09]" rate)
    true
    (rate > 0.02 && rate < 0.09)

let shapiro_small_n () =
  (* The n <= 11 branch. *)
  let xs = [| 148.; 154.; 158.; 160.; 161.; 162.; 166.; 170.; 182.; 195.; 236. |] in
  let r = S.Shapiro.test xs in
  (* This sample (Royston's weight data) is clearly right-skewed. *)
  check_bool "skewed data flagged" true (r.S.Shapiro.p_value < 0.05);
  check_bool "W sensible" true (r.S.Shapiro.w > 0.5 && r.S.Shapiro.w < 0.95)

let shapiro_errors () =
  Alcotest.check_raises "n < 3" (Invalid_argument "Shapiro.test: needs n >= 3")
    (fun () -> ignore (S.Shapiro.test [| 1.0; 2.0 |]));
  Alcotest.check_raises "zero range"
    (Invalid_argument "Shapiro.test: sample range is zero") (fun () ->
      ignore (S.Shapiro.test [| 5.0; 5.0; 5.0; 5.0 |]))

(* ------------------------------------------------------------------ *)
(* Levene / Brown-Forsythe                                             *)
(* ------------------------------------------------------------------ *)

let brown_forsythe_null () =
  let a = normal_samples ~seed:11L 40 in
  let b = normal_samples ~seed:12L 40 in
  let r = S.Levene.brown_forsythe [ a; b ] in
  check_bool "equal variances accepted" true (r.S.Levene.p_value > 0.01)

let brown_forsythe_detects () =
  let a = normal_samples ~seed:13L 40 in
  let b = Array.map (fun x -> x *. 5.0) (normal_samples ~seed:14L 40) in
  let r = S.Levene.brown_forsythe [ a; b ] in
  check_bool "detects 5x scale" true (r.S.Levene.p_value < 0.001)

let levene_mean_variant () =
  let a = normal_samples ~seed:15L 30 in
  let b = Array.map (fun x -> x *. 4.0) (normal_samples ~seed:16L 30) in
  let r = S.Levene.levene_mean [ a; b ] in
  check_bool "mean-centered variant detects" true (r.S.Levene.p_value < 0.01)

(* ------------------------------------------------------------------ *)
(* ANOVA                                                               *)
(* ------------------------------------------------------------------ *)

let anova_within_equals_paired_t () =
  (* For two treatments, within-subjects ANOVA is the paired t-test:
     F = t^2 and identical p-values. *)
  let a = [| 10.1; 11.2; 9.8; 10.6; 12.0; 10.9; 11.4; 9.9 |] in
  let b = [| 10.4; 11.5; 9.9; 11.1; 12.1; 11.2; 11.9; 10.3 |] in
  let data = Array.init 8 (fun i -> [| a.(i); b.(i) |]) in
  let anova = S.Anova.within_subjects data in
  let t = S.Ttest.paired a b in
  checkf "F = t^2" ~eps:1e-6 (t.S.Ttest.t *. t.S.Ttest.t) anova.S.Anova.f;
  checkf "same p" ~eps:1e-6 t.S.Ttest.p_value anova.S.Anova.p_value

let anova_partitions_subjects () =
  (* Large between-subject differences must not mask a consistent
     treatment effect. *)
  let data =
    Array.init 10 (fun i ->
        let base = float_of_int (i * 100) in
        [| base; base +. 1.0 |])
  in
  let r = S.Anova.within_subjects data in
  check_bool "consistent +1 effect found" true (r.S.Anova.p_value < 1e-6);
  check_bool "subjects SS captured" true (r.S.Anova.ss_subjects > 1000.0)

let anova_one_way_null () =
  let groups =
    [ normal_samples ~seed:17L 25; normal_samples ~seed:18L 25; normal_samples ~seed:19L 25 ]
  in
  let r = S.Anova.one_way groups in
  check_bool "null accepted" true (r.S.Anova.p_value > 0.01)

let anova_one_way_effect () =
  let groups =
    [
      normal_samples ~seed:20L 25;
      Array.map (fun x -> x +. 3.0) (normal_samples ~seed:21L 25);
      normal_samples ~seed:22L 25;
    ]
  in
  let r = S.Anova.one_way groups in
  check_bool "effect found" true (r.S.Anova.p_value < 1e-6);
  check_bool "eta^2 meaningful" true (r.S.Anova.eta_squared > 0.3)

let anova_one_way_equals_t_squared () =
  (* For two independent groups, one-way ANOVA is the pooled-variance
     two-sample t-test: F = t^2, identical p. *)
  let a = normal_samples ~seed:50L 14 in
  let b = Array.map (fun x -> x +. 0.7) (normal_samples ~seed:51L 20) in
  let anova = S.Anova.one_way [ a; b ] in
  let t = S.Ttest.two_sample a b in
  checkf "F = t^2" ~eps:1e-8 (t.S.Ttest.t *. t.S.Ttest.t) anova.S.Anova.f;
  checkf "same p" ~eps:1e-8 t.S.Ttest.p_value anova.S.Anova.p_value

let anova_ragged_raises () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Anova.within_subjects: ragged data matrix") (fun () ->
      ignore (S.Anova.within_subjects [| [| 1.0; 2.0 |]; [| 1.0 |] |]))

(* ------------------------------------------------------------------ *)
(* QQ                                                                  *)
(* ------------------------------------------------------------------ *)

let qq_normal_correlation () =
  let xs = normal_samples ~seed:23L 100 in
  check_bool "correlation near 1" true (S.Qq.correlation xs > 0.98)

let qq_exponential_lower () =
  let xs = Array.init 100 (fun i -> -.log (1.0 -. ((float_of_int i +. 0.5) /. 100.0))) in
  check_bool "worse than normal data" true (S.Qq.correlation xs < 0.97)

let qq_line_slope_is_scale () =
  let xs = Array.map (fun x -> (x *. 3.0) +. 10.0) (normal_samples ~seed:24L 2000) in
  let slope, intercept = S.Qq.line xs in
  check_bool "slope near 3" true (abs_float (slope -. 3.0) < 0.3);
  check_bool "intercept near 10" true (abs_float (intercept -. 10.0) < 0.3)

let qq_points_normalized () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let pts = S.Qq.points ~shift:2.5 ~scale:0.5 xs in
  Alcotest.(check int) "count" 4 (Array.length pts);
  checkf "first observed" ~eps:1e-9 (-3.0) pts.(0).S.Qq.observed

let qq_ascii_smoke () =
  let xs = normal_samples ~seed:25L 30 in
  let s = S.Qq.ascii_plot (S.Qq.points xs) in
  check_bool "plot non-empty" true (String.length s > 100);
  check_bool "has points" true (String.contains s 'o')

(* ------------------------------------------------------------------ *)
(* Effect sizes and confidence intervals                               *)
(* ------------------------------------------------------------------ *)

let cohen_d_gold () =
  (* Means 0 and 1, both sd = 1 -> d = -1. *)
  let a = normal_samples ~seed:30L 4000 in
  let b = Array.map (fun x -> x +. 1.0) (normal_samples ~seed:31L 4000) in
  let d = S.Effect.cohen_d a b in
  check_bool "d near -1" true (abs_float (d +. 1.0) < 0.1)

let hedges_smaller_than_cohen () =
  let a = normal_samples ~seed:32L 10 in
  let b = Array.map (fun x -> x +. 1.0) (normal_samples ~seed:33L 10) in
  check_bool "bias correction shrinks magnitude" true
    (abs_float (S.Effect.hedges_g a b) < abs_float (S.Effect.cohen_d a b))

let mean_ci_gold () =
  (* Known example: n=4, mean 10, sd 2 -> half-width t(3,0.975)*2/2 = 3.1824*1 *)
  let xs = [| 8.0; 10.0; 10.0; 12.0 |] in
  let lo, hi = S.Effect.mean_ci xs in
  checkf "center" ~eps:1e-9 10.0 ((lo +. hi) /. 2.0);
  let sd = S.Desc.std_dev xs in
  checkf "half width" ~eps:1e-3 (3.1824 *. sd /. 2.0) ((hi -. lo) /. 2.0)

let mean_ci_coverage () =
  (* Monte-Carlo: the 95% CI must contain the true mean ~95% of the time. *)
  let trials = 400 in
  let hits = ref 0 in
  for t = 1 to trials do
    let xs = normal_samples ~seed:(Int64.of_int (t * 131)) 15 in
    let lo, hi = S.Effect.mean_ci xs in
    if lo <= 0.0 && 0.0 <= hi then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  check_bool (Printf.sprintf "coverage %.3f in [0.90, 0.99]" rate) true
    (rate > 0.90 && rate < 0.99)

let bootstrap_ci_sane () =
  let xs = normal_samples ~seed:40L 50 in
  let lo, hi = S.Effect.bootstrap_ci ~seed:1L ~statistic:S.Desc.mean xs in
  let m = S.Desc.mean xs in
  check_bool "contains sample mean" true (lo <= m && m <= hi);
  check_bool "nonzero width" true (hi > lo);
  (* Deterministic by seed. *)
  let lo2, hi2 = S.Effect.bootstrap_ci ~seed:1L ~statistic:S.Desc.mean xs in
  checkf "lo deterministic" ~eps:0.0 lo lo2;
  checkf "hi deterministic" ~eps:0.0 hi hi2

let speedup_ci_contains_ratio () =
  let a = Array.map (fun x -> 10.0 +. x) (normal_samples ~seed:41L 40) in
  let b = Array.map (fun x -> 8.0 +. x) (normal_samples ~seed:42L 40) in
  let lo, hi = S.Effect.speedup_ci ~seed:2L a b in
  check_bool "covers ~1.25" true (lo < 1.25 && 1.25 < hi);
  check_bool "excludes 1.0" true (lo > 1.0)

(* ------------------------------------------------------------------ *)
(* Power analysis                                                      *)
(* ------------------------------------------------------------------ *)

let power_textbook_values () =
  (* Classic rules of thumb: d = 0.5 needs ~64 per group for 80% power;
     d = 1.0 needs ~17; d = 0.2 needs ~393. *)
  check_bool "medium effect" true
    (abs (S.Power.required_runs ~effect:0.5 () - 64) <= 2);
  check_bool "large effect" true
    (abs (S.Power.required_runs ~effect:1.0 () - 17) <= 2);
  check_bool "small effect" true
    (abs (S.Power.required_runs ~effect:0.2 () - 393) <= 8)

let power_monotone () =
  let p n = S.Power.two_sample ~effect:0.5 ~n () in
  check_bool "power rises with n" true (p 10 < p 20 && p 20 < p 80);
  let q d = S.Power.two_sample ~effect:d ~n:30 () in
  check_bool "power rises with effect" true (q 0.2 < q 0.5 && q 0.5 < q 1.0);
  check_bool "alpha = power under the null... effect 0" true
    (abs_float (S.Power.two_sample ~effect:0.0 ~n:30 () -. 0.05) < 0.01)

let power_roundtrips () =
  (* required_runs and two_sample agree at the boundary. *)
  let n = S.Power.required_runs ~effect:0.4 ~power:0.9 () in
  check_bool "reaches target" true (S.Power.two_sample ~effect:0.4 ~n () >= 0.9);
  check_bool "minimal" true (S.Power.two_sample ~effect:0.4 ~n:(n - 1) () < 0.9);
  (* detectable_effect inverts two_sample. *)
  let d = S.Power.detectable_effect ~n:25 () in
  checkf "inverse" ~eps:1e-3 0.8 (S.Power.two_sample ~effect:d ~n:25 ())

let power_calibration () =
  (* Monte-Carlo check: simulated t-tests reject at about the predicted
     rate for d = 0.8, n = 20. *)
  let n = 20 and d = 0.8 in
  let predicted = S.Power.two_sample ~effect:d ~n () in
  let trials = 400 in
  let rejected = ref 0 in
  for t = 1 to trials do
    let a = normal_samples ~seed:(Int64.of_int (t * 37)) n in
    let b =
      Array.map (fun x -> x +. d) (normal_samples ~seed:(Int64.of_int ((t * 37) + 1)) n)
    in
    if (S.Ttest.two_sample a b).S.Ttest.p_value < 0.05 then incr rejected
  done;
  let observed = float_of_int !rejected /. float_of_int trials in
  check_bool
    (Printf.sprintf "observed %.3f near predicted %.3f" observed predicted)
    true
    (abs_float (observed -. predicted) < 0.08)

let power_effect_of_speedup () =
  checkf "1%% at cv 0.5%% is d = 2" ~eps:1e-9 2.0
    (S.Power.effect_of_speedup ~speedup:1.01 ~cv:0.005);
  checkf "symmetric for slowdowns" ~eps:1e-9 2.0
    (S.Power.effect_of_speedup ~speedup:0.99 ~cv:0.005)

let power_edge_cases () =
  (* Tiny n must yield defined probabilities, not raise or NaN. *)
  List.iter
    (fun n ->
      let p = S.Power.two_sample ~effect:0.5 ~n () in
      check_bool (Printf.sprintf "n=%d power in [0,1]" n) true
        (p >= 0.0 && p <= 1.0);
      let d = S.Power.detectable_effect ~n () in
      check_bool (Printf.sprintf "n=%d detectable effect not NaN" n) true
        (not (Float.is_nan d)))
    [ 1; 2; 3 ];
  checkf "infinite effect has power 1" ~eps:0.0 1.0
    (S.Power.two_sample ~effect:infinity ~n:5 ());
  Alcotest.(check int) "infinite effect needs minimal n" 2
    (S.Power.required_runs ~effect:infinity ());
  check_bool "NaN effect raises (power)" true
    (match S.Power.two_sample ~effect:Float.nan ~n:5 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "NaN effect raises (required_runs)" true
    (match S.Power.required_runs ~effect:Float.nan () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* An all-equal pilot (cv = 0) is total, not a division by zero. *)
  checkf "cv=0, no change" ~eps:0.0 0.0
    (S.Power.effect_of_speedup ~speedup:1.0 ~cv:0.0);
  check_bool "cv=0, any change is infinitely detectable" true
    (S.Power.effect_of_speedup ~speedup:1.01 ~cv:0.0 = infinity)

let qq_degenerate_samples () =
  (* An all-equal sample has zero ordered-statistic spread; the
     correlation must be a defined 0, not NaN. *)
  checkf "all-equal correlation" ~eps:0.0 0.0
    (S.Qq.correlation [| 5.0; 5.0; 5.0; 5.0 |]);
  check_bool "no NaN on constant data" true
    (not (Float.is_nan (S.Qq.correlation (Array.make 8 1.0))))

let effect_moments_roundtrip () =
  let a = normal_samples ~seed:50L 40 in
  let b = Array.map (fun x -> x +. 0.7) (normal_samples ~seed:51L 40) in
  let ma = S.Effect.moments_of_sample a and mb = S.Effect.moments_of_sample b in
  checkf "moments d = sample d" ~eps:1e-9 (S.Effect.cohen_d a b)
    (S.Effect.cohen_d_moments ma mb);
  let d, lo, hi = S.Effect.cohen_d_ci_moments ma mb in
  check_bool "CI brackets d" true (lo < d && d < hi)

let effect_moments_degenerate () =
  let m ?(n = 5) mean sd = { S.Effect.n; mean; sd } in
  checkf "equal zero-sd sides give d = 0" ~eps:0.0 0.0
    (S.Effect.cohen_d_moments (m 1.0 0.0) (m 1.0 0.0));
  check_bool "distinct zero-sd means give infinite d" true
    (S.Effect.cohen_d_moments (m 2.0 0.0) (m 1.0 0.0) = infinity);
  (let d, lo, hi = S.Effect.cohen_d_ci_moments (m 2.0 0.0) (m 1.0 0.0) in
   check_bool "infinite d collapses its CI" true
     (d = infinity && lo = infinity && hi = infinity));
  let d, lo, hi =
    S.Effect.cohen_d_ci_moments (m ~n:1 2.0 0.0) (m 1.0 1.0)
  in
  check_bool "n < 2 on a side gives an unbounded CI" true
    ((not (Float.is_nan d)) && lo = neg_infinity && hi = infinity)

let () =
  Alcotest.run "stats"
    [
      ( "special",
        [
          Alcotest.test_case "gold values" `Quick special_gold;
          QCheck_alcotest.to_alcotest gamma_pq_complementary;
          QCheck_alcotest.to_alcotest beta_inc_symmetry;
          Alcotest.test_case "beta monotone" `Quick beta_inc_monotone;
        ] );
      ( "dist",
        [
          Alcotest.test_case "normal gold" `Quick normal_gold;
          QCheck_alcotest.to_alcotest normal_quantile_roundtrip;
          Alcotest.test_case "student-t gold" `Quick student_t_gold;
          Alcotest.test_case "F gold" `Quick f_dist_gold;
          Alcotest.test_case "chi2 gold" `Quick chi2_gold;
        ] );
      ( "desc",
        [
          Alcotest.test_case "gold" `Quick desc_gold;
          Alcotest.test_case "ranks with ties" `Quick desc_ranks_ties;
          Alcotest.test_case "geometric mean" `Quick desc_geometric;
          QCheck_alcotest.to_alcotest desc_variance_nonneg;
          QCheck_alcotest.to_alcotest desc_quantile_in_range;
          Alcotest.test_case "empty raises" `Quick desc_empty_raises;
        ] );
      ( "ttest",
        [
          Alcotest.test_case "welch gold" `Quick welch_gold;
          Alcotest.test_case "null accepted" `Quick two_sample_equal_means;
          Alcotest.test_case "detects shift" `Quick ttest_detects_shift;
          Alcotest.test_case "paired = one-sample" `Quick paired_matches_one_sample;
          QCheck_alcotest.to_alcotest ttest_symmetry;
        ] );
      ( "wilcoxon",
        [
          Alcotest.test_case "null" `Quick wilcoxon_null;
          Alcotest.test_case "shift" `Quick wilcoxon_shift;
          Alcotest.test_case "drops zeros" `Quick wilcoxon_drops_zeros;
          Alcotest.test_case "rank-sum" `Quick rank_sum_detects;
          Alcotest.test_case "exact small-sample" `Quick wilcoxon_exact_small_sample;
          Alcotest.test_case "exact vs approx" `Quick wilcoxon_exact_agrees_with_normal_approx;
          Alcotest.test_case "exact equivalent z" `Quick wilcoxon_exact_reports_equivalent_z;
          Alcotest.test_case "rejects NaN" `Quick wilcoxon_rejects_nan;
          Alcotest.test_case "NaN order total" `Quick desc_order_is_total_on_nan;
          Alcotest.test_case "t quantile" `Quick student_t_quantile_roundtrip;
        ] );
      ( "shapiro",
        [
          Alcotest.test_case "normal scores" `Quick shapiro_normal_scores;
          Alcotest.test_case "rejects exponential" `Quick shapiro_rejects_exponential;
          Alcotest.test_case "rejects bimodal" `Quick shapiro_rejects_bimodal;
          Alcotest.test_case "calibrated" `Slow shapiro_calibration;
          Alcotest.test_case "small n branch" `Quick shapiro_small_n;
          Alcotest.test_case "errors" `Quick shapiro_errors;
        ] );
      ( "levene",
        [
          Alcotest.test_case "null" `Quick brown_forsythe_null;
          Alcotest.test_case "detects scale" `Quick brown_forsythe_detects;
          Alcotest.test_case "mean variant" `Quick levene_mean_variant;
        ] );
      ( "anova",
        [
          Alcotest.test_case "within = paired t" `Quick anova_within_equals_paired_t;
          Alcotest.test_case "partitions subjects" `Quick anova_partitions_subjects;
          Alcotest.test_case "one-way null" `Quick anova_one_way_null;
          Alcotest.test_case "one-way effect" `Quick anova_one_way_effect;
          Alcotest.test_case "one-way = t^2" `Quick anova_one_way_equals_t_squared;
          Alcotest.test_case "ragged raises" `Quick anova_ragged_raises;
        ] );
      ( "power",
        [
          Alcotest.test_case "textbook values" `Quick power_textbook_values;
          Alcotest.test_case "monotone" `Quick power_monotone;
          Alcotest.test_case "roundtrips" `Quick power_roundtrips;
          Alcotest.test_case "calibrated" `Slow power_calibration;
          Alcotest.test_case "speedup conversion" `Quick power_effect_of_speedup;
          Alcotest.test_case "edge cases total" `Quick power_edge_cases;
        ] );
      ( "effect",
        [
          Alcotest.test_case "cohen d" `Quick cohen_d_gold;
          Alcotest.test_case "hedges g" `Quick hedges_smaller_than_cohen;
          Alcotest.test_case "mean CI gold" `Quick mean_ci_gold;
          Alcotest.test_case "mean CI coverage" `Slow mean_ci_coverage;
          Alcotest.test_case "bootstrap CI" `Quick bootstrap_ci_sane;
          Alcotest.test_case "speedup CI" `Quick speedup_ci_contains_ratio;
          Alcotest.test_case "moments roundtrip" `Quick effect_moments_roundtrip;
          Alcotest.test_case "moments degenerate" `Quick effect_moments_degenerate;
        ] );
      ( "qq",
        [
          Alcotest.test_case "normal correlation" `Quick qq_normal_correlation;
          Alcotest.test_case "exponential lower" `Quick qq_exponential_lower;
          Alcotest.test_case "line slope" `Quick qq_line_slope_is_scale;
          Alcotest.test_case "normalized points" `Quick qq_points_normalized;
          Alcotest.test_case "ascii smoke" `Quick qq_ascii_smoke;
          Alcotest.test_case "degenerate samples" `Quick qq_degenerate_samples;
        ] );
    ]
