(* The layout-bias attribution profiler end to end: plane separation
   (arming the conflict recorders never changes cycles or hardware
   counters), the planted-conflict acceptance pair (the conflict
   workload's layout η² is high and names the planted pair #1 in the
   L1I table; the control twin's is negligible), report determinism
   across worker counts, the sweep ledger's crash-atomic append/resume
   discipline, and sweep-campaign byte-identity across interruption. *)

module Hierarchy = Stz_machine.Hierarchy
module Cache = Stz_machine.Cache
module Conflict = Stz_attrib.Conflict
module Explain = Stz_attrib.Explain
module Sweep = Stz_attrib.Sweep
module Sl = Stz_store.Sweeplog
module Runtime = Stabilizer.Runtime
module Config = Stabilizer.Config
module Workload = Stz_workloads.Conflict

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let unwrap = function Ok v -> v | Error e -> Alcotest.fail e

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let with_temp_dir f =
  let path = Filename.temp_file "szc-attrib-test" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Plane separation                                                    *)
(* ------------------------------------------------------------------ *)

(* The golden-counter contract: a run on an attribution-armed machine
   must report exactly the cycles and hardware counters of a dark run —
   the recorders observe, they never feed back. *)
let armed_run_counters_identical () =
  let p = Workload.program () in
  let args = Workload.default_args in
  let config = Config.one_time in
  List.iter
    (fun seed ->
      let dark = Runtime.run ~config ~seed p ~args in
      let lit =
        Runtime.run
          ~machine_factory:(fun () ->
            let m = Hierarchy.create () in
            Hierarchy.arm_attrib m ~funcs:(Array.length p.Stz_vm.Ir.funcs);
            m)
          ~config ~seed p ~args
      in
      check_int "cycles" dark.Runtime.cycles lit.Runtime.cycles;
      check_int "result" dark.Runtime.return_value lit.Runtime.return_value;
      check_bool "counters" true
        (dark.Runtime.counters = lit.Runtime.counters))
    [ 1L; 7L; 1234567L ]

let dark_recorder_is_dark () =
  let mk () = Cache.create { Cache.name = "t"; sets = 4; ways = 2; line_bits = 6 } in
  let pattern c =
    List.iter (fun a -> ignore (Cache.access c a)) [ 0; 64; 256; 0; 512; 64 ]
  in
  let dark = mk () in
  pattern dark;
  let lit = mk () in
  Cache.arm_attrib lit ~funcs:3;
  Cache.set_attrib_owner lit 1;
  pattern lit;
  check_int "accesses" (Cache.accesses dark) (Cache.accesses lit);
  check_int "misses" (Cache.misses dark) (Cache.misses lit);
  check_bool "armed" true (Cache.attrib_armed lit);
  check_bool "unarmed" false (Cache.attrib_armed dark);
  check_bool "view exists" true (Cache.attrib_view lit <> None)

(* ------------------------------------------------------------------ *)
(* The planted pair                                                    *)
(* ------------------------------------------------------------------ *)

let explain ?(jobs = 1) p =
  unwrap
    (Explain.run ~jobs ~base_seed:1L ~seeds:8
       ~variants:[ [ 50 ]; [ 51 ]; [ 52 ]; [ 53 ] ]
       p)

let conflict_workload_is_layout_dominated () =
  let report = explain (Workload.program ()) in
  let d =
    match report.Explain.decomposition with
    | Some d -> d
    | None -> Alcotest.fail ("no decomposition: " ^ report.Explain.note)
  in
  check_bool
    (Printf.sprintf "layout eta2 %.3f >= 0.5" d.Explain.layout_eta2)
    true
    (d.Explain.layout_eta2 >= 0.5);
  (* The planted (wrapper, rider) pair must top the L1I table. *)
  let wa, ri = Workload.hot_pair in
  match Conflict.pairs_in Conflict.L1i (Option.get report.Explain.merged) with
  | [] -> Alcotest.fail "no l1i conflicts recorded"
  | top :: _ ->
      check_int "victim fid" (min wa ri) top.Conflict.f1;
      check_int "evictor fid" (max wa ri) top.Conflict.f2;
      check_bool "events" true (top.Conflict.events > 0);
      (* And it leads the overall ranking too. *)
      let overall = List.hd report.Explain.pairs in
      check_bool "overall #1 is the planted pair" true
        (overall.Conflict.f1 = min wa ri && overall.Conflict.f2 = max wa ri)

let control_workload_is_layout_indifferent () =
  let report = explain (Workload.control ()) in
  let d =
    match report.Explain.decomposition with
    | Some d -> d
    | None -> Alcotest.fail ("no decomposition: " ^ report.Explain.note)
  in
  check_bool
    (Printf.sprintf "layout eta2 %.4f < 0.1" d.Explain.layout_eta2)
    true
    (d.Explain.layout_eta2 < 0.1);
  check_bool "workload stratum dominates" true (d.Explain.workload_share > 0.5)

let report_independent_of_jobs () =
  let p = Workload.program () in
  let a = explain ~jobs:1 p and b = explain ~jobs:4 p in
  check_string "csv" (Explain.csv a) (Explain.csv b);
  check_string "trace" (Explain.trace_string a) (Explain.trace_string b);
  check_string "table" (Explain.to_string a) (Explain.to_string b)

(* ------------------------------------------------------------------ *)
(* Sweep ledger                                                        *)
(* ------------------------------------------------------------------ *)

let meta =
  {
    Sl.version = 1;
    fuzz_seed = 9L;
    count = 4;
    layout_seeds = 4;
    variants = 3;
    threshold = 0.25;
    shrink_budget = 10;
  }

let case i =
  {
    Sl.index = i;
    case_seed = Int64.of_int (1000 + i);
    verdict = (if i mod 3 = 2 then Sl.Trapped else Sl.Measured);
    eta2 = 0.1 +. (0.7 /. float_of_int (i + 1));
    partial_eta2 = 0.99;
    workload_share = 0.2;
    residual_share = 1e-9;
    mean_cycles = 4000 + i;
    instrs = 200 + i;
    structure = "l1i";
    victim = 1;
    evictor = 2;
    conflict_events = 17 * (i + 1);
    conflict_cycles = 170 * (i + 1);
    repro = (if i = 0 then "repro-000000.szt" else "");
    repro_instrs = (if i = 0 then 12 else 0);
    shrink_steps = (if i = 0 then 5 else 0);
    detail = "multi\nline gets sanitized";
  }

let sweeplog_round_trip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "sweep.log" in
      let t = unwrap (Sl.create ~path meta) in
      List.iter (fun i -> Sl.append t (case i)) [ 0; 1; 2; 3 ];
      Sl.close t;
      let m, cases = unwrap (Sl.load path) in
      check_bool "meta" true (m = meta);
      check_int "cases" 4 (List.length cases);
      let c0 = List.hd cases in
      check_bool "floats bit-exact" true
        (Int64.bits_of_float c0.Sl.eta2 = Int64.bits_of_float (case 0).Sl.eta2);
      check_string "sanitized" "multi line gets sanitized" c0.Sl.detail;
      check_string "repro" "repro-000000.szt" c0.Sl.repro)

let sweeplog_resume_self_heals () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "sweep.log" in
      let t = unwrap (Sl.create ~path meta) in
      List.iter (fun i -> Sl.append t (case i)) [ 0; 1; 2; 3 ];
      Sl.close t;
      let intact = read_file path in
      (* Tear the tail mid-record, as a SIGKILL would. *)
      let torn = String.length intact - 37 in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd torn;
      Unix.close fd;
      let t, survivors = unwrap (Sl.resume ~path meta) in
      check_int "survivors" 3 (List.length survivors);
      (* Re-appending the lost case must reproduce the intact bytes. *)
      Sl.append t (case 3);
      Sl.close t;
      check_string "byte-identical after heal" intact (read_file path);
      (* A different sweep identity is refused. *)
      match Sl.resume ~path { meta with Sl.fuzz_seed = 10L } with
      | Ok _ -> Alcotest.fail "resume accepted a mismatched meta"
      | Error e ->
          let has sub s =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          check_bool "mentions mismatch" true (has "mismatch" e))

(* ------------------------------------------------------------------ *)
(* Sweep campaign                                                      *)
(* ------------------------------------------------------------------ *)

let sweep_cfg ~out ~resume =
  {
    Sweep.fuzz_seed = 5L;
    count = 6;
    jobs = 2;
    out_dir = out;
    resume;
    layout_seeds = 4;
    variants = 3;
    threshold = 0.01;
    shrink_budget = 8;
    watchdog = None;
    log = ignore;
  }

let dir_fingerprint dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, Digest.file (Filename.concat dir f)))

let sweep_campaign_resumes_byte_identically () =
  with_temp_dir (fun root ->
      let full = Filename.concat root "full" in
      let cut = Filename.concat root "cut" in
      let s1 = unwrap (Sweep.run_campaign (sweep_cfg ~out:full ~resume:false)) in
      check_int "all measured" 6 (s1.Sweep.total);
      check_bool "campaign found offenders to shrink" true
        (s1.Sweep.offenders <> []);
      (* Interrupted twin: same campaign, ledger then torn mid-record
         and the tail cases lost, as a SIGKILL mid-sweep would leave it. *)
      ignore (unwrap (Sweep.run_campaign (sweep_cfg ~out:cut ~resume:false)));
      let ledger = Filename.concat cut Sweep.ledger_name in
      let bytes = read_file ledger in
      let fd = Unix.openfile ledger [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (String.length bytes * 2 / 3);
      Unix.close fd;
      let s2 = unwrap (Sweep.run_campaign (sweep_cfg ~out:cut ~resume:true)) in
      check_int "resumed to full count" 6 (s2.Sweep.total);
      check_bool "identical artifacts" true
        (dir_fingerprint full = dir_fingerprint cut);
      check_bool "identical ledger bytes" true (bytes = read_file ledger))

let sweep_case_pure () =
  let a =
    Sweep.evaluate ~layout_seeds:4 ~variants:3 ~threshold:0.01 ~shrink_budget:0
      ~fuzz_seed:5L ~index:1 ()
  in
  let b =
    Sweep.evaluate ~layout_seeds:4 ~variants:3 ~threshold:0.01 ~shrink_budget:0
      ~fuzz_seed:5L ~index:1 ()
  in
  check_bool "pure in (seed, index)" true (a = b)

let () =
  Alcotest.run "attrib"
    [
      ( "plane-separation",
        [
          Alcotest.test_case "armed run: counters identical" `Quick
            armed_run_counters_identical;
          Alcotest.test_case "dark recorder is dark" `Quick
            dark_recorder_is_dark;
        ] );
      ( "explain",
        [
          Alcotest.test_case "conflict workload: layout-dominated" `Quick
            conflict_workload_is_layout_dominated;
          Alcotest.test_case "control workload: layout-indifferent" `Quick
            control_workload_is_layout_indifferent;
          Alcotest.test_case "report independent of --jobs" `Quick
            report_independent_of_jobs;
        ] );
      ( "sweeplog",
        [
          Alcotest.test_case "round trip" `Quick sweeplog_round_trip;
          Alcotest.test_case "torn tail self-heals byte-identically" `Quick
            sweeplog_resume_self_heals;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "campaign resumes byte-identically" `Quick
            sweep_campaign_resumes_byte_identically;
          Alcotest.test_case "case evaluation pure" `Quick sweep_case_pure;
        ] );
    ]
