(* The deterministic telemetry layer: span nesting invariants in the
   run-local recorder, metric registry round-trips, and the system-level
   guarantee that a fixed seed produces byte-identical trace and metrics
   files however the campaign was scheduled — --jobs 4, serial, or
   killed with SIGKILL and resumed from its checkpoint. *)

module S = Stabilizer
module F = Stz_faults.Fault
module P = Stz_workloads.Profile
module T = Stz_telemetry
module Event = T.Event
module Runlog = T.Runlog
module Metrics = T.Metrics
module Trace = T.Trace
module Export = T.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Runlog: span nesting and clock invariants                           *)
(* ------------------------------------------------------------------ *)

let runlog_nesting () =
  let l = Runlog.create () in
  Runlog.begin_span l "outer" ~now:0;
  check_int "one open span" 1 (Runlog.depth l);
  Runlog.begin_span l "inner" ~now:10;
  Runlog.instant l "tick" ~now:15;
  Runlog.end_span l ~now:40;
  Runlog.end_span l ~now:100;
  check_int "all closed" 0 (Runlog.depth l);
  match Runlog.events l with
  | [
   Event.Span { name = n1; dur = d1; _ };
   Event.Span { name = n2; ts = t2; dur = d2; _ };
   Event.Instant { ts = t3; _ };
  ] ->
      check_string "outer first (sorted by start)" "outer" n1;
      check_int "outer duration" 100 d1;
      check_string "inner" "inner" n2;
      check_int "inner start" 10 t2;
      check_int "inner duration" 30 d2;
      check_int "instant inside inner" 15 t3
  | es -> Alcotest.failf "unexpected stream of %d events" (List.length es)

let runlog_rejects_misuse () =
  check_bool "end without begin" true
    (raises_invalid (fun () -> Runlog.end_span (Runlog.create ()) ~now:0));
  check_bool "clock must be monotone" true
    (raises_invalid (fun () ->
         let l = Runlog.create () in
         Runlog.begin_span l "a" ~now:10;
         Runlog.instant l "too-early" ~now:5));
  check_bool "cannot export with open spans" true
    (raises_invalid (fun () ->
         let l = Runlog.create () in
         Runlog.begin_span l "open" ~now:0;
         Runlog.events l))

let runlog_close_is_crash_safe () =
  let l = Runlog.create () in
  Runlog.begin_span l "a" ~now:0;
  Runlog.begin_span l "b" ~now:5;
  Runlog.close l ~now:9;
  check_int "closed all" 0 (Runlog.depth l);
  check_int "both spans exported" 2 (List.length (Runlog.events l))

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let metrics_roundtrip () =
  let m = Metrics.create () in
  Metrics.add m "b.two" 2;
  Metrics.add m "a.one" 1;
  Metrics.add m "b.two" 3;
  check_int "accumulates" 5 (Metrics.get m "b.two");
  check_int "missing is zero" 0 (Metrics.get m "nope");
  check_string "snapshot is key-sorted" "a.one 1\nb.two 5\n" (Metrics.snapshot m);
  (match Metrics.of_snapshot (Metrics.snapshot m) with
  | Error e -> Alcotest.fail e
  | Ok m' -> check_string "parses back" (Metrics.snapshot m) (Metrics.snapshot m'));
  check_bool "malformed keys rejected" true
    (raises_invalid (fun () -> Metrics.add m "spaces are bad" 1))

(* ------------------------------------------------------------------ *)
(* Trace lanes                                                         *)
(* ------------------------------------------------------------------ *)

let trace_lane_assignment () =
  let tr = Trace.create ~lanes:3 () in
  check_int "run 0 -> lane 1" 1 (Trace.lane_for tr ~run:0);
  check_int "run 2 -> lane 3" 3 (Trace.lane_for tr ~run:2);
  check_int "run 3 wraps to lane 1" 1 (Trace.lane_for tr ~run:3);
  let span dur =
    [ Event.Span { name = "run"; cat = "run"; lane = 0; ts = 0; dur; args = [] } ]
  in
  Trace.add_run tr ~run:0 (span 100);
  Trace.add_run tr ~run:1 (span 50);
  Trace.add_run tr ~run:3 (span 40);
  check_int "virtual now is the furthest lane" 140 (Trace.now tr);
  (match Trace.events tr with
  | [
   Event.Span { lane = l1; _ };
   Event.Span { ts = t2; _ };
   Event.Span { lane = l3; ts = t3; _ };
  ] ->
      check_int "run 0 on lane 1 at 0" 1 l1;
      check_int "run 1 on lane 2 at 0" 0 t2;
      check_int "run 3 stacked after run 0" 100 t3;
      check_int "run 3 shares lane 1" 1 l3
  | _ -> Alcotest.fail "expected three spans");
  Trace.harness_instant tr "worker-spawned";
  check_int "harness events stay out of the deterministic stream" 3
    (List.length (Trace.events tr));
  check_int "harness lane" Trace.harness_lane
    (Event.lane (List.hd (Trace.harness_events tr)))

(* ------------------------------------------------------------------ *)
(* Chrome export: golden structure check via the in-repo Json parser   *)
(* ------------------------------------------------------------------ *)

let chrome_export_is_valid () =
  let tr = Trace.create ~lanes:2 () in
  Trace.control_instant tr "campaign-start";
  Trace.add_run tr ~run:0
    [
      Event.Span { name = "run"; cat = "run"; lane = 0; ts = 0; dur = 10; args = [] };
      Event.Counter
        { name = "hw"; cat = "run"; lane = 0; ts = 10; values = [ ("cycles", 10) ] };
    ];
  let text = Export.chrome_string (Trace.events tr) in
  (match Export.validate_chrome_string text with
  | Error e -> Alcotest.failf "exporter emitted an invalid trace: %s" e
  | Ok (spans, points) ->
      check_int "one span" 1 spans;
      check_int "instant + counter" 2 points);
  (* Structure golden-checked through the in-repo parser. *)
  match T.Json.of_string text with
  | Error e -> Alcotest.failf "not JSON: %s" e
  | Ok j ->
      let events =
        match Option.bind (T.Json.member "traceEvents" j) T.Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      let phases =
        List.filter_map
          (fun e -> Option.bind (T.Json.member "ph" e) T.Json.to_str)
          events
      in
      check_bool "has complete spans" true (List.mem "X" phases);
      check_bool "has counters" true (List.mem "C" phases);
      check_bool "has metadata records" true (List.mem "M" phases)

let validator_rejects_garbage () =
  let bad text =
    match Export.validate_chrome_string text with Ok _ -> false | Error _ -> true
  in
  check_bool "not json" true (bad "]][[");
  check_bool "no traceEvents" true (bad "{}");
  check_bool "metadata only" true
    (bad "{\"traceEvents\":[{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0}]}")

let jsonl_export () =
  let tr = Trace.create () in
  Trace.control_instant tr "a";
  Trace.control_instant tr "b";
  let lines = String.split_on_char '\n' (String.trim (Export.jsonl (Trace.events tr))) in
  check_int "one object per line" 2 (List.length lines);
  List.iter
    (fun l ->
      match T.Json.of_string l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad jsonl line %S: %s" l e)
    lines

(* ------------------------------------------------------------------ *)
(* Ops: log-linear histograms with golden values                       *)
(* ------------------------------------------------------------------ *)

module Ops = T.Ops
module Oplog = T.Oplog

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let hist_layout_golden () =
  (* Unit buckets below 16. *)
  for v = 0 to 15 do
    check_int (Printf.sprintf "bucket_of %d" v) v (Ops.Hist.bucket_of v)
  done;
  (* Values up to 31 still resolve exactly (16 sub-buckets of width 1). *)
  check_int "bucket_of 31" 31 (Ops.Hist.bucket_of 31);
  (* From 32 the sub-bucket width is 2: 32 and 33 share a bucket. *)
  check_int "32 and 33 share" (Ops.Hist.bucket_of 32) (Ops.Hist.bucket_of 33);
  check_bool "33 and 34 differ" true
    (Ops.Hist.bucket_of 33 <> Ops.Hist.bucket_of 34);
  check_int "negatives clamp to 0" 0 (Ops.Hist.bucket_of (-7));
  (* Round-trip invariants: the bucket lower bound is at most the value
     and within 6.25% of it. *)
  List.iter
    (fun v ->
      let lo = Ops.Hist.bucket_lower (Ops.Hist.bucket_of v) in
      check_bool (Printf.sprintf "lower(%d) <= v" v) true (lo <= v);
      check_bool
        (Printf.sprintf "relative error at %d" v)
        true
        (float_of_int (v - lo) <= 0.0625 *. float_of_int v))
    [ 1; 16; 17; 100; 1000; 4097; 65535; 1_000_000; max_int / 2 ]

let hist_percentiles_golden () =
  let h = Ops.Hist.create () in
  for v = 1 to 1000 do
    Ops.Hist.observe h v
  done;
  check_int "count" 1000 (Ops.Hist.count h);
  check_int "sum" 500_500 (Ops.Hist.sum h);
  check_int "min exact" 1 (Ops.Hist.min_value h);
  check_int "max exact" 1000 (Ops.Hist.max_value h);
  (* Golden percentiles for the uniform 1..1000 distribution under the
     fixed bucket layout: rank 500 → value 500 → octave [256,512),
     sub-bucket width 16, lower bound 496; rank 900 → 900 → [512,1024),
     width 32, lower 896; rank 990 → 990 → lower 960. *)
  check_int "p50" 496 (Ops.Hist.percentile h 50.);
  check_int "p90" 896 (Ops.Hist.percentile h 90.);
  check_int "p99" 960 (Ops.Hist.percentile h 99.);
  (* Small exact case: all values below 16 are exact. *)
  let s = Ops.Hist.create () in
  List.iter (Ops.Hist.observe s) [ 5; 7; 9 ];
  check_int "small p50 exact" 7 (Ops.Hist.percentile s 50.);
  check_int "empty percentile" 0 (Ops.Hist.percentile (Ops.Hist.create ()) 99.)

let hist_merge_matches_single () =
  let a = Ops.Hist.create () and b = Ops.Hist.create () in
  let whole = Ops.Hist.create () in
  for v = 1 to 500 do
    Ops.Hist.observe a v;
    Ops.Hist.observe whole v
  done;
  for v = 501 to 1000 do
    Ops.Hist.observe b v;
    Ops.Hist.observe whole v
  done;
  Ops.Hist.merge_into ~dst:a b;
  check_int "merged count" (Ops.Hist.count whole) (Ops.Hist.count a);
  check_int "merged sum" (Ops.Hist.sum whole) (Ops.Hist.sum a);
  check_int "merged min" (Ops.Hist.min_value whole) (Ops.Hist.min_value a);
  check_int "merged max" (Ops.Hist.max_value whole) (Ops.Hist.max_value a);
  check_bool "merged buckets element-wise equal" true
    (Ops.Hist.nonzero_buckets whole = Ops.Hist.nonzero_buckets a);
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "merged p%.0f" p)
        (Ops.Hist.percentile whole p) (Ops.Hist.percentile a p))
    [ 50.; 90.; 99. ]

let ops_registry_snapshot () =
  let build () =
    let o = Ops.create () in
    Ops.incr o "wire.rx.submit";
    Ops.incr o ~by:4 "wire.rx.submit";
    Ops.incr o "admit.ok";
    Ops.set_gauge o "sched.slots.busy" 3;
    List.iter (Ops.observe o "loop.tick_us") [ 10; 20; 30 ];
    o
  in
  let o = build () in
  check_int "counter accumulates" 5 (Ops.counter o "wire.rx.submit");
  check_int "missing counter is 0" 0 (Ops.counter o "nope");
  check_int "gauge" 3 (Ops.gauge o "sched.slots.busy");
  check_string "snapshots of identical registries are byte-identical"
    (Ops.snapshot (build ())) (Ops.snapshot o);
  check_bool "snapshot lists the histogram" true
    (contains (Ops.snapshot o) "hist loop.tick_us ");
  check_bool "malformed key rejected" true
    (raises_invalid (fun () -> Ops.incr o "no spaces"));
  let prom = Ops.to_prometheus o in
  List.iter
    (fun needle ->
      check_bool ("prometheus has " ^ needle) true (contains prom needle))
    [
      "# TYPE szcd_wire_rx_submit counter";
      "szcd_wire_rx_submit 5";
      "# TYPE szcd_sched_slots_busy gauge";
      "szcd_loop_tick_us{quantile=\"0.5\"}";
      "szcd_loop_tick_us_count 3";
    ]

(* ------------------------------------------------------------------ *)
(* Oplog: container discipline, self-healing reopen, rotation          *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stz-oplog-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let oplog_event l i =
  Oplog.event l ~ts_ms:(1000 + i) ~ev:"test.event" [ ("i", T.Json.Int i) ]

let oplog_roundtrip_and_self_heal () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "ops.log" in
      (match Oplog.create ~path () with
      | Error e -> Alcotest.fail e
      | Ok l ->
          for i = 0 to 9 do
            oplog_event l i
          done;
          Oplog.close l);
      (match Oplog.load path with
      | Error e -> Alcotest.failf "fresh oplog unreadable: %s" e
      | Ok records -> check_int "10 records" 10 (List.length records));
      (* Reopen appends — records accumulate across generations of the
         daemon. *)
      (match Oplog.create ~path () with
      | Error e -> Alcotest.fail e
      | Ok l ->
          oplog_event l 10;
          Oplog.close l);
      (match Oplog.load path with
      | Error e -> Alcotest.failf "reopened oplog unreadable: %s" e
      | Ok records -> check_int "11 records" 11 (List.length records));
      (* Tear the tail (simulate SIGKILL mid-write): reopening self-heals
         to the longest valid prefix and appends cleanly after it. *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.ftruncate fd (size - 7));
      Unix.close fd;
      check_bool "torn file no longer loads strictly" true
        (Result.is_error (Oplog.load path));
      (match Oplog.create ~path () with
      | Error e -> Alcotest.failf "self-heal failed: %s" e
      | Ok l ->
          oplog_event l 11;
          Oplog.close l);
      match Oplog.load path with
      | Error e -> Alcotest.failf "healed oplog unreadable: %s" e
      | Ok records ->
          check_int "torn record dropped, append went through" 11
            (List.length records))

let oplog_rotation () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "ops.log" in
      match Oplog.create ~path ~max_bytes:512 ~keep:2 () with
      | Error e -> Alcotest.fail e
      | Ok l ->
          for i = 0 to 99 do
            oplog_event l i
          done;
          Oplog.close l;
          check_bool "rotated generation exists" true
            (Sys.file_exists (path ^ ".1"));
          check_bool "keep bound respected" false
            (Sys.file_exists (path ^ ".3"));
          (* Every surviving generation is a valid container. *)
          List.iter
            (fun p ->
              if Sys.file_exists p then
                match Oplog.load p with
                | Ok records ->
                    check_bool (p ^ " non-empty") true (records <> [])
                | Error e -> Alcotest.failf "%s unreadable: %s" p e)
            [ path; path ^ ".1"; path ^ ".2" ])

(* ------------------------------------------------------------------ *)
(* Campaign-level byte identity                                        *)
(* ------------------------------------------------------------------ *)

let tiny =
  {
    P.default with
    P.name = "telemetry";
    functions = 8;
    hot_functions = 4;
    iterations = 12;
    inner_trips = 6;
    seed = 0x7E1E_3E7AL;
  }

let program = lazy (Stz_workloads.Generate.program tiny)
let config = S.Config.stabilizer
let args = [ 1 ]
let policy = { S.Supervisor.default_policy with S.Supervisor.max_retries = 2 }

let campaign ?(runs = 50) ?(jobs = 1) ?checkpoint ?(resume = false) ?telemetry
    ~seed profile =
  S.Supervisor.run_campaign ~policy ~profile ~jobs ?checkpoint ~resume
    ?telemetry ~config ~base_seed:(Int64.of_int seed) ~runs ~args
    (Lazy.force program)

let with_temp f =
  let path = Filename.temp_file "stz-telemetry" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let trace_bytes tr = Export.chrome_string (Trace.events tr)

let jobs4_trace_is_byte_identical_to_serial () =
  (* The acceptance property: 50-run light-fault campaign, fixed seed —
     trace and metrics bytes must not depend on the worker count. *)
  let tr1 = Trace.create ~lanes:4 () in
  let tr4 = Trace.create ~lanes:4 () in
  let c1 = campaign ~seed:7 ~telemetry:tr1 F.light in
  let c4 = campaign ~seed:7 ~jobs:4 ~telemetry:tr4 F.light in
  let t1 = trace_bytes tr1 and t4 = trace_bytes tr4 in
  check_bool "traces byte-identical (jobs 1 vs 4)" true (t1 = t4);
  check_string "metrics byte-identical"
    (Metrics.snapshot (S.Rollup.of_campaign c1))
    (Metrics.snapshot (S.Rollup.of_campaign c4));
  (match Export.validate_chrome_string t1 with
  | Error e -> Alcotest.failf "campaign trace invalid: %s" e
  | Ok (spans, _) ->
      check_bool "at least one span per run" true
        (spans >= c1.S.Supervisor.runs));
  (* Tracing itself must not perturb the experiment. *)
  let plain = campaign ~seed:7 F.light in
  check_bool "tracing does not change the records" true
    (plain.S.Supervisor.records = c1.S.Supervisor.records)

let count_named name tr =
  List.length (List.filter (fun e -> Event.name e = name) (Trace.events tr))

let sigkill_resume_trace_is_prefix_consistent () =
  (* Fork a child that runs a --jobs 4 traced campaign and SIGKILLs
     itself after 12 delivered runs — a real kill -9, no cleanup. The
     parent resumes from the surviving checkpoint with telemetry on and
     demands (a) identical final records, (b) a valid trace whose
     restored prefix matches the checkpoint, run for run, with each
     restored span's duration equal to the cycles the checkpoint
     recorded. *)
  with_temp (fun path ->
      let uninterrupted = campaign ~seed:11 F.light in
      (match Unix.fork () with
      | 0 ->
          let seen = ref 0 in
          (try
             ignore
               (S.Supervisor.run_campaign ~policy ~profile:F.light ~jobs:4
                  ~checkpoint:path
                  ~on_record:(fun _ ->
                    incr seen;
                    if !seen = 12 then Unix.kill (Unix.getpid ()) Sys.sigkill)
                  ~config ~base_seed:11L ~runs:50 ~args (Lazy.force program))
           with _ -> ());
          Unix._exit 0
      | pid -> (
          match Unix.waitpid [] pid with
          | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
          | _, status ->
              Alcotest.failf "child was not SIGKILLed: %s"
                (match status with
                | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)));
      let mid =
        match S.Supervisor.load path with
        | Ok c -> c
        | Error e -> Alcotest.failf "checkpoint unreadable after SIGKILL: %s" e
      in
      let prefix_len = List.length mid.S.Supervisor.records in
      check_bool "checkpoint holds a non-empty strict prefix" true
        (prefix_len > 0 && prefix_len < 50);
      let tr = Trace.create ~lanes:4 () in
      let resumed =
        campaign ~seed:11 ~jobs:4 ~checkpoint:path ~resume:true ~telemetry:tr
          F.light
      in
      check_bool "resumed records identical to uninterrupted" true
        (resumed.S.Supervisor.records = uninterrupted.S.Supervisor.records);
      (match Export.validate_chrome_string (trace_bytes tr) with
      | Error e -> Alcotest.failf "resumed trace invalid: %s" e
      | Ok _ -> ());
      check_int "one restored event per checkpointed run" prefix_len
        (count_named "restored" tr);
      check_int "live run spans cover the rest" (50 - prefix_len)
        (count_named "run" tr);
      (* Restored spans replay the recorded cycles, run for run. *)
      let restored_durs =
        List.filter_map
          (function
            | Event.Span { name = "restored"; dur; _ } -> Some dur
            | _ -> None)
          (Trace.events tr)
      in
      let expected_durs =
        List.filter_map
          (fun (r : S.Supervisor.record) ->
            match r.S.Supervisor.outcome with
            | S.Supervisor.Done d -> Some d.S.Supervisor.cycles
            | S.Supervisor.Trapped (_, Some pp)
            | S.Supervisor.Budget_exceeded pp
            | S.Supervisor.Invalid_result pp ->
                Some pp.S.Runtime.p_cycles
            | S.Supervisor.Trapped (_, None)
            | S.Supervisor.Worker_lost | S.Supervisor.Worker_hung -> None)
          mid.S.Supervisor.records
      in
      check_bool "restored spans carry the checkpointed cycles" true
        (restored_durs = expected_durs))

(* ------------------------------------------------------------------ *)
(* Sample-level trace and rollup                                       *)
(* ------------------------------------------------------------------ *)

let sample_trace_and_rollup () =
  let collect jobs =
    S.Sample.collect ~jobs ~events:true ~config ~base_seed:5L ~runs:12 ~args
      (Lazy.force program)
  in
  let s1 = collect 1 and s4 = collect 4 in
  let bytes s =
    Export.chrome_string
      (Trace.events (S.Rollup.trace_of_outcomes ~lanes:4 s.S.Sample.outcomes))
  in
  check_bool "sample traces byte-identical (jobs 1 vs 4)" true
    (bytes s1 = bytes s4);
  check_string "sample metrics byte-identical"
    (Metrics.snapshot (S.Rollup.of_sample s1))
    (Metrics.snapshot (S.Rollup.of_sample s4));
  (match Export.validate_chrome_string (bytes s1) with
  | Error e -> Alcotest.failf "sample trace invalid: %s" e
  | Ok (spans, _) ->
      (* each run contributes its outer "run" span plus the runtime's
         inner "execute" span (events were on) *)
      check_int "run + execute span per completed run" 24 spans);
  let m = S.Rollup.of_sample s1 in
  check_int "rollup counts the runs" 12 (Metrics.get m "sample.runs");
  check_bool "hardware counters aggregated" true
    (Metrics.get m "counters.cycles" > 0
    && Metrics.get m "counters.instructions" > 0)

let () =
  Alcotest.run "telemetry"
    [
      ( "runlog",
        [
          Alcotest.test_case "span nesting" `Quick runlog_nesting;
          Alcotest.test_case "misuse rejected" `Quick runlog_rejects_misuse;
          Alcotest.test_case "crash-path close" `Quick runlog_close_is_crash_safe;
        ] );
      ( "metrics",
        [ Alcotest.test_case "round-trip" `Quick metrics_roundtrip ] );
      ( "ops",
        [
          Alcotest.test_case "histogram bucket layout" `Quick hist_layout_golden;
          Alcotest.test_case "histogram percentiles golden" `Quick
            hist_percentiles_golden;
          Alcotest.test_case "histogram merge" `Quick hist_merge_matches_single;
          Alcotest.test_case "registry snapshot + prometheus" `Quick
            ops_registry_snapshot;
        ] );
      ( "oplog",
        [
          Alcotest.test_case "round-trip + self-heal" `Quick
            oplog_roundtrip_and_self_heal;
          Alcotest.test_case "rotation" `Quick oplog_rotation;
        ] );
      ( "trace",
        [ Alcotest.test_case "lane assignment" `Quick trace_lane_assignment ] );
      ( "export",
        [
          Alcotest.test_case "chrome golden structure" `Quick
            chrome_export_is_valid;
          Alcotest.test_case "validator rejects garbage" `Quick
            validator_rejects_garbage;
          Alcotest.test_case "jsonl" `Quick jsonl_export;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs 4 trace byte-identical" `Quick
            jobs4_trace_is_byte_identical_to_serial;
          Alcotest.test_case "SIGKILL + resume prefix-consistent" `Quick
            sigkill_resume_trace_is_prefix_consistent;
        ] );
      ( "sample",
        [ Alcotest.test_case "trace + rollup" `Quick sample_trace_and_rollup ] );
    ]
