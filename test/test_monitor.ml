(* Streaming statistical monitor: single-pass estimators must agree
   with their batch counterparts, drift detection must fire on real
   shifts and stay quiet on stationary streams, and the whole monitor
   must be a pure deterministic fold over its observation sequence —
   that purity is what makes campaign verdicts independent of worker
   count and of mid-flight interruption. *)

module M = Stz_monitor
module S = Stz_stats
module Stab = Stabilizer
module P = Stz_workloads.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* Deterministic Box-Muller normal sampler. *)
let normal_samples ~seed n =
  let g = Stz_prng.Xorshift.create ~seed in
  Array.init n (fun _ ->
      let u1 = Stz_prng.Xorshift.next_float g +. 1e-12 in
      let u2 = Stz_prng.Xorshift.next_float g in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* ------------------------------------------------------------------ *)
(* Welford                                                             *)
(* ------------------------------------------------------------------ *)

let welford_matches_batch () =
  let xs = Array.map (fun x -> 5.0 +. (2.0 *. x)) (normal_samples ~seed:7L 200) in
  let w = M.Welford.create () in
  Array.iter (M.Welford.add w) xs;
  check_int "count" 200 (M.Welford.count w);
  checkf "mean" ~eps:1e-9 (S.Desc.mean xs) (M.Welford.mean w);
  checkf "variance" ~eps:1e-9 (S.Desc.variance xs) (M.Welford.variance w);
  checkf "min" ~eps:0.0 (S.Desc.min xs) (M.Welford.min w);
  checkf "max" ~eps:0.0 (S.Desc.max xs) (M.Welford.max w);
  (* Batch central moments for the g1/g2 cross-check. *)
  let n = float_of_int (Array.length xs) in
  let m = S.Desc.mean xs in
  let mk k = Array.fold_left (fun a x -> a +. ((x -. m) ** k)) 0.0 xs in
  let m2 = mk 2.0 and m3 = mk 3.0 and m4 = mk 4.0 in
  checkf "skewness" ~eps:1e-6
    (sqrt n *. m3 /. (m2 ** 1.5))
    (M.Welford.skewness w);
  checkf "kurtosis" ~eps:1e-6
    ((n *. m4 /. (m2 *. m2)) -. 3.0)
    (M.Welford.kurtosis w)

let welford_degenerate () =
  let w = M.Welford.create () in
  checkf "empty mean" ~eps:0.0 0.0 (M.Welford.mean w);
  checkf "empty variance" ~eps:0.0 0.0 (M.Welford.variance w);
  M.Welford.add w 3.0;
  checkf "single variance" ~eps:0.0 0.0 (M.Welford.variance w);
  for _ = 1 to 9 do
    M.Welford.add w 3.0
  done;
  (* A constant stream: every derived statistic defined, none NaN. *)
  checkf "constant variance" ~eps:0.0 0.0 (M.Welford.variance w);
  checkf "constant cv" ~eps:0.0 0.0 (M.Welford.cv w);
  checkf "constant skewness" ~eps:0.0 0.0 (M.Welford.skewness w);
  checkf "constant kurtosis" ~eps:0.0 0.0 (M.Welford.kurtosis w)

(* ------------------------------------------------------------------ *)
(* P² quantiles                                                        *)
(* ------------------------------------------------------------------ *)

let p2_small_samples_exact () =
  let q = M.P2.create ~p:0.5 in
  List.iter (M.P2.add q) [ 5.0; 1.0; 3.0 ];
  (* n <= 5: the estimate is the exact order statistic. *)
  checkf "median of 3" ~eps:0.0 3.0 (M.P2.quantile q)

let p2_tracks_batch_quantiles () =
  let xs = Array.map (fun x -> 10.0 +. x) (normal_samples ~seed:11L 500) in
  List.iter
    (fun p ->
      let q = M.P2.create ~p in
      Array.iter (M.P2.add q) xs;
      let exact = S.Desc.quantile xs p in
      check_bool
        (Printf.sprintf "p=%.2f estimate %.4f near exact %.4f" p
           (M.P2.quantile q) exact)
        true
        (abs_float (M.P2.quantile q -. exact) < 0.15))
    [ 0.25; 0.5; 0.75 ]

(* ------------------------------------------------------------------ *)
(* Sliding window                                                      *)
(* ------------------------------------------------------------------ *)

let window_slides () =
  let w = M.Window.create ~size:3 in
  check_int "empty" 0 (Array.length (M.Window.contents w));
  List.iter (M.Window.add w) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "count is total ever added" 5 (M.Window.count w);
  check_int "size is the capacity" 3 (M.Window.size w);
  Alcotest.(check (array (float 0.0)))
    "holds the newest, oldest first" [| 3.0; 4.0; 5.0 |]
    (M.Window.contents w)

(* ------------------------------------------------------------------ *)
(* CUSUM                                                               *)
(* ------------------------------------------------------------------ *)

let cusum_detects_shift () =
  let c = M.Cusum.create () in
  M.Cusum.set_reference c ~mean:100.0 ~sd:5.0;
  (* Stationary stretch: no alarm. *)
  Array.iter
    (fun x -> M.Cusum.observe c (100.0 +. (5.0 *. x)))
    (normal_samples ~seed:21L 50);
  check_bool "stationary stream stays quiet" false (M.Cusum.alarmed c);
  (* A 3-sigma level shift must alarm within a handful of observations. *)
  for _ = 1 to 10 do
    M.Cusum.observe c 115.0
  done;
  check_bool "3-sigma shift alarms" true (M.Cusum.alarmed c);
  (* The alarm is sticky. *)
  M.Cusum.observe c 100.0;
  check_bool "alarm is sticky" true (M.Cusum.alarmed c)

let cusum_zero_sd_reference () =
  let c = M.Cusum.create () in
  M.Cusum.set_reference c ~mean:50.0 ~sd:0.0;
  M.Cusum.observe c 50.0;
  check_bool "exact value stays quiet" false (M.Cusum.alarmed c);
  M.Cusum.observe c 51.0;
  check_bool "any deviation from a constant baseline alarms" true
    (M.Cusum.alarmed c)

(* ------------------------------------------------------------------ *)
(* Monitor                                                             *)
(* ------------------------------------------------------------------ *)

let verdict_strings_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check (option string))
        "roundtrip" (Some (M.Monitor.verdict_to_string v))
        (Option.map M.Monitor.verdict_to_string
           (M.Monitor.verdict_of_string (M.Monitor.verdict_to_string v))))
    [
      M.Monitor.Insufficient_data;
      M.Monitor.Keep_going;
      M.Monitor.Enough_runs;
      M.Monitor.Drift_suspected;
    ];
  check_bool "unknown rejected" true
    (M.Monitor.verdict_of_string "bogus" = None)

(* Low-jitter runs around 1ms: cycles ~ seconds * 1e6. *)
let feed_steady m ~seed n =
  Array.iter
    (fun x ->
      let seconds = 1e-3 *. (1.0 +. (0.002 *. x)) in
      M.Monitor.observe_completed m
        ~cycles:(int_of_float (seconds *. 1e6))
        ~seconds)
    (normal_samples ~seed n)

let monitor_verdict_progression () =
  let m = M.Monitor.create () in
  check_bool "empty is insufficient" true
    (M.Monitor.advise m = M.Monitor.Insufficient_data);
  feed_steady m ~seed:31L 3;
  check_bool "below min_runs is insufficient" true
    (M.Monitor.advise m = M.Monitor.Insufficient_data);
  feed_steady m ~seed:32L 10;
  (* 13 quiet runs: past min_runs but the power target (n ~ 64 for
     d = 0.5) is far away. *)
  check_bool "mid-campaign keeps going" true
    (M.Monitor.advise m = M.Monitor.Keep_going);
  feed_steady m ~seed:33L 60;
  (* 73 low-jitter runs: CI half-width way under 2% of the mean and
     achieved power above 0.8. *)
  let s = M.Monitor.snapshot m in
  check_bool
    (Printf.sprintf "rel CI %.5f tight" s.M.Monitor.rel_half_width)
    true
    (s.M.Monitor.rel_half_width <= 0.02);
  check_bool
    (Printf.sprintf "power %.3f reached" s.M.Monitor.achieved_power)
    true
    (s.M.Monitor.achieved_power >= 0.8);
  check_bool "steady campaign reaches enough-runs" true
    (s.M.Monitor.verdict = M.Monitor.Enough_runs)

let monitor_flags_cycles_drift () =
  let m = M.Monitor.create () in
  feed_steady m ~seed:41L 20;
  check_bool "no drift while steady" false
    (M.Monitor.snapshot m).M.Monitor.cycles_drift;
  (* The workload suddenly takes ~3x the cycles. *)
  for _ = 1 to 8 do
    M.Monitor.observe_completed m ~cycles:3000 ~seconds:3e-3
  done;
  let s = M.Monitor.snapshot m in
  check_bool "cycles drift flagged" true s.M.Monitor.cycles_drift;
  check_bool "verdict is drift-suspected" true
    (s.M.Monitor.verdict = M.Monitor.Drift_suspected)

let monitor_flags_censor_drift () =
  let m = M.Monitor.create () in
  (* Clean baseline, then a burst of censored runs. *)
  feed_steady m ~seed:51L 20;
  for _ = 1 to 10 do
    M.Monitor.observe_censored m
  done;
  let s = M.Monitor.snapshot m in
  check_int "censored counted" 10 s.M.Monitor.censored;
  check_int "observed counts both kinds" 30 s.M.Monitor.observed;
  check_bool "censoring-rate drift flagged" true s.M.Monitor.censor_drift;
  check_bool "verdict is drift-suspected" true
    (s.M.Monitor.verdict = M.Monitor.Drift_suspected)

let monitor_is_deterministic () =
  (* The same observation sequence must produce byte-identical status
     lines — the property the supervisor leans on for --jobs and
     resume invariance. *)
  let feed m =
    feed_steady m ~seed:61L 12;
    M.Monitor.observe_censored m;
    feed_steady m ~seed:62L 12
  in
  let a = M.Monitor.create () and b = M.Monitor.create () in
  feed a;
  feed b;
  Alcotest.(check string)
    "status lines identical"
    (M.Monitor.status_line a) (M.Monitor.status_line b);
  check_bool "verdicts identical" true
    (M.Monitor.advise a = M.Monitor.advise b)

(* ------------------------------------------------------------------ *)
(* Supervisor integration                                              *)
(* ------------------------------------------------------------------ *)

let tiny =
  {
    P.default with
    P.name = "monitored";
    functions = 8;
    hot_functions = 4;
    iterations = 12;
    inner_trips = 6;
    seed = 0x0B5EL;
  }

let program = lazy (Stz_workloads.Generate.program tiny)

let run_campaign ?(jobs = 1) ?checkpoint ?(resume = false) ~monitor () =
  Stab.Supervisor.run_campaign ~jobs ?checkpoint ~resume ~monitor
    ~config:Stab.Config.stabilizer ~base_seed:77L ~runs:8 ~args:[ 1 ]
    (Lazy.force program)

let supervisor_feeds_monitor_identically () =
  (* Serial and parallel campaigns must leave the monitor in an
     identical state: records are delivered in run order either way. *)
  let m1 = M.Monitor.create () in
  let c1 = run_campaign ~jobs:1 ~monitor:m1 () in
  let m2 = M.Monitor.create () in
  let c2 = run_campaign ~jobs:3 ~monitor:m2 () in
  check_bool "campaign records identical" true
    (c1.Stab.Supervisor.records = c2.Stab.Supervisor.records);
  Alcotest.(check string)
    "monitor state identical across worker counts"
    (M.Monitor.status_line m1) (M.Monitor.status_line m2);
  let s = M.Monitor.snapshot m1 in
  check_int "every run observed" 8 s.M.Monitor.observed

let resume_replays_into_monitor () =
  (* A resumed campaign must replay checkpointed records into the
     monitor, ending in the same state as an uninterrupted one. *)
  let m_ref = M.Monitor.create () in
  ignore (run_campaign ~monitor:m_ref ());
  let path = Filename.temp_file "szc-test-monitor" ".ck" in
  let m_full = M.Monitor.create () in
  ignore (run_campaign ~checkpoint:path ~monitor:m_full ());
  (* Resume over the finished checkpoint: every record is replayed,
     none re-executed. *)
  let m_resumed = M.Monitor.create () in
  ignore (run_campaign ~checkpoint:path ~resume:true ~monitor:m_resumed ());
  Sys.remove path;
  Alcotest.(check string)
    "resumed monitor matches uninterrupted"
    (M.Monitor.status_line m_ref)
    (M.Monitor.status_line m_resumed);
  check_bool "verdicts agree" true
    (M.Monitor.advise m_ref = M.Monitor.advise m_resumed)

let () =
  Alcotest.run "monitor"
    [
      ( "welford",
        [
          Alcotest.test_case "matches batch moments" `Quick welford_matches_batch;
          Alcotest.test_case "degenerate streams" `Quick welford_degenerate;
        ] );
      ( "p2",
        [
          Alcotest.test_case "small samples exact" `Quick p2_small_samples_exact;
          Alcotest.test_case "tracks batch quantiles" `Quick
            p2_tracks_batch_quantiles;
        ] );
      ( "window",
        [ Alcotest.test_case "slides oldest-first" `Quick window_slides ] );
      ( "cusum",
        [
          Alcotest.test_case "detects level shift" `Quick cusum_detects_shift;
          Alcotest.test_case "zero-sd reference" `Quick cusum_zero_sd_reference;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "verdict strings" `Quick verdict_strings_roundtrip;
          Alcotest.test_case "verdict progression" `Quick
            monitor_verdict_progression;
          Alcotest.test_case "cycles drift" `Quick monitor_flags_cycles_drift;
          Alcotest.test_case "censor drift" `Quick monitor_flags_censor_drift;
          Alcotest.test_case "deterministic fold" `Quick monitor_is_deterministic;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "jobs-invariant feeding" `Quick
            supervisor_feeds_monitor_identically;
          Alcotest.test_case "resume replay identity" `Quick
            resume_replays_into_monitor;
        ] );
    ]
