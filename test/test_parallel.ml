(* The fork pool and the parallel campaign path: --jobs N must be an
   implementation detail, never an observable one. Samples, outcome
   CSVs and JSON checkpoints have to be byte-identical to a serial
   campaign's, for any worker count, through worker deaths and through
   kill + resume. *)

module S = Stabilizer
module F = Stz_faults.Fault
module P = Stz_workloads.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Parallel.map, directly                                              *)
(* ------------------------------------------------------------------ *)

let value = function
  | S.Parallel.Value v -> v
  | S.Parallel.Lost -> Alcotest.fail "unexpected Lost"

let map_matches_serial () =
  for n = 0 to 12 do
    for jobs = 1 to 5 do
      let f i = (i * i) + (31 * i) + 7 in
      let got = S.Parallel.map ~jobs ~f n in
      check_int (Printf.sprintf "n=%d jobs=%d: length" n jobs) n
        (Array.length got);
      Array.iteri
        (fun i r ->
          check_int (Printf.sprintf "n=%d jobs=%d: slot %d" n jobs i) (f i)
            (value r))
        got
    done
  done

let map_matches_serial_prop =
  QCheck.Test.make ~name:"map is f applied index-wise, any worker count"
    ~count:30
    QCheck.(pair (int_bound 20) (int_bound 6))
    (fun (n, jobs) ->
      let f i = (7 * i) + 3 in
      S.Parallel.map ~jobs:(jobs + 1) ~f n
      = Array.init n (fun i -> S.Parallel.Value (f i)))

let on_result_reports_each_task_once () =
  let n = 17 and jobs = 4 in
  let counts = Array.make n 0 in
  let results =
    S.Parallel.map
      ~on_result:(fun i _ -> counts.(i) <- counts.(i) + 1)
      ~jobs ~f:(fun i -> i) n
  in
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "task %d reported once" i) 1 c)
    counts;
  Array.iteri (fun i r -> check_int "result" i (value r)) results

let workers_actually_overlap () =
  (* Sleeping tasks prove concurrency even on a single-CPU box: eight
     0.15 s sleeps across four workers must beat the 1.2 s a serial
     execution needs by a wide margin. *)
  let t0 = Unix.gettimeofday () in
  let r = S.Parallel.map ~jobs:4 ~f:(fun i -> Unix.sleepf 0.15; i) 8 in
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iteri (fun i x -> check_int "slot" i (value x)) r;
  check_bool
    (Printf.sprintf "8x0.15s over 4 workers took %.2fs (serial: 1.2s)" elapsed)
    true (elapsed < 1.0)

let dead_worker_censors_only_its_task () =
  (* Worker 2's stripe is [2; 5; 8]: it reports 2, dies executing 5,
     and the respawned replacement still delivers 8. *)
  let f i = if i = 5 then Unix._exit 42 else i * 10 in
  let got = S.Parallel.map ~jobs:3 ~f 9 in
  Array.iteri
    (fun i r ->
      if i = 5 then
        check_bool "task 5 lost" true (r = S.Parallel.Lost)
      else check_int (Printf.sprintf "task %d survives" i) (i * 10) (value r))
    got

exception Boom

let raising_on_result_reaps_workers () =
  (* The pool must not leak children when the merge callback raises. *)
  let raised = ref false in
  (try
     ignore
       (S.Parallel.map
          ~on_result:(fun _ _ -> raise Boom)
          ~jobs:3
          ~f:(fun i -> Unix.sleepf 0.05; i)
          9)
   with Boom -> raised := true);
  check_bool "exception propagates" true !raised;
  (* Every child is dead and reaped: no process in our group left. *)
  let none_left =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
    | 0, _ -> false
    | _ -> false
  in
  check_bool "no zombie workers" true none_left

(* ------------------------------------------------------------------ *)
(* Campaign determinism under --jobs                                   *)
(* ------------------------------------------------------------------ *)

let tiny =
  {
    P.default with
    P.name = "parallel";
    functions = 8;
    hot_functions = 4;
    iterations = 12;
    inner_trips = 6;
    seed = 0xBA_8A_11E1L;
  }

let program = lazy (Stz_workloads.Generate.program tiny)
let config = S.Config.stabilizer
let args = [ 1 ]

let policy =
  { S.Supervisor.default_policy with S.Supervisor.max_retries = 2 }

let campaign ?(runs = 50) ?(jobs = 1) ?checkpoint ?(resume = false) ?on_record
    ~seed profile =
  S.Supervisor.run_campaign ~policy ~profile ~jobs ?checkpoint ~resume
    ?on_record ~config ~base_seed:(Int64.of_int seed) ~runs ~args
    (Lazy.force program)

let with_temp f =
  let path = Filename.temp_file "stz-parallel" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let jobs4_is_byte_identical_to_serial () =
  (* The tentpole property: a 50-run light-fault campaign under --jobs 4
     leaves exactly the bytes a serial one does — outcome CSV and JSON
     checkpoint both. *)
  with_temp (fun path1 ->
      with_temp (fun path4 ->
          let c1 = campaign ~seed:7 ~checkpoint:path1 F.light in
          let c4 = campaign ~seed:7 ~jobs:4 ~checkpoint:path4 F.light in
          check_string "outcome CSVs byte-identical"
            (S.Report.csv_of_campaign c1)
            (S.Report.csv_of_campaign c4);
          check_string "checkpoints byte-identical" (read_file path1)
            (read_file path4);
          check_bool "times bit-identical" true
            (S.Supervisor.times c1 = S.Supervisor.times c4)))

exception Killed

let kill_and_resume_under_jobs4_is_byte_identical () =
  (* Kill a --jobs 4 campaign after 12 delivered runs, resume it under
     --jobs 4, and demand the serial campaign's exact bytes. *)
  with_temp (fun serial_path ->
      with_temp (fun par_path ->
          let serial = campaign ~seed:11 ~checkpoint:serial_path F.light in
          let seen = ref 0 in
          (try
             ignore
               (campaign ~seed:11 ~jobs:4 ~checkpoint:par_path
                  ~on_record:(fun _ ->
                    incr seen;
                    if !seen = 12 then raise Killed)
                  F.light)
           with Killed -> ());
          check_int "killed mid-campaign" 12 !seen;
          (* The interrupted checkpoint holds a prefix of completed
             runs, exactly as a serial interruption would. *)
          (match S.Supervisor.load par_path with
          | Error e -> Alcotest.failf "mid-flight checkpoint: %s" e
          | Ok mid ->
              let serial_prefix =
                List.filteri
                  (fun i _ -> i < List.length mid.S.Supervisor.records)
                  serial.S.Supervisor.records
              in
              check_bool "mid-flight checkpoint is a run-order prefix" true
                (mid.S.Supervisor.records = serial_prefix));
          let resumed =
            campaign ~seed:11 ~jobs:4 ~checkpoint:par_path ~resume:true F.light
          in
          check_bool "records identical after resume" true
            (serial.S.Supervisor.records = resumed.S.Supervisor.records);
          check_string "final checkpoints byte-identical"
            (read_file serial_path) (read_file par_path);
          check_string "outcome CSVs byte-identical"
            (S.Report.csv_of_campaign serial)
            (S.Report.csv_of_campaign resumed)))

let heavy_faults_jobs_identical () =
  (* Retries and quarantine stay seed-derived, so even a heavily
     faulting campaign merges identically. *)
  let c1 = campaign ~runs:16 ~seed:3 F.heavy in
  let c3 = campaign ~runs:16 ~seed:3 ~jobs:3 F.heavy in
  check_bool "records" true
    (c1.S.Supervisor.records = c3.S.Supervisor.records);
  check_bool "quarantine order" true
    (c1.S.Supervisor.quarantined = c3.S.Supervisor.quarantined);
  check_string "CSV" (S.Report.csv_of_campaign c1) (S.Report.csv_of_campaign c3)

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches serial" `Quick map_matches_serial;
          QCheck_alcotest.to_alcotest map_matches_serial_prop;
          Alcotest.test_case "on_result covers each task once" `Quick
            on_result_reports_each_task_once;
          Alcotest.test_case "workers overlap in time" `Quick
            workers_actually_overlap;
          Alcotest.test_case "dead worker censors only its task" `Quick
            dead_worker_censors_only_its_task;
          Alcotest.test_case "raising on_result reaps workers" `Quick
            raising_on_result_reaps_workers;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs 4 byte-identical to serial" `Quick
            jobs4_is_byte_identical_to_serial;
          Alcotest.test_case "kill+resume under jobs 4 byte-identical" `Quick
            kill_and_resume_under_jobs4_is_byte_identical;
          Alcotest.test_case "heavy faults identical under jobs" `Quick
            heavy_faults_jobs_identical;
        ] );
    ]
