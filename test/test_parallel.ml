(* The fork pool and the parallel campaign path: --jobs N must be an
   implementation detail, never an observable one. Samples, outcome
   CSVs and JSON checkpoints have to be byte-identical to a serial
   campaign's, for any worker count, through worker deaths and through
   kill + resume. *)

module S = Stabilizer
module F = Stz_faults.Fault
module P = Stz_workloads.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Parallel.map, directly                                              *)
(* ------------------------------------------------------------------ *)

let value = function
  | S.Parallel.Value v -> v
  | S.Parallel.Lost -> Alcotest.fail "unexpected Lost"
  | S.Parallel.Hung -> Alcotest.fail "unexpected Hung"

let map_matches_serial () =
  for n = 0 to 12 do
    for jobs = 1 to 5 do
      let f i = (i * i) + (31 * i) + 7 in
      let got = S.Parallel.map ~jobs ~f n in
      check_int (Printf.sprintf "n=%d jobs=%d: length" n jobs) n
        (Array.length got);
      Array.iteri
        (fun i r ->
          check_int (Printf.sprintf "n=%d jobs=%d: slot %d" n jobs i) (f i)
            (value r))
        got
    done
  done

let map_matches_serial_prop =
  QCheck.Test.make ~name:"map is f applied index-wise, any worker count"
    ~count:30
    QCheck.(pair (int_bound 20) (int_bound 6))
    (fun (n, jobs) ->
      let f i = (7 * i) + 3 in
      S.Parallel.map ~jobs:(jobs + 1) ~f n
      = Array.init n (fun i -> S.Parallel.Value (f i)))

let on_result_reports_each_task_once () =
  let n = 17 and jobs = 4 in
  let counts = Array.make n 0 in
  let results =
    S.Parallel.map
      ~on_result:(fun i _ -> counts.(i) <- counts.(i) + 1)
      ~jobs ~f:(fun i -> i) n
  in
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "task %d reported once" i) 1 c)
    counts;
  Array.iteri (fun i r -> check_int "result" i (value r)) results

let workers_actually_overlap () =
  (* Sleeping tasks prove concurrency even on a single-CPU box: eight
     0.15 s sleeps across four workers must beat the 1.2 s a serial
     execution needs by a wide margin. *)
  let t0 = Unix.gettimeofday () in
  let r = S.Parallel.map ~jobs:4 ~f:(fun i -> Unix.sleepf 0.15; i) 8 in
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iteri (fun i x -> check_int "slot" i (value x)) r;
  check_bool
    (Printf.sprintf "8x0.15s over 4 workers took %.2fs (serial: 1.2s)" elapsed)
    true (elapsed < 1.0)

let dead_worker_censors_only_its_task () =
  (* Worker 2's stripe is [2; 5; 8]: it reports 2, dies executing 5,
     and the respawned replacement still delivers 8. *)
  let f i = if i = 5 then Unix._exit 42 else i * 10 in
  let got = S.Parallel.map ~jobs:3 ~f 9 in
  Array.iteri
    (fun i r ->
      if i = 5 then
        check_bool "task 5 lost" true (r = S.Parallel.Lost)
      else check_int (Printf.sprintf "task %d survives" i) (i * 10) (value r))
    got

let wedge () =
  (* An honest wedge: alive, scheduled, making no progress and sending
     no beats — exactly what a livelocked run looks like. *)
  while true do
    ignore (Unix.select [] [] [] 0.05)
  done;
  assert false

let watchdog_kills_wedged_worker () =
  (* Task 3 wedges its worker; the watchdog must declare it Hung within
     the grace and every other task must still deliver. *)
  let hung = ref [] in
  let got =
    S.Parallel.map
      ~on_pool_event:(function
        | S.Parallel.Worker_hung { lost_task; _ } -> hung := lost_task :: !hung
        | _ -> ())
      ~watchdog:0.5 ~jobs:3
      ~f:(fun i -> if i = 3 then wedge () else i * 10)
      9
  in
  Array.iteri
    (fun i r ->
      if i = 3 then check_bool "task 3 hung" true (r = S.Parallel.Hung)
      else check_int (Printf.sprintf "task %d survives" i) (i * 10) (value r))
    got;
  check_bool "pool reported the hang" true (!hung = [ Some 3 ])

let watchdog_spares_beating_workers () =
  (* A task slower than the grace but beating through it must NOT be
     declared hung. *)
  let got =
    S.Parallel.map ~watchdog:0.3 ~jobs:2
      ~f:(fun i ->
        if i = 1 then
          for _ = 1 to 8 do
            Unix.sleepf 0.1;
            S.Parallel.beat ()
          done;
        i)
      4
  in
  Array.iteri (fun i r -> check_int "all delivered" i (value r)) got

let watchdog_forces_fork_at_jobs1 () =
  (* Hang recovery needs a process boundary: with a watchdog even
     jobs:1 forks, so a wedge costs one task, not the whole process. *)
  let got =
    S.Parallel.map ~watchdog:0.5 ~jobs:1
      ~f:(fun i -> if i = 1 then wedge () else i)
      3
  in
  check_bool "wedged task censored" true (got.(1) = S.Parallel.Hung);
  check_int "tasks after the wedge still run" 2 (value got.(2))

exception Boom

let raising_on_result_reaps_workers () =
  (* The pool must not leak children when the merge callback raises. *)
  let raised = ref false in
  (try
     ignore
       (S.Parallel.map
          ~on_result:(fun _ _ -> raise Boom)
          ~jobs:3
          ~f:(fun i -> Unix.sleepf 0.05; i)
          9)
   with Boom -> raised := true);
  check_bool "exception propagates" true !raised;
  (* Every child is dead and reaped: no process in our group left. *)
  let none_left =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
    | 0, _ -> false
    | _ -> false
  in
  check_bool "no zombie workers" true none_left

(* ------------------------------------------------------------------ *)
(* Campaign determinism under --jobs                                   *)
(* ------------------------------------------------------------------ *)

let tiny =
  {
    P.default with
    P.name = "parallel";
    functions = 8;
    hot_functions = 4;
    iterations = 12;
    inner_trips = 6;
    seed = 0xBA_8A_11E1L;
  }

let program = lazy (Stz_workloads.Generate.program tiny)
let config = S.Config.stabilizer
let args = [ 1 ]

let policy =
  { S.Supervisor.default_policy with S.Supervisor.max_retries = 2 }

let campaign ?(runs = 50) ?(jobs = 1) ?checkpoint ?(resume = false) ?on_record
    ~seed profile =
  S.Supervisor.run_campaign ~policy ~profile ~jobs ?checkpoint ~resume
    ?on_record ~config ~base_seed:(Int64.of_int seed) ~runs ~args
    (Lazy.force program)

let with_temp f =
  let path = Filename.temp_file "stz-parallel" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let jobs4_is_byte_identical_to_serial () =
  (* The tentpole property: a 50-run light-fault campaign under --jobs 4
     leaves exactly the bytes a serial one does — outcome CSV and JSON
     checkpoint both. *)
  with_temp (fun path1 ->
      with_temp (fun path4 ->
          let c1 = campaign ~seed:7 ~checkpoint:path1 F.light in
          let c4 = campaign ~seed:7 ~jobs:4 ~checkpoint:path4 F.light in
          check_string "outcome CSVs byte-identical"
            (S.Report.csv_of_campaign c1)
            (S.Report.csv_of_campaign c4);
          check_string "checkpoints byte-identical" (read_file path1)
            (read_file path4);
          check_bool "times bit-identical" true
            (S.Supervisor.times c1 = S.Supervisor.times c4)))

exception Killed

let kill_and_resume_under_jobs4_is_byte_identical () =
  (* Kill a --jobs 4 campaign after 12 delivered runs, resume it under
     --jobs 4, and demand the serial campaign's exact bytes. *)
  with_temp (fun serial_path ->
      with_temp (fun par_path ->
          let serial = campaign ~seed:11 ~checkpoint:serial_path F.light in
          let seen = ref 0 in
          (try
             ignore
               (campaign ~seed:11 ~jobs:4 ~checkpoint:par_path
                  ~on_record:(fun _ ->
                    incr seen;
                    if !seen = 12 then raise Killed)
                  F.light)
           with Killed -> ());
          check_int "killed mid-campaign" 12 !seen;
          (* The interrupted checkpoint holds a prefix of completed
             runs, exactly as a serial interruption would. *)
          (match S.Supervisor.load par_path with
          | Error e -> Alcotest.failf "mid-flight checkpoint: %s" e
          | Ok mid ->
              let serial_prefix =
                List.filteri
                  (fun i _ -> i < List.length mid.S.Supervisor.records)
                  serial.S.Supervisor.records
              in
              check_bool "mid-flight checkpoint is a run-order prefix" true
                (mid.S.Supervisor.records = serial_prefix));
          let resumed =
            campaign ~seed:11 ~jobs:4 ~checkpoint:par_path ~resume:true F.light
          in
          check_bool "records identical after resume" true
            (serial.S.Supervisor.records = resumed.S.Supervisor.records);
          check_string "final checkpoints byte-identical"
            (read_file serial_path) (read_file par_path);
          check_string "outcome CSVs byte-identical"
            (S.Report.csv_of_campaign serial)
            (S.Report.csv_of_campaign resumed)))

let heavy_faults_jobs_identical () =
  (* Retries and quarantine stay seed-derived, so even a heavily
     faulting campaign merges identically. *)
  let c1 = campaign ~runs:16 ~seed:3 F.heavy in
  let c3 = campaign ~runs:16 ~seed:3 ~jobs:3 F.heavy in
  check_bool "records" true
    (c1.S.Supervisor.records = c3.S.Supervisor.records);
  check_bool "quarantine order" true
    (c1.S.Supervisor.quarantined = c3.S.Supervisor.quarantined);
  check_string "CSV" (S.Report.csv_of_campaign c1) (S.Report.csv_of_campaign c3)

(* ------------------------------------------------------------------ *)
(* Wedged runs: the watchdog inside a campaign                         *)
(* ------------------------------------------------------------------ *)

let wedgy = { F.none with F.wedge = 0.4 }

let fast_hang_policy =
  {
    policy with
    S.Supervisor.hang_grace = Some 0.5;
    S.Supervisor.max_retries = 1;
  }

let wedge_campaign ~jobs ~seed =
  S.Supervisor.run_campaign ~policy:fast_hang_policy ~profile:wedgy ~jobs
    ~config ~base_seed:(Int64.of_int seed) ~runs:10 ~args (Lazy.force program)

let wedged_campaign_is_censored_not_stalled () =
  (* A campaign whose profile wedges runs must complete (no stall),
     censor the wedged runs as worker-hung, and keep its books
     balanced. *)
  let c = wedge_campaign ~jobs:2 ~seed:17 in
  let s = S.Supervisor.summarize c in
  check_int "every run accounted for" 10 (List.length c.S.Supervisor.records);
  check_bool "some runs actually wedged" true (s.S.Supervisor.worker_hung > 0);
  check_int "completed + censored = runs" 10
    (s.S.Supervisor.completed + s.S.Supervisor.censored)

let wedged_campaign_jobs_identical () =
  (* Hang recovery may not cost determinism: the same wedgy campaign
     under 2 and 3 workers leaves identical records and CSV. *)
  let c2 = wedge_campaign ~jobs:2 ~seed:17 in
  let c3 = wedge_campaign ~jobs:3 ~seed:17 in
  check_bool "records" true
    (c2.S.Supervisor.records = c3.S.Supervisor.records);
  check_bool "quarantine" true
    (c2.S.Supervisor.quarantined = c3.S.Supervisor.quarantined);
  check_string "CSV" (S.Report.csv_of_campaign c2) (S.Report.csv_of_campaign c3)

let wedged_checkpoint_derived_state_identity () =
  (* Worker-hung records quarantine nothing; tearing the state record
     off a wedgy campaign's checkpoint and re-deriving it must agree —
     an extra derived seed would diverge from the uninterrupted
     bytes. *)
  let with_temp f =
    let path = Filename.temp_file "stz-wedge" ".ck" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () -> f path)
  in
  with_temp (fun path ->
      let c =
        S.Supervisor.run_campaign ~policy:fast_hang_policy ~profile:wedgy
          ~jobs:2 ~checkpoint:path ~config ~base_seed:17L ~runs:10 ~args
          (Lazy.force program)
      in
      check_bool "campaign has hung records" true
        ((S.Supervisor.summarize c).S.Supervisor.worker_hung > 0);
      let salvage = Stz_store.Artifact.salvage_file path in
      match salvage with
      | Error e -> Alcotest.failf "salvage: %s" e
      | Ok s ->
          Stz_store.Artifact.write_records path ~kind:"szc-checkpoint"
            (List.filter
               (fun (tag, _) -> tag <> "state")
               s.Stz_store.Artifact.records);
          (match S.Supervisor.recover path with
          | Error e -> Alcotest.failf "recover: %s" e
          | Ok (got, note) ->
              check_bool "salvage noted" true (note <> None);
              check_bool "derived quarantine identical" true
                (got.S.Supervisor.quarantined = c.S.Supervisor.quarantined);
              check_bool "records identical" true
                (got.S.Supervisor.records = c.S.Supervisor.records)))

let serial_wedge_is_rejected () =
  (* A wedge without a worker pool would hang the harness itself; the
     supervisor must refuse up front. *)
  Alcotest.check_raises "jobs 1 + wedge raises Mismatch"
    (S.Supervisor.Mismatch
       "run_campaign: wedge-armed profiles need jobs >= 2 (hang recovery \
        requires a worker pool)")
    (fun () -> ignore (wedge_campaign ~jobs:1 ~seed:17))

(* ------------------------------------------------------------------ *)
(* Spawn failure and EINTR robustness                                  *)
(* ------------------------------------------------------------------ *)

let with_forced_failures n f =
  S.Parallel.forced_fork_failures := n;
  Fun.protect ~finally:(fun () -> S.Parallel.forced_fork_failures := 0) f

let spawn_failed_events events =
  List.filter_map
    (function S.Parallel.Worker_spawn_failed { tasks } -> Some tasks | _ -> None)
    events

let transient_fork_failures_are_retried () =
  (* Three EAGAINs in a row are absorbed by the backoff schedule: every
     value still arrives and no stripe is censored. *)
  with_forced_failures 3 (fun () ->
      let events = ref [] in
      let got =
        S.Parallel.map
          ~on_pool_event:(fun e -> events := e :: !events)
          ~jobs:2
          ~f:(fun i -> i * 3)
          8
      in
      Array.iteri
        (fun i r -> check_int "value survives fork retries" (i * 3) (value r))
        got;
      check_int "no stripe censored" 0 (List.length (spawn_failed_events !events));
      check_int "all injected failures consumed" 0 !S.Parallel.forced_fork_failures)

let spawn_failure_degrades_not_aborts () =
  (* Six failures exhaust exactly the first stripe's retry budget
     (initial attempt + 5 backoff retries): its tasks are censored
     Lost, the other stripe forks normally and delivers. *)
  with_forced_failures 6 (fun () ->
      let events = ref [] in
      let got =
        S.Parallel.map
          ~on_pool_event:(fun e -> events := e :: !events)
          ~jobs:2 ~f:(fun i -> i * 10) 4
      in
      check_bool "stripe-0 task 0 censored" true (got.(0) = S.Parallel.Lost);
      check_bool "stripe-0 task 2 censored" true (got.(2) = S.Parallel.Lost);
      check_int "stripe-1 task 1 delivered" 10 (value got.(1));
      check_int "stripe-1 task 3 delivered" 30 (value got.(3));
      check_bool "one spawn failure, stripe width 2" true
        (spawn_failed_events !events = [ 2 ]))

let exhausted_fork_budget_censors_stripes () =
  (* Fork never recovers: both stripes burn their whole budget, every
     task is reported Lost exactly once, and map still returns. *)
  with_forced_failures 12 (fun () ->
      let lost = ref 0 and events = ref [] in
      let got =
        S.Parallel.map
          ~on_result:(fun _ r -> if r = S.Parallel.Lost then incr lost)
          ~on_pool_event:(fun e -> events := e :: !events)
          ~jobs:2 ~f:Fun.id 4
      in
      Array.iteri
        (fun i r ->
          check_bool (Printf.sprintf "task %d censored" i) true
            (r = S.Parallel.Lost))
        got;
      check_int "every task reported Lost via on_result" 4 !lost;
      check_bool "both stripes reported spawn failure" true
        (spawn_failed_events !events = [ 2; 2 ]))

let eintr_storm_does_not_disturb_map () =
  (* A 10 ms SIGALRM interval hammers the parent's select loop (and the
     workers' pipe writes) with EINTR for the whole map; the retry
     paths must make that invisible. *)
  let f i =
    let acc = ref 0 in
    for k = 0 to 2_000_000 do
      acc := !acc + ((i + k) mod 7)
    done;
    !acc
  in
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let stop_timer () =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.0; it_value = 0.0 })
  in
  let got =
    Fun.protect
      ~finally:(fun () ->
        stop_timer ();
        Sys.set_signal Sys.sigalrm old)
      (fun () ->
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_interval = 0.01; it_value = 0.01 });
        S.Parallel.map ~jobs:2 ~f 6)
  in
  let want = Array.init 6 (fun i -> S.Parallel.Value (f i)) in
  check_bool "EINTR-riddled map matches serial" true (got = want)

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches serial" `Quick map_matches_serial;
          QCheck_alcotest.to_alcotest map_matches_serial_prop;
          Alcotest.test_case "on_result covers each task once" `Quick
            on_result_reports_each_task_once;
          Alcotest.test_case "workers overlap in time" `Quick
            workers_actually_overlap;
          Alcotest.test_case "dead worker censors only its task" `Quick
            dead_worker_censors_only_its_task;
          Alcotest.test_case "raising on_result reaps workers" `Quick
            raising_on_result_reaps_workers;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "kills a wedged worker" `Quick
            watchdog_kills_wedged_worker;
          Alcotest.test_case "spares a beating worker" `Quick
            watchdog_spares_beating_workers;
          Alcotest.test_case "forces a fork at jobs 1" `Quick
            watchdog_forces_fork_at_jobs1;
        ] );
      ( "spawn",
        [
          Alcotest.test_case "transient fork failures retried" `Quick
            transient_fork_failures_are_retried;
          Alcotest.test_case "spawn failure censors one stripe, pool continues"
            `Slow spawn_failure_degrades_not_aborts;
          Alcotest.test_case "exhausted fork budget censors all stripes" `Slow
            exhausted_fork_budget_censors_stripes;
          Alcotest.test_case "EINTR storm does not disturb map" `Quick
            eintr_storm_does_not_disturb_map;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs 4 byte-identical to serial" `Quick
            jobs4_is_byte_identical_to_serial;
          Alcotest.test_case "kill+resume under jobs 4 byte-identical" `Quick
            kill_and_resume_under_jobs4_is_byte_identical;
          Alcotest.test_case "heavy faults identical under jobs" `Quick
            heavy_faults_jobs_identical;
          Alcotest.test_case "wedged runs censored, campaign completes" `Quick
            wedged_campaign_is_censored_not_stalled;
          Alcotest.test_case "wedgy campaign identical under jobs" `Quick
            wedged_campaign_jobs_identical;
          Alcotest.test_case "wedgy checkpoint derived-state identity" `Quick
            wedged_checkpoint_derived_state_identity;
          Alcotest.test_case "serial wedge rejected up front" `Quick
            serial_wedge_is_rejected;
        ] );
    ]
