(* Fault injection and supervised campaigns: the harness must survive
   every fault profile without raising, keep exact books, retry with
   bounded effort, and resume a killed campaign into a sample
   bit-identical to an uninterrupted one. *)

module S = Stabilizer
module F = Stz_faults.Fault
module Injector = Stz_faults.Injector
module Interp = Stz_vm.Interp
module P = Stz_workloads.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny =
  {
    P.default with
    P.name = "faulty";
    functions = 8;
    hot_functions = 4;
    iterations = 12;
    inner_trips = 6;
    seed = 0xFA_17L;
  }

let program = lazy (Stz_workloads.Generate.program tiny)
let config = S.Config.stabilizer
let args = [ 1 ]

let policy =
  { S.Supervisor.default_policy with S.Supervisor.max_retries = 2 }

let campaign ?(runs = 8) ?checkpoint ?(resume = false) ?on_record ~seed profile
    =
  S.Supervisor.run_campaign ~policy ~profile ?checkpoint ~resume ?on_record
    ~config ~base_seed:(Int64.of_int seed) ~runs ~args (Lazy.force program)

(* Every fault class armed at probability 1, next to the presets. *)
let all_profiles =
  [
    ("fuel", { F.none with F.fuel_starvation = 1.0 });
    ("depth", { F.none with F.depth_blowout = 1.0; F.starved_depth = 1 });
    ("oom", { F.none with F.alloc_failure = 1.0 });
    ("preempt", { F.none with F.preemption_spike = 1.0 });
    ("poison", { F.none with F.seed_poisoning = 1.0 });
  ]
  @ F.named

(* The books must balance for any campaign: every run accounted for,
   every failed attempt quarantined, retries bounded by policy. *)
let check_books name (c : S.Supervisor.campaign) =
  let s = S.Supervisor.summarize c in
  check_int (name ^ ": every run accounted") s.S.Supervisor.runs
    (s.S.Supervisor.completed + s.S.Supervisor.censored);
  check_int
    (name ^ ": quarantine holds each failed attempt")
    (s.S.Supervisor.total_retries + s.S.Supervisor.censored)
    s.S.Supervisor.quarantined;
  check_bool (name ^ ": retries bounded") true
    (List.for_all
       (fun r -> r.S.Supervisor.retries <= policy.S.Supervisor.max_retries)
       c.S.Supervisor.records);
  check_int (name ^ ": sample size = completed runs") s.S.Supervisor.completed
    (Array.length (S.Supervisor.times c))

(* ------------------------------------------------------------------ *)
(* Injector                                                            *)
(* ------------------------------------------------------------------ *)

let injector_deterministic =
  QCheck.Test.make ~name:"injector plan is a function of (profile, seed)"
    ~count:200 QCheck.int64 (fun seed ->
      let plan () =
        Injector.plan ~profile:F.heavy ~limits:Interp.default_limits ~seed ()
      in
      let a = plan () and b = plan () in
      a.Injector.armed = b.Injector.armed && a.Injector.limits = b.Injector.limits)

let injector_none_is_identity () =
  let plan =
    Injector.plan ~profile:F.none ~limits:Interp.default_limits ~seed:7L ()
  in
  check_bool "nothing armed" true (plan.Injector.armed = []);
  check_bool "limits untouched" true
    (plan.Injector.limits = Interp.default_limits);
  check_bool "no machine override" true (plan.Injector.machine_factory = None)

let injector_chaos_arms_everything () =
  let plan =
    Injector.plan ~profile:F.chaos ~limits:Interp.default_limits ~seed:7L ()
  in
  List.iter
    (fun c ->
      if c <> F.Unknown_trap then
        check_bool (F.class_to_string c ^ " armed") true (Injector.armed plan c))
    F.all_classes;
  check_bool "fuel tightened" true
    (plan.Injector.limits.Interp.max_instructions
    < Interp.default_limits.Interp.max_instructions);
  check_bool "depth tightened" true
    (plan.Injector.limits.Interp.max_call_depth
    <= F.chaos.F.starved_depth)

(* ------------------------------------------------------------------ *)
(* Sample: censoring instead of raising                                *)
(* ------------------------------------------------------------------ *)

let sample_censors_instead_of_raising =
  QCheck.Test.make ~name:"Sample.collect never raises under chaos" ~count:25
    QCheck.small_int (fun seed ->
      let s =
        S.Sample.collect ~profile:F.chaos ~config
          ~base_seed:(Int64.of_int seed) ~runs:5 ~args (Lazy.force program)
      in
      Array.length s.S.Sample.times + List.length s.S.Sample.failures = 5)

let sample_starved_fuel_escapes_no_more () =
  (* The pre-supervisor bug: a starved run used to raise out of collect
     and destroy the whole sample. Now it lands in [failures]. *)
  let limits = Interp.limits ~max_instructions:50 () in
  let s =
    S.Sample.collect ~limits ~config ~base_seed:3L ~runs:4 ~args
      (Lazy.force program)
  in
  check_int "all censored" 4 (List.length s.S.Sample.failures);
  List.iter
    (fun f ->
      check_bool "classified as fuel starvation" true
        (f.S.Sample.kind = S.Sample.Faulted F.Fuel_starvation))
    s.S.Sample.failures

let sample_seed_derivation_is_stable () =
  let seeds = S.Sample.seeds ~base_seed:42L ~runs:5 in
  let g = Stz_prng.Splitmix.create 42L in
  let expected = Array.init 5 (fun _ -> Stz_prng.Splitmix.split g) in
  check_bool "matches sequential splits" true (seeds = expected)

(* ------------------------------------------------------------------ *)
(* Outcome gates                                                       *)
(* ------------------------------------------------------------------ *)

let outcome_gates () =
  match S.Outcome.run ~config ~seed:1L (Lazy.force program) ~args with
  | S.Outcome.Completed r ->
      check_bool "budget gate" true
        (match S.Outcome.check ~budget_cycles:(r.S.Runtime.cycles - 1) r with
        | S.Outcome.Budget_exceeded _ -> true
        | _ -> false);
      check_bool "reference gate" true
        (match S.Outcome.check ~reference:(r.S.Runtime.return_value + 1) r with
        | S.Outcome.Invalid_result _ -> true
        | _ -> false);
      check_bool "clean run passes" true
        (S.Outcome.check ~budget_cycles:r.S.Runtime.cycles
           ~reference:r.S.Runtime.return_value r
        = S.Outcome.Completed r)
  | o -> Alcotest.failf "clean run did not complete: %s" (S.Outcome.to_string o)

let outcome_classifies_exceptions () =
  let cls e = S.Outcome.classify_exn e in
  check_bool "fuel" true (cls Interp.Fuel_exhausted = F.Fuel_starvation);
  check_bool "depth" true (cls Interp.Call_depth_exceeded = F.Depth_blowout);
  check_bool "injected oom" true (cls F.Injected_oom = F.Alloc_failure);
  check_bool "genuine oom" true (cls Out_of_memory = F.Alloc_failure);
  check_bool "anything else" true (cls Exit = F.Unknown_trap)

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

let campaigns_never_raise () =
  List.iter
    (fun (name, profile) -> check_books name (campaign ~seed:11 profile))
    all_profiles

let campaign_books_balance_qcheck =
  QCheck.Test.make ~name:"campaign books balance for any seed" ~count:15
    QCheck.small_int (fun seed ->
      let c = campaign ~runs:5 ~seed F.heavy in
      let s = S.Supervisor.summarize c in
      s.S.Supervisor.completed + s.S.Supervisor.censored = s.S.Supervisor.runs
      && s.S.Supervisor.total_retries + s.S.Supervisor.censored
         = s.S.Supervisor.quarantined)

let campaign_deterministic () =
  let a = campaign ~seed:5 F.heavy and b = campaign ~seed:5 F.heavy in
  check_bool "identical records" true
    (a.S.Supervisor.records = b.S.Supervisor.records);
  check_bool "identical times" true
    (S.Supervisor.times a = S.Supervisor.times b)

let campaign_retries_do_not_shift_other_seeds () =
  (* A run's retries draw from its own seed, so clean runs keep the
     exact seeds an injection-free campaign would use. *)
  let clean = campaign ~runs:10 ~seed:9 F.none in
  let faulty = campaign ~runs:10 ~seed:9 { F.none with F.alloc_failure = 0.4 } in
  let primary = S.Sample.seeds ~base_seed:9L ~runs:10 in
  List.iter2
    (fun (c : S.Supervisor.record) (f : S.Supervisor.record) ->
      check_bool "clean campaign uses primary seeds" true
        (c.S.Supervisor.seed = primary.(c.S.Supervisor.run));
      if f.S.Supervisor.retries = 0 then
        check_bool "unretried runs keep their seed" true
          (f.S.Supervisor.seed = c.S.Supervisor.seed))
    clean.S.Supervisor.records faulty.S.Supervisor.records

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                 *)
(* ------------------------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "stz-supervisor" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let checkpoint_roundtrip () =
  let c = campaign ~seed:21 F.heavy in
  match S.Supervisor.of_json (S.Supervisor.to_json c) with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok c' ->
      check_bool "records" true (c.S.Supervisor.records = c'.S.Supervisor.records);
      check_bool "quarantine" true
        (c.S.Supervisor.quarantined = c'.S.Supervisor.quarantined);
      check_bool "budgets" true
        (c.S.Supervisor.budget_cycles = c'.S.Supervisor.budget_cycles
        && c.S.Supervisor.budget_fuel = c'.S.Supervisor.budget_fuel);
      check_bool "reference" true
        (c.S.Supervisor.reference = c'.S.Supervisor.reference)

let checkpoint_file_roundtrip () =
  with_temp (fun path ->
      let c = campaign ~seed:22 ~checkpoint:path F.light in
      match S.Supervisor.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok c' ->
          check_bool "file round-trips records" true
            (c.S.Supervisor.records = c'.S.Supervisor.records))

exception Killed

let kill_and_resume_is_uninterrupted () =
  (* Kill the campaign after 4 finished runs, resume from its
     checkpoint, and demand the exact sample of an uninterrupted
     campaign: same seeds, bit-identical times. *)
  let uninterrupted = campaign ~runs:10 ~seed:7 F.heavy in
  with_temp (fun path ->
      let seen = ref 0 in
      (try
         ignore
           (campaign ~runs:10 ~seed:7 ~checkpoint:path
              ~on_record:(fun _ ->
                incr seen;
                if !seen = 4 then raise Killed)
              F.heavy)
       with Killed -> ());
      check_int "killed mid-campaign" 4 !seen;
      let resumed = campaign ~runs:10 ~seed:7 ~checkpoint:path ~resume:true F.heavy in
      check_bool "same records" true
        (uninterrupted.S.Supervisor.records = resumed.S.Supervisor.records);
      check_bool "bit-identical times" true
        (S.Supervisor.times uninterrupted = S.Supervisor.times resumed);
      check_bool "same quarantine" true
        (List.sort compare uninterrupted.S.Supervisor.quarantined
        = List.sort compare resumed.S.Supervisor.quarantined);
      check_books "resumed" resumed)

let resume_over_finished_campaign_is_identity () =
  with_temp (fun path ->
      let c1 = campaign ~seed:23 ~checkpoint:path F.heavy in
      let c2 = campaign ~seed:23 ~checkpoint:path ~resume:true F.heavy in
      check_bool "identity" true
        (c1.S.Supervisor.records = c2.S.Supervisor.records))

let resume_refuses_foreign_checkpoint () =
  with_temp (fun path ->
      ignore (campaign ~seed:1 ~checkpoint:path F.light);
      let mismatch = ref false in
      (try ignore (campaign ~seed:2 ~checkpoint:path ~resume:true F.light)
       with S.Supervisor.Mismatch _ -> mismatch := true);
      check_bool "different base seed refused" true !mismatch;
      let mismatch = ref false in
      (try ignore (campaign ~seed:1 ~checkpoint:path ~resume:true F.heavy)
       with S.Supervisor.Mismatch _ -> mismatch := true);
      check_bool "different fault profile refused" true !mismatch)

(* ------------------------------------------------------------------ *)
(* Min-N gate                                                          *)
(* ------------------------------------------------------------------ *)

let min_n_refuses_censored_samples () =
  let a = Array.init 12 (fun i -> 1.0 +. (0.01 *. float_of_int i)) in
  let b = Array.init 12 (fun i -> 1.2 +. (0.01 *. float_of_int i)) in
  (match S.Experiment.compare_samples_gated ~min_n:20 a b with
  | S.Experiment.Insufficient { min_n; n_a; n_b } ->
      check_int "min_n" 20 min_n;
      check_int "n_a" 12 n_a;
      check_int "n_b" 12 n_b
  | S.Experiment.Verdict _ -> Alcotest.fail "verdict from censored sample");
  match S.Experiment.compare_samples_gated ~min_n:10 a b with
  | S.Experiment.Verdict _ -> ()
  | S.Experiment.Insufficient _ -> Alcotest.fail "refused a sufficient sample"

let verdict_gates_censored_campaigns () =
  (* An all-OOM campaign yields zero usable runs; the verdict must be a
     refusal, not a conclusion. *)
  let bad = campaign ~seed:31 { F.none with F.alloc_failure = 1.0 } in
  let good = campaign ~seed:32 F.none in
  check_int "no usable runs" 0 (Array.length (S.Supervisor.times bad));
  (match S.Supervisor.verdict ~min_n:3 bad good with
  | S.Experiment.Insufficient _ -> ()
  | S.Experiment.Verdict _ -> Alcotest.fail "verdict from empty sample");
  check_bool "refusal is described" true
    (String.length
       (S.Experiment.describe_gated (S.Supervisor.verdict ~min_n:3 bad good))
    > 0)

(* ------------------------------------------------------------------ *)
(* Report telemetry                                                    *)
(* ------------------------------------------------------------------ *)

let report_campaign_line_and_csv () =
  let c = campaign ~runs:10 ~seed:41 F.heavy in
  let s = S.Supervisor.summarize c in
  let line = S.Report.campaign_line s in
  check_bool "line mentions run count" true
    (String.length line > 0
    && s.S.Supervisor.runs = List.length c.S.Supervisor.records);
  let csv = S.Report.csv_of_campaign c in
  let all_rows = String.split_on_char '\n' (String.trim csv) in
  (* Data rows exclude the '#'-prefixed power footer comments. *)
  let rows =
    List.filter
      (fun r -> String.length r = 0 || r.[0] <> '#')
      all_rows
  in
  check_int "one row per run + header" (s.S.Supervisor.runs + 1)
    (List.length rows);
  (if s.S.Supervisor.completed >= 1 then
     check_bool "power footer present" true
       (List.exists
          (fun r -> String.length r > 0 && r.[0] = '#')
          all_rows));
  check_bool "header names outcome" true
    (match rows with
    | header :: _ ->
        String.length header >= 7
        && List.mem "outcome" (String.split_on_char ',' header)
    | [] -> false)

let report_csv_header_golden () =
  (* Pin the exact header and its arity against the rows: external
     analysis pipelines parse these columns by name and by position, so
     any drift must be a deliberate, test-visible change. *)
  let expected_header =
    "run,seed,retries,outcome,cycles,seconds,value,l1i_misses,l1d_misses,\
     l2_misses,l3_misses,itlb_misses,dtlb_misses,branch_mispredictions,\
     epochs,relocations"
  in
  let c = campaign ~runs:6 ~seed:43 F.none in
  let csv = S.Report.csv_of_campaign c in
  let rows =
    List.filter
      (fun r -> String.length r > 0 && r.[0] <> '#')
      (String.split_on_char '\n' (String.trim csv))
  in
  match rows with
  | [] -> Alcotest.fail "empty csv"
  | header :: data ->
      Alcotest.(check string) "header is pinned" expected_header header;
      let arity s = List.length (String.split_on_char ',' s) in
      check_int "header arity" 16 (arity header);
      (* 7 identity/measurement columns + 7 counter + epochs + relocations
         = 9 columns after value. *)
      check_int "counter columns after value" 9 (arity header - 7);
      List.iter
        (fun row ->
          check_int "row arity matches header" (arity header) (arity row))
        data

(* ------------------------------------------------------------------ *)
(* Profiles and JSON plumbing                                          *)
(* ------------------------------------------------------------------ *)

let profile_parsing () =
  (match F.profile_of_string "light" with
  | Ok p -> check_bool "preset" true (p = F.light)
  | Error e -> Alcotest.fail e);
  (match F.profile_of_string "fuel=0.5,poison=0.25" with
  | Ok p ->
      check_bool "fuel set" true (p.F.fuel_starvation = 0.5);
      check_bool "poison set" true (p.F.seed_poisoning = 0.25);
      check_bool "others off" true (p.F.alloc_failure = 0.0)
  | Error e -> Alcotest.fail e);
  check_bool "unknown preset rejected" true
    (Result.is_error (F.profile_of_string "bogus"));
  check_bool "bad probability rejected" true
    (Result.is_error (F.profile_of_string "fuel=often"))

let fault_class_names_roundtrip () =
  List.iter
    (fun c ->
      check_bool (F.class_to_string c) true
        (F.class_of_string (F.class_to_string c) = Some c))
    F.all_classes

let json_roundtrip () =
  let module J = S.Json in
  let v =
    J.Obj
      [
        ("runs", J.Int 3);
        ("seed", J.of_int64 Int64.min_int);
        ("name", J.String "a \"quoted\" \\ string\n");
        ("xs", J.List [ J.Null; J.Bool true; J.Float 1.5; J.Int (-7) ]);
      ]
  in
  (match J.of_string (J.to_string v) with
  | Ok v' -> check_bool "round-trips" true (v = v')
  | Error e -> Alcotest.fail e);
  (match J.member "seed" v with
  | Some s -> check_bool "int64 survives" true (J.to_int64 s = Some Int64.min_int)
  | None -> Alcotest.fail "member lookup");
  check_bool "garbage rejected" true (Result.is_error (J.of_string "{runs:"))

let () =
  Alcotest.run "supervisor"
    [
      ( "injector",
        [
          QCheck_alcotest.to_alcotest injector_deterministic;
          Alcotest.test_case "none is identity" `Quick injector_none_is_identity;
          Alcotest.test_case "chaos arms all" `Quick injector_chaos_arms_everything;
        ] );
      ( "sample",
        [
          QCheck_alcotest.to_alcotest sample_censors_instead_of_raising;
          Alcotest.test_case "starved fuel censored" `Quick
            sample_starved_fuel_escapes_no_more;
          Alcotest.test_case "seed derivation stable" `Quick
            sample_seed_derivation_is_stable;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "budget and reference gates" `Quick outcome_gates;
          Alcotest.test_case "exception classification" `Quick
            outcome_classifies_exceptions;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "never raises, any profile" `Quick
            campaigns_never_raise;
          QCheck_alcotest.to_alcotest campaign_books_balance_qcheck;
          Alcotest.test_case "deterministic" `Quick campaign_deterministic;
          Alcotest.test_case "retries keep other seeds" `Quick
            campaign_retries_do_not_shift_other_seeds;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "json round-trip" `Quick checkpoint_roundtrip;
          Alcotest.test_case "file round-trip" `Quick checkpoint_file_roundtrip;
          Alcotest.test_case "kill + resume = uninterrupted" `Quick
            kill_and_resume_is_uninterrupted;
          Alcotest.test_case "resume of finished is identity" `Quick
            resume_over_finished_campaign_is_identity;
          Alcotest.test_case "foreign checkpoint refused" `Quick
            resume_refuses_foreign_checkpoint;
        ] );
      ( "min-n gate",
        [
          Alcotest.test_case "refuses censored samples" `Quick
            min_n_refuses_censored_samples;
          Alcotest.test_case "gates campaign verdicts" `Quick
            verdict_gates_censored_campaigns;
        ] );
      ( "report",
        [
          Alcotest.test_case "campaign line + csv" `Quick
            report_campaign_line_and_csv;
          Alcotest.test_case "csv header golden" `Quick
            report_csv_header_golden;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "profile parsing" `Quick profile_parsing;
          Alcotest.test_case "fault class names" `Quick
            fault_class_names_roundtrip;
          Alcotest.test_case "json round-trip" `Quick json_roundtrip;
        ] );
    ]
