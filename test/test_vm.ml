module Ir = Stz_vm.Ir
module B = Stz_vm.Builder
module V = Stz_vm.Validate
module I = Stz_vm.Interp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A trivial machine + env for semantics tests. *)
let env_for p =
  let machine = Stz_machine.Hierarchy.create () in
  let code_addrs =
    let pos = ref 0x400000 in
    Array.map
      (fun f ->
        let a = !pos in
        pos := !pos + Ir.func_size_bytes f + 16;
        a)
      p.Ir.funcs
  in
  let global_addrs =
    let pos = ref 0x600000 in
    Array.map
      (fun (g : Ir.global) ->
        let a = !pos in
        pos := !pos + g.gsize + 16;
        a)
      p.Ir.globals
  in
  let brk = ref 0x10000000 in
  let malloc size =
    let a = !brk in
    brk := !brk + ((size + 15) land lnot 15);
    a
  in
  I.plain_env ~machine ~code_addrs ~global_addrs ~stack_base:0x7FFF0000 ~malloc
    ~free:(fun _ -> ())
    p

let run p args = I.run (env_for p) p ~args

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let builder_rejects_unterminated () =
  let b = B.func ~fid:0 ~name:"f" ~n_args:0 () in
  B.emit b (Ir.Mov (B.fresh_reg b, Ir.Imm 1));
  let raised = try ignore (B.finish b); false with Invalid_argument _ -> true in
  check_bool "missing terminator rejected" true raised

let builder_rejects_empty_block () =
  let b = B.func ~fid:0 ~name:"f" ~n_args:0 () in
  B.emit b (Ir.Ret (Ir.Imm 0));
  ignore (B.new_block b);
  let raised = try ignore (B.finish b); false with Invalid_argument _ -> true in
  check_bool "empty block rejected" true raised

let builder_program_requires_dense_fids () =
  let f fid =
    let b = B.func ~fid ~name:"f" ~n_args:0 () in
    B.emit b (Ir.Ret (Ir.Imm 0));
    B.finish b
  in
  let raised =
    try ignore (B.program ~funcs:[ f 0; f 2 ] ~globals:[] ~entry:0); false
    with Invalid_argument _ -> true
  in
  check_bool "gap in fids rejected" true raised

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let make_single instrs =
  let f =
    {
      Ir.fid = 0;
      fname = "f";
      blocks = [| { Ir.instrs = Array.of_list instrs } |];
      n_args = 0;
      n_regs = 2;
      frame_size = 32;
    }
  in
  { Ir.funcs = [| f |]; globals = [||]; entry = 0 }

let validate_catches_bad_register () =
  let p = make_single [ Ir.Mov (5, Ir.Imm 1); Ir.Ret (Ir.Imm 0) ] in
  check_bool "error found" true (V.check_program p <> [])

let validate_catches_bad_branch () =
  let p = make_single [ Ir.Br 3 ] in
  check_bool "error found" true (V.check_program p <> [])

let validate_catches_bad_call () =
  let p = make_single [ Ir.Call { fn = 7; args = []; dst = 0 }; Ir.Ret (Ir.Imm 0) ] in
  check_bool "error found" true (V.check_program p <> [])

let validate_catches_bad_global () =
  let p = make_single [ Ir.Global (0, 0); Ir.Ret (Ir.Imm 0) ] in
  check_bool "error found" true (V.check_program p <> [])

let validate_catches_misplaced_terminator () =
  let p = make_single [ Ir.Ret (Ir.Imm 0); Ir.Mov (0, Ir.Imm 1); Ir.Ret (Ir.Imm 0) ] in
  check_bool "error found" true (V.check_program p <> [])

let validate_catches_bad_frame_offset () =
  let p = make_single [ Ir.Frame (0, 4096); Ir.Ret (Ir.Imm 0) ] in
  check_bool "error found" true (V.check_program p <> [])

let validate_accepts_good () =
  let p = make_single [ Ir.Mov (0, Ir.Imm 1); Ir.Ret (Ir.Reg 0) ] in
  check_int "no errors" 0 (List.length (V.check_program p));
  V.check_exn p

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)
(* ------------------------------------------------------------------ *)

(* sum of 1..n via loop *)
let sum_program () =
  let b = B.func ~fid:0 ~name:"main" ~n_args:1 () in
  let n = 0 in
  let acc = B.fresh_reg b in
  let i = B.fresh_reg b in
  B.emit b (Ir.Mov (acc, Ir.Imm 0));
  B.emit b (Ir.Mov (i, Ir.Imm 1));
  let head = B.new_block b in
  let body = B.new_block b in
  let exit = B.new_block b in
  B.emit b (Ir.Br head);
  B.set_block b head;
  let c = B.fresh_reg b in
  B.emit b (Ir.Cmp (Ir.Le, c, Ir.Reg i, Ir.Reg n));
  B.emit b (Ir.Brc (Ir.Reg c, body, exit));
  B.set_block b body;
  B.emit b (Ir.Bin (Ir.Add, acc, Ir.Reg acc, Ir.Reg i));
  B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
  B.emit b (Ir.Br head);
  B.set_block b exit;
  B.emit b (Ir.Ret (Ir.Reg acc));
  B.program ~funcs:[ B.finish b ] ~globals:[] ~entry:0

let interp_loop_sum () =
  let p = sum_program () in
  check_int "sum 1..10" 55 (run p [ 10 ]);
  check_int "sum 1..100" 5050 (run p [ 100 ]);
  check_int "sum of none" 0 (run p [ 0 ])

let fact_program () =
  (* f(n) = n <= 1 ? 1 : n * f(n-1): recursion through the call stack. *)
  let b = B.func ~fid:0 ~name:"fact" ~n_args:1 () in
  let n = 0 in
  let base = B.new_block b in
  let rec_ = B.new_block b in
  let c = B.fresh_reg b in
  B.emit b (Ir.Cmp (Ir.Le, c, Ir.Reg n, Ir.Imm 1));
  B.emit b (Ir.Brc (Ir.Reg c, base, rec_));
  B.set_block b base;
  B.emit b (Ir.Ret (Ir.Imm 1));
  B.set_block b rec_;
  let m = B.fresh_reg b in
  let r = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Sub, m, Ir.Reg n, Ir.Imm 1));
  B.emit b (Ir.Call { fn = 0; args = [ Ir.Reg m ]; dst = r });
  let out = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Mul, out, Ir.Reg n, Ir.Reg r));
  B.emit b (Ir.Ret (Ir.Reg out));
  B.program ~funcs:[ B.finish b ] ~globals:[] ~entry:0

let interp_recursion () =
  let p = fact_program () in
  check_int "5!" 120 (run p [ 5 ]);
  check_int "10!" 3628800 (run p [ 10 ])

let interp_memory_roundtrip () =
  let b = B.func ~fid:0 ~name:"main" ~n_args:0 ~frame_size:64 () in
  let slot = B.fresh_reg b in
  let v = B.fresh_reg b in
  B.emit b (Ir.Frame (slot, 16));
  B.emit b (Ir.Store (slot, 0, Ir.Imm 1234));
  B.emit b (Ir.Load (v, slot, 0));
  B.emit b (Ir.Ret (Ir.Reg v));
  let p = B.program ~funcs:[ B.finish b ] ~globals:[] ~entry:0 in
  check_int "store/load" 1234 (run p [])

let interp_untouched_memory_is_zero () =
  let b = B.func ~fid:0 ~name:"main" ~n_args:0 ~frame_size:64 () in
  let slot = B.fresh_reg b in
  let v = B.fresh_reg b in
  B.emit b (Ir.Frame (slot, 32));
  B.emit b (Ir.Load (v, slot, 0));
  B.emit b (Ir.Ret (Ir.Reg v));
  let p = B.program ~funcs:[ B.finish b ] ~globals:[] ~entry:0 in
  check_int "reads zero" 0 (run p [])

let interp_malloc_free () =
  let b = B.func ~fid:0 ~name:"main" ~n_args:0 () in
  let ptr = B.fresh_reg b in
  let v = B.fresh_reg b in
  B.emit b (Ir.Malloc (ptr, Ir.Imm 128));
  B.emit b (Ir.Store (ptr, 8, Ir.Imm 77));
  B.emit b (Ir.Load (v, ptr, 8));
  B.emit b (Ir.Free ptr);
  B.emit b (Ir.Ret (Ir.Reg v));
  let p = B.program ~funcs:[ B.finish b ] ~globals:[] ~entry:0 in
  check_int "heap store/load" 77 (run p [])

let interp_call_args () =
  (* callee(a, b) = a - b; main calls with (10, 3). *)
  let callee =
    let b = B.func ~fid:1 ~name:"sub" ~n_args:2 () in
    let r = B.fresh_reg b in
    B.emit b (Ir.Bin (Ir.Sub, r, Ir.Reg 0, Ir.Reg 1));
    B.emit b (Ir.Ret (Ir.Reg r));
    B.finish b
  in
  let main =
    let b = B.func ~fid:0 ~name:"main" ~n_args:0 () in
    let r = B.fresh_reg b in
    B.emit b (Ir.Call { fn = 1; args = [ Ir.Imm 10; Ir.Imm 3 ]; dst = r });
    B.emit b (Ir.Ret (Ir.Reg r));
    B.finish b
  in
  let p = B.program ~funcs:[ main; callee ] ~globals:[] ~entry:0 in
  check_int "args passed in order" 7 (run p [])

let interp_division_semantics () =
  check_int "div" 3 (I.eval_binop Ir.Div 7 2);
  check_int "div by zero is 0" 0 (I.eval_binop Ir.Div 7 0);
  check_int "shift truncated" (1 lsl 2) (I.eval_binop Ir.Shl 1 (64 + 2));
  check_int "cmp true" 1 (I.eval_cmp Ir.Lt 1 2);
  check_int "cmp false" 0 (I.eval_cmp Ir.Gt 1 2)

let interp_shift_semantics () =
  (* The clamp must keep odd amounts: an earlier [land 62] mask
     silently zeroed the low bit, simulating [x lsl 1] as [x lsl 0]. *)
  check_int "shl 0" 5 (I.eval_binop Ir.Shl 5 0);
  check_int "shl 1 doubles" 10 (I.eval_binop Ir.Shl 5 1);
  check_int "shl 3 odd amount" 40 (I.eval_binop Ir.Shl 5 3);
  check_int "shr 1 halves" 5 (I.eval_binop Ir.Shr 10 1);
  check_int "shl 62" (1 lsl 62) (I.eval_binop Ir.Shl 1 62);
  check_int "shl 63 clamps to 62" (1 lsl 62) (I.eval_binop Ir.Shl 1 63);
  check_int "shr 62" (min_int asr 62) (I.eval_binop Ir.Shr min_int 62);
  check_int "shr 63 clamps to 62" (min_int asr 62)
    (I.eval_binop Ir.Shr min_int 63);
  (* [Shr] is arithmetic: negative operands keep their sign. *)
  check_int "asr negative" (-4) (I.eval_binop Ir.Shr (-16) 2);
  check_int "asr negative saturates to -1" (-1) (I.eval_binop Ir.Shr (-1) 40);
  check_int "asr negative by 62" (-1) (I.eval_binop Ir.Shr (-1000) 62);
  (* Negative amounts wrap through [land 63] like a hardware shifter,
     then clamp: -1 land 63 = 63 -> 62. *)
  check_int "negative amount wraps" (1 lsl 62) (I.eval_binop Ir.Shl 1 (-1));
  check_int "amount 65 wraps to 1" 10 (I.eval_binop Ir.Shl 5 65);
  (* End to end through the interpreter (register and immediate
     operand shapes take different pre-decoded paths). *)
  let b = B.func ~fid:0 ~name:"main" ~n_args:1 () in
  let r = B.fresh_reg b in
  let s = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Shl, r, Ir.Reg 0, Ir.Imm 1));
  B.emit b (Ir.Mov (s, Ir.Imm 3));
  B.emit b (Ir.Bin (Ir.Shl, r, Ir.Reg r, Ir.Reg s));
  B.emit b (Ir.Bin (Ir.Shr, r, Ir.Reg r, Ir.Imm 2));
  B.emit b (Ir.Ret (Ir.Reg r));
  let p = B.program ~funcs:[ B.finish b ] ~globals:[] ~entry:0 in
  check_int "x lsl 1 lsl 3 asr 2 = 4x" 84 (run p [ 21 ])

(* Pin the exact counters of small fixed programs on the default
   machine. Any interpreter or hierarchy change that drifts the
   simulated machine model — rather than just making it faster —
   fails here loudly. Values recorded after the shift-semantics fix;
   they are a contract, not a derivation. *)
let golden_counters program args expected =
  let p = program () in
  let m = Stz_machine.Hierarchy.create () in
  let env =
    I.plain_env ~machine:m
      ~code_addrs:(Array.map (fun _ -> 0x400000) p.Ir.funcs)
      ~global_addrs:[||] ~stack_base:0x7FFF0000
      ~malloc:(fun _ -> 0x10000000)
      ~free:(fun _ -> ())
      p
  in
  ignore (I.run env p ~args);
  List.iter2
    (fun (k, v) (k', v') ->
      check_int ("field order: " ^ k) 0 (compare k k');
      check_int k v' v)
    (Stz_machine.Hierarchy.counters_fields
       (Stz_machine.Hierarchy.counters m))
    expected

let interp_golden_counters_sum () =
  golden_counters sum_program [ 100 ]
    [
      ("cycles", 980);
      ("instructions", 506);
      ("l1i_misses", 1);
      ("l1d_misses", 1);
      ("l2_misses", 2);
      ("l3_misses", 2);
      ("itlb_misses", 1);
      ("dtlb_misses", 1);
      ("branches", 101);
      ("branch_mispredictions", 1);
    ]

let interp_golden_counters_fact () =
  golden_counters fact_program [ 10 ]
    [
      ("cycles", 2381);
      ("instructions", 57);
      ("l1i_misses", 1);
      ("l1d_misses", 10);
      ("l2_misses", 11);
      ("l3_misses", 11);
      ("itlb_misses", 1);
      ("dtlb_misses", 1);
      ("branches", 10);
      ("branch_mispredictions", 2);
    ]

let interp_fuel_exhaustion () =
  (* Infinite loop must hit the fuel limit. *)
  let b = B.func ~fid:0 ~name:"main" ~n_args:0 () in
  B.emit b (Ir.Br 0);
  let p = B.program ~funcs:[ B.finish b ] ~globals:[] ~entry:0 in
  let env = env_for p in
  Alcotest.check_raises "fuel" I.Fuel_exhausted (fun () ->
      ignore
        (I.run ~limits:{ I.max_instructions = 1000; max_call_depth = 10 } env p
           ~args:[]))

let interp_call_depth () =
  let p = fact_program () in
  let env = env_for p in
  Alcotest.check_raises "depth" I.Call_depth_exceeded (fun () ->
      ignore
        (I.run ~limits:{ I.max_instructions = 1_000_000; max_call_depth = 5 } env p
           ~args:[ 100 ]))

let interp_deterministic_cycles () =
  let p = sum_program () in
  let m1 = Stz_machine.Hierarchy.create () in
  let m2 = Stz_machine.Hierarchy.create () in
  let mk m =
    I.plain_env ~machine:m
      ~code_addrs:[| 0x400000 |]
      ~global_addrs:[||] ~stack_base:0x7FFF0000
      ~malloc:(fun _ -> 0x10000000)
      ~free:(fun _ -> ())
      p
  in
  ignore (I.run (mk m1) p ~args:[ 50 ]);
  ignore (I.run (mk m2) p ~args:[ 50 ]);
  check_int "same cycles" (Stz_machine.Hierarchy.cycles m1)
    (Stz_machine.Hierarchy.cycles m2)

let interp_layout_affects_time_not_values () =
  let p = sum_program () in
  let m1 = Stz_machine.Hierarchy.create () in
  let m2 = Stz_machine.Hierarchy.create () in
  let mk m code =
    I.plain_env ~machine:m ~code_addrs:[| code |] ~global_addrs:[||]
      ~stack_base:0x7FFF0000
      ~malloc:(fun _ -> 0x10000000)
      ~free:(fun _ -> ())
      p
  in
  let r1 = I.run (mk m1 0x400000) p ~args:[ 1000 ] in
  let r2 = I.run (mk m2 0x444440) p ~args:[ 1000 ] in
  check_int "same value under different layout" r1 r2

(* ------------------------------------------------------------------ *)
(* Ir utilities                                                        *)
(* ------------------------------------------------------------------ *)

let ir_sizes () =
  let p = sum_program () in
  let f = p.Ir.funcs.(0) in
  check_int "instr count" 9 (Ir.func_instr_count f);
  check_int "bytes" 36 (Ir.func_size_bytes f);
  let offsets = Ir.block_offsets f in
  check_int "entry offset" 0 offsets.(0);
  check_int "blocks contiguous" (3 * 4) offsets.(1)

let ir_callees_and_globals () =
  let p = fact_program () in
  Alcotest.(check (list int)) "self-recursive" [ 0 ] (Ir.callees p.Ir.funcs.(0));
  Alcotest.(check (list int)) "no globals" [] (Ir.referenced_globals p.Ir.funcs.(0))

let ir_copy_is_deep () =
  let p = sum_program () in
  let q = Ir.copy_program p in
  q.Ir.funcs.(0).Ir.blocks.(0).Ir.instrs <- [||];
  check_bool "original untouched" true
    (Array.length p.Ir.funcs.(0).Ir.blocks.(0).Ir.instrs > 0)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let ir_pp_smoke () =
  let p = fact_program () in
  let s = Format.asprintf "%a" Ir.pp_program p in
  check_bool "mentions function" true (contains_substring s "fact");
  check_bool "mentions call" true (contains_substring s "call")

(* ------------------------------------------------------------------ *)
(* Textual IR format                                                   *)
(* ------------------------------------------------------------------ *)

let text_roundtrip_simple () =
  let p = fact_program () in
  let q = Stz_vm.Text.of_string (Stz_vm.Text.to_string p) in
  check_int "same text" 0 (compare (Stz_vm.Text.to_string p) (Stz_vm.Text.to_string q));
  check_int "same result" (run p [ 6 ]) (run q [ 6 ])

let text_roundtrip_generated =
  QCheck.Test.make ~name:"textual IR roundtrips on generated programs" ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let prof =
        {
          Stz_workloads.Profile.default with
          Stz_workloads.Profile.name = "text-test";
          functions = 5;
          hot_functions = 2;
          iterations = 3;
          inner_trips = 4;
          seed = Int64.of_int (seed + 1);
        }
      in
      let p = Stz_workloads.Generate.program prof in
      let text = Stz_vm.Text.to_string p in
      let q = Stz_vm.Text.of_string text in
      Stz_vm.Text.to_string q = text)

let text_parses_handwritten () =
  let src =
    "program entry=f0
" ^ "global g0 scratch size=64
"
    ^ "func f0 main args=1 regs=4 frame=32
" ^ "block b0
"
    ^ "  r1 = global g0        # address of scratch
"
    ^ "  store [r1 + 0], r0
" ^ "  r2 = load [r1 + 0]
"
    ^ "  r3 = add r2, r2
" ^ "  ret r3
"
  in
  let p = Stz_vm.Text.of_string src in
  check_int "doubles" 42 (run p [ 21 ])

let text_parse_errors () =
  let expect_error src =
    match Stz_vm.Text.of_string src with
    | exception Stz_vm.Text.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_error "func f0 main args=0 regs=1 frame=16
block b0
  ret 0
"
  (* missing program header *);
  expect_error "program entry=f0
func f0 main args=0 regs=1 frame=16
  ret 0
"
  (* instruction before block *);
  expect_error
    "program entry=f0
func f0 main args=0 regs=1 frame=16
block b1
  ret 0
"
  (* out-of-order block *);
  expect_error
    "program entry=f0
func f0 main args=0 regs=1 frame=16
block b0
  r0 = frob 1, 2
"
  (* unknown op *);
  expect_error "program entry=f9
func f0 main args=0 regs=1 frame=16
block b0
  ret 0
"
  (* bad entry: validation *)

let text_parse_error_reports_line () =
  match
    Stz_vm.Text.of_string
      "program entry=f0
func f0 main args=0 regs=1 frame=16
block b0
  wat
"
  with
  | exception Stz_vm.Text.Parse_error { line; _ } -> check_int "line number" 4 line
  | _ -> Alcotest.fail "expected a parse error"

let () =
  Alcotest.run "vm"
    [
      ( "builder",
        [
          Alcotest.test_case "unterminated" `Quick builder_rejects_unterminated;
          Alcotest.test_case "empty block" `Quick builder_rejects_empty_block;
          Alcotest.test_case "dense fids" `Quick builder_program_requires_dense_fids;
        ] );
      ( "validate",
        [
          Alcotest.test_case "bad register" `Quick validate_catches_bad_register;
          Alcotest.test_case "bad branch" `Quick validate_catches_bad_branch;
          Alcotest.test_case "bad call" `Quick validate_catches_bad_call;
          Alcotest.test_case "bad global" `Quick validate_catches_bad_global;
          Alcotest.test_case "misplaced terminator" `Quick validate_catches_misplaced_terminator;
          Alcotest.test_case "bad frame offset" `Quick validate_catches_bad_frame_offset;
          Alcotest.test_case "accepts good" `Quick validate_accepts_good;
        ] );
      ( "interp",
        [
          Alcotest.test_case "loop sum" `Quick interp_loop_sum;
          Alcotest.test_case "recursion" `Quick interp_recursion;
          Alcotest.test_case "memory roundtrip" `Quick interp_memory_roundtrip;
          Alcotest.test_case "untouched reads zero" `Quick interp_untouched_memory_is_zero;
          Alcotest.test_case "malloc/free" `Quick interp_malloc_free;
          Alcotest.test_case "call args" `Quick interp_call_args;
          Alcotest.test_case "division/shift" `Quick interp_division_semantics;
          Alcotest.test_case "shift semantics" `Quick interp_shift_semantics;
          Alcotest.test_case "golden counters (sum)" `Quick interp_golden_counters_sum;
          Alcotest.test_case "golden counters (fact)" `Quick interp_golden_counters_fact;
          Alcotest.test_case "fuel" `Quick interp_fuel_exhaustion;
          Alcotest.test_case "call depth" `Quick interp_call_depth;
          Alcotest.test_case "deterministic" `Quick interp_deterministic_cycles;
          Alcotest.test_case "layout-independent values" `Quick interp_layout_affects_time_not_values;
        ] );
      ( "text format",
        [
          Alcotest.test_case "roundtrip simple" `Quick text_roundtrip_simple;
          QCheck_alcotest.to_alcotest text_roundtrip_generated;
          Alcotest.test_case "handwritten program" `Quick text_parses_handwritten;
          Alcotest.test_case "parse errors" `Quick text_parse_errors;
          Alcotest.test_case "error line numbers" `Quick text_parse_error_reports_line;
        ] );
      ( "ir",
        [
          Alcotest.test_case "sizes" `Quick ir_sizes;
          Alcotest.test_case "callees/globals" `Quick ir_callees_and_globals;
          Alcotest.test_case "deep copy" `Quick ir_copy_is_deep;
          Alcotest.test_case "pretty printer" `Quick ir_pp_smoke;
        ] );
    ]
