module S = Stabilizer
module P = Stz_workloads.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small, fast workload for runtime tests. *)
let tiny =
  {
    P.default with
    P.name = "tiny";
    functions = 8;
    hot_functions = 4;
    iterations = 20;
    inner_trips = 8;
    seed = 0x7E57L;
  }

let tiny_program = lazy (Stz_workloads.Generate.program tiny)

let run config seed =
  S.Runtime.run ~config ~seed (Lazy.force tiny_program) ~args:[ 1 ]

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let config_describe () =
  Alcotest.(check string) "full" "code.heap.stack" (S.Config.describe S.Config.stabilizer);
  Alcotest.(check string) "baseline" "baseline" (S.Config.describe S.Config.baseline);
  Alcotest.(check string) "code only" "code" (S.Config.describe S.Config.code_only);
  Alcotest.(check string) "code+stack" "code.stack" (S.Config.describe S.Config.code_stack);
  Alcotest.(check string) "one-time" "code.heap.stack.onetime"
    (S.Config.describe S.Config.one_time)

let config_independent_toggles () =
  (* §2.5: randomizations are independently selectable; all eight
     combinations must run. *)
  List.iter
    (fun (code, stack, heap) ->
      let config = { S.Config.stabilizer with code; stack; heap } in
      let r = run config 1L in
      check_bool "ran" true (r.S.Runtime.cycles > 0))
    [
      (false, false, false); (true, false, false); (false, true, false);
      (false, false, true); (true, true, false); (true, false, true);
      (false, true, true); (true, true, true);
    ]

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

let runtime_deterministic_by_seed () =
  let r1 = run S.Config.stabilizer 42L in
  let r2 = run S.Config.stabilizer 42L in
  check_int "same cycles" r1.S.Runtime.cycles r2.S.Runtime.cycles;
  check_int "same relocations" r1.S.Runtime.relocations r2.S.Runtime.relocations

let runtime_seed_changes_layout_not_result () =
  let r1 = run S.Config.stabilizer 1L in
  let r2 = run S.Config.stabilizer 2L in
  check_int "same program result" r1.S.Runtime.return_value r2.S.Runtime.return_value;
  check_bool "different timing" true (r1.S.Runtime.cycles <> r2.S.Runtime.cycles)

let runtime_all_configs_same_value () =
  (* Layout affects time only: every configuration computes the same
     answer as the plain build. *)
  let reference = (run S.Config.baseline 1L).S.Runtime.return_value in
  List.iter
    (fun config ->
      check_int
        ("same value under " ^ S.Config.describe config)
        reference
        (run config 5L).S.Runtime.return_value)
    [
      S.Config.stabilizer; S.Config.one_time; S.Config.code_only;
      S.Config.code_stack;
      { S.Config.baseline with link_order = S.Config.Random_link };
      { S.Config.stabilizer with granularity = Stz_layout.Code_rand.Block_grain };
      { S.Config.stabilizer with base_allocator = Stz_alloc.Allocator.Tlsf };
      { S.Config.stabilizer with base_allocator = Stz_alloc.Allocator.Diehard };
      { S.Config.stabilizer with reloc_style = Stz_layout.Code_rand.Fixed_table };
      { S.Config.baseline with env_bytes = 4096 };
    ]

let runtime_baseline_has_no_relocations () =
  let r = run S.Config.baseline 1L in
  check_int "no relocations" 0 r.S.Runtime.relocations;
  check_int "one epoch" 1 r.S.Runtime.epochs

let runtime_code_randomization_relocates () =
  let r = run S.Config.code_only 1L in
  check_bool "relocations happened" true (r.S.Runtime.relocations > 0)

let runtime_rerandomization_epochs () =
  let config = { S.Config.stabilizer with interval_cycles = 20_000 } in
  let r = run config 1L in
  check_bool "multiple epochs" true (r.S.Runtime.epochs > 3);
  let one = run S.Config.one_time 1L in
  check_int "one-time has a single epoch" 1 one.S.Runtime.epochs;
  (* More epochs mean more relocations. *)
  let fewer = run { config with interval_cycles = 1_000_000 } 1L in
  check_bool "interval controls epochs" true (fewer.S.Runtime.epochs < r.S.Runtime.epochs)

let runtime_overhead_positive () =
  let base = run S.Config.baseline 1L in
  let full = run S.Config.stabilizer 1L in
  check_bool "randomization costs something" true
    (full.S.Runtime.cycles > base.S.Runtime.cycles);
  check_bool "but less than 2x" true
    (full.S.Runtime.cycles < 2 * base.S.Runtime.cycles)

let runtime_heap_stats () =
  let r = run S.Config.stabilizer 1L in
  let s = r.S.Runtime.heap_stats in
  check_bool "allocations happened" true (s.Stz_alloc.Allocator.allocations > 0);
  check_bool "reserved covers live" true
    (s.Stz_alloc.Allocator.reserved_bytes >= s.Stz_alloc.Allocator.live_bytes)

let runtime_virtual_seconds () =
  let r = run S.Config.baseline 1L in
  Alcotest.(check (float 1e-12))
    "seconds = cycles / 3.2GHz"
    (float_of_int r.S.Runtime.cycles /. 3.2e9)
    r.S.Runtime.virtual_seconds

let runtime_env_bytes_changes_timing () =
  let a = run S.Config.baseline 1L in
  let b = run { S.Config.baseline with env_bytes = 4096 + 64 } 1L in
  (* The Mytkowicz effect: environment size shifts the stack and with it
     cache behaviour. (It must at least not crash; timing usually moves.) *)
  check_int "same result" a.S.Runtime.return_value b.S.Runtime.return_value

(* ------------------------------------------------------------------ *)
(* Sample                                                              *)
(* ------------------------------------------------------------------ *)

let sample_shapes () =
  let s =
    S.Sample.collect ~config:S.Config.stabilizer ~base_seed:3L ~runs:5 ~args:[ 1 ]
      (Lazy.force tiny_program)
  in
  check_int "times" 5 (Array.length s.S.Sample.times);
  check_int "cycles" 5 (Array.length s.S.Sample.cycles);
  check_int "results" 5 (Array.length s.S.Sample.results);
  Array.iter (fun t -> check_bool "positive" true (t > 0.0)) s.S.Sample.times

let sample_deterministic () =
  let t1 =
    S.Sample.times ~config:S.Config.stabilizer ~base_seed:9L ~runs:4 ~args:[ 1 ]
      (Lazy.force tiny_program)
  in
  let t2 =
    S.Sample.times ~config:S.Config.stabilizer ~base_seed:9L ~runs:4 ~args:[ 1 ]
      (Lazy.force tiny_program)
  in
  Alcotest.(check (array (float 0.0))) "same base seed, same samples" t1 t2

let sample_runs_vary () =
  let t =
    S.Sample.times ~config:S.Config.stabilizer ~base_seed:11L ~runs:6 ~args:[ 1 ]
      (Lazy.force tiny_program)
  in
  let distinct = List.sort_uniq compare (Array.to_list t) in
  check_bool "independent layouts differ" true (List.length distinct > 1)

(* ------------------------------------------------------------------ *)
(* Experiment                                                          *)
(* ------------------------------------------------------------------ *)

let normal_samples ~seed ~mu n =
  let g = Stz_prng.Xorshift.create ~seed in
  Array.init n (fun _ ->
      let u1 = Stz_prng.Xorshift.next_float g +. 1e-12 in
      let u2 = Stz_prng.Xorshift.next_float g in
      mu +. (sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)))

let experiment_null () =
  let a = normal_samples ~seed:1L ~mu:10.0 30 in
  let b = normal_samples ~seed:2L ~mu:10.0 30 in
  let c = S.Experiment.compare_samples a b in
  check_bool "uses t-test on normal data" true c.S.Experiment.used_ttest;
  check_bool "not significant" false c.S.Experiment.significant

let experiment_detects_effect () =
  let a = normal_samples ~seed:3L ~mu:10.0 30 in
  let b = normal_samples ~seed:4L ~mu:12.0 30 in
  let c = S.Experiment.compare_samples a b in
  check_bool "significant" true c.S.Experiment.significant;
  check_bool "speedup < 1 (b slower... a/b with b larger)" true
    (c.S.Experiment.speedup < 1.0)

let experiment_falls_back_to_wilcoxon () =
  (* Exponential samples fail Shapiro-Wilk: the §6 fallback kicks in. *)
  let expo seed =
    let g = Stz_prng.Xorshift.create ~seed in
    Array.init 30 (fun _ -> -.log (Stz_prng.Xorshift.next_float g +. 1e-12))
  in
  let c = S.Experiment.compare_samples (expo 5L) (expo 6L) in
  check_bool "non-normal detected" false
    (c.S.Experiment.normal_a && c.S.Experiment.normal_b);
  check_bool "wilcoxon used" false c.S.Experiment.used_ttest

let experiment_flags_unequal_variance () =
  let a = normal_samples ~seed:21L ~mu:10.0 30 in
  let wide =
    Array.map
      (fun x -> 10.0 +. (8.0 *. (x -. 10.0)))
      (normal_samples ~seed:22L ~mu:10.0 30)
  in
  let c = S.Experiment.compare_samples a wide in
  check_bool "unequal variances detected" false c.S.Experiment.equal_variance;
  check_bool "variance p small" true (c.S.Experiment.variance_p < 0.05);
  let described = S.Experiment.describe c in
  let has sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "describe warns" true (has "unequal variances" described);
  (* Matched spreads stay quiet. *)
  let b = normal_samples ~seed:23L ~mu:10.0 30 in
  let c' = S.Experiment.compare_samples a b in
  check_bool "equal variances pass" true c'.S.Experiment.equal_variance;
  check_bool "no warning" false (has "unequal variances" (S.Experiment.describe c'))

let experiment_requires_samples () =
  Alcotest.check_raises "too few"
    (Invalid_argument "Experiment.compare_samples: needs >= 3 samples each")
    (fun () -> ignore (S.Experiment.compare_samples [| 1.0 |] [| 1.0; 2.0; 3.0 |]))

let experiment_suite_anova () =
  (* 10 benchmarks, each ~2% faster under treatment B: the suite-wide
     ANOVA must find the effect that individual noise might hide. *)
  let samples =
    Array.init 10 (fun i ->
        let mu = 10.0 +. float_of_int i in
        ( normal_samples ~seed:(Int64.of_int (100 + i)) ~mu 20,
          Array.map (fun x -> x *. 0.98)
            (normal_samples ~seed:(Int64.of_int (200 + i)) ~mu 20) ))
  in
  let r = S.Experiment.suite_anova samples in
  check_bool "suite effect found" true (r.Stz_stats.Anova.p_value < 0.05)

let experiment_suite_anova_null () =
  let samples =
    Array.init 10 (fun i ->
        let mu = 10.0 +. float_of_int i in
        ( normal_samples ~seed:(Int64.of_int (300 + i)) ~mu 20,
          normal_samples ~seed:(Int64.of_int (400 + i)) ~mu 20 ))
  in
  let r = S.Experiment.suite_anova samples in
  check_bool "no effect claimed" true (r.Stz_stats.Anova.p_value > 0.05)

let experiment_describe () =
  let a = normal_samples ~seed:7L ~mu:10.0 10 in
  let b = normal_samples ~seed:8L ~mu:10.0 10 in
  let s = S.Experiment.describe (S.Experiment.compare_samples a b) in
  check_bool "mentions test" true
    (String.length s > 10)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let driver_compile_validates () =
  let p = Lazy.force tiny_program in
  List.iter
    (fun opt -> ignore (S.Driver.compile ~opt p))
    [ Stz_vm.Opt.O0; Stz_vm.Opt.O1; Stz_vm.Opt.O2; Stz_vm.Opt.O3 ]

let driver_build_and_run () =
  let s =
    S.Driver.build_and_run ~config:S.Config.stabilizer ~opt:Stz_vm.Opt.O2
      ~base_seed:1L ~runs:4 ~args:[ 1 ] (Lazy.force tiny_program)
  in
  check_int "runs" 4 (Array.length s.S.Sample.times)

let driver_o1_beats_o0 () =
  let c =
    S.Driver.compare_opt_levels ~config:S.Config.stabilizer ~base_seed:1L ~runs:8
      ~args:[ 1 ] Stz_vm.Opt.O0 Stz_vm.Opt.O1 (Lazy.force tiny_program)
  in
  (* speedup = mean(O0) / mean(O1) > 1 when O1 is faster. *)
  check_bool "O1 faster than O0" true (c.S.Experiment.speedup > 1.0)

(* ------------------------------------------------------------------ *)
(* Adaptive re-randomization (paper §8)                                *)
(* ------------------------------------------------------------------ *)

let adaptive_mode_runs () =
  let config = { S.Config.stabilizer with adaptive = true } in
  let r = run config 1L in
  let plain = run S.Config.stabilizer 1L in
  check_int "same result" plain.S.Runtime.return_value r.S.Runtime.return_value;
  check_bool "at least as many epochs" true
    (r.S.Runtime.epochs >= plain.S.Runtime.epochs);
  check_bool "triggers counted consistently" true
    (r.S.Runtime.adaptive_triggers <= r.S.Runtime.epochs)

let adaptive_off_means_zero_triggers () =
  let r = run S.Config.stabilizer 1L in
  check_int "no adaptive triggers by default" 0 r.S.Runtime.adaptive_triggers

let adaptive_sensitive_threshold_fires () =
  (* With a hair-trigger threshold, adaptive re-randomization fires on
     a layout-sensitive program. *)
  let p = Stz_workloads.Pathological.program () in
  let config =
    { S.Config.stabilizer with adaptive = true; adaptive_threshold = 1.01 }
  in
  let r = S.Runtime.run ~config ~seed:3L p ~args:[ 1 ] in
  check_bool "fired at least once" true (r.S.Runtime.adaptive_triggers > 0)

(* ------------------------------------------------------------------ *)
(* Heap randomness protocol                                            *)
(* ------------------------------------------------------------------ *)

let heap_randomness_table_shape () =
  let table = S.Heap_randomness.table ~ns:[ 4; 256 ] ~seed:1L () in
  check_int "5 rows" 5 (List.length table);
  List.iter
    (fun r ->
      check_bool "total is 6 or 7" true
        (r.S.Heap_randomness.total >= 6 && r.S.Heap_randomness.total <= 7);
      check_bool "passed <= total" true
        (r.S.Heap_randomness.passed <= r.S.Heap_randomness.total))
    table

let heap_randomness_window_scales_with_n () =
  let r16 = S.Heap_randomness.shuffled ~n:16 ~seed:1L Stz_alloc.Allocator.Segregated in
  let r256 = S.Heap_randomness.shuffled ~n:256 ~seed:1L Stz_alloc.Allocator.Segregated in
  check_int "N=16 window ends at bit 9" 9 r16.S.Heap_randomness.hi_bit;
  check_int "N=256 window ends at bit 13" 13 r256.S.Heap_randomness.hi_bit

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)
(* ------------------------------------------------------------------ *)

let profiler_accounts_all_cycles () =
  let r =
    S.Runtime.run ~profile:true ~config:S.Config.baseline ~seed:1L
      (Lazy.force tiny_program) ~args:[ 1 ]
  in
  match r.S.Runtime.profile with
  | None -> Alcotest.fail "expected a profile"
  | Some entries ->
      let attributed =
        List.fold_left (fun a e -> a + e.S.Profiler.exclusive_cycles) 0 entries
      in
      check_int "every cycle attributed" r.S.Runtime.cycles attributed;
      let calls fid =
        (List.find (fun e -> e.S.Profiler.fid = fid) entries).S.Profiler.calls
      in
      check_int "main called once" 1 (calls 0);
      check_bool "hottest first" true
        (match entries with
        | a :: b :: _ -> a.S.Profiler.exclusive_cycles >= b.S.Profiler.exclusive_cycles
        | _ -> false)

let profiler_off_by_default () =
  let r = run S.Config.stabilizer 1L in
  check_bool "no profile" true (r.S.Runtime.profile = None)

let profiler_unit_attribution () =
  let module H = Stz_machine.Hierarchy in
  let at cycles = { H.counters_zero with H.cycles } in
  let p = Lazy.force tiny_program in
  let pr = S.Profiler.create p in
  S.Profiler.on_enter pr ~fid:0 ~at:(at 0);
  S.Profiler.on_enter pr ~fid:1 ~at:(at 100);
  S.Profiler.on_leave pr ~fid:1 ~at:(at 250);
  S.Profiler.on_leave pr ~fid:0 ~at:(at 300);
  S.Profiler.finish pr ~at:(at 300);
  let get fid =
    (List.find (fun e -> e.S.Profiler.fid = fid) (S.Profiler.hottest pr))
      .S.Profiler.exclusive_cycles
  in
  check_int "callee exclusive" 150 (get 1);
  check_int "caller exclusive" 150 (get 0);
  check_int "total" 300 (S.Profiler.total_cycles pr)

let profiler_counter_attribution () =
  let module H = Stz_machine.Hierarchy in
  let p = Lazy.force tiny_program in
  let pr = S.Profiler.create p in
  let at cycles l1d = { H.counters_zero with H.cycles; H.l1d_misses = l1d } in
  S.Profiler.on_enter pr ~fid:0 ~at:(at 0 0);
  S.Profiler.on_enter pr ~fid:1 ~at:(at 100 3);
  S.Profiler.on_leave pr ~fid:1 ~at:(at 250 10);
  S.Profiler.on_leave pr ~fid:0 ~at:(at 300 12);
  S.Profiler.finish pr ~at:(at 300 12);
  let get fid =
    (List.find (fun e -> e.S.Profiler.fid = fid) (S.Profiler.hottest pr))
      .S.Profiler.counters
  in
  check_int "callee l1d misses" 7 (get 1).H.l1d_misses;
  check_int "caller l1d misses" 5 (get 0).H.l1d_misses

let profiler_merge_entries () =
  let module H = Stz_machine.Hierarchy in
  let e ~fid ~name ~cycles ~l1d calls =
    {
      S.Profiler.fid;
      name;
      calls;
      exclusive_cycles = cycles;
      counters = { H.counters_zero with H.cycles; H.l1d_misses = l1d };
    }
  in
  let merged =
    S.Profiler.merge_entries
      [
        [ e ~fid:0 ~name:"main" ~cycles:10 ~l1d:1 1; e ~fid:1 ~name:"f" ~cycles:90 ~l1d:4 3 ];
        [ e ~fid:1 ~name:"f" ~cycles:20 ~l1d:2 2 ];
      ]
  in
  check_int "two functions" 2 (List.length merged);
  let f = List.hd merged in
  check_bool "hottest first" true (f.S.Profiler.fid = 1);
  check_int "calls summed" 5 f.S.Profiler.calls;
  check_int "cycles summed" 110 f.S.Profiler.exclusive_cycles;
  check_int "counters summed" 6 f.S.Profiler.counters.H.l1d_misses

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let report_csv () =
  let s =
    S.Sample.collect ~config:S.Config.baseline ~base_seed:1L ~runs:3 ~args:[ 1 ]
      (Lazy.force tiny_program)
  in
  let csv = S.Report.csv_of_sample s in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 3 rows" 4 (List.length lines);
  check_bool "header" true (List.hd lines = "run,seconds,cycles")

let report_series_csv () =
  let csv = S.Report.csv_of_series [ ("a", [| 1.0; 2.0 |]); ("b", [| 3.0 |]) ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 3 rows" 4 (List.length lines)

let report_summary_and_histogram () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let line = S.Report.summary_line xs in
  check_bool "mentions n" true (String.length line > 20);
  let h = S.Report.ascii_histogram ~bins:5 xs in
  check_int "five rows" 5
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' h)))

(* ------------------------------------------------------------------ *)
(* Pathological workload                                               *)
(* ------------------------------------------------------------------ *)

let pathological_is_layout_sensitive () =
  let p = Stz_workloads.Pathological.program () in
  let cycles seed =
    (S.Runtime.run
       ~config:{ S.Config.baseline with link_order = S.Config.Random_link }
       ~seed p ~args:Stz_workloads.Pathological.default_args)
      .S.Runtime.cycles
  in
  let values = List.init 10 (fun i -> float_of_int (cycles (Int64.of_int (i + 1)))) in
  let arr = Array.of_list values in
  let spread =
    (Stz_stats.Desc.max arr -. Stz_stats.Desc.min arr) /. Stz_stats.Desc.min arr
  in
  check_bool
    (Printf.sprintf "link-order spread %.1f%% exceeds 10%%" (spread *. 100.))
    true (spread > 0.10)

let () =
  Alcotest.run "stabilizer"
    [
      ( "config",
        [
          Alcotest.test_case "describe" `Quick config_describe;
          Alcotest.test_case "independent toggles" `Quick config_independent_toggles;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "deterministic" `Quick runtime_deterministic_by_seed;
          Alcotest.test_case "seed varies layout only" `Quick runtime_seed_changes_layout_not_result;
          Alcotest.test_case "all configs same value" `Quick runtime_all_configs_same_value;
          Alcotest.test_case "baseline static" `Quick runtime_baseline_has_no_relocations;
          Alcotest.test_case "code relocates" `Quick runtime_code_randomization_relocates;
          Alcotest.test_case "epochs" `Quick runtime_rerandomization_epochs;
          Alcotest.test_case "overhead sane" `Quick runtime_overhead_positive;
          Alcotest.test_case "heap stats" `Quick runtime_heap_stats;
          Alcotest.test_case "virtual seconds" `Quick runtime_virtual_seconds;
          Alcotest.test_case "env bytes" `Quick runtime_env_bytes_changes_timing;
        ] );
      ( "sample",
        [
          Alcotest.test_case "shapes" `Quick sample_shapes;
          Alcotest.test_case "deterministic" `Quick sample_deterministic;
          Alcotest.test_case "runs vary" `Quick sample_runs_vary;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "null" `Quick experiment_null;
          Alcotest.test_case "detects effect" `Quick experiment_detects_effect;
          Alcotest.test_case "wilcoxon fallback" `Quick experiment_falls_back_to_wilcoxon;
          Alcotest.test_case "requires samples" `Quick experiment_requires_samples;
          Alcotest.test_case "unequal variance warning" `Quick
            experiment_flags_unequal_variance;
          Alcotest.test_case "suite anova effect" `Quick experiment_suite_anova;
          Alcotest.test_case "suite anova null" `Quick experiment_suite_anova_null;
          Alcotest.test_case "describe" `Quick experiment_describe;
        ] );
      ( "adaptive (§8)",
        [
          Alcotest.test_case "runs" `Quick adaptive_mode_runs;
          Alcotest.test_case "off by default" `Quick adaptive_off_means_zero_triggers;
          Alcotest.test_case "fires when sensitive" `Quick adaptive_sensitive_threshold_fires;
        ] );
      ( "heap randomness",
        [
          Alcotest.test_case "table shape" `Quick heap_randomness_table_shape;
          Alcotest.test_case "window scales" `Quick heap_randomness_window_scales_with_n;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "accounts all cycles" `Quick profiler_accounts_all_cycles;
          Alcotest.test_case "off by default" `Quick profiler_off_by_default;
          Alcotest.test_case "unit attribution" `Quick profiler_unit_attribution;
          Alcotest.test_case "counter attribution" `Quick
            profiler_counter_attribution;
          Alcotest.test_case "merge entries" `Quick profiler_merge_entries;
        ] );
      ( "report",
        [
          Alcotest.test_case "sample csv" `Quick report_csv;
          Alcotest.test_case "series csv" `Quick report_series_csv;
          Alcotest.test_case "summary + histogram" `Quick report_summary_and_histogram;
        ] );
      ( "pathological",
        [ Alcotest.test_case "layout sensitive" `Quick pathological_is_layout_sensitive ] );
      ( "driver",
        [
          Alcotest.test_case "compile validates" `Quick driver_compile_validates;
          Alcotest.test_case "build and run" `Quick driver_build_and_run;
          Alcotest.test_case "O1 beats O0" `Quick driver_o1_beats_o0;
        ] );
    ]
