(* The differential fuzzing subsystem end to end: sampler determinism,
   the Text round-trip property over generated programs, Validate
   acceptance of every SPEC-clone pipeline output, oracle determinism,
   the planted-bug acceptance gauntlet (the re-introduced shift-clamp
   must be caught and shrunk small), and the fuzz ledger's crash-atomic
   append/resume discipline. *)

module Fz = Stz_workloads.Fuzz
module Spec = Stz_workloads.Spec
module Gen = Stz_workloads.Generate
module P = Stz_workloads.Profile
module Ir = Stz_vm.Ir
module Text = Stz_vm.Text
module Opt = Stz_vm.Opt
module Validate = Stz_vm.Validate
module Fuzzer = Stabilizer.Fuzzer
module Fl = Stz_store.Fuzzlog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let unwrap = function Ok v -> v | Error e -> Alcotest.fail e

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let with_temp_dir f =
  let path = Filename.temp_file "szc-fuzz-test" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let program_instrs p =
  Array.fold_left (fun acc f -> acc + Ir.func_instr_count f) 0 p.Ir.funcs

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let plan_deterministic () =
  List.iter
    (fun index ->
      let a = Fz.plan ~fuzz_seed:42L ~index in
      let b = Fz.plan ~fuzz_seed:42L ~index in
      check_bool "same plan" true (a = b);
      let pa = Fz.build a and pb = Fz.build b in
      check_bool "same program" true (pa = pb);
      check_string "same text" (Text.to_string pa) (Text.to_string pb);
      check_bool "same args" true (Fz.args a = Fz.args b))
    [ 0; 1; 17; 100; 4096 ]

let plans_diverse () =
  let plans = List.init 200 (fun index -> Fz.plan ~fuzz_seed:9L ~index) in
  let count pred = List.length (List.filter pred plans) in
  let recursive = count (fun p -> p.Fz.recursion_depth > 0) in
  let trap_seeded = count (fun p -> p.Fz.trap_mode <> Fz.No_trap) in
  let func_counts =
    List.sort_uniq compare (List.map (fun p -> p.Fz.profile.P.functions) plans)
  in
  check_bool "a fair share is recursive" true (recursive > 20);
  check_bool "some cases are trap-seeded" true (trap_seeded > 2);
  check_bool "profiles vary" true (List.length func_counts > 1)

(* ------------------------------------------------------------------ *)
(* Text round-trip: parse (print p) = p for generated programs         *)
(* ------------------------------------------------------------------ *)

let round_trip name p =
  let s = Text.to_string p in
  let q = try Text.of_string s with Text.Parse_error { line; message } ->
    Alcotest.failf "%s: parse error at line %d: %s" name line message
  in
  check_bool (name ^ " round-trips") true (p = q);
  check_string (name ^ " text is stable") s (Text.to_string q)

let text_round_trip_spec () =
  List.iter
    (fun prof ->
      let prof = Spec.sized `Test prof in
      round_trip prof.P.name (Gen.program prof))
    Spec.all

let text_round_trip_fuzz () =
  for index = 0 to 49 do
    round_trip
      (Printf.sprintf "fuzz case %d" index)
      (Fz.build (Fz.plan ~fuzz_seed:3L ~index))
  done

(* ------------------------------------------------------------------ *)
(* Validate coverage: every SPEC clone x every pipeline                *)
(* ------------------------------------------------------------------ *)

let validate_spec_pipelines () =
  List.iter
    (fun prof ->
      let prof = Spec.sized `Test prof in
      let p = Gen.program prof in
      List.iter
        (fun lvl ->
          match Validate.check_program (Opt.apply lvl p) with
          | [] -> ()
          | errs ->
              Alcotest.failf "%s at %s: %d validation errors (first: %s: %s)"
                prof.P.name (Opt.level_to_string lvl) (List.length errs)
                (List.hd errs).Validate.where (List.hd errs).Validate.what)
        [ Opt.O0; Opt.O1; Opt.O2; Opt.O3 ])
    Spec.all

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

let evaluate_deterministic () =
  List.iter
    (fun index ->
      let a = Fuzzer.evaluate ~fuzz_seed:11L ~index () in
      let b = Fuzzer.evaluate ~fuzz_seed:11L ~index () in
      check_bool "outcome is stable" true (a = b))
    [ 0; 3; 9 ]

let evaluate_clean_on_healthy_optimizer () =
  for index = 0 to 9 do
    match Fuzzer.evaluate ~fuzz_seed:11L ~index () with
    | Fuzzer.Clean _ | Fuzzer.Trapped _ -> ()
    | Fuzzer.Failed { oracle; detail; _ } ->
        Alcotest.failf "index %d failed unexpectedly: %s (%s)" index oracle
          detail
  done

(* The acceptance gauntlet: arm the re-introduced shift-clamp bug, hunt
   with the default seed, and require a small parseable reproducer well
   within the 500-case budget. The same case must be clean with the
   plant disarmed — the failure is the bug's, not the fuzzer's. *)
let planted_bug_caught () =
  let saved = !Opt.planted_bug in
  Fun.protect
    ~finally:(fun () -> Opt.planted_bug := saved)
    (fun () ->
      Opt.planted_bug := Some Opt.Shift_clamp;
      let budget = 500 in
      let rec hunt index =
        if index >= budget then
          Alcotest.failf "planted bug not caught within %d cases" budget
        else
          match Fuzzer.evaluate ~fuzz_seed:7L ~index () with
          | Fuzzer.Failed { oracle; repro_text; repro_instrs; _ } ->
              check_bool "oracle is named" true (String.length oracle > 0);
              check_bool
                (Printf.sprintf "reproducer is small (%d instrs)" repro_instrs)
                true
                (repro_instrs <= 25);
              let repro = Text.of_string repro_text in
              check_int "reproducer parses to the reported size" repro_instrs
                (program_instrs repro);
              check_bool "reproducer validates" true
                (Validate.check_program repro = []);
              Opt.planted_bug := None;
              (match Fuzzer.evaluate ~fuzz_seed:7L ~index () with
              | Fuzzer.Failed _ ->
                  Alcotest.fail "case fails even without the plant"
              | _ -> ());
              Opt.planted_bug := Some Opt.Shift_clamp
          | _ -> hunt (index + 1)
      in
      hunt 0)

(* ------------------------------------------------------------------ *)
(* Fuzz ledger                                                         *)
(* ------------------------------------------------------------------ *)

let meta =
  { Fl.version = 1; fuzz_seed = 5L; count = 6; rand_runs = 2; plant = "none" }

let mk_case i verdict =
  let failing = verdict = Fl.Fail in
  {
    Fl.index = i;
    case_seed = Int64.of_int (1000 + i);
    verdict;
    oracle = (if failing then "divergence(O2)" else "");
    detail = (if failing then "result 4 <> 8" else "ok");
    repro = (if failing then Printf.sprintf "repro-%06d.szt" i else "");
    repro_instrs = (if failing then 7 else 0);
    shrink_steps = (if failing then 12 else 0);
    result = 4;
    cycles = 100 + i;
  }

let verdict_strings () =
  List.iter
    (fun v ->
      check_bool "verdict round-trips" true
        (Fl.verdict_of_string (Fl.verdict_to_string v) = Some v))
    [ Fl.Clean; Fl.Trapped; Fl.Fail; Fl.Crashed; Fl.Hung ]

let fuzzlog_round_trip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "fuzz.log" in
      let t = unwrap (Fl.create ~path meta) in
      let cases = [ mk_case 0 Fl.Clean; mk_case 1 Fl.Fail; mk_case 2 Fl.Trapped ] in
      List.iter (Fl.append t) cases;
      Fl.close t;
      let m, cs = unwrap (Fl.load path) in
      check_bool "meta survives" true (m = meta);
      check_bool "cases survive" true (cs = cases))

let fuzzlog_sanitizes_newlines () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "fuzz.log" in
      let t = unwrap (Fl.create ~path meta) in
      Fl.append t { (mk_case 0 Fl.Fail) with Fl.detail = "line1\nline2" };
      Fl.close t;
      match unwrap (Fl.load path) with
      | _, [ c ] -> check_string "newline sanitized" "line1 line2" c.Fl.detail
      | _ -> Alcotest.fail "expected exactly one case")

let fuzzlog_resume_heals_torn_tail () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "fuzz.log" in
      let t = unwrap (Fl.create ~path meta) in
      let cases = List.init 5 (fun i -> mk_case i Fl.Clean) in
      List.iter (Fl.append t) cases;
      Fl.close t;
      let intact = read_file path in
      (* Chop mid-record, as a SIGKILL between write(2)s would. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (String.length intact - 9);
      Unix.close fd;
      (match unwrap (Fl.recover path) with
      | _, cs, note ->
          check_int "one record lost" 4 (List.length cs);
          check_bool "salvage noted" true (note <> None));
      let t, survivors = unwrap (Fl.resume ~path meta) in
      check_int "resume reports the survivors" 4 (List.length survivors);
      Fl.append t (mk_case 4 Fl.Clean);
      Fl.close t;
      check_string "byte-identical after heal" intact (read_file path))

let fuzzlog_resume_refuses_foreign_meta () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "fuzz.log" in
      let t = unwrap (Fl.create ~path meta) in
      Fl.close t;
      match Fl.resume ~path { meta with Fl.fuzz_seed = 6L } with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "resume accepted a mismatched meta")

let fuzzlog_resume_drops_post_gap_records () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "fuzz.log" in
      let t = unwrap (Fl.create ~path meta) in
      List.iter (fun i -> Fl.append t (mk_case i Fl.Clean)) [ 0; 1; 3 ];
      Fl.close t;
      let t, survivors = unwrap (Fl.resume ~path meta) in
      Fl.close t;
      check_int "only the contiguous prefix survives" 2 (List.length survivors);
      let _, cs = unwrap (Fl.load path) in
      check_int "the file is rewritten to the prefix" 2 (List.length cs))

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

let campaign_cfg ~out_dir ~jobs ~plant ~count =
  {
    Fuzzer.fuzz_seed = (if plant = None then 11L else 7L);
    count;
    jobs;
    out_dir;
    resume = false;
    rand_runs = 2;
    shrink_budget = 1000;
    plant;
    watchdog = None;
    log = ignore;
  }

let campaign_jobs_independent () =
  with_temp_dir (fun dir ->
      let run jobs sub =
        let out_dir = Filename.concat dir sub in
        let s =
          unwrap
            (Fuzzer.run_campaign
               (campaign_cfg ~out_dir ~jobs ~plant:None ~count:12))
        in
        (s, read_file (Filename.concat out_dir Fuzzer.ledger_name))
      in
      let s1, bytes1 = run 1 "serial" in
      let s3, bytes3 = run 3 "par" in
      check_int "totals agree" s1.Fuzzer.total s3.Fuzzer.total;
      check_int "failures agree" s1.Fuzzer.failed s3.Fuzzer.failed;
      check_string "ledgers are byte-identical" bytes1 bytes3)

let campaign_planted_catches_and_emits_repros () =
  with_temp_dir (fun dir ->
      let s =
        unwrap
          (Fuzzer.run_campaign
             (campaign_cfg ~out_dir:dir ~jobs:2 ~plant:(Some Opt.Shift_clamp)
                ~count:20))
      in
      check_bool "the campaign restores planted_bug on exit" true
        (!Opt.planted_bug = None);
      check_bool "at least one failure" true (s.Fuzzer.failed > 0);
      check_int "one reproducer per failure" s.Fuzzer.failed
        (List.length s.Fuzzer.reproducers);
      List.iter
        (fun name ->
          let text = read_file (Filename.concat dir name) in
          let p = Text.of_string text in
          check_bool (name ^ " is small") true (program_instrs p <= 25))
        s.Fuzzer.reproducers;
      (* The ledger agrees with the summary and passes a strict load. *)
      let m, cs = unwrap (Fl.load (Filename.concat dir Fuzzer.ledger_name)) in
      check_string "plant recorded in meta" "shift-clamp" m.Fl.plant;
      let s' = Fuzzer.summarize cs in
      check_bool "summary matches ledger" true (s = s'))

let () =
  Alcotest.run "fuzz"
    [
      ( "sampler",
        [
          Alcotest.test_case "plan and build are deterministic" `Quick
            plan_deterministic;
          Alcotest.test_case "plans cover the meta-space" `Quick plans_diverse;
        ] );
      ( "text",
        [
          Alcotest.test_case "SPEC clones round-trip through Text" `Quick
            text_round_trip_spec;
          Alcotest.test_case "fuzz programs round-trip through Text" `Quick
            text_round_trip_fuzz;
        ] );
      ( "validate",
        [
          Alcotest.test_case "all 18 workloads pass Validate at O0-O3" `Quick
            validate_spec_pipelines;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "evaluate is deterministic" `Quick
            evaluate_deterministic;
          Alcotest.test_case "healthy optimizer fuzzes clean" `Quick
            evaluate_clean_on_healthy_optimizer;
          Alcotest.test_case "planted shift-clamp is caught and shrunk" `Slow
            planted_bug_caught;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "verdict strings round-trip" `Quick
            verdict_strings;
          Alcotest.test_case "create/append/load round-trip" `Quick
            fuzzlog_round_trip;
          Alcotest.test_case "newlines are sanitized" `Quick
            fuzzlog_sanitizes_newlines;
          Alcotest.test_case "resume heals a torn tail byte-identically"
            `Quick fuzzlog_resume_heals_torn_tail;
          Alcotest.test_case "resume refuses a foreign meta" `Quick
            fuzzlog_resume_refuses_foreign_meta;
          Alcotest.test_case "resume drops records after a gap" `Quick
            fuzzlog_resume_drops_post_gap_records;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "ledger bytes are independent of --jobs" `Slow
            campaign_jobs_independent;
          Alcotest.test_case "planted campaign emits small reproducers" `Slow
            campaign_planted_catches_and_emits_repros;
        ] );
    ]
