(* szcd end to end: wire fuzzing, admission control, multi-tenant
   fair-share byte identity, detach/reattach. The daemon under test is
   the real ../bin/szcd.exe; clients speak the real protocol through
   Stz_daemon.Client, and solo reference campaigns run through the
   real ../bin/szc.exe. *)

module D = Stz_daemon
module Wire = D.Wire
module Protocol = D.Protocol
module Spool = D.Spool
module Client = D.Client
module Quota = D.Quota

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let szc_exe = "../bin/szc.exe"
let szcd_exe = "../bin/szcd.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let deadline_in s = Unix.gettimeofday () +. s

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

type daemon = { pid : int; socket : string; spool : string; root : string }

(* Scratch roots live under the system temp dir so an interrupted run
   never litters the repo; fall back to a repo-relative path only when
   TMPDIR is deep enough that the socket would overflow sun_path's 108
   bytes. with_daemon removes the root on exit either way. *)
let test_root name =
  let base = Printf.sprintf "szcd-test-%s-%d" name (Unix.getpid ()) in
  let tmp = Filename.concat (Filename.get_temp_dir_name ()) base in
  if String.length tmp + String.length "/d.sock" <= 100 then tmp else base

let start_daemon ?(extra = []) ?(slots = 4) name =
  let root = test_root name in
  rm_rf root;
  Unix.mkdir root 0o755;
  let socket = Filename.concat root "d.sock" in
  let spool = Filename.concat root "spool" in
  let argv =
    Array.of_list
      ([
         szcd_exe; "--socket"; socket; "--spool"; spool; "--slots";
         string_of_int slots; "--quantum"; "2";
       ]
      @ extra)
  in
  let pid =
    try Unix.create_process szcd_exe argv Unix.stdin Unix.stdout Unix.stderr
    with e ->
      rm_rf root;
      raise e
  in
  { pid; socket; spool; root }

let wait_ready d =
  let deadline = deadline_in 20.0 in
  match Client.connect ~socket:d.socket ~deadline ~seed:1L () with
  | Error e -> Alcotest.failf "daemon never came up: %s" e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> Client.close t)
        (fun () ->
          match Client.rpc t ~deadline Protocol.Ping with
          | Ok Protocol.Pong -> ()
          | Ok _ -> Alcotest.fail "expected pong"
          | Error e -> Alcotest.failf "ping failed: %s" e)

(* SIGTERM must drain: finish or checkpoint what is running, then exit
   0. Polls because the drain takes as long as the shortest remaining
   batch. *)
let stop_daemon d =
  (try Unix.kill d.pid Sys.sigterm with Unix.Unix_error _ -> ());
  let rec wait tries =
    match Unix.waitpid [ Unix.WNOHANG ] d.pid with
    | 0, _ when tries > 0 ->
        Unix.sleepf 0.1;
        wait (tries - 1)
    | 0, _ ->
        (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] d.pid);
        Alcotest.fail "daemon did not drain within 30 s"
    | _, st -> st
  in
  wait 300

let check_clean_drain stop =
  match stop () with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "drain exited %d, wanted 0" n
  | Unix.WSIGNALED n -> Alcotest.failf "daemon killed by signal %d" n
  | Unix.WSTOPPED n -> Alcotest.failf "daemon stopped by signal %d" n

let with_daemon ?extra ?slots name f =
  let d = start_daemon ?extra ?slots name in
  let stopped = ref false in
  let stop () =
    let st = stop_daemon d in
    stopped := true;
    st
  in
  Fun.protect
    ~finally:(fun () ->
      if not !stopped then begin
        (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] d.pid) with Unix.Unix_error _ -> ())
      end;
      rm_rf d.root)
    (fun () ->
      wait_ready d;
      f d stop)

let connect_ok d ~deadline ~seed =
  match Client.connect ~socket:d.socket ~deadline ~seed () with
  | Ok t -> t
  | Error e -> Alcotest.failf "connect: %s" e

(* ------------------------------------------------------------------ *)
(* Wire decoder fuzz                                                   *)
(* ------------------------------------------------------------------ *)

let fuzz_frames = [ ("ping", "{}"); ("status", {|{"tenant":"t1","id":"c1"}|}) ]

let fuzz_stream () =
  Wire.greeting
  ^ String.concat ""
      (List.map (fun (v, p) -> Wire.frame ~verb:v p) fuzz_frames)

let wire_roundtrip_bytewise () =
  (* Worst-case framing: the stream arrives one byte at a time. *)
  let dec = Wire.create ~expect_greeting:true in
  let got = ref [] in
  String.iter
    (fun ch ->
      Wire.feed dec (String.make 1 ch);
      let rec drain () =
        match Wire.next dec with
        | Some (Wire.Frame { verb; payload }) ->
            got := (verb, payload) :: !got;
            drain ()
        | Some (Wire.Corrupt msg) -> Alcotest.failf "corrupt: %s" msg
        | None -> ()
      in
      drain ())
    (fuzz_stream ());
  check_bool "all frames decoded, in order" true (List.rev !got = fuzz_frames)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let every_bitflip_is_contained () =
  (* Flip every bit of every byte of a valid stream: the decoder must
     never raise, never deliver an altered frame (the CRC and the
     framing catch everything), and a dead stream must stay dead. *)
  let stream = fuzz_stream () in
  for i = 0 to String.length stream - 1 do
    for bit = 0 to 7 do
      let mutated = Bytes.of_string stream in
      Bytes.set mutated i (Char.chr (Char.code stream.[i] lxor (1 lsl bit)));
      let dec = Wire.create ~expect_greeting:true in
      Wire.feed dec (Bytes.to_string mutated);
      let rec pull acc =
        match Wire.next dec with
        | Some (Wire.Frame { verb; payload }) -> pull ((verb, payload) :: acc)
        | Some (Wire.Corrupt _) -> (List.rev acc, true)
        | None -> (List.rev acc, false)
      in
      let decoded, died = pull [] in
      (* A flip may truncate the stream, or be semantically neutral
         (e.g. changing a CRC hex digit's case) — but a delivered
         frame is never an altered one. *)
      check_bool
        (Printf.sprintf "byte %d bit %d: delivered frames are a prefix" i bit)
        true
        (is_prefix decoded fuzz_frames);
      if died then
        match Wire.next dec with
        | Some (Wire.Corrupt _) -> ()
        | _ -> Alcotest.fail "dead decoder must stay dead"
    done
  done

(* ------------------------------------------------------------------ *)
(* Live daemon fuzz                                                    *)
(* ------------------------------------------------------------------ *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

(* Reads until the peer closes; [None] when the deadline passes with
   the connection still open. *)
let read_to_eof fd ~deadline =
  let buf = Bytes.create 4096 in
  let out = Buffer.create 256 in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then None
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> None
      | _ -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> Some (Buffer.contents out)
          | n ->
              Buffer.add_subbytes out buf 0 n;
              go ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
              Some (Buffer.contents out))
  in
  go ()

let daemon_survives_every_bitflip () =
  with_daemon "fuzz" (fun d stop ->
      let req =
        Wire.greeting
        ^ Protocol.request_to_frame
            (Protocol.Status { tenant = "t1"; id = "c1" })
      in
      for i = 0 to String.length req - 1 do
        let mutated = Bytes.of_string req in
        Bytes.set mutated i
          (Char.chr (Char.code req.[i] lxor (1 lsl (i mod 8))));
        let fd = raw_connect d.socket in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            (try
               ignore (Unix.write fd mutated 0 (Bytes.length mutated));
               Unix.shutdown fd Unix.SHUTDOWN_SEND
             with Unix.Unix_error _ -> ());
            (* The daemon must isolate the fault: answer with an error
               frame and close, or just close — never wedge, never
               die. *)
            match read_to_eof fd ~deadline:(deadline_in 10.0) with
            | Some _ -> ()
            | None ->
                Alcotest.failf "byte %d: daemon kept the connection open" i)
      done;
      (* Still alive, still serving. *)
      let deadline = deadline_in 10.0 in
      let t = connect_ok d ~deadline ~seed:2L in
      Fun.protect
        ~finally:(fun () -> Client.close t)
        (fun () ->
          match Client.rpc t ~deadline Protocol.Ping with
          | Ok Protocol.Pong -> ()
          | Ok _ -> Alcotest.fail "expected pong after fuzzing"
          | Error e -> Alcotest.failf "ping after fuzzing: %s" e);
      check_clean_drain stop)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let quota_reservation_accounting () =
  let q =
    Quota.create
      {
        Quota.max_campaigns_per_tenant = 2;
        max_runs_per_tenant = 100;
        global_run_budget = 150;
      }
  in
  check_bool "first admit" true (Quota.admit q ~tenant:"a" ~runs:60 = Ok ());
  check_bool "over per-tenant runs" true
    (Result.is_error (Quota.admit q ~tenant:"a" ~runs:50));
  check_bool "second admit fits" true
    (Quota.admit q ~tenant:"a" ~runs:40 = Ok ());
  check_bool "over per-tenant campaigns" true
    (Result.is_error (Quota.admit q ~tenant:"a" ~runs:1));
  check_bool "other tenant unaffected" true
    (Quota.admit q ~tenant:"b" ~runs:50 = Ok ());
  check_bool "over global budget" true
    (Result.is_error (Quota.admit q ~tenant:"c" ~runs:10));
  Quota.release q ~tenant:"a" ~runs:60;
  check_bool "release frees the budget" true
    (Quota.admit q ~tenant:"c" ~runs:10 = Ok ());
  check_int "in flight" 3 (Quota.in_flight q)

(* The recovery/restart paths re-reserve with [readmit], which must
   really increment the counters (even past a full quota) so the
   eventual release is balanced and never frees a phantom
   reservation. *)
let quota_readmit_balance () =
  let q =
    Quota.create
      {
        Quota.max_campaigns_per_tenant = 1;
        max_runs_per_tenant = 50;
        global_run_budget = 50;
      }
  in
  check_bool "admit" true (Quota.admit q ~tenant:"a" ~runs:50 = Ok ());
  (* A daemon restart re-reserves the same campaign unconditionally. *)
  Quota.readmit q ~tenant:"a" ~runs:50;
  check_int "both reservations counted" 2 (Quota.in_flight q);
  check_bool "budget reflects readmitted load" true
    (Result.is_error (Quota.admit q ~tenant:"b" ~runs:1));
  Quota.release q ~tenant:"a" ~runs:50;
  check_bool "one release frees only one reservation" true
    (Result.is_error (Quota.admit q ~tenant:"b" ~runs:1));
  Quota.release q ~tenant:"a" ~runs:50;
  check_bool "balanced releases free the budget" true
    (Quota.admit q ~tenant:"b" ~runs:50 = Ok ());
  check_int "in flight" 1 (Quota.in_flight q)

let spec_for ~seed ~runs =
  {
    Spool.default_spec with
    Spool.runs;
    seed;
    scale = 0.05;
    faults = "light";
    ledger = true;
  }

let daemon_rejects_over_quota () =
  with_daemon ~extra:[ "--max-runs"; "40" ] "quota" (fun d stop ->
      let deadline = deadline_in 30.0 in
      let t = connect_ok d ~deadline ~seed:3L in
      Fun.protect
        ~finally:(fun () -> Client.close t)
        (fun () ->
          (match
             Client.rpc t ~deadline
               (Protocol.Submit
                  { tenant = "t1"; id = "big"; spec = spec_for ~seed:5 ~runs:41 })
           with
          | Ok (Protocol.Rejected { reason }) ->
              check_bool "rejection carries a reason" true (reason <> "")
          | Ok _ -> Alcotest.fail "over-quota submit must be rejected"
          | Error e -> Alcotest.failf "rpc: %s" e);
          (* A rejected submit reserves nothing: a compliant spec from
             the same tenant still gets in. *)
          match
            Client.rpc t ~deadline
              (Protocol.Submit
                 { tenant = "t1"; id = "ok"; spec = spec_for ~seed:5 ~runs:4 })
          with
          | Ok (Protocol.Accepted _) -> ()
          | Ok (Protocol.Rejected { reason }) ->
              Alcotest.failf "compliant submit rejected: %s" reason
          | Ok _ -> Alcotest.fail "unexpected reply"
          | Error e -> Alcotest.failf "rpc: %s" e);
      check_clean_drain stop)

(* ------------------------------------------------------------------ *)
(* Fair share: concurrent tenants, byte-identical artifacts            *)
(* ------------------------------------------------------------------ *)

let run_solo ~dir ~seed ~runs =
  Unix.mkdir dir 0o755;
  let csv = Filename.concat dir "out.csv" in
  let ck = Filename.concat dir "checkpoint.ck" in
  let ledger = Filename.concat dir "ledger" in
  let cmd =
    Printf.sprintf
      "%s campaign bzip2 --runs %d --seed %d --scale 0.05 --faults light \
       --quiet --csv %s --checkpoint %s --ledger %s >/dev/null 2>&1"
      (Filename.quote szc_exe) runs seed (Filename.quote csv)
      (Filename.quote ck) (Filename.quote ledger)
  in
  check_int "solo szc campaign exits 0" 0 (Sys.command cmd);
  (csv, ck, ledger)

let three_tenants_match_solo () =
  with_daemon "fair" (fun d stop ->
      let deadline = deadline_in 120.0 in
      let runs = 10 in
      let tenants = [ ("t1", 101); ("t2", 102); ("t3", 103) ] in
      (* Kick all three off before following any, so they really do
         contend for the shared pool. *)
      List.iter
        (fun (tenant, seed) ->
          let t = connect_ok d ~deadline ~seed:(Int64.of_int seed) in
          Fun.protect
            ~finally:(fun () -> Client.close t)
            (fun () ->
              match
                Client.rpc t ~deadline
                  (Protocol.Submit
                     { tenant; id = "c"; spec = spec_for ~seed ~runs })
              with
              | Ok (Protocol.Accepted _) -> ()
              | Ok (Protocol.Rejected { reason }) ->
                  Alcotest.failf "%s rejected: %s" tenant reason
              | Ok _ -> Alcotest.fail "unexpected reply"
              | Error e -> Alcotest.failf "%s submit: %s" tenant e))
        tenants;
      (* Follow each to completion: resubmit is idempotent, the stream
         replays from run 0. *)
      List.iter
        (fun (tenant, seed) ->
          match
            Client.submit_and_wait ~socket:d.socket ~deadline
              ~seed:(Int64.of_int seed) ~tenant ~id:"c"
              ~spec:(spec_for ~seed ~runs)
              ~progress:(fun _ _ -> ())
          with
          | Ok (0, _) -> ()
          | Ok (code, line) ->
              Alcotest.failf "%s: exit %d (%s)" tenant code line
          | Error e -> Alcotest.failf "%s: %s" tenant e)
        tenants;
      (* The interleaving must be unobservable: every tenant's CSV,
         checkpoint and ledger byte-identical to a solo run. *)
      List.iter
        (fun (tenant, seed) ->
          let solo = Filename.concat d.root ("solo-" ^ tenant) in
          let csv, ck, ledger = run_solo ~dir:solo ~seed ~runs in
          let spool_dir = Spool.dir ~spool:d.spool ~tenant ~id:"c" in
          check_string (tenant ^ ": csv byte-identical") (read_file csv)
            (read_file (Filename.concat spool_dir "out.csv"));
          check_string
            (tenant ^ ": checkpoint byte-identical")
            (read_file ck)
            (read_file (Filename.concat spool_dir "checkpoint.ck"));
          check_string
            (tenant ^ ": ledger byte-identical")
            (read_file ledger)
            (read_file (Filename.concat spool_dir "ledger")))
        tenants;
      check_clean_drain stop)

(* ------------------------------------------------------------------ *)
(* Detach / reattach                                                   *)
(* ------------------------------------------------------------------ *)

let detach_then_reattach () =
  with_daemon "detach" (fun d stop ->
      let deadline = deadline_in 60.0 in
      let runs = 30 in
      let spec = spec_for ~seed:7 ~runs in
      let seen = Array.make runs 0 in
      (* Session one: submit, stream, watch a few runs, vanish without
         so much as a goodbye. *)
      let t = connect_ok d ~deadline ~seed:7L in
      (match
         Client.rpc t ~deadline
           (Protocol.Submit { tenant = "t1"; id = "c"; spec })
       with
      | Ok (Protocol.Accepted _) -> ()
      | Ok _ -> Alcotest.fail "submit not accepted"
      | Error e -> Alcotest.failf "submit: %s" e);
      (match
         Client.send t (Protocol.Stream { tenant = "t1"; id = "c"; from_run = 0 })
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "stream: %s" e);
      let watched = ref 0 in
      while !watched < 3 do
        match Client.read_response t ~deadline with
        | Ok (Protocol.Progress { run; _ }) ->
            seen.(run) <- seen.(run) + 1;
            incr watched
        | Ok _ -> ()
        | Error e -> Alcotest.failf "watch: %s" e
      done;
      Client.close t;
      (* The campaign must survive the disconnect. Session two picks
         the feed up at the first unseen run — no gaps, no repeats. *)
      let from_run =
        let rec first i = if i >= runs || seen.(i) = 0 then i else first (i + 1) in
        first 0
      in
      let t2 = connect_ok d ~deadline ~seed:8L in
      let exit_code =
        Fun.protect
          ~finally:(fun () -> Client.close t2)
          (fun () ->
            (match
               Client.send t2
                 (Protocol.Stream { tenant = "t1"; id = "c"; from_run })
             with
            | Ok () -> ()
            | Error e -> Alcotest.failf "re-stream: %s" e);
            let rec follow () =
              match Client.read_response t2 ~deadline with
              | Ok (Protocol.Progress { run; _ }) ->
                  seen.(run) <- seen.(run) + 1;
                  follow ()
              | Ok (Protocol.Summary { exit_code; _ }) -> exit_code
              | Ok Protocol.Cancelled -> Alcotest.fail "spuriously cancelled"
              | Ok (Protocol.Rejected { reason }) ->
                  Alcotest.failf "reattach rejected: %s" reason
              | Ok _ -> follow ()
              | Error e -> Alcotest.failf "follow: %s" e
            in
            follow ())
      in
      check_int "campaign exit code" 0 exit_code;
      Array.iteri
        (fun i c ->
          check_int (Printf.sprintf "run %d delivered exactly once" i) 1 c)
        seen;
      check_clean_drain stop)

(* ------------------------------------------------------------------ *)
(* Ops plane: stats/watch verbs, status info, strict plane separation  *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let counter_at_least stats key n =
  match List.assoc_opt key stats.Protocol.s_counters with
  | Some v when v >= n -> ()
  | Some v -> Alcotest.failf "counter %s = %d, wanted >= %d" key v n
  | None -> Alcotest.failf "counter %s missing from stats" key

let stats_watch_and_status_info () =
  let oplog_rel root = Filename.concat root "ops.log" in
  let export_rel root = Filename.concat root "ops.prom" in
  (* start_daemon builds root from the test name; mirror it so the
     --oplog/--ops-export paths land inside the daemon's own root. *)
  let root = test_root "ops" in
  with_daemon
    ~extra:[ "--oplog"; oplog_rel root; "--ops-export"; export_rel root ]
    "ops"
    (fun d stop ->
      let deadline = deadline_in 120.0 in
      let runs = 8 in
      let tenants = [ ("t1", 201); ("t2", 202); ("t3", 203) ] in
      List.iter
        (fun (tenant, seed) ->
          let t = connect_ok d ~deadline ~seed:(Int64.of_int seed) in
          Fun.protect
            ~finally:(fun () -> Client.close t)
            (fun () ->
              match
                Client.rpc t ~deadline
                  (Protocol.Submit
                     { tenant; id = "c"; spec = spec_for ~seed ~runs })
              with
              | Ok (Protocol.Accepted _) -> ()
              | Ok _ -> Alcotest.failf "%s submit not accepted" tenant
              | Error e -> Alcotest.failf "%s submit: %s" tenant e))
        tenants;
      (* One-shot snapshot while all three are in flight. *)
      let t = connect_ok d ~deadline ~seed:42L in
      let stats =
        Fun.protect
          ~finally:(fun () -> Client.close t)
          (fun () ->
            match Client.rpc t ~deadline Protocol.Stats with
            | Ok (Protocol.Stats_is s) -> s
            | Ok _ -> Alcotest.fail "expected stats-is"
            | Error e -> Alcotest.failf "stats rpc: %s" e)
      in
      check_string "stats reports the daemon version" D.Daemon.version
        stats.Protocol.s_version;
      check_bool "uptime is positive" true (stats.Protocol.s_uptime_ms >= 0);
      check_int "slots total" 4 stats.Protocol.s_slots_total;
      let row_tenants =
        List.map (fun r -> r.Protocol.tr_tenant) stats.Protocol.s_tenants
      in
      List.iter
        (fun (tenant, _) ->
          check_bool
            (Printf.sprintf "tenant %s has a stats row" tenant)
            true
            (List.mem tenant row_tenants))
        tenants;
      List.iter
        (fun r ->
          check_bool
            (Printf.sprintf "%s: completed <= runs" r.Protocol.tr_tenant)
            true
            (r.Protocol.tr_completed <= r.Protocol.tr_runs))
        stats.Protocol.s_tenants;
      counter_at_least stats "admit.ok" 3;
      counter_at_least stats "wire.rx.submit" 3;
      counter_at_least stats "runner.spawn" 1;
      (match List.assoc_opt "loop.tick_us" stats.Protocol.s_hists with
      | Some h ->
          check_bool "tick histogram has samples" true
            (h.Stz_telemetry.Ops.h_count > 0);
          check_bool "tick p50 <= p99" true
            (h.Stz_telemetry.Ops.h_p50 <= h.Stz_telemetry.Ops.h_p99)
      | None -> Alcotest.fail "loop.tick_us histogram missing");
      (* Periodic subscription: two frames at 100 ms apart, and each
         carries a fresh uptime. *)
      let w = connect_ok d ~deadline ~seed:43L in
      Fun.protect
        ~finally:(fun () -> Client.close w)
        (fun () ->
          (match Client.send w (Protocol.Watch { interval_ms = 100 }) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "watch: %s" e);
          let rec frames n last_uptime =
            if n < 2 then
              match Client.read_response w ~deadline with
              | Ok (Protocol.Stats_is s) ->
                  check_bool "watch uptime monotone" true
                    (s.Protocol.s_uptime_ms >= last_uptime);
                  frames (n + 1) s.Protocol.s_uptime_ms
              | Ok _ -> frames n last_uptime
              | Error e -> Alcotest.failf "watch read: %s" e
          in
          frames 0 0);
      (* status-is carries the info extras. *)
      let t2 = connect_ok d ~deadline ~seed:44L in
      Fun.protect
        ~finally:(fun () -> Client.close t2)
        (fun () ->
          match
            Client.rpc t2 ~deadline (Protocol.Status { tenant = "t1"; id = "c" })
          with
          | Ok (Protocol.Status_is { info; _ }) ->
              check_bool "info has version" true
                (List.assoc_opt "version" info = Some D.Daemon.version);
              check_bool "info has uptime_ms" true
                (List.mem_assoc "uptime_ms" info)
          | Ok _ -> Alcotest.fail "expected status-is"
          | Error e -> Alcotest.failf "status rpc: %s" e);
      (* Let the campaigns finish so the drain is clean. *)
      List.iter
        (fun (tenant, seed) ->
          match
            Client.submit_and_wait ~socket:d.socket ~deadline
              ~seed:(Int64.of_int seed) ~tenant ~id:"c"
              ~spec:(spec_for ~seed ~runs)
              ~progress:(fun _ _ -> ())
          with
          | Ok (0, _) -> ()
          | Ok (code, line) ->
              Alcotest.failf "%s: exit %d (%s)" tenant code line
          | Error e -> Alcotest.failf "%s: %s" tenant e)
        tenants;
      check_clean_drain stop;
      (* After the drain: the oplog strict-loads and tells the story,
         the exporter file is fresh valid Prometheus text. *)
      (match Stz_telemetry.Oplog.load (oplog_rel d.root) with
      | Ok records ->
          check_bool "oplog has records" true (records <> []);
          let raw = read_file (oplog_rel d.root) in
          List.iter
            (fun ev ->
              check_bool
                (Printf.sprintf "oplog records %s" ev)
                true
                (contains raw (Printf.sprintf "\"ev\":\"%s\"" ev)))
            [ "daemon.start"; "admit.ok"; "runner.spawn"; "daemon.drained" ]
      | Error e -> Alcotest.failf "oplog does not strict-load: %s" e);
      let prom = read_file (export_rel d.root) in
      List.iter
        (fun needle ->
          check_bool
            (Printf.sprintf "exporter has %S" needle)
            true (contains prom needle))
        [
          "# TYPE szcd_wire_rx_submit counter";
          "# TYPE szcd_sched_slots_busy gauge";
          "szcd_loop_tick_us{quantile=\"0.5\"}";
          "szcd_loop_tick_us_count";
        ])

(* The headline invariant: the ops plane is write-only. A campaign set
   run with every ops feature enabled — oplog, exporter, a live watch
   subscriber — produces byte-for-byte the artifacts of an ops-dark
   daemon, under both serial and concurrent scheduling. *)
let ops_plane_changes_no_artifact_byte () =
  let runs = 6 in
  let tenants = [ ("t1", 301); ("t2", 302); ("t3", 303) ] in
  let run_set ~name ~slots ~ops =
    let extra =
      if not ops then []
      else
        let root = test_root name in
        [
          "--oplog"; Filename.concat root "ops.log";
          "--ops-export"; Filename.concat root "ops.prom";
        ]
    in
    with_daemon ~extra ~slots name (fun d stop ->
        let deadline = deadline_in 120.0 in
        (* A live subscriber makes the daemon exercise the whole stats
           path (snapshot building, frame encoding, outbuf) while the
           campaigns run. *)
        let watcher =
          if not ops then None
          else begin
            let w = connect_ok d ~deadline ~seed:99L in
            (match Client.send w (Protocol.Watch { interval_ms = 100 }) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "watch: %s" e);
            Some w
          end
        in
        List.iter
          (fun (tenant, seed) ->
            match
              Client.submit_and_wait ~socket:d.socket ~deadline
                ~seed:(Int64.of_int seed) ~tenant ~id:"c"
                ~spec:(spec_for ~seed ~runs)
                ~progress:(fun _ _ -> ())
            with
            | Ok (0, _) -> ()
            | Ok (code, line) ->
                Alcotest.failf "%s: exit %d (%s)" tenant code line
            | Error e -> Alcotest.failf "%s: %s" tenant e)
          tenants;
        Option.iter Client.close watcher;
        let artifacts =
          List.map
            (fun (tenant, _) ->
              let dir = Spool.dir ~spool:d.spool ~tenant ~id:"c" in
              ( tenant,
                read_file (Filename.concat dir "out.csv"),
                read_file (Filename.concat dir "checkpoint.ck"),
                read_file (Filename.concat dir "ledger") ))
            tenants
        in
        check_clean_drain stop;
        artifacts)
  in
  List.iter
    (fun slots ->
      let tag = Printf.sprintf "slots%d" slots in
      let dark = run_set ~name:("dark-" ^ tag) ~slots ~ops:false in
      let lit = run_set ~name:("lit-" ^ tag) ~slots ~ops:true in
      List.iter2
        (fun (t1, csv1, ck1, lg1) (t2, csv2, ck2, lg2) ->
          check_string "same tenant" t1 t2;
          check_string
            (Printf.sprintf "%s %s: csv identical with ops on" tag t1)
            csv1 csv2;
          check_string
            (Printf.sprintf "%s %s: checkpoint identical with ops on" tag t1)
            ck1 ck2;
          check_string
            (Printf.sprintf "%s %s: ledger identical with ops on" tag t1)
            lg1 lg2)
        dark lit)
    [ 1; 4 ]

let () =
  Alcotest.run "daemon"
    [
      ( "wire",
        [
          Alcotest.test_case "byte-at-a-time roundtrip" `Quick
            wire_roundtrip_bytewise;
          Alcotest.test_case "every bit-flip contained" `Quick
            every_bitflip_is_contained;
        ] );
      ( "quota",
        [
          Alcotest.test_case "reservation accounting" `Quick
            quota_reservation_accounting;
          Alcotest.test_case "readmit keeps releases balanced" `Quick
            quota_readmit_balance;
          Alcotest.test_case "daemon rejects over-quota submit" `Quick
            daemon_rejects_over_quota;
        ] );
      ( "service",
        [
          Alcotest.test_case "daemon survives every bit-flip" `Quick
            daemon_survives_every_bitflip;
          Alcotest.test_case "3 tenants byte-identical to solo" `Quick
            three_tenants_match_solo;
          Alcotest.test_case "detach then reattach, no gaps" `Quick
            detach_then_reattach;
        ] );
      ( "ops",
        [
          Alcotest.test_case "stats, watch and status info" `Quick
            stats_watch_and_status_info;
          Alcotest.test_case "ops plane changes no artifact byte" `Quick
            ops_plane_changes_no_artifact_byte;
        ] );
    ]
