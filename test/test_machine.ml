module M = Stz_machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let small_cache () =
  M.Cache.create { M.Cache.name = "t"; sets = 4; ways = 2; line_bits = 6 }

let cache_hit_after_fill () =
  let c = small_cache () in
  check_bool "first is miss" false (M.Cache.access c 0x1000);
  check_bool "second is hit" true (M.Cache.access c 0x1000);
  check_bool "same line hit" true (M.Cache.access c 0x103F);
  check_bool "next line miss" false (M.Cache.access c 0x1040)

let cache_lru_eviction () =
  let c = small_cache () in
  (* Three lines mapping to set 0 in a 2-way cache: 256-byte set span. *)
  let a = 0x0000 and b = 0x0100 and d = 0x0200 in
  ignore (M.Cache.access c a);
  ignore (M.Cache.access c b);
  ignore (M.Cache.access c d);
  (* a was least recently used: evicted. *)
  check_bool "a evicted" false (M.Cache.probe c a);
  check_bool "b resident" true (M.Cache.probe c b);
  check_bool "d resident" true (M.Cache.probe c d);
  (* Touch b, then insert a new line: d should now be the victim. *)
  ignore (M.Cache.access c b);
  ignore (M.Cache.access c 0x0300);
  check_bool "b kept (recently used)" true (M.Cache.probe c b);
  check_bool "d evicted" false (M.Cache.probe c d)

let cache_sets_disjoint () =
  let c = small_cache () in
  (* Lines in different sets never evict each other. *)
  for s = 0 to 3 do
    ignore (M.Cache.access c (s * 64));
    ignore (M.Cache.access c ((s * 64) + 0x100))
  done;
  for s = 0 to 3 do
    check_bool "still resident" true (M.Cache.probe c (s * 64))
  done

let cache_counters () =
  let c = small_cache () in
  ignore (M.Cache.access c 0);
  ignore (M.Cache.access c 0);
  ignore (M.Cache.access c 64);
  check_int "accesses" 3 (M.Cache.accesses c);
  check_int "misses" 2 (M.Cache.misses c)

let cache_probe_no_state_change () =
  let c = small_cache () in
  check_bool "probe empty" false (M.Cache.probe c 0);
  check_int "no access recorded" 0 (M.Cache.accesses c);
  check_bool "still miss" false (M.Cache.access c 0)

let cache_flush_and_reset () =
  let c = small_cache () in
  ignore (M.Cache.access c 0);
  M.Cache.flush c;
  check_bool "flushed" false (M.Cache.probe c 0);
  check_int "stats kept" 1 (M.Cache.accesses c);
  M.Cache.reset c;
  check_int "stats cleared" 0 (M.Cache.accesses c)

let cache_index_bits () =
  let c = M.Cache.create { M.Cache.name = "t"; sets = 64; ways = 2; line_bits = 6 } in
  Alcotest.(check (pair int int)) "bits 6..11" (6, 11) (M.Cache.index_bits c)

let cache_bad_config () =
  Alcotest.check_raises "non-pow2 sets"
    (Invalid_argument "Cache.create: sets must be a positive power of two")
    (fun () -> ignore (M.Cache.create { M.Cache.name = "t"; sets = 3; ways = 1; line_bits = 6 }))

(* Reference model: a cache as a list of (set, tag) with exact LRU,
   checked against the array implementation on random address streams. *)
let cache_matches_reference_model =
  QCheck.Test.make ~name:"cache agrees with reference LRU model" ~count:50
    QCheck.(pair small_int (list (int_bound 0xFFFF)))
    (fun (seed, addrs) ->
      let sets = 4 and ways = 2 and line_bits = 4 in
      let c = M.Cache.create { M.Cache.name = "ref"; sets; ways; line_bits } in
      (* reference: per set, most-recent-first list of tags *)
      let model = Array.make sets [] in
      let ok = ref true in
      let rng = Stz_prng.Xorshift.create ~seed:(Int64.of_int (seed + 1)) in
      let stream =
        addrs @ List.init 200 (fun _ -> Stz_prng.Xorshift.next_int rng 0x10000)
      in
      List.iter
        (fun addr ->
          let set = (addr lsr line_bits) land (sets - 1) in
          let tag = addr lsr line_bits in
          let hit_model = List.mem tag model.(set) in
          let hit_impl = M.Cache.access c addr in
          if hit_model <> hit_impl then ok := false;
          let without = List.filter (fun t -> t <> tag) model.(set) in
          let updated = tag :: without in
          model.(set) <-
            (if List.length updated > ways then
               List.filteri (fun i _ -> i < ways) updated
             else updated))
        stream;
      !ok)

(* ------------------------------------------------------------------ *)
(* TLB                                                                 *)
(* ------------------------------------------------------------------ *)

let tlb_page_granularity () =
  let t = M.Tlb.create { M.Tlb.name = "t"; entries = 8; ways = 2; page_bits = 12 } in
  check_bool "first access misses" false (M.Tlb.access t 0x5000);
  check_bool "same page hits" true (M.Tlb.access t 0x5FFF);
  check_bool "next page misses" false (M.Tlb.access t 0x6000);
  check_int "misses" 2 (M.Tlb.misses t)

let tlb_capacity () =
  let t = M.Tlb.create { M.Tlb.name = "t"; entries = 4; ways = 4; page_bits = 12 } in
  (* Touch 5 pages in the same set (fully associative here): one must go. *)
  for p = 0 to 4 do
    ignore (M.Tlb.access t (p * 4096))
  done;
  check_bool "first page evicted" false (M.Tlb.access t 0)

(* ------------------------------------------------------------------ *)
(* Branch predictor                                                    *)
(* ------------------------------------------------------------------ *)

let branch_learns_bias () =
  let b = M.Branch.create ~entries:16 () in
  (* Always-taken branch: after warmup, always predicted. *)
  for _ = 1 to 4 do
    ignore (M.Branch.predict_and_update b ~pc:0x40 ~taken:true)
  done;
  let before = M.Branch.mispredictions b in
  for _ = 1 to 100 do
    ignore (M.Branch.predict_and_update b ~pc:0x40 ~taken:true)
  done;
  check_int "no further mispredictions" before (M.Branch.mispredictions b)

let branch_aliasing_interferes () =
  let b = M.Branch.create ~entries:16 () in
  (* Two branches 16 entries apart alias: (pc >> 2) mod 16 equal. *)
  let pc1 = 0x100 and pc2 = 0x100 + (16 * 4) in
  check_int "alias confirmed" (M.Branch.index_of b pc1) (M.Branch.index_of b pc2);
  (* Opposite-biased aliasing branches destroy each other's state. *)
  for _ = 1 to 200 do
    ignore (M.Branch.predict_and_update b ~pc:pc1 ~taken:true);
    ignore (M.Branch.predict_and_update b ~pc:pc2 ~taken:false)
  done;
  let aliased = M.Branch.mispredictions b in
  (* Same workload without aliasing barely mispredicts. *)
  let b2 = M.Branch.create ~entries:16 () in
  for _ = 1 to 200 do
    ignore (M.Branch.predict_and_update b2 ~pc:0x100 ~taken:true);
    ignore (M.Branch.predict_and_update b2 ~pc:0x104 ~taken:false)
  done;
  let clean = M.Branch.mispredictions b2 in
  check_bool
    (Printf.sprintf "aliasing hurts (%d vs %d)" aliased clean)
    true
    (aliased > 10 * Stdlib.max 1 clean)

let gshare_learns_alternating () =
  (* A strictly alternating branch defeats a bimodal 2-bit counter but
     is perfectly predictable once history indexes the table. *)
  let run kind =
    let b = M.Branch.create ~entries:256 ~kind () in
    for i = 1 to 400 do
      ignore (M.Branch.predict_and_update b ~pc:0x80 ~taken:(i land 1 = 0))
    done;
    M.Branch.mispredictions b
  in
  let bimodal = run M.Branch.Bimodal in
  let gshare = run (M.Branch.Gshare 8) in
  check_bool
    (Printf.sprintf "gshare (%d) beats bimodal (%d) on alternation" gshare bimodal)
    true
    (gshare < bimodal / 4)

let gshare_history_moves_index () =
  let b = M.Branch.create ~entries:256 ~kind:(M.Branch.Gshare 8) () in
  let i0 = M.Branch.index_of b 0x80 in
  ignore (M.Branch.predict_and_update b ~pc:0x80 ~taken:true);
  let i1 = M.Branch.index_of b 0x80 in
  check_bool "history changes the slot" true (i0 <> i1)

(* The slot-introspection surface the attribution plane keys on: the
   documented index functions, exactly. *)
let bimodal_index_formula () =
  let b = M.Branch.create ~entries:16 () in
  List.iter
    (fun pc -> check_int "(pc lsr 2) land mask" ((pc lsr 2) land 15) (M.Branch.index_of b pc))
    [ 0x0; 0x40; 0x44; 0x7c; 0x1004; 0xdeadbeef ];
  (* Instruction words 4 bytes apart get distinct slots until the table
     wraps: entries * 4 bytes of code per alias-free window. *)
  check_int "wraps at entries*4" (M.Branch.index_of b 0x40)
    (M.Branch.index_of b (0x40 + (16 * 4)));
  check_bool "adjacent words distinct" true
    (M.Branch.index_of b 0x40 <> M.Branch.index_of b 0x44)

let gshare_index_formula () =
  let bits = 4 in
  let b = M.Branch.create ~entries:16 ~kind:(M.Branch.Gshare bits) () in
  (* Fresh predictor: history = 0, so gshare degenerates to bimodal. *)
  check_int "zero history = bimodal" ((0x7c lsr 2) land 15)
    (M.Branch.index_of b 0x7c);
  (* Train a known history and check the XOR fold directly. *)
  List.iter
    (fun taken -> ignore (M.Branch.predict_and_update b ~pc:0x40 ~taken))
    [ true; false; true; true ];
  (* Outcomes shift into the history LSB: T,F,T,T -> 0b1011. *)
  let h = 0b1011 in
  let expect pc = ((pc lsr 2) lxor (h land ((1 lsl bits) - 1))) land 15 in
  List.iter
    (fun pc ->
      check_int (Printf.sprintf "xor fold at %x" pc) (expect pc)
        (M.Branch.index_of b pc))
    [ 0x0; 0x40; 0x44; 0x1004 ]

let index_of_respects_mask () =
  List.iter
    (fun entries ->
      let b = M.Branch.create ~entries () in
      for pc = 0 to 1024 do
        let i = M.Branch.index_of b pc in
        check_bool "in range" true (i >= 0 && i < entries)
      done)
    [ 1; 2; 16; 256 ]

let branch_counts () =
  let b = M.Branch.create ~entries:16 () in
  for _ = 1 to 10 do
    ignore (M.Branch.predict_and_update b ~pc:0 ~taken:true)
  done;
  check_int "branches" 10 (M.Branch.branches b);
  M.Branch.reset b;
  check_int "reset" 0 (M.Branch.branches b)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)
(* ------------------------------------------------------------------ *)

let hierarchy_fetch_locality () =
  let h = M.Hierarchy.create () in
  let cold = M.Hierarchy.fetch h 0x400000 in
  let warm = M.Hierarchy.fetch h 0x400004 in
  check_bool "cold fetch expensive" true (cold > warm);
  check_int "same-line fetch is base cost" (M.Cost.default.M.Cost.base_cycles) warm

let hierarchy_data_levels () =
  let h = M.Hierarchy.create () in
  let miss = M.Hierarchy.data h 0x10000000 in
  let hit = M.Hierarchy.data h 0x10000000 in
  check_bool "miss costs more than hit" true (miss > hit)

let hierarchy_branch_penalty () =
  let h = M.Hierarchy.create () in
  (* Train, then a surprise branch costs the misprediction penalty. *)
  for _ = 1 to 8 do
    ignore (M.Hierarchy.branch h ~pc:0x40 ~taken:true)
  done;
  let penalty = M.Hierarchy.branch h ~pc:0x40 ~taken:false in
  check_int "penalty" M.Cost.default.M.Cost.branch_misprediction penalty

let hierarchy_counters_consistent () =
  let h = M.Hierarchy.create () in
  ignore (M.Hierarchy.fetch h 0x400000);
  ignore (M.Hierarchy.data h 0x10000000);
  ignore (M.Hierarchy.branch h ~pc:0x40 ~taken:true);
  let c = M.Hierarchy.counters h in
  check_int "instructions" 1 c.M.Hierarchy.instructions;
  check_int "branches" 1 c.M.Hierarchy.branches;
  check_bool "cycles positive" true (c.M.Hierarchy.cycles > 0);
  check_bool "cycles match accessor" true (c.M.Hierarchy.cycles = M.Hierarchy.cycles h)

let hierarchy_flush_forces_misses () =
  let h = M.Hierarchy.create () in
  ignore (M.Hierarchy.data h 0x20000000);
  ignore (M.Hierarchy.data h 0x20000000);
  let c1 = M.Hierarchy.counters h in
  M.Hierarchy.flush h;
  ignore (M.Hierarchy.data h 0x20000000);
  let c2 = M.Hierarchy.counters h in
  check_bool "miss after flush" true (c2.M.Hierarchy.l1d_misses > c1.M.Hierarchy.l1d_misses)

let hierarchy_charge_and_reset () =
  let h = M.Hierarchy.create () in
  M.Hierarchy.charge h 123;
  check_int "charged" 123 (M.Hierarchy.cycles h);
  M.Hierarchy.reset h;
  check_int "reset" 0 (M.Hierarchy.cycles h)

(* The fetch-line memo must follow the configured L1I geometry. A
   hardcoded [lsr 6] used to make any non-default line size mischarge:
   with 32-byte lines, 0x...00 and 0x...20 are different lines and the
   second fetch must walk the I-side again. *)
let hierarchy_fetch_line_follows_config () =
  let l1i = { M.Cache.name = "L1I"; sets = 64; ways = 2; line_bits = 5 } in
  let h = M.Hierarchy.create ~l1i () in
  ignore (M.Hierarchy.fetch h 0x400000);
  ignore (M.Hierarchy.fetch h 0x400020);
  let c = M.Hierarchy.counters h in
  check_int "two 32-byte lines, two L1I misses" 2 c.M.Hierarchy.l1i_misses;
  (* And the converse direction: with 256-byte lines the second fetch
     is the same line, so no new I-side access happens at all. *)
  let l1i = { M.Cache.name = "L1I"; sets = 16; ways = 2; line_bits = 8 } in
  let h = M.Hierarchy.create ~l1i () in
  ignore (M.Hierarchy.fetch h 0x400000);
  ignore (M.Hierarchy.fetch h 0x4000C0);
  let c = M.Hierarchy.counters h in
  check_int "one 256-byte line, one L1I miss" 1 c.M.Hierarchy.l1i_misses;
  check_int "itlb touched once" 1 c.M.Hierarchy.itlb_misses

(* The decomposed hot path (inline line check + fetch_cross +
   charge_batch) must account exactly like per-instruction fetch. *)
let hierarchy_batched_fetch_identity () =
  let pcs = Array.init 200 (fun i -> 0x400000 + (4 * i * (1 + (i mod 7)))) in
  let h1 = M.Hierarchy.create () in
  Array.iter (fun pc -> ignore (M.Hierarchy.fetch h1 pc)) pcs;
  let h2 = M.Hierarchy.create () in
  let shift = M.Hierarchy.fetch_shift h2 in
  let memo = M.Hierarchy.fetch_line_memo h2 in
  let base = M.Cost.default.M.Cost.base_cycles in
  let pending = ref 0 in
  Array.iter
    (fun pc ->
      if pc lsr shift <> !memo then M.Hierarchy.fetch_cross h2 pc;
      incr pending)
    pcs;
  M.Hierarchy.charge_batch h2 ~instructions:!pending ~cycles:(!pending * base);
  let c1 = M.Hierarchy.counters h1 and c2 = M.Hierarchy.counters h2 in
  List.iter2
    (fun (k, v1) (_, v2) -> check_int k v1 v2)
    (M.Hierarchy.counters_fields c1)
    (M.Hierarchy.counters_fields c2)

(* Consecutive same-line data accesses take the memoized fast path;
   every exported counter must stay identical to the full walk, and a
   line change or flush must end the memo's validity. *)
let hierarchy_data_memo_transparent () =
  let addrs =
    Array.init 300 (fun i ->
        0x20000000 + (8 * (i mod 3)) + (64 * (i mod 11)) + (4096 * (i mod 5)))
  in
  let h = M.Hierarchy.create () in
  Array.iter (fun a -> ignore (M.Hierarchy.data h a)) addrs;
  let c = M.Hierarchy.counters h in
  (* Reference machine: identical geometry but a nonzero L1D hit cost,
     which disables the memo (a repeated hit would owe cycles). Every
     duplicate access then really walks and hits — the miss counters
     must come out identical, proving the memo only skips guaranteed
     hits and never perturbs any replacement decision. *)
  let cost = { M.Cost.default with M.Cost.l1_hit = 1 } in
  let h' = M.Hierarchy.create ~cost () in
  Array.iter (fun a -> ignore (M.Hierarchy.data h' a)) addrs;
  let c' = M.Hierarchy.counters h' in
  check_int "l1d misses identical without memo" c'.M.Hierarchy.l1d_misses
    c.M.Hierarchy.l1d_misses;
  check_int "l2 misses identical without memo" c'.M.Hierarchy.l2_misses
    c.M.Hierarchy.l2_misses;
  check_int "l3 misses identical without memo" c'.M.Hierarchy.l3_misses
    c.M.Hierarchy.l3_misses;
  check_int "dtlb misses identical without memo" c'.M.Hierarchy.dtlb_misses
    c.M.Hierarchy.dtlb_misses;
  (* Same-line repeats cost zero and add no misses. *)
  let h2 = M.Hierarchy.create () in
  let first = M.Hierarchy.data h2 0x30000000 in
  let repeat = M.Hierarchy.data h2 0x30000008 in
  check_bool "first access walks" true (first > 0);
  check_int "same-line repeat is free" 0 repeat;
  let before = M.Hierarchy.counters h2 in
  ignore (M.Hierarchy.data h2 0x30000010);
  let after = M.Hierarchy.counters h2 in
  check_int "no new l1d miss on memoized line" before.M.Hierarchy.l1d_misses
    after.M.Hierarchy.l1d_misses;
  M.Hierarchy.flush h2;
  check_bool "flush clears the data memo" true
    (M.Hierarchy.data h2 0x30000008 > 0)

let () =
  Alcotest.run "machine"
    [
      ( "cache",
        [
          Alcotest.test_case "hit after fill" `Quick cache_hit_after_fill;
          Alcotest.test_case "lru eviction" `Quick cache_lru_eviction;
          Alcotest.test_case "sets disjoint" `Quick cache_sets_disjoint;
          Alcotest.test_case "counters" `Quick cache_counters;
          Alcotest.test_case "probe is pure" `Quick cache_probe_no_state_change;
          Alcotest.test_case "flush/reset" `Quick cache_flush_and_reset;
          Alcotest.test_case "index bits" `Quick cache_index_bits;
          Alcotest.test_case "bad config" `Quick cache_bad_config;
          QCheck_alcotest.to_alcotest cache_matches_reference_model;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "page granularity" `Quick tlb_page_granularity;
          Alcotest.test_case "capacity" `Quick tlb_capacity;
        ] );
      ( "branch",
        [
          Alcotest.test_case "learns bias" `Quick branch_learns_bias;
          Alcotest.test_case "aliasing interferes" `Quick branch_aliasing_interferes;
          Alcotest.test_case "counts" `Quick branch_counts;
          Alcotest.test_case "gshare alternation" `Quick gshare_learns_alternating;
          Alcotest.test_case "gshare history index" `Quick gshare_history_moves_index;
          Alcotest.test_case "bimodal index formula" `Quick bimodal_index_formula;
          Alcotest.test_case "gshare index formula" `Quick gshare_index_formula;
          Alcotest.test_case "index respects mask" `Quick index_of_respects_mask;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "fetch locality" `Quick hierarchy_fetch_locality;
          Alcotest.test_case "data levels" `Quick hierarchy_data_levels;
          Alcotest.test_case "branch penalty" `Quick hierarchy_branch_penalty;
          Alcotest.test_case "counters" `Quick hierarchy_counters_consistent;
          Alcotest.test_case "flush forces misses" `Quick hierarchy_flush_forces_misses;
          Alcotest.test_case "charge/reset" `Quick hierarchy_charge_and_reset;
          Alcotest.test_case "fetch line follows config" `Quick
            hierarchy_fetch_line_follows_config;
          Alcotest.test_case "batched fetch identity" `Quick
            hierarchy_batched_fetch_identity;
          Alcotest.test_case "data memo transparent" `Quick
            hierarchy_data_memo_transparent;
        ] );
    ]
