(* The durable-artifact layer: CRC-32, record containers, salvage of
   torn/flipped files, .sum sidecars, seeded storage-fault injection —
   and the supervisor checkpoint built on top of it. The fuzz suites
   are the contract: no byte-level damage to a checkpoint may ever
   raise out of the lenient parser, and whatever survives must be a
   valid record prefix. *)

module A = Stz_store.Artifact
module Crc = Stz_store.Crc32
module Storage = Stz_faults.Storage
module S = Stabilizer
module F = Stz_faults.Fault
module P = Stz_workloads.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp f =
  let path = Filename.temp_file "stz-store" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; A.sum_path path; path ^ ".tmp"; path ^ ".corrupt" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let crc_vectors () =
  (* The standard check value, plus a couple of published vectors. *)
  check_string "empty" "00000000" (Crc.to_hex (Crc.digest ""));
  check_bool "123456789" true (Crc.digest "123456789" = 0xCBF43926l);
  check_bool "quick brown fox" true
    (Crc.digest "The quick brown fox jumps over the lazy dog" = 0x414FA339l);
  (* Incremental update equals one-shot digest. *)
  let s = "a longer payload, fed in two pieces" in
  let k = String.length s / 2 in
  let inc =
    Crc.update
      (Crc.update 0l (String.sub s 0 k))
      (String.sub s k (String.length s - k))
  in
  check_bool "incremental = one-shot" true (inc = Crc.digest s);
  (* Hex round-trip. *)
  check_bool "hex round-trip" true
    (Crc.of_hex (Crc.to_hex 0xDEADBEEFl) = Some 0xDEADBEEFl)

let crc_detects_any_single_bit_flip =
  QCheck.Test.make ~name:"crc32 detects every single-bit flip" ~count:50
    QCheck.(string_of_size Gen.(int_range 1 64))
    (fun s ->
      let clean = Crc.digest s in
      let ok = ref true in
      for bit = 0 to (8 * String.length s) - 1 do
        let b = Bytes.of_string s in
        let i = bit / 8 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
        if Crc.digest (Bytes.to_string b) = clean then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Record containers                                                   *)
(* ------------------------------------------------------------------ *)

let records =
  [
    ("meta", "{\"version\":3}");
    ("run", "payload with\nembedded newline and @tag-like bytes");
    ("run", "");
    ("state", String.init 257 (fun i -> Char.chr (i mod 256)));
  ]

let container_round_trip () =
  with_temp (fun path ->
      A.write_records path ~kind:"test-kind" records;
      match A.read_records path with
      | Error e -> Alcotest.failf "read_records: %s" e
      | Ok (kind, got) ->
          check_string "kind" "test-kind" kind;
          check_bool "records" true (got = records));
  (* Deterministic serialization. *)
  check_string "same records, same bytes"
    (A.container ~kind:"k" records)
    (A.container ~kind:"k" records)

let is_prefix shorter longer =
  List.length shorter <= List.length longer
  && List.for_all2
       (fun a b -> a = b)
       shorter
       (List.filteri (fun i _ -> i < List.length shorter) longer)

let salvage_truncation_fuzz () =
  (* Cutting the container at EVERY byte offset must parse without
     raising, and what survives must be a record prefix with
     [valid_bytes] consistent. *)
  let full = A.container ~kind:"fuzz" records in
  for len = 0 to String.length full do
    let s = A.salvage_string (String.sub full 0 len) in
    check_bool
      (Printf.sprintf "truncate@%d: prefix" len)
      true
      (is_prefix s.A.records records);
    check_int (Printf.sprintf "truncate@%d: total_bytes" len) len s.A.total_bytes;
    check_bool
      (Printf.sprintf "truncate@%d: clean parse covers everything" len)
      true
      (s.A.error <> None || s.A.valid_bytes = s.A.total_bytes);
    (* A clean parse means the cut landed exactly on a record
       boundary: re-serializing the salvage reproduces the bytes. *)
    if s.A.error = None then
      check_string
        (Printf.sprintf "truncate@%d: clean parse is a record boundary" len)
        (String.sub full 0 len)
        (A.container ~kind:"fuzz" s.A.records);
    if len = String.length full then (
      check_bool "full file: everything survives" true (s.A.records = records);
      check_bool "full file: kind" true (s.A.kind = Some "fuzz"))
  done

let salvage_bit_flip_fuzz () =
  (* Flipping one bit at EVERY byte offset must never raise, and must
     never silently keep a damaged record: the salvaged list is always
     a prefix of the originals. *)
  let full = A.container ~kind:"fuzz" records in
  for i = 0 to String.length full - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string full in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      let s = A.salvage_string (Bytes.to_string b) in
      check_bool
        (Printf.sprintf "flip byte %d bit %d: prefix" i bit)
        true
        (is_prefix s.A.records records)
    done
  done

let salvage_garbage_never_raises =
  QCheck.Test.make ~name:"salvage_string never raises on arbitrary bytes"
    ~count:200
    QCheck.(string_of_size Gen.(int_range 0 400))
    (fun s ->
      let r = A.salvage_string s in
      r.A.total_bytes = String.length s && r.A.valid_bytes <= r.A.total_bytes)

(* ------------------------------------------------------------------ *)
(* Summed payloads                                                     *)
(* ------------------------------------------------------------------ *)

let sidecar_verifies () =
  with_temp (fun path ->
      let payload = "run,seconds\n0,0.5\n" in
      A.write_with_sum path payload;
      check_string "payload verbatim" payload (read_file path);
      check_bool "verifies" true (A.verify_sum path = Ok true);
      (* Damage the payload behind the sidecar's back. *)
      let oc = open_out_bin path in
      output_string oc "run,seconds\n0,0.6\n";
      close_out oc;
      check_bool "mismatch detected" true
        (match A.verify_sum path with Error _ -> true | Ok _ -> false);
      (* No sidecar: nothing to verify. *)
      Sys.remove (A.sum_path path);
      check_bool "no sidecar" true (A.verify_sum path = Ok false))

(* ------------------------------------------------------------------ *)
(* Seeded storage faults                                               *)
(* ------------------------------------------------------------------ *)

let write_under profile seed path contents n =
  Storage.arm ~seed profile;
  Fun.protect ~finally:Storage.disarm @@ fun () ->
  List.init n (fun i ->
      A.write_file path (contents i);
      if Sys.file_exists path then Some (read_file path) else None)

let storage_faults_deterministic () =
  with_temp (fun p1 ->
      with_temp (fun p2 ->
          let contents i = Printf.sprintf "artifact body %d %s" i (String.make 64 'x') in
          let a = write_under Storage.chaos 42L p1 contents 20 in
          let b = write_under Storage.chaos 42L p2 contents 20 in
          check_bool "same seed, same damage" true (a = b);
          let c = write_under Storage.chaos 43L p1 contents 20 in
          check_bool "different seed, different damage" true (a <> c)))

let storage_faults_actually_fire () =
  with_temp (fun path ->
      let contents i = Printf.sprintf "clean write %d %s" i (String.make 64 'y') in
      let observed = write_under Storage.chaos 7L path contents 20 in
      let damaged =
        List.exists
          (fun (i, got) -> got <> Some (contents i))
          (List.mapi (fun i g -> (i, g)) observed)
      in
      check_bool "chaos profile corrupts some writes" true damaged;
      check_bool "none profile is a no-op armed" true
        (not (Storage.active Storage.none)))

(* ------------------------------------------------------------------ *)
(* Supervisor checkpoints on the artifact layer                        *)
(* ------------------------------------------------------------------ *)

let tiny =
  {
    P.default with
    P.name = "store";
    functions = 8;
    hot_functions = 4;
    iterations = 12;
    inner_trips = 6;
    seed = 0x57_0F_0AB5L;
  }

let program = lazy (Stz_workloads.Generate.program tiny)
let config = S.Config.stabilizer
let args = [ 1 ]

let policy =
  { S.Supervisor.default_policy with S.Supervisor.max_retries = 2 }

let campaign ?(runs = 12) ?checkpoint ?(resume = false) ?on_record ~seed profile
    =
  S.Supervisor.run_campaign ~policy ~profile ?checkpoint ~resume ?on_record
    ~config ~base_seed:(Int64.of_int seed) ~runs ~args (Lazy.force program)

let checkpoint_is_container () =
  with_temp (fun path ->
      let c = campaign ~seed:5 ~checkpoint:path F.light in
      let text = read_file path in
      check_bool "magic" true (A.is_container text);
      (match A.read_records path with
      | Error e -> Alcotest.failf "strict read: %s" e
      | Ok (kind, recs) ->
          check_string "kind" "szc-checkpoint" kind;
          check_int "meta + runs + state" (List.length c.S.Supervisor.records + 2)
            (List.length recs));
      match S.Supervisor.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok c' -> check_bool "round-trips" true (c = c'))

let legacy_json_still_loads () =
  with_temp (fun path ->
      let c = campaign ~seed:5 F.light in
      let oc = open_out_bin path in
      output_string oc (S.Json.to_string (S.Supervisor.to_json c));
      close_out oc;
      match S.Supervisor.load path with
      | Error e -> Alcotest.failf "legacy load: %s" e
      | Ok c' -> check_bool "legacy JSON round-trips" true (c = c'))

let record_prefix shorter longer =
  is_prefix shorter.S.Supervisor.records longer.S.Supervisor.records

let checkpoint_truncation_fuzz () =
  (* Cut the checkpoint at EVERY byte offset: [recover] must never
     raise, and any salvaged campaign must be a run-order prefix of the
     full one. *)
  with_temp (fun path ->
      let c = campaign ~seed:9 ~checkpoint:path F.light in
      let full = read_file path in
      for len = 0 to String.length full do
        let oc = open_out_bin path in
        output_string oc (String.sub full 0 len);
        close_out oc;
        match S.Supervisor.recover path with
        | exception e ->
            Alcotest.failf "truncate@%d raised %s" len (Printexc.to_string e)
        | Error _ -> ()
        | Ok (got, note) ->
            check_bool (Printf.sprintf "truncate@%d: prefix" len) true
              (record_prefix got c);
            if len < String.length full then
              check_bool
                (Printf.sprintf "truncate@%d: salvage noted" len)
                true (note <> None)
      done)

let checkpoint_bit_flip_fuzz () =
  (* Flip one bit at EVERY byte offset: never raises, salvage is always
     a prefix, and strict [load] never accepts the damaged file. *)
  with_temp (fun path ->
      let c = campaign ~seed:13 ~runs:8 ~checkpoint:path F.light in
      let full = read_file path in
      for i = 0 to String.length full - 1 do
        let b = Bytes.of_string full in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
        let oc = open_out_bin path in
        output_string oc (Bytes.to_string b);
        close_out oc;
        (match S.Supervisor.recover path with
        | exception e ->
            Alcotest.failf "flip@%d raised %s" i (Printexc.to_string e)
        | Error _ -> ()
        | Ok (got, _) ->
            check_bool (Printf.sprintf "flip@%d: prefix" i) true
              (record_prefix got c));
        match S.Supervisor.load path with
        | exception e ->
            Alcotest.failf "strict flip@%d raised %s" i (Printexc.to_string e)
        | Ok got ->
            (* A flip inside a record body is caught by its CRC; flips
               in cosmetic header whitespace can't change the parse. *)
            check_bool (Printf.sprintf "strict flip@%d equals original" i) true
              (got = c)
        | Error _ -> ()
      done)

exception Killed

let derived_state_resume_identity () =
  (* Kill a campaign mid-flight, tear the supervisor-state record off
     the checkpoint, and resume: quarantine and budgets are re-derived
     from the surviving run records, bit-exactly. *)
  with_temp (fun ref_path ->
      with_temp (fun path ->
          let reference = campaign ~seed:21 ~runs:16 ~checkpoint:ref_path F.heavy in
          let seen = ref 0 in
          (try
             ignore
               (campaign ~seed:21 ~runs:16 ~checkpoint:path
                  ~on_record:(fun _ ->
                    incr seen;
                    if !seen = 9 then raise Killed)
                  F.heavy)
           with Killed -> ());
          (* Drop the trailing state record, as a torn tail would. *)
          let s = A.salvage_string (read_file path) in
          check_bool "intact before surgery" true (s.A.error = None);
          let without_state =
            List.filter (fun (tag, _) -> tag <> "state") s.A.records
          in
          check_int "exactly one state record" 1
            (List.length s.A.records - List.length without_state);
          A.write_records path ~kind:"szc-checkpoint" without_state;
          (match S.Supervisor.load path with
          | Ok _ -> Alcotest.fail "strict load must reject a missing state record"
          | Error _ -> ());
          (match S.Supervisor.recover path with
          | Error e -> Alcotest.failf "recover: %s" e
          | Ok (mid, note) ->
              check_bool "salvage noted" true (note <> None);
              check_bool "prefix of the reference" true
                (record_prefix mid reference));
          let resumed =
            campaign ~seed:21 ~runs:16 ~checkpoint:path ~resume:true F.heavy
          in
          check_bool "records identical after derived-state resume" true
            (reference.S.Supervisor.records = resumed.S.Supervisor.records);
          check_bool "quarantine identical" true
            (reference.S.Supervisor.quarantined
            = resumed.S.Supervisor.quarantined);
          check_string "final checkpoints byte-identical" (read_file ref_path)
            (read_file path)))

let campaign_survives_storage_faults () =
  (* A campaign whose every checkpoint write is sabotaged still
     completes, and its final sample equals the clean campaign's: the
     artifact layer absorbs the damage (old checkpoint survives a
     dropped rename; the checkpoint is advisory until resume). *)
  with_temp (fun path ->
      let clean = campaign ~seed:31 F.light in
      Storage.arm ~seed:77L Storage.heavy;
      let faulted =
        Fun.protect ~finally:Storage.disarm @@ fun () ->
        campaign ~seed:31 ~checkpoint:path F.light
      in
      check_bool "samples identical under storage faults" true
        (S.Supervisor.times clean = S.Supervisor.times faulted);
      (* Whatever the last checkpoint write left behind, recovery never
         raises and only ever yields a record prefix. *)
      if Sys.file_exists path then
        match S.Supervisor.recover path with
        | exception e -> Alcotest.failf "recover raised %s" (Printexc.to_string e)
        | Error _ -> ()
        | Ok (got, _) ->
            check_bool "salvaged prefix" true (record_prefix got clean))

(* ------------------------------------------------------------------ *)
(* History ledger on the artifact layer                                *)
(* ------------------------------------------------------------------ *)

module Ledger = Stz_store.Ledger

let sample_entry i =
  {
    Ledger.label = Printf.sprintf "bench-%d" i;
    fingerprint = Printf.sprintf "bench-%d|O2|0x1p+0|code.heap.stack|none" i;
    base_seed = Int64.of_int (1000 + i);
    runs = 30;
    completed = 28 + (i mod 2);
    censored = 2 - (i mod 2);
    mean = 0.00123 +. (0.0001 *. float_of_int i);
    sd = 1.7e-5;
    min = 0.0011;
    max = 0.0014;
    skewness = -0.12;
    kurtosis = 0.34;
    detectable_effect = 0.71;
    verdict = "enough-runs";
  }

let ledger_round_trip () =
  with_temp (fun path ->
      let entries = List.init 3 sample_entry in
      (* append builds the file one entry at a time, returning 0-based
         sequence numbers. *)
      List.iteri
        (fun i e ->
          match Ledger.append path e with
          | Ok seq -> check_int "sequence number" i seq
          | Error err -> Alcotest.failf "append: %s" err)
        entries;
      (match Ledger.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok got -> check_bool "entries round-trip bit-exactly" true (got = entries));
      (* Payload round-trip is exact even for awkward floats. *)
      let e =
        { (sample_entry 0) with Ledger.mean = 0.1; sd = Float.min_float }
      in
      match Ledger.entry_of_payload (Ledger.entry_to_payload e) with
      | Error err -> Alcotest.failf "payload: %s" err
      | Ok e' -> check_bool "hex floats are bit-exact" true (e = e'))

let ledger_refuses_corrupt_append () =
  with_temp (fun path ->
      (match Ledger.append path (sample_entry 0) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "append: %s" e);
      let full = read_file path in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 3));
      close_out oc;
      (* A damaged ledger must be repaired explicitly, never silently
         truncated by the next append. *)
      check_bool "append refuses a corrupt ledger" true
        (Result.is_error (Ledger.append path (sample_entry 1))))

let ledger_truncation_fuzz () =
  (* Cut the ledger at EVERY byte offset: [recover] must never raise
     and must only ever salvage an entry prefix. *)
  with_temp (fun path ->
      let entries = List.init 4 sample_entry in
      Ledger.write path entries;
      let full = read_file path in
      for len = 0 to String.length full do
        let oc = open_out_bin path in
        output_string oc (String.sub full 0 len);
        close_out oc;
        match Ledger.recover path with
        | exception e ->
            Alcotest.failf "truncate@%d raised %s" len (Printexc.to_string e)
        | Error _ -> ()
        | Ok (got, note) ->
            check_bool (Printf.sprintf "truncate@%d: prefix" len) true
              (is_prefix got entries);
            (* A silent (un-noted) salvage is only acceptable when the
               cut landed exactly on a record boundary — i.e. the
               surviving bytes re-serialize to exactly the truncated
               file, which is indistinguishable from a shorter ledger. *)
            if len < String.length full && note = None then
              check_string
                (Printf.sprintf "truncate@%d: clean salvage is a boundary" len)
                (String.sub full 0 len)
                (A.container ~kind:Ledger.kind
                   (List.map
                      (fun e -> ("campaign", Ledger.entry_to_payload e))
                      got))
      done)

let ledger_bit_flip_fuzz () =
  (* Flip one bit at EVERY byte offset: [recover] never raises and
     salvages only prefixes; strict [load] never accepts a changed
     parse. *)
  with_temp (fun path ->
      let entries = List.init 3 sample_entry in
      Ledger.write path entries;
      let full = read_file path in
      for i = 0 to String.length full - 1 do
        let b = Bytes.of_string full in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
        let oc = open_out_bin path in
        output_string oc (Bytes.to_string b);
        close_out oc;
        (match Ledger.recover path with
        | exception e ->
            Alcotest.failf "flip@%d raised %s" i (Printexc.to_string e)
        | Error _ -> ()
        | Ok (got, _) ->
            check_bool (Printf.sprintf "flip@%d: prefix" i) true
              (is_prefix got entries));
        match Ledger.load path with
        | exception e ->
            Alcotest.failf "strict flip@%d raised %s" i (Printexc.to_string e)
        | Ok got ->
            (* Flips in cosmetic header whitespace cannot change the
               parse; anywhere else the CRC catches them. *)
            check_bool (Printf.sprintf "strict flip@%d equals original" i) true
              (got = entries)
        | Error _ -> ()
      done)

(* ------------------------------------------------------------------ *)
(* Daemon oplog on the artifact layer                                  *)
(* ------------------------------------------------------------------ *)

module Oplog = Stz_telemetry.Oplog
module Json = Stz_telemetry.Json

let write_oplog path n =
  match Oplog.create ~path () with
  | Error e -> Alcotest.fail e
  | Ok l ->
      for i = 0 to n - 1 do
        Oplog.event l ~ts_ms:(1_700_000_000_000 + i) ~ev:"fuzz.event"
          [ ("i", Json.Int i); ("payload", Json.String (String.make 20 'x')) ]
      done;
      Oplog.close l

let oplog_raw_records path =
  match A.read_records path with
  | Ok (_, records) -> records
  | Error e -> Alcotest.failf "intact oplog unreadable: %s" e

let oplog_truncation_fuzz () =
  (* Cut the oplog at EVERY byte offset — the SIGKILL-mid-write
     spectrum. [recover] must never raise and must salvage only record
     prefixes, exactly like checkpoints and ledgers. *)
  with_temp (fun path ->
      write_oplog path 5;
      let records = oplog_raw_records path in
      let full = read_file path in
      for len = 0 to String.length full do
        let oc = open_out_bin path in
        output_string oc (String.sub full 0 len);
        close_out oc;
        match Oplog.recover path with
        | exception e ->
            Alcotest.failf "truncate@%d raised %s" len (Printexc.to_string e)
        | Error _ -> ()
        | Ok (got, note) ->
            check_bool (Printf.sprintf "truncate@%d: prefix" len) true
              (is_prefix got records);
            if len < String.length full && note = None then
              check_string
                (Printf.sprintf "truncate@%d: clean salvage is a boundary" len)
                (String.sub full 0 len)
                (A.container ~kind:Oplog.kind got)
      done)

let oplog_bit_flip_fuzz () =
  (* Flip one bit at EVERY byte offset: [recover] never raises and
     salvages only prefixes; strict [load] never accepts a changed
     parse. *)
  with_temp (fun path ->
      write_oplog path 4;
      let records = oplog_raw_records path in
      let full = read_file path in
      let intact =
        match Oplog.load path with
        | Ok r -> r
        | Error e -> Alcotest.failf "intact load: %s" e
      in
      for i = 0 to String.length full - 1 do
        let b = Bytes.of_string full in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
        let oc = open_out_bin path in
        output_string oc (Bytes.to_string b);
        close_out oc;
        (match Oplog.recover path with
        | exception e ->
            Alcotest.failf "flip@%d raised %s" i (Printexc.to_string e)
        | Error _ -> ()
        | Ok (got, _) ->
            check_bool (Printf.sprintf "flip@%d: prefix" i) true
              (is_prefix got records));
        match Oplog.load path with
        | exception e ->
            Alcotest.failf "strict flip@%d raised %s" i (Printexc.to_string e)
        | Ok got ->
            check_bool (Printf.sprintf "strict flip@%d equals original" i) true
              (got = intact)
        | Error _ -> ()
      done)

let oplog_self_heal_appends_after_torn_tail () =
  (* The daemon's reopen path: truncate mid-record, reopen, append —
     the result must be a fully valid container again. *)
  with_temp (fun path ->
      write_oplog path 5;
      let full = read_file path in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 11));
      close_out oc;
      (match Oplog.create ~path () with
      | Error e -> Alcotest.failf "self-heal open: %s" e
      | Ok l ->
          Oplog.event l ~ts_ms:1_700_000_000_999 ~ev:"fuzz.after"
            [ ("ok", Json.Bool true) ];
          Oplog.close l);
      match Oplog.load path with
      | Error e -> Alcotest.failf "healed file not strictly valid: %s" e
      | Ok records ->
          check_int "4 salvaged + 1 appended" 5 (List.length records))

let () =
  Alcotest.run "store"
    [
      ( "crc32",
        [
          Alcotest.test_case "vectors" `Quick crc_vectors;
          QCheck_alcotest.to_alcotest crc_detects_any_single_bit_flip;
        ] );
      ( "container",
        [
          Alcotest.test_case "round-trip" `Quick container_round_trip;
          Alcotest.test_case "truncation fuzz (every offset)" `Quick
            salvage_truncation_fuzz;
          Alcotest.test_case "bit-flip fuzz (every offset)" `Quick
            salvage_bit_flip_fuzz;
          QCheck_alcotest.to_alcotest salvage_garbage_never_raises;
        ] );
      ( "sidecar",
        [ Alcotest.test_case "write + verify" `Quick sidecar_verifies ] );
      ( "storage faults",
        [
          Alcotest.test_case "seed-deterministic" `Quick
            storage_faults_deterministic;
          Alcotest.test_case "chaos corrupts writes" `Quick
            storage_faults_actually_fire;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "container round-trip" `Quick checkpoint_is_container;
          Alcotest.test_case "legacy JSON loads" `Quick legacy_json_still_loads;
          Alcotest.test_case "truncation fuzz (every offset)" `Quick
            checkpoint_truncation_fuzz;
          Alcotest.test_case "bit-flip fuzz (every offset)" `Quick
            checkpoint_bit_flip_fuzz;
          Alcotest.test_case "derived-state resume identity" `Quick
            derived_state_resume_identity;
          Alcotest.test_case "campaign survives storage faults" `Quick
            campaign_survives_storage_faults;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "round-trip + sequence" `Quick ledger_round_trip;
          Alcotest.test_case "append refuses corruption" `Quick
            ledger_refuses_corrupt_append;
          Alcotest.test_case "truncation fuzz (every offset)" `Quick
            ledger_truncation_fuzz;
          Alcotest.test_case "bit-flip fuzz (every offset)" `Quick
            ledger_bit_flip_fuzz;
        ] );
      ( "oplog",
        [
          Alcotest.test_case "truncation fuzz (every offset)" `Quick
            oplog_truncation_fuzz;
          Alcotest.test_case "bit-flip fuzz (every offset)" `Quick
            oplog_bit_flip_fuzz;
          Alcotest.test_case "self-heal then append" `Quick
            oplog_self_heal_appends_after_torn_tail;
        ] );
    ]
