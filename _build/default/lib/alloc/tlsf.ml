let sl_log = 4
let subclasses = 1 lsl sl_log
let min_block = 16
let min_log = 4
let max_log = 40
let chunk_size = 1 lsl 16

let msb n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let mapping size =
  if size < min_block then invalid_arg "Tlsf.mapping: size below minimum";
  let fl = msb size in
  if fl < sl_log then (0, 0)
  else begin
    let sl = (size lsr (fl - sl_log)) - subclasses in
    (fl - min_log, sl)
  end

type block = {
  mutable addr : int;
  mutable size : int;
  mutable is_free : bool;
  mutable prev_free : block option;
  mutable next_free : block option;
}

type state = {
  arena : Arena.t;
  heads : block option array array;  (* [fl][sl] *)
  by_addr : (int, block) Hashtbl.t;
  by_end : (int, block) Hashtbl.t;  (* addr + size -> block *)
  requested : (int, int) Hashtbl.t;
  mutable live_bytes : int;
  mutable reserved_bytes : int;
  mutable allocations : int;
  mutable frees : int;
}

let unlink s b =
  let fl, sl = mapping b.size in
  (match b.prev_free with
  | Some p -> p.next_free <- b.next_free
  | None -> s.heads.(fl).(sl) <- b.next_free);
  (match b.next_free with Some n -> n.prev_free <- b.prev_free | None -> ());
  b.prev_free <- None;
  b.next_free <- None

let push s b =
  let fl, sl = mapping b.size in
  b.prev_free <- None;
  b.next_free <- s.heads.(fl).(sl);
  (match s.heads.(fl).(sl) with Some h -> h.prev_free <- Some b | None -> ());
  s.heads.(fl).(sl) <- Some b

let register s b =
  Hashtbl.replace s.by_addr b.addr b;
  Hashtbl.replace s.by_end (b.addr + b.size) b

let unregister s b =
  Hashtbl.remove s.by_addr b.addr;
  Hashtbl.remove s.by_end (b.addr + b.size)

(* Search for a free block of at least [size], scanning classes upward
   from the request's own class. *)
let find_fit s size =
  let fl0, sl0 = mapping size in
  let result = ref None in
  (try
     for fl = fl0 to max_log - min_log - 1 do
       let sl_start = if fl = fl0 then sl0 else 0 in
       for sl = sl_start to subclasses - 1 do
         let rec scan = function
           | None -> ()
           | Some b when b.size >= size ->
               result := Some b;
               raise Exit
           | Some b -> scan b.next_free
         in
         scan s.heads.(fl).(sl)
       done
     done
   with Exit -> ());
  !result

let grow s need =
  let n = Stdlib.max need chunk_size in
  let addr = Arena.sbrk s.arena n in
  s.reserved_bytes <- s.reserved_bytes + n;
  let b = { addr; size = n; is_free = true; prev_free = None; next_free = None } in
  (* Coalesce with a free block ending exactly where this chunk starts
     (sbrk chunks are contiguous within the arena). *)
  (match Hashtbl.find_opt s.by_end addr with
  | Some left when left.is_free ->
      unlink s left;
      unregister s left;
      unregister s b;
      b.addr <- left.addr;
      b.size <- b.size + left.size
  | Some _ | None -> ());
  register s b;
  push s b

let split s b size =
  if b.size - size >= min_block then begin
    unregister s b;
    let rest =
      {
        addr = b.addr + size;
        size = b.size - size;
        is_free = true;
        prev_free = None;
        next_free = None;
      }
    in
    b.size <- size;
    register s b;
    register s rest;
    push s rest
  end

let align16 n = (n + 15) land lnot 15

let create arena =
  let fls = max_log - min_log in
  let s =
    {
      arena;
      heads = Array.init fls (fun _ -> Array.make subclasses None);
      by_addr = Hashtbl.create 1024;
      by_end = Hashtbl.create 1024;
      requested = Hashtbl.create 1024;
      live_bytes = 0;
      reserved_bytes = 0;
      allocations = 0;
      frees = 0;
    }
  in
  let rec malloc_block size =
    match find_fit s size with
    | Some b ->
        unlink s b;
        split s b size;
        b.is_free <- false;
        b
    | None ->
        grow s size;
        malloc_block size
  in
  let malloc size =
    if size <= 0 then invalid_arg "Tlsf.malloc: non-positive size";
    let rounded = Stdlib.max min_block (align16 size) in
    let b = malloc_block rounded in
    Hashtbl.replace s.requested b.addr size;
    s.live_bytes <- s.live_bytes + size;
    s.allocations <- s.allocations + 1;
    b.addr
  in
  let free addr =
    match Hashtbl.find_opt s.by_addr addr with
    | None -> invalid_arg "Tlsf.free: unknown address"
    | Some b when b.is_free -> invalid_arg "Tlsf.free: double free"
    | Some b ->
        let req = try Hashtbl.find s.requested addr with Not_found -> 0 in
        Hashtbl.remove s.requested addr;
        s.live_bytes <- s.live_bytes - req;
        s.frees <- s.frees + 1;
        b.is_free <- true;
        (* Coalesce right. *)
        (match Hashtbl.find_opt s.by_addr (b.addr + b.size) with
        | Some right when right.is_free ->
            unlink s right;
            unregister s right;
            unregister s b;
            b.size <- b.size + right.size;
            register s b
        | Some _ | None -> ());
        (* Coalesce left. *)
        let b =
          match Hashtbl.find_opt s.by_end b.addr with
          | Some left when left.is_free ->
              unlink s left;
              unregister s left;
              unregister s b;
              left.size <- left.size + b.size;
              register s left;
              left
          | Some _ | None -> b
        in
        push s b
  in
  let usable_size addr =
    match Hashtbl.find_opt s.by_addr addr with
    | Some b -> b.size
    | None -> invalid_arg "Tlsf.usable_size: unknown address"
  in
  let stats () =
    {
      Allocator.live_bytes = s.live_bytes;
      reserved_bytes = s.reserved_bytes;
      allocations = s.allocations;
      frees = s.frees;
    }
  in
  { Allocator.name = "tlsf"; malloc; free; usable_size; stats }
