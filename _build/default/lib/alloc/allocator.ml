type stats = {
  live_bytes : int;
  reserved_bytes : int;
  allocations : int;
  frees : int;
}

type t = {
  name : string;
  malloc : int -> int;
  free : int -> unit;
  usable_size : int -> int;
  stats : unit -> stats;
}

type kind = Segregated | Tlsf | Diehard

let kind_to_string = function
  | Segregated -> "segregated"
  | Tlsf -> "tlsf"
  | Diehard -> "diehard"

let kind_of_string = function
  | "segregated" -> Some Segregated
  | "tlsf" -> Some Tlsf
  | "diehard" -> Some Diehard
  | _ -> None
