let base kind arena =
  match kind with
  | Allocator.Segregated -> Segregated.create arena
  | Allocator.Tlsf -> Tlsf.create arena
  | Allocator.Diehard -> Diehard.create arena

let randomized ?n ~source kind arena =
  Shuffle.create ~source ?n (base kind arena)
