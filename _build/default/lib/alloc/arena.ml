type t = { base : int; size : int; mutable brk : int }

let align16 n = (n + 15) land lnot 15

let create ~base ~size =
  if base < 0 || size <= 0 then invalid_arg "Arena.create: bad range";
  { base; size; brk = base }

let sbrk t n =
  if n < 0 then invalid_arg "Arena.sbrk: negative size";
  let n = align16 n in
  if t.brk + n > t.base + t.size then raise Out_of_memory;
  let addr = t.brk in
  t.brk <- t.brk + n;
  addr

let base t = t.base
let used t = t.brk - t.base
let size t = t.size
