(** Build the heap configurations used across the evaluation: a base
    allocator of a given kind, optionally wrapped in the shuffling
    layer. *)

(** [base kind arena] builds a bare base allocator. *)
val base : Allocator.kind -> Arena.t -> Allocator.t

(** [randomized ?n ~source kind arena] wraps the base allocator in a
    shuffling layer with parameter [n] (default 256). *)
val randomized :
  ?n:int -> source:Stz_prng.Source.t -> Allocator.kind -> Arena.t -> Allocator.t
