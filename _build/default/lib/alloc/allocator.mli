(** The common allocator interface: a record of closures, in the spirit
    of HeapLayers composition — the shuffling layer wraps any value of
    this type (paper §3.2, Figure 1). *)

type stats = {
  live_bytes : int;  (** bytes in objects not yet freed (requested sizes) *)
  reserved_bytes : int;  (** arena bytes reserved, including rounding waste *)
  allocations : int;
  frees : int;
}

type t = {
  name : string;
  malloc : int -> int;  (** size in bytes -> address *)
  free : int -> unit;  (** address from a previous [malloc] *)
  usable_size : int -> int;  (** address -> rounded block size *)
  stats : unit -> stats;
}

(** Kinds selectable from configuration (paper §3.2: the base allocator
    is a power-of-two segregated-fit allocator, optionally TLSF;
    DieHard was the original substrate). *)
type kind = Segregated | Tlsf | Diehard

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
