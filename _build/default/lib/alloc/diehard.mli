(** A DieHard-style randomized bitmap allocator (Berger & Zorn): per
    power-of-two size class, objects live in a region kept at most
    half full, and allocation probes random slots until a free one is
    found. Freed memory is *not* reused preferentially, which is what
    gives DieHard its probabilistic safety — and its TLB-pressure
    overhead, the reason STABILIZER moved to cheaper base heaps. *)

(** [create ?source arena] uses [source] (default: a Marsaglia stream,
    as in DieHard itself) for slot probing. *)
val create : ?source:Stz_prng.Source.t -> Arena.t -> Allocator.t
