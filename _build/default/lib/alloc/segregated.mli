(** The power-of-two size-segregated free-list allocator STABILIZER
    uses as its default base heap (§3.2). Requests are rounded up to a
    power of two; each class keeps a LIFO free list, so it reuses
    recently freed memory deterministically — randomness must come from
    the shuffling layer above it. *)

(** [create arena] builds an allocator drawing pages from [arena]. *)
val create : Arena.t -> Allocator.t

(** Size classes run from [min_size] (16 bytes) upward by powers of
    two. Exposed for tests. *)
val min_size : int

(** [class_of_size n] is the index of the class serving an [n]-byte
    request; [size_of_class i] its block size. *)
val class_of_size : int -> int

val size_of_class : int -> int
