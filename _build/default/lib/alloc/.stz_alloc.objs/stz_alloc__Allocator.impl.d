lib/alloc/allocator.ml:
