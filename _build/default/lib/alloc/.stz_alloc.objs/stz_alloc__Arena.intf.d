lib/alloc/arena.mli:
