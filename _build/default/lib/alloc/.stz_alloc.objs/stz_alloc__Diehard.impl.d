lib/alloc/diehard.ml: Allocator Arena Array Bytes Char Hashtbl List Segregated Stdlib Stz_prng
