lib/alloc/segregated.mli: Allocator Arena
