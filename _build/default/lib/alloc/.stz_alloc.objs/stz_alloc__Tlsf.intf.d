lib/alloc/tlsf.mli: Allocator Arena
