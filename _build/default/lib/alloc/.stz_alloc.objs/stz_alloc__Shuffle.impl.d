lib/alloc/shuffle.ml: Allocator Array Printf Segregated Stz_prng
