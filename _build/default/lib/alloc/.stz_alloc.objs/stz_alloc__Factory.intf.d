lib/alloc/factory.mli: Allocator Arena Stz_prng
