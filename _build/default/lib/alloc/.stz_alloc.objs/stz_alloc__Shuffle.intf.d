lib/alloc/shuffle.mli: Allocator Stz_prng
