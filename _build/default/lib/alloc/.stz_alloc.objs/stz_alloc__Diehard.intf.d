lib/alloc/diehard.mli: Allocator Arena Stz_prng
