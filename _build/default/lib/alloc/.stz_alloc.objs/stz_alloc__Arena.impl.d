lib/alloc/arena.ml:
