lib/alloc/tlsf.ml: Allocator Arena Array Hashtbl Stdlib
