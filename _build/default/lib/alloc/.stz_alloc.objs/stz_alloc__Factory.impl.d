lib/alloc/factory.ml: Allocator Diehard Segregated Shuffle Tlsf
