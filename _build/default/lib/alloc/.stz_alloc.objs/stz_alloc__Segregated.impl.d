lib/alloc/segregated.ml: Allocator Arena Array Hashtbl
