lib/alloc/allocator.mli:
