(** A Two-Level Segregated Fits allocator (Masmano et al.), the
    alternative base heap STABILIZER can be configured with (§3.2).
    First level classifies blocks by power-of-two range; a second level
    subdivides each range linearly. Freed blocks coalesce with their
    physical neighbors, so — unlike the power-of-two heap — large
    requests waste no rounding space. *)

(** [create arena] builds a TLSF allocator drawing chunks from [arena]. *)
val create : Arena.t -> Allocator.t

(** Second-level subdivision count (16, the common configuration). *)
val subclasses : int

(** [mapping size] is the (first, second) level indices a free block of
    [size] bytes is filed under. Exposed for tests. *)
val mapping : int -> int * int
