(** A simulated memory arena: a contiguous range of the simulated
    address space handed out bump-style ([sbrk]). All allocators draw
    their backing pages from an arena; the arena's base decides which
    cache sets and TLB pages the heap occupies. *)

type t

(** [create ~base ~size] covers [base, base + size). *)
val create : base:int -> size:int -> t

(** [sbrk t n] reserves [n] bytes (16-byte aligned) and returns their
    start address. Raises [Out_of_memory] when the arena is full. *)
val sbrk : t -> int -> int

val base : t -> int

(** Bytes reserved so far. *)
val used : t -> int

val size : t -> int
