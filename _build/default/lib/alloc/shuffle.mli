(** The shuffling layer of Figure 1: an N-entry array of pointers per
    size class wrapped around any base allocator. At first use each
    class's array is filled from the base heap and Fisher-Yates
    shuffled; every subsequent [malloc]/[free] performs one step of the
    inside-out Fisher-Yates shuffle (draw a random index, swap). This
    turns a deterministic base heap into a fully randomized one — the
    paper shows N = 256 passes the same NIST tests as DieHard. *)

(** Default shuffling parameter from the paper. *)
val default_n : int

(** [create ~source ?n base] wraps [base]. [n] is the per-class array
    size (default 256). *)
val create : source:Stz_prng.Source.t -> ?n:int -> Allocator.t -> Allocator.t
