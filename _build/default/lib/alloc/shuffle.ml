let default_n = 256

type class_array = { entries : int array }

type state = {
  base : Allocator.t;
  source : Stz_prng.Source.t;
  n : int;
  arrays : class_array option array;
  (* The shuffle array holds blocks of the class's rounded size; remember
     the request size we used so stats stay sensible. *)
  mutable extra_live : int;
}

(* Fill a fresh class array with N objects from the base heap and give
   it an initial full Fisher-Yates shuffle, as described in §3.2. *)
let init_class s c =
  let size = Segregated.size_of_class c in
  let entries = Array.init s.n (fun _ -> s.base.Allocator.malloc size) in
  s.extra_live <- s.extra_live + (s.n * size);
  Stz_prng.Source.shuffle_in_place s.source entries;
  let arr = { entries } in
  s.arrays.(c) <- Some arr;
  arr

let class_array s c =
  match s.arrays.(c) with Some a -> a | None -> init_class s c

let create ~source ?(n = default_n) base =
  if n < 1 then invalid_arg "Shuffle.create: n must be >= 1";
  let s =
    { base; source; n; arrays = Array.make 32 None; extra_live = 0 }
  in
  let malloc size =
    let c = Segregated.class_of_size size in
    let arr = class_array s c in
    (* One step of the inside-out shuffle: allocate fresh, swap with a
       random slot, hand out what was in the slot. *)
    let fresh = s.base.Allocator.malloc (Segregated.size_of_class c) in
    let i = Stz_prng.Source.int s.source s.n in
    let out = arr.entries.(i) in
    arr.entries.(i) <- fresh;
    out
  in
  let free addr =
    let size = s.base.Allocator.usable_size addr in
    let c = Segregated.class_of_size size in
    let arr = class_array s c in
    let i = Stz_prng.Source.int s.source s.n in
    let victim = arr.entries.(i) in
    arr.entries.(i) <- addr;
    s.base.Allocator.free victim
  in
  let usable_size addr = s.base.Allocator.usable_size addr in
  let stats () = s.base.Allocator.stats () in
  {
    Allocator.name = Printf.sprintf "shuffle(%s,N=%d)" base.Allocator.name n;
    malloc;
    free;
    usable_size;
    stats;
  }
