type region = {
  base : int;
  slots : int;
  bitmap : Bytes.t;
  mutable used : int;
}

type class_state = { mutable regions : region list }

type state = {
  arena : Arena.t;
  source : Stz_prng.Source.t;
  classes : class_state array;
  owner : (int, int) Hashtbl.t;  (* addr -> class *)
  requested : (int, int) Hashtbl.t;
  mutable live_bytes : int;
  mutable reserved_bytes : int;
  mutable allocations : int;
  mutable frees : int;
}

let initial_slots = 64

let slot_free r i = Char.code (Bytes.get r.bitmap (i lsr 3)) land (1 lsl (i land 7)) = 0

let slot_set r i v =
  let byte = Char.code (Bytes.get r.bitmap (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  Bytes.set r.bitmap (i lsr 3) (Char.chr (if v then byte lor mask else byte land lnot mask))

let new_region s c slots =
  let size = Segregated.size_of_class c in
  let base = Arena.sbrk s.arena (slots * size) in
  s.reserved_bytes <- s.reserved_bytes + (slots * size);
  let r = { base; slots; bitmap = Bytes.make ((slots + 7) / 8) '\000'; used = 0 } in
  s.classes.(c).regions <- r :: s.classes.(c).regions;
  r

(* DieHard invariant: keep every size class at most half full so random
   probing terminates quickly. *)
let pick_region s c =
  let cs = s.classes.(c) in
  let total_slots = List.fold_left (fun a r -> a + r.slots) 0 cs.regions in
  let total_used = List.fold_left (fun a r -> a + r.used) 0 cs.regions in
  if 2 * (total_used + 1) > total_slots then
    new_region s c (Stdlib.max initial_slots total_slots)
  else
    (* Find some region with space; newest first. *)
    List.find (fun r -> r.used < r.slots) cs.regions

let create ?source arena =
  let source =
    match source with
    | Some src -> src
    | None -> Stz_prng.Source.marsaglia ~seed:0x0D1EFA11L
  in
  let s =
    {
      arena;
      source;
      classes = Array.init 32 (fun _ -> { regions = [] });
      owner = Hashtbl.create 1024;
      requested = Hashtbl.create 1024;
      live_bytes = 0;
      reserved_bytes = 0;
      allocations = 0;
      frees = 0;
    }
  in
  let malloc size =
    let c = Segregated.class_of_size size in
    let r = pick_region s c in
    let rec probe () =
      let i = Stz_prng.Source.int s.source r.slots in
      if slot_free r i then i else probe ()
    in
    let i = probe () in
    slot_set r i true;
    r.used <- r.used + 1;
    let addr = r.base + (i * Segregated.size_of_class c) in
    Hashtbl.replace s.owner addr c;
    Hashtbl.replace s.requested addr size;
    s.live_bytes <- s.live_bytes + size;
    s.allocations <- s.allocations + 1;
    addr
  in
  let free addr =
    match Hashtbl.find_opt s.owner addr with
    | None -> invalid_arg "Diehard.free: unknown address"
    | Some c ->
        let size = Segregated.size_of_class c in
        let r =
          List.find
            (fun r -> addr >= r.base && addr < r.base + (r.slots * size))
            s.classes.(c).regions
        in
        let i = (addr - r.base) / size in
        if slot_free r i then invalid_arg "Diehard.free: double free";
        slot_set r i false;
        r.used <- r.used - 1;
        Hashtbl.remove s.owner addr;
        let req = try Hashtbl.find s.requested addr with Not_found -> 0 in
        Hashtbl.remove s.requested addr;
        s.live_bytes <- s.live_bytes - req;
        s.frees <- s.frees + 1
  in
  let usable_size addr =
    match Hashtbl.find_opt s.owner addr with
    | Some c -> Segregated.size_of_class c
    | None -> invalid_arg "Diehard.usable_size: unknown address"
  in
  let stats () =
    {
      Allocator.live_bytes = s.live_bytes;
      reserved_bytes = s.reserved_bytes;
      allocations = s.allocations;
      frees = s.frees;
    }
  in
  { Allocator.name = "diehard"; malloc; free; usable_size; stats }
