let min_size = 16
let num_classes = 32

let class_of_size n =
  if n <= 0 then invalid_arg "Segregated.class_of_size: non-positive size";
  let c = ref 0 in
  let size = ref min_size in
  while !size < n do
    incr c;
    size := !size lsl 1
  done;
  !c

let size_of_class c = min_size lsl c

type state = {
  arena : Arena.t;
  free_lists : int list array;  (* per class, LIFO *)
  block_class : (int, int) Hashtbl.t;  (* addr -> class *)
  requested : (int, int) Hashtbl.t;  (* addr -> requested bytes *)
  mutable live_bytes : int;
  mutable reserved_bytes : int;
  mutable allocations : int;
  mutable frees : int;
}

let create arena =
  let s =
    {
      arena;
      free_lists = Array.make num_classes [];
      block_class = Hashtbl.create 1024;
      requested = Hashtbl.create 1024;
      live_bytes = 0;
      reserved_bytes = 0;
      allocations = 0;
      frees = 0;
    }
  in
  let malloc size =
    let c = class_of_size size in
    let addr =
      match s.free_lists.(c) with
      | addr :: rest ->
          s.free_lists.(c) <- rest;
          addr
      | [] ->
          let block = size_of_class c in
          s.reserved_bytes <- s.reserved_bytes + block;
          Arena.sbrk s.arena block
    in
    Hashtbl.replace s.block_class addr c;
    Hashtbl.replace s.requested addr size;
    s.live_bytes <- s.live_bytes + size;
    s.allocations <- s.allocations + 1;
    addr
  in
  let free addr =
    match Hashtbl.find_opt s.block_class addr with
    | None -> invalid_arg "Segregated.free: unknown or double-freed address"
    | Some c ->
        Hashtbl.remove s.block_class addr;
        let req = try Hashtbl.find s.requested addr with Not_found -> 0 in
        Hashtbl.remove s.requested addr;
        s.live_bytes <- s.live_bytes - req;
        s.frees <- s.frees + 1;
        s.free_lists.(c) <- addr :: s.free_lists.(c)
  in
  let usable_size addr =
    match Hashtbl.find_opt s.block_class addr with
    | Some c -> size_of_class c
    | None -> invalid_arg "Segregated.usable_size: unknown address"
  in
  let stats () =
    {
      Allocator.live_bytes = s.live_bytes;
      reserved_bytes = s.reserved_bytes;
      allocations = s.allocations;
      frees = s.frees;
    }
  in
  { Allocator.name = "segregated"; malloc; free; usable_size; stats }
