(** In-place radix-2 complex FFT, sufficient for the NIST spectral
    (DFT) test. *)

(** [transform re im] computes the forward DFT in place. The arrays must
    have equal power-of-two length. *)
val transform : float array -> float array -> unit

(** Modulus of the first n/2 DFT coefficients of a real signal. The
    input length is padded internally with zeros to... no — it must be a
    power of two; raises [Invalid_argument] otherwise. *)
val half_spectrum : float array -> float array
