type t = { bits : Bytes.t; length : int }

let length t = t.length

let create n = { bits = Bytes.make ((n + 7) / 8) '\000'; length = n }

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Bitseq.get: out of bounds";
  (Char.code (Bytes.get t.bits (i lsr 3)) lsr (i land 7)) land 1

let set t i v =
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v = 0 then byte land lnot mask else byte lor mask in
  Bytes.set t.bits (i lsr 3) (Char.chr byte)

let of_int_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> set t i (v land 1)) a;
  t

let of_bool_list l =
  let t = create (List.length l) in
  List.iteri (fun i b -> set t i (if b then 1 else 0)) l;
  t

let of_words ~bits_per_word words =
  if bits_per_word < 1 || bits_per_word > 62 then
    invalid_arg "Bitseq.of_words: bits_per_word must be in [1,62]";
  let t = create (Array.length words * bits_per_word) in
  Array.iteri
    (fun wi w ->
      for b = 0 to bits_per_word - 1 do
        let bit = (w lsr (bits_per_word - 1 - b)) land 1 in
        set t ((wi * bits_per_word) + b) bit
      done)
    words;
  t

let of_addresses ~lo ~hi addrs =
  if lo < 0 || hi < lo then invalid_arg "Bitseq.of_addresses: bad bit range";
  let width = hi - lo + 1 in
  of_words ~bits_per_word:width (Array.map (fun a -> a lsr lo) addrs)

let of_source src n =
  let words = (n + 31) / 32 in
  let t = create n in
  let pos = ref 0 in
  for _ = 1 to words do
    let w = src.Stz_prng.Source.next_u32 () in
    let b = ref 31 in
    while !pos < n && !b >= 0 do
      set t !pos ((w lsr !b) land 1);
      incr pos;
      decr b
    done
  done;
  t

let ones t =
  let acc = ref 0 in
  for i = 0 to t.length - 1 do
    acc := !acc + get t i
  done;
  !acc

let slice t pos len =
  if pos < 0 || len < 0 || pos + len > t.length then
    invalid_arg "Bitseq.slice: out of bounds";
  let out = create len in
  for i = 0 to len - 1 do
    set out i (get t (pos + i))
  done;
  out
