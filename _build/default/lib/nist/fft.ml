let is_power_of_two n = n > 0 && n land (n - 1) = 0

let transform re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.transform: length mismatch";
  if not (is_power_of_two n) then
    invalid_arg "Fft.transform: length must be a power of two";
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j); im.(i) <- im.(!j);
      re.(!j) <- tr; im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Danielson-Lanczos butterflies. *)
  let len = ref 2 in
  while !len <= n do
    let half = !len lsr 1 in
    let theta = -2.0 *. Float.pi /. float_of_int !len in
    let wr_step = cos theta and wi_step = sin theta in
    let i = ref 0 in
    while !i < n do
      let wr = ref 1.0 and wi = ref 0.0 in
      for k = 0 to half - 1 do
        let a = !i + k and b = !i + k + half in
        let tr = (!wr *. re.(b)) -. (!wi *. im.(b)) in
        let ti = (!wr *. im.(b)) +. (!wi *. re.(b)) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti;
        let nwr = (!wr *. wr_step) -. (!wi *. wi_step) in
        wi := (!wr *. wi_step) +. (!wi *. wr_step);
        wr := nwr
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done

let half_spectrum signal =
  let n = Array.length signal in
  if not (is_power_of_two n) then
    invalid_arg "Fft.half_spectrum: length must be a power of two";
  let re = Array.copy signal in
  let im = Array.make n 0.0 in
  transform re im;
  Array.init (n / 2) (fun i -> sqrt ((re.(i) *. re.(i)) +. (im.(i) *. im.(i))))
