type t = { rows : int array; cols : int }

let of_bits seq pos ~rows ~cols =
  if cols > 62 then invalid_arg "Gf2.of_bits: cols > 62";
  let data =
    Array.init rows (fun r ->
        let row = ref 0 in
        for c = 0 to cols - 1 do
          row := (!row lsl 1) lor Bitseq.get seq (pos + (r * cols) + c)
        done;
        !row)
  in
  { rows = data; cols }

let rank t =
  let rows = Array.copy t.rows in
  let n = Array.length rows in
  let rank = ref 0 in
  (* Eliminate column by column, from the most significant bit. *)
  for col = t.cols - 1 downto 0 do
    let mask = 1 lsl col in
    (* Find a pivot row at or below !rank with this bit set. *)
    let pivot = ref (-1) in
    (try
       for r = !rank to n - 1 do
         if rows.(r) land mask <> 0 then begin
           pivot := r;
           raise Exit
         end
       done
     with Exit -> ());
    if !pivot >= 0 then begin
      let tmp = rows.(!rank) in
      rows.(!rank) <- rows.(!pivot);
      rows.(!pivot) <- tmp;
      for r = 0 to n - 1 do
        if r <> !rank && rows.(r) land mask <> 0 then
          rows.(r) <- rows.(r) lxor rows.(!rank)
      done;
      incr rank
    end
  done;
  !rank

let probability_rank ~n r =
  if r < 0 || r > n then 0.0
  else begin
    (* P(rank = r) = 2^(r(2n - r) - n^2) * prod_{i=0}^{r-1}
       (1 - 2^(i-n))^2 / (1 - 2^(i-r)). *)
    let exponent = float_of_int ((r * ((2 * n) - r)) - (n * n)) in
    let prod = ref 1.0 in
    for i = 0 to r - 1 do
      let num = 1.0 -. (2.0 ** float_of_int (i - n)) in
      let den = 1.0 -. (2.0 ** float_of_int (i - r)) in
      prod := !prod *. (num *. num /. den)
    done;
    (2.0 ** exponent) *. !prod
  end
