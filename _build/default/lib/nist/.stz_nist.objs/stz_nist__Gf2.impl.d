lib/nist/gf2.ml: Array Bitseq
