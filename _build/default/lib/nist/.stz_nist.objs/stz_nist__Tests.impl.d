lib/nist/tests.ml: Array Bitseq Fft Gf2 List Stdlib Stz_stats
