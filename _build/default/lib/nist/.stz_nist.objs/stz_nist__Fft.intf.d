lib/nist/fft.mli:
