lib/nist/gf2.mli: Bitseq
