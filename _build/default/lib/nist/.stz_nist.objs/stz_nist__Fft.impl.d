lib/nist/fft.ml: Array Float
