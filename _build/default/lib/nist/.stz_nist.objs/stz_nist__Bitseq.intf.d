lib/nist/bitseq.mli: Stz_prng
