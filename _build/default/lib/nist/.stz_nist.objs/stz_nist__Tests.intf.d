lib/nist/tests.mli: Bitseq
