lib/nist/bitseq.ml: Array Bytes Char List Stz_prng
