(** Binary (GF(2)) matrices for the NIST Rank test. A matrix is stored
    as an array of rows, each row an int bitmask of its columns. *)

type t = { rows : int array; cols : int }

(** [of_bits seq pos ~rows ~cols] reads rows*cols bits starting at
    [pos], row-major. *)
val of_bits : Bitseq.t -> int -> rows:int -> cols:int -> t

(** Rank by Gaussian elimination over GF(2). *)
val rank : t -> int

(** [probability_rank ~n r] is the exact probability that a uniformly
    random n x n binary matrix has rank [r]. *)
val probability_rank : n:int -> int -> float
