type outcome = { name : string; p_value : float; pass : bool }

let default_alpha = 0.01

let make ~alpha name p =
  let p = Stdlib.max 0.0 (Stdlib.min 1.0 p) in
  { name; p_value = p; pass = p >= alpha }

let frequency ?(alpha = default_alpha) seq =
  let n = Bitseq.length seq in
  if n < 100 then invalid_arg "Nist.frequency: needs >= 100 bits";
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + ((2 * Bitseq.get seq i) - 1)
  done;
  let s_obs = abs_float (float_of_int !s) /. sqrt (float_of_int n) in
  make ~alpha "Frequency" (Stz_stats.Special.erfc (s_obs /. sqrt 2.0))

let block_frequency ?(alpha = default_alpha) ?(m = 128) seq =
  let n = Bitseq.length seq in
  let blocks = n / m in
  if blocks < 1 then invalid_arg "Nist.block_frequency: sequence too short";
  let chi2 = ref 0.0 in
  for b = 0 to blocks - 1 do
    let ones = ref 0 in
    for i = b * m to ((b + 1) * m) - 1 do
      ones := !ones + Bitseq.get seq i
    done;
    let pi = float_of_int !ones /. float_of_int m in
    chi2 := !chi2 +. ((pi -. 0.5) *. (pi -. 0.5))
  done;
  let chi2 = 4.0 *. float_of_int m *. !chi2 in
  make ~alpha "BlockFrequency"
    (Stz_stats.Special.gamma_q (float_of_int blocks /. 2.0) (chi2 /. 2.0))

let cumulative_sums ?(alpha = default_alpha) ?(forward = true) seq =
  let n = Bitseq.length seq in
  if n < 100 then invalid_arg "Nist.cumulative_sums: needs >= 100 bits";
  let z = ref 0 and s = ref 0 in
  let bit i = if forward then Bitseq.get seq i else Bitseq.get seq (n - 1 - i) in
  for i = 0 to n - 1 do
    s := !s + ((2 * bit i) - 1);
    if abs !s > !z then z := abs !s
  done;
  let z = float_of_int !z in
  let fn = float_of_int n in
  let phi x = Stz_stats.Dist.Normal.cdf x in
  let sum1 = ref 0.0 in
  let k_lo = int_of_float (ceil ((-.fn /. z) +. 1.0) /. 4.0) in
  let k_hi = int_of_float (floor ((fn /. z) -. 1.0) /. 4.0) in
  for k = k_lo to k_hi do
    let fk = float_of_int k in
    sum1 :=
      !sum1
      +. phi (((4.0 *. fk) +. 1.0) *. z /. sqrt fn)
      -. phi (((4.0 *. fk) -. 1.0) *. z /. sqrt fn)
  done;
  let sum2 = ref 0.0 in
  let k_lo = int_of_float (ceil ((-.fn /. z) -. 3.0) /. 4.0) in
  for k = k_lo to k_hi do
    let fk = float_of_int k in
    sum2 :=
      !sum2
      +. phi (((4.0 *. fk) +. 3.0) *. z /. sqrt fn)
      -. phi (((4.0 *. fk) +. 1.0) *. z /. sqrt fn)
  done;
  make ~alpha "CumulativeSums" (1.0 -. !sum1 +. !sum2)

let runs ?(alpha = default_alpha) seq =
  let n = Bitseq.length seq in
  if n < 100 then invalid_arg "Nist.runs: needs >= 100 bits";
  let fn = float_of_int n in
  let pi = float_of_int (Bitseq.ones seq) /. fn in
  (* NIST pre-test: the frequency test must be passable. *)
  if abs_float (pi -. 0.5) >= 2.0 /. sqrt fn then
    make ~alpha "Runs" 0.0
  else begin
    let v = ref 1 in
    for i = 1 to n - 1 do
      if Bitseq.get seq i <> Bitseq.get seq (i - 1) then incr v
    done;
    let v = float_of_int !v in
    let num = abs_float (v -. (2.0 *. fn *. pi *. (1.0 -. pi))) in
    let den = 2.0 *. sqrt (2.0 *. fn) *. pi *. (1.0 -. pi) in
    make ~alpha "Runs" (Stz_stats.Special.erfc (num /. den))
  end

(* NIST parameter table: block size, category boundaries and expected
   category probabilities for the longest-run test. *)
let longest_run_params n =
  if n >= 750000 then
    (10000, 10, 16,
     [| 0.0882; 0.2092; 0.2483; 0.1933; 0.1208; 0.0675; 0.0727 |])
  else if n >= 6272 then
    (128, 4, 9, [| 0.1174; 0.2430; 0.2493; 0.1752; 0.1027; 0.1124 |])
  else if n >= 128 then
    (8, 1, 4, [| 0.2148; 0.3672; 0.2305; 0.1875 |])
  else invalid_arg "Nist.longest_run: needs >= 128 bits"

let longest_run ?(alpha = default_alpha) seq =
  let n = Bitseq.length seq in
  let m, lo, hi, pi = longest_run_params n in
  let k = Array.length pi - 1 in
  let blocks = n / m in
  let v = Array.make (k + 1) 0 in
  for b = 0 to blocks - 1 do
    let longest = ref 0 and current = ref 0 in
    for i = b * m to ((b + 1) * m) - 1 do
      if Bitseq.get seq i = 1 then begin
        incr current;
        if !current > !longest then longest := !current
      end
      else current := 0
    done;
    let category =
      if !longest <= lo then 0
      else if !longest >= hi then k
      else !longest - lo
    in
    v.(category) <- v.(category) + 1
  done;
  let fblocks = float_of_int blocks in
  let chi2 = ref 0.0 in
  for i = 0 to k do
    let expected = fblocks *. pi.(i) in
    let d = float_of_int v.(i) -. expected in
    chi2 := !chi2 +. (d *. d /. expected)
  done;
  make ~alpha "LongestRun"
    (Stz_stats.Special.gamma_q (float_of_int k /. 2.0) (!chi2 /. 2.0))

let rank ?(alpha = default_alpha) seq =
  let n = Bitseq.length seq in
  let m = 32 in
  let matrices = n / (m * m) in
  if matrices < 38 then invalid_arg "Nist.rank: needs >= 38912 bits";
  let full = ref 0 and minus1 = ref 0 and rest = ref 0 in
  for i = 0 to matrices - 1 do
    let r = Gf2.rank (Gf2.of_bits seq (i * m * m) ~rows:m ~cols:m) in
    if r = m then incr full
    else if r = m - 1 then incr minus1
    else incr rest
  done;
  let p_full = Gf2.probability_rank ~n:m m in
  let p_minus1 = Gf2.probability_rank ~n:m (m - 1) in
  let p_rest = 1.0 -. p_full -. p_minus1 in
  let fm = float_of_int matrices in
  let term observed p =
    let d = float_of_int observed -. (fm *. p) in
    d *. d /. (fm *. p)
  in
  let chi2 = term !full p_full +. term !minus1 p_minus1 +. term !rest p_rest in
  make ~alpha "Rank" (exp (-.chi2 /. 2.0))

let fft ?(alpha = default_alpha) seq =
  let n0 = Bitseq.length seq in
  if n0 < 1000 then invalid_arg "Nist.fft: needs >= 1000 bits";
  (* Truncate to the largest power-of-two prefix for the radix-2 FFT. *)
  let n = ref 1 in
  while !n * 2 <= n0 do n := !n * 2 done;
  let n = !n in
  let signal =
    Array.init n (fun i -> float_of_int ((2 * Bitseq.get seq i) - 1))
  in
  let magnitudes = Fft.half_spectrum signal in
  let fn = float_of_int n in
  let threshold = sqrt (log (1.0 /. 0.05) *. fn) in
  let below = Array.fold_left (fun acc m -> if m < threshold then acc + 1 else acc) 0 magnitudes in
  let expected = 0.95 *. fn /. 2.0 in
  let d =
    (float_of_int below -. expected) /. sqrt (fn *. 0.95 *. 0.05 /. 4.0)
  in
  make ~alpha "FFT" (Stz_stats.Special.erfc (abs_float d /. sqrt 2.0))

(* Counts of all overlapping m-bit patterns, with wraparound (the
   sequence is conceptually extended by its first m-1 bits), as both the
   serial and approximate-entropy tests require. *)
let pattern_counts seq m =
  let n = Bitseq.length seq in
  let counts = Array.make (1 lsl m) 0 in
  let mask = (1 lsl m) - 1 in
  (* Prime the window with the first m-1 bits. *)
  let window = ref 0 in
  for i = 0 to m - 2 do
    window := ((!window lsl 1) lor Bitseq.get seq i) land mask
  done;
  for i = m - 1 to n + m - 2 do
    window := ((!window lsl 1) lor Bitseq.get seq (i mod n)) land mask;
    counts.(!window) <- counts.(!window) + 1
  done;
  counts

(* psi-squared statistic for block size m (0 bits -> 0 by convention). *)
let psi2 seq m =
  if m <= 0 then 0.0
  else begin
    let n = float_of_int (Bitseq.length seq) in
    let counts = pattern_counts seq m in
    let sum =
      Array.fold_left (fun acc c -> acc +. (float_of_int c *. float_of_int c)) 0.0 counts
    in
    (float_of_int (1 lsl m) /. n *. sum) -. n
  end

let serial ?(alpha = default_alpha) ?(m = 8) seq =
  let n = Bitseq.length seq in
  if n < 1 lsl (m + 2) then invalid_arg "Nist.serial: sequence too short for m";
  let d_psi = psi2 seq m -. psi2 seq (m - 1) in
  make ~alpha "Serial"
    (Stz_stats.Special.gamma_q (float_of_int (1 lsl (m - 2))) (d_psi /. 2.0))

let approximate_entropy ?(alpha = default_alpha) ?(m = 6) seq =
  let n = Bitseq.length seq in
  if n < 1 lsl (m + 3) then
    invalid_arg "Nist.approximate_entropy: sequence too short for m";
  let fn = float_of_int n in
  let phi mm =
    let counts = pattern_counts seq mm in
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else begin
          let p = float_of_int c /. fn in
          acc +. (p *. log p)
        end)
      0.0 counts
  in
  let apen = phi m -. phi (m + 1) in
  let chi2 = 2.0 *. fn *. (log 2.0 -. apen) in
  make ~alpha "ApproximateEntropy"
    (Stz_stats.Special.gamma_q (float_of_int (1 lsl (m - 1))) (chi2 /. 2.0))

let all ?(alpha = default_alpha) seq =
  let n = Bitseq.length seq in
  let maybe cond test = if cond then [ test () ] else [] in
  List.concat
    [
      maybe (n >= 100) (fun () -> frequency ~alpha seq);
      maybe (n >= 128) (fun () -> block_frequency ~alpha seq);
      maybe (n >= 100) (fun () -> cumulative_sums ~alpha seq);
      maybe (n >= 100) (fun () -> runs ~alpha seq);
      maybe (n >= 128) (fun () -> longest_run ~alpha seq);
      maybe (n >= 38912) (fun () -> rank ~alpha seq);
      maybe (n >= 1000) (fun () -> fft ~alpha seq);
    ]

let summary outcomes =
  let passed = List.length (List.filter (fun o -> o.pass) outcomes) in
  (passed, List.length outcomes)
