(** The seven NIST SP 800-22 tests the paper applies to allocator
    address streams (§3.2): Frequency, BlockFrequency, CumulativeSums,
    Runs, LongestRun, Rank and FFT. Each test returns a p-value; the
    sequence passes at confidence 1-alpha when p >= alpha. *)

type outcome = {
  name : string;
  p_value : float;
  pass : bool;  (** p_value >= alpha *)
}

(** NIST's conventional significance level. *)
val default_alpha : float

val frequency : ?alpha:float -> Bitseq.t -> outcome

(** [block_frequency ?m] with block size [m] (default 128). *)
val block_frequency : ?alpha:float -> ?m:int -> Bitseq.t -> outcome

(** Forward cumulative sums; the backward variant is symmetric. *)
val cumulative_sums : ?alpha:float -> ?forward:bool -> Bitseq.t -> outcome

val runs : ?alpha:float -> Bitseq.t -> outcome

(** Longest run of ones in 8-bit blocks (requires n >= 128), or 128-bit
    blocks for n >= 6272, per the NIST parameter table. *)
val longest_run : ?alpha:float -> Bitseq.t -> outcome

(** Binary matrix rank over 32x32 matrices (requires n >= 38912). *)
val rank : ?alpha:float -> Bitseq.t -> outcome

(** Discrete Fourier transform (spectral) test. The sequence is
    truncated to the largest power-of-two prefix. *)
val fft : ?alpha:float -> Bitseq.t -> outcome

(** Serial test over overlapping [m]-bit patterns (default m = 8): the
    first of NIST's two serial p-values, based on the generalized
    serial statistic nabla-psi^2. Beyond the paper's seven tests, for
    completeness. *)
val serial : ?alpha:float -> ?m:int -> Bitseq.t -> outcome

(** Approximate entropy test with block length [m] (default 6). Beyond
    the paper's seven tests, for completeness. *)
val approximate_entropy : ?alpha:float -> ?m:int -> Bitseq.t -> outcome

(** All seven tests in the paper's order. Tests whose length
    requirements are not met are skipped. *)
val all : ?alpha:float -> Bitseq.t -> outcome list

(** Number of tests passed out of those run. *)
val summary : outcome list -> int * int
