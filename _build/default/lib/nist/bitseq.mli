(** Packed bit sequences: the input format of the NIST SP 800-22 tests.
    The paper (§3.2) feeds these tests with the *index bits* (bits 6-17
    on the Core2) of addresses produced by each allocator, so this
    module also provides that extraction. *)

type t

val length : t -> int

(** [get t i] is bit [i] as 0 or 1. *)
val get : t -> int -> int

val of_int_array : int array -> t

(** [of_bool_list] builds from a list of bits. *)
val of_bool_list : bool list -> t

(** [of_words ~bits_per_word words] takes the low [bits_per_word] bits
    of each word, most significant first. *)
val of_words : bits_per_word:int -> int array -> t

(** [of_addresses ~lo ~hi addrs] extracts bits [lo..hi] (inclusive) of
    each address — e.g. [~lo:6 ~hi:17] for the paper's cache index
    bits — most significant first. *)
val of_addresses : lo:int -> hi:int -> int array -> t

(** [of_source src n] draws [n] bits from a PRNG source (32 per draw). *)
val of_source : Stz_prng.Source.t -> int -> t

(** Count of one bits. *)
val ones : t -> int

(** [slice t pos len] is a fresh sequence of [len] bits from [pos]. *)
val slice : t -> int -> int -> t
