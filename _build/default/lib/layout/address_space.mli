(** The simulated process address space. Segment bases follow the usual
    x86-64 Linux shape: code low, globals above it, a large heap
    segment, a separate executable "code heap" segment used by the
    runtime code randomizer, and a stack near the top growing down.

    [env_bytes] models the size of the environment block above the
    stack: as Mytkowicz et al. observed (and the paper reiterates),
    changing the size of the environment shifts the stack base and with
    it every stack address in the program. *)

type t = {
  code_base : int;
  globals_base : int;
  heap_base : int;
  heap_size : int;
  code_heap_base : int;
  code_heap_size : int;
  stack_top : int;
  env_bytes : int;
}

(** Defaults with an empty environment block. *)
val default : t

(** [with_env_bytes t n] shifts the stack base down by [n] bytes
    (aligned to 16), leaving everything else unchanged. *)
val with_env_bytes : t -> int -> t

(** Stack base = top - env block, 16-byte aligned. *)
val stack_base : t -> int

(** Arena covering the data heap segment. *)
val heap_arena : t -> Stz_alloc.Arena.t

(** Arena covering the executable code-heap segment. *)
val code_heap_arena : t -> Stz_alloc.Arena.t
