module Hierarchy = Stz_machine.Hierarchy

(* One pad table per function: 256 one-byte entries plus the index
   byte, padded to 260 bytes so tables of adjacent functions do not
   share alignment. *)
let table_stride = 260
let table_entries = 256

type random_state = {
  source : Stz_prng.Source.t;
  table_base : int;
  tables : int array array;  (* per fid: 256 pad bytes *)
  indices : int array;  (* per fid: one-byte wrapping index *)
}

type mode = Plain | Randomized of random_state

type t = {
  machine : Hierarchy.t;
  base : int;
  frame_sizes : int array;
  mutable sp : int;
  mutable pads : (int * int) list;  (* (fid, pad) at each live push, LIFO *)
  mode : mode;
}

let plain ~machine ~base ~frame_sizes =
  { machine; base; frame_sizes; sp = base; pads = []; mode = Plain }

let fill_table source table =
  for i = 0 to table_entries - 1 do
    table.(i) <- Stz_prng.Source.int source 256
  done

let randomized ~machine ~source ~base ~table_base ~frame_sizes =
  let n = Array.length frame_sizes in
  let tables = Array.init n (fun _ -> Array.make table_entries 0) in
  Array.iter (fill_table source) tables;
  {
    machine;
    base;
    frame_sizes;
    sp = base;
    pads = [];
    mode = Randomized { source; table_base; tables; indices = Array.make n 0 };
  }

let push t ~fid =
  let pad =
    match t.mode with
    | Plain -> 0
    | Randomized r ->
        let idx = r.indices.(fid) in
        r.indices.(fid) <- (idx + 1) land (table_entries - 1);
        (* The instrumented prologue loads table[idx]: one data access
           plus a few cycles of index arithmetic. *)
        ignore (Hierarchy.data t.machine (r.table_base + (fid * table_stride) + idx));
        Hierarchy.charge t.machine 2;
        r.tables.(fid).(idx) * 16
  in
  t.sp <- t.sp - t.frame_sizes.(fid) - pad;
  t.pads <- (fid, pad) :: t.pads;
  ignore (Hierarchy.data t.machine t.sp);
  t.sp

let pop t ~fid =
  match t.pads with
  | (pushed_fid, pad) :: rest ->
      if pushed_fid <> fid then
        invalid_arg
          (Printf.sprintf "Stack.pop: exiting f%d but f%d is on top" fid pushed_fid);
      t.pads <- rest;
      t.sp <- t.sp + t.frame_sizes.(fid) + pad
  | [] -> invalid_arg "Stack.pop: pop without matching push"

let rerandomize t =
  match t.mode with
  | Plain -> 0
  | Randomized r ->
      Array.iter (fill_table r.source) r.tables;
      Array.length r.tables * table_entries

let depth_bytes t = t.base - t.sp

let table_bytes ~frame_sizes = Array.length frame_sizes * table_stride
