(** Runtime code randomization, the heart of STABILIZER's §3.3 and
    Figure 3:

    - every function starts *trapped* (the int3 breakpoint of Fig 3a);
    - the first call to a trapped function relocates it on demand to a
      random address drawn from the shuffled code heap, and builds its
      relocation table immediately after the code (Fig 3b);
    - [rerandomize] re-arms the trap on every function (Fig 3c), so
      each is moved to a fresh location at its next call;
    - superseded copies join the *pile* and are freed back to the code
      heap only once no activation is still running in them (Fig 3d) —
      modeled here by per-copy reference counts that the interpreter's
      entry/exit hooks maintain.

    Block granularity implements the paper's §8 future work: each basic
    block is placed independently and its branch sense (fall-through vs
    target) may be randomly swapped, which the branch predictor
    observes. *)

type granularity = Function_grain | Block_grain

(** §3.5 architecture-specific variants: on x86-64 each copy's
    relocation table sits immediately after its code (PC-relative
    addressing); on PowerPC and 32-bit x86 data is accessed with
    absolute addresses, so the table lives at a *fixed* absolute
    address, is shared by all copies of the function, and is only used
    for calls — global data is reached directly. *)
type reloc_style = Adjacent_table | Fixed_table

type t

(** [create ~machine ~code_heap ~source ~granularity p]. [code_heap]
    should be a shuffled allocator over the code-heap arena so that
    placements are actually random. *)
val create :
  machine:Stz_machine.Hierarchy.t ->
  code_heap:Stz_alloc.Allocator.t ->
  source:Stz_prng.Source.t ->
  granularity:granularity ->
  ?reloc_style:reloc_style ->
  Stz_vm.Ir.program ->
  t

(** Function-entry hook: relocates if trapped (charging trap + copy
    costs to the machine), bumps the copy's refcount, and returns the
    code view this invocation must execute at. *)
val enter : t -> fid:int -> Stz_vm.Interp.code_view

(** Function-exit hook: drops the refcount; frees the copy if it is
    stale (superseded by a re-randomization) and no longer referenced. *)
val leave : t -> fid:int -> unit

(** The re-randomization timer handler: arm the trap on every function.
    Charges the machine for the handler's work. *)
val rerandomize : t -> unit

(** Relocation-table entry address for a global reference made by the
    *currently executing* invocation of [caller] (the table adjacent to
    that invocation's copy). [None] under [Fixed_table]: those
    architectures reach globals directly with absolute addresses. *)
val global_entry_addr : t -> caller:int -> gid:int -> int option

(** Relocation-table entry address for a call from [caller] to
    [callee]. *)
val call_entry_addr : t -> caller:int -> callee:int -> int

(** Total relocations performed so far. *)
val relocations : t -> int

(** Copies currently occupying code-heap memory (live + pile). *)
val live_copies : t -> int

(** Current base address of a function's newest copy, if it has ever
    been relocated. *)
val current_base : t -> fid:int -> int option
