(** Stack frame placement. In plain mode frames are contiguous, exactly
    as a normal calling convention lays them. In randomized mode the
    runtime inserts up to a page of padding before each frame, driven by
    per-function 256-entry pad tables (one random byte each, multiplied
    by 16 for alignment) and a one-byte wrapping index — the mechanism
    of the paper's §3.4, including the table reuse between
    re-randomizations that wrap-around causes.

    The pad-table load each call performs is charged as a real data
    access to the table's address, so programs with many functions pay
    the cache pressure the paper reports for gobmk/gcc/perlbench. *)

type t

(** [plain ~machine ~base ~frame_sizes] (frame sizes by fid). *)
val plain :
  machine:Stz_machine.Hierarchy.t -> base:int -> frame_sizes:int array -> t

(** [randomized ~machine ~source ~base ~table_base ~frame_sizes] places
    one pad table per function starting at [table_base] and fills them
    from [source]. *)
val randomized :
  machine:Stz_machine.Hierarchy.t ->
  source:Stz_prng.Source.t ->
  base:int ->
  table_base:int ->
  frame_sizes:int array ->
  t

(** [push t ~fid] returns the new frame's base address, charging the
    machine for the frame touch (and pad-table load in randomized
    mode). *)
val push : t -> fid:int -> int

val pop : t -> fid:int -> unit

(** Refill every pad table with fresh random bytes (no-op in plain
    mode). Returns the number of table bytes rewritten, for cost
    accounting by the caller. *)
val rerandomize : t -> int

(** Current stack depth in bytes (distance from base). *)
val depth_bytes : t -> int

(** Bytes occupied by pad tables (0 in plain mode); the tables reside
    at [table_base .. table_base + bytes). *)
val table_bytes : frame_sizes:int array -> int
