(** Link-time layout: the deterministic placement an ordinary build
    produces. Functions are placed back to back in *link order*;
    permuting that order is exactly the "changing the link order of
    object files" experiment from the paper's introduction (up to 57 %
    performance swing, all from layout). Globals are placed
    sequentially in the data segment. *)

type t = {
  code_addrs : int array;  (** function base addresses, by fid *)
  global_addrs : int array;  (** by gid *)
}

(** [place ?order space p] lays out [p]. [order] is a permutation of
    fids (default: identity — declaration order). Functions are aligned
    to 16 bytes, globals to their natural alignment (16). *)
val place : ?order:int array -> Address_space.t -> Stz_vm.Ir.program -> t

(** A uniformly random link order drawn from [source]. *)
val random_order : source:Stz_prng.Source.t -> Stz_vm.Ir.program -> int array

val identity_order : Stz_vm.Ir.program -> int array
