module Ir = Stz_vm.Ir

type t = { code_addrs : int array; global_addrs : int array }

let align16 n = (n + 15) land lnot 15

let identity_order p = Array.init (Array.length p.Ir.funcs) (fun i -> i)

let random_order ~source p =
  let order = identity_order p in
  Stz_prng.Source.shuffle_in_place source order;
  order

let place ?order space p =
  let n = Array.length p.Ir.funcs in
  let order = match order with Some o -> o | None -> identity_order p in
  if Array.length order <> n then
    invalid_arg "Static_layout.place: order length mismatch";
  let code_addrs = Array.make n 0 in
  let pos = ref space.Address_space.code_base in
  Array.iter
    (fun fid ->
      code_addrs.(fid) <- !pos;
      pos := align16 (!pos + Ir.func_size_bytes p.Ir.funcs.(fid)))
    order;
  let global_addrs = Array.make (Array.length p.Ir.globals) 0 in
  let gpos = ref space.Address_space.globals_base in
  Array.iteri
    (fun gid g ->
      global_addrs.(gid) <- !gpos;
      gpos := align16 (!gpos + g.Ir.gsize))
    p.Ir.globals;
  { code_addrs; global_addrs }
