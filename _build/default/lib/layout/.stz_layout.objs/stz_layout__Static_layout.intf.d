lib/layout/static_layout.mli: Address_space Stz_prng Stz_vm
