lib/layout/stack.ml: Array Printf Stz_machine Stz_prng
