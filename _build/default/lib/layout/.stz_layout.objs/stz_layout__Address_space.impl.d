lib/layout/address_space.ml: Stz_alloc
