lib/layout/stack.mli: Stz_machine Stz_prng
