lib/layout/address_space.mli: Stz_alloc
