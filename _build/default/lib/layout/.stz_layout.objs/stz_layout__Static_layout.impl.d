lib/layout/static_layout.ml: Address_space Array Stz_prng Stz_vm
