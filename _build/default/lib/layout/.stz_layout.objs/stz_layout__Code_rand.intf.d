lib/layout/code_rand.mli: Stz_alloc Stz_machine Stz_prng Stz_vm
