lib/layout/code_rand.ml: Array Hashtbl List Stdlib Stz_alloc Stz_machine Stz_prng Stz_vm
