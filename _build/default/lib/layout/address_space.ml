type t = {
  code_base : int;
  globals_base : int;
  heap_base : int;
  heap_size : int;
  code_heap_base : int;
  code_heap_size : int;
  stack_top : int;
  env_bytes : int;
}

let default =
  {
    code_base = 0x0040_0000;
    globals_base = 0x0060_0000;
    heap_base = 0x1000_0000;
    heap_size = 0x4000_0000;
    code_heap_base = 0x6000_0000;
    code_heap_size = 0x1000_0000;
    stack_top = 0x7FFF_FFF0;
    env_bytes = 0;
  }

let with_env_bytes t n =
  if n < 0 then invalid_arg "Address_space.with_env_bytes: negative size";
  { t with env_bytes = n }

let stack_base t = (t.stack_top - t.env_bytes) land lnot 15

let heap_arena t = Stz_alloc.Arena.create ~base:t.heap_base ~size:t.heap_size

let code_heap_arena t =
  Stz_alloc.Arena.create ~base:t.code_heap_base ~size:t.code_heap_size
