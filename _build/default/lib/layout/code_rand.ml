module Ir = Stz_vm.Ir
module Interp = Stz_vm.Interp
module Hierarchy = Stz_machine.Hierarchy

type granularity = Function_grain | Block_grain
type reloc_style = Adjacent_table | Fixed_table

type copy = {
  view : Interp.code_view;
  reloc_addr : int;
  allocations : int list;  (* code-heap blocks backing this copy *)
  mutable refs : int;
  mutable stale : bool;
}

type fstate = { mutable current : copy option; mutable trapped : bool }

(* Cost constants, scaled to the simulator's shortened runs: the SIGTRAP
   round trip plus the per-byte cost of copying the function body. *)
let trap_cycles = 70
let rerandomize_handler_cycles = 200
let arm_trap_cycles = 4

type t = {
  machine : Hierarchy.t;
  code_heap : Stz_alloc.Allocator.t;
  source : Stz_prng.Source.t;
  granularity : granularity;
  reloc_style : reloc_style;
  program : Ir.program;
  fstates : fstate array;
  fixed_tables : int array;  (* per fid; only under Fixed_table *)
  (* Per function: gid -> relocation-table slot, then callee slots. *)
  global_slots : (int, int) Hashtbl.t array;
  call_slots : (int, int) Hashtbl.t array;
  reloc_entries : int array;  (* table entry count per function *)
  invocations : (int * copy) Stdlib.Stack.t;  (* LIFO mirror of the call stack *)
  mutable relocations : int;
  mutable live_copies : int;
}

let create ~machine ~code_heap ~source ~granularity ?(reloc_style = Adjacent_table)
    p =
  let n = Array.length p.Ir.funcs in
  let global_slots = Array.init n (fun _ -> Hashtbl.create 8) in
  let call_slots = Array.init n (fun _ -> Hashtbl.create 8) in
  let reloc_entries = Array.make n 0 in
  Array.iteri
    (fun fid f ->
      let slot = ref 0 in
      List.iter
        (fun gid ->
          Hashtbl.replace global_slots.(fid) gid !slot;
          incr slot)
        (Ir.referenced_globals f);
      List.iter
        (fun callee ->
          Hashtbl.replace call_slots.(fid) callee !slot;
          incr slot)
        (Ir.callees f);
      reloc_entries.(fid) <- !slot)
    p.Ir.funcs;
  (* Fixed-style tables are allocated once, up front, and never move:
     the "fixed absolute address" of §3.5. *)
  let fixed_tables =
    match reloc_style with
    | Adjacent_table -> [||]
    | Fixed_table ->
        Array.init n (fun fid ->
            code_heap.Stz_alloc.Allocator.malloc
              (Stdlib.max 16 (8 * reloc_entries.(fid))))
  in
  {
    machine;
    code_heap;
    source;
    granularity;
    reloc_style;
    program = p;
    fstates = Array.init n (fun _ -> { current = None; trapped = true });
    fixed_tables;
    global_slots;
    call_slots;
    reloc_entries;
    invocations = Stdlib.Stack.create ();
    relocations = 0;
    live_copies = 0;
  }

(* Touch the destination of a copied region, modeling the cache traffic
   of writing the relocated code. Hardware prefetch makes a streaming
   copy much cheaper than independent misses, so only every fourth line
   is charged as a full access, plus a small per-byte cost. *)
let touch_lines t addr bytes =
  let lines = Stdlib.max 1 ((bytes + 255) / 256) in
  for i = 0 to lines - 1 do
    ignore (Hierarchy.data t.machine (addr + (i * 256)))
  done;
  Hierarchy.charge t.machine (bytes / 16)

let free_copy t copy =
  List.iter (fun addr -> t.code_heap.Stz_alloc.Allocator.free addr) copy.allocations;
  t.live_copies <- t.live_copies - 1

let relocate t fid =
  let f = t.program.Ir.funcs.(fid) in
  let offsets = Ir.block_offsets f in
  let n_blocks = Array.length f.Ir.blocks in
  let reloc_bytes =
    match t.reloc_style with
    | Adjacent_table -> 8 * t.reloc_entries.(fid)
    | Fixed_table -> 0 (* the shared table already exists *)
  in
  let fixed_reloc fid = t.fixed_tables.(fid) in
  let block_addrs, reloc_addr, allocations =
    match t.granularity with
    | Function_grain ->
        let size = Ir.func_size_bytes f + reloc_bytes in
        let base = t.code_heap.Stz_alloc.Allocator.malloc (Stdlib.max 16 size) in
        touch_lines t base size;
        let rt =
          match t.reloc_style with
          | Adjacent_table -> base + Ir.func_size_bytes f
          | Fixed_table -> fixed_reloc fid
        in
        (Array.map (fun o -> base + o) offsets, rt, [ base ])
    | Block_grain ->
        let addrs =
          Array.mapi
            (fun bi _ ->
              let bytes =
                Array.length f.Ir.blocks.(bi).Ir.instrs * Ir.instr_bytes
              in
              let a = t.code_heap.Stz_alloc.Allocator.malloc (Stdlib.max 16 bytes) in
              touch_lines t a bytes;
              a)
            f.Ir.blocks
        in
        let rt, extra =
          match t.reloc_style with
          | Adjacent_table ->
              let rt =
                t.code_heap.Stz_alloc.Allocator.malloc
                  (Stdlib.max 16 (8 * t.reloc_entries.(fid)))
              in
              (rt, [ rt ])
          | Fixed_table -> (fixed_reloc fid, [])
        in
        (addrs, rt, extra @ Array.to_list addrs)
  in
  let branch_flips =
    match t.granularity with
    | Function_grain -> Array.make n_blocks false
    | Block_grain ->
        (* Branch-sense randomization: randomly swapped fall-through and
           target blocks flip the predictor's view of each branch. *)
        Array.init n_blocks (fun _ -> Stz_prng.Source.bool t.source)
  in
  Hierarchy.charge t.machine trap_cycles;
  t.relocations <- t.relocations + 1;
  t.live_copies <- t.live_copies + 1;
  {
    view = { Interp.block_addrs; branch_flips };
    reloc_addr;
    allocations;
    refs = 0;
    stale = false;
  }

let enter t ~fid =
  let st = t.fstates.(fid) in
  if st.trapped || st.current = None then begin
    (* Retire the superseded copy if nothing is running in it. *)
    (match st.current with
    | Some old ->
        old.stale <- true;
        if old.refs = 0 then free_copy t old
    | None -> ());
    st.current <- Some (relocate t fid);
    st.trapped <- false
  end;
  match st.current with
  | Some copy ->
      copy.refs <- copy.refs + 1;
      Stdlib.Stack.push (fid, copy) t.invocations;
      copy.view
  | None -> assert false

let leave t ~fid =
  match Stdlib.Stack.pop_opt t.invocations with
  | None -> invalid_arg "Code_rand.leave: no matching enter"
  | Some (f, copy) ->
      if f <> fid then invalid_arg "Code_rand.leave: out-of-order exit";
      copy.refs <- copy.refs - 1;
      if copy.stale && copy.refs = 0 then free_copy t copy

let rerandomize t =
  Hierarchy.charge t.machine rerandomize_handler_cycles;
  Array.iter
    (fun st ->
      if st.current <> None then begin
        st.trapped <- true;
        Hierarchy.charge t.machine arm_trap_cycles
      end)
    t.fstates

let invocation_copy t caller =
  match Stdlib.Stack.top_opt t.invocations with
  | Some (fid, copy) when fid = caller -> copy
  | Some _ | None -> (
      (* Fall back to the function's newest copy (e.g. when costs are
         probed outside a live invocation). *)
      match t.fstates.(caller).current with
      | Some copy -> copy
      | None -> invalid_arg "Code_rand: function never relocated")

let global_entry_addr t ~caller ~gid =
  match t.reloc_style with
  | Fixed_table ->
      (* PowerPC / x86-32: globals are reached with absolute addresses;
         no table indirection (§3.5). *)
      None
  | Adjacent_table -> (
      let copy = invocation_copy t caller in
      match Hashtbl.find_opt t.global_slots.(caller) gid with
      | Some slot -> Some (copy.reloc_addr + (8 * slot))
      | None -> invalid_arg "Code_rand.global_entry_addr: global not referenced")

let call_entry_addr t ~caller ~callee =
  let copy = invocation_copy t caller in
  match Hashtbl.find_opt t.call_slots.(caller) callee with
  | Some slot -> copy.reloc_addr + (8 * slot)
  | None -> invalid_arg "Code_rand.call_entry_addr: callee not referenced"

let relocations t = t.relocations
let live_copies t = t.live_copies

let current_base t ~fid =
  match t.fstates.(fid).current with
  | Some copy ->
      if Array.length copy.view.Interp.block_addrs = 0 then None
      else Some copy.view.Interp.block_addrs.(0)
  | None -> None
