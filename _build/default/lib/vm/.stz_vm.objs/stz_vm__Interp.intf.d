lib/vm/interp.mli: Ir Stz_machine
