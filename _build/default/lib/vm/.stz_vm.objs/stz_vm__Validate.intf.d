lib/vm/validate.mli: Ir
