lib/vm/interp.ml: Array Hashtbl Ir List Stdlib Stz_machine
