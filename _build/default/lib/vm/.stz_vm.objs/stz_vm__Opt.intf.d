lib/vm/opt.mli: Ir
