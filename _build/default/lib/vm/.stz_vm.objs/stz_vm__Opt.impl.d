lib/vm/opt.ml: Array Hashtbl Interp Ir List Stdlib Validate
