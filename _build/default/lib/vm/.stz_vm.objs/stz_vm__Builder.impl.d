lib/vm/builder.ml: Array Ir List Printf
