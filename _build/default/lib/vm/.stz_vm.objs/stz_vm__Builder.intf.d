lib/vm/builder.mli: Ir
