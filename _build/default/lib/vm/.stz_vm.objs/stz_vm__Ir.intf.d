lib/vm/ir.mli: Format
