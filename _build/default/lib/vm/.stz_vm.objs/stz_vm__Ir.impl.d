lib/vm/ir.ml: Array Format Hashtbl List
