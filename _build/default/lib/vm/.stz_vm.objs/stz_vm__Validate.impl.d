lib/vm/validate.ml: Array Ir List Printf
