lib/vm/text.ml: Array Buffer Ir List Printf String Validate
