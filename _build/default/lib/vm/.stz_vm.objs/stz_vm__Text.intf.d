lib/vm/text.mli: Ir
