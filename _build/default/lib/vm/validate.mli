(** Structural well-formedness checks for IR programs: register ranges,
    block targets, callee ids, global ids, terminator placement. Run by
    tests and after every optimizer pass. *)

type error = { where : string; what : string }

val check_func : n_funcs:int -> n_globals:int -> Ir.func -> error list

val check_program : Ir.program -> error list

(** Raises [Invalid_argument] with a readable message on any error. *)
val check_exn : Ir.program -> unit
