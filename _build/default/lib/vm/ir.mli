(** The intermediate representation of simulated programs: a register
    machine with functions, basic blocks and explicit memory operations.
    It stands in for LLVM bytecode: every instruction occupies 4 bytes
    of simulated code space, every branch has a code address that feeds
    the branch predictor, and every load/store produces a data address —
    which is all the paper's layout effects need. *)

type reg = int

type binop = Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type operand = Reg of reg | Imm of int

type instr =
  | Bin of binop * reg * operand * operand  (** dst = a op b *)
  | Cmp of cmp * reg * operand * operand  (** dst = (a cmp b) as 0/1 *)
  | Mov of reg * operand
  | Load of reg * reg * int  (** dst = mem[base_reg + offset] *)
  | Store of reg * int * operand  (** mem[base_reg + offset] = value *)
  | Frame of reg * int  (** dst = address of frame slot at offset *)
  | Global of reg * int  (** dst = address of global [gid] *)
  | Malloc of reg * operand  (** dst = heap allocation of given size *)
  | Free of reg
  | Call of { fn : int; args : operand list; dst : reg }
  | Ret of operand
  | Br of int  (** unconditional jump to block *)
  | Brc of operand * int * int  (** if value <> 0 then block1 else block2 *)

type block = { mutable instrs : instr array }

type func = {
  fid : int;
  fname : string;
  mutable blocks : block array;
  n_args : int;
  mutable n_regs : int;
  frame_size : int;  (** bytes of stack frame, multiple of 16 *)
}

type global = { gid : int; gname : string; gsize : int }

type program = {
  mutable funcs : func array;
  globals : global array;
  entry : int;  (** fid executed first *)
}

(** Bytes per encoded instruction in the simulated ISA. *)
val instr_bytes : int

(** Total instructions in a function (static). *)
val func_instr_count : func -> int

(** Code bytes of a function, excluding any runtime-added tables. *)
val func_size_bytes : func -> int

(** Byte offset of each block's first instruction within its function. *)
val block_offsets : func -> int array

(** Total static code bytes of a program. *)
val program_size_bytes : program -> int

(** Number of distinct global ids referenced by a function (used to
    size its relocation table). *)
val referenced_globals : func -> int list

(** Functions called by a function (for relocation tables and inlining). *)
val callees : func -> int list

(** Structural deep copy (blocks and instruction arrays are fresh). *)
val copy_func : func -> func

val copy_program : program -> program

(** Pretty-print for debugging and the disassembly example. *)
val pp_func : Format.formatter -> func -> unit

val pp_program : Format.formatter -> program -> unit
