type t = {
  fid : int;
  name : string;
  n_args : int;
  frame_size : int;
  mutable next_reg : int;
  mutable blocks : Ir.instr list array;  (* reversed instruction lists *)
  mutable current : int;
}

let func ~fid ~name ~n_args ?(frame_size = 64) () =
  {
    fid;
    name;
    n_args;
    frame_size;
    next_reg = n_args;
    blocks = [| [] |];
    current = 0;
  }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let new_block t =
  let id = Array.length t.blocks in
  t.blocks <- Array.append t.blocks [| [] |];
  id

let set_block t b =
  if b < 0 || b >= Array.length t.blocks then
    invalid_arg "Builder.set_block: no such block";
  t.current <- b

let emit t instr = t.blocks.(t.current) <- instr :: t.blocks.(t.current)

let is_terminator = function
  | Ir.Ret _ | Ir.Br _ | Ir.Brc _ -> true
  | _ -> false

let finish t =
  let blocks =
    Array.mapi
      (fun bi rev ->
        match rev with
        | [] -> invalid_arg (Printf.sprintf "Builder.finish: empty block b%d" bi)
        | last :: _ ->
            if not (is_terminator last) then
              invalid_arg
                (Printf.sprintf "Builder.finish: block b%d lacks a terminator" bi);
            { Ir.instrs = Array.of_list (List.rev rev) })
      t.blocks
  in
  {
    Ir.fid = t.fid;
    fname = t.name;
    blocks;
    n_args = t.n_args;
    n_regs = t.next_reg;
    frame_size = t.frame_size;
  }

let program ~funcs ~globals ~entry =
  let funcs = Array.of_list funcs in
  Array.sort (fun a b -> compare a.Ir.fid b.Ir.fid) funcs;
  Array.iteri
    (fun i f ->
      if f.Ir.fid <> i then
        invalid_arg "Builder.program: fids must be dense and start at 0")
    funcs;
  let globals = Array.of_list globals in
  Array.sort (fun a b -> compare a.Ir.gid b.Ir.gid) globals;
  Array.iteri
    (fun i g ->
      if g.Ir.gid <> i then
        invalid_arg "Builder.program: gids must be dense and start at 0")
    globals;
  { Ir.funcs; globals; entry }
