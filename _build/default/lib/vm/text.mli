(** A textual format for IR programs — the equivalent of LLVM's [.ll]
    assembly for this substrate. Programs can be saved to disk, edited
    by hand and run with [szc exec]. [of_string (to_string p)] is the
    identity on well-formed programs (property-tested).

    Grammar (one item per line, [#] starts a comment):
    {v
    program entry=f<id>
    global g<id> <name> size=<bytes>
    func f<id> <name> args=<n> regs=<n> frame=<bytes>
    block b<id>
      r1 = 42                      ; mov immediate
      r2 = add r1, 7               ; bin ops: add sub mul div and or xor shl shr
      r3 = cmp.lt r2, r1           ; cmp ops: eq ne lt le gt ge
      r4 = load [r2 + 8]
      store [r2 + 8], r3
      r5 = frame + 16
      r6 = global g0
      r7 = malloc r1
      free r7
      r8 = call f1(r1, 7)
      br b1
      brc r5, b1, b2
      ret r8
    v} *)

(** Render a program in the textual format. *)
val to_string : Ir.program -> string

exception Parse_error of { line : int; message : string }

(** Parse the textual format; raises {!Parse_error} with a line number
    on malformed input. The result is validated structurally. *)
val of_string : string -> Ir.program
