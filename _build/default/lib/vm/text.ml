exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Ir.Add -> "add" | Ir.Sub -> "sub" | Ir.Mul -> "mul" | Ir.Div -> "div"
  | Ir.And -> "and" | Ir.Or -> "or" | Ir.Xor -> "xor" | Ir.Shl -> "shl"
  | Ir.Shr -> "shr"

let cmp_name = function
  | Ir.Eq -> "eq" | Ir.Ne -> "ne" | Ir.Lt -> "lt" | Ir.Le -> "le"
  | Ir.Gt -> "gt" | Ir.Ge -> "ge"

let operand_str = function
  | Ir.Reg r -> Printf.sprintf "r%d" r
  | Ir.Imm i -> string_of_int i

let instr_str = function
  | Ir.Mov (d, a) -> Printf.sprintf "r%d = %s" d (operand_str a)
  | Ir.Bin (op, d, a, b) ->
      Printf.sprintf "r%d = %s %s, %s" d (binop_name op) (operand_str a)
        (operand_str b)
  | Ir.Cmp (op, d, a, b) ->
      Printf.sprintf "r%d = cmp.%s %s, %s" d (cmp_name op) (operand_str a)
        (operand_str b)
  | Ir.Load (d, b, o) -> Printf.sprintf "r%d = load [r%d + %d]" d b o
  | Ir.Store (b, o, v) -> Printf.sprintf "store [r%d + %d], %s" b o (operand_str v)
  | Ir.Frame (d, o) -> Printf.sprintf "r%d = frame + %d" d o
  | Ir.Global (d, g) -> Printf.sprintf "r%d = global g%d" d g
  | Ir.Malloc (d, s) -> Printf.sprintf "r%d = malloc %s" d (operand_str s)
  | Ir.Free r -> Printf.sprintf "free r%d" r
  | Ir.Call { fn; args; dst } ->
      Printf.sprintf "r%d = call f%d(%s)" dst fn
        (String.concat ", " (List.map operand_str args))
  | Ir.Ret v -> Printf.sprintf "ret %s" (operand_str v)
  | Ir.Br b -> Printf.sprintf "br b%d" b
  | Ir.Brc (c, t, e) ->
      Printf.sprintf "brc %s, b%d, b%d" (operand_str c) t e

let to_string p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "program entry=f%d\n" p.Ir.entry);
  Array.iter
    (fun (g : Ir.global) ->
      Buffer.add_string buf
        (Printf.sprintf "global g%d %s size=%d\n" g.Ir.gid g.Ir.gname g.Ir.gsize))
    p.Ir.globals;
  Array.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "func f%d %s args=%d regs=%d frame=%d\n" f.Ir.fid
           f.Ir.fname f.Ir.n_args f.Ir.n_regs f.Ir.frame_size);
      Array.iteri
        (fun bi blk ->
          Buffer.add_string buf (Printf.sprintf "block b%d\n" bi);
          Array.iter
            (fun i -> Buffer.add_string buf ("  " ^ instr_str i ^ "\n"))
            blk.Ir.instrs)
        f.Ir.blocks)
    p.Ir.funcs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let fail line message = raise (Parse_error { line; message })

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Tokenize one instruction line: identifiers, integers (with optional
   leading -), and the punctuation = , [ ] + ( ) . *)
let tokenize line s =
  let tokens = ref [] in
  let n = String.length s in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '-'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word s.[!i] do
        incr i
      done;
      tokens := String.sub s start (!i - start) :: !tokens
    end
    else if String.contains "=,[]+()" c then begin
      tokens := String.make 1 c :: !tokens;
      incr i
    end
    else fail line (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

let parse_id line ~prefix token =
  let pn = String.length prefix in
  if String.length token > pn && String.sub token 0 pn = prefix then
    match int_of_string_opt (String.sub token pn (String.length token - pn)) with
    | Some v when v >= 0 -> v
    | Some _ | None -> fail line (Printf.sprintf "bad %s id %S" prefix token)
  else fail line (Printf.sprintf "expected %s<id>, got %S" prefix token)

let parse_operand line token =
  if String.length token > 1 && token.[0] = 'r' && token.[1] >= '0' && token.[1] <= '9'
  then Ir.Reg (parse_id line ~prefix:"r" token)
  else
    match int_of_string_opt token with
    | Some v -> Ir.Imm v
    | None -> fail line (Printf.sprintf "expected operand, got %S" token)

let binop_of_name = function
  | "add" -> Some Ir.Add | "sub" -> Some Ir.Sub | "mul" -> Some Ir.Mul
  | "div" -> Some Ir.Div | "and" -> Some Ir.And | "or" -> Some Ir.Or
  | "xor" -> Some Ir.Xor | "shl" -> Some Ir.Shl | "shr" -> Some Ir.Shr
  | _ -> None

let cmp_of_name = function
  | "cmp.eq" -> Some Ir.Eq | "cmp.ne" -> Some Ir.Ne | "cmp.lt" -> Some Ir.Lt
  | "cmp.le" -> Some Ir.Le | "cmp.gt" -> Some Ir.Gt | "cmp.ge" -> Some Ir.Ge
  | _ -> None

let parse_int line token =
  match int_of_string_opt token with
  | Some v -> v
  | None -> fail line (Printf.sprintf "expected integer, got %S" token)

let parse_instr line tokens =
  match tokens with
  | [ "free"; r ] -> Ir.Free (parse_id line ~prefix:"r" r)
  | [ "ret"; v ] -> Ir.Ret (parse_operand line v)
  | [ "br"; b ] -> Ir.Br (parse_id line ~prefix:"b" b)
  | [ "brc"; c; ","; t; ","; e ] ->
      Ir.Brc
        (parse_operand line c, parse_id line ~prefix:"b" t, parse_id line ~prefix:"b" e)
  | [ "store"; "["; b; "+"; o; "]"; ","; v ] ->
      Ir.Store (parse_id line ~prefix:"r" b, parse_int line o, parse_operand line v)
  | d :: "=" :: rest -> begin
      let dst = parse_id line ~prefix:"r" d in
      match rest with
      | [ "load"; "["; b; "+"; o; "]" ] ->
          Ir.Load (dst, parse_id line ~prefix:"r" b, parse_int line o)
      | [ "frame"; "+"; o ] -> Ir.Frame (dst, parse_int line o)
      | [ "global"; g ] -> Ir.Global (dst, parse_id line ~prefix:"g" g)
      | [ "malloc"; s ] -> Ir.Malloc (dst, parse_operand line s)
      | "call" :: fn :: "(" :: arg_tokens ->
          let fn = parse_id line ~prefix:"f" fn in
          let rec parse_args acc = function
            | [ ")" ] -> List.rev acc
            | a :: "," :: rest -> parse_args (parse_operand line a :: acc) rest
            | [ a; ")" ] -> List.rev (parse_operand line a :: acc)
            | _ -> fail line "malformed call argument list"
          in
          let args =
            match arg_tokens with
            | [ ")" ] -> []
            | _ -> parse_args [] arg_tokens
          in
          Ir.Call { fn; args; dst }
      | [ op; a; ","; b ] -> begin
          match (binop_of_name op, cmp_of_name op) with
          | Some bop, _ -> Ir.Bin (bop, dst, parse_operand line a, parse_operand line b)
          | None, Some cop ->
              Ir.Cmp (cop, dst, parse_operand line a, parse_operand line b)
          | None, None -> fail line (Printf.sprintf "unknown operation %S" op)
        end
      | [ v ] -> Ir.Mov (dst, parse_operand line v)
      | _ -> fail line "malformed instruction"
    end
  | _ -> fail line "malformed instruction"

type pending_func = {
  pf_fid : int;
  pf_name : string;
  pf_args : int;
  pf_regs : int;
  pf_frame : int;
  mutable pf_blocks : Ir.instr list list;  (* reversed blocks of reversed instrs *)
}

let keyval line ~key token =
  let prefix = key ^ "=" in
  let pn = String.length prefix in
  if String.length token > pn && String.sub token 0 pn = prefix then
    String.sub token pn (String.length token - pn)
  else fail line (Printf.sprintf "expected %s=<value>, got %S" key token)

let of_string text =
  let entry = ref None in
  let globals = ref [] in
  let funcs = ref [] in
  let current : pending_func option ref = ref None in
  let finish_current () =
    match !current with
    | None -> ()
    | Some pf ->
        let blocks =
          List.rev_map
            (fun instrs -> { Ir.instrs = Array.of_list (List.rev instrs) })
            pf.pf_blocks
        in
        funcs :=
          {
            Ir.fid = pf.pf_fid;
            fname = pf.pf_name;
            blocks = Array.of_list blocks;
            n_args = pf.pf_args;
            n_regs = pf.pf_regs;
            frame_size = pf.pf_frame;
          }
          :: !funcs;
        current := None
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let s = String.trim (strip_comment raw) in
      if s <> "" then begin
        let words = String.split_on_char ' ' s |> List.filter (fun w -> w <> "") in
        match words with
        | "program" :: rest -> begin
            match rest with
            | [ e ] ->
                entry := Some (parse_id lineno ~prefix:"f" (keyval lineno ~key:"entry" e))
            | _ -> fail lineno "expected: program entry=f<id>"
          end
        | [ "global"; gid; name; size ] ->
            globals :=
              {
                Ir.gid = parse_id lineno ~prefix:"g" gid;
                gname = name;
                gsize = parse_int lineno (keyval lineno ~key:"size" size);
              }
              :: !globals
        | [ "func"; fid; name; args; regs; frame ] ->
            finish_current ();
            current :=
              Some
                {
                  pf_fid = parse_id lineno ~prefix:"f" fid;
                  pf_name = name;
                  pf_args = parse_int lineno (keyval lineno ~key:"args" args);
                  pf_regs = parse_int lineno (keyval lineno ~key:"regs" regs);
                  pf_frame = parse_int lineno (keyval lineno ~key:"frame" frame);
                  pf_blocks = [];
                }
        | [ "block"; bid ] -> begin
            match !current with
            | None -> fail lineno "block outside of a function"
            | Some pf ->
                let expected = List.length pf.pf_blocks in
                if parse_id lineno ~prefix:"b" bid <> expected then
                  fail lineno
                    (Printf.sprintf "blocks must be declared in order; expected b%d"
                       expected);
                pf.pf_blocks <- [] :: pf.pf_blocks
          end
        | _ -> begin
            match !current with
            | None -> fail lineno "instruction outside of a function"
            | Some pf -> begin
                match pf.pf_blocks with
                | [] -> fail lineno "instruction before the first block"
                | blk :: rest ->
                    let instr = parse_instr lineno (tokenize lineno s) in
                    pf.pf_blocks <- (instr :: blk) :: rest
              end
          end
      end)
    lines;
  finish_current ();
  let entry =
    match !entry with
    | Some e -> e
    | None -> raise (Parse_error { line = 0; message = "missing program header" })
  in
  let funcs = Array.of_list (List.rev !funcs) in
  Array.sort (fun a b -> compare a.Ir.fid b.Ir.fid) funcs;
  let globals = Array.of_list (List.rev !globals) in
  Array.sort (fun (a : Ir.global) b -> compare a.Ir.gid b.Ir.gid) globals;
  let p = { Ir.funcs; globals; entry } in
  (match Validate.check_program p with
  | [] -> ()
  | { Validate.where; what } :: _ ->
      raise (Parse_error { line = 0; message = where ^ ": " ^ what }));
  p
