(** Imperative construction of IR functions and programs, used by the
    workload generators and by tests. *)

type t

(** [func ~fid ~name ~n_args ~frame_size ()] starts a function. The
    first [n_args] registers hold the arguments. Block 0 is the entry
    and is open initially. *)
val func : fid:int -> name:string -> n_args:int -> ?frame_size:int -> unit -> t

(** Fresh virtual register. *)
val fresh_reg : t -> Ir.reg

(** Open a new block and return its id (does not change the insertion
    point). *)
val new_block : t -> int

(** Switch the insertion point to a block. *)
val set_block : t -> int -> unit

(** Append an instruction to the current block. *)
val emit : t -> Ir.instr -> unit

(** Finish and return the function. Raises if any block lacks a
    terminator. *)
val finish : t -> Ir.func

(** Assemble a program. *)
val program : funcs:Ir.func list -> globals:Ir.global list -> entry:int -> Ir.program
