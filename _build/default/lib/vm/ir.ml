type reg = int

type binop = Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type operand = Reg of reg | Imm of int

type instr =
  | Bin of binop * reg * operand * operand
  | Cmp of cmp * reg * operand * operand
  | Mov of reg * operand
  | Load of reg * reg * int
  | Store of reg * int * operand
  | Frame of reg * int
  | Global of reg * int
  | Malloc of reg * operand
  | Free of reg
  | Call of { fn : int; args : operand list; dst : reg }
  | Ret of operand
  | Br of int
  | Brc of operand * int * int

type block = { mutable instrs : instr array }

type func = {
  fid : int;
  fname : string;
  mutable blocks : block array;
  n_args : int;
  mutable n_regs : int;
  frame_size : int;
}

type global = { gid : int; gname : string; gsize : int }
type program = { mutable funcs : func array; globals : global array; entry : int }

let instr_bytes = 4

let func_instr_count f =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 f.blocks

let func_size_bytes f = func_instr_count f * instr_bytes

let block_offsets f =
  let offsets = Array.make (Array.length f.blocks) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun i b ->
      offsets.(i) <- !pos;
      pos := !pos + (Array.length b.instrs * instr_bytes))
    f.blocks;
  offsets

let program_size_bytes p =
  Array.fold_left (fun acc f -> acc + func_size_bytes f) 0 p.funcs

let referenced_globals f =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      Array.iter
        (function Global (_, gid) -> Hashtbl.replace seen gid () | _ -> ())
        b.instrs)
    f.blocks;
  List.sort compare (Hashtbl.fold (fun gid () acc -> gid :: acc) seen [])

let callees f =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      Array.iter
        (function Call { fn; _ } -> Hashtbl.replace seen fn () | _ -> ())
        b.instrs)
    f.blocks;
  List.sort compare (Hashtbl.fold (fun fid () acc -> fid :: acc) seen [])

let copy_func f =
  {
    f with
    blocks = Array.map (fun b -> { instrs = Array.copy b.instrs }) f.blocks;
  }

let copy_program p = { p with funcs = Array.map copy_func p.funcs }

let binop_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let cmp_to_string = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm i -> Format.fprintf fmt "%d" i

let pp_instr fmt = function
  | Bin (op, d, a, b) ->
      Format.fprintf fmt "r%d = %s %a, %a" d (binop_to_string op) pp_operand a
        pp_operand b
  | Cmp (op, d, a, b) ->
      Format.fprintf fmt "r%d = cmp.%s %a, %a" d (cmp_to_string op) pp_operand a
        pp_operand b
  | Mov (d, a) -> Format.fprintf fmt "r%d = %a" d pp_operand a
  | Load (d, b, o) -> Format.fprintf fmt "r%d = load [r%d + %d]" d b o
  | Store (b, o, v) -> Format.fprintf fmt "store [r%d + %d], %a" b o pp_operand v
  | Frame (d, o) -> Format.fprintf fmt "r%d = frame + %d" d o
  | Global (d, g) -> Format.fprintf fmt "r%d = &global%d" d g
  | Malloc (d, s) -> Format.fprintf fmt "r%d = malloc %a" d pp_operand s
  | Free r -> Format.fprintf fmt "free r%d" r
  | Call { fn; args; dst } ->
      Format.fprintf fmt "r%d = call f%d(%a)" dst fn
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_operand)
        args
  | Ret v -> Format.fprintf fmt "ret %a" pp_operand v
  | Br b -> Format.fprintf fmt "br b%d" b
  | Brc (c, t, f) -> Format.fprintf fmt "brc %a, b%d, b%d" pp_operand c t f

let pp_func fmt f =
  Format.fprintf fmt "func %s (fid=%d, args=%d, regs=%d, frame=%d):@." f.fname
    f.fid f.n_args f.n_regs f.frame_size;
  Array.iteri
    (fun bi b ->
      Format.fprintf fmt "  b%d:@." bi;
      Array.iter (fun i -> Format.fprintf fmt "    %a@." pp_instr i) b.instrs)
    f.blocks

let pp_program fmt p =
  Format.fprintf fmt "program: entry=f%d, %d funcs, %d globals@." p.entry
    (Array.length p.funcs) (Array.length p.globals);
  Array.iter (pp_func fmt) p.funcs
