type error = { where : string; what : string }

let check_func ~n_funcs ~n_globals f =
  let errors = ref [] in
  let err bi what =
    errors :=
      { where = Printf.sprintf "%s/b%d" f.Ir.fname bi; what } :: !errors
  in
  let n_blocks = Array.length f.Ir.blocks in
  if n_blocks = 0 then err (-1) "function has no blocks";
  let check_reg bi r =
    if r < 0 || r >= f.Ir.n_regs then
      err bi (Printf.sprintf "register r%d out of range (n_regs=%d)" r f.Ir.n_regs)
  in
  let check_operand bi = function Ir.Reg r -> check_reg bi r | Ir.Imm _ -> () in
  let check_block_target bi b =
    if b < 0 || b >= n_blocks then err bi (Printf.sprintf "branch to missing block b%d" b)
  in
  Array.iteri
    (fun bi block ->
      let n = Array.length block.Ir.instrs in
      if n = 0 then err bi "empty block"
      else
        Array.iteri
          (fun ii instr ->
            let is_last = ii = n - 1 in
            let terminator = match instr with
              | Ir.Ret _ | Ir.Br _ | Ir.Brc _ -> true
              | _ -> false
            in
            if is_last && not terminator then err bi "block lacks a terminator";
            if (not is_last) && terminator then
              err bi (Printf.sprintf "terminator at non-final position %d" ii);
            match instr with
            | Ir.Bin (_, d, a, b) | Ir.Cmp (_, d, a, b) ->
                check_reg bi d; check_operand bi a; check_operand bi b
            | Ir.Mov (d, a) -> check_reg bi d; check_operand bi a
            | Ir.Load (d, b, _) -> check_reg bi d; check_reg bi b
            | Ir.Store (b, _, v) -> check_reg bi b; check_operand bi v
            | Ir.Frame (d, o) ->
                check_reg bi d;
                if o < 0 || o >= f.Ir.frame_size then
                  err bi (Printf.sprintf "frame offset %d outside frame of %d" o f.Ir.frame_size)
            | Ir.Global (d, g) ->
                check_reg bi d;
                if g < 0 || g >= n_globals then err bi (Printf.sprintf "missing global %d" g)
            | Ir.Malloc (d, s) -> check_reg bi d; check_operand bi s
            | Ir.Free r -> check_reg bi r
            | Ir.Call { fn; args; dst } ->
                check_reg bi dst;
                List.iter (check_operand bi) args;
                if fn < 0 || fn >= n_funcs then err bi (Printf.sprintf "call to missing f%d" fn)
            | Ir.Ret v -> check_operand bi v
            | Ir.Br b -> check_block_target bi b
            | Ir.Brc (c, t, e) ->
                check_operand bi c; check_block_target bi t; check_block_target bi e)
          block.Ir.instrs)
    f.Ir.blocks;
  List.rev !errors

let check_program p =
  let n_funcs = Array.length p.Ir.funcs in
  let n_globals = Array.length p.Ir.globals in
  let entry_errors =
    if p.Ir.entry < 0 || p.Ir.entry >= n_funcs then
      [ { where = "program"; what = "entry function missing" } ]
    else []
  in
  entry_errors
  @ List.concat_map
      (fun f -> check_func ~n_funcs ~n_globals f)
      (Array.to_list p.Ir.funcs)

let check_exn p =
  match check_program p with
  | [] -> ()
  | { where; what } :: rest ->
      invalid_arg
        (Printf.sprintf "Validate: %s: %s (+%d more)" where what (List.length rest))
