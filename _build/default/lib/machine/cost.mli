(** Cycle cost model. Latencies approximate the paper's evaluation
    machine (Intel Core i3-550: 32 KiB L1, 256 KiB L2, shared 4 MiB L3)
    and its 3.2 GHz clock, which also fixes the cycles-per-millisecond
    conversion used by the virtual re-randomization timer. *)

type t = {
  base_cycles : int;  (** issue cost of any instruction *)
  l1_hit : int;
  l2_hit : int;
  l3_hit : int;
  memory : int;
  tlb_miss : int;  (** page-walk penalty *)
  branch_misprediction : int;
  mul : int;  (** extra cycles for multiply *)
  div : int;  (** extra cycles for divide *)
}

val default : t

(** Simulated core clock in cycles per millisecond (3.2 GHz). *)
val cycles_per_ms : int
