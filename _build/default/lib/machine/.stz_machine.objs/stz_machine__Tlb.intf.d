lib/machine/tlb.mli:
