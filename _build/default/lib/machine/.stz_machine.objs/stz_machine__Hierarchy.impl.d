lib/machine/hierarchy.ml: Branch Cache Cost Tlb
