lib/machine/tlb.ml: Cache
