lib/machine/cost.mli:
