lib/machine/branch.ml: Bytes Char Stdlib
