lib/machine/cost.ml:
