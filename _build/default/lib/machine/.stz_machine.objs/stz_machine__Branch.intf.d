lib/machine/branch.mli:
