lib/machine/hierarchy.mli: Branch Cache Cost Tlb
