lib/machine/cache.mli:
