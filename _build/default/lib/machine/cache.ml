type config = { name : string; sets : int; ways : int; line_bits : int }

type t = {
  cfg : config;
  tags : int array;  (** sets * ways; -1 = invalid *)
  stamps : int array;  (** LRU timestamps, parallel to [tags] *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create cfg =
  if cfg.sets <= 0 || cfg.sets land (cfg.sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  if cfg.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  {
    cfg;
    tags = Array.make (cfg.sets * cfg.ways) (-1);
    stamps = Array.make (cfg.sets * cfg.ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let config t = t.cfg

let set_of t addr = (addr lsr t.cfg.line_bits) land (t.cfg.sets - 1)
let tag_of t addr = addr lsr t.cfg.line_bits

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let set = set_of t addr in
  let tag = tag_of t addr in
  let base = set * t.cfg.ways in
  let hit = ref false in
  let victim = ref base in
  let oldest = ref max_int in
  (try
     for w = base to base + t.cfg.ways - 1 do
       if t.tags.(w) = tag then begin
         t.stamps.(w) <- t.clock;
         hit := true;
         raise Exit
       end;
       if t.stamps.(w) < !oldest then begin
         oldest := t.stamps.(w);
         victim := w
       end
     done
   with Exit -> ());
  if not !hit then begin
    t.misses <- t.misses + 1;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock
  end;
  !hit

let probe t addr =
  let set = set_of t addr in
  let tag = tag_of t addr in
  let base = set * t.cfg.ways in
  let found = ref false in
  for w = base to base + t.cfg.ways - 1 do
    if t.tags.(w) = tag then found := true
  done;
  !found

let accesses t = t.accesses
let misses t = t.misses

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let reset t =
  flush t;
  t.accesses <- 0;
  t.misses <- 0;
  t.clock <- 0

let index_bits t =
  let bits = ref 0 and s = ref t.cfg.sets in
  while !s > 1 do
    incr bits;
    s := !s lsr 1
  done;
  (t.cfg.line_bits, t.cfg.line_bits + !bits - 1)
