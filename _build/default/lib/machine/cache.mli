(** A set-associative cache with LRU replacement. Addresses are plain
    ints (simulated byte addresses). The *index bits* of an address —
    [line_bits .. line_bits + log2 sets - 1] — decide its set, which is
    exactly the layout sensitivity the paper exploits: two hot objects
    whose index bits collide evict each other regardless of how much
    total capacity is free. *)

type config = {
  name : string;
  sets : int;  (** power of two *)
  ways : int;
  line_bits : int;  (** log2 of the line size in bytes *)
}

type t

val create : config -> t
val config : t -> config

(** [access t addr] touches the line containing [addr]; returns [true]
    on hit. Misses fill the line (evicting the LRU way). *)
val access : t -> int -> bool

(** [probe t addr] is [true] if the line is resident; no state change. *)
val probe : t -> int -> bool

val accesses : t -> int
val misses : t -> int

(** Invalidate all lines and clear statistics. *)
val reset : t -> unit

(** Invalidate all lines, keep statistics. *)
val flush : t -> unit

(** The range of address bits (lo, hi) that select the set, e.g. (6, 12)
    for a 128-set cache with 64-byte lines — the bits the paper's NIST
    analysis calls the "index bits". *)
val index_bits : t -> int * int
