type t = {
  base_cycles : int;
  l1_hit : int;
  l2_hit : int;
  l3_hit : int;
  memory : int;
  tlb_miss : int;
  branch_misprediction : int;
  mul : int;
  div : int;
}

let default =
  {
    base_cycles = 1;
    l1_hit = 0;  (* folded into base_cycles for a pipelined L1 hit *)
    l2_hit = 10;
    l3_hit = 35;
    memory = 200;
    tlb_miss = 30;
    branch_misprediction = 14;
    mul = 2;
    div = 20;
  }

let cycles_per_ms = 3_200_000
