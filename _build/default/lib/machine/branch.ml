type kind = Bimodal | Gshare of int

type t = {
  counters : Bytes.t;  (** 2-bit saturating counters, one byte each *)
  mask : int;
  kind : kind;
  mutable history : int;  (** global branch history (Gshare) *)
  mutable branches : int;
  mutable mispredictions : int;
}

let create ?(entries = 4096) ?(kind = Bimodal) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Branch.create: entries must be a power of two";
  (match kind with
  | Gshare bits when bits < 1 || bits > 30 ->
      invalid_arg "Branch.create: history bits must be in [1,30]"
  | Gshare _ | Bimodal -> ());
  {
    (* Weakly taken initial state. *)
    counters = Bytes.make entries '\002';
    mask = entries - 1;
    kind;
    history = 0;
    branches = 0;
    mispredictions = 0;
  }

(* Instructions are 4 bytes in the simulated ISA; drop the offset bits. *)
let index_of t pc =
  match t.kind with
  | Bimodal -> (pc lsr 2) land t.mask
  | Gshare bits ->
      ((pc lsr 2) lxor (t.history land ((1 lsl bits) - 1))) land t.mask

let predict_and_update t ~pc ~taken =
  t.branches <- t.branches + 1;
  let i = index_of t pc in
  let counter = Char.code (Bytes.get t.counters i) in
  let predicted_taken = counter >= 2 in
  let correct = predicted_taken = taken in
  if not correct then t.mispredictions <- t.mispredictions + 1;
  let counter' =
    if taken then Stdlib.min 3 (counter + 1) else Stdlib.max 0 (counter - 1)
  in
  Bytes.set t.counters i (Char.chr counter');
  (match t.kind with
  | Gshare _ -> t.history <- (t.history lsl 1) lor (if taken then 1 else 0)
  | Bimodal -> ());
  correct

let branches t = t.branches
let mispredictions t = t.mispredictions

let reset t =
  Bytes.fill t.counters 0 (Bytes.length t.counters) '\002';
  t.history <- 0;
  t.branches <- 0;
  t.mispredictions <- 0
