(** Plain-text and CSV rendering of samples and comparisons, for piping
    experiment output into external analysis (R, gnuplot, spreadsheets). *)

(** CSV of one sample set: header ["run,seconds,cycles"]. *)
val csv_of_sample : Sample.t -> string

(** CSV of several labelled time series, long format:
    ["label,run,seconds"]. *)
val csv_of_series : (string * float array) list -> string

(** Five-number summary plus mean/sd on one line. *)
val summary_line : float array -> string

(** Histogram of the samples as ASCII bars, [bins] rows. *)
val ascii_histogram : ?bins:int -> ?width:int -> float array -> string
