(** The §3.2 randomness evaluation: run the NIST suite over the cache
    *index bits* of addresses returned by each allocator, as the paper
    does for lrand48, DieHard and the shuffled heap across values of N.

    Protocol notes (documented deviations from the paper):
    - the observation stream is a deterministic allocation trace, so
      all randomness measured comes from the allocator itself;
    - a shuffling layer with parameter N over [block]-byte objects can
      only randomize the address bits its pool spans (N * block bytes),
      so each configuration is tested on exactly the index-bit range it
      is able to randomize — for N = 256 and 64-byte blocks that is
      bits 6-13, which covers every cache index bit of the scaled
      simulated machine (paper: bits 6-17 on the Core2);
    - DieHard probes uniformly over its regions regardless of N, so it
      is tested on the full paper range, as is lrand48. *)

type report = {
  subject : string;  (** e.g. "lrand48", "diehard", "shuffle(N=256)" *)
  lo_bit : int;
  hi_bit : int;
  outcomes : Stz_nist.Tests.outcome list;
  passed : int;
  total : int;
}

(** Samples per report (bits = samples * extracted width). *)
val default_samples : int

(** lrand48's raw outputs, treated as addresses (paper baseline). *)
val lrand48 : ?samples:int -> seed:int64 -> unit -> report

(** DieHard allocation stream over a steady mixed population. *)
val diehard : ?samples:int -> seed:int64 -> unit -> report

(** The unrandomized base allocator, on the same window a shuffled heap
    with [n] would be measured on (the negative control). *)
val base : ?samples:int -> ?n:int -> Stz_alloc.Allocator.kind -> report

(** Shuffling layer with parameter [n] over a base allocator. *)
val shuffled :
  ?samples:int -> ?n:int -> seed:int64 -> Stz_alloc.Allocator.kind -> report

(** The full §3.2 table: lrand48, DieHard, base, and the shuffled heap
    for N in [ns] (default 1, 4, 16, 64, 256). *)
val table : ?ns:int list -> seed:int64 -> unit -> report list

val pp_report : Format.formatter -> report -> unit
