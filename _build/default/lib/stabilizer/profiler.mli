(** Per-function cycle attribution, the "sampling with performance
    counters" infrastructure the paper's §8 sketches for detecting
    layout-related performance problems: exclusive cycles and call
    counts per function, collected from the runtime's entry/exit hooks. *)

type entry = {
  fid : int;
  name : string;
  calls : int;
  exclusive_cycles : int;  (** cycles spent in the function itself *)
}

type t

(** [create p] sets up counters for every function of [p]. *)
val create : Stz_vm.Ir.program -> t

(** Hooks, called with the machine's current cycle count. *)
val on_enter : t -> fid:int -> now:int -> unit

val on_leave : t -> fid:int -> now:int -> unit

(** Close attribution at the end of the run. *)
val finish : t -> now:int -> unit

(** Entries sorted by exclusive cycles, hottest first. *)
val hottest : t -> entry list

(** Total attributed cycles (= run cycles once finished). *)
val total_cycles : t -> int
