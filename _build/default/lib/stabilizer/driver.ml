let compile ~opt p =
  let compiled = Stz_vm.Opt.apply opt p in
  Stz_vm.Validate.check_exn compiled;
  compiled

let build_and_run ?limits ~config ~opt ~base_seed ~runs ~args p =
  Sample.collect ?limits ~config ~base_seed ~runs ~args (compile ~opt p)

let compare_opt_levels ?alpha ?limits ~config ~base_seed ~runs ~args la lb p =
  let a = build_and_run ?limits ~config ~opt:la ~base_seed ~runs ~args p in
  let b =
    build_and_run ?limits ~config ~opt:lb
      ~base_seed:(Int64.add base_seed 0x0B5EEDL)
      ~runs ~args p
  in
  Experiment.compare_samples ?alpha a.Sample.times b.Sample.times
