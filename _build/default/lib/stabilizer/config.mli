(** STABILIZER run configuration. The three randomizations are
    independent (paper §2.5: "All of STABILIZER's randomizations
    (code, stack, and heap) can be enabled independently"), which is
    what lets a developer isolate a layout optimization from its
    incidental effects. *)

type link_order = Declaration | Random_link

type t = {
  code : bool;  (** randomize function placement at runtime *)
  stack : bool;  (** random inter-frame padding *)
  heap : bool;  (** shuffling layer over the base allocator *)
  rerandomize : bool;  (** re-randomize periodically (vs one-time) *)
  interval_cycles : int;
      (** re-randomization epoch length in simulated cycles. The paper
          uses 500 ms of wall-clock time; scaled to this simulator's
          shortened runs the default gives a comparable number of
          epochs per run (~30+, enough for the CLT). *)
  adaptive : bool;
      (** §8 future work: besides the timer, trigger a re-randomization
          when the current epoch's cache-miss + branch-misprediction
          rate exceeds [adaptive_threshold] times the run's average —
          i.e. detect an unlucky layout and escape it early. *)
  adaptive_threshold : float;
  shuffle_n : int;  (** shuffling-layer parameter N (paper: 256) *)
  base_allocator : Stz_alloc.Allocator.kind;
  granularity : Stz_layout.Code_rand.granularity;
      (** function granularity (the paper) or basic-block granularity
          with branch-sense randomization (the paper's §8 future work) *)
  reloc_style : Stz_layout.Code_rand.reloc_style;
      (** x86-64 adjacent relocation tables, or the fixed-absolute-
          address tables of PowerPC / 32-bit x86 (§3.5) *)
  link_order : link_order;  (** static layout of the unrandomized build *)
  env_bytes : int;  (** environment-block size (shifts the stack base) *)
}

(** Everything on: code+stack+heap randomization with re-randomization,
    segregated base heap, N = 256, function granularity. *)
val stabilizer : t

(** Everything off: a plain deterministic build. *)
val baseline : t

(** One-time randomization: like [stabilizer] but no re-randomization. *)
val one_time : t

(** Named partial configurations from Figure 6. *)
val code_only : t

val code_stack : t

(** Short name like "code.heap.stack" / "baseline", for reports. *)
val describe : t -> string
