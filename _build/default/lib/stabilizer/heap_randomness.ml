module Tests = Stz_nist.Tests
module Bitseq = Stz_nist.Bitseq

type report = {
  subject : string;
  lo_bit : int;
  hi_bit : int;
  outcomes : Tests.outcome list;
  passed : int;
  total : int;
}

let default_samples = 32768
let block = 64

let make subject ~lo ~hi addrs =
  let seq = Bitseq.of_addresses ~lo ~hi addrs in
  let outcomes = Tests.all ~alpha:0.01 seq in
  let passed, total = Tests.summary outcomes in
  { subject; lo_bit = lo; hi_bit = hi; outcomes; passed; total }

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

(* The highest bit a shuffle pool of n blocks can randomize. *)
let window_hi n = 6 + Stdlib.max 1 (log2 n) - 1

let fresh_arena () = Stz_alloc.Arena.create ~base:0x1000_0000 ~size:(1 lsl 28)

let lrand48 ?(samples = default_samples) ~seed () =
  let g = Stz_prng.Lrand48.create ~seed:(Int64.to_int seed) in
  let addrs = Array.init samples (fun _ -> Stz_prng.Lrand48.next g) in
  make "lrand48" ~lo:6 ~hi:17 addrs

let diehard ?(samples = default_samples) ~seed () =
  let alloc =
    Stz_alloc.Diehard.create
      ~source:(Stz_prng.Source.marsaglia ~seed)
      (fresh_arena ())
  in
  (* Steady mixed population: half the initial objects are freed so
     regions are fragmented, then the allocation stream is observed. *)
  let live = Array.init 16384 (fun _ -> alloc.Stz_alloc.Allocator.malloc block) in
  Array.iteri
    (fun i a -> if i land 1 = 0 then alloc.Stz_alloc.Allocator.free a)
    live;
  let addrs =
    Array.init samples (fun _ ->
        let a = alloc.Stz_alloc.Allocator.malloc block in
        alloc.Stz_alloc.Allocator.free a;
        a)
  in
  make "diehard" ~lo:6 ~hi:17 addrs

let alloc_stream alloc samples =
  Array.init samples (fun _ -> alloc.Stz_alloc.Allocator.malloc block)

let base ?(samples = default_samples) ?(n = 256) kind =
  let alloc = Stz_alloc.Factory.base kind (fresh_arena ()) in
  make
    (Stz_alloc.Allocator.kind_to_string kind)
    ~lo:6 ~hi:(window_hi n)
    (alloc_stream alloc samples)

let shuffled ?(samples = default_samples) ?(n = 256) ~seed kind =
  let alloc =
    Stz_alloc.Factory.randomized ~n
      ~source:(Stz_prng.Source.marsaglia ~seed)
      kind (fresh_arena ())
  in
  make
    (Printf.sprintf "shuffle(%s,N=%d)" (Stz_alloc.Allocator.kind_to_string kind) n)
    ~lo:6 ~hi:(window_hi n)
    (alloc_stream alloc samples)

let table ?(ns = [ 1; 4; 16; 64; 256 ]) ~seed () =
  [
    lrand48 ~seed ();
    diehard ~seed ();
    base ~n:256 Stz_alloc.Allocator.Segregated;
  ]
  @ List.map (fun n -> shuffled ~n ~seed Stz_alloc.Allocator.Segregated) ns

let pp_report fmt r =
  Format.fprintf fmt "%-22s bits %2d-%2d  %d/%d  [%s]" r.subject r.lo_bit
    r.hi_bit r.passed r.total
    (String.concat " "
       (List.map
          (fun (o : Tests.outcome) ->
            Printf.sprintf "%s:%s" o.Tests.name (if o.Tests.pass then "pass" else "FAIL"))
          r.outcomes))
