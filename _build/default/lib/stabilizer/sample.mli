(** Repeated-run sampling. Each run gets an independent seed derived
    from [base_seed], so the sample is drawn over the space of layouts
    — the paper's point that a single binary is a single layout sample
    no matter how many times it runs. *)

type t = {
  times : float array;  (** virtual seconds per run *)
  cycles : int array;
  results : Runtime.result array;
}

val collect :
  ?limits:Stz_vm.Interp.limits ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  t

(** Convenience: just the times. *)
val times :
  ?limits:Stz_vm.Interp.limits ->
  config:Config.t ->
  base_seed:int64 ->
  runs:int ->
  args:int list ->
  Stz_vm.Ir.program ->
  float array
