lib/stabilizer/runtime.mli: Config Profiler Stz_alloc Stz_machine Stz_vm
