lib/stabilizer/profiler.ml: Array List Stz_vm
