lib/stabilizer/experiment.mli: Config Stz_stats Stz_vm
