lib/stabilizer/profiler.mli: Stz_vm
