lib/stabilizer/config.ml: List String Stz_alloc Stz_layout
