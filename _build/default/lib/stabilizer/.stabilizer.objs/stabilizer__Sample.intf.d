lib/stabilizer/sample.mli: Config Runtime Stz_vm
