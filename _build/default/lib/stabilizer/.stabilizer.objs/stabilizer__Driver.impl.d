lib/stabilizer/driver.ml: Experiment Int64 Sample Stz_vm
