lib/stabilizer/runtime.ml: Array Config Option Profiler Stz_alloc Stz_layout Stz_machine Stz_prng Stz_vm
