lib/stabilizer/sample.ml: Array Runtime Stz_prng
