lib/stabilizer/driver.mli: Config Experiment Sample Stz_vm
