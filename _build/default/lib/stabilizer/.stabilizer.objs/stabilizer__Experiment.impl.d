lib/stabilizer/experiment.ml: Array Int64 Printf Sample Stz_stats
