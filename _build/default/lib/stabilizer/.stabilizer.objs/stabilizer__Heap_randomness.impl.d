lib/stabilizer/heap_randomness.ml: Array Format Int64 List Printf Stdlib String Stz_alloc Stz_nist Stz_prng
