lib/stabilizer/report.mli: Sample
