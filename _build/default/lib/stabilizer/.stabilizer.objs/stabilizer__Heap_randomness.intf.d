lib/stabilizer/heap_randomness.mli: Format Stz_alloc Stz_nist
