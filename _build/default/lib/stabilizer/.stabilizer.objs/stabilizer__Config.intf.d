lib/stabilizer/config.mli: Stz_alloc Stz_layout
