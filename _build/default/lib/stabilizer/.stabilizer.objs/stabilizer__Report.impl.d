lib/stabilizer/report.ml: Array Buffer List Printf Sample Stdlib String Stz_stats
