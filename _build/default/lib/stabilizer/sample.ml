type t = {
  times : float array;
  cycles : int array;
  results : Runtime.result array;
}

let collect ?limits ~config ~base_seed ~runs ~args p =
  if runs < 1 then invalid_arg "Sample.collect: runs must be >= 1";
  let seeds = Stz_prng.Splitmix.create base_seed in
  let results =
    Array.init runs (fun _ ->
        let seed = Stz_prng.Splitmix.split seeds in
        Runtime.run ?limits ~config ~seed p ~args)
  in
  {
    times = Array.map (fun r -> r.Runtime.virtual_seconds) results;
    cycles = Array.map (fun r -> r.Runtime.cycles) results;
    results;
  }

let times ?limits ~config ~base_seed ~runs ~args p =
  (collect ?limits ~config ~base_seed ~runs ~args p).times
