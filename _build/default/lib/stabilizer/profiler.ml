type entry = { fid : int; name : string; calls : int; exclusive_cycles : int }

type t = {
  names : string array;
  calls : int array;
  cycles : int array;
  mutable stack : int list;  (** fids of live activations *)
  mutable mark : int;  (** cycle count at the last attribution point *)
}

let create p =
  {
    names = Array.map (fun f -> f.Stz_vm.Ir.fname) p.Stz_vm.Ir.funcs;
    calls = Array.make (Array.length p.Stz_vm.Ir.funcs) 0;
    cycles = Array.make (Array.length p.Stz_vm.Ir.funcs) 0;
    stack = [];
    mark = 0;
  }

let attribute t ~now =
  (match t.stack with
  | fid :: _ -> t.cycles.(fid) <- t.cycles.(fid) + (now - t.mark)
  | [] -> ());
  t.mark <- now

let on_enter t ~fid ~now =
  attribute t ~now;
  t.calls.(fid) <- t.calls.(fid) + 1;
  t.stack <- fid :: t.stack

let on_leave t ~fid ~now =
  attribute t ~now;
  match t.stack with
  | top :: rest when top = fid -> t.stack <- rest
  | _ -> invalid_arg "Profiler.on_leave: mismatched exit"

let finish t ~now = attribute t ~now

let hottest t =
  let entries =
    Array.to_list
      (Array.mapi
         (fun fid name ->
           { fid; name; calls = t.calls.(fid); exclusive_cycles = t.cycles.(fid) })
         t.names)
  in
  List.sort (fun a b -> compare b.exclusive_cycles a.exclusive_cycles) entries

let total_cycles t = Array.fold_left ( + ) 0 t.cycles
