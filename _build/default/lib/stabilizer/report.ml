module Desc = Stz_stats.Desc

let csv_of_sample (s : Sample.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "run,seconds,cycles\n";
  Array.iteri
    (fun i t -> Buffer.add_string buf (Printf.sprintf "%d,%.9f,%d\n" i t s.Sample.cycles.(i)))
    s.Sample.times;
  Buffer.contents buf

let csv_of_series series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "label,run,seconds\n";
  List.iter
    (fun (label, times) ->
      Array.iteri
        (fun i t -> Buffer.add_string buf (Printf.sprintf "%s,%d,%.9f\n" label i t))
        times)
    series;
  Buffer.contents buf

let summary_line xs =
  Printf.sprintf
    "n=%d min=%.6f q1=%.6f median=%.6f q3=%.6f max=%.6f mean=%.6f sd=%.6f"
    (Array.length xs) (Desc.min xs) (Desc.quantile xs 0.25) (Desc.median xs)
    (Desc.quantile xs 0.75) (Desc.max xs) (Desc.mean xs)
    (if Array.length xs >= 2 then Desc.std_dev xs else 0.0)

let ascii_histogram ?(bins = 10) ?(width = 50) xs =
  if Array.length xs = 0 then invalid_arg "Report.ascii_histogram: empty";
  if bins < 1 then invalid_arg "Report.ascii_histogram: bins must be >= 1";
  let lo = Desc.min xs and hi = Desc.max xs in
  let span = if hi > lo then hi -. lo else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = Stdlib.min (bins - 1) (int_of_float ((x -. lo) /. span *. float_of_int bins)) in
      counts.(b) <- counts.(b) + 1)
    xs;
  let peak = Array.fold_left Stdlib.max 1 counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun b c ->
      let from = lo +. (span *. float_of_int b /. float_of_int bins) in
      let bar = String.make (c * width / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "%12.6f | %-*s %d\n" from width bar c))
    counts;
  Buffer.contents buf
