type link_order = Declaration | Random_link

type t = {
  code : bool;
  stack : bool;
  heap : bool;
  rerandomize : bool;
  interval_cycles : int;
  adaptive : bool;
  adaptive_threshold : float;
  shuffle_n : int;
  base_allocator : Stz_alloc.Allocator.kind;
  granularity : Stz_layout.Code_rand.granularity;
  reloc_style : Stz_layout.Code_rand.reloc_style;
  link_order : link_order;
  env_bytes : int;
}

let stabilizer =
  {
    code = true;
    stack = true;
    heap = true;
    rerandomize = true;
    interval_cycles = 150_000;
    adaptive = false;
    adaptive_threshold = 1.5;
    shuffle_n = 256;
    base_allocator = Stz_alloc.Allocator.Segregated;
    granularity = Stz_layout.Code_rand.Function_grain;
    reloc_style = Stz_layout.Code_rand.Adjacent_table;
    link_order = Declaration;
    env_bytes = 0;
  }

let baseline =
  { stabilizer with code = false; stack = false; heap = false; rerandomize = false }

let one_time = { stabilizer with rerandomize = false }
let code_only = { stabilizer with stack = false; heap = false }
let code_stack = { stabilizer with heap = false }

let describe t =
  let parts =
    List.filter_map
      (fun (on, name) -> if on then Some name else None)
      [ (t.code, "code"); (t.heap, "heap"); (t.stack, "stack") ]
  in
  let body = match parts with [] -> "baseline" | _ -> String.concat "." parts in
  if t.rerandomize && parts <> [] then body
  else if parts <> [] then body ^ ".onetime"
  else body
