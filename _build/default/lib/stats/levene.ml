type result = { f : float; df1 : float; df2 : float; p_value : float }

let run ~center groups =
  let k = List.length groups in
  if k < 2 then invalid_arg "Levene: needs >= 2 groups";
  List.iter
    (fun g ->
      if Array.length g < 2 then invalid_arg "Levene: each group needs >= 2 samples")
    groups;
  (* z_ij = |x_ij - center_i|; then one-way ANOVA on the z values. *)
  let zs = List.map (fun g ->
      let c = center g in
      Array.map (fun x -> abs_float (x -. c)) g)
      groups
  in
  let n_total = List.fold_left (fun acc g -> acc + Array.length g) 0 zs in
  let grand_mean =
    List.fold_left (fun acc g -> acc +. Array.fold_left ( +. ) 0.0 g) 0.0 zs
    /. float_of_int n_total
  in
  let ss_between =
    List.fold_left
      (fun acc g ->
        let m = Desc.mean g in
        acc +. (float_of_int (Array.length g) *. (m -. grand_mean) *. (m -. grand_mean)))
      0.0 zs
  in
  let ss_within =
    List.fold_left
      (fun acc g ->
        let m = Desc.mean g in
        acc +. Array.fold_left (fun a z -> a +. ((z -. m) *. (z -. m))) 0.0 g)
      0.0 zs
  in
  let df1 = float_of_int (k - 1) in
  let df2 = float_of_int (n_total - k) in
  let f = ss_between /. df1 /. (ss_within /. df2) in
  { f; df1; df2; p_value = Dist.F_dist.sf ~df1 ~df2 f }

let brown_forsythe groups = run ~center:Desc.median groups
let levene_mean groups = run ~center:Desc.mean groups
