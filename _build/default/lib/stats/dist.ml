module Normal = struct
  let sqrt2 = sqrt 2.0
  let pdf x = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi)
  let cdf x = 0.5 *. Special.erfc (-.x /. sqrt2)
  let sf x = 0.5 *. Special.erfc (x /. sqrt2)

  (* Acklam's inverse-normal rational approximation. *)
  let a =
    [|
      -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
      1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00;
    |]

  let b =
    [|
      -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
      6.680131188771972e+01; -1.328068155288572e+01;
    |]

  let c =
    [|
      -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
      -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00;
    |]

  let d =
    [|
      7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
      3.754408661907416e+00;
    |]

  let quantile p =
    if not (p > 0.0 && p < 1.0) then
      invalid_arg "Dist.Normal.quantile: requires p in (0,1)";
    let p_low = 0.02425 in
    let p_high = 1.0 -. p_low in
    let x =
      if p < p_low then begin
        let q = sqrt (-2.0 *. log p) in
        (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
        *. q +. c.(5)
        |> fun num ->
        num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
      end
      else if p <= p_high then begin
        let q = p -. 0.5 in
        let r = q *. q in
        ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
         *. r +. a.(5))
        *. q
        /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
            *. r +. 1.0)
      end
      else begin
        let q = sqrt (-2.0 *. log (1.0 -. p)) in
        -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
           *. q +. c.(5))
        /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
      end
    in
    (* One Halley refinement step sharpens the approximation to near
       machine precision. *)
    let e = cdf x -. p in
    let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
    x -. (u /. (1.0 +. (x *. u /. 2.0)))
end

module Student_t = struct
  let cdf ~df t =
    if df <= 0.0 then invalid_arg "Dist.Student_t.cdf: requires df > 0";
    let x = df /. (df +. (t *. t)) in
    let p = 0.5 *. Special.beta_inc (df /. 2.0) 0.5 x in
    if t >= 0.0 then 1.0 -. p else p

  let p_two_sided ~df t =
    let x = df /. (df +. (t *. t)) in
    Special.beta_inc (df /. 2.0) 0.5 x

  let quantile ~df p =
    if not (p > 0.0 && p < 1.0) then
      invalid_arg "Dist.Student_t.quantile: requires p in (0,1)";
    if p = 0.5 then 0.0
    else begin
      (* Bracket, then bisect: the CDF is strictly increasing. *)
      let hi = ref 1.0 in
      while cdf ~df !hi < p && !hi < 1e8 do
        hi := !hi *. 2.0
      done;
      let lo = ref (-. !hi) in
      while cdf ~df !lo > p && !lo > -1e8 do
        lo := !lo *. 2.0
      done;
      let lo = ref !lo and hi = ref !hi in
      for _ = 1 to 200 do
        let mid = (!lo +. !hi) /. 2.0 in
        if cdf ~df mid < p then lo := mid else hi := mid
      done;
      (!lo +. !hi) /. 2.0
    end
end

module F_dist = struct
  let cdf ~df1 ~df2 x =
    if df1 <= 0.0 || df2 <= 0.0 then
      invalid_arg "Dist.F_dist.cdf: requires df1, df2 > 0";
    if x <= 0.0 then 0.0
    else
      Special.beta_inc (df1 /. 2.0) (df2 /. 2.0)
        (df1 *. x /. ((df1 *. x) +. df2))

  let sf ~df1 ~df2 x =
    if x <= 0.0 then 1.0
    else
      Special.beta_inc (df2 /. 2.0) (df1 /. 2.0) (df2 /. ((df1 *. x) +. df2))
end

module Chi2 = struct
  let cdf ~df x =
    if df <= 0.0 then invalid_arg "Dist.Chi2.cdf: requires df > 0";
    if x <= 0.0 then 0.0 else Special.gamma_p (df /. 2.0) (x /. 2.0)

  let sf ~df x =
    if x <= 0.0 then 1.0 else Special.gamma_q (df /. 2.0) (x /. 2.0)
end
