(** Student's t-tests, the paper's tool for evaluating a single code
    change (§2.4): the null hypothesis is that the two sample sets come
    from distributions with equal means. *)

type result = {
  t : float;  (** test statistic *)
  df : float;  (** degrees of freedom (possibly fractional, Welch) *)
  p_value : float;  (** two-sided p-value *)
  mean_difference : float;  (** mean a - mean b (or mean - mu) *)
}

(** Classic two-sample t-test with pooled variance (assumes equal
    variances). Requires >= 2 samples on each side. *)
val two_sample : float array -> float array -> result

(** Welch's t-test (unequal variances, Welch-Satterthwaite df). *)
val welch : float array -> float array -> result

(** One-sample test of H0: mean = [mu]. *)
val one_sample : mu:float -> float array -> result

(** Paired test; arrays must have equal length >= 2. *)
val paired : float array -> float array -> result

(** [significant ~alpha r] is [r.p_value < alpha]. *)
val significant : alpha:float -> result -> bool
