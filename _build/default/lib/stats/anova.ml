type result = {
  f : float;
  df_treatment : float;
  df_error : float;
  p_value : float;
  ss_treatment : float;
  ss_error : float;
  ss_subjects : float;
  eta_squared : float;
}

let finish ~f ~df1 ~df2 ~ss_t ~ss_e ~ss_s =
  {
    f;
    df_treatment = df1;
    df_error = df2;
    p_value = Dist.F_dist.sf ~df1 ~df2 f;
    ss_treatment = ss_t;
    ss_error = ss_e;
    ss_subjects = ss_s;
    eta_squared = ss_t /. (ss_t +. ss_e);
  }

let within_subjects data =
  let n = Array.length data in
  if n < 2 then invalid_arg "Anova.within_subjects: needs >= 2 subjects";
  let k = Array.length data.(0) in
  if k < 2 then invalid_arg "Anova.within_subjects: needs >= 2 treatments";
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Anova.within_subjects: ragged data matrix")
    data;
  let fn = float_of_int n and fk = float_of_int k in
  let grand = ref 0.0 in
  Array.iter (Array.iter (fun x -> grand := !grand +. x)) data;
  let grand_mean = !grand /. (fn *. fk) in
  let treatment_mean j =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do acc := !acc +. data.(i).(j) done;
    !acc /. fn
  in
  let subject_mean i = Desc.mean data.(i) in
  let ss_treatment = ref 0.0 in
  for j = 0 to k - 1 do
    let d = treatment_mean j -. grand_mean in
    ss_treatment := !ss_treatment +. (fn *. d *. d)
  done;
  let ss_subjects = ref 0.0 in
  for i = 0 to n - 1 do
    let d = subject_mean i -. grand_mean in
    ss_subjects := !ss_subjects +. (fk *. d *. d)
  done;
  let ss_total = ref 0.0 in
  Array.iter
    (Array.iter (fun x ->
         let d = x -. grand_mean in
         ss_total := !ss_total +. (d *. d)))
    data;
  let ss_error = !ss_total -. !ss_treatment -. !ss_subjects in
  let df1 = fk -. 1.0 in
  let df2 = (fn -. 1.0) *. (fk -. 1.0) in
  let f = !ss_treatment /. df1 /. (ss_error /. df2) in
  finish ~f ~df1 ~df2 ~ss_t:!ss_treatment ~ss_e:ss_error ~ss_s:!ss_subjects

let one_way groups =
  let k = List.length groups in
  if k < 2 then invalid_arg "Anova.one_way: needs >= 2 groups";
  List.iter
    (fun g ->
      if Array.length g < 2 then invalid_arg "Anova.one_way: group needs >= 2 samples")
    groups;
  let n_total = List.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  let grand_mean =
    List.fold_left (fun acc g -> acc +. Array.fold_left ( +. ) 0.0 g) 0.0 groups
    /. float_of_int n_total
  in
  let ss_between =
    List.fold_left
      (fun acc g ->
        let d = Desc.mean g -. grand_mean in
        acc +. (float_of_int (Array.length g) *. d *. d))
      0.0 groups
  in
  let ss_within =
    List.fold_left
      (fun acc g ->
        let m = Desc.mean g in
        acc +. Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 g)
      0.0 groups
  in
  let df1 = float_of_int (k - 1) in
  let df2 = float_of_int (n_total - k) in
  let f = ss_between /. df1 /. (ss_within /. df2) in
  finish ~f ~df1 ~df2 ~ss_t:ss_between ~ss_e:ss_within ~ss_s:0.0

let to_string r =
  Printf.sprintf "F(%g,%g) = %.3f, p = %.4f" r.df_treatment r.df_error r.f
    r.p_value
