(** Effect sizes and confidence intervals: the paper argues that
    significance alone is not enough — researchers also need effect
    magnitude. These helpers complement the hypothesis tests. *)

(** Cohen's d for two independent samples (pooled standard deviation).
    Conventional bands: 0.2 small, 0.5 medium, 0.8 large. *)
val cohen_d : float array -> float array -> float

(** Hedges' g: Cohen's d with the small-sample bias correction
    factor (1 - 3 / (4 (n1 + n2) - 9)). *)
val hedges_g : float array -> float array -> float

(** [mean_ci ?confidence xs] is the t-based confidence interval
    (low, high) for the mean (default confidence 0.95). Needs >= 2
    samples. *)
val mean_ci : ?confidence:float -> float array -> float * float

(** [bootstrap_ci ?confidence ?resamples ~seed ~statistic xs] is a
    percentile bootstrap interval for an arbitrary statistic (default
    2000 resamples). Deterministic given [seed]. *)
val bootstrap_ci :
  ?confidence:float ->
  ?resamples:int ->
  seed:int64 ->
  statistic:(float array -> float) ->
  float array ->
  float * float

(** [speedup_ci ?confidence ?resamples ~seed a b] bootstraps the ratio
    mean(a)/mean(b), the paper's speedup metric. *)
val speedup_ci :
  ?confidence:float ->
  ?resamples:int ->
  seed:int64 ->
  float array ->
  float array ->
  float * float
