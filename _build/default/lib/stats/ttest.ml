type result = { t : float; df : float; p_value : float; mean_difference : float }

let finish ~t ~df ~mean_difference =
  let p_value = Dist.Student_t.p_two_sided ~df t in
  { t; df; p_value; mean_difference }

let require_samples name n xs =
  if Array.length xs < n then
    invalid_arg (Printf.sprintf "Ttest.%s: needs >= %d samples" name n)

let two_sample a b =
  require_samples "two_sample" 2 a;
  require_samples "two_sample" 2 b;
  let na = float_of_int (Array.length a) in
  let nb = float_of_int (Array.length b) in
  let va = Desc.variance a in
  let vb = Desc.variance b in
  let pooled = (((na -. 1.0) *. va) +. ((nb -. 1.0) *. vb)) /. (na +. nb -. 2.0) in
  let se = sqrt (pooled *. ((1.0 /. na) +. (1.0 /. nb))) in
  let diff = Desc.mean a -. Desc.mean b in
  finish ~t:(diff /. se) ~df:(na +. nb -. 2.0) ~mean_difference:diff

let welch a b =
  require_samples "welch" 2 a;
  require_samples "welch" 2 b;
  let na = float_of_int (Array.length a) in
  let nb = float_of_int (Array.length b) in
  let va = Desc.variance a /. na in
  let vb = Desc.variance b /. nb in
  let se = sqrt (va +. vb) in
  let df =
    ((va +. vb) ** 2.0)
    /. ((va *. va /. (na -. 1.0)) +. (vb *. vb /. (nb -. 1.0)))
  in
  let diff = Desc.mean a -. Desc.mean b in
  finish ~t:(diff /. se) ~df ~mean_difference:diff

let one_sample ~mu xs =
  require_samples "one_sample" 2 xs;
  let n = float_of_int (Array.length xs) in
  let diff = Desc.mean xs -. mu in
  let se = Desc.std_dev xs /. sqrt n in
  finish ~t:(diff /. se) ~df:(n -. 1.0) ~mean_difference:diff

let paired a b =
  if Array.length a <> Array.length b then
    invalid_arg "Ttest.paired: arrays must have equal length";
  require_samples "paired" 2 a;
  let diffs = Array.init (Array.length a) (fun i -> a.(i) -. b.(i)) in
  one_sample ~mu:0.0 diffs

let significant ~alpha r = r.p_value < alpha
