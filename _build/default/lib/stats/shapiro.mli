(** The Shapiro-Wilk test of normality (Royston's AS R94 algorithm, the
    same approximation R and scipy use). This is the test the paper uses
    to check that STABILIZER makes execution times Gaussian (Table 1).

    Valid for 3 <= n <= 5000. The null hypothesis is that the samples
    are drawn from a normal distribution; small p-values reject it. *)

type result = {
  w : float;  (** W statistic in (0, 1]; near 1 for normal data *)
  p_value : float;
  n : int;
}

(** Raises [Invalid_argument] for n < 3, n > 5000, or zero-range data. *)
val test : float array -> result

(** [normal ~alpha xs] is true when normality is *not* rejected. *)
val normal : alpha:float -> float array -> bool
