lib/stats/power.ml: Dist Stdlib
