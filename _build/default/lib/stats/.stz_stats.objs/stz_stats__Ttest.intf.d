lib/stats/ttest.mli:
