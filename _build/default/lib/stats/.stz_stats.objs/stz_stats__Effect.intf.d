lib/stats/effect.mli:
