lib/stats/levene.mli:
