lib/stats/qq.ml: Array Buffer Desc Dist Stdlib
