lib/stats/effect.ml: Array Desc Dist Stz_prng
