lib/stats/anova.ml: Array Desc Dist List Printf
