lib/stats/dist.mli:
