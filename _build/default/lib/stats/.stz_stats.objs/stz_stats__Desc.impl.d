lib/stats/desc.ml: Array Stdlib
