lib/stats/levene.ml: Array Desc Dist List
