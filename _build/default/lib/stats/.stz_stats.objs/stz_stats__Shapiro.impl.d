lib/stats/shapiro.ml: Array Desc Dist Float Stdlib
