lib/stats/desc.mli:
