lib/stats/qq.mli:
