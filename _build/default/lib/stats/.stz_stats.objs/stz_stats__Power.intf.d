lib/stats/power.mli:
