lib/stats/anova.mli:
