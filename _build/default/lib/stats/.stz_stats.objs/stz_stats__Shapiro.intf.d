lib/stats/shapiro.mli:
