lib/stats/ttest.ml: Array Desc Dist Printf
