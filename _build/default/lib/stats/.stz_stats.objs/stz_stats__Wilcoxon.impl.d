lib/stats/wilcoxon.ml: Array Desc Dist List Stdlib
