lib/stats/wilcoxon.mli:
