lib/stats/special.mli:
