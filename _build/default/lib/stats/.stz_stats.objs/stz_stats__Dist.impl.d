lib/stats/dist.ml: Array Float Special
