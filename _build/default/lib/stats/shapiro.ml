(* Royston (1995), Applied Statistics algorithm AS R94. The polynomial
   coefficients below are Royston's published constants, identical to
   those in R's swilk.c. *)

type result = { w : float; p_value : float; n : int }

(* Evaluate c.(0) + c.(1) x + c.(2) x^2 + ... *)
let poly c x =
  let acc = ref 0.0 in
  for i = Array.length c - 1 downto 0 do
    acc := (!acc *. x) +. c.(i)
  done;
  !acc

let c1 = [| 0.0; 0.221157; -0.147981; -2.071190; 4.434685; -2.706056 |]
let c2 = [| 0.0; 0.042981; -0.293762; -1.752461; 5.682633; -3.582633 |]
let c3 = [| 0.544; -0.39978; 0.025054; -6.714e-4 |]
let c4 = [| 1.3822; -0.77857; 0.062767; -0.0020322 |]
let c5 = [| -1.5861; -0.31082; -0.083751; 0.0038915 |]
let c6 = [| -0.4803; -0.082676; 0.0030302 |]

let weights n =
  let fn = float_of_int n in
  let m =
    Array.init n (fun i ->
        Dist.Normal.quantile ((float_of_int (i + 1) -. 0.375) /. (fn +. 0.25)))
  in
  let ssumm2 = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 m in
  let rsn = 1.0 /. sqrt fn in
  let a = Array.map (fun v -> v /. sqrt ssumm2) m in
  if n > 5 then begin
    let an = a.(n - 1) +. poly c1 rsn in
    let an1 = a.(n - 2) +. poly c2 rsn in
    let phi =
      (ssumm2 -. (2.0 *. m.(n - 1) *. m.(n - 1)) -. (2.0 *. m.(n - 2) *. m.(n - 2)))
      /. (1.0 -. (2.0 *. an *. an) -. (2.0 *. an1 *. an1))
    in
    for i = 2 to n - 3 do
      a.(i) <- m.(i) /. sqrt phi
    done;
    a.(n - 1) <- an;
    a.(n - 2) <- an1;
    a.(0) <- -.an;
    a.(1) <- -.an1
  end
  else if n > 3 then begin
    let an = a.(n - 1) +. poly c1 rsn in
    let phi =
      (ssumm2 -. (2.0 *. m.(n - 1) *. m.(n - 1))) /. (1.0 -. (2.0 *. an *. an))
    in
    for i = 1 to n - 2 do
      a.(i) <- m.(i) /. sqrt phi
    done;
    a.(n - 1) <- an;
    a.(0) <- -.an
  end;
  (* n = 3 keeps the normalized m directly: a = (-1/sqrt 2, 0, 1/sqrt 2). *)
  a

let test xs =
  let n = Array.length xs in
  if n < 3 then invalid_arg "Shapiro.test: needs n >= 3";
  if n > 5000 then invalid_arg "Shapiro.test: n > 5000 unsupported";
  let x = Desc.sorted xs in
  if x.(n - 1) -. x.(0) <= 0.0 then
    invalid_arg "Shapiro.test: sample range is zero";
  let a = weights n in
  let xbar = Desc.mean x in
  let numerator = ref 0.0 in
  let denominator = ref 0.0 in
  for i = 0 to n - 1 do
    numerator := !numerator +. (a.(i) *. x.(i));
    denominator := !denominator +. ((x.(i) -. xbar) *. (x.(i) -. xbar))
  done;
  let w = !numerator *. !numerator /. !denominator in
  let w = Stdlib.min w 1.0 in
  let fn = float_of_int n in
  let p_value =
    if n = 3 then begin
      let pi6 = 6.0 /. Float.pi in
      let small_w = 0.75 in
      let p = pi6 *. (asin (sqrt w) -. asin (sqrt small_w)) in
      Stdlib.max 0.0 (Stdlib.min 1.0 p)
    end
    else if n <= 11 then begin
      let gamma = (0.459 *. fn) -. 2.273 in
      let w' = -.log (gamma -. log (1.0 -. w)) in
      let mu = poly c3 fn in
      let sigma = exp (poly c4 fn) in
      Dist.Normal.sf ((w' -. mu) /. sigma)
    end
    else begin
      let ln1w = log (1.0 -. w) in
      let lnn = log fn in
      let mu = poly c5 lnn in
      let sigma = exp (poly c6 lnn) in
      Dist.Normal.sf ((ln1w -. mu) /. sigma)
    end
  in
  { w; p_value; n }

let normal ~alpha xs = (test xs).p_value >= alpha
