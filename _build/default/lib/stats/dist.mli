(** Probability distributions used by the hypothesis tests: the standard
    normal, Student's t, Fisher's F and the chi-squared distribution. *)

module Normal : sig
  (** Density of the standard normal. *)
  val pdf : float -> float

  (** CDF of the standard normal. *)
  val cdf : float -> float

  (** Upper tail 1 - CDF, accurate for large arguments. *)
  val sf : float -> float

  (** Quantile (inverse CDF) for p in (0, 1); Acklam's rational
      approximation refined with one Halley step, giving near
      double-precision accuracy. *)
  val quantile : float -> float
end

module Student_t : sig
  (** [cdf ~df t] for df > 0. *)
  val cdf : df:float -> float -> float

  (** Two-sided p-value: P(|T| >= |t|). *)
  val p_two_sided : df:float -> float -> float

  (** Quantile (inverse CDF) for p in (0, 1), by bisection on the CDF;
      used for confidence intervals. *)
  val quantile : df:float -> float -> float
end

module F_dist : sig
  (** [cdf ~df1 ~df2 x] for df1, df2 > 0, x >= 0. *)
  val cdf : df1:float -> df2:float -> float -> float

  (** Upper-tail p-value P(F >= x), the usual ANOVA p-value. *)
  val sf : df1:float -> df2:float -> float -> float
end

module Chi2 : sig
  (** [cdf ~df x]. *)
  val cdf : df:float -> float -> float

  (** Upper-tail p-value P(X >= x). *)
  val sf : df:float -> float -> float
end
