let cohen_d a b =
  if Array.length a < 2 || Array.length b < 2 then
    invalid_arg "Effect.cohen_d: needs >= 2 samples each";
  let na = float_of_int (Array.length a) in
  let nb = float_of_int (Array.length b) in
  let pooled =
    sqrt
      ((((na -. 1.0) *. Desc.variance a) +. ((nb -. 1.0) *. Desc.variance b))
      /. (na +. nb -. 2.0))
  in
  if pooled = 0.0 then invalid_arg "Effect.cohen_d: zero pooled variance";
  (Desc.mean a -. Desc.mean b) /. pooled

let hedges_g a b =
  let n = float_of_int (Array.length a + Array.length b) in
  cohen_d a b *. (1.0 -. (3.0 /. ((4.0 *. n) -. 9.0)))

(* Two-sided t critical value. *)
let t_critical ~df p =
  Dist.Student_t.quantile ~df (1.0 -. ((1.0 -. p) /. 2.0))

let mean_ci ?(confidence = 0.95) xs =
  if Array.length xs < 2 then invalid_arg "Effect.mean_ci: needs >= 2 samples";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Effect.mean_ci: confidence must be in (0,1)";
  let df = float_of_int (Array.length xs - 1) in
  let half = t_critical ~df confidence *. Desc.std_error xs in
  let m = Desc.mean xs in
  (m -. half, m +. half)

let resample rng xs out =
  let n = Array.length xs in
  for i = 0 to Array.length out - 1 do
    out.(i) <- xs.(Stz_prng.Xorshift.next_int rng n)
  done

let bootstrap_ci ?(confidence = 0.95) ?(resamples = 2000) ~seed ~statistic xs =
  if Array.length xs < 2 then invalid_arg "Effect.bootstrap_ci: needs >= 2 samples";
  let rng = Stz_prng.Xorshift.create ~seed in
  let scratch = Array.make (Array.length xs) 0.0 in
  let stats =
    Array.init resamples (fun _ ->
        resample rng xs scratch;
        statistic scratch)
  in
  let lo = (1.0 -. confidence) /. 2.0 in
  (Desc.quantile stats lo, Desc.quantile stats (1.0 -. lo))

let speedup_ci ?(confidence = 0.95) ?(resamples = 2000) ~seed a b =
  if Array.length a < 2 || Array.length b < 2 then
    invalid_arg "Effect.speedup_ci: needs >= 2 samples each";
  let rng = Stz_prng.Xorshift.create ~seed in
  let sa = Array.make (Array.length a) 0.0 in
  let sb = Array.make (Array.length b) 0.0 in
  let stats =
    Array.init resamples (fun _ ->
        resample rng a sa;
        resample rng b sb;
        Desc.mean sa /. Desc.mean sb)
  in
  let lo = (1.0 -. confidence) /. 2.0 in
  (Desc.quantile stats lo, Desc.quantile stats (1.0 -. lo))
