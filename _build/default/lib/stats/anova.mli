(** Analysis of variance. The paper's suite-wide evaluation (§6.1) is a
    one-way *within-subjects* (repeated measures) ANOVA: each benchmark
    is a subject measured under every treatment (optimization level),
    and between-benchmark differences are partitioned out so they do not
    contaminate the treatment effect. *)

type result = {
  f : float;  (** F statistic for the treatment effect *)
  df_treatment : float;
  df_error : float;
  p_value : float;  (** upper-tail P(F' >= f) *)
  ss_treatment : float;
  ss_error : float;
  ss_subjects : float;  (** 0 for the between-subjects variant *)
  eta_squared : float;  (** partial effect size SS_t / (SS_t + SS_e) *)
}

(** [within_subjects data] where [data.(i).(j)] is subject [i]'s
    response under treatment [j]. Requires >= 2 subjects, >= 2
    treatments, and a rectangular matrix. *)
val within_subjects : float array array -> result

(** Classic one-way between-subjects ANOVA over independent groups. *)
val one_way : float array list -> result

(** Pretty one-line summary, e.g. ["F(1,17) = 6.106, p = 0.0243"]. *)
val to_string : result -> string
