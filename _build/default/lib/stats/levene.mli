(** The Brown-Forsythe test for homogeneity of variance — Levene's test
    with group medians as centers, robust to non-normality. The paper
    uses it (Table 1) to show re-randomization usually *reduces*
    variance relative to one-time randomization. *)

type result = {
  f : float;  (** F statistic *)
  df1 : float;
  df2 : float;
  p_value : float;
}

(** [brown_forsythe groups] for >= 2 groups, each with >= 2 samples. *)
val brown_forsythe : float array list -> result

(** Classic Levene variant with group means as centers. *)
val levene_mean : float array list -> result
