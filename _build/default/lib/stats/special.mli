(** Special functions underlying the distribution CDFs: log-gamma,
    regularized incomplete gamma and beta functions, and the error
    function. Implementations follow the standard Lanczos / continued
    fraction / series formulations (Numerical Recipes style). *)

(** Natural log of the gamma function, for x > 0. *)
val log_gamma : float -> float

(** Regularized lower incomplete gamma P(a, x), for a > 0, x >= 0. *)
val gamma_p : float -> float -> float

(** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). *)
val gamma_q : float -> float -> float

(** Regularized incomplete beta I_x(a, b), for a, b > 0, x in [0, 1]. *)
val beta_inc : float -> float -> float -> float

(** Error function. *)
val erf : float -> float

(** Complementary error function, accurate for large arguments. *)
val erfc : float -> float
