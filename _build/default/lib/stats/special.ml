(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: requires x > 0";
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let max_iterations = 300
let epsilon = 3e-14
let tiny = 1e-300

(* Series representation of P(a,x), valid for x < a + 1. *)
let gamma_p_series a x =
  let rec loop n term sum =
    if n > max_iterations then sum
    else begin
      let term = term *. x /. (a +. float_of_int n) in
      let sum = sum +. term in
      if abs_float term < abs_float sum *. epsilon then sum
      else loop (n + 1) term sum
    end
  in
  let first = 1.0 /. a in
  let sum = loop 1 first first in
  sum *. exp ((a *. log x) -. x -. log_gamma a)

(* Continued fraction for Q(a,x), valid for x >= a + 1 (modified Lentz). *)
let gamma_q_cf a x =
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  (try
     for i = 1 to max_iterations do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.0;
       d := (an *. !d) +. !b;
       if abs_float !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if abs_float !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if abs_float (delta -. 1.0) < epsilon then raise Exit
     done
   with Exit -> ());
  !h *. exp ((a *. log x) -. x -. log_gamma a)

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: requires a > 0";
  if x < 0.0 then invalid_arg "Special.gamma_p: requires x >= 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

let gamma_q a x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: requires a > 0";
  if x < 0.0 then invalid_arg "Special.gamma_q: requires x >= 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_cf a x

(* Continued fraction for the incomplete beta function (modified Lentz). *)
let beta_cf a b x =
  let qab = a +. b in
  let qap = a +. 1.0 in
  let qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if abs_float !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iterations do
       let fm = float_of_int m in
       let m2 = 2.0 *. fm in
       let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1.0 +. (aa *. !d);
       if abs_float !d < tiny then d := tiny;
       c := 1.0 +. (aa /. !c);
       if abs_float !c < tiny then c := tiny;
       d := 1.0 /. !d;
       h := !h *. !d *. !c;
       let aa = -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2)) in
       d := 1.0 +. (aa *. !d);
       if abs_float !d < tiny then d := tiny;
       c := 1.0 +. (aa /. !c);
       if abs_float !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if abs_float (delta -. 1.0) < epsilon then raise Exit
     done
   with Exit -> ());
  !h

let beta_inc a b x =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Special.beta_inc: requires a, b > 0";
  if x < 0.0 || x > 1.0 then invalid_arg "Special.beta_inc: requires x in [0,1]";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let front =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    (* Use the fraction directly where it converges fast, else symmetry. *)
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. beta_cf a b x /. a
    else 1.0 -. (front *. beta_cf b a (1.0 -. x) /. b)
  end

let erf x =
  if x >= 0.0 then gamma_p 0.5 (x *. x) else -.gamma_p 0.5 (x *. x)

let erfc x =
  if x >= 0.0 then gamma_q 0.5 (x *. x) else 1.0 +. gamma_p 0.5 (x *. x)
