(** The POSIX [lrand48] linear congruential generator (48-bit state,
    exact glibc constants). Included as a comparison subject for the
    NIST randomness evaluation in the paper's §3.2. *)

type t

(** [create ~seed] matches [srand48]: the high 32 bits of the state are
    the seed's low 32 bits, the low 16 bits are 0x330E. *)
val create : seed:int -> t

(** Next value in [0, 2^31), as [lrand48] returns. *)
val next : t -> int
