(** SplitMix64: a fast, well-distributed 64-bit generator used to derive
    independent seeds for the other generators in this library. *)

type t

(** [create seed] starts a stream at [seed]. Any seed, including 0, is
    acceptable. *)
val create : int64 -> t

(** Next 64-bit value; advances the state. *)
val next : t -> int64

(** [split t] derives a fresh, statistically independent seed from [t],
    advancing [t]. *)
val split : t -> int64
