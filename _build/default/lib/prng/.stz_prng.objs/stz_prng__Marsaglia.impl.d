lib/prng/marsaglia.ml: Int64
