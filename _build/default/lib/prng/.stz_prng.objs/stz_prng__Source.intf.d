lib/prng/source.mli: Lrand48 Marsaglia Xorshift
