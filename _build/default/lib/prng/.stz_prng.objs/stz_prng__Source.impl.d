lib/prng/source.ml: Array Int64 Lrand48 Marsaglia Xorshift
