lib/prng/lrand48.mli:
