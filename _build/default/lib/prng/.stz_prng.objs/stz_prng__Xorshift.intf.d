lib/prng/xorshift.mli:
