lib/prng/splitmix.mli:
