lib/prng/lrand48.ml: Int64
