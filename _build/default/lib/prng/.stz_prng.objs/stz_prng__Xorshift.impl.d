lib/prng/xorshift.ml: Int64
