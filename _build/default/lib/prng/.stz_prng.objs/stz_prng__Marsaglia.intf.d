lib/prng/marsaglia.mli:
