(** A uniform interface over the generators in this library, so that
    consumers (allocators, the NIST suite, the layout engine) can be
    parameterized by any randomness source. *)

type t = {
  name : string;
  next_u32 : unit -> int;  (** uniform in [0, 2^32) *)
}

val of_marsaglia : Marsaglia.t -> t
val of_lrand48 : Lrand48.t -> t
val of_xorshift : Xorshift.t -> t

(** Convenience constructors seeded from a 64-bit seed. *)
val marsaglia : seed:int64 -> t

val lrand48 : seed:int64 -> t
val xorshift : seed:int64 -> t

(** [int t n] is uniform in [0, n). Requires [0 < n <= 2^32]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [shuffle_in_place t a] applies a Fisher-Yates shuffle to [a]. *)
val shuffle_in_place : t -> 'a array -> unit
