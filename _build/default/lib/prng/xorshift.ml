type t = { mutable state : int64 }

let create ~seed = { state = (if seed = 0L then 0x2545F4914F6CDD1DL else seed) }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let next_int t n =
  assert (n > 0);
  (* Take the top 62 bits so the value is a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let next_float t =
  (* 53 random bits scaled into [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0)
