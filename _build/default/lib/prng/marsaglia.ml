type t = { mutable z : int; mutable w : int }

let mask32 = 0xFFFFFFFF

let create ~seed =
  let z = Int64.to_int (Int64.logand seed 0xFFFFFFFFL) land mask32 in
  let w =
    Int64.to_int (Int64.logand (Int64.shift_right_logical seed 32) 0xFFFFFFFFL)
    land mask32
  in
  let z = if z = 0 then 362436069 else z in
  let w = if w = 0 then 521288629 else w in
  { z; w }

let next t =
  t.z <- (36969 * (t.z land 65535) + (t.z lsr 16)) land mask32;
  t.w <- (18000 * (t.w land 65535) + (t.w lsr 16)) land mask32;
  ((t.z lsl 16) + t.w) land mask32

let next_in t n =
  assert (n > 0);
  (* Rejection sampling to avoid modulo bias for large [n]. *)
  let limit = mask32 + 1 - ((mask32 + 1) mod n) in
  let rec draw () =
    let v = next t in
    if v < limit then v mod n else draw ()
  in
  draw ()
