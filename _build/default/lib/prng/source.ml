type t = { name : string; next_u32 : unit -> int }

let of_marsaglia g = { name = "marsaglia"; next_u32 = (fun () -> Marsaglia.next g) }

let of_lrand48 g =
  (* lrand48 yields 31 bits; combine two draws for a full 32-bit word so
     the interface is uniform across sources. *)
  let next () =
    let high = Lrand48.next g land 0xFFFF in
    let low = Lrand48.next g land 0xFFFF in
    (high lsl 16) lor low
  in
  { name = "lrand48"; next_u32 = next }

let of_xorshift g =
  let next () = Int64.to_int (Int64.shift_right_logical (Xorshift.next g) 32) in
  { name = "xorshift"; next_u32 = next }

let marsaglia ~seed = of_marsaglia (Marsaglia.create ~seed)
let lrand48 ~seed = of_lrand48 (Lrand48.create ~seed:(Int64.to_int seed))
let xorshift ~seed = of_xorshift (Xorshift.create ~seed)

let int t n =
  assert (n > 0);
  if n land (n - 1) = 0 then t.next_u32 () land (n - 1)
  else begin
    let range = 0x100000000 in
    let limit = range - (range mod n) in
    let rec draw () =
      let v = t.next_u32 () in
      if v < limit then v mod n else draw ()
    in
    draw ()
  end

let float t = float_of_int (t.next_u32 ()) /. 4294967296.0
let bool t = t.next_u32 () land 1 = 1

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
