(** Marsaglia's multiply-with-carry generator, as used by the DieHard
    allocator and by STABILIZER's runtime (paper §3.2). Two 16-bit
    multiply-with-carry streams are combined into one 32-bit output. *)

type t

(** [create ~seed] initializes both streams from the 64-bit [seed]
    (zero halves are remapped to fixed non-zero constants, since an
    all-zero MWC stream is a fixed point). *)
val create : seed:int64 -> t

(** Next 32-bit output in [0, 2^32). *)
val next : t -> int

(** [next_in t n] is uniform in [0, n). Requires [n > 0]. *)
val next_in : t -> int -> int
