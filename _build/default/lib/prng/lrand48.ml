type t = { mutable state : int64 }

let a = 0x5DEECE66DL
let c = 0xBL
let mask48 = 0xFFFFFFFFFFFFL

let create ~seed =
  let high = Int64.shift_left (Int64.of_int (seed land 0xFFFFFFFF)) 16 in
  { state = Int64.logor high 0x330EL }

let next t =
  t.state <- Int64.(logand (add (mul a t.state) c) mask48);
  (* lrand48 returns the high 31 bits of the 48-bit state. *)
  Int64.to_int (Int64.shift_right_logical t.state 17)
