(** xorshift64*: a small, fast 64-bit generator with good statistical
    quality; the default randomness source for the simulator itself
    (workload generation, layout draws) where speed matters. *)

type t

(** [create ~seed]; a zero seed is remapped to a fixed non-zero value. *)
val create : seed:int64 -> t

(** Next 64-bit output. *)
val next : t -> int64

(** [next_int t n] is uniform in [0, n). Requires [n > 0]. *)
val next_int : t -> int -> int

(** Uniform float in [0, 1). *)
val next_float : t -> float
