(** The 18 benchmark profiles mirroring the SPEC CPU2006 subset the
    paper evaluates (all C benchmarks except the exception-using C++
    ones, plus the Fortran benchmarks that built; §5). Traits follow
    what the paper reports per benchmark: gobmk/gcc/perlbench have many
    functions (stack-table pressure), cactusADM allocates many large
    arrays whose power-of-two rounding wastes space, mcf/lbm/libquantum
    are memory-bound, namd leans on small inlinable routines, etc. *)

val astar : Profile.t
val bzip2 : Profile.t
val cactusadm : Profile.t
val gcc : Profile.t
val gobmk : Profile.t
val gromacs : Profile.t
val h264ref : Profile.t
val hmmer : Profile.t
val lbm : Profile.t
val libquantum : Profile.t
val mcf : Profile.t
val milc : Profile.t
val namd : Profile.t
val perlbench : Profile.t
val sjeng : Profile.t
val sphinx3 : Profile.t
val wrf : Profile.t
val zeusmp : Profile.t

(** All 18, in the paper's (alphabetical) order. *)
val all : Profile.t list

(** Look up by name. *)
val find : string -> Profile.t option

(** SPEC-style input sizes: [`Test] (~10x shorter, for unit tests),
    [`Train] (~3x shorter), [`Ref] (the default profiles used by the
    bench harness). *)
val sized : [ `Test | `Train | `Ref ] -> Profile.t -> Profile.t
