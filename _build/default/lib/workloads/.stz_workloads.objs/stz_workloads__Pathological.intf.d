lib/workloads/pathological.mli: Stz_vm
