lib/workloads/profile.ml: Stdlib
