lib/workloads/pathological.ml: List Printf Stz_vm
