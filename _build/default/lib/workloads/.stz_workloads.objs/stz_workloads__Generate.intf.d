lib/workloads/generate.mli: Profile Stz_vm
