lib/workloads/profile.mli:
