lib/workloads/generate.ml: Array List Printf Profile Stdlib Stz_prng Stz_vm
