module Ir = Stz_vm.Ir
module B = Stz_vm.Builder

let default_args = [ 1 ]

(* ~half a way of straight-line code: body instructions dominate the
   size, so each hot function spans many consecutive i-cache sets. *)
let hot_body_instrs = 420
let iterations = 2500

let gen_hot ~fid ~bias =
  let b = B.func ~fid ~name:(Printf.sprintf "hot_%d" fid) ~n_args:1 ~frame_size:48 () in
  let acc = B.fresh_reg b in
  B.emit b (Ir.Mov (acc, Ir.Reg 0));
  (* A branch whose bias depends on the function, so aliased predictor
     entries interfere destructively. *)
  let parity = B.fresh_reg b in
  let cond = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.And, parity, Ir.Reg 0, Ir.Imm 7));
  B.emit b
    (Ir.Cmp ((if bias then Ir.Eq else Ir.Ne), cond, Ir.Reg parity, Ir.Imm 0));
  let extra = B.new_block b in
  let body = B.new_block b in
  B.emit b (Ir.Brc (Ir.Reg cond, extra, body));
  B.set_block b extra;
  let t = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Add, t, Ir.Reg acc, Ir.Imm 13));
  B.emit b (Ir.Bin (Ir.Or, acc, Ir.Reg acc, Ir.Reg t));
  B.emit b (Ir.Br body);
  B.set_block b body;
  for k = 1 to hot_body_instrs / 2 do
    let r = B.fresh_reg b in
    B.emit b (Ir.Bin (Ir.Add, r, Ir.Reg acc, Ir.Imm k));
    B.emit b (Ir.Bin (Ir.Xor, acc, Ir.Reg acc, Ir.Reg r))
  done;
  B.emit b (Ir.Ret (Ir.Reg acc));
  B.finish b

let gen_cold ~fid ~instrs =
  let b = B.func ~fid ~name:(Printf.sprintf "cold_%d" fid) ~n_args:1 () in
  let acc = B.fresh_reg b in
  B.emit b (Ir.Mov (acc, Ir.Reg 0));
  for k = 1 to instrs do
    let r = B.fresh_reg b in
    B.emit b (Ir.Bin (Ir.Add, r, Ir.Reg acc, Ir.Imm k));
    B.emit b (Ir.Bin (Ir.Xor, acc, Ir.Reg acc, Ir.Reg r))
  done;
  B.emit b (Ir.Ret (Ir.Reg acc));
  B.finish b

(* Cold sizes chosen relatively prime to the way span so permutations
   produce many distinct hot-function alignments. *)
let cold_sizes = [ 37; 211; 89; 463; 151; 331; 23; 271; 113; 401; 59; 191 ]

let program () =
  let hot_fids = [ 1; 2; 3 ] in
  let colds = List.mapi (fun i instrs -> gen_cold ~fid:(4 + i) ~instrs) cold_sizes in
  let hots = List.mapi (fun i fid -> gen_hot ~fid ~bias:(i mod 2 = 0)) hot_fids in
  let main =
    let b = B.func ~fid:0 ~name:"main" ~n_args:1 ~frame_size:32 () in
    let total = B.fresh_reg b in
    let i = B.fresh_reg b in
    B.emit b (Ir.Mov (total, Ir.Imm 0));
    B.emit b (Ir.Mov (i, Ir.Imm 0));
    let head = B.new_block b in
    let body = B.new_block b in
    let exit = B.new_block b in
    B.emit b (Ir.Br head);
    B.set_block b head;
    let c = B.fresh_reg b in
    B.emit b (Ir.Cmp (Ir.Lt, c, Ir.Reg i, Ir.Imm iterations));
    B.emit b (Ir.Brc (Ir.Reg c, body, exit));
    B.set_block b body;
    List.iter
      (fun fid ->
        let r = B.fresh_reg b in
        B.emit b (Ir.Call { fn = fid; args = [ Ir.Reg i ]; dst = r });
        B.emit b (Ir.Bin (Ir.Add, total, Ir.Reg total, Ir.Reg r)))
      hot_fids;
    B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
    B.emit b (Ir.Br head);
    B.set_block b exit;
    B.emit b (Ir.Ret (Ir.Reg total));
    B.finish b
  in
  let p = B.program ~funcs:((main :: hots) @ colds) ~globals:[] ~entry:0 in
  Stz_vm.Validate.check_exn p;
  p
