(** A layout-sensitivity stress program for the paper's introductory
    claim that merely permuting object-file link order can swing
    performance by tens of percent.

    Three hot functions, each roughly half an instruction-cache way in
    size, run in a tight round-robin. A dozen cold functions of wildly
    varying sizes sit between them in the image, so permuting the link
    order shifts the hot functions' relative alignment modulo the cache
    way span: in lucky orders they tile disjoint sets, in unlucky ones
    they stack three-deep in a 2-way cache and every iteration thrashes.
    Hot opposite-biased branch pairs add predictor aliasing on top. *)

val program : unit -> Stz_vm.Ir.program

(** Arguments for {!Stz_vm.Interp.run}. *)
val default_args : int list
