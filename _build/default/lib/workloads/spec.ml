let base = Profile.default

let astar =
  {
    base with
    Profile.name = "astar";
    heap_data_bias = 0.5;
    blocks_per_function = (6, 14);
    instrs_per_block = (16, 36);
    functions = 28;
    hot_functions = 5;
    branchiness = 0.7;
    heap_churn = 0.45;
    alloc_size_range = (32, 256);
    large_arrays = 2;
    large_array_size = 32768;
    data_stride = 48;
    iterations = 238;
    seed = 0xA57A12L;
  }

let bzip2 =
  {
    base with
    Profile.name = "bzip2";
    fold_material = 2;
    cse_material = 3;
    functions = 22;
    hot_functions = 8;
    branchiness = 0.6;
    globals = 16;
    global_size = 4096;
    data_stride = 32;
    heap_churn = 0.2;
    iterations = 221;
    seed = 0xB21B2L;
  }

let cactusadm =
  {
    base with
    Profile.name = "cactusADM";
    leaf_call_rate = 0.08;
    fold_material = 1;
    cse_material = 0;
    heap_data_bias = 0.95;
    functions = 16;
    hot_functions = 5;
    large_arrays = 8;
    (* Just over a power of two: the segregated heap rounds 72 KiB up to
       128 KiB, the waste the paper blames for cactusADM's overhead. *)
    large_array_size = 73000;
    data_stride = 64;
    heap_churn = 0.05;
    branchiness = 0.2;
    inner_trips = 8;
    iterations = 153;
    seed = 0xCAC705L;
  }

let gcc =
  {
    base with
    Profile.name = "gcc";
    fold_material = 3;
    cse_material = 3;
    functions = 110;
    hot_functions = 22;
    dead_functions = 12;
    blocks_per_function = (2, 10);
    branchiness = 0.55;
    heap_churn = 0.35;
    globals = 24;
    leaf_helpers = 8;
    iterations = 88;
    inner_trips = 10;
    seed = 0x6CC001L;
  }

let gobmk =
  {
    base with
    Profile.name = "gobmk";
    fold_material = 2;
    cse_material = 3;
    functions = 90;
    hot_functions = 18;
    blocks_per_function = (2, 8);
    branchiness = 0.7;
    globals = 20;
    iterations = 95;
    inner_trips = 10;
    seed = 0x60B3CL;
  }

let gromacs =
  {
    base with
    Profile.name = "gromacs";
    heap_data_bias = 0.7;
    blocks_per_function = (6, 14);
    instrs_per_block = (16, 36);
    functions = 30;
    hot_functions = 5;
    data_stride = 128;
    large_arrays = 3;
    large_array_size = 49152;
    branchiness = 0.25;
    heap_churn = 0.1;
    iterations = 238;
    seed = 0x6120ACL;
  }

let h264ref =
  {
    base with
    Profile.name = "h264ref";
    fold_material = 3;
    cse_material = 2;
    blocks_per_function = (6, 14);
    instrs_per_block = (16, 36);
    functions = 40;
    hot_functions = 5;
    branchiness = 0.65;
    data_stride = 16;
    globals = 18;
    global_size = 8192;
    iterations = 187;
    seed = 0x264EFL;
  }

let hmmer =
  {
    base with
    Profile.name = "hmmer";
    leaf_call_rate = 0.08;
    fold_material = 1;
    cse_material = 1;
    functions = 22;
    hot_functions = 6;
    data_stride = 16;
    globals = 10;
    global_size = 16384;
    branchiness = 0.3;
    heap_churn = 0.15;
    inner_trips = 40;
    iterations = 204;
    seed = 0x4A33E2L;
  }

let lbm =
  {
    base with
    Profile.name = "lbm";
    leaf_call_rate = 0.08;
    fold_material = 0;
    cse_material = 0;
    heap_data_bias = 1.0;
    functions = 16;
    hot_functions = 6;
    large_arrays = 2;
    large_array_size = 131072;
    data_stride = 64;
    heap_churn = 0.0;
    branchiness = 0.15;
    inner_trips = 48;
    iterations = 187;
    seed = 0x1B31B3L;
  }

let libquantum =
  {
    base with
    Profile.name = "libquantum";
    leaf_call_rate = 0.08;
    fold_material = 0;
    cse_material = 1;
    heap_data_bias = 1.0;
    functions = 18;
    hot_functions = 6;
    large_arrays = 1;
    large_array_size = 262144;
    data_stride = 64;
    heap_churn = 0.1;
    branchiness = 0.35;
    inner_trips = 44;
    iterations = 187;
    seed = 0x11B9L;
  }

let mcf =
  {
    base with
    Profile.name = "mcf";
    leaf_call_rate = 0.08;
    fold_material = 0;
    cse_material = 1;
    heap_data_bias = 0.95;
    functions = 18;
    hot_functions = 6;
    large_arrays = 4;
    large_array_size = 65536;
    (* Page-sized stride: pointer-chasing that stresses the TLB. *)
    data_stride = 4096;
    heap_churn = 0.1;
    branchiness = 0.45;
    inner_trips = 40;
    iterations = 187;
    seed = 0x3CF11L;
  }

let milc =
  {
    base with
    Profile.name = "milc";
    leaf_call_rate = 0.08;
    fold_material = 1;
    cse_material = 0;
    heap_data_bias = 0.9;
    functions = 20;
    hot_functions = 6;
    large_arrays = 4;
    large_array_size = 65536;
    data_stride = 96;
    heap_churn = 0.15;
    branchiness = 0.2;
    iterations = 204;
    seed = 0x311CL;
  }

let namd =
  {
    base with
    Profile.name = "namd";
    functions = 26;
    hot_functions = 4;
    leaf_helpers = 10;
    leaf_call_rate = 0.6;
    data_stride = 32;
    branchiness = 0.3;
    heap_churn = 0.05;
    iterations = 204;
    seed = 0x9A3DL;
  }

let perlbench =
  {
    base with
    Profile.name = "perlbench";
    fold_material = 3;
    cse_material = 2;
    blocks_per_function = (6, 14);
    instrs_per_block = (16, 36);
    functions = 100;
    hot_functions = 20;
    dead_functions = 8;
    heap_churn = 0.5;
    alloc_size_range = (16, 1024);
    branchiness = 0.6;
    globals = 22;
    iterations = 88;
    inner_trips = 10;
    seed = 0x9E21BL;
  }

let sjeng =
  {
    base with
    Profile.name = "sjeng";
    functions = 30;
    hot_functions = 8;
    branchiness = 0.8;
    data_stride = 24;
    globals = 14;
    global_size = 2048;
    iterations = 204;
    seed = 0x57E26L;
  }

let sphinx3 =
  {
    base with
    Profile.name = "sphinx3";
    functions = 34;
    hot_functions = 8;
    heap_churn = 0.4;
    branchiness = 0.45;
    data_stride = 40;
    iterations = 187;
    seed = 0x5FF1B3L;
  }

let wrf =
  {
    base with
    Profile.name = "wrf";
    heap_data_bias = 0.5;
    functions = 70;
    hot_functions = 12;
    globals = 30;
    global_size = 4096;
    large_arrays = 3;
    large_array_size = 49152;
    data_stride = 128;
    branchiness = 0.25;
    iterations = 109;
    inner_trips = 12;
    seed = 0x33F777L;
  }

let zeusmp =
  {
    base with
    Profile.name = "zeusmp";
    leaf_call_rate = 0.08;
    fold_material = 0;
    cse_material = 0;
    heap_data_bias = 0.9;
    functions = 24;
    hot_functions = 6;
    large_arrays = 4;
    large_array_size = 65536;
    data_stride = 256;
    branchiness = 0.2;
    heap_churn = 0.0;
    iterations = 204;
    seed = 0x2E05329L;
  }

let all =
  [
    astar; bzip2; cactusadm; gcc; gobmk; gromacs; h264ref; hmmer; lbm;
    libquantum; mcf; milc; namd; perlbench; sjeng; sphinx3; wrf; zeusmp;
  ]

let find name =
  List.find_opt
    (fun p -> String.lowercase_ascii p.Profile.name = String.lowercase_ascii name)
    all

let sized size p =
  match size with
  | `Ref -> p
  | `Train -> Profile.scale 0.33 p
  | `Test -> Profile.scale 0.1 p
