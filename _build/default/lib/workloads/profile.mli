(** A benchmark profile: the knobs that shape a generated program. Each
    SPEC CPU2006 benchmark in the paper's evaluation is mirrored by one
    profile whose traits match what the paper reports about it (e.g.
    gobmk/gcc/perlbench have many functions, cactusADM allocates many
    large arrays, mcf/lbm are memory-bound). *)

type t = {
  name : string;
  functions : int;  (** work functions (main and helpers excluded) *)
  hot_functions : int;  (** called from the main loops *)
  blocks_per_function : int * int;  (** min, max *)
  instrs_per_block : int * int;
  frame_size_range : int * int;  (** bytes, rounded to 16 *)
  heap_churn : float;  (** probability a hot function allocates/frees per iteration *)
  alloc_size_range : int * int;  (** short-lived object sizes *)
  large_arrays : int;  (** long-lived arrays allocated at startup *)
  heap_data_bias : float;
      (** probability a work function walks a heap array rather than a
          global (memory-bound benchmarks set this near 1) *)
  large_array_size : int;
  globals : int;
  global_size : int;
  data_stride : int;  (** walk stride over arrays, bytes *)
  branchiness : float;  (** probability a body block carries an extra conditional *)
  leaf_helpers : int;  (** tiny single-block callees (O3 inlining material) *)
  leaf_call_rate : float;  (** probability a body block calls a helper *)
  fold_material : int;  (** foldable constant chains per function (O1) *)
  cse_material : int;  (** duplicate subexpressions per block (O2) *)
  dead_functions : int;  (** never-called functions (O3 strips) *)
  phases : int;  (** distinct phases in main *)
  iterations : int;  (** outer loop trips per phase *)
  inner_trips : int;  (** loop trips inside each work function call *)
  seed : int64;  (** generation seed *)
}

(** A mid-sized default to build variations from. *)
val default : t

(** [scale factor p] multiplies the outer iteration count, scaling run
    length without changing program structure. *)
val scale : float -> t -> t
