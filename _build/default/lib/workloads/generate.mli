(** Deterministic program generation from a {!Profile.t}. The same
    profile always yields the same IR, so optimization levels and
    STABILIZER configurations are compared on identical inputs.

    Shape of a generated program:

    - [main] allocates the profile's long-lived large arrays (storing
      their addresses in pointer-cell globals), then runs [phases]
      outer loops, each calling a subset of the hot work functions —
      the phase behaviour of §4's analysis;
    - each work function runs an inner loop that walks an assigned
      array (global or heap) with the profile's stride, does integer
      work salted with foldable constant chains (O1 material) and
      duplicated subexpressions (O2 material), optionally churns
      short-lived heap objects, branches on loop-carried conditions,
      and calls tiny single-block leaf helpers (O3 inlining material);
    - [dead_functions] extra functions are generated but never called
      (O3's dead-global elimination strips them, perturbing layout). *)

val program : Profile.t -> Stz_vm.Ir.program

(** The [args] to pass to {!Stz_vm.Interp.run} for generated programs. *)
val default_args : int list
