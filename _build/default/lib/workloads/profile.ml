type t = {
  name : string;
  functions : int;
  hot_functions : int;
  blocks_per_function : int * int;
  instrs_per_block : int * int;
  frame_size_range : int * int;
  heap_churn : float;
  alloc_size_range : int * int;
  large_arrays : int;
  heap_data_bias : float;
  large_array_size : int;
  globals : int;
  global_size : int;
  data_stride : int;
  branchiness : float;
  leaf_helpers : int;
  leaf_call_rate : float;
  fold_material : int;
  cse_material : int;
  dead_functions : int;
  phases : int;
  iterations : int;
  inner_trips : int;
  seed : int64;
}

let default =
  {
    name = "default";
    functions = 24;
    hot_functions = 8;
    blocks_per_function = (3, 8);
    instrs_per_block = (12, 28);
    frame_size_range = (48, 192);
    heap_churn = 0.3;
    alloc_size_range = (24, 512);
    large_arrays = 2;
    heap_data_bias = 0.35;
    large_array_size = 16384;
    globals = 12;
    global_size = 512;
    data_stride = 64;
    branchiness = 0.4;
    leaf_helpers = 4;
    leaf_call_rate = 0.3;
    fold_material = 2;
    cse_material = 2;
    dead_functions = 2;
    phases = 2;
    iterations = 60;
    inner_trips = 24;
    seed = 0x5EC0123L;
  }

let scale factor p =
  {
    p with
    iterations = Stdlib.max 1 (int_of_float (float_of_int p.iterations *. factor));
  }
