module Ir = Stz_vm.Ir
module B = Stz_vm.Builder

let default_args = [ 1 ]

let floor_pow2 n =
  let p = ref 1 in
  while !p * 2 <= n do
    p := !p * 2
  done;
  !p

type gen = { rng : Stz_prng.Xorshift.t; profile : Profile.t }

let rand_in g (lo, hi) =
  if hi <= lo then lo else lo + Stz_prng.Xorshift.next_int g.rng (hi - lo + 1)

let chance g p = Stz_prng.Xorshift.next_float g.rng < p

(* ------------------------------------------------------------------ *)
(* Leaf helpers: single-block functions small enough to inline at O3.  *)
(* ------------------------------------------------------------------ *)

(* Helpers come in three sizes: small ones fall under the O1/O2
   inlining threshold, mid-size ones are only picked up by O3's more
   aggressive inliner, and the biggest exceed every threshold — so
   O3's incremental true effect stays modest, as in real compilers. *)
let gen_helper g ~fid ~size_class =
  let b = B.func ~fid ~name:(Printf.sprintf "helper_%d" fid) ~n_args:2 ~frame_size:32 () in
  let a0 = 0 and a1 = 1 in
  let c1 = 1 + rand_in g (1, 7) in
  let c2 = rand_in g (1, 15) in
  let r1 = B.fresh_reg b in
  let r2 = B.fresh_reg b in
  let r3 = B.fresh_reg b in
  let r4 = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Mul, r1, Ir.Reg a0, Ir.Imm c1));
  B.emit b (Ir.Bin (Ir.Add, r2, Ir.Reg r1, Ir.Reg a1));
  (* Duplicate subexpression: CSE material inside the helper. *)
  B.emit b (Ir.Bin (Ir.Add, r3, Ir.Reg r1, Ir.Reg a1));
  B.emit b (Ir.Bin (Ir.Xor, r4, Ir.Reg r2, Ir.Reg r3));
  let acc = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Add, acc, Ir.Reg r4, Ir.Imm c2));
  let filler = match size_class with 0 -> 0 | 1 -> 52 | _ -> 70 in
  for k = 1 to filler do
    let r = B.fresh_reg b in
    B.emit b (Ir.Bin (Ir.Mul, r, Ir.Reg acc, Ir.Imm (k + 1)));
    B.emit b (Ir.Bin (Ir.Xor, acc, Ir.Reg acc, Ir.Reg r))
  done;
  B.emit b (Ir.Ret (Ir.Reg acc));
  B.finish b

(* ------------------------------------------------------------------ *)
(* Work functions                                                      *)
(* ------------------------------------------------------------------ *)

(* The data object a work function walks: either a global array or one
   of the long-lived heap arrays main allocates (reached through its
   pointer-cell global). *)
type data_source = Global_array of int | Heap_array of int

let emit_fold_chain g b =
  (* A chain of constant arithmetic, collapsible by constant folding;
     its result is stored to the frame so DCE cannot delete the use. *)
  let c1 = rand_in g (2, 9) in
  let c2 = rand_in g (2, 9) in
  let c3 = rand_in g (1, 99) in
  let r1 = B.fresh_reg b in
  let r2 = B.fresh_reg b in
  let r3 = B.fresh_reg b in
  B.emit b (Ir.Mov (r1, Ir.Imm c1));
  B.emit b (Ir.Bin (Ir.Mul, r2, Ir.Reg r1, Ir.Imm c2));
  B.emit b (Ir.Bin (Ir.Add, r3, Ir.Reg r2, Ir.Imm c3));
  r3

let emit_cse_pair g b x y =
  (* The same subexpression computed twice; O2's local CSE removes one. *)
  let c = rand_in g (1, 31) in
  let r1 = B.fresh_reg b in
  let r2 = B.fresh_reg b in
  let r3 = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Mul, r1, Ir.Reg x, Ir.Reg y));
  B.emit b (Ir.Bin (Ir.Add, r2, Ir.Reg r1, Ir.Imm c));
  B.emit b (Ir.Bin (Ir.Mul, r3, Ir.Reg x, Ir.Reg y));
  let r4 = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Add, r4, Ir.Reg r3, Ir.Imm c));
  (r2, r4)

let gen_work g ~fid ~name ~source ~span ~helpers ~fn_offset =
  let p = g.profile in
  let frame_size = rand_in g p.Profile.frame_size_range land lnot 15 in
  let frame_size = Stdlib.max 32 frame_size in
  let b = B.func ~fid ~name ~n_args:1 ~frame_size () in
  let arg = 0 in
  (* Entry block: folding material, loop setup, data base resolution. *)
  let acc = B.fresh_reg b in
  let i = B.fresh_reg b in
  let base = B.fresh_reg b in
  let fold_use = ref [] in
  for _ = 1 to p.Profile.fold_material do
    fold_use := emit_fold_chain g b :: !fold_use
  done;
  let fslot = B.fresh_reg b in
  B.emit b (Ir.Frame (fslot, 0));
  List.iter (fun r -> B.emit b (Ir.Store (fslot, 0, Ir.Reg r))) !fold_use;
  B.emit b (Ir.Mov (acc, Ir.Reg arg));
  B.emit b (Ir.Mov (i, Ir.Imm 0));
  (match source with
  | Global_array gid -> B.emit b (Ir.Global (base, gid))
  | Heap_array cell_gid ->
      let cell = B.fresh_reg b in
      B.emit b (Ir.Global (cell, cell_gid));
      B.emit b (Ir.Load (base, cell, 0)));
  let head = B.new_block b in
  let exit = B.new_block b in
  B.emit b (Ir.Br head);
  (* Loop head. *)
  B.set_block b head;
  let cond = B.fresh_reg b in
  B.emit b (Ir.Cmp (Ir.Lt, cond, Ir.Reg i, Ir.Imm p.Profile.inner_trips));
  (* Body blocks chained head -> b1 -> ... -> bk -> head. *)
  let n_body = rand_in g p.Profile.blocks_per_function in
  let body_blocks = Array.init (Stdlib.max 1 n_body) (fun _ -> B.new_block b) in
  B.emit b (Ir.Brc (Ir.Reg cond, body_blocks.(0), exit));
  let mask = span - 1 in
  Array.iteri
    (fun bi blk ->
      B.set_block b blk;
      let next_target =
        if bi = Array.length body_blocks - 1 then head else body_blocks.(bi + 1)
      in
      (* Integer work. Profiles with [cse_material] carry duplicated
         subexpressions that O2 can remove; others do the same amount of
         work without redundancy, so O2 has nothing to find. *)
      let u1, u2 =
        if p.Profile.cse_material > 0 then begin
          let pair = ref (0, 0) in
          for _ = 1 to p.Profile.cse_material do
            pair := emit_cse_pair g b i acc
          done;
          !pair
        end
        else begin
          let c = rand_in g (1, 31) in
          let r1 = B.fresh_reg b in
          let r2 = B.fresh_reg b in
          let r3 = B.fresh_reg b in
          let r4 = B.fresh_reg b in
          B.emit b (Ir.Bin (Ir.Mul, r1, Ir.Reg i, Ir.Reg acc));
          B.emit b (Ir.Bin (Ir.Add, r2, Ir.Reg r1, Ir.Imm c));
          B.emit b (Ir.Bin (Ir.Add, r3, Ir.Reg i, Ir.Imm (c + 1)));
          B.emit b (Ir.Bin (Ir.Xor, r4, Ir.Reg r3, Ir.Reg acc));
          (r2, r4)
        end
      in
      let t = B.fresh_reg b in
      B.emit b (Ir.Bin (Ir.Add, t, Ir.Reg u1, Ir.Reg u2));
      B.emit b (Ir.Bin (Ir.Xor, acc, Ir.Reg acc, Ir.Reg t));
      (* Filler arithmetic: varies block (and function) code size, which
         is what makes instruction-cache placement matter. *)
      let filler = rand_in g p.Profile.instrs_per_block / 2 in
      for k = 1 to filler do
        let r = B.fresh_reg b in
        B.emit b (Ir.Bin (Ir.Add, r, Ir.Reg acc, Ir.Imm k));
        B.emit b (Ir.Bin (Ir.Xor, acc, Ir.Reg acc, Ir.Reg r))
      done;
      (* Array walk over a *window* that is revisited across several
         outer iterations before advancing. The resident working set of
         a phase (all its functions' windows plus frames and globals)
         then sits near cache capacity, where whether things fit is
         decided by their relative placement — the regime in which
         layout dominates performance. *)
      let window = p.Profile.inner_trips * p.Profile.data_stride in
      let wb = B.fresh_reg b in
      let off = B.fresh_reg b in
      let addr = B.fresh_reg b in
      B.emit b (Ir.Bin (Ir.Shr, wb, Ir.Reg arg, Ir.Imm 3));
      B.emit b (Ir.Bin (Ir.Mul, wb, Ir.Reg wb, Ir.Imm window));
      B.emit b (Ir.Bin (Ir.Mul, off, Ir.Reg i, Ir.Imm p.Profile.data_stride));
      B.emit b (Ir.Bin (Ir.Add, off, Ir.Reg off, Ir.Reg wb));
      B.emit b
        (Ir.Bin (Ir.Add, off, Ir.Reg off, Ir.Imm ((fn_offset + (bi * 8)) land mask)));
      B.emit b (Ir.Bin (Ir.And, off, Ir.Reg off, Ir.Imm mask));
      B.emit b (Ir.Bin (Ir.Add, addr, Ir.Reg base, Ir.Reg off));
      let loaded = B.fresh_reg b in
      B.emit b (Ir.Store (addr, 0, Ir.Reg acc));
      B.emit b (Ir.Load (loaded, addr, 0));
      B.emit b (Ir.Bin (Ir.Add, acc, Ir.Reg acc, Ir.Reg loaded));
      (* Frame traffic. *)
      let fr = B.fresh_reg b in
      B.emit b (Ir.Frame (fr, (bi * 16) mod frame_size));
      B.emit b (Ir.Store (fr, 0, Ir.Reg acc));
      (* Occasional short-lived heap churn. *)
      if bi = 0 && chance g p.Profile.heap_churn then begin
        let size = rand_in g p.Profile.alloc_size_range in
        let obj = B.fresh_reg b in
        B.emit b (Ir.Malloc (obj, Ir.Imm size));
        B.emit b (Ir.Store (obj, 0, Ir.Reg i));
        let back = B.fresh_reg b in
        B.emit b (Ir.Load (back, obj, 0));
        B.emit b (Ir.Bin (Ir.Add, acc, Ir.Reg acc, Ir.Reg back));
        B.emit b (Ir.Free obj)
      end;
      (* Occasional leaf-helper call (O3 inlines these). *)
      if helpers <> [||] && chance g p.Profile.leaf_call_rate then begin
        let helper = helpers.(rand_in g (0, Array.length helpers - 1)) in
        let dst = B.fresh_reg b in
        B.emit b (Ir.Call { fn = helper; args = [ Ir.Reg i; Ir.Reg acc ]; dst });
        B.emit b (Ir.Bin (Ir.Add, acc, Ir.Reg acc, Ir.Reg dst))
      end;
      (* A loop-carried conditional: data-dependent but deterministic. *)
      if chance g p.Profile.branchiness then begin
        let alt = B.new_block b in
        let parity = B.fresh_reg b in
        let pc = B.fresh_reg b in
        (* Vary branch bias: masks give mostly-taken, mostly-not-taken
           and alternating patterns, so branches that alias in the
           predictor table interfere destructively. *)
        let mask = [| 1; 3; 7; 15 |].(rand_in g (0, 3)) in
        let sense = if chance g 0.5 then Ir.Eq else Ir.Ne in
        B.emit b (Ir.Bin (Ir.And, parity, Ir.Reg i, Ir.Imm mask));
        B.emit b (Ir.Cmp (sense, pc, Ir.Reg parity, Ir.Imm 0));
        let join = B.new_block b in
        B.emit b (Ir.Brc (Ir.Reg pc, alt, join));
        B.set_block b alt;
        let extra = B.fresh_reg b in
        B.emit b (Ir.Bin (Ir.Add, extra, Ir.Reg acc, Ir.Imm (rand_in g (1, 9))));
        B.emit b (Ir.Bin (Ir.Or, acc, Ir.Reg acc, Ir.Reg extra));
        B.emit b (Ir.Br join);
        B.set_block b join;
        if bi = Array.length body_blocks - 1 then
          B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
        B.emit b (Ir.Br next_target)
      end
      else begin
        if bi = Array.length body_blocks - 1 then
          B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
        B.emit b (Ir.Br next_target)
      end)
    body_blocks;
  B.set_block b exit;
  B.emit b (Ir.Ret (Ir.Reg acc));
  B.finish b

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let gen_main g ~fid ~hot ~large_array_cells =
  let p = g.profile in
  let b = B.func ~fid ~name:"main" ~n_args:1 ~frame_size:64 () in
  (* Allocate long-lived arrays and publish their addresses. *)
  List.iter
    (fun cell_gid ->
      let ptr = B.fresh_reg b in
      let cell = B.fresh_reg b in
      B.emit b (Ir.Malloc (ptr, Ir.Imm p.Profile.large_array_size));
      B.emit b (Ir.Global (cell, cell_gid));
      B.emit b (Ir.Store (cell, 0, Ir.Reg ptr)))
    large_array_cells;
  let total = B.fresh_reg b in
  B.emit b (Ir.Mov (total, Ir.Imm 0));
  (* Partition hot functions across phases, round robin. *)
  let n_phases = Stdlib.max 1 p.Profile.phases in
  let phase_sets =
    Array.init n_phases (fun ph ->
        List.filteri (fun idx _ -> idx mod n_phases = ph) (Array.to_list hot))
  in
  let prev_exit = ref None in
  Array.iteri
    (fun _ph fns ->
      (match !prev_exit with
      | None -> ()
      | Some blk -> B.set_block b blk);
      let i = B.fresh_reg b in
      B.emit b (Ir.Mov (i, Ir.Imm 0));
      let head = B.new_block b in
      let body = B.new_block b in
      let exit = B.new_block b in
      B.emit b (Ir.Br head);
      B.set_block b head;
      let c = B.fresh_reg b in
      B.emit b (Ir.Cmp (Ir.Lt, c, Ir.Reg i, Ir.Imm p.Profile.iterations));
      B.emit b (Ir.Brc (Ir.Reg c, body, exit));
      B.set_block b body;
      List.iter
        (fun fn ->
          let dst = B.fresh_reg b in
          B.emit b (Ir.Call { fn; args = [ Ir.Reg i ]; dst });
          B.emit b (Ir.Bin (Ir.Add, total, Ir.Reg total, Ir.Reg dst)))
        fns;
      B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
      B.emit b (Ir.Br head);
      prev_exit := Some exit)
    phase_sets;
  (match !prev_exit with None -> () | Some blk -> B.set_block b blk);
  B.emit b (Ir.Ret (Ir.Reg total));
  B.finish b

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)
(* ------------------------------------------------------------------ *)

let program profile =
  let g = { rng = Stz_prng.Xorshift.create ~seed:profile.Profile.seed; profile } in
  let p = profile in
  let n_helpers = p.Profile.leaf_helpers in
  let n_work = Stdlib.max 1 p.Profile.functions in
  let n_dead = p.Profile.dead_functions in
  (* fid layout: 0 = main, then helpers, then work, then dead. *)
  let helper_fids = Array.init n_helpers (fun i -> 1 + i) in
  let work_fid i = 1 + n_helpers + i in
  let dead_fid i = 1 + n_helpers + n_work + i in
  (* gid layout: pointer cells for large arrays first, then data. *)
  let n_cells = p.Profile.large_arrays in
  let cell_gids = List.init n_cells (fun i -> i) in
  let data_gid i = n_cells + i in
  let n_data_globals = Stdlib.max 1 p.Profile.globals in
  let globals =
    List.init n_cells (fun i ->
        { Ir.gid = i; gname = Printf.sprintf "array_ptr_%d" i; gsize = 16 })
    @ List.init n_data_globals (fun i ->
          {
            Ir.gid = data_gid i;
            gname = Printf.sprintf "data_%d" i;
            gsize = p.Profile.global_size;
          })
  in
  let helpers = Array.map (fun fid -> fid) helper_fids in
  let pick_source i =
    if n_cells > 0 && (chance g p.Profile.heap_data_bias || p.Profile.globals = 0)
    then
      let cell = i mod n_cells in
      (Heap_array cell, floor_pow2 p.Profile.large_array_size)
    else
      (Global_array (data_gid (i mod n_data_globals)), floor_pow2 p.Profile.global_size)
  in
  let work =
    List.init n_work (fun i ->
        let source, span = pick_source i in
        gen_work g ~fid:(work_fid i)
          ~name:(Printf.sprintf "work_%d" i)
          ~source ~span ~helpers
          ~fn_offset:(i * 136))
  in
  let dead =
    List.init n_dead (fun i ->
        let source, span = pick_source (i + 1) in
        gen_work g ~fid:(dead_fid i)
          ~name:(Printf.sprintf "dead_%d" i)
          ~source ~span ~helpers:[||]
          ~fn_offset:(i * 64))
  in
  let hot =
    Array.init
      (Stdlib.min p.Profile.hot_functions n_work)
      (fun i -> work_fid i)
  in
  let main = gen_main g ~fid:0 ~hot ~large_array_cells:cell_gids in
  let helper_funcs =
    List.mapi
      (fun i fid -> gen_helper g ~fid ~size_class:(i mod 3))
      (Array.to_list helper_fids)
  in
  let prog =
    B.program
      ~funcs:((main :: helper_funcs) @ work @ dead)
      ~globals ~entry:0
  in
  Stz_vm.Validate.check_exn prog;
  prog
