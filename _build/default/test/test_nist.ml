module N = Stz_nist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Bitseq                                                              *)
(* ------------------------------------------------------------------ *)

let bitseq_of_int_array () =
  let s = N.Bitseq.of_int_array [| 1; 0; 1; 1; 0 |] in
  check_int "length" 5 (N.Bitseq.length s);
  check_int "ones" 3 (N.Bitseq.ones s);
  check_int "bit 0" 1 (N.Bitseq.get s 0);
  check_int "bit 1" 0 (N.Bitseq.get s 1);
  check_int "bit 3" 1 (N.Bitseq.get s 3)

let bitseq_of_words_msb_first () =
  (* 0b101 over 3 bits -> bits 1,0,1. *)
  let s = N.Bitseq.of_words ~bits_per_word:3 [| 0b101; 0b010 |] in
  check_int "length" 6 (N.Bitseq.length s);
  Alcotest.(check (list int))
    "bits msb-first"
    [ 1; 0; 1; 0; 1; 0 ]
    (List.init 6 (N.Bitseq.get s))

let bitseq_of_addresses () =
  (* Extract bits 6..17 (the paper's cache index bits). *)
  let addr = 0b101010101010 lsl 6 in
  let s = N.Bitseq.of_addresses ~lo:6 ~hi:17 [| addr |] in
  check_int "width" 12 (N.Bitseq.length s);
  Alcotest.(check (list int))
    "extracted"
    [ 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0 ]
    (List.init 12 (N.Bitseq.get s))

let bitseq_slice () =
  let s = N.Bitseq.of_int_array [| 1; 1; 0; 0; 1; 0 |] in
  let sl = N.Bitseq.slice s 2 3 in
  Alcotest.(check (list int)) "slice" [ 0; 0; 1 ] (List.init 3 (N.Bitseq.get sl))

let bitseq_of_source_length () =
  let src = Stz_prng.Source.xorshift ~seed:1L in
  let s = N.Bitseq.of_source src 1000 in
  check_int "length" 1000 (N.Bitseq.length s);
  let ones = N.Bitseq.ones s in
  check_bool "roughly balanced" true (ones > 400 && ones < 600)

let bitseq_bounds () =
  let s = N.Bitseq.of_int_array [| 1; 0 |] in
  Alcotest.check_raises "oob" (Invalid_argument "Bitseq.get: out of bounds")
    (fun () -> ignore (N.Bitseq.get s 2))

(* ------------------------------------------------------------------ *)
(* FFT                                                                 *)
(* ------------------------------------------------------------------ *)

let fft_impulse_flat () =
  let n = 64 in
  let signal = Array.make n 0.0 in
  signal.(0) <- 1.0;
  let mags = N.Fft.half_spectrum signal in
  Array.iter (fun m -> check_bool "flat spectrum" true (abs_float (m -. 1.0) < 1e-9)) mags

let fft_sine_peak () =
  let n = 128 in
  let k = 5 in
  let signal =
    Array.init n (fun i ->
        sin (2.0 *. Float.pi *. float_of_int k *. float_of_int i /. float_of_int n))
  in
  let mags = N.Fft.half_spectrum signal in
  let peak = ref 0 in
  Array.iteri (fun i m -> if m > mags.(!peak) then peak := i) mags;
  check_int "peak at k" k !peak;
  check_bool "peak magnitude n/2" true (abs_float (mags.(k) -. 64.0) < 1e-6)

let fft_parseval =
  QCheck.Test.make ~name:"Parseval energy conservation" ~count:50
    QCheck.(list_of_size (Gen.return 64) (float_range (-1.0) 1.0))
    (fun l ->
      let signal = Array.of_list l in
      let re = Array.copy signal in
      let im = Array.make 64 0.0 in
      N.Fft.transform re im;
      let time_energy = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 signal in
      let freq_energy = ref 0.0 in
      for i = 0 to 63 do
        freq_energy := !freq_energy +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
      done;
      abs_float ((!freq_energy /. 64.0) -. time_energy) < 1e-6 *. (1.0 +. time_energy))

let fft_requires_pow2 () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fft.half_spectrum: length must be a power of two")
    (fun () -> ignore (N.Fft.half_spectrum (Array.make 100 0.0)))

(* ------------------------------------------------------------------ *)
(* GF(2) rank                                                          *)
(* ------------------------------------------------------------------ *)

let gf2_identity_full_rank () =
  let bits = Array.init (8 * 8) (fun i -> if i / 8 = i mod 8 then 1 else 0) in
  let m = N.Gf2.of_bits (N.Bitseq.of_int_array bits) 0 ~rows:8 ~cols:8 in
  check_int "rank" 8 (N.Gf2.rank m)

let gf2_zero_rank () =
  let m = N.Gf2.of_bits (N.Bitseq.of_int_array (Array.make 64 0)) 0 ~rows:8 ~cols:8 in
  check_int "rank" 0 (N.Gf2.rank m)

let gf2_repeated_rows_rank1 () =
  let bits = Array.init 64 (fun i -> if i mod 8 < 4 then 1 else 0) in
  let m = N.Gf2.of_bits (N.Bitseq.of_int_array bits) 0 ~rows:8 ~cols:8 in
  check_int "identical rows" 1 (N.Gf2.rank m)

let gf2_rank_probabilities () =
  (* Known asymptotic values for 32x32 random binary matrices. *)
  let p32 = N.Gf2.probability_rank ~n:32 32 in
  let p31 = N.Gf2.probability_rank ~n:32 31 in
  check_bool "p(full) ~ 0.2888" true (abs_float (p32 -. 0.2888) < 0.001);
  check_bool "p(n-1) ~ 0.5776" true (abs_float (p31 -. 0.5776) < 0.001);
  let total = ref 0.0 in
  for r = 0 to 32 do
    total := !total +. N.Gf2.probability_rank ~n:32 r
  done;
  check_bool "probabilities sum to 1" true (abs_float (!total -. 1.0) < 1e-9)

let gf2_rank_distribution_matches () =
  (* Empirical rank distribution of random matrices matches theory. *)
  let src = Stz_prng.Source.xorshift ~seed:31L in
  let seq = N.Bitseq.of_source src (1024 * 200) in
  let full = ref 0 in
  for i = 0 to 199 do
    if N.Gf2.rank (N.Gf2.of_bits seq (i * 1024) ~rows:32 ~cols:32) = 32 then incr full
  done;
  let rate = float_of_int !full /. 200.0 in
  check_bool "empirical p(full) near 0.2888" true (abs_float (rate -. 0.2888) < 0.12)

(* ------------------------------------------------------------------ *)
(* NIST tests                                                          *)
(* ------------------------------------------------------------------ *)

let good_sequence = lazy (N.Bitseq.of_source (Stz_prng.Source.xorshift ~seed:7L) 131072)

let nist_good_prng_passes_all () =
  let outcomes = N.Tests.all (Lazy.force good_sequence) in
  check_int "seven tests run" 7 (List.length outcomes);
  List.iter
    (fun (o : N.Tests.outcome) -> check_bool (o.name ^ " passes") true o.pass)
    outcomes

let nist_biased_fails_frequency () =
  let seq =
    N.Bitseq.of_int_array (Array.init 10000 (fun i -> if i mod 10 < 6 then 1 else 0))
  in
  let o = N.Tests.frequency seq in
  check_bool "fails" false o.N.Tests.pass

let nist_alternating_fails_runs () =
  (* 0101... has the maximum possible number of runs. *)
  let seq = N.Bitseq.of_int_array (Array.init 10000 (fun i -> i land 1)) in
  let o = N.Tests.runs seq in
  check_bool "fails runs" false o.N.Tests.pass;
  (* ...but is perfectly balanced, so frequency passes. *)
  check_bool "passes frequency" true (N.Tests.frequency seq).N.Tests.pass

let nist_blocky_fails_block_frequency () =
  (* Alternating blocks of 128 ones / 128 zeros: globally balanced but
     each block is maximally unbalanced. *)
  let seq = N.Bitseq.of_int_array (Array.init 16384 (fun i -> (i / 128) land 1)) in
  check_bool "fails block frequency" false (N.Tests.block_frequency seq).N.Tests.pass

let nist_long_runs_detected () =
  (* Biased run structure: long stretches of ones. *)
  let seq =
    N.Bitseq.of_int_array (Array.init 16384 (fun i -> if i mod 32 < 24 then 1 else 0))
  in
  check_bool "fails longest-run" false (N.Tests.longest_run seq).N.Tests.pass

let nist_low_rank_fails () =
  (* Periodic sequence => repeated matrix rows => low rank. *)
  let seq = N.Bitseq.of_int_array (Array.init 50000 (fun i -> (i / 32) land 1)) in
  check_bool "fails rank" false (N.Tests.rank seq).N.Tests.pass

let nist_periodic_fails_fft () =
  let seq =
    N.Bitseq.of_int_array (Array.init 8192 (fun i -> if i mod 8 < 4 then 1 else 0))
  in
  check_bool "fails fft" false (N.Tests.fft seq).N.Tests.pass

let nist_cusum_both_directions () =
  let s = Lazy.force good_sequence in
  check_bool "forward passes" true (N.Tests.cumulative_sums ~forward:true s).N.Tests.pass;
  check_bool "backward passes" true
    (N.Tests.cumulative_sums ~forward:false s).N.Tests.pass

let nist_marsaglia_passes_most () =
  (* The Marsaglia MWC the runtime uses: must pass at least 6 of 7,
     matching the paper's observations for lrand48 and DieHard. *)
  let seq = N.Bitseq.of_source (Stz_prng.Source.marsaglia ~seed:99L) 131072 in
  let passed, total = N.Tests.summary (N.Tests.all ~alpha:0.01 seq) in
  check_int "seven run" 7 total;
  check_bool "passes >= 6" true (passed >= 6)

let nist_serial_and_apen () =
  let good = Lazy.force good_sequence in
  check_bool "serial passes on good prng" true (N.Tests.serial good).N.Tests.pass;
  check_bool "apen passes on good prng" true
    (N.Tests.approximate_entropy good).N.Tests.pass;
  (* A short-period sequence has wildly non-uniform pattern counts. *)
  let periodic = N.Bitseq.of_int_array (Array.init 65536 (fun i -> (i / 3) land 1)) in
  check_bool "serial fails on periodic" false (N.Tests.serial periodic).N.Tests.pass;
  check_bool "apen fails on periodic" false
    (N.Tests.approximate_entropy periodic).N.Tests.pass

let nist_summary () =
  let outcomes =
    [
      { N.Tests.name = "a"; p_value = 0.5; pass = true };
      { N.Tests.name = "b"; p_value = 0.001; pass = false };
    ]
  in
  Alcotest.(check (pair int int)) "summary" (1, 2) (N.Tests.summary outcomes)

let () =
  Alcotest.run "nist"
    [
      ( "bitseq",
        [
          Alcotest.test_case "of_int_array" `Quick bitseq_of_int_array;
          Alcotest.test_case "of_words msb" `Quick bitseq_of_words_msb_first;
          Alcotest.test_case "of_addresses" `Quick bitseq_of_addresses;
          Alcotest.test_case "slice" `Quick bitseq_slice;
          Alcotest.test_case "of_source" `Quick bitseq_of_source_length;
          Alcotest.test_case "bounds" `Quick bitseq_bounds;
        ] );
      ( "fft",
        [
          Alcotest.test_case "impulse" `Quick fft_impulse_flat;
          Alcotest.test_case "sine peak" `Quick fft_sine_peak;
          QCheck_alcotest.to_alcotest fft_parseval;
          Alcotest.test_case "pow2 required" `Quick fft_requires_pow2;
        ] );
      ( "gf2",
        [
          Alcotest.test_case "identity" `Quick gf2_identity_full_rank;
          Alcotest.test_case "zero" `Quick gf2_zero_rank;
          Alcotest.test_case "rank 1" `Quick gf2_repeated_rows_rank1;
          Alcotest.test_case "probabilities" `Quick gf2_rank_probabilities;
          Alcotest.test_case "empirical distribution" `Quick gf2_rank_distribution_matches;
        ] );
      ( "tests",
        [
          Alcotest.test_case "good prng passes" `Quick nist_good_prng_passes_all;
          Alcotest.test_case "biased fails freq" `Quick nist_biased_fails_frequency;
          Alcotest.test_case "alternating fails runs" `Quick nist_alternating_fails_runs;
          Alcotest.test_case "blocky fails blockfreq" `Quick nist_blocky_fails_block_frequency;
          Alcotest.test_case "long runs detected" `Quick nist_long_runs_detected;
          Alcotest.test_case "low rank fails" `Quick nist_low_rank_fails;
          Alcotest.test_case "periodic fails fft" `Quick nist_periodic_fails_fft;
          Alcotest.test_case "cusum directions" `Quick nist_cusum_both_directions;
          Alcotest.test_case "marsaglia passes" `Quick nist_marsaglia_passes_most;
          Alcotest.test_case "serial + apen" `Quick nist_serial_and_apen;
          Alcotest.test_case "summary" `Quick nist_summary;
        ] );
    ]
