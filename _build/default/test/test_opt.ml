module Ir = Stz_vm.Ir
module B = Stz_vm.Builder
module O = Stz_vm.Opt
module I = Stz_vm.Interp
module V = Stz_vm.Validate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let single instrs ~n_regs =
  let f =
    {
      Ir.fid = 0;
      fname = "f";
      blocks = [| { Ir.instrs = Array.of_list instrs } |];
      n_args = 0;
      n_regs;
      frame_size = 64;
    }
  in
  { Ir.funcs = [| f |]; globals = [||]; entry = 0 }

let instrs_of p = Array.to_list p.Ir.funcs.(0).Ir.blocks.(0).Ir.instrs

let run_plain p args =
  let machine = Stz_machine.Hierarchy.create () in
  let code_addrs =
    let pos = ref 0x400000 in
    Array.map
      (fun f ->
        let a = !pos in
        pos := !pos + Ir.func_size_bytes f + 16;
        a)
      p.Ir.funcs
  in
  let global_addrs =
    let pos = ref 0x600000 in
    Array.map
      (fun (g : Ir.global) ->
        let a = !pos in
        pos := !pos + g.gsize + 16;
        a)
      p.Ir.globals
  in
  let brk = ref 0x10000000 in
  let env =
    I.plain_env ~machine ~code_addrs ~global_addrs ~stack_base:0x7FFF0000
      ~malloc:(fun size ->
        let a = !brk in
        brk := !brk + ((size + 15) land lnot 15);
        a)
      ~free:(fun _ -> ())
      p
  in
  let v = I.run env p ~args in
  (v, Stz_machine.Hierarchy.cycles machine, (Stz_machine.Hierarchy.counters machine).Stz_machine.Hierarchy.instructions)

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let fold_collapses_chain () =
  let p =
    single ~n_regs:4
      [
        Ir.Mov (0, Ir.Imm 3);
        Ir.Bin (Ir.Mul, 1, Ir.Reg 0, Ir.Imm 4);
        Ir.Bin (Ir.Add, 2, Ir.Reg 1, Ir.Imm 5);
        Ir.Ret (Ir.Reg 2);
      ]
  in
  let q = O.const_fold p in
  (match instrs_of q with
  | [ _; Ir.Mov (1, Ir.Imm 12); Ir.Mov (2, Ir.Imm 17); Ir.Ret (Ir.Imm 17) ] -> ()
  | other ->
      Alcotest.failf "unexpected folding result: %d instrs" (List.length other));
  let v, _, _ = run_plain q [] in
  check_int "value preserved" 17 v

let fold_resolves_constant_branch () =
  let f =
    {
      Ir.fid = 0;
      fname = "f";
      blocks =
        [|
          { Ir.instrs = [| Ir.Mov (0, Ir.Imm 1); Ir.Brc (Ir.Reg 0, 1, 2) |] };
          { Ir.instrs = [| Ir.Ret (Ir.Imm 100) |] };
          { Ir.instrs = [| Ir.Ret (Ir.Imm 200) |] };
        |];
      n_args = 0;
      n_regs = 1;
      frame_size = 16;
    }
  in
  let p = { Ir.funcs = [| f |]; globals = [||]; entry = 0 } in
  let q = O.const_fold p in
  (match q.Ir.funcs.(0).Ir.blocks.(0).Ir.instrs.(1) with
  | Ir.Br 1 -> ()
  | _ -> Alcotest.fail "Brc on constant not resolved");
  let v, _, _ = run_plain q [] in
  check_int "takes then-branch" 100 v

let fold_does_not_cross_blocks () =
  (* Constants known in block 0 must not leak into block 1 (registers
     are mutable across blocks; our folder is block-local). *)
  let f =
    {
      Ir.fid = 0;
      fname = "f";
      blocks =
        [|
          { Ir.instrs = [| Ir.Mov (0, Ir.Imm 7); Ir.Br 1 |] };
          { Ir.instrs = [| Ir.Bin (Ir.Add, 1, Ir.Reg 0, Ir.Imm 1); Ir.Ret (Ir.Reg 1) |] };
        |];
      n_args = 0;
      n_regs = 2;
      frame_size = 16;
    }
  in
  let p = { Ir.funcs = [| f |]; globals = [||]; entry = 0 } in
  let q = O.const_fold p in
  (match q.Ir.funcs.(0).Ir.blocks.(1).Ir.instrs.(0) with
  | Ir.Bin (Ir.Add, 1, Ir.Reg 0, Ir.Imm 1) -> ()
  | _ -> Alcotest.fail "folder crossed a block boundary");
  let v, _, _ = run_plain q [] in
  check_int "still correct" 8 v

(* ------------------------------------------------------------------ *)
(* Simplify                                                            *)
(* ------------------------------------------------------------------ *)

let simplify_identities () =
  let p =
    single ~n_regs:6
      [
        Ir.Mov (0, Ir.Imm 9);
        Ir.Bin (Ir.Add, 1, Ir.Reg 0, Ir.Imm 0);
        Ir.Bin (Ir.Mul, 2, Ir.Reg 1, Ir.Imm 1);
        Ir.Bin (Ir.Mul, 3, Ir.Reg 2, Ir.Imm 0);
        Ir.Bin (Ir.Xor, 4, Ir.Reg 2, Ir.Imm 0);
        Ir.Ret (Ir.Reg 4);
      ]
  in
  let q = O.simplify p in
  let movs =
    List.length
      (List.filter (function Ir.Mov _ -> true | _ -> false) (instrs_of q))
  in
  check_int "all identities became moves" 5 movs;
  let v, _, _ = run_plain q [] in
  check_int "value preserved" 9 v

(* ------------------------------------------------------------------ *)
(* DCE                                                                 *)
(* ------------------------------------------------------------------ *)

let dce_removes_dead () =
  let p =
    single ~n_regs:4
      [
        Ir.Mov (0, Ir.Imm 1);
        Ir.Mov (1, Ir.Imm 2) (* dead *);
        Ir.Bin (Ir.Add, 2, Ir.Reg 1, Ir.Imm 1) (* makes r1 live... *);
        Ir.Ret (Ir.Reg 0);
      ]
  in
  (* r2 is dead -> removed; then r1's use disappears -> r1 dead too:
     the fixpoint matters. *)
  let q = O.dce p in
  check_int "only live code remains" 2 (List.length (instrs_of q));
  let v, _, _ = run_plain q [] in
  check_int "value preserved" 1 v

let dce_keeps_side_effects () =
  let p =
    single ~n_regs:4
      [
        Ir.Frame (0, 0);
        Ir.Store (0, 0, Ir.Imm 5) (* store kept although nothing reads it *);
        Ir.Malloc (1, Ir.Imm 64) (* kept: allocation is observable *);
        Ir.Ret (Ir.Imm 0);
      ]
  in
  let q = O.dce p in
  check_int "nothing removed" 4 (List.length (instrs_of q))

(* ------------------------------------------------------------------ *)
(* CSE                                                                 *)
(* ------------------------------------------------------------------ *)

let cse_removes_duplicate () =
  let p =
    single ~n_regs:6
      [
        Ir.Mov (0, Ir.Imm 6);
        Ir.Mov (1, Ir.Imm 7);
        Ir.Bin (Ir.Mul, 2, Ir.Reg 0, Ir.Reg 1);
        Ir.Bin (Ir.Mul, 3, Ir.Reg 0, Ir.Reg 1) (* duplicate *);
        Ir.Bin (Ir.Add, 4, Ir.Reg 2, Ir.Reg 3);
        Ir.Ret (Ir.Reg 4);
      ]
  in
  let q = O.cse_local p in
  (match List.nth (instrs_of q) 3 with
  | Ir.Mov (3, Ir.Reg 2) -> ()
  | _ -> Alcotest.fail "duplicate not replaced by move");
  let v, _, _ = run_plain q [] in
  check_int "value preserved" 84 v

let cse_respects_redefinition () =
  (* x*y computed, then x changes: the second x*y must NOT be reused. *)
  let p =
    single ~n_regs:6
      [
        Ir.Mov (0, Ir.Imm 2);
        Ir.Mov (1, Ir.Imm 3);
        Ir.Bin (Ir.Mul, 2, Ir.Reg 0, Ir.Reg 1);
        Ir.Mov (0, Ir.Imm 10) (* redefinition *);
        Ir.Bin (Ir.Mul, 3, Ir.Reg 0, Ir.Reg 1);
        Ir.Bin (Ir.Add, 4, Ir.Reg 2, Ir.Reg 3);
        Ir.Ret (Ir.Reg 4);
      ]
  in
  let q = O.cse_local p in
  (match List.nth (instrs_of q) 4 with
  | Ir.Bin (Ir.Mul, 3, Ir.Reg 0, Ir.Reg 1) -> ()
  | Ir.Mov _ -> Alcotest.fail "unsound reuse after redefinition"
  | _ -> Alcotest.fail "unexpected rewrite");
  let v, _, _ = run_plain q [] in
  check_int "6 + 30" 36 v

let cse_self_referential_key () =
  (* acc = acc + 1 twice: the second is NOT redundant. *)
  let p =
    single ~n_regs:2
      [
        Ir.Mov (0, Ir.Imm 5);
        Ir.Bin (Ir.Add, 0, Ir.Reg 0, Ir.Imm 1);
        Ir.Bin (Ir.Add, 0, Ir.Reg 0, Ir.Imm 1);
        Ir.Ret (Ir.Reg 0);
      ]
  in
  let q = O.cse_local p in
  let v, _, _ = run_plain q [] in
  check_int "both increments kept" 7 v

let cse_load_invalidated_by_store () =
  let p =
    single ~n_regs:6
      [
        Ir.Frame (0, 0);
        Ir.Store (0, 0, Ir.Imm 1);
        Ir.Load (1, 0, 0);
        Ir.Store (0, 0, Ir.Imm 2) (* clobbers *);
        Ir.Load (2, 0, 0) (* must reload *);
        Ir.Bin (Ir.Add, 3, Ir.Reg 1, Ir.Reg 2);
        Ir.Ret (Ir.Reg 3);
      ]
  in
  let q = O.cse_local p in
  let v, _, _ = run_plain q [] in
  check_int "1 + 2" 3 v

let cse_reuses_repeated_load () =
  let p =
    single ~n_regs:6
      [
        Ir.Frame (0, 0);
        Ir.Store (0, 0, Ir.Imm 9);
        Ir.Load (1, 0, 0);
        Ir.Load (2, 0, 0) (* redundant *);
        Ir.Bin (Ir.Add, 3, Ir.Reg 1, Ir.Reg 2);
        Ir.Ret (Ir.Reg 3);
      ]
  in
  let q = O.cse_local p in
  (match List.nth (instrs_of q) 3 with
  | Ir.Mov (2, Ir.Reg 1) -> ()
  | _ -> Alcotest.fail "redundant load kept");
  let v, _, _ = run_plain q [] in
  check_int "value" 18 v

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

let call_program () =
  let callee =
    let b = B.func ~fid:1 ~name:"leaf" ~n_args:2 ~frame_size:32 () in
    let r = B.fresh_reg b in
    B.emit b (Ir.Bin (Ir.Mul, r, Ir.Reg 0, Ir.Reg 1));
    let s = B.fresh_reg b in
    B.emit b (Ir.Frame (s, 0));
    B.emit b (Ir.Store (s, 0, Ir.Reg r));
    let out = B.fresh_reg b in
    B.emit b (Ir.Load (out, s, 0));
    B.emit b (Ir.Ret (Ir.Reg out));
    B.finish b
  in
  let main =
    let b = B.func ~fid:0 ~name:"main" ~n_args:0 ~frame_size:48 () in
    let r1 = B.fresh_reg b in
    let r2 = B.fresh_reg b in
    B.emit b (Ir.Call { fn = 1; args = [ Ir.Imm 6; Ir.Imm 7 ]; dst = r1 });
    B.emit b (Ir.Call { fn = 1; args = [ Ir.Imm 2; Ir.Imm 3 ]; dst = r2 });
    let out = B.fresh_reg b in
    B.emit b (Ir.Bin (Ir.Add, out, Ir.Reg r1, Ir.Reg r2));
    B.emit b (Ir.Ret (Ir.Reg out));
    B.finish b
  in
  B.program ~funcs:[ main; callee ] ~globals:[] ~entry:0

let inline_replaces_calls () =
  let p = call_program () in
  let q = O.inline_leaves p in
  let calls =
    Array.fold_left
      (fun acc blk ->
        acc
        + Array.fold_left
            (fun a i -> match i with Ir.Call _ -> a + 1 | _ -> a)
            0 blk.Ir.instrs)
      0 q.Ir.funcs.(0).Ir.blocks
  in
  check_int "no calls remain in main" 0 calls;
  V.check_exn q;
  let v, _, _ = run_plain q [] in
  check_int "semantics preserved" 48 v

let inline_grows_frame () =
  let p = call_program () in
  let q = O.inline_leaves p in
  check_int "frame absorbs callee" (48 + 32) q.Ir.funcs.(0).Ir.frame_size

let inline_respects_threshold () =
  let p = call_program () in
  let q = O.inline_leaves ~threshold:2 p in
  let calls =
    Array.fold_left
      (fun acc blk ->
        acc
        + Array.fold_left
            (fun a i -> match i with Ir.Call _ -> a + 1 | _ -> a)
            0 blk.Ir.instrs)
      0 q.Ir.funcs.(0).Ir.blocks
  in
  check_int "too big to inline" 2 calls

let inline_skips_multiblock () =
  (* A callee with a branch is not inlined. *)
  let callee =
    let b = B.func ~fid:1 ~name:"branchy" ~n_args:1 () in
    let t = B.new_block b in
    let e = B.new_block b in
    B.emit b (Ir.Brc (Ir.Reg 0, t, e));
    B.set_block b t;
    B.emit b (Ir.Ret (Ir.Imm 1));
    B.set_block b e;
    B.emit b (Ir.Ret (Ir.Imm 2));
    B.finish b
  in
  let main =
    let b = B.func ~fid:0 ~name:"main" ~n_args:0 () in
    let r = B.fresh_reg b in
    B.emit b (Ir.Call { fn = 1; args = [ Ir.Imm 1 ]; dst = r });
    B.emit b (Ir.Ret (Ir.Reg r));
    B.finish b
  in
  let p = B.program ~funcs:[ main; callee ] ~globals:[] ~entry:0 in
  let q = O.inline_leaves p in
  (match q.Ir.funcs.(0).Ir.blocks.(0).Ir.instrs.(0) with
  | Ir.Call _ -> ()
  | _ -> Alcotest.fail "multi-block callee was inlined")

(* ------------------------------------------------------------------ *)
(* Copy propagation                                                    *)
(* ------------------------------------------------------------------ *)

let copy_prop_rewrites_uses () =
  let p =
    single ~n_regs:4
      [
        Ir.Mov (0, Ir.Imm 5);
        Ir.Mov (1, Ir.Reg 0) (* copy *);
        Ir.Bin (Ir.Add, 2, Ir.Reg 1, Ir.Reg 1);
        Ir.Ret (Ir.Reg 2);
      ]
  in
  let q = O.copy_propagate p in
  (match List.nth (instrs_of q) 2 with
  | Ir.Bin (Ir.Add, 2, Ir.Reg 0, Ir.Reg 0) -> ()
  | _ -> Alcotest.fail "uses not rewritten to the copy source");
  (* The now-dead move disappears under DCE. *)
  let r = O.dce q in
  check_int "dead copy removed" 3 (List.length (instrs_of r));
  let v, _, _ = run_plain r [] in
  check_int "value preserved" 10 v

let copy_prop_respects_redefinition () =
  (* After the source is overwritten, the copy must no longer be used. *)
  let p =
    single ~n_regs:4
      [
        Ir.Mov (0, Ir.Imm 5);
        Ir.Mov (1, Ir.Reg 0);
        Ir.Mov (0, Ir.Imm 9) (* source redefined *);
        Ir.Bin (Ir.Add, 2, Ir.Reg 1, Ir.Reg 0);
        Ir.Ret (Ir.Reg 2);
      ]
  in
  let q = O.copy_propagate p in
  let v, _, _ = run_plain q [] in
  check_int "5 + 9" 14 v

let copy_prop_chains () =
  (* r2 = r1 = r0: uses of r2 go straight to r0. *)
  let p =
    single ~n_regs:4
      [
        Ir.Mov (0, Ir.Imm 3);
        Ir.Mov (1, Ir.Reg 0);
        Ir.Mov (2, Ir.Reg 1);
        Ir.Ret (Ir.Reg 2);
      ]
  in
  let q = O.copy_propagate p in
  (match List.nth (instrs_of q) 3 with
  | Ir.Ret (Ir.Reg 0) -> ()
  | _ -> Alcotest.fail "chain not collapsed");
  let v, _, _ = run_plain q [] in
  check_int "value" 3 v

let copy_prop_preserves_semantics =
  QCheck.Test.make ~name:"copy propagation preserves results" ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let prof =
        {
          Stz_workloads.Profile.default with
          Stz_workloads.Profile.name = "cp-test";
          functions = 6;
          hot_functions = 3;
          iterations = 4;
          inner_trips = 5;
          seed = Int64.of_int (seed + 900);
        }
      in
      let p = Stz_workloads.Generate.program prof in
      let reference, _, _ = run_plain p [ 1 ] in
      let q = O.dce (O.copy_propagate p) in
      V.check_program q = []
      &&
      let v, _, _ = run_plain q [ 1 ] in
      v = reference)

(* ------------------------------------------------------------------ *)
(* strip_dead                                                          *)
(* ------------------------------------------------------------------ *)

let strip_dead_program () =
  let mk_ret fid value refs_global =
    let b = B.func ~fid ~name:(Printf.sprintf "f%d" fid) ~n_args:0 () in
    if refs_global >= 0 then begin
      let r = B.fresh_reg b in
      B.emit b (Ir.Global (r, refs_global))
    end;
    B.emit b (Ir.Ret (Ir.Imm value));
    B.finish b
  in
  let main =
    let b = B.func ~fid:0 ~name:"main" ~n_args:0 () in
    let r = B.fresh_reg b in
    B.emit b (Ir.Call { fn = 2; args = []; dst = r });
    B.emit b (Ir.Ret (Ir.Reg r));
    B.finish b
  in
  let globals =
    [
      { Ir.gid = 0; gname = "dead_g"; gsize = 64 };
      { Ir.gid = 1; gname = "live_g"; gsize = 64 };
    ]
  in
  (* f1 is dead (references dead_g), f2 is live (references live_g). *)
  B.program ~funcs:[ main; mk_ret 1 11 0; mk_ret 2 22 1 ] ~globals ~entry:0

let strip_dead_removes () =
  let p = strip_dead_program () in
  let q = O.strip_dead p in
  check_int "one function stripped" 2 (Array.length q.Ir.funcs);
  check_int "one global stripped" 1 (Array.length q.Ir.globals);
  V.check_exn q;
  let v, _, _ = run_plain q [] in
  check_int "semantics preserved" 22 v

let strip_dead_renumbers () =
  let q = O.strip_dead (strip_dead_program ()) in
  Array.iteri (fun i f -> check_int "dense fid" i f.Ir.fid) q.Ir.funcs;
  Array.iteri (fun i (g : Ir.global) -> check_int "dense gid" i g.Ir.gid) q.Ir.globals

(* ------------------------------------------------------------------ *)
(* Pipelines on generated workloads                                    *)
(* ------------------------------------------------------------------ *)

let small_profile seed =
  {
    Stz_workloads.Profile.default with
    Stz_workloads.Profile.name = "opt-test";
    functions = 6;
    hot_functions = 3;
    iterations = 4;
    inner_trips = 5;
    dead_functions = 2;
    seed;
  }

let pipelines_preserve_semantics =
  QCheck.Test.make ~name:"O0..O3 compute identical results" ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let p = Stz_workloads.Generate.program (small_profile (Int64.of_int (seed + 1))) in
      let reference, _, _ = run_plain (O.apply O.O0 p) [ 1 ] in
      List.for_all
        (fun level ->
          let v, _, _ = run_plain (O.apply level p) [ 1 ] in
          v = reference)
        [ O.O1; O.O2; O.O3 ])

let pipelines_validate =
  QCheck.Test.make ~name:"optimized programs validate" ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let p = Stz_workloads.Generate.program (small_profile (Int64.of_int (seed + 500))) in
      List.for_all
        (fun level -> V.check_program (O.apply level p) = [])
        [ O.O0; O.O1; O.O2; O.O3 ])

let levels_reduce_work () =
  let p = Stz_workloads.Generate.program (small_profile 7L) in
  let measure level =
    let _, cycles, instrs = run_plain (O.apply level p) [ 1 ] in
    (cycles, instrs)
  in
  let c0, i0 = measure O.O0 in
  let c1, i1 = measure O.O1 in
  let c2, _ = measure O.O2 in
  let c3, _ = measure O.O3 in
  check_bool "O1 executes fewer instructions than O0" true (i1 < i0);
  check_bool "O1 is faster than O0" true (c1 < c0);
  check_bool "O2 is no slower than O1" true (c2 <= c1);
  check_bool "O3 is within noise of O2" true
    (float_of_int c3 < float_of_int c2 *. 1.02)

let o3_strips_dead_functions () =
  let p = Stz_workloads.Generate.program (small_profile 9L) in
  let q = O.apply O.O3 p in
  check_bool "dead functions removed" true
    (Array.length q.Ir.funcs < Array.length p.Ir.funcs)

let level_strings () =
  List.iter
    (fun l ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (O.level_to_string l))
        (Option.map O.level_to_string (O.level_of_string (O.level_to_string l))))
    [ O.O0; O.O1; O.O2; O.O3 ]

let () =
  Alcotest.run "opt"
    [
      ( "const_fold",
        [
          Alcotest.test_case "collapses chain" `Quick fold_collapses_chain;
          Alcotest.test_case "constant branch" `Quick fold_resolves_constant_branch;
          Alcotest.test_case "block-local only" `Quick fold_does_not_cross_blocks;
        ] );
      ("simplify", [ Alcotest.test_case "identities" `Quick simplify_identities ]);
      ( "dce",
        [
          Alcotest.test_case "removes dead (fixpoint)" `Quick dce_removes_dead;
          Alcotest.test_case "keeps side effects" `Quick dce_keeps_side_effects;
        ] );
      ( "cse",
        [
          Alcotest.test_case "removes duplicate" `Quick cse_removes_duplicate;
          Alcotest.test_case "redefinition safe" `Quick cse_respects_redefinition;
          Alcotest.test_case "self-referential" `Quick cse_self_referential_key;
          Alcotest.test_case "store invalidates load" `Quick cse_load_invalidated_by_store;
          Alcotest.test_case "reuses repeated load" `Quick cse_reuses_repeated_load;
        ] );
      ( "inline",
        [
          Alcotest.test_case "replaces calls" `Quick inline_replaces_calls;
          Alcotest.test_case "grows frame" `Quick inline_grows_frame;
          Alcotest.test_case "threshold" `Quick inline_respects_threshold;
          Alcotest.test_case "skips multi-block" `Quick inline_skips_multiblock;
        ] );
      ( "copy_propagate",
        [
          Alcotest.test_case "rewrites uses" `Quick copy_prop_rewrites_uses;
          Alcotest.test_case "redefinition safe" `Quick copy_prop_respects_redefinition;
          Alcotest.test_case "chains" `Quick copy_prop_chains;
          QCheck_alcotest.to_alcotest copy_prop_preserves_semantics;
        ] );
      ( "strip_dead",
        [
          Alcotest.test_case "removes" `Quick strip_dead_removes;
          Alcotest.test_case "renumbers" `Quick strip_dead_renumbers;
        ] );
      ( "pipelines",
        [
          QCheck_alcotest.to_alcotest pipelines_preserve_semantics;
          QCheck_alcotest.to_alcotest pipelines_validate;
          Alcotest.test_case "levels reduce work" `Quick levels_reduce_work;
          Alcotest.test_case "O3 strips dead" `Quick o3_strips_dead_functions;
          Alcotest.test_case "level strings" `Quick level_strings;
        ] );
    ]
