module A = Stz_alloc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let arena () = A.Arena.create ~base:0x1000_0000 ~size:(64 * 1024 * 1024)

(* ------------------------------------------------------------------ *)
(* Arena                                                               *)
(* ------------------------------------------------------------------ *)

let arena_alignment () =
  let a = arena () in
  let p1 = A.Arena.sbrk a 10 in
  let p2 = A.Arena.sbrk a 10 in
  check_int "aligned start" 0 (p1 land 15);
  check_int "16-byte spacing" 16 (p2 - p1);
  check_int "used" 32 (A.Arena.used a)

let arena_exhaustion () =
  let a = A.Arena.create ~base:0 ~size:64 in
  ignore (A.Arena.sbrk a 48);
  Alcotest.check_raises "out of memory" Out_of_memory (fun () ->
      ignore (A.Arena.sbrk a 32))

(* ------------------------------------------------------------------ *)
(* Size classes                                                        *)
(* ------------------------------------------------------------------ *)

let size_class_roundtrip () =
  check_int "16 -> class 0" 0 (A.Segregated.class_of_size 16);
  check_int "17 -> class 1" 1 (A.Segregated.class_of_size 17);
  check_int "class 1 -> 32" 32 (A.Segregated.size_of_class 1);
  check_int "1 byte -> class 0" 0 (A.Segregated.class_of_size 1);
  for size = 1 to 5000 do
    let c = A.Segregated.class_of_size size in
    check_bool "class covers size" true (A.Segregated.size_of_class c >= size);
    if c > 0 then
      check_bool "class is tight" true (A.Segregated.size_of_class (c - 1) < size)
  done

(* ------------------------------------------------------------------ *)
(* Generic allocator behaviour, run against all three base heaps       *)
(* ------------------------------------------------------------------ *)

let allocators () =
  [
    ("segregated", A.Segregated.create (arena ()));
    ("tlsf", A.Tlsf.create (arena ()));
    ("diehard", A.Diehard.create (arena ()));
  ]

let live_blocks_disjoint () =
  List.iter
    (fun (name, alloc) ->
      let rng = Stz_prng.Xorshift.create ~seed:42L in
      let live = ref [] in
      for _ = 1 to 500 do
        if Stz_prng.Xorshift.next_float rng < 0.6 || !live = [] then begin
          let size = 1 + Stz_prng.Xorshift.next_int rng 2000 in
          let addr = alloc.A.Allocator.malloc size in
          let usable = alloc.A.Allocator.usable_size addr in
          check_bool (name ^ ": usable covers request") true (usable >= size);
          (* No overlap with any live block. *)
          List.iter
            (fun (a, s) ->
              check_bool
                (Printf.sprintf "%s: [%x,%x) disjoint from [%x,%x)" name addr
                   (addr + usable) a (a + s))
                true
                (addr + usable <= a || a + s <= addr))
            !live;
          live := (addr, usable) :: !live
        end
        else begin
          match !live with
          | (addr, _) :: rest ->
              alloc.A.Allocator.free addr;
              live := rest
          | [] -> ()
        end
      done)
    (allocators ())

let stats_track_balance () =
  List.iter
    (fun (name, alloc) ->
      let a1 = alloc.A.Allocator.malloc 100 in
      let a2 = alloc.A.Allocator.malloc 200 in
      let s = alloc.A.Allocator.stats () in
      check_int (name ^ ": allocations") 2 s.A.Allocator.allocations;
      check_int (name ^ ": live bytes") 300 s.A.Allocator.live_bytes;
      alloc.A.Allocator.free a1;
      alloc.A.Allocator.free a2;
      let s = alloc.A.Allocator.stats () in
      check_int (name ^ ": frees") 2 s.A.Allocator.frees;
      check_int (name ^ ": drained") 0 s.A.Allocator.live_bytes)
    (allocators ())

let double_free_rejected () =
  List.iter
    (fun (name, alloc) ->
      let a = alloc.A.Allocator.malloc 64 in
      alloc.A.Allocator.free a;
      let raised =
        try
          alloc.A.Allocator.free a;
          false
        with Invalid_argument _ -> true
      in
      check_bool (name ^ ": double free raises") true raised)
    (allocators ())

(* ------------------------------------------------------------------ *)
(* Segregated specifics                                                *)
(* ------------------------------------------------------------------ *)

let segregated_lifo_reuse () =
  let alloc = A.Segregated.create (arena ()) in
  let a = alloc.A.Allocator.malloc 100 in
  alloc.A.Allocator.free a;
  let b = alloc.A.Allocator.malloc 100 in
  check_int "deterministic LIFO reuse" a b

let segregated_rounding_waste () =
  let alloc = A.Segregated.create (arena ()) in
  (* 72 KiB rounds to 128 KiB: the cactusADM effect. *)
  ignore (alloc.A.Allocator.malloc 73000);
  let s = alloc.A.Allocator.stats () in
  check_int "reserved is next power of two" 131072 s.A.Allocator.reserved_bytes

(* ------------------------------------------------------------------ *)
(* TLSF specifics                                                      *)
(* ------------------------------------------------------------------ *)

let tlsf_mapping_monotone () =
  let prev = ref (-1, -1) in
  for size = 16 to 10000 do
    let fl, sl = A.Tlsf.mapping size in
    check_bool "mapping nondecreasing" true ((fl, sl) >= !prev);
    prev := (fl, sl)
  done

let tlsf_no_rounding_waste () =
  let alloc = A.Tlsf.create (arena ()) in
  ignore (alloc.A.Allocator.malloc 73000);
  let s = alloc.A.Allocator.stats () in
  (* TLSF reserves in chunks but the block itself is not rounded to a
     power of two; reserved space stays below the segregated heap's. *)
  check_bool "reserved < pow2 rounding" true (s.A.Allocator.reserved_bytes < 131072)

let tlsf_coalescing () =
  let alloc = A.Tlsf.create (arena ()) in
  (* Fill a region with small blocks, free them all, then a large
     request must fit in the coalesced space without growing. *)
  let blocks = List.init 64 (fun _ -> alloc.A.Allocator.malloc 1024) in
  let reserved_before = (alloc.A.Allocator.stats ()).A.Allocator.reserved_bytes in
  List.iter alloc.A.Allocator.free blocks;
  ignore (alloc.A.Allocator.malloc (48 * 1024));
  let reserved_after = (alloc.A.Allocator.stats ()).A.Allocator.reserved_bytes in
  check_int "no new memory reserved" reserved_before reserved_after

let tlsf_split_returns_remainder () =
  let alloc = A.Tlsf.create (arena ()) in
  let a = alloc.A.Allocator.malloc 4096 in
  alloc.A.Allocator.free a;
  (* A small allocation splits the 4 KiB block; a second small one must
     fit in the remainder (same chunk). *)
  let b = alloc.A.Allocator.malloc 64 in
  let c = alloc.A.Allocator.malloc 64 in
  check_bool "both in the freed region" true
    (b >= a && b < a + 4096 && c >= a && c < a + 4096)

let tlsf_stress =
  QCheck.Test.make ~name:"tlsf random malloc/free keeps blocks disjoint" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let alloc = A.Tlsf.create (arena ()) in
      let rng = Stz_prng.Xorshift.create ~seed:(Int64.of_int (seed + 1)) in
      let live = Hashtbl.create 64 in
      let ok = ref true in
      for _ = 1 to 400 do
        if Stz_prng.Xorshift.next_float rng < 0.6 || Hashtbl.length live = 0 then begin
          let size = 16 + Stz_prng.Xorshift.next_int rng 4000 in
          let addr = alloc.A.Allocator.malloc size in
          let usable = alloc.A.Allocator.usable_size addr in
          Hashtbl.iter
            (fun a s -> if not (addr + usable <= a || a + s <= addr) then ok := false)
            live;
          Hashtbl.replace live addr usable
        end
        else begin
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
          let k = List.nth keys (Stz_prng.Xorshift.next_int rng (List.length keys)) in
          alloc.A.Allocator.free k;
          Hashtbl.remove live k
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* DieHard specifics                                                   *)
(* ------------------------------------------------------------------ *)

let diehard_no_immediate_reuse () =
  let alloc = A.Diehard.create ~source:(Stz_prng.Source.marsaglia ~seed:5L) (arena ()) in
  (* Freed memory is not preferentially reused: across many free/malloc
     pairs, at least some allocations land elsewhere. *)
  let different = ref 0 in
  for _ = 1 to 50 do
    let a = alloc.A.Allocator.malloc 64 in
    alloc.A.Allocator.free a;
    let b = alloc.A.Allocator.malloc 64 in
    if a <> b then incr different;
    alloc.A.Allocator.free b
  done;
  check_bool "mostly not reused" true (!different > 30)

let diehard_randomized_addresses () =
  let alloc = A.Diehard.create ~source:(Stz_prng.Source.marsaglia ~seed:6L) (arena ()) in
  let addrs = List.init 50 (fun _ -> alloc.A.Allocator.malloc 64) in
  let sorted = List.sort compare addrs in
  check_bool "not bump-sequential" true (addrs <> sorted)

(* ------------------------------------------------------------------ *)
(* Shuffle layer                                                       *)
(* ------------------------------------------------------------------ *)

let shuffle_randomizes_base_order () =
  let source = Stz_prng.Source.marsaglia ~seed:7L in
  let alloc = A.Shuffle.create ~source ~n:64 (A.Segregated.create (arena ())) in
  let addrs = List.init 100 (fun _ -> alloc.A.Allocator.malloc 64) in
  let sorted = List.sort compare addrs in
  check_bool "order shuffled" true (addrs <> sorted);
  check_bool "no duplicates" true
    (List.length (List.sort_uniq compare addrs) = 100)

let shuffle_deterministic_by_seed () =
  let mk seed =
    let alloc =
      A.Shuffle.create ~source:(Stz_prng.Source.marsaglia ~seed) ~n:32
        (A.Segregated.create (arena ()))
    in
    List.init 50 (fun _ -> alloc.A.Allocator.malloc 32)
  in
  check_bool "same seed same layout" true (mk 9L = mk 9L);
  check_bool "different seed differs" true (mk 9L <> mk 10L)

let shuffle_free_goes_to_base () =
  let source = Stz_prng.Source.marsaglia ~seed:11L in
  let base = A.Segregated.create (arena ()) in
  let alloc = A.Shuffle.create ~source ~n:8 base in
  let addrs = List.init 20 (fun _ -> alloc.A.Allocator.malloc 64) in
  List.iter alloc.A.Allocator.free addrs;
  let s = alloc.A.Allocator.stats () in
  (* 20 frees hit the base heap (through swaps). *)
  check_int "frees forwarded" 20 s.A.Allocator.frees

let shuffle_n1_still_works () =
  let source = Stz_prng.Source.marsaglia ~seed:12L in
  let alloc = A.Shuffle.create ~source ~n:1 (A.Segregated.create (arena ())) in
  let a = alloc.A.Allocator.malloc 64 in
  alloc.A.Allocator.free a;
  let b = alloc.A.Allocator.malloc 64 in
  check_bool "valid addresses" true (a > 0 && b > 0)

let shuffle_improves_randomness () =
  (* The paper's §3.2 claim, miniaturized: on the index-bit window a
     256-entry pool spans, the shuffled heap's allocation stream looks
     random while the deterministic base heap's does not. *)
  let base = A.Segregated.create (arena ()) in
  let base_addrs = Array.init 8192 (fun _ -> base.A.Allocator.malloc 64) in
  let shuffled =
    A.Shuffle.create ~source:(Stz_prng.Source.marsaglia ~seed:13L) ~n:256
      (A.Segregated.create (arena ()))
  in
  let shuffled_addrs = Array.init 8192 (fun _ -> shuffled.A.Allocator.malloc 64) in
  let score addrs =
    let seq = Stz_nist.Bitseq.of_addresses ~lo:6 ~hi:13 addrs in
    fst (Stz_nist.Tests.summary (Stz_nist.Tests.all ~alpha:0.01 seq))
  in
  let base_score = score base_addrs in
  let shuffled_score = score shuffled_addrs in
  check_bool
    (Printf.sprintf "shuffled (%d) > base (%d)" shuffled_score base_score)
    true
    (shuffled_score > base_score);
  check_bool "shuffled passes >= 6 of 7" true (shuffled_score >= 6)

let factory_kinds () =
  List.iter
    (fun kind ->
      let alloc = A.Factory.base kind (arena ()) in
      let a = alloc.A.Allocator.malloc 64 in
      check_bool "valid" true (a > 0);
      let r =
        A.Factory.randomized ~source:(Stz_prng.Source.marsaglia ~seed:1L) kind (arena ())
      in
      check_bool "randomized valid" true (r.A.Allocator.malloc 64 > 0))
    [ A.Allocator.Segregated; A.Allocator.Tlsf; A.Allocator.Diehard ]

let kind_strings () =
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (A.Allocator.kind_to_string k))
        (Option.map A.Allocator.kind_to_string
           (A.Allocator.kind_of_string (A.Allocator.kind_to_string k))))
    [ A.Allocator.Segregated; A.Allocator.Tlsf; A.Allocator.Diehard ]

let () =
  Alcotest.run "alloc"
    [
      ( "arena",
        [
          Alcotest.test_case "alignment" `Quick arena_alignment;
          Alcotest.test_case "exhaustion" `Quick arena_exhaustion;
        ] );
      ("size classes", [ Alcotest.test_case "roundtrip" `Quick size_class_roundtrip ]);
      ( "generic",
        [
          Alcotest.test_case "live blocks disjoint" `Quick live_blocks_disjoint;
          Alcotest.test_case "stats balance" `Quick stats_track_balance;
          Alcotest.test_case "double free" `Quick double_free_rejected;
        ] );
      ( "segregated",
        [
          Alcotest.test_case "LIFO reuse" `Quick segregated_lifo_reuse;
          Alcotest.test_case "rounding waste" `Quick segregated_rounding_waste;
        ] );
      ( "tlsf",
        [
          Alcotest.test_case "mapping monotone" `Quick tlsf_mapping_monotone;
          Alcotest.test_case "no rounding waste" `Quick tlsf_no_rounding_waste;
          Alcotest.test_case "coalescing" `Quick tlsf_coalescing;
          Alcotest.test_case "split remainder" `Quick tlsf_split_returns_remainder;
          QCheck_alcotest.to_alcotest tlsf_stress;
        ] );
      ( "diehard",
        [
          Alcotest.test_case "no immediate reuse" `Quick diehard_no_immediate_reuse;
          Alcotest.test_case "randomized addresses" `Quick diehard_randomized_addresses;
        ] );
      ( "shuffle",
        [
          Alcotest.test_case "randomizes order" `Quick shuffle_randomizes_base_order;
          Alcotest.test_case "deterministic by seed" `Quick shuffle_deterministic_by_seed;
          Alcotest.test_case "frees forwarded" `Quick shuffle_free_goes_to_base;
          Alcotest.test_case "N=1 works" `Quick shuffle_n1_still_works;
          Alcotest.test_case "improves randomness" `Quick shuffle_improves_randomness;
        ] );
      ( "factory",
        [
          Alcotest.test_case "kinds" `Quick factory_kinds;
          Alcotest.test_case "kind strings" `Quick kind_strings;
        ] );
    ]
