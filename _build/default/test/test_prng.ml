module P = Stz_prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* SplitMix64                                                          *)
(* ------------------------------------------------------------------ *)

let splitmix_known_vector () =
  (* Published test vector: the first outputs of SplitMix64 seeded 0. *)
  let g = P.Splitmix.create 0L in
  Alcotest.(check int64) "first" 0xE220A8397B1DCDAFL (P.Splitmix.next g);
  Alcotest.(check int64) "second" 0x6E789E6AA1B965F4L (P.Splitmix.next g);
  Alcotest.(check int64) "third" 0x06C45D188009454FL (P.Splitmix.next g)

let splitmix_split_differs () =
  let g = P.Splitmix.create 42L in
  let a = P.Splitmix.split g in
  let b = P.Splitmix.split g in
  check_bool "derived seeds differ" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Marsaglia                                                           *)
(* ------------------------------------------------------------------ *)

let marsaglia_deterministic () =
  let a = P.Marsaglia.create ~seed:123L in
  let b = P.Marsaglia.create ~seed:123L in
  for _ = 1 to 100 do
    check_int "same stream" (P.Marsaglia.next a) (P.Marsaglia.next b)
  done

let marsaglia_range () =
  let g = P.Marsaglia.create ~seed:7L in
  for _ = 1 to 10_000 do
    let v = P.Marsaglia.next g in
    check_bool "in [0, 2^32)" true (v >= 0 && v < 0x100000000)
  done

let marsaglia_seeds_differ () =
  let a = P.Marsaglia.create ~seed:1L in
  let b = P.Marsaglia.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 50 do
    if P.Marsaglia.next a = P.Marsaglia.next b then incr same
  done;
  check_bool "streams mostly differ" true (!same < 5)

let marsaglia_zero_seed () =
  let g = P.Marsaglia.create ~seed:0L in
  (* The zero state must be remapped, not produce a constant stream. *)
  let a = P.Marsaglia.next g in
  let b = P.Marsaglia.next g in
  check_bool "not stuck" true (a <> b || a <> 0)

let marsaglia_next_in_bounds () =
  let g = P.Marsaglia.create ~seed:99L in
  for n = 1 to 50 do
    for _ = 1 to 100 do
      let v = P.Marsaglia.next_in g n in
      check_bool "in range" true (v >= 0 && v < n)
    done
  done

(* ------------------------------------------------------------------ *)
(* lrand48                                                             *)
(* ------------------------------------------------------------------ *)

let lrand48_is_posix_lcg () =
  (* Re-derive the values from the published LCG recurrence. *)
  let g = P.Lrand48.create ~seed:12345 in
  let state = ref Int64.(logor (shift_left (of_int 12345) 16) 0x330EL) in
  for _ = 1 to 100 do
    state :=
      Int64.(logand (add (mul 0x5DEECE66DL !state) 0xBL) 0xFFFFFFFFFFFFL);
    let expected = Int64.to_int (Int64.shift_right_logical !state 17) in
    check_int "matches recurrence" expected (P.Lrand48.next g)
  done

let lrand48_range () =
  let g = P.Lrand48.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = P.Lrand48.next g in
    check_bool "31-bit" true (v >= 0 && v < 0x80000000)
  done

(* ------------------------------------------------------------------ *)
(* xorshift                                                            *)
(* ------------------------------------------------------------------ *)

let xorshift_zero_seed_ok () =
  let g = P.Xorshift.create ~seed:0L in
  check_bool "produces non-zero output" true (P.Xorshift.next g <> 0L)

let xorshift_float_range () =
  let g = P.Xorshift.create ~seed:5L in
  let sum = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    let f = P.Xorshift.next_float g in
    check_bool "in [0,1)" true (f >= 0.0 && f < 1.0);
    sum := !sum +. f
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let xorshift_int_uniformish () =
  let g = P.Xorshift.create ~seed:77L in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = P.Xorshift.next_int g 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      check_bool "each bucket near n/10" true
        (abs (c - (n / 10)) < n / 50))
    counts

(* ------------------------------------------------------------------ *)
(* Source                                                              *)
(* ------------------------------------------------------------------ *)

let source_int_bounds =
  QCheck.Test.make ~name:"Source.int stays in bounds" ~count:500
    QCheck.(pair (int_bound 60) (int_range 1 1_000_000))
    (fun (seed, n) ->
      let src = P.Source.xorshift ~seed:(Int64.of_int (seed + 1)) in
      let v = P.Source.int src n in
      v >= 0 && v < n)

let source_shuffle_is_permutation =
  QCheck.Test.make ~name:"Source.shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      let b = Array.copy a in
      let src = P.Source.marsaglia ~seed:(Int64.of_int (seed + 1)) in
      P.Source.shuffle_in_place src b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let source_shuffle_actually_shuffles () =
  let src = P.Source.xorshift ~seed:3L in
  let a = Array.init 100 (fun i -> i) in
  P.Source.shuffle_in_place src a;
  check_bool "not identity" true (a <> Array.init 100 (fun i -> i))

let source_bool_balanced () =
  let src = P.Source.marsaglia ~seed:9L in
  let trues = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if P.Source.bool src then incr trues
  done;
  check_bool "roughly fair" true (abs (!trues - (n / 2)) < n / 25)

let source_lrand48_combines_draws () =
  (* The 32-bit facade over lrand48 must still be deterministic. *)
  let a = P.Source.lrand48 ~seed:10L in
  let b = P.Source.lrand48 ~seed:10L in
  for _ = 1 to 50 do
    check_int "same" (a.P.Source.next_u32 ()) (b.P.Source.next_u32 ())
  done

let () =
  Alcotest.run "prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "known vector" `Quick splitmix_known_vector;
          Alcotest.test_case "split differs" `Quick splitmix_split_differs;
        ] );
      ( "marsaglia",
        [
          Alcotest.test_case "deterministic" `Quick marsaglia_deterministic;
          Alcotest.test_case "range" `Quick marsaglia_range;
          Alcotest.test_case "seeds differ" `Quick marsaglia_seeds_differ;
          Alcotest.test_case "zero seed" `Quick marsaglia_zero_seed;
          Alcotest.test_case "next_in bounds" `Quick marsaglia_next_in_bounds;
        ] );
      ( "lrand48",
        [
          Alcotest.test_case "posix recurrence" `Quick lrand48_is_posix_lcg;
          Alcotest.test_case "range" `Quick lrand48_range;
        ] );
      ( "xorshift",
        [
          Alcotest.test_case "zero seed ok" `Quick xorshift_zero_seed_ok;
          Alcotest.test_case "float range" `Quick xorshift_float_range;
          Alcotest.test_case "int uniformish" `Quick xorshift_int_uniformish;
        ] );
      ( "source",
        [
          QCheck_alcotest.to_alcotest source_int_bounds;
          QCheck_alcotest.to_alcotest source_shuffle_is_permutation;
          Alcotest.test_case "shuffle shuffles" `Quick source_shuffle_actually_shuffles;
          Alcotest.test_case "bool balanced" `Quick source_bool_balanced;
          Alcotest.test_case "lrand48 facade" `Quick source_lrand48_combines_draws;
        ] );
    ]
