module W = Stz_workloads
module Ir = Stz_vm.Ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_valid () =
  List.iter
    (fun prof ->
      let p = W.Generate.program prof in
      Alcotest.(check (list string))
        (prof.W.Profile.name ^ " validates")
        []
        (List.map
           (fun e -> e.Stz_vm.Validate.where ^ ": " ^ e.Stz_vm.Validate.what)
           (Stz_vm.Validate.check_program p)))
    W.Spec.all

let eighteen_benchmarks () =
  check_int "suite size" 18 (List.length W.Spec.all);
  let names = List.map (fun p -> p.W.Profile.name) W.Spec.all in
  check_int "names unique" 18 (List.length (List.sort_uniq compare names))

let spec_find () =
  check_bool "finds astar" true (W.Spec.find "astar" <> None);
  check_bool "case-insensitive" true (W.Spec.find "CACTUSadm" <> None);
  check_bool "unknown is None" true (W.Spec.find "doom3" = None)

let generation_deterministic () =
  let p1 = W.Generate.program W.Spec.astar in
  let p2 = W.Generate.program W.Spec.astar in
  check_int "same code size" (Ir.program_size_bytes p1) (Ir.program_size_bytes p2);
  check_int "same function count" (Array.length p1.Ir.funcs) (Array.length p2.Ir.funcs)

let structure_matches_profile () =
  let prof = W.Spec.gcc in
  let p = W.Generate.program prof in
  (* main + helpers + work + dead *)
  check_int "function count"
    (1 + prof.W.Profile.leaf_helpers + prof.W.Profile.functions
   + prof.W.Profile.dead_functions)
    (Array.length p.Ir.funcs);
  check_int "global count"
    (prof.W.Profile.large_arrays + prof.W.Profile.globals)
    (Array.length p.Ir.globals);
  check_int "entry is main" 0 p.Ir.entry

let dead_functions_unreachable () =
  let prof = W.Spec.perlbench in
  let p = W.Generate.program prof in
  (* Reachable set from main must exclude exactly the dead functions. *)
  let n = Array.length p.Ir.funcs in
  let reachable = Array.make n false in
  let rec visit fid =
    if not reachable.(fid) then begin
      reachable.(fid) <- true;
      List.iter visit (Ir.callees p.Ir.funcs.(fid))
    end
  in
  visit p.Ir.entry;
  let unreachable = Array.fold_left (fun a r -> if r then a else a + 1) 0 reachable in
  check_bool "at least the declared dead functions" true
    (unreachable >= prof.W.Profile.dead_functions)

let programs_terminate () =
  (* Every benchmark, scaled down hard, must run to completion within a
     modest fuel budget. *)
  List.iter
    (fun prof ->
      let prof = W.Profile.scale 0.05 prof in
      let p = W.Generate.program prof in
      let r =
        Stabilizer.Runtime.run
          ~limits:{ Stz_vm.Interp.max_instructions = 50_000_000; max_call_depth = 64 }
          ~config:Stabilizer.Config.baseline ~seed:1L p ~args:W.Generate.default_args
      in
      check_bool (prof.W.Profile.name ^ " produced work") true (r.Stabilizer.Runtime.cycles > 1000))
    W.Spec.all

let sized_inputs () =
  let r = W.Spec.sized `Ref W.Spec.astar in
  let t = W.Spec.sized `Train W.Spec.astar in
  let e = W.Spec.sized `Test W.Spec.astar in
  check_int "ref unchanged" W.Spec.astar.W.Profile.iterations r.W.Profile.iterations;
  check_bool "test < train < ref" true
    (e.W.Profile.iterations < t.W.Profile.iterations
    && t.W.Profile.iterations < r.W.Profile.iterations)

let scale_changes_iterations () =
  let p = W.Profile.scale 0.5 W.Spec.astar in
  check_int "halved" (int_of_float (float_of_int W.Spec.astar.W.Profile.iterations *. 0.5))
    p.W.Profile.iterations;
  let tiny = W.Profile.scale 0.0001 W.Spec.astar in
  check_int "never below 1" 1 tiny.W.Profile.iterations

let code_sizes_reasonable () =
  List.iter
    (fun prof ->
      let p = W.Generate.program prof in
      let bytes = Ir.program_size_bytes p in
      check_bool
        (Printf.sprintf "%s code size %d in [4KiB, 1MiB]" prof.W.Profile.name bytes)
        true
        (bytes > 4096 && bytes < 1_048_576))
    W.Spec.all

let heavy_benchmarks_have_many_functions () =
  (* The gobmk/gcc/perlbench trait the paper leans on for Figure 6. *)
  List.iter
    (fun name ->
      match W.Spec.find name with
      | Some p -> check_bool (name ^ " has many functions") true (p.W.Profile.functions >= 70)
      | None -> Alcotest.fail ("missing " ^ name))
    [ "gcc"; "gobmk"; "perlbench" ]

let cactus_wastes_heap () =
  (* cactusADM's large arrays must fall just above a power of two so the
     segregated heap rounds them up (the paper's explanation for its
     heap-randomization overhead). *)
  let prof = W.Spec.cactusadm in
  let size = prof.W.Profile.large_array_size in
  let c = Stz_alloc.Segregated.class_of_size size in
  let rounded = Stz_alloc.Segregated.size_of_class c in
  check_bool "wastes > 40% when rounded" true
    (float_of_int (rounded - size) /. float_of_int rounded > 0.4)

let values_independent_of_machine =
  (* The same program must compute the same result on machines with
     different cache geometries: the substrate can only change timing. *)
  QCheck.Test.make ~name:"results independent of machine geometry" ~count:6
    QCheck.(int_bound 1000)
    (fun seed ->
      let prof =
        {
          W.Profile.default with
          W.Profile.functions = 5;
          hot_functions = 3;
          iterations = 6;
          inner_trips = 6;
          seed = Int64.of_int (seed + 1);
        }
      in
      let p = W.Generate.program prof in
      let run_on machine =
        let code_addrs =
          let pos = ref 0x400000 in
          Array.map
            (fun f ->
              let a = !pos in
              pos := !pos + Ir.func_size_bytes f + 16;
              a)
            p.Ir.funcs
        in
        let global_addrs =
          let pos = ref 0x600000 in
          Array.map
            (fun (g : Ir.global) ->
              let a = !pos in
              pos := !pos + g.Ir.gsize + 16;
              a)
            p.Ir.globals
        in
        let brk = ref 0x10000000 in
        let env =
          Stz_vm.Interp.plain_env ~machine ~code_addrs ~global_addrs
            ~stack_base:0x7FFF0000
            ~malloc:(fun size ->
              let a = !brk in
              brk := !brk + ((size + 15) land lnot 15);
              a)
            ~free:(fun _ -> ())
            p
        in
        Stz_vm.Interp.run env p ~args:[ 1 ]
      in
      let small = Stz_machine.Hierarchy.create () in
      let big =
        Stz_machine.Hierarchy.create
          ~l1i:{ Stz_machine.Cache.name = "L1I"; sets = 128; ways = 8; line_bits = 6 }
          ~l1d:{ Stz_machine.Cache.name = "L1D"; sets = 128; ways = 8; line_bits = 6 }
          ~predictor_entries:8192 ()
      in
      run_on small = run_on big)

let () =
  Alcotest.run "workloads"
    [
      ( "spec",
        [
          Alcotest.test_case "all valid" `Quick all_valid;
          Alcotest.test_case "eighteen benchmarks" `Quick eighteen_benchmarks;
          Alcotest.test_case "find" `Quick spec_find;
          Alcotest.test_case "many functions trait" `Quick heavy_benchmarks_have_many_functions;
          Alcotest.test_case "cactus waste trait" `Quick cactus_wastes_heap;
        ] );
      ( "generate",
        [
          Alcotest.test_case "deterministic" `Quick generation_deterministic;
          Alcotest.test_case "structure" `Quick structure_matches_profile;
          Alcotest.test_case "dead unreachable" `Quick dead_functions_unreachable;
          Alcotest.test_case "terminate" `Slow programs_terminate;
          Alcotest.test_case "scale" `Quick scale_changes_iterations;
          Alcotest.test_case "sized inputs" `Quick sized_inputs;
          Alcotest.test_case "code sizes" `Quick code_sizes_reasonable;
          QCheck_alcotest.to_alcotest values_independent_of_machine;
        ] );
    ]
