module L = Stz_layout
module Ir = Stz_vm.Ir
module B = Stz_vm.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_func fid n_instrs =
  let b = B.func ~fid ~name:(Printf.sprintf "f%d" fid) ~n_args:0 ~frame_size:64 () in
  for i = 1 to n_instrs - 1 do
    B.emit b (Ir.Mov (B.fresh_reg b, Ir.Imm i))
  done;
  B.emit b (Ir.Ret (Ir.Imm 0));
  B.finish b

let mk_program n =
  B.program
    ~funcs:(List.init n (fun fid -> mk_func fid (4 + fid)))
    ~globals:
      [
        { Ir.gid = 0; gname = "g0"; gsize = 100 };
        { Ir.gid = 1; gname = "g1"; gsize = 64 };
      ]
    ~entry:0

(* ------------------------------------------------------------------ *)
(* Address space                                                       *)
(* ------------------------------------------------------------------ *)

let address_space_env_shift () =
  let base = L.Address_space.stack_base L.Address_space.default in
  let shifted =
    L.Address_space.stack_base (L.Address_space.with_env_bytes L.Address_space.default 1000)
  in
  check_bool "stack moved down" true (shifted < base);
  check_int "alignment" 0 (shifted land 15);
  check_bool "shift is about env size" true (base - shifted >= 1000 - 16 && base - shifted <= 1000 + 16)

let address_space_segments_disjoint () =
  let s = L.Address_space.default in
  check_bool "code < globals" true (s.L.Address_space.code_base < s.L.Address_space.globals_base);
  check_bool "globals < heap" true (s.L.Address_space.globals_base < s.L.Address_space.heap_base);
  check_bool "heap segment ends before code heap" true
    (s.L.Address_space.heap_base + s.L.Address_space.heap_size
     <= s.L.Address_space.code_heap_base);
  check_bool "code heap ends below stack" true
    (s.L.Address_space.code_heap_base + s.L.Address_space.code_heap_size
     < L.Address_space.stack_base s)

(* ------------------------------------------------------------------ *)
(* Static layout                                                       *)
(* ------------------------------------------------------------------ *)

let static_no_overlap () =
  let p = mk_program 6 in
  let l = L.Static_layout.place L.Address_space.default p in
  let ranges =
    Array.to_list
      (Array.mapi
         (fun fid addr -> (addr, addr + Ir.func_size_bytes p.Ir.funcs.(fid)))
         l.L.Static_layout.code_addrs)
  in
  List.iteri
    (fun i (a1, e1) ->
      List.iteri
        (fun j (a2, e2) ->
          if i <> j then
            check_bool "functions disjoint" true (e1 <= a2 || e2 <= a1))
        ranges)
    ranges;
  Array.iter (fun a -> check_int "16-aligned" 0 (a land 15)) l.L.Static_layout.code_addrs

let static_respects_order () =
  let p = mk_program 4 in
  let order = [| 3; 1; 0; 2 |] in
  let l = L.Static_layout.place ~order L.Address_space.default p in
  let a = l.L.Static_layout.code_addrs in
  check_bool "f3 placed first" true (a.(3) < a.(1) && a.(1) < a.(0) && a.(0) < a.(2))

let static_random_order_is_permutation () =
  let p = mk_program 10 in
  let src = Stz_prng.Source.xorshift ~seed:4L in
  let order = L.Static_layout.random_order ~source:src p in
  Alcotest.(check (list int))
    "permutation" (List.init 10 Fun.id)
    (List.sort compare (Array.to_list order))

let static_globals_sequential () =
  let p = mk_program 2 in
  let l = L.Static_layout.place L.Address_space.default p in
  let g = l.L.Static_layout.global_addrs in
  check_int "first at base" L.Address_space.default.L.Address_space.globals_base g.(0);
  check_int "second after aligned first" (g.(0) + 112) g.(1)

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)
(* ------------------------------------------------------------------ *)

let plain_stack_contiguous () =
  let machine = Stz_machine.Hierarchy.create () in
  let st = L.Stack.plain ~machine ~base:0x7000_0000 ~frame_sizes:[| 64; 128 |] in
  let f0 = L.Stack.push st ~fid:0 in
  check_int "first frame" (0x7000_0000 - 64) f0;
  let f1 = L.Stack.push st ~fid:1 in
  check_int "second frame adjacent" (f0 - 128) f1;
  L.Stack.pop st ~fid:1;
  L.Stack.pop st ~fid:0;
  check_int "restored" 0 (L.Stack.depth_bytes st)

let randomized_stack_pads () =
  let machine = Stz_machine.Hierarchy.create () in
  let st =
    L.Stack.randomized ~machine
      ~source:(Stz_prng.Source.marsaglia ~seed:3L)
      ~base:0x7000_0000 ~table_base:0x0060_F000 ~frame_sizes:(Array.make 4 64)
  in
  let pads = Hashtbl.create 16 in
  for _ = 1 to 200 do
    let f = L.Stack.push st ~fid:0 in
    let pad = 0x7000_0000 - 64 - f in
    check_bool "pad in [0, 4080]" true (pad >= 0 && pad <= 4080);
    check_int "pad multiple of 16" 0 (pad land 15);
    Hashtbl.replace pads pad ();
    L.Stack.pop st ~fid:0
  done;
  check_bool "pads vary" true (Hashtbl.length pads > 10)

let randomized_stack_balanced () =
  let machine = Stz_machine.Hierarchy.create () in
  let st =
    L.Stack.randomized ~machine
      ~source:(Stz_prng.Source.marsaglia ~seed:5L)
      ~base:0x7000_0000 ~table_base:0x0060_F000 ~frame_sizes:[| 64; 96; 128 |]
  in
  ignore (L.Stack.push st ~fid:0);
  ignore (L.Stack.push st ~fid:1);
  ignore (L.Stack.push st ~fid:2);
  L.Stack.pop st ~fid:2;
  L.Stack.pop st ~fid:1;
  L.Stack.pop st ~fid:0;
  check_int "balanced" 0 (L.Stack.depth_bytes st)

let stack_rerandomize_changes_pads () =
  let machine = Stz_machine.Hierarchy.create () in
  let st =
    L.Stack.randomized ~machine
      ~source:(Stz_prng.Source.marsaglia ~seed:7L)
      ~base:0x7000_0000 ~table_base:0x0060_F000 ~frame_sizes:[| 64 |]
  in
  (* Record the pad sequence of one full table pass. *)
  let record () =
    List.init 256 (fun _ ->
        let f = L.Stack.push st ~fid:0 in
        L.Stack.pop st ~fid:0;
        f)
  in
  let first = record () in
  (* Index wrapped: the same table replays identically... *)
  let replay = record () in
  check_bool "table reused after wraparound" true (first = replay);
  (* ...until re-randomization refills it. *)
  let rewritten = L.Stack.rerandomize st in
  check_int "bytes rewritten" 256 rewritten;
  let fresh = record () in
  check_bool "pads changed" true (first <> fresh)

let plain_rerandomize_noop () =
  let machine = Stz_machine.Hierarchy.create () in
  let st = L.Stack.plain ~machine ~base:0x7000_0000 ~frame_sizes:[| 64 |] in
  check_int "no tables" 0 (L.Stack.rerandomize st)

let stack_pop_without_push () =
  let machine = Stz_machine.Hierarchy.create () in
  let st = L.Stack.plain ~machine ~base:0x7000_0000 ~frame_sizes:[| 64 |] in
  Alcotest.check_raises "unbalanced"
    (Invalid_argument "Stack.pop: pop without matching push") (fun () ->
      L.Stack.pop st ~fid:0)

let stack_mismatched_pop () =
  let machine = Stz_machine.Hierarchy.create () in
  let st = L.Stack.plain ~machine ~base:0x7000_0000 ~frame_sizes:[| 64; 96 |] in
  ignore (L.Stack.push st ~fid:0);
  let raised =
    try
      L.Stack.pop st ~fid:1;
      false
    with Invalid_argument _ -> true
  in
  check_bool "out-of-order exit detected" true raised

let stack_table_bytes () =
  check_int "260 per function" (3 * 260) (L.Stack.table_bytes ~frame_sizes:(Array.make 3 64))

(* ------------------------------------------------------------------ *)
(* Code randomizer                                                     *)
(* ------------------------------------------------------------------ *)

let mk_code_rand ?(granularity = L.Code_rand.Function_grain) ?reloc_style p =
  let machine = Stz_machine.Hierarchy.create () in
  let arena = L.Address_space.code_heap_arena L.Address_space.default in
  let heap =
    Stz_alloc.Factory.randomized ~source:(Stz_prng.Source.marsaglia ~seed:11L)
      Stz_alloc.Allocator.Segregated arena
  in
  let cr =
    L.Code_rand.create ~machine ~code_heap:heap
      ~source:(Stz_prng.Source.xorshift ~seed:12L)
      ~granularity ?reloc_style p
  in
  (cr, machine)

let code_rand_relocates_on_first_entry () =
  let p = mk_program 3 in
  let cr, _ = mk_code_rand p in
  check_int "no relocations yet" 0 (L.Code_rand.relocations cr);
  let view = L.Code_rand.enter cr ~fid:0 in
  check_int "one relocation" 1 (L.Code_rand.relocations cr);
  check_bool "address in code heap segment" true
    (view.Stz_vm.Interp.block_addrs.(0)
     >= L.Address_space.default.L.Address_space.code_heap_base);
  L.Code_rand.leave cr ~fid:0;
  (* Second entry without re-randomization: same copy, no new relocation. *)
  let view2 = L.Code_rand.enter cr ~fid:0 in
  check_int "still one relocation" 1 (L.Code_rand.relocations cr);
  check_bool "same address" true
    (view.Stz_vm.Interp.block_addrs.(0) = view2.Stz_vm.Interp.block_addrs.(0));
  L.Code_rand.leave cr ~fid:0

let code_rand_rerandomize_moves () =
  let p = mk_program 3 in
  let cr, _ = mk_code_rand p in
  let v1 = L.Code_rand.enter cr ~fid:1 in
  L.Code_rand.leave cr ~fid:1;
  L.Code_rand.rerandomize cr;
  let v2 = L.Code_rand.enter cr ~fid:1 in
  L.Code_rand.leave cr ~fid:1;
  check_bool "moved" true
    (v1.Stz_vm.Interp.block_addrs.(0) <> v2.Stz_vm.Interp.block_addrs.(0));
  check_int "two relocations" 2 (L.Code_rand.relocations cr)

let code_rand_pile_respects_live_copies () =
  let p = mk_program 3 in
  let cr, _ = mk_code_rand p in
  (* Enter without leaving: the copy is pinned by the activation. *)
  let v1 = L.Code_rand.enter cr ~fid:2 in
  L.Code_rand.rerandomize cr;
  (* Re-entry relocates (trap armed) while the old activation lives. *)
  let v2 = L.Code_rand.enter cr ~fid:2 in
  check_bool "fresh copy at new address" true
    (v1.Stz_vm.Interp.block_addrs.(0) <> v2.Stz_vm.Interp.block_addrs.(0));
  check_int "both copies occupy memory" 2 (L.Code_rand.live_copies cr);
  (* Inner activation exits: its (current) copy stays; the outer stale
     copy is freed when the outer activation exits. *)
  L.Code_rand.leave cr ~fid:2;
  check_int "current copy kept" 2 (L.Code_rand.live_copies cr);
  L.Code_rand.leave cr ~fid:2;
  check_int "stale copy freed" 1 (L.Code_rand.live_copies cr)

let code_rand_views_stable_for_invocation () =
  (* The paper: a relocated function's running activation keeps its old
     code. The view handed to an activation never mutates. *)
  let p = mk_program 2 in
  let cr, _ = mk_code_rand p in
  let v1 = L.Code_rand.enter cr ~fid:0 in
  let addr_before = v1.Stz_vm.Interp.block_addrs.(0) in
  L.Code_rand.rerandomize cr;
  ignore (L.Code_rand.enter cr ~fid:1);
  L.Code_rand.leave cr ~fid:1;
  check_int "old view unchanged" addr_before v1.Stz_vm.Interp.block_addrs.(0);
  L.Code_rand.leave cr ~fid:0

let code_rand_block_grain () =
  let b = B.func ~fid:0 ~name:"multi" ~n_args:0 () in
  let b1 = B.new_block b in
  let b2 = B.new_block b in
  B.emit b (Ir.Br b1);
  B.set_block b b1;
  B.emit b (Ir.Br b2);
  B.set_block b b2;
  B.emit b (Ir.Ret (Ir.Imm 0));
  let p = B.program ~funcs:[ B.finish b ] ~globals:[] ~entry:0 in
  let cr, _ = mk_code_rand ~granularity:L.Code_rand.Block_grain p in
  let v = L.Code_rand.enter cr ~fid:0 in
  let a = v.Stz_vm.Interp.block_addrs in
  check_int "three blocks" 3 (Array.length a);
  (* Blocks are independently placed: not contiguous in general. *)
  check_bool "not all contiguous" true
    (not (a.(1) = a.(0) + 4 && a.(2) = a.(1) + 4));
  check_int "flips present" 3 (Array.length v.Stz_vm.Interp.branch_flips);
  L.Code_rand.leave cr ~fid:0

let code_rand_function_grain_contiguous () =
  let p = mk_program 2 in
  let cr, _ = mk_code_rand p in
  let v = L.Code_rand.enter cr ~fid:0 in
  Array.iter (fun f -> check_bool "no flips at function grain" false f)
    v.Stz_vm.Interp.branch_flips;
  L.Code_rand.leave cr ~fid:0

let code_rand_reloc_tables () =
  (* A function referencing a global and calling another function has a
     two-entry relocation table adjacent to its code. *)
  let caller =
    let b = B.func ~fid:0 ~name:"caller" ~n_args:0 () in
    let g = B.fresh_reg b in
    let r = B.fresh_reg b in
    B.emit b (Ir.Global (g, 0));
    B.emit b (Ir.Call { fn = 1; args = []; dst = r });
    B.emit b (Ir.Ret (Ir.Reg r));
    B.finish b
  in
  let callee =
    let b = B.func ~fid:1 ~name:"callee" ~n_args:0 () in
    B.emit b (Ir.Ret (Ir.Imm 1));
    B.finish b
  in
  let p =
    B.program ~funcs:[ caller; callee ]
      ~globals:[ { Ir.gid = 0; gname = "g"; gsize = 8 } ]
      ~entry:0
  in
  let cr, _ = mk_code_rand p in
  let v = L.Code_rand.enter cr ~fid:0 in
  let code_end = v.Stz_vm.Interp.block_addrs.(0) + Ir.func_size_bytes p.Ir.funcs.(0) in
  let ga = L.Code_rand.global_entry_addr cr ~caller:0 ~gid:0 in
  let ca = L.Code_rand.call_entry_addr cr ~caller:0 ~callee:1 in
  (match ga with
  | Some a -> check_int "global slot right after code" code_end a
  | None -> Alcotest.fail "expected an adjacent-table entry");
  check_int "call slot next" (code_end + 8) ca;
  L.Code_rand.leave cr ~fid:0

let code_rand_fixed_tables () =
  (* §3.5 PowerPC/x86-32 style: the call-relocation table keeps its
     address across re-randomizations, and globals need no table. *)
  let caller =
    let b = B.func ~fid:0 ~name:"caller" ~n_args:0 () in
    let g = B.fresh_reg b in
    let r = B.fresh_reg b in
    B.emit b (Ir.Global (g, 0));
    B.emit b (Ir.Call { fn = 1; args = []; dst = r });
    B.emit b (Ir.Ret (Ir.Reg r));
    B.finish b
  in
  let callee =
    let b = B.func ~fid:1 ~name:"callee" ~n_args:0 () in
    B.emit b (Ir.Ret (Ir.Imm 1));
    B.finish b
  in
  let p =
    B.program ~funcs:[ caller; callee ]
      ~globals:[ { Ir.gid = 0; gname = "g"; gsize = 8 } ]
      ~entry:0
  in
  let cr, _ = mk_code_rand ~reloc_style:L.Code_rand.Fixed_table p in
  let v1 = L.Code_rand.enter cr ~fid:0 in
  check_bool "no table entry for globals" true
    (L.Code_rand.global_entry_addr cr ~caller:0 ~gid:0 = None);
  let table1 = L.Code_rand.call_entry_addr cr ~caller:0 ~callee:1 in
  L.Code_rand.leave cr ~fid:0;
  L.Code_rand.rerandomize cr;
  let v2 = L.Code_rand.enter cr ~fid:0 in
  let table2 = L.Code_rand.call_entry_addr cr ~caller:0 ~callee:1 in
  check_bool "code moved" true
    (v1.Stz_vm.Interp.block_addrs.(0) <> v2.Stz_vm.Interp.block_addrs.(0));
  check_int "table address is fixed" table1 table2;
  L.Code_rand.leave cr ~fid:0

let code_rand_current_base () =
  let p = mk_program 2 in
  let cr, _ = mk_code_rand p in
  check_bool "none before entry" true (L.Code_rand.current_base cr ~fid:0 = None);
  let v = L.Code_rand.enter cr ~fid:0 in
  (match L.Code_rand.current_base cr ~fid:0 with
  | Some a -> check_int "matches view" v.Stz_vm.Interp.block_addrs.(0) a
  | None -> Alcotest.fail "expected a base");
  L.Code_rand.leave cr ~fid:0

let () =
  Alcotest.run "layout"
    [
      ( "address_space",
        [
          Alcotest.test_case "env shift" `Quick address_space_env_shift;
          Alcotest.test_case "segments disjoint" `Quick address_space_segments_disjoint;
        ] );
      ( "static",
        [
          Alcotest.test_case "no overlap" `Quick static_no_overlap;
          Alcotest.test_case "respects order" `Quick static_respects_order;
          Alcotest.test_case "random order" `Quick static_random_order_is_permutation;
          Alcotest.test_case "globals sequential" `Quick static_globals_sequential;
        ] );
      ( "stack",
        [
          Alcotest.test_case "plain contiguous" `Quick plain_stack_contiguous;
          Alcotest.test_case "pads bounded" `Quick randomized_stack_pads;
          Alcotest.test_case "balanced" `Quick randomized_stack_balanced;
          Alcotest.test_case "rerandomize refills" `Quick stack_rerandomize_changes_pads;
          Alcotest.test_case "plain rerandomize noop" `Quick plain_rerandomize_noop;
          Alcotest.test_case "pop without push" `Quick stack_pop_without_push;
          Alcotest.test_case "mismatched pop" `Quick stack_mismatched_pop;
          Alcotest.test_case "table bytes" `Quick stack_table_bytes;
        ] );
      ( "code_rand",
        [
          Alcotest.test_case "on-demand relocation" `Quick code_rand_relocates_on_first_entry;
          Alcotest.test_case "rerandomize moves" `Quick code_rand_rerandomize_moves;
          Alcotest.test_case "pile refcounts" `Quick code_rand_pile_respects_live_copies;
          Alcotest.test_case "stable views" `Quick code_rand_views_stable_for_invocation;
          Alcotest.test_case "block grain" `Quick code_rand_block_grain;
          Alcotest.test_case "function grain" `Quick code_rand_function_grain_contiguous;
          Alcotest.test_case "reloc tables" `Quick code_rand_reloc_tables;
          Alcotest.test_case "fixed tables (§3.5)" `Quick code_rand_fixed_tables;
          Alcotest.test_case "current base" `Quick code_rand_current_base;
        ] );
    ]
