test/test_workloads.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Stabilizer Stz_alloc Stz_machine Stz_vm Stz_workloads
