test/test_stats.ml: Alcotest Array Float Gen Int64 List Printf QCheck QCheck_alcotest String Stz_prng Stz_stats
