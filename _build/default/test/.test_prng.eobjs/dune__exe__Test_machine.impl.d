test/test_machine.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Stdlib Stz_machine Stz_prng
