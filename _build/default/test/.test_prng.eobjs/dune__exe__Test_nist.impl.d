test/test_nist.ml: Alcotest Array Float Gen Lazy List QCheck QCheck_alcotest Stz_nist Stz_prng
