test/test_vm.ml: Alcotest Array Format Int64 List QCheck QCheck_alcotest String Stz_machine Stz_vm Stz_workloads
