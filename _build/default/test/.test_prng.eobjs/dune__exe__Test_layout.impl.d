test/test_layout.ml: Alcotest Array Fun Hashtbl List Printf Stz_alloc Stz_layout Stz_machine Stz_prng Stz_vm
