test/test_stabilizer.ml: Alcotest Array Float Int64 Lazy List Printf Stabilizer String Stz_alloc Stz_layout Stz_prng Stz_stats Stz_vm Stz_workloads
