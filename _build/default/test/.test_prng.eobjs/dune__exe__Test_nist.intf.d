test/test_nist.mli:
