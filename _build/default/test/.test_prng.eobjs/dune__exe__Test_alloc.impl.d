test/test_alloc.ml: Alcotest Array Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Stz_alloc Stz_nist Stz_prng
