test/test_opt.ml: Alcotest Array Int64 List Option Printf QCheck QCheck_alcotest Stz_machine Stz_vm Stz_workloads
