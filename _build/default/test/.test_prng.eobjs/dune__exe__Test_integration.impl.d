test/test_integration.ml: Alcotest Array Float Int64 List Option Printf Stabilizer Stz_alloc Stz_layout Stz_stats Stz_vm Stz_workloads
