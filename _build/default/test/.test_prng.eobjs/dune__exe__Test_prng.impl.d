test/test_prng.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Stz_prng
