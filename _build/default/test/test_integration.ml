(* End-to-end integration tests: miniature versions of the paper's
   experiments, checking the qualitative relationships the full bench
   harness reproduces at scale. Kept small so `dune runtest` stays
   fast; loose thresholds so they are robust to seed changes. *)

module S = Stabilizer
module W = Stz_workloads
module Stats = Stz_stats

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mini name = W.Profile.scale 0.3 (Option.get (W.Spec.find name))

let times config prof seed =
  S.Sample.times ~config ~base_seed:seed ~runs:12 ~args:[ 1 ]
    (W.Generate.program prof)

(* ------------------------------------------------------------------ *)
(* E2 miniature: re-randomization and timing distributions             *)
(* ------------------------------------------------------------------ *)

let rerandomization_reduces_or_keeps_variance () =
  (* The Brown-Forsythe result of Table 1, aggregated over three
     benchmarks to damp seed noise: re-randomization must not increase
     total variance materially. *)
  let total config =
    List.fold_left
      (fun acc name ->
        let ts = times config (mini name) 21L in
        acc +. (Stats.Desc.variance ts /. (Stats.Desc.mean ts ** 2.0)))
      0.0
      [ "astar"; "gromacs"; "lbm" ]
  in
  let one = total S.Config.one_time in
  let re = total S.Config.stabilizer in
  check_bool
    (Printf.sprintf "rel. variance with re-rand (%.2e) <= one-time (%.2e) * 1.5" re one)
    true (re <= one *. 1.5)

let stabilizer_samples_vary_baseline_fixed () =
  let fixed = times S.Config.baseline (mini "bzip2") 5L in
  let random = times S.Config.stabilizer (mini "bzip2") 5L in
  check_bool "baseline identical across runs" true
    (Array.for_all (fun t -> t = fixed.(0)) fixed);
  check_bool "stabilizer varies" true
    (not (Array.for_all (fun t -> t = random.(0)) random))

(* ------------------------------------------------------------------ *)
(* E3 miniature: overhead                                              *)
(* ------------------------------------------------------------------ *)

let overhead_ordering () =
  (* Enabling more randomizations costs more (on a churny benchmark),
     and the total stays within the paper's <40%-ish envelope for this
     mid-weight benchmark. *)
  let prof = mini "sphinx3" in
  let mean config = Stats.Desc.mean (times config prof 7L) in
  let base = mean { S.Config.baseline with link_order = S.Config.Random_link } in
  let code = mean S.Config.code_only in
  let full = mean S.Config.stabilizer in
  check_bool "code costs something" true (code > base *. 1.0);
  check_bool "full costs more than code-only" true (full > code);
  check_bool
    (Printf.sprintf "overhead %.1f%% below 60%%" ((full /. base -. 1.) *. 100.))
    true
    (full < base *. 1.6)

(* ------------------------------------------------------------------ *)
(* E4/E5 miniature: optimization evaluation                            *)
(* ------------------------------------------------------------------ *)

let opt_evaluation_shapes () =
  let prof = mini "bzip2" in
  let p = W.Generate.program prof in
  let sample opt seed =
    (S.Driver.build_and_run ~config:S.Config.stabilizer ~opt ~base_seed:seed
       ~runs:12 ~args:[ 1 ] p).S.Sample.times
  in
  let o1 = sample Stz_vm.Opt.O1 31L in
  let o2 = sample Stz_vm.Opt.O2 32L in
  let o3 = sample Stz_vm.Opt.O3 33L in
  let m = Stats.Desc.mean in
  (* O2 over O1 is a real improvement; O3 over O2 stays small in
     absolute terms (the suite-wide wash is asserted by the ANOVA test
     below; per-benchmark effects legitimately vary in sign). *)
  check_bool "O2 faster than O1" true (m o2 < m o1);
  let o3_effect = abs_float ((m o2 /. m o3) -. 1.0) in
  check_bool
    (Printf.sprintf "O3 effect (%.3f) below 5%%" o3_effect)
    true
    (o3_effect < 0.05)

let suite_anova_on_mini_suite () =
  (* A 4-benchmark within-subjects ANOVA of O2 vs O1 must find the
     effect; the same data with a label-preserving copy (no treatment)
     must not. *)
  let benches = [ "namd"; "bzip2"; "h264ref"; "sjeng" ] in
  let samples =
    Array.of_list
      (List.map
         (fun name ->
           let p = W.Generate.program (mini name) in
           let s opt seed =
             (S.Driver.build_and_run ~config:S.Config.stabilizer ~opt
                ~base_seed:seed ~runs:10 ~args:[ 1 ] p).S.Sample.times
           in
           (s Stz_vm.Opt.O1 41L, s Stz_vm.Opt.O2 42L))
         benches)
  in
  let r = S.Experiment.suite_anova samples in
  check_bool
    (Printf.sprintf "O2 vs O1 detectable suite-wide (p=%.4f)" r.Stats.Anova.p_value)
    true
    (r.Stats.Anova.p_value < 0.15);
  (* Null control: same treatment on both sides. *)
  let null_samples = Array.map (fun (a, _) -> (a, Array.copy a)) samples in
  let r0 = S.Experiment.suite_anova null_samples in
  check_bool "identical treatments not significant" true
    (r0.Stats.Anova.p_value > 0.05 || Float.is_nan r0.Stats.Anova.f)

(* ------------------------------------------------------------------ *)
(* E6 miniature: measurement bias without STABILIZER                   *)
(* ------------------------------------------------------------------ *)

let link_order_changes_timing () =
  let p = W.Generate.program (mini "astar") in
  let cycles order_seed =
    (S.Runtime.run
       ~config:{ S.Config.baseline with link_order = S.Config.Random_link }
       ~seed:order_seed p ~args:[ 1 ])
      .S.Runtime.cycles
  in
  let values = List.init 8 (fun i -> cycles (Int64.of_int (i + 1))) in
  check_bool "different link orders give different times" true
    (List.length (List.sort_uniq compare values) > 1)

let env_size_changes_timing () =
  let p = W.Generate.program (mini "hmmer") in
  let cycles env_bytes =
    (S.Runtime.run ~config:{ S.Config.baseline with env_bytes } ~seed:1L p
       ~args:[ 1 ])
      .S.Runtime.cycles
  in
  let values = List.init 8 (fun i -> cycles (i * 1040)) in
  check_bool "environment size perturbs timing" true
    (List.length (List.sort_uniq compare values) > 1)

(* ------------------------------------------------------------------ *)
(* E1 miniature: heap randomness                                       *)
(* ------------------------------------------------------------------ *)

let shuffled_heap_randomness () =
  (* §3.2 via the Heap_randomness protocol: the shuffled heap passes the
     suite on its window, the base heap does not, and DieHard passes on
     the full paper range. *)
  let shuffled = S.Heap_randomness.shuffled ~n:256 ~seed:3L Stz_alloc.Allocator.Segregated in
  let base = S.Heap_randomness.base ~n:256 Stz_alloc.Allocator.Segregated in
  let diehard = S.Heap_randomness.diehard ~seed:3L () in
  check_bool
    (Printf.sprintf "shuffled (%d) > base (%d)" shuffled.S.Heap_randomness.passed
       base.S.Heap_randomness.passed)
    true
    (shuffled.S.Heap_randomness.passed > base.S.Heap_randomness.passed);
  check_bool "shuffled passes >= 6" true (shuffled.S.Heap_randomness.passed >= 6);
  check_bool "diehard passes >= 6" true (diehard.S.Heap_randomness.passed >= 6)

(* ------------------------------------------------------------------ *)
(* §8 extension: block granularity end-to-end                          *)
(* ------------------------------------------------------------------ *)

let block_granularity_runs () =
  let prof = mini "namd" in
  let p = W.Generate.program prof in
  let config =
    { S.Config.stabilizer with granularity = Stz_layout.Code_rand.Block_grain }
  in
  let r = S.Runtime.run ~config ~seed:1L p ~args:[ 1 ] in
  let reference = S.Runtime.run ~config:S.Config.baseline ~seed:1L p ~args:[ 1 ] in
  check_int "same result" reference.S.Runtime.return_value r.S.Runtime.return_value;
  check_bool "relocations happened" true (r.S.Runtime.relocations > 0)

let () =
  Alcotest.run "integration"
    [
      ( "normality (E2)",
        [
          Alcotest.test_case "variance not inflated" `Slow rerandomization_reduces_or_keeps_variance;
          Alcotest.test_case "sampling behaviour" `Quick stabilizer_samples_vary_baseline_fixed;
        ] );
      ("overhead (E3)", [ Alcotest.test_case "ordering" `Slow overhead_ordering ]);
      ( "optimizations (E4/E5)",
        [
          Alcotest.test_case "O2 vs O3 shapes" `Slow opt_evaluation_shapes;
          Alcotest.test_case "suite anova" `Slow suite_anova_on_mini_suite;
        ] );
      ( "bias (E6)",
        [
          Alcotest.test_case "link order" `Quick link_order_changes_timing;
          Alcotest.test_case "environment size" `Quick env_size_changes_timing;
        ] );
      ("heap randomness (E1)", [ Alcotest.test_case "NIST" `Quick shuffled_heap_randomness ]);
      ("block granularity (§8)", [ Alcotest.test_case "runs" `Quick block_granularity_runs ]);
    ]
