(* Compiler-optimization evaluation: a miniature of the paper's §6.

   For a handful of benchmarks we evaluate -O2 vs -O1 and -O3 vs -O2
   under STABILIZER: per-benchmark significance tests (t-test, or
   Wilcoxon when normality fails, exactly the paper's procedure) and a
   suite-wide one-way within-subjects ANOVA.

   Run with: dune exec examples/opt_evaluation.exe
   (The full 18-benchmark version is `dune exec bench/main.exe -- optimizations`.) *)

module S = Stabilizer
module W = Stz_workloads
module Opt = Stz_vm.Opt

let benches = [ "bzip2"; "hmmer"; "namd"; "sjeng"; "libquantum"; "milc" ]
let runs = 20

let () =
  Printf.printf "== Evaluating LLVM-style optimization levels on %d benchmarks ==\n\n"
    (List.length benches);
  Printf.printf "%-12s | %-28s | %-28s\n" "benchmark" "O2 vs O1" "O3 vs O2";
  Printf.printf "%s\n" (String.make 76 '-');
  let samples =
    List.map
      (fun name ->
        let prof = W.Profile.scale 0.5 (Option.get (W.Spec.find name)) in
        let p = W.Generate.program prof in
        let sample opt seed =
          (S.Driver.build_and_run ~config:S.Config.stabilizer ~opt ~base_seed:seed
             ~runs ~args:W.Generate.default_args p)
            .S.Sample.times
        in
        let o1 = sample Opt.O1 101L in
        let o2 = sample Opt.O2 102L in
        let o3 = sample Opt.O3 103L in
        let describe a b =
          let c = S.Experiment.compare_samples a b in
          Printf.sprintf "%5.3fx %s p=%.3f%s" c.S.Experiment.speedup
            (if c.S.Experiment.used_ttest then "t" else "W")
            c.S.Experiment.p_value
            (if c.S.Experiment.significant then " *" else "  ")
        in
        Printf.printf "%-12s | %-28s | %-28s\n%!" name (describe o1 o2) (describe o2 o3);
        (name, o1, o2, o3))
      benches
  in
  Printf.printf "%s\n" (String.make 76 '-');
  print_endline "(speedup > 1 means the higher level is faster; * = significant at 95%)\n";

  let anova label pairs =
    let r = S.Experiment.suite_anova (Array.of_list pairs) in
    Printf.printf "suite-wide ANOVA, %s: %s -> %s\n" label
      (Stz_stats.Anova.to_string r)
      (if r.Stz_stats.Anova.p_value < 0.05 then "significant at 95%"
       else if r.Stz_stats.Anova.p_value < 0.10 then "significant only at 90%"
       else "NOT significant: indistinguishable from noise")
  in
  anova "O2 vs O1" (List.map (fun (_, o1, o2, _) -> (o1, o2)) samples);
  anova "O3 vs O2" (List.map (fun (_, _, o2, o3) -> (o2, o3)) samples)
