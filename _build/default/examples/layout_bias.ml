(* Measurement bias demo: the paper's motivating observation.

   Two builds of the SAME program that differ only in incidental layout
   (link order, environment-block size) can time very differently —
   and a naive before/after comparison will happily call that a
   "performance change". STABILIZER removes the bias.

   Run with: dune exec examples/layout_bias.exe *)

module S = Stabilizer
module W = Stz_workloads

let () =
  let prof = W.Profile.scale 0.5 W.Spec.astar in
  let p = W.Generate.program prof in

  print_endline "== Part 1: layout accidents look like performance changes ==\n";

  (* "Build A" and "Build B": identical program, different link order.
     Deterministic runs: each build always times exactly the same, no
     matter how often you re-run it — the classic trap. *)
  let time_with_order seed =
    (S.Runtime.run
       ~config:{ S.Config.baseline with link_order = S.Config.Random_link }
       ~seed p ~args:[ 1 ])
      .S.Runtime.cycles
  in
  let builds = List.init 9 (fun i -> time_with_order (Int64.of_int (i + 1))) in
  List.iteri (fun i c -> Printf.printf "  build %d (same source!): %9d cycles\n" i c) builds;
  let cmin = List.fold_left min (List.hd builds) builds in
  let cmax = List.fold_left max (List.hd builds) builds in
  Printf.printf "  spread across link orders: %.2f%%\n\n"
    (100.0 *. float_of_int (cmax - cmin) /. float_of_int cmin);

  (* Environment-block size (Mytkowicz et al.): moving the stack base
     by the size of your shell environment also changes timing. *)
  print_endline "  (changing only the environment size)";
  List.iter
    (fun env_bytes ->
      let c =
        (S.Runtime.run ~config:{ S.Config.baseline with env_bytes } ~seed:1L p
           ~args:[ 1 ])
          .S.Runtime.cycles
      in
      Printf.printf "  env = %5d bytes: %9d cycles\n" env_bytes c)
    (* Not multiples of the cache-set span, so the shift actually moves
       the stack onto different sets (4096 would alias back). *)
    [ 0; 1040; 2080; 3120; 4160 ];

  print_endline "\n== Part 2: a naive A/B test is fooled; STABILIZER is not ==\n";

  (* Naive protocol: run "build A" 20 times, "build B" 20 times, t-test.
     Each build is deterministic, so the samples have (near-)zero
     variance and ANY layout difference is "significant". *)
  let naive_samples seed =
    (* Re-running the same binary: only measurement context varies, and
       here (a deterministic simulator, quiescent "machine") nothing
       does. This is the best case for the naive approach. *)
    Array.init 20 (fun _ -> float_of_int (time_with_order seed))
  in
  let a = naive_samples 1L and b = naive_samples 2L in
  Printf.printf "naive comparison of two identical builds: means %.0f vs %.0f\n"
    (Stz_stats.Desc.mean a) (Stz_stats.Desc.mean b);
  let naive_differs = Stz_stats.Desc.mean a <> Stz_stats.Desc.mean b in
  Printf.printf "  -> the naive protocol concludes: %s\n\n"
    (if naive_differs then
       "\"B is a performance change!\" (wrong: same source, layout accident)"
     else "no difference");

  (* STABILIZER protocol: each run samples a fresh layout; the same
     program produces statistically indistinguishable samples. *)
  let stabilized =
    S.Experiment.compare_programs ~config:S.Config.stabilizer ~base_seed:10L
      ~runs:20 ~args:[ 1 ] p p
  in
  Printf.printf "STABILIZER comparison of the same two builds: %s\n"
    (S.Experiment.describe stabilized);
  Printf.printf "  -> %s\n"
    (if stabilized.S.Experiment.significant then
       "still fooled (unexpected!)"
     else "correctly reports no difference: the bias is gone")
