(* Deployment-time use: the paper's §1 aside that STABILIZER's low
   overhead would let it run in production to reduce the risk of
   performance *outliers* — no single unlucky layout persists, so the
   worst case over deployments tightens even though the mean pays a
   small premium.

   We simulate a fleet: each deployment of an unrandomized binary gets
   one (random) layout forever; each STABILIZER deployment re-draws
   layouts continuously. Compare the tail of the per-deployment time
   distribution.

   Run with: dune exec examples/deployment.exe *)

module S = Stabilizer
module W = Stz_workloads
module D = Stz_stats.Desc

let () =
  let prof = W.Profile.scale 0.4 W.Spec.gromacs in
  let p = W.Generate.program prof in
  let deployments = 40 in

  let fleet config name =
    let times =
      S.Sample.times ~config ~base_seed:99L ~runs:deployments ~args:[ 1 ] p
    in
    Printf.printf "%-24s mean %.6f s  p95 %.6f s  worst %.6f s  (worst/mean %.3f)\n"
      name (D.mean times) (D.quantile times 0.95) (D.max times)
      (D.max times /. D.mean times);
    times
  in
  Printf.printf "simulated fleet of %d deployments of gromacs:\n\n" deployments;
  let fixed =
    fleet
      { S.Config.baseline with link_order = S.Config.Random_link }
      "fixed layout per deploy"
  in
  let stabilized = fleet S.Config.stabilizer "STABILIZER (re-rand)" in

  let tail_spread xs = (D.max xs -. D.min xs) /. D.mean xs in
  Printf.printf "\nrelative spread: fixed %.4f vs stabilized %.4f\n"
    (tail_spread fixed) (tail_spread stabilized);
  if tail_spread stabilized < tail_spread fixed then
    print_endline
      "-> re-randomization traded a small mean premium for a tighter worst case."
  else
    print_endline
      "-> on this workload the fixed-layout spread was already small."
