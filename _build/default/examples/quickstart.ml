(* Quickstart: the §2.4 workflow end to end.

   A developer "improves" a function and wants to know: did my change
   actually make the program faster, or am I looking at a layout
   accident?  We build two versions of a small program whose only
   semantic difference is a cheaper inner loop, run both under
   STABILIZER, and let the Experiment module decide.

   Run with: dune exec examples/quickstart.exe *)

module Ir = Stz_vm.Ir
module B = Stz_vm.Builder

(* A program that calls [kernel] in a loop. [fast] controls whether the
   kernel uses a divide (slow) or a shift (fast) — a genuine, small
   improvement of roughly one division per iteration. *)
let program ~fast =
  let kernel =
    let b = B.func ~fid:1 ~name:"kernel" ~n_args:1 ~frame_size:48 () in
    let acc = B.fresh_reg b in
    let i = B.fresh_reg b in
    B.emit b (Ir.Mov (acc, Ir.Reg 0));
    B.emit b (Ir.Mov (i, Ir.Imm 0));
    let head = B.new_block b in
    let body = B.new_block b in
    let exit = B.new_block b in
    B.emit b (Ir.Br head);
    B.set_block b head;
    let c = B.fresh_reg b in
    B.emit b (Ir.Cmp (Ir.Lt, c, Ir.Reg i, Ir.Imm 64));
    B.emit b (Ir.Brc (Ir.Reg c, body, exit));
    B.set_block b body;
    let t = B.fresh_reg b in
    if fast then B.emit b (Ir.Bin (Ir.Shr, t, Ir.Reg acc, Ir.Imm 3))
    else B.emit b (Ir.Bin (Ir.Div, t, Ir.Reg acc, Ir.Imm 8));
    B.emit b (Ir.Bin (Ir.Add, acc, Ir.Reg t, Ir.Reg i));
    (* Surrounding work, so the division is an improvement rather than
       the whole loop. *)
    for k = 1 to 12 do
      let r = B.fresh_reg b in
      B.emit b (Ir.Bin (Ir.Add, r, Ir.Reg acc, Ir.Imm k));
      B.emit b (Ir.Bin (Ir.Xor, acc, Ir.Reg acc, Ir.Reg r))
    done;
    (* Touch the frame so the stack matters too. *)
    let fr = B.fresh_reg b in
    B.emit b (Ir.Frame (fr, 0));
    B.emit b (Ir.Store (fr, 0, Ir.Reg acc));
    B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
    B.emit b (Ir.Br head);
    B.set_block b exit;
    B.emit b (Ir.Ret (Ir.Reg acc));
    B.finish b
  in
  let main =
    let b = B.func ~fid:0 ~name:"main" ~n_args:1 ~frame_size:32 () in
    let total = B.fresh_reg b in
    let i = B.fresh_reg b in
    B.emit b (Ir.Mov (total, Ir.Imm 0));
    B.emit b (Ir.Mov (i, Ir.Imm 0));
    let head = B.new_block b in
    let body = B.new_block b in
    let exit = B.new_block b in
    B.emit b (Ir.Br head);
    B.set_block b head;
    let c = B.fresh_reg b in
    B.emit b (Ir.Cmp (Ir.Lt, c, Ir.Reg i, Ir.Imm 400));
    B.emit b (Ir.Brc (Ir.Reg c, body, exit));
    B.set_block b body;
    let r = B.fresh_reg b in
    B.emit b (Ir.Call { fn = 1; args = [ Ir.Reg i ]; dst = r });
    B.emit b (Ir.Bin (Ir.Add, total, Ir.Reg total, Ir.Reg r));
    B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
    B.emit b (Ir.Br head);
    B.set_block b exit;
    B.emit b (Ir.Ret (Ir.Reg total));
    B.finish b
  in
  B.program ~funcs:[ main; kernel ] ~globals:[] ~entry:0

let () =
  let before = program ~fast:false in
  let after = program ~fast:true in
  let runs = 30 in

  print_endline "== Quickstart: is my optimization real? ==\n";
  Printf.printf "Running %d randomized executions of each version...\n\n" runs;

  let comparison =
    Stabilizer.Experiment.compare_programs ~config:Stabilizer.Config.stabilizer
      ~base_seed:2024L ~runs ~args:[ 0 ] before after
  in
  Printf.printf "mean before: %.6f s\n" comparison.Stabilizer.Experiment.mean_a;
  Printf.printf "mean after:  %.6f s\n" comparison.Stabilizer.Experiment.mean_b;
  Printf.printf "speedup:     %.3fx\n\n" comparison.Stabilizer.Experiment.speedup;
  Printf.printf "normality: before %s, after %s (Shapiro-Wilk)\n"
    (if comparison.Stabilizer.Experiment.normal_a then "normal" else "non-normal")
    (if comparison.Stabilizer.Experiment.normal_b then "normal" else "non-normal");
  Printf.printf "verdict: %s\n\n" (Stabilizer.Experiment.describe comparison);

  (* The control: comparing a version against itself must NOT be
     significant — STABILIZER's whole point is that layout accidents do
     not masquerade as speedups. *)
  let control =
    Stabilizer.Experiment.compare_programs ~config:Stabilizer.Config.stabilizer
      ~base_seed:77L ~runs ~args:[ 0 ] before before
  in
  Printf.printf "control (before vs before): %s\n"
    (Stabilizer.Experiment.describe control);
  if comparison.Stabilizer.Experiment.significant
     && not control.Stabilizer.Experiment.significant
  then print_endline "\nConclusion: the change is a real improvement."
  else print_endline "\nConclusion: inconclusive — collect more runs."
