(* Layout detective: the paper's §8 sketch, made concrete.

   "Sampling with performance counters could be used to detect
   layout-related performance problems [...] When STABILIZER detects
   these problems, it could trigger a complete or partial
   re-randomization."

   We run a layout-sensitive program under several fixed link orders,
   use the per-function profiler to find where the cycles went in the
   slowest layout, and then show that adaptive re-randomization escapes
   such layouts automatically.

   Run with: dune exec examples/layout_detective.exe *)

module S = Stabilizer
module W = Stz_workloads

let () =
  let p = W.Pathological.program () in
  let args = W.Pathological.default_args in

  (* 1. Find lucky and unlucky link orders. *)
  let run_with_order seed =
    S.Runtime.run ~profile:true
      ~config:{ S.Config.baseline with link_order = S.Config.Random_link }
      ~seed p ~args
  in
  let runs = List.init 12 (fun i -> (Int64.of_int (i + 1), run_with_order (Int64.of_int (i + 1)))) in
  let by_time =
    List.sort (fun (_, a) (_, b) -> compare a.S.Runtime.cycles b.S.Runtime.cycles) runs
  in
  let fast_seed, fast = List.hd by_time in
  let slow_seed, slow = List.nth by_time (List.length by_time - 1) in
  Printf.printf "12 link orders: fastest %d cycles (seed %Ld), slowest %d (seed %Ld): %+.1f%%\n\n"
    fast.S.Runtime.cycles fast_seed slow.S.Runtime.cycles slow_seed
    (100.0
    *. float_of_int (slow.S.Runtime.cycles - fast.S.Runtime.cycles)
    /. float_of_int fast.S.Runtime.cycles);

  (* 2. Where did the extra cycles go? Compare per-function profiles. *)
  let top label (r : S.Runtime.result) =
    Printf.printf "%s (i-cache misses %d, mispredictions %d):\n" label
      r.S.Runtime.counters.Stz_machine.Hierarchy.l1i_misses
      r.S.Runtime.counters.Stz_machine.Hierarchy.branch_mispredictions;
    (match r.S.Runtime.profile with
    | Some entries ->
        List.iteri
          (fun i e ->
            if i < 4 then
              Printf.printf "  %-10s %10d cycles (%d calls)\n" e.S.Profiler.name
                e.S.Profiler.exclusive_cycles e.S.Profiler.calls)
          entries
    | None -> ());
    print_newline ()
  in
  top "fastest layout" fast;
  top "slowest layout" slow;

  (* 3. The cure: adaptive re-randomization notices the elevated miss
     rate and escapes the bad layout. *)
  let adaptive =
    S.Runtime.run
      ~config:{ S.Config.stabilizer with adaptive = true; adaptive_threshold = 1.2 }
      ~seed:slow_seed p ~args
  in
  Printf.printf
    "under STABILIZER with the adaptive trigger: %d cycles (%d epochs, %d adaptive fires)\n"
    adaptive.S.Runtime.cycles adaptive.S.Runtime.epochs adaptive.S.Runtime.adaptive_triggers;
  Printf.printf "  vs slowest fixed layout: %+.1f%%\n"
    (100.0
    *. float_of_int (adaptive.S.Runtime.cycles - slow.S.Runtime.cycles)
    /. float_of_int slow.S.Runtime.cycles)
