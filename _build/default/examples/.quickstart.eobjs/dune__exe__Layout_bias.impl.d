examples/layout_bias.ml: Array Int64 List Printf Stabilizer Stz_stats Stz_workloads
