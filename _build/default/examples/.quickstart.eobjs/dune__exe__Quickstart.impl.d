examples/quickstart.ml: Printf Stabilizer Stz_vm
