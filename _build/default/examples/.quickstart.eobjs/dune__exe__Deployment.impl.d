examples/deployment.ml: Printf Stabilizer Stz_stats Stz_workloads
