examples/quickstart.mli:
