examples/opt_evaluation.ml: Array List Option Printf Stabilizer String Stz_stats Stz_vm Stz_workloads
