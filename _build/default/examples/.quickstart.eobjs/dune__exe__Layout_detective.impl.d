examples/layout_detective.ml: Int64 List Printf Stabilizer Stz_machine Stz_workloads
