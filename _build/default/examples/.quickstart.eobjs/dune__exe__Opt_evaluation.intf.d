examples/opt_evaluation.mli:
