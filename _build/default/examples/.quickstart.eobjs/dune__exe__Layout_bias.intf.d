examples/layout_bias.mli:
