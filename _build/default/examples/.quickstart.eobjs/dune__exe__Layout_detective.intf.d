examples/layout_detective.mli:
