examples/deployment.mli:
