(* szc: the STABILIZER compiler-driver CLI (paper §3.1, Figure 2).
   Instead of wrapping clang/gcc it "compiles" (optimizes) generated
   benchmark programs and runs them on the simulated machine under a
   chosen randomization configuration. *)

open Cmdliner

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let bench_arg =
  let doc = "Benchmark name (one of the 18 SPEC-like workloads; see `szc list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let runs_term =
  Arg.(value & opt int 30 & info [ "runs"; "n" ] ~docv:"N" ~doc:"Number of runs.")

let seed_term =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base random seed.")

let scale_term =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Scale workload iteration counts by $(docv).")

let jobs_term =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Execute runs on $(docv) forked workers. Results are merged in \
           run order, so outputs are bit-identical to $(b,--jobs 1).")

let opt_term =
  let level_conv =
    Arg.conv
      ( (fun s ->
          match Stz_vm.Opt.level_of_string s with
          | Some l -> Ok l
          | None -> Error (`Msg ("unknown optimization level " ^ s))),
        fun fmt l -> Format.pp_print_string fmt (Stz_vm.Opt.level_to_string l) )
  in
  Arg.(
    value & opt level_conv Stz_vm.Opt.O2
    & info [ "O"; "opt" ] ~docv:"LEVEL" ~doc:"Optimization level (O0..O3).")

let flag names doc = Arg.(value & flag & info names ~doc)

let config_term =
  let make no_code no_stack no_heap onetime baseline adaptive interval shuffle_n
      alloc block_grain fixed_tables link_random env_bytes =
    let base = if baseline then Stabilizer.Config.baseline else Stabilizer.Config.stabilizer in
    let alloc_kind =
      match Stz_alloc.Allocator.kind_of_string alloc with
      | Some k -> k
      | None -> failwith ("unknown allocator " ^ alloc)
    in
    {
      Stabilizer.Config.code = base.Stabilizer.Config.code && not no_code;
      stack = base.Stabilizer.Config.stack && not no_stack;
      heap = base.Stabilizer.Config.heap && not no_heap;
      rerandomize = base.Stabilizer.Config.rerandomize && not onetime;
      interval_cycles = interval;
      adaptive;
      adaptive_threshold = base.Stabilizer.Config.adaptive_threshold;
      shuffle_n;
      base_allocator = alloc_kind;
      granularity =
        (if block_grain then Stz_layout.Code_rand.Block_grain
         else Stz_layout.Code_rand.Function_grain);
      reloc_style =
        (if fixed_tables then Stz_layout.Code_rand.Fixed_table
         else Stz_layout.Code_rand.Adjacent_table);
      link_order =
        (if link_random then Stabilizer.Config.Random_link
         else Stabilizer.Config.Declaration);
      env_bytes;
    }
  in
  Term.(
    const make
    $ flag [ "no-code" ] "Disable code randomization."
    $ flag [ "no-stack" ] "Disable stack randomization."
    $ flag [ "no-heap" ] "Disable heap randomization."
    $ flag [ "onetime" ] "Randomize once at startup; no re-randomization."
    $ flag [ "baseline" ] "Disable all randomizations."
    $ flag [ "adaptive" ]
        "Also re-randomize when the miss rate spikes (paper §8 future work)."
    $ Arg.(
        value
        & opt int Stabilizer.Config.stabilizer.Stabilizer.Config.interval_cycles
        & info [ "interval" ] ~docv:"CYCLES" ~doc:"Re-randomization interval.")
    $ Arg.(value & opt int 256 & info [ "shuffle-n" ] ~docv:"N" ~doc:"Shuffling parameter N.")
    $ Arg.(
        value & opt string "segregated"
        & info [ "alloc" ] ~docv:"KIND" ~doc:"Base allocator: segregated, tlsf or diehard.")
    $ flag [ "block-grain" ] "Randomize at basic-block granularity (paper §8)."
    $ flag [ "fixed-tables" ]
        "Use fixed-absolute-address relocation tables (PowerPC/x86-32 ABI, §3.5)."
    $ flag [ "link-random" ] "Randomize static link order (baseline layouts)."
    $ Arg.(
        value & opt int 0
        & info [ "env-bytes" ] ~docv:"BYTES" ~doc:"Environment block size (shifts the stack)."))

let lookup_bench name scale =
  match Stz_workloads.Spec.find name with
  | Some prof -> Ok (Stz_workloads.Profile.scale scale prof)
  | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S; try `szc list'" name))

let faults_term =
  let fault_conv =
    Arg.conv
      ( (fun s ->
          match Stz_faults.Fault.profile_of_string s with
          | Ok p -> Ok p
          | Error e -> Error (`Msg e)),
        fun fmt p -> Format.pp_print_string fmt (Stz_faults.Fault.fingerprint p) )
  in
  Arg.(
    value
    & opt fault_conv Stz_faults.Fault.none
    & info [ "faults" ] ~docv:"PROFILE"
        ~doc:
          "Fault-injection profile: none, light, heavy, chaos, or a \
           key=prob list over fuel, depth, oom, preempt, poison, wedge \
           (e.g. $(b,fuel=0.1,oom=0.05)). A wedge spins the run forever; \
           it is only survivable with $(b,--jobs) >= 2, where the pool \
           watchdog kills the hung worker and censors the run.")

let storage_faults_term =
  let storage_conv =
    Arg.conv
      ( (fun s ->
          match Stz_faults.Storage.profile_of_string s with
          | Ok p -> Ok p
          | Error e -> Error (`Msg e)),
        fun fmt p ->
          Format.pp_print_string fmt (Stz_faults.Storage.fingerprint p) )
  in
  Arg.(
    value
    & opt storage_conv Stz_faults.Storage.none
    & info [ "storage-faults" ] ~docv:"PROFILE"
        ~doc:
          "Storage fault-injection profile applied to every artifact write \
           (checkpoints, CSV, trace, metrics): none, light, heavy, chaos, \
           or a key=prob list over torn, flip, short, rename (e.g. \
           $(b,torn=0.1,rename=0.2)). Faults are drawn deterministically \
           from $(b,--storage-seed); `szc fsck' diagnoses and repairs the \
           damage.")

let storage_seed_term =
  Arg.(
    value & opt int 1
    & info [ "storage-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the storage-fault stream (independent of $(b,--seed), \
           so the same campaign can be replayed under different storage \
           weather).")

let min_n_term =
  Arg.(
    value & opt int 3
    & info [ "min-n" ] ~docv:"N"
        ~doc:
          "Minimum uncensored runs per side below which no verdict is \
           emitted (exit code 2).")

let retries_term =
  Arg.(
    value
    & opt int Stabilizer.Supervisor.default_policy.Stabilizer.Supervisor.max_retries
    & info [ "retries" ] ~docv:"K"
        ~doc:"Retry attempts per failed run, each with a fresh derived seed.")

let policy_of retries =
  { Stabilizer.Supervisor.default_policy with Stabilizer.Supervisor.max_retries = retries }

(* ------------------------------------------------------------------ *)
(* Telemetry options (shared by run / compare / campaign)              *)
(* ------------------------------------------------------------------ *)

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON trace of the runs, clocked in \
           simulated cycles. For a fixed seed the bytes are identical \
           whatever $(b,--jobs) is; load it at chrome://tracing or Perfetto.")

let metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a flat `key value' metrics snapshot (hardware-counter \
           totals, censoring tallies, epochs/relocations, retries).")

let lanes_term =
  Arg.(
    value & opt int 4
    & info [ "lanes" ] ~docv:"N"
        ~doc:
          "Virtual worker lanes in the exported trace. Runs are dealt \
           round-robin onto lanes independently of $(b,--jobs), so traces \
           stay byte-identical across worker counts.")

(* Every exported artifact goes through the durable store path: temp
   file + fsync + rename, plus a CRC32 sidecar (path.sum) that `szc
   fsck' and `szc check-trace' verify. The payload itself stays plain
   (Chrome can still load a trace, a spreadsheet the CSV). *)
let write_file path contents =
  Stz_store.Artifact.write_with_sum path contents;
  Printf.printf "# wrote %s\n" path

let top_table ?(top = max_int) ~total_cycles entries =
  let module H = Stz_machine.Hierarchy in
  Printf.printf "%-16s %9s %12s %7s %8s %8s %7s %7s %6s %6s %8s\n" "function"
    "calls" "excl.cycles" "share" "l1i" "l1d" "l2" "l3" "itlb" "dtlb" "br.miss";
  List.iteri
    (fun i (e : Stabilizer.Profiler.entry) ->
      if i < top then begin
        let c = e.Stabilizer.Profiler.counters in
        Printf.printf "%-16s %9d %12d %6.2f%% %8d %8d %7d %7d %6d %6d %8d\n"
          e.Stabilizer.Profiler.name e.Stabilizer.Profiler.calls
          e.Stabilizer.Profiler.exclusive_cycles
          (100.0
          *. float_of_int e.Stabilizer.Profiler.exclusive_cycles
          /. float_of_int (max 1 total_cycles))
          c.H.l1i_misses c.H.l1d_misses c.H.l2_misses c.H.l3_misses
          c.H.itlb_misses c.H.dtlb_misses c.H.branch_mispredictions
      end)
    entries

let merged_profile (sample : Stabilizer.Sample.t) =
  Stabilizer.Profiler.merge_entries
    (Array.to_list
       (Array.map
          (fun (r : Stabilizer.Runtime.result) ->
            Option.value ~default:[] r.Stabilizer.Runtime.profile)
          sample.Stabilizer.Sample.results))

(* ------------------------------------------------------------------ *)
(* szc list                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-12s %9s %5s %6s %8s %8s\n" "benchmark" "functions" "hot"
      "blocks" "churn" "code(B)";
    List.iter
      (fun prof ->
        let p = Stz_workloads.Generate.program prof in
        Printf.printf "%-12s %9d %5d %6d %8.2f %8d\n" prof.Stz_workloads.Profile.name
          prof.Stz_workloads.Profile.functions prof.Stz_workloads.Profile.hot_functions
          (Array.fold_left
             (fun acc f -> acc + Array.length f.Stz_vm.Ir.blocks)
             0 p.Stz_vm.Ir.funcs)
          prof.Stz_workloads.Profile.heap_churn
          (Stz_vm.Ir.program_size_bytes p))
      Stz_workloads.Spec.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite.") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* szc run                                                             *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let run bench runs seed scale opt csv config jobs trace metrics lanes profiled
      =
    let* prof = lookup_bench bench scale in
    let p = Stz_workloads.Generate.program prof in
    let sample =
      Stabilizer.Driver.build_and_run ~jobs ~config ~opt
        ~events:(trace <> None) ~profiled
        ~base_seed:(Int64.of_int seed) ~runs
        ~args:Stz_workloads.Generate.default_args p
    in
    (match csv with
    | Some path -> write_file path (Stabilizer.Report.csv_of_sample sample)
    | None -> ());
    (match trace with
    | Some path ->
        let tr =
          Stabilizer.Rollup.trace_of_outcomes ~lanes
            sample.Stabilizer.Sample.outcomes
        in
        write_file path
          (Stz_telemetry.Export.chrome_string (Stz_telemetry.Trace.events tr))
    | None -> ());
    (match metrics with
    | Some path ->
        write_file path
          (Stz_telemetry.Metrics.snapshot (Stabilizer.Rollup.of_sample sample))
    | None -> ());
    let times = sample.Stabilizer.Sample.times in
    Printf.printf "# %s under %s, %s, %d runs\n" bench
      (Stabilizer.Config.describe config)
      (Stz_vm.Opt.level_to_string opt)
      runs;
    Array.iteri
      (fun i r ->
        Printf.printf "run %2d: %10d cycles (%.6f s)  epochs=%d relocations=%d%s\n" i
          r.Stabilizer.Runtime.cycles r.Stabilizer.Runtime.virtual_seconds
          r.Stabilizer.Runtime.epochs r.Stabilizer.Runtime.relocations
          (if r.Stabilizer.Runtime.adaptive_triggers > 0 then
             Printf.sprintf " adaptive=%d" r.Stabilizer.Runtime.adaptive_triggers
           else ""))
      sample.Stabilizer.Sample.results;
    Printf.printf "mean %.6f s   sd %.6f   cv %.4f\n" (Stz_stats.Desc.mean times)
      (Stz_stats.Desc.std_dev times)
      (Stz_stats.Desc.std_dev times /. Stz_stats.Desc.mean times);
    if runs >= 3 then begin
      let sw = Stz_stats.Shapiro.test times in
      Printf.printf "Shapiro-Wilk: W = %.4f, p = %.4f -> %s\n" sw.Stz_stats.Shapiro.w
        sw.Stz_stats.Shapiro.p_value
        (if sw.Stz_stats.Shapiro.p_value >= 0.05 then "plausibly normal"
         else "not normal")
    end;
    if profiled then begin
      Printf.printf "# hottest functions over %d runs (exclusive counters)\n"
        runs;
      top_table ~top:12
        ~total_cycles:(Array.fold_left ( + ) 0 sample.Stabilizer.Sample.cycles)
        (merged_profile sample)
    end;
    Ok 0
  in
  let term =
    Term.(
      term_result
        (const run $ bench_arg $ runs_term $ seed_term $ scale_term $ opt_term
        $ Arg.(
            value
            & opt (some string) None
            & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the samples as CSV.")
        $ config_term $ jobs_term $ trace_term $ metrics_term $ lanes_term
        $ flag [ "profile" ]
            "Also profile every run and print the merged hottest-function \
             table (see `szc top')."))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a benchmark under a randomization configuration.")
    term

(* ------------------------------------------------------------------ *)
(* szc compare                                                         *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let opt_conv =
    Arg.conv
      ( (fun s ->
          match Stz_vm.Opt.level_of_string s with
          | Some l -> Ok l
          | None -> Error (`Msg ("unknown optimization level " ^ s))),
        fun fmt l -> Format.pp_print_string fmt (Stz_vm.Opt.level_to_string l) )
  in
  let run bench runs seed scale config opt_a opt_b profile min_n retries jobs
      trace metrics lanes =
    let* prof = lookup_bench bench scale in
    let p = Stz_workloads.Generate.program prof in
    let arm () =
      Option.map (fun _ -> Stz_telemetry.Trace.create ~lanes ()) trace
    in
    let tel_a = arm () and tel_b = arm () in
    let a, b, verdict =
      Stabilizer.Driver.compare_campaigns ~policy:(policy_of retries) ~profile
        ~jobs ?telemetry_a:tel_a ?telemetry_b:tel_b ~min_n ~config
        ~base_seed:(Int64.of_int seed) ~runs
        ~args:Stz_workloads.Generate.default_args opt_a opt_b p
    in
    (match (trace, tel_a, tel_b) with
    | Some path, Some ta, Some tb ->
        write_file path
          (Stz_telemetry.Export.chrome_groups_string
             [
               ( "arm-a " ^ Stz_vm.Opt.level_to_string opt_a,
                 Stz_telemetry.Trace.events ta );
               ( "arm-b " ^ Stz_vm.Opt.level_to_string opt_b,
                 Stz_telemetry.Trace.events tb );
             ])
    | _ -> ());
    (match metrics with
    | Some path ->
        let m = Stz_telemetry.Metrics.create () in
        let graft prefix c =
          List.iter
            (fun (k, v) -> Stz_telemetry.Metrics.set m (prefix ^ "." ^ k) v)
            (Stz_telemetry.Metrics.to_assoc (Stabilizer.Rollup.of_campaign c))
        in
        graft "arm_a" a;
        graft "arm_b" b;
        write_file path (Stz_telemetry.Metrics.snapshot m)
    | None -> ());
    Printf.printf "# %s: %s vs %s under %s (%d runs each)\n" bench
      (Stz_vm.Opt.level_to_string opt_a)
      (Stz_vm.Opt.level_to_string opt_b)
      (Stabilizer.Config.describe config)
      runs;
    Printf.printf "%s campaign: %s\n"
      (Stz_vm.Opt.level_to_string opt_a)
      (Stabilizer.Report.campaign_line (Stabilizer.Supervisor.summarize a));
    Printf.printf "%s campaign: %s\n"
      (Stz_vm.Opt.level_to_string opt_b)
      (Stabilizer.Report.campaign_line (Stabilizer.Supervisor.summarize b));
    (match verdict with
    | Stabilizer.Experiment.Verdict c ->
        Printf.printf "mean %s = %.6f s, mean %s = %.6f s\n"
          (Stz_vm.Opt.level_to_string opt_a)
          c.Stabilizer.Experiment.mean_a
          (Stz_vm.Opt.level_to_string opt_b)
          c.Stabilizer.Experiment.mean_b;
        Printf.printf "speedup of %s over %s: %.4f\n"
          (Stz_vm.Opt.level_to_string opt_b)
          (Stz_vm.Opt.level_to_string opt_a)
          c.Stabilizer.Experiment.speedup
    | Stabilizer.Experiment.Insufficient _ -> ());
    Printf.printf "%s\n" (Stabilizer.Experiment.describe_gated verdict);
    match verdict with
    | Stabilizer.Experiment.Verdict _ -> Ok 0
    | Stabilizer.Experiment.Insufficient _ -> Ok 2
  in
  let term =
    Term.(
      term_result
        (const run $ bench_arg $ runs_term $ seed_term $ scale_term $ config_term
        $ Arg.(
            value & opt opt_conv Stz_vm.Opt.O1
            & info [ "opt-a" ] ~docv:"LEVEL" ~doc:"First optimization level.")
        $ Arg.(
            value & opt opt_conv Stz_vm.Opt.O2
            & info [ "opt-b" ] ~docv:"LEVEL" ~doc:"Second optimization level.")
        $ faults_term $ min_n_term $ retries_term $ jobs_term $ trace_term
        $ metrics_term $ lanes_term))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Statistically compare two optimization levels of a benchmark \
          (supervised campaigns; exit 2 when censoring leaves fewer than \
          --min-n usable runs).")
    term

(* ------------------------------------------------------------------ *)
(* szc nist                                                            *)
(* ------------------------------------------------------------------ *)

let nist_cmd =
  let run seed =
    Printf.printf "# NIST SP 800-22 over heap-address index bits (paper #3.2)\n";
    List.iter
      (fun r -> Format.printf "%a@." Stabilizer.Heap_randomness.pp_report r)
      (Stabilizer.Heap_randomness.table ~seed:(Int64.of_int seed) ());
    0
  in
  Cmd.v
    (Cmd.info "nist" ~doc:"Randomness of allocator address streams (paper #3.2).")
    Term.(const run $ seed_term)

(* ------------------------------------------------------------------ *)
(* szc disasm                                                          *)
(* ------------------------------------------------------------------ *)

let disasm_cmd =
  let run bench scale opt funcs emit =
    let* prof = lookup_bench bench scale in
    let p = Stabilizer.Driver.compile ~opt (Stz_workloads.Generate.program prof) in
    (match emit with
    | Some path ->
        let oc = open_out path in
        output_string oc (Stz_vm.Text.to_string p);
        close_out oc;
        Printf.printf "# wrote %s\n" path
    | None -> ());
    Printf.printf "# %s at %s: %d functions, %d globals, %d bytes\n" bench
      (Stz_vm.Opt.level_to_string opt)
      (Array.length p.Stz_vm.Ir.funcs)
      (Array.length p.Stz_vm.Ir.globals)
      (Stz_vm.Ir.program_size_bytes p);
    Array.iteri
      (fun i f -> if i < funcs then Format.printf "%a@." Stz_vm.Ir.pp_func f)
      p.Stz_vm.Ir.funcs;
    Ok 0
  in
  let term =
    Term.(
      term_result
        (const run $ bench_arg $ scale_term $ opt_term
        $ Arg.(
            value & opt int 2
            & info [ "funcs" ] ~docv:"N" ~doc:"How many functions to print.")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "emit" ] ~docv:"FILE"
                ~doc:"Write the whole program in the textual IR format.")))
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Print a benchmark's IR after optimization.") term

(* ------------------------------------------------------------------ *)
(* szc power                                                           *)
(* ------------------------------------------------------------------ *)

let power_cmd =
  let run bench runs seed scale pct config =
    let* prof = lookup_bench bench scale in
    let p = Stz_workloads.Generate.program prof in
    (* Pilot sample to estimate the timing variability under this
       configuration. *)
    let pilot =
      Stabilizer.Sample.times ~config ~base_seed:(Int64.of_int seed) ~runs
        ~args:Stz_workloads.Generate.default_args p
    in
    let cv = Stz_stats.Desc.std_dev pilot /. Stz_stats.Desc.mean pilot in
    Printf.printf "# %s under %s: pilot of %d runs, cv = %.4f\n" bench
      (Stabilizer.Config.describe config)
      runs cv;
    let effect =
      Stz_stats.Power.effect_of_speedup ~speedup:(1.0 +. (pct /. 100.0)) ~cv
    in
    Printf.printf
      "a %.2f%% change is a standardized effect of d = %.2f at this variability\n"
      pct effect;
    Printf.printf "runs per version for 80%% power at alpha = 0.05: %d\n"
      (Stz_stats.Power.required_runs ~effect ());
    Printf.printf "runs per version for 95%% power:                 %d\n"
      (Stz_stats.Power.required_runs ~effect ~power:0.95 ());
    let detectable =
      Stz_stats.Power.detectable_effect ~n:runs () *. cv *. 100.0
    in
    Printf.printf
      "with the pilot's %d runs you can detect changes of about %.2f%%\n" runs
      detectable;
    Ok 0
  in
  let term =
    Term.(
      term_result
        (const run $ bench_arg $ runs_term $ seed_term $ scale_term
        $ Arg.(
            value & opt float 1.0
            & info [ "change" ] ~docv:"PCT"
                ~doc:"Performance change of interest, in percent.")
        $ config_term))
  in
  Cmd.v
    (Cmd.info "power"
       ~doc:
         "How many runs are needed to detect a given performance change \
          (paper §2.3)?")
    term

(* ------------------------------------------------------------------ *)
(* szc exec                                                            *)
(* ------------------------------------------------------------------ *)

let exec_cmd =
  let run path arg seed config =
    match
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Stz_vm.Text.of_string text
    with
    | exception Sys_error e -> Error (`Msg e)
    | exception Stz_vm.Text.Parse_error { line; message } ->
        Error (`Msg (Printf.sprintf "%s:%d: %s" path line message))
    | p ->
        let r = Stabilizer.Runtime.run ~config ~seed:(Int64.of_int seed) p ~args:[ arg ] in
        Printf.printf "result = %d\n" r.Stabilizer.Runtime.return_value;
        Printf.printf "cycles = %d (%.6f s) under %s\n" r.Stabilizer.Runtime.cycles
          r.Stabilizer.Runtime.virtual_seconds
          (Stabilizer.Config.describe config);
        Ok 0
  in
  let term =
    Term.(
      term_result
        (const run
        $ Arg.(
            required
            & pos 0 (some file) None
            & info [] ~docv:"FILE" ~doc:"Program in the textual IR format.")
        $ Arg.(
            value & opt int 1 & info [ "arg" ] ~docv:"N" ~doc:"Argument passed to main.")
        $ seed_term $ config_term))
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Run a textual-IR program under a configuration.")
    term

(* ------------------------------------------------------------------ *)
(* szc profile                                                         *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let run bench seed scale opt top config =
    let* prof = lookup_bench bench scale in
    let p =
      Stabilizer.Driver.compile ~opt (Stz_workloads.Generate.program prof)
    in
    let r =
      Stabilizer.Runtime.run ~profile:true ~config ~seed:(Int64.of_int seed) p
        ~args:Stz_workloads.Generate.default_args
    in
    Printf.printf "# %s under %s: %d cycles total\n" bench
      (Stabilizer.Config.describe config)
      r.Stabilizer.Runtime.cycles;
    let c = r.Stabilizer.Runtime.counters in
    Printf.printf
      "# instrs=%d l1i_miss=%d l1d_miss=%d itlb=%d dtlb=%d br_mispred=%d/%d\n"
      c.Stz_machine.Hierarchy.instructions c.Stz_machine.Hierarchy.l1i_misses
      c.Stz_machine.Hierarchy.l1d_misses c.Stz_machine.Hierarchy.itlb_misses
      c.Stz_machine.Hierarchy.dtlb_misses
      c.Stz_machine.Hierarchy.branch_mispredictions c.Stz_machine.Hierarchy.branches;
    Printf.printf "%-16s %10s %14s %8s\n" "function" "calls" "excl. cycles" "share";
    (match r.Stabilizer.Runtime.profile with
    | None -> ()
    | Some entries ->
        List.iteri
          (fun i e ->
            if i < top then
              Printf.printf "%-16s %10d %14d %7.2f%%\n" e.Stabilizer.Profiler.name
                e.Stabilizer.Profiler.calls e.Stabilizer.Profiler.exclusive_cycles
                (100.0
                *. float_of_int e.Stabilizer.Profiler.exclusive_cycles
                /. float_of_int (max 1 r.Stabilizer.Runtime.cycles)))
          entries);
    Ok 0
  in
  let term =
    Term.(
      term_result
        (const run $ bench_arg $ seed_term $ scale_term $ opt_term
        $ Arg.(
            value & opt int 12
            & info [ "top" ] ~docv:"N" ~doc:"How many functions to show.")
        $ config_term))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-function cycle attribution for one run (paper §8's counters).")
    term

(* ------------------------------------------------------------------ *)
(* szc top                                                             *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let run bench runs seed scale opt top config jobs =
    let* prof = lookup_bench bench scale in
    let p = Stz_workloads.Generate.program prof in
    let sample =
      Stabilizer.Driver.build_and_run ~jobs ~config ~opt ~profiled:true
        ~base_seed:(Int64.of_int seed) ~runs
        ~args:Stz_workloads.Generate.default_args p
    in
    let completed = Array.length sample.Stabilizer.Sample.results in
    if completed = 0 then Error (`Msg "every run was censored; nothing to rank")
    else begin
      let total = Array.fold_left ( + ) 0 sample.Stabilizer.Sample.cycles in
      Printf.printf
        "# %s under %s, %s: hottest functions over %d completed runs\n" bench
        (Stabilizer.Config.describe config)
        (Stz_vm.Opt.level_to_string opt)
        completed;
      Printf.printf
        "# exclusive per-function counters, summed across runs (layouts)\n";
      top_table ~top ~total_cycles:total (merged_profile sample);
      Ok 0
    end
  in
  let term =
    Term.(
      term_result
        (const run $ bench_arg $ runs_term $ seed_term $ scale_term $ opt_term
        $ Arg.(
            value & opt int 12
            & info [ "top" ] ~docv:"N" ~doc:"How many functions to show.")
        $ config_term $ jobs_term))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Rank functions by exclusive cycles across a whole sample of \
          layouts, with cache/TLB/branch miss attribution — the paper §8 \
          layout-problem detector. Unlike `szc profile' (one run, one \
          layout), `szc top' merges per-run profiles so a function that is \
          only hot under unlucky layouts still surfaces.")
    term

(* ------------------------------------------------------------------ *)
(* szc check-trace                                                     *)
(* ------------------------------------------------------------------ *)

let check_trace_cmd =
  let run path =
    match
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      text
    with
    | exception Sys_error e -> Error (`Msg e)
    | text -> (
        match Stz_store.Artifact.verify_sum path with
        | Error e ->
            Error (`Msg (Printf.sprintf "%s: checksum mismatch: %s" path e))
        | Ok has_sum -> (
            match Stz_telemetry.Export.validate_chrome_string text with
            | Ok (spans, points) ->
                Printf.printf "%s: ok (%d spans, %d point events%s)\n" path
                  spans points
                  (if has_sum then ", checksum verified" else "");
                Ok 0
            | Error e ->
                Error (`Msg (Printf.sprintf "%s: invalid trace: %s" path e))))
  in
  let term =
    Term.(
      term_result
        (const run
        $ Arg.(
            required
            & pos 0 (some file) None
            & info [] ~docv:"FILE" ~doc:"Chrome trace_event JSON file.")))
  in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:
         "Validate a --trace output file: JSON parse, traceEvents \
          structure, non-negative timestamps, at least one real event; \
          when a .sum sidecar exists the file's CRC-32 is verified \
          first. Exit 0 when valid, 1 otherwise (used by CI).")
    term

(* ------------------------------------------------------------------ *)
(* szc fsck                                                            *)
(* ------------------------------------------------------------------ *)

let fsck_cmd =
  let fsck_one ~repair path =
    if not (Sys.file_exists path) then (
      Printf.printf "%s: missing (skipped)\n" path;
      0)
    else
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      if Stz_store.Artifact.is_container contents then (
        (* Containers carry their kind in the header; dispatch on it so
           a ledger is checked as a ledger, not misdiagnosed as a broken
           checkpoint. A header too damaged to parse strictly still
           yields its kind via salvage. *)
        let container_kind =
          match Stz_store.Artifact.read_records path with
          | Ok (k, _) -> Some k
          | Error _ ->
              (Stz_store.Artifact.salvage_string contents).Stz_store.Artifact.kind
        in
        if container_kind = Some Stz_store.Ledger.kind then (
          match Stz_store.Ledger.load path with
          | Ok entries ->
              Printf.printf "%s: ok (ledger, %d entr%s)\n" path
                (List.length entries)
                (if List.length entries = 1 then "y" else "ies");
              0
          | Error _ -> (
              match Stz_store.Ledger.recover path with
              | Ok (entries, note) ->
                  Printf.printf "%s: salvageable — %s\n" path
                    (Option.value note ~default:"prefix intact");
                  if repair then (
                    Stz_store.Ledger.write path entries;
                    Printf.printf
                      "%s: repaired (rewritten from the salvaged prefix, %d \
                       entr%s)\n"
                      path (List.length entries)
                      (if List.length entries = 1 then "y" else "ies"));
                  2
              | Error e ->
                  Printf.printf "%s: unrecoverable — %s\n" path e;
                  if repair then (
                    let aside = path ^ ".corrupt" in
                    Sys.rename path aside;
                    Printf.printf "%s: moved aside to %s\n" path aside);
                  3))
        else if container_kind = Some Stz_telemetry.Oplog.kind then (
          match Stz_telemetry.Oplog.load path with
          | Ok records ->
              Printf.printf "%s: ok (oplog, %d record%s)\n" path
                (List.length records)
                (if List.length records = 1 then "" else "s");
              0
          | Error _ -> (
              match Stz_telemetry.Oplog.recover path with
              | Ok (records, note) ->
                  Printf.printf "%s: salvageable — %s\n" path
                    (Option.value note ~default:"prefix intact");
                  if repair then (
                    Stz_telemetry.Oplog.rewrite path records;
                    Printf.printf
                      "%s: repaired (rewritten from the salvaged prefix, %d \
                       record%s)\n"
                      path (List.length records)
                      (if List.length records = 1 then "" else "s"));
                  2
              | Error e ->
                  Printf.printf "%s: unrecoverable — %s\n" path e;
                  if repair then (
                    let aside = path ^ ".corrupt" in
                    Sys.rename path aside;
                    Printf.printf "%s: moved aside to %s\n" path aside);
                  3))
        else if container_kind = Some Stz_store.Fuzzlog.kind then (
          match Stz_store.Fuzzlog.load path with
          | Ok (_, cases) ->
              Printf.printf "%s: ok (fuzz ledger, %d case%s)\n" path
                (List.length cases)
                (if List.length cases = 1 then "" else "s");
              0
          | Error _ -> (
              match Stz_store.Fuzzlog.recover path with
              | Ok (meta, cases, note) ->
                  Printf.printf "%s: salvageable — %s\n" path
                    (Option.value note ~default:"prefix intact");
                  if repair then (
                    Stz_store.Fuzzlog.rewrite path meta cases;
                    Printf.printf
                      "%s: repaired (rewritten from the salvaged prefix, %d \
                       case%s)\n"
                      path (List.length cases)
                      (if List.length cases = 1 then "" else "s"));
                  2
              | Error e ->
                  Printf.printf "%s: unrecoverable — %s\n" path e;
                  if repair then (
                    let aside = path ^ ".corrupt" in
                    Sys.rename path aside;
                    Printf.printf "%s: moved aside to %s\n" path aside);
                  3))
        else if container_kind = Some Stz_store.Sweeplog.kind then (
          match Stz_store.Sweeplog.load path with
          | Ok (_, cases) ->
              Printf.printf "%s: ok (sweep ledger, %d case%s)\n" path
                (List.length cases)
                (if List.length cases = 1 then "" else "s");
              0
          | Error _ -> (
              match Stz_store.Sweeplog.recover path with
              | Ok (meta, cases, note) ->
                  Printf.printf "%s: salvageable — %s\n" path
                    (Option.value note ~default:"prefix intact");
                  if repair then (
                    Stz_store.Sweeplog.rewrite path meta cases;
                    Printf.printf
                      "%s: repaired (rewritten from the salvaged prefix, %d \
                       case%s)\n"
                      path (List.length cases)
                      (if List.length cases = 1 then "" else "s"));
                  2
              | Error e ->
                  Printf.printf "%s: unrecoverable — %s\n" path e;
                  if repair then (
                    let aside = path ^ ".corrupt" in
                    Sys.rename path aside;
                    Printf.printf "%s: moved aside to %s\n" path aside);
                  3))
        else
        match Stabilizer.Supervisor.load path with
        | Ok _ ->
            Printf.printf "%s: ok (checkpoint container)\n" path;
            0
        | Error _ -> (
            match Stabilizer.Supervisor.recover path with
            | Ok (c, note) ->
                Printf.printf "%s: salvageable — %s\n" path
                  (Option.value note ~default:"prefix intact");
                if repair then (
                  Stabilizer.Supervisor.save path c;
                  Printf.printf "%s: repaired (rewritten from the salvaged \
                                 prefix, %d record%s)\n"
                    path
                    (List.length c.Stabilizer.Supervisor.records)
                    (if List.length c.Stabilizer.Supervisor.records = 1 then ""
                     else "s"));
                2
            | Error e ->
                Printf.printf "%s: unrecoverable — %s\n" path e;
                if repair then (
                  let aside = path ^ ".corrupt" in
                  Sys.rename path aside;
                  Printf.printf "%s: moved aside to %s\n" path aside);
                3))
      else
        match Stz_store.Artifact.verify_sum path with
        | Error e ->
            Printf.printf "%s: checksum mismatch — %s\n" path e;
            2
        | Ok true ->
            Printf.printf "%s: ok (checksum verified)\n" path;
            0
        | Ok false -> (
            (* No sidecar: the only other artifact we can vouch for is a
               legacy JSON checkpoint. *)
            match Stabilizer.Supervisor.load path with
            | Ok _ ->
                Printf.printf "%s: ok (legacy JSON checkpoint)\n" path;
                0
            | Error _ ->
                Printf.printf "%s: unknown artifact (no .sum sidecar)\n" path;
                1)
  in
  let run repair paths =
    match
      List.fold_left (fun acc p -> Stdlib.max acc (fsck_one ~repair p)) 0 paths
    with
    | code -> Ok code
    | exception Sys_error e -> Error (`Msg e)
  in
  let term =
    Term.(
      term_result
        (const run
        $ Arg.(value & flag & info [ "repair" ]
              ~doc:
                "Rewrite a salvageable checkpoint or ledger from its \
                 longest valid record prefix; move an unrecoverable file \
                 aside to FILE.corrupt.")
        $ Arg.(
            non_empty
            & pos_all string []
            & info [] ~docv:"FILE"
                ~doc:
                  "Artifacts to check (checkpoints, ledgers, CSVs, \
                   traces)." )))
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify artifact integrity: record containers (checkpoints, \
          history ledgers and daemon oplogs, told apart by their header \
          kind) are fully parsed (header, per-record CRC-32, record \
          structure); other artifacts are verified against their .sum \
          sidecar. Exit 0 all ok, 1 unknown artifact or IO error, 2 \
          salvageable corruption (or checksum mismatch), 3 \
          unrecoverable. The overall exit code is the worst per-file \
          code.")
    term

(* ------------------------------------------------------------------ *)
(* szc campaign                                                        *)
(* ------------------------------------------------------------------ *)

let campaign_cmd =
  let run bench runs seed scale opt csv config profile min_n retries checkpoint
      resume quiet jobs trace metrics lanes storage_faults storage_seed
      monitor_live ledger =
    let* prof = lookup_bench bench scale in
    let p = Stz_workloads.Generate.program prof in
    let telemetry =
      Option.map (fun _ -> Stz_telemetry.Trace.create ~lanes ()) trace
    in
    (* The monitor is armed by --monitor (live status) and by --ledger
       (its final verdict goes into the history entry). *)
    let monitor =
      if monitor_live || ledger <> None then
        Some (Stz_monitor.Monitor.create ())
      else None
    in
    if Stz_faults.Storage.active storage_faults then
      Stz_faults.Storage.arm ~seed:(Int64.of_int storage_seed) storage_faults;
    Fun.protect ~finally:Stz_faults.Storage.disarm @@ fun () ->
    match
      Stabilizer.Driver.campaign ~policy:(policy_of retries) ~profile ~jobs
        ?checkpoint ~resume ?telemetry ?monitor
        ~on_record:(fun r ->
          if not quiet then
            Printf.printf "run %3d: %s%s\n%!" r.Stabilizer.Supervisor.run
              (match r.Stabilizer.Supervisor.outcome with
              | Stabilizer.Supervisor.Done d ->
                  Printf.sprintf "%10d cycles (%.6f s)" d.Stabilizer.Supervisor.cycles
                    d.Stabilizer.Supervisor.seconds
              | Stabilizer.Supervisor.Trapped (cls, _) ->
                  "censored: " ^ Stz_faults.Fault.class_to_string cls
              | Stabilizer.Supervisor.Budget_exceeded _ ->
                  "censored: budget-exceeded"
              | Stabilizer.Supervisor.Invalid_result _ ->
                  "censored: invalid-result"
              | Stabilizer.Supervisor.Worker_lost -> "censored: worker-lost"
              | Stabilizer.Supervisor.Worker_hung -> "censored: worker-hung")
              (if r.Stabilizer.Supervisor.retries > 0 then
                 Printf.sprintf "  (retries=%d)" r.Stabilizer.Supervisor.retries
               else "");
          (* Records are delivered in run order whatever --jobs is, and
             the monitor was updated just before this callback, so the
             status stream is byte-identical across worker counts. *)
          match (monitor_live, monitor) with
          | true, Some m ->
              Printf.printf "%s\n%!" (Stz_monitor.Monitor.status_line m)
          | _ -> ())
        ~config ~opt ~base_seed:(Int64.of_int seed) ~runs
        ~args:Stz_workloads.Generate.default_args p
    with
    | exception Stabilizer.Supervisor.Mismatch msg ->
        Printf.eprintf "szc: campaign aborted: %s\n" msg;
        Ok 3
    | campaign ->
        let summary = Stabilizer.Supervisor.summarize campaign in
        (match (trace, telemetry) with
        | Some path, Some tr ->
            write_file path
              (Stz_telemetry.Export.chrome_string
                 (Stz_telemetry.Trace.events tr))
        | _ -> ());
        (match metrics with
        | Some path ->
            write_file path
              (Stz_telemetry.Metrics.snapshot
                 (Stabilizer.Rollup.of_campaign campaign))
        | None -> ());
        (match csv with
        | Some path ->
            write_file path (Stabilizer.Report.csv_of_campaign campaign)
        | None -> ());
        Printf.printf "# %s under %s, %s, %d runs, faults %s\n" bench
          (Stabilizer.Config.describe config)
          (Stz_vm.Opt.level_to_string opt)
          runs
          (Stz_faults.Fault.fingerprint profile);
        Printf.printf "%s\n" (Stabilizer.Report.campaign_line summary);
        let times = Stabilizer.Supervisor.times campaign in
        if Array.length times > 0 then
          Printf.printf "%s\n" (Stabilizer.Report.summary_line times);
        (match monitor with
        | Some m when monitor_live ->
            Printf.printf "monitor verdict: %s\n"
              (Stz_monitor.Monitor.verdict_to_string
                 (Stz_monitor.Monitor.advise m))
        | _ -> ());
        let* () =
          match ledger with
          | None -> Ok ()
          | Some path -> (
              let fp =
                Stabilizer.History.fingerprint ~bench ~opt ~scale campaign
              in
              let verdict =
                match monitor with
                | Some m ->
                    Stz_monitor.Monitor.verdict_to_string
                      (Stz_monitor.Monitor.advise m)
                | None -> "-"
              in
              let entry =
                Stabilizer.History.entry_of_campaign ~verdict ~label:bench
                  ~fingerprint:fp campaign
              in
              match Stz_store.Ledger.append path entry with
              | Ok seq ->
                  Printf.printf "ledger: entry %d appended to %s\n" seq path;
                  Ok ()
              | Error e ->
                  Error (`Msg (Printf.sprintf "ledger %s: %s" path e)))
        in
        if summary.Stabilizer.Supervisor.completed = 0 then begin
          Printf.eprintf "szc: campaign aborted: every run was censored\n";
          Ok 3
        end
        else if summary.Stabilizer.Supervisor.completed < min_n then begin
          Printf.printf
            "no verdict possible: %d uncensored runs, need %d (exit 2)\n"
            summary.Stabilizer.Supervisor.completed min_n;
          Ok 2
        end
        else Ok 0
  in
  let term =
    Term.(
      term_result
        (const run $ bench_arg $ runs_term $ seed_term $ scale_term $ opt_term
        $ Arg.(
            value
            & opt (some string) None
            & info [ "csv" ] ~docv:"FILE"
                ~doc:"Write the long-format outcome CSV (one row per run).")
        $ config_term $ faults_term $ min_n_term $ retries_term
        $ Arg.(
            value
            & opt (some string) None
            & info [ "checkpoint" ] ~docv:"FILE"
                ~doc:
                  "Checkpoint file (checksummed artifact container), \
                   written durably as runs finish.")
        $ flag [ "resume" ]
            "Resume the campaign from --checkpoint if the file exists. A \
             corrupted checkpoint resumes from its longest valid prefix."
        $ flag [ "quiet" ] "Suppress per-run progress lines."
        $ jobs_term $ trace_term $ metrics_term $ lanes_term
        $ storage_faults_term $ storage_seed_term
        $ flag [ "monitor" ]
            "Stream live statistics after every finished run (running \
             moments, quartiles, normality, CI half-width, power, drift \
             alarms) and print the final sequential-stopping verdict. \
             Deterministic: byte-identical for any --jobs."
        $ Arg.(
            value
            & opt (some string) None
            & info [ "ledger" ] ~docv:"FILE"
                ~doc:
                  "Append this campaign's summary (moments, effect \
                   sizes, monitor verdict) to the history ledger at \
                   $(docv), creating it if missing — the baseline store \
                   for szc regress.")))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a supervised, resumable experiment campaign: per-run fault \
          classification, bounded retry with fresh seeds, seed quarantine, \
          calibrated budgets, durable checksummed checkpoint/resume, live \
          statistical monitoring (--monitor), history recording \
          (--ledger), and a hung-worker watchdog when --jobs >= 2. Exit \
          codes: 0 enough uncensored runs, 2 fewer than --min-n, 3 \
          aborted.")
    term

(* ------------------------------------------------------------------ *)
(* szc history                                                         *)
(* ------------------------------------------------------------------ *)

let entry_detail (e : Stz_store.Ledger.entry) =
  Printf.sprintf
    "label              %s\n\
     fingerprint        %s\n\
     base_seed          %Ld\n\
     runs               %d\n\
     completed          %d\n\
     censored           %d\n\
     mean               %.9f s\n\
     sd                 %.9f s\n\
     min                %.9f s\n\
     max                %.9f s\n\
     skewness           %.6f\n\
     kurtosis           %.6f\n\
     detectable effect  d=%.4f (0.8 power)\n\
     verdict            %s\n"
    e.Stz_store.Ledger.label e.Stz_store.Ledger.fingerprint
    e.Stz_store.Ledger.base_seed e.Stz_store.Ledger.runs
    e.Stz_store.Ledger.completed e.Stz_store.Ledger.censored
    e.Stz_store.Ledger.mean e.Stz_store.Ledger.sd e.Stz_store.Ledger.min
    e.Stz_store.Ledger.max e.Stz_store.Ledger.skewness
    e.Stz_store.Ledger.kurtosis e.Stz_store.Ledger.detectable_effect
    e.Stz_store.Ledger.verdict

let history_cmd =
  let run path show =
    match Stz_store.Ledger.load path with
    | Error e -> Error (`Msg (Printf.sprintf "%s: %s" path e))
    | Ok entries -> (
        match show with
        | Some n -> (
            match List.nth_opt entries n with
            | None ->
                Error
                  (`Msg
                    (Printf.sprintf "%s: no entry %d (ledger has %d)" path n
                       (List.length entries)))
            | Some e ->
                Printf.printf "# entry %d of %s\n%s" n path (entry_detail e);
                Ok 0)
        | None ->
            Printf.printf "# %s: %d entr%s\n" path (List.length entries)
              (if List.length entries = 1 then "y" else "ies");
            if entries <> [] then
              Printf.printf "# %4s  %-16s %5s %5s %5s  %-14s %-17s %s\n" "seq"
                "label" "runs" "done" "cens" "mean" "verdict" "fingerprint";
            List.iteri
              (fun i (e : Stz_store.Ledger.entry) ->
                Printf.printf "%6d  %-16s %5d %5d %5d  %.6e  %-17s %s\n" i
                  e.Stz_store.Ledger.label e.Stz_store.Ledger.runs
                  e.Stz_store.Ledger.completed e.Stz_store.Ledger.censored
                  e.Stz_store.Ledger.mean e.Stz_store.Ledger.verdict
                  e.Stz_store.Ledger.fingerprint)
              entries;
            Ok 0)
  in
  let term =
    Term.(
      term_result
        (const run
        $ Arg.(
            required
            & pos 0 (some file) None
            & info [] ~docv:"LEDGER" ~doc:"History ledger written by szc \
                                           campaign --ledger.")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "show" ] ~docv:"SEQ"
                ~doc:"Show every recorded field of one entry instead of \
                      the listing.")))
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "List the campaigns recorded in a history ledger (one line per \
          entry, oldest first), or show one entry in full with --show. \
          The ledger is strict-loaded: a corrupt file is refused — run \
          szc fsck --repair first.")
    term

(* ------------------------------------------------------------------ *)
(* szc regress                                                         *)
(* ------------------------------------------------------------------ *)

let regress_cmd =
  let run path label baseline confidence min_effect min_n =
    match Stz_store.Ledger.load path with
    | Error e -> Error (`Msg (Printf.sprintf "%s: %s" path e))
    | Ok entries -> (
        let indexed = List.mapi (fun i e -> (i, e)) entries in
        let wanted (e : Stz_store.Ledger.entry) =
          match label with None -> true | Some l -> e.Stz_store.Ledger.label = l
        in
        match List.rev (List.filter (fun (_, e) -> wanted e) indexed) with
        | [] ->
            Printf.printf "no matching entries in %s (exit 3)\n" path;
            Ok 3
        | ((latest_seq, latest) as latest_pair) :: earlier_rev -> (
            let base =
              match baseline with
              | Some seq ->
                  List.find_opt (fun (i, _) -> i = seq && i <> latest_seq)
                    indexed
              | None ->
                  (* Default baseline: the oldest earlier entry measuring
                     the same benchmark — the first recorded state of the
                     world, so a slow drift across many campaigns is
                     still compared against the original. *)
                  List.find_opt
                    (fun (_, (e : Stz_store.Ledger.entry)) ->
                      e.Stz_store.Ledger.label = latest.Stz_store.Ledger.label)
                    (List.rev earlier_rev)
            in
            match base with
            | None ->
                Printf.printf
                  "no baseline to compare entry %d against (exit 3)\n"
                  latest_seq;
                Ok 3
            | Some base_pair -> (
                let c =
                  Stabilizer.History.compare_entries ~confidence ~min_effect
                    ~min_n ~baseline:base_pair ~latest:latest_pair ()
                in
                Printf.printf "%s\n" (Stabilizer.History.describe c);
                match c.Stabilizer.History.decision with
                | Stabilizer.History.Regression -> Ok 2
                | Stabilizer.History.No_regression
                | Stabilizer.History.Improvement ->
                    Ok 0
                | Stabilizer.History.Not_comparable _ -> Ok 3)))
  in
  let term =
    Term.(
      term_result
        (const run
        $ Arg.(
            required
            & pos 0 (some file) None
            & info [] ~docv:"LEDGER" ~doc:"History ledger written by szc \
                                           campaign --ledger.")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "label" ] ~docv:"BENCH"
                ~doc:"Compare the latest entry with this label (default: \
                      the latest entry in the ledger).")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "baseline" ] ~docv:"SEQ"
                ~doc:"Compare against this ledger entry (default: the \
                      oldest earlier entry with the same label).")
        $ Arg.(
            value & opt float 0.95
            & info [ "confidence" ] ~docv:"C"
                ~doc:"Confidence level of the effect-size interval.")
        $ Arg.(
            value & opt float 0.2
            & info [ "min-effect" ] ~docv:"D"
                ~doc:"Practical-significance floor on Cohen's d; smaller \
                      confirmed effects do not fail the gate.")
        $ Arg.(
            value & opt int 3
            & info [ "min-n" ] ~docv:"N"
                ~doc:"Completed runs required on each side before any \
                      conclusion is drawn.")))
  in
  Cmd.v
    (Cmd.info "regress"
       ~doc:
         "Decide, from the history ledger alone, whether the latest \
          recorded campaign regressed against its baseline: Cohen's d \
          with a confidence interval recomputed from the stored moments \
          (bit-exact — floats are stored as hex). Exit 0 no confirmed \
          regression (or a confirmed improvement), 2 regression (CI \
          excludes zero and d >= --min-effect), 3 insufficient data.")
    term

(* ------------------------------------------------------------------ *)
(* szc selftest                                                        *)
(* ------------------------------------------------------------------ *)

let selftest_cmd =
  let module S = Stabilizer in
  let module F = Stz_faults.Fault in
  let run budget seed jobs =
    let t0 = Sys.time () in
    let within_budget () = Sys.time () -. t0 < float_of_int budget in
    let failures = ref [] in
    let check name ok = if not ok then failures := name :: !failures in
    let tiny =
      {
        Stz_workloads.Profile.default with
        Stz_workloads.Profile.name = "selftest";
        functions = 8;
        hot_functions = 4;
        iterations = 12;
        inner_trips = 6;
        seed = 0x5E1F_7E57L;
      }
    in
    let p = Stz_workloads.Generate.program tiny in
    (* VM shift semantics: the interpreter (and through it the
       optimizer's constant folder) must clamp shift amounts into
       [0, 62] without dropping odd amounts — a regression here skews
       every workload that shifts by an odd count. *)
    let shl = Stz_vm.Interp.eval_binop Stz_vm.Ir.Shl in
    let shr = Stz_vm.Interp.eval_binop Stz_vm.Ir.Shr in
    check "shift semantics: shl 1 doubles" (shl 21 1 = 42);
    check "shift semantics: shr 3 odd amount" (shr 80 3 = 10);
    check "shift semantics: 63 clamps to 62" (shl 1 63 = 1 lsl 62);
    check "shift semantics: asr keeps sign" (shr (-16) 2 = -4);
    let config = S.Config.stabilizer in
    let base_seed = Int64.of_int seed in
    let policy = { S.Supervisor.default_policy with S.Supervisor.max_retries = 2 } in
    let campaign ?(jobs = jobs) ?checkpoint ?(resume = false) profile =
      S.Supervisor.run_campaign ~policy ~profile ~jobs ?checkpoint ~resume
        ~config ~base_seed ~runs:10 ~args:[ 1 ] p
    in
    (* One campaign per single fault class at probability 1, plus every
       preset: none of them may raise, and the books must balance. *)
    let single name f = (name, { F.none with F.seed_poisoning = 0.0 } |> f) in
    let profiles =
      [
        single "fuel" (fun pr -> { pr with F.fuel_starvation = 1.0 });
        (* starved_depth 1 forbids the hot->leaf call chain, so depth
           blowout actually fires on this shallow workload. *)
        single "depth" (fun pr ->
            { pr with F.depth_blowout = 1.0; F.starved_depth = 1 });
        single "oom" (fun pr -> { pr with F.alloc_failure = 1.0 });
        single "preempt" (fun pr -> { pr with F.preemption_spike = 1.0 });
        single "poison" (fun pr -> { pr with F.seed_poisoning = 1.0 });
      ]
      @ F.named
    in
    List.iter
      (fun (name, profile) ->
        if within_budget () then begin
          match campaign profile with
          | exception e ->
              check
                (Printf.sprintf "%s: campaign raised %s" name
                   (Printexc.to_string e))
                false
          | c ->
              let s = S.Supervisor.summarize c in
              Printf.printf "%-8s %s\n%!" name (S.Report.campaign_line s);
              check
                (name ^ ": books balance")
                (s.S.Supervisor.completed + s.S.Supervisor.censored
                = s.S.Supervisor.runs);
              check
                (name ^ ": retries bounded")
                (List.for_all
                   (fun r ->
                     r.S.Supervisor.retries <= policy.S.Supervisor.max_retries)
                   c.S.Supervisor.records)
        end)
      profiles;
    (* The budget and reference gates, checked directly: address-level
       faults cannot change these workloads' answers (every load follows
       a store to the same location), so Invalid_result is exercised
       against a doctored reference instead. *)
    if within_budget () then begin
      match
        S.Outcome.run ~config ~seed:base_seed p ~args:[ 1 ]
      with
      | S.Outcome.Completed r ->
          check "budget gate censors slow runs"
            (match S.Outcome.check ~budget_cycles:(r.S.Runtime.cycles - 1) r with
            | S.Outcome.Budget_exceeded _ -> true
            | _ -> false);
          check "reference gate flags corrupted answers"
            (match S.Outcome.check ~reference:(r.S.Runtime.return_value + 1) r with
            | S.Outcome.Invalid_result _ -> true
            | _ -> false);
          check "clean runs pass both gates"
            (S.Outcome.check ~budget_cycles:r.S.Runtime.cycles
               ~reference:r.S.Runtime.return_value r
            = S.Outcome.Completed r)
      | o ->
          check
            (Printf.sprintf "clean run completed (got %s)" (S.Outcome.to_string o))
            false
    end;
    (* Checkpoint round-trip + resume identity under the heavy profile. *)
    if within_budget () then begin
      let path = Filename.temp_file "szc-selftest" ".json" in
      let c1 = campaign ~checkpoint:path F.heavy in
      (match S.Supervisor.load path with
      | Error e -> check ("checkpoint load: " ^ e) false
      | Ok c2 ->
          check "checkpoint round-trips records"
            (c1.S.Supervisor.records = c2.S.Supervisor.records));
      let c3 = campaign ~checkpoint:path ~resume:true F.heavy in
      check "resume over a finished campaign is the identity"
        (c1.S.Supervisor.records = c3.S.Supervisor.records
        && S.Supervisor.times c1 = S.Supervisor.times c3);
      Sys.remove path
    end;
    (* Parallel determinism: --jobs N must be bit-identical to serial. *)
    if jobs > 1 && within_budget () then begin
      let serial = campaign ~jobs:1 F.light in
      let par = campaign ~jobs F.light in
      check
        (Printf.sprintf "--jobs %d campaign is bit-identical to serial" jobs)
        (S.Report.csv_of_campaign serial = S.Report.csv_of_campaign par
        && S.Supervisor.to_json serial = S.Supervisor.to_json par)
    end;
    match !failures with
    | [] ->
        Printf.printf "selftest ok (%.1fs)\n" (Sys.time () -. t0);
        0
    | fs ->
        List.iter (fun f -> Printf.eprintf "selftest FAILED: %s\n" f) (List.rev fs);
        3
  in
  let term =
    Term.(
      const run
      $ Arg.(
          value & opt int 30
          & info [ "budget-seconds" ] ~docv:"S"
              ~doc:"Wall budget; later campaigns are skipped once exceeded.")
      $ seed_term $ jobs_term)
  in
  Cmd.v
    (Cmd.info "selftest"
       ~doc:
         "Smoke-test the fault-injection harness: one small campaign per \
          fault class and preset profile, plus checkpoint/resume identity. \
          Exit 0 on pass, 3 on failure.")
    term

(* ------------------------------------------------------------------ *)
(* szc remote: client for the szcd campaign daemon                     *)
(* ------------------------------------------------------------------ *)

let remote_socket_term =
  Arg.(
    value
    & opt string (Filename.concat (Filename.get_temp_dir_name ()) "szcd.sock")
    & info [ "socket" ] ~docv:"PATH" ~doc:"szcd Unix-domain socket.")

let deadline_term =
  Arg.(
    value & opt float 600.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Overall deadline: connection retries, reconnects and waits all \
           stop once this many seconds have elapsed.")

let retry_seed_term =
  Arg.(
    value & opt int 1
    & info [ "retry-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the reconnect-backoff jitter stream — deterministic per \
           seed, decorrelated across clients.")

let tenant_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TENANT" ~doc:"Tenant name.")

let id_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"ID" ~doc:"Campaign id.")

let remote_deadline deadline = Unix.gettimeofday () +. deadline

let remote_rpc ~socket ~deadline ~seed req =
  let deadline = remote_deadline deadline in
  let seed = Int64.of_int seed in
  match Stz_daemon.Client.connect ~socket ~deadline ~seed () with
  | Error e -> Error e
  | Ok t ->
      let r = Stz_daemon.Client.rpc t ~deadline req in
      Stz_daemon.Client.close t;
      r

(* The daemon rides identity facts along on status replies; render
   them as one supplementary line (absent when talking to an old
   daemon, so the output stays a superset of the old format). *)
let print_status_info info =
  if info <> [] then begin
    let field k = List.assoc_opt k info in
    let uptime =
      match field "uptime_ms" with
      | Some ms -> (
          match int_of_string_opt ms with
          | Some ms -> Printf.sprintf ", up %.1fs" (float_of_int ms /. 1000.)
          | None -> "")
      | None -> ""
    in
    let drained =
      match field "last_drain" with
      | Some t -> Printf.sprintf ", last drain %s" t
      | None -> ""
    in
    match field "version" with
    | Some v -> Printf.printf "daemon %s%s%s\n" v uptime drained
    | None -> ()
  end

let print_stats (s : Stz_daemon.Protocol.stats) =
  let open Stz_daemon.Protocol in
  Printf.printf "%s up %.1fs, slots %d/%d%s\n" s.s_version
    (float_of_int s.s_uptime_ms /. 1000.)
    s.s_slots_busy s.s_slots_total
    (if s.s_draining then ", draining" else "");
  List.iter
    (fun (k, (h : Stz_telemetry.Ops.hist_summary)) ->
      Printf.printf "hist %s count %d min %d p50 %d p90 %d p99 %d max %d\n" k
        h.h_count h.h_min h.h_p50 h.h_p90 h.h_p99 h.h_max)
    s.s_hists;
  List.iter
    (fun r ->
      Printf.printf
        "tenant %s active %d queued %d held %d completed %d runs %d deficit %d\n"
        r.tr_tenant r.tr_active r.tr_queued r.tr_held r.tr_completed r.tr_runs
        r.tr_deficit)
    s.s_tenants

let print_response = function
  | Stz_daemon.Protocol.Pong -> Printf.printf "pong\n"
  | Stz_daemon.Protocol.Accepted { id; state } ->
      Printf.printf "accepted %s (%s)\n" id state
  | Stz_daemon.Protocol.Rejected { reason } -> Printf.printf "rejected: %s\n" reason
  | Stz_daemon.Protocol.Status_is { state; completed; runs; exit_code; info } ->
      Printf.printf "state %s, runs %d/%d%s\n" state completed runs
        (match exit_code with
        | Some c -> Printf.sprintf ", exit %d" c
        | None -> "");
      print_status_info info
  | Stz_daemon.Protocol.Draining { in_flight } ->
      Printf.printf "draining (%d in flight)\n" in_flight
  | Stz_daemon.Protocol.Cancelled -> Printf.printf "cancelled\n"
  | Stz_daemon.Protocol.Summary { exit_code; line } ->
      Printf.printf "%s (exit %d)\n" line exit_code
  | Stz_daemon.Protocol.Progress { run; line } ->
      Printf.printf "run %d: %s\n" run line
  | Stz_daemon.Protocol.Stats_is s -> print_stats s
  | Stz_daemon.Protocol.Error_frame msg -> Printf.printf "protocol error: %s\n" msg

let remote_submit_cmd =
  let run socket deadline retry_seed tenant id bench runs seed scale opt_s
      faults storage_faults storage_seed retries min_n ledger trace wait quiet =
    let spec =
      {
        Stz_daemon.Spool.bench;
        runs;
        seed;
        scale;
        opt = opt_s;
        faults;
        storage_faults;
        storage_seed;
        retries;
        min_n;
        ledger;
        trace;
      }
    in
    match Stz_daemon.Spool.validate spec with
    | Error e ->
        Printf.eprintf "szc remote submit: %s\n" e;
        1
    | Ok () ->
        if not wait then (
          match
            remote_rpc ~socket ~deadline ~seed:retry_seed
              (Stz_daemon.Protocol.Submit { tenant; id; spec })
          with
          | Ok resp ->
              print_response resp;
              (match resp with
              | Stz_daemon.Protocol.Accepted _ -> 0
              | Stz_daemon.Protocol.Rejected _ -> 2
              | _ -> 1)
          | Error e ->
              Printf.eprintf "szc remote submit: %s\n" e;
              1)
        else (
          match
            Stz_daemon.Client.submit_and_wait ~socket
              ~deadline:(remote_deadline deadline)
              ~seed:(Int64.of_int retry_seed) ~tenant ~id ~spec
              ~progress:(fun _ line ->
                if not quiet then Printf.printf "%s\n%!" line)
          with
          | Ok (exit_code, line) ->
              Printf.printf "%s\n" line;
              exit_code
          | Error e ->
              Printf.eprintf "szc remote submit: %s\n" e;
              1)
  in
  let term =
    Term.(
      const run $ remote_socket_term $ deadline_term $ retry_seed_term
      $ tenant_arg $ id_arg
      $ Arg.(
          required & pos 2 (some string) None
          & info [] ~docv:"BENCH" ~doc:"Benchmark name.")
      $ runs_term $ seed_term $ scale_term
      $ Arg.(
          value & opt string "O2"
          & info [ "O"; "opt" ] ~docv:"LEVEL" ~doc:"Optimization level (O0..O3).")
      $ Arg.(
          value & opt string "none"
          & info [ "faults" ] ~docv:"PROFILE" ~doc:"Run fault profile.")
      $ Arg.(
          value & opt string "none"
          & info [ "storage-faults" ] ~docv:"PROFILE"
              ~doc:"Storage fault profile for the runner's artifact writes.")
      $ storage_seed_term $ retries_term $ min_n_term
      $ flag [ "ledger" ]
          "Append a history ledger entry in the campaign's spool directory \
           (arms the monitor, as `szc campaign --ledger' does)."
      $ flag [ "trace" ] "Export a Chrome trace into the spool directory."
      $ flag [ "wait" ]
          "Follow the campaign to completion and exit with its campaign \
           exit code; reconnects (idempotent resubmit + re-attach) across \
           daemon restarts."
      $ flag [ "quiet" ] "With --wait, suppress per-run progress lines.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign to szcd. Resubmitting the same TENANT ID with \
          the same spec is idempotent; a different spec is rejected.")
    term

let remote_attach_cmd =
  let run socket deadline retry_seed tenant id from_run quiet =
    let deadline = remote_deadline deadline in
    let seed = Int64.of_int retry_seed in
    let next_run = ref from_run in
    let rec session attempt =
      if Unix.gettimeofday () > deadline then Error "deadline exceeded"
      else
        match Stz_daemon.Client.connect ~socket ~deadline ~seed () with
        | Error e -> Error e
        | Ok t -> (
            let retry _reason =
              Stz_daemon.Client.close t;
              Unix.sleepf 0.2;
              session (attempt + 1)
            in
            match
              Stz_daemon.Client.send t
                (Stz_daemon.Protocol.Stream { tenant; id; from_run = !next_run })
            with
            | Error e -> retry e
            | Ok () ->
                let rec follow () =
                  match Stz_daemon.Client.read_response t ~deadline with
                  | Error e -> retry e
                  | Ok (Stz_daemon.Protocol.Progress { run; line }) ->
                      if run >= !next_run then begin
                        if not quiet then Printf.printf "%s\n%!" line;
                        next_run := run + 1
                      end;
                      follow ()
                  | Ok (Stz_daemon.Protocol.Summary { exit_code; line }) ->
                      Stz_daemon.Client.close t;
                      Printf.printf "%s\n" line;
                      Ok exit_code
                  | Ok Stz_daemon.Protocol.Cancelled ->
                      Stz_daemon.Client.close t;
                      Printf.printf "campaign cancelled\n";
                      Ok 1
                  | Ok (Stz_daemon.Protocol.Rejected { reason }) ->
                      Stz_daemon.Client.close t;
                      Error reason
                  | Ok (Stz_daemon.Protocol.Error_frame msg) ->
                      Stz_daemon.Client.close t;
                      Error ("protocol error: " ^ msg)
                  | Ok _ -> follow ()
                in
                follow ())
    in
    match session 0 with
    | Ok code -> code
    | Error e ->
        Printf.eprintf "szc remote attach: %s\n" e;
        1
  in
  let term =
    Term.(
      const run $ remote_socket_term $ deadline_term $ retry_seed_term
      $ tenant_arg $ id_arg
      $ Arg.(
          value & opt int 0
          & info [ "from-run" ] ~docv:"N"
              ~doc:"Replay finished runs from $(docv) before following live.")
      $ flag [ "quiet" ] "Suppress per-run progress lines.")
  in
  Cmd.v
    (Cmd.info "attach"
       ~doc:
         "Attach to a running (or finished) campaign's progress stream, \
          reconnecting across daemon restarts; exits with the campaign's \
          exit code.")
    term

let remote_simple name doc req ok_of =
  let run socket deadline retry_seed tenant id =
    match remote_rpc ~socket ~deadline ~seed:retry_seed (req ~tenant ~id) with
    | Ok resp ->
        print_response resp;
        ok_of resp
    | Error e ->
        Printf.eprintf "szc remote %s: %s\n" name e;
        1
  in
  let term =
    Term.(
      const run $ remote_socket_term $ deadline_term $ retry_seed_term
      $ tenant_arg $ id_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

let remote_status_cmd =
  remote_simple "status" "Query a campaign's state."
    (fun ~tenant ~id -> Stz_daemon.Protocol.Status { tenant; id })
    (function Stz_daemon.Protocol.Status_is _ -> 0 | _ -> 1)

let remote_cancel_cmd =
  remote_simple "cancel"
    "Cancel a running campaign (it checkpoints and stops at the next batch \
     boundary)."
    (fun ~tenant ~id -> Stz_daemon.Protocol.Cancel { tenant; id })
    (function Stz_daemon.Protocol.Cancelled -> 0 | _ -> 1)

let remote_noarg name doc req ok_of =
  let run socket deadline retry_seed =
    match remote_rpc ~socket ~deadline ~seed:retry_seed req with
    | Ok resp ->
        print_response resp;
        ok_of resp
    | Error e ->
        Printf.eprintf "szc remote %s: %s\n" name e;
        1
  in
  let term =
    Term.(const run $ remote_socket_term $ deadline_term $ retry_seed_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let remote_ping_cmd =
  remote_noarg "ping" "Check the daemon is alive." Stz_daemon.Protocol.Ping
    (function Stz_daemon.Protocol.Pong -> 0 | _ -> 1)

let remote_drain_cmd =
  remote_noarg "drain"
    "Ask the daemon to drain: stop admitting, checkpoint every in-flight \
     campaign, exit 0."
    Stz_daemon.Protocol.Drain
    (function Stz_daemon.Protocol.Draining _ -> 0 | _ -> 1)

let remote_top_cmd =
  let fmt_us v =
    if v >= 10_000 then Printf.sprintf "%.1fms" (float_of_int v /. 1000.)
    else Printf.sprintf "%dus" v
  in
  let render ~raw (s : Stz_daemon.Protocol.stats) =
    let open Stz_daemon.Protocol in
    if raw then begin
      (* Machine-readable dump (one snapshot per blank-line-separated
         block): what the CI gauntlet parses. *)
      print_stats s;
      List.iter (fun (k, v) -> Printf.printf "counter %s %d\n" k v) s.s_counters;
      List.iter (fun (k, v) -> Printf.printf "gauge %s %d\n" k v) s.s_gauges;
      print_newline ();
      flush stdout
    end
    else begin
      if Unix.isatty Unix.stdout then print_string "\027[H\027[2J";
      Printf.printf "szcd %s  up %.1fs  slots %d/%d%s\n" s.s_version
        (float_of_int s.s_uptime_ms /. 1000.)
        s.s_slots_busy s.s_slots_total
        (if s.s_draining then "  DRAINING" else "");
      (match List.assoc_opt "loop.tick_us" s.s_hists with
      | Some (h : Stz_telemetry.Ops.hist_summary) ->
          Printf.printf "tick   p50 %s  p90 %s  p99 %s  max %s  (%d ticks)\n"
            (fmt_us h.h_p50) (fmt_us h.h_p90) (fmt_us h.h_p99) (fmt_us h.h_max)
            h.h_count
      | None -> ());
      (match List.assoc_opt "sched.batch" s.s_hists with
      | Some (h : Stz_telemetry.Ops.hist_summary) ->
          Printf.printf "batch  p50 %d  p90 %d  p99 %d  max %d  (%d grants)\n"
            h.h_p50 h.h_p90 h.h_p99 h.h_max h.h_count
      | None -> ());
      Printf.printf "%-16s %6s %6s %6s %9s %9s %8s\n" "TENANT" "ACTIVE"
        "QUEUED" "HELD" "DONE" "RUNS" "DEFICIT";
      let rows =
        List.sort
          (fun a b ->
            match compare (b.tr_held, b.tr_active) (a.tr_held, a.tr_active) with
            | 0 -> String.compare a.tr_tenant b.tr_tenant
            | c -> c)
          s.s_tenants
      in
      List.iter
        (fun r ->
          Printf.printf "%-16s %6d %6d %6d %9d %9d %8d\n" r.tr_tenant
            r.tr_active r.tr_queued r.tr_held r.tr_completed r.tr_runs
            r.tr_deficit)
        rows;
      if rows = [] then print_string "(no in-flight campaigns)\n";
      flush stdout
    end
  in
  let run socket deadline retry_seed interval count once raw =
    let count = if once then 1 else count in
    let interval_ms =
      Stdlib.max 100 (Stdlib.min 60_000 (int_of_float (interval *. 1000.)))
    in
    if count = 1 then (
      match
        remote_rpc ~socket ~deadline ~seed:retry_seed Stz_daemon.Protocol.Stats
      with
      | Ok (Stz_daemon.Protocol.Stats_is s) ->
          render ~raw s;
          0
      | Ok resp ->
          print_response resp;
          1
      | Error e ->
          Printf.eprintf "szc remote top: %s\n" e;
          1)
    else
      let abs_deadline = remote_deadline deadline in
      let seed = Int64.of_int retry_seed in
      match Stz_daemon.Client.connect ~socket ~deadline:abs_deadline ~seed () with
      | Error e ->
          Printf.eprintf "szc remote top: %s\n" e;
          1
      | Ok t -> (
          match
            Stz_daemon.Client.send t (Stz_daemon.Protocol.Watch { interval_ms })
          with
          | Error e ->
              Stz_daemon.Client.close t;
              Printf.eprintf "szc remote top: %s\n" e;
              1
          | Ok () ->
              let rec loop seen =
                if count > 0 && seen >= count then (
                  Stz_daemon.Client.close t;
                  0)
                else
                  match
                    Stz_daemon.Client.read_response t ~deadline:abs_deadline
                  with
                  | Ok (Stz_daemon.Protocol.Stats_is s) ->
                      render ~raw s;
                      loop (seen + 1)
                  | Ok (Stz_daemon.Protocol.Error_frame msg) ->
                      Stz_daemon.Client.close t;
                      Printf.eprintf "szc remote top: protocol error: %s\n" msg;
                      1
                  | Ok _ -> loop seen
                  | Error e ->
                      (* Daemon drained or deadline hit: fine after at
                         least one frame, an error before any. *)
                      Stz_daemon.Client.close t;
                      if seen > 0 then 0
                      else (
                        Printf.eprintf "szc remote top: %s\n" e;
                        1)
              in
              loop 0)
  in
  let term =
    Term.(
      const run $ remote_socket_term $ deadline_term $ retry_seed_term
      $ Arg.(
          value & opt float 2.0
          & info [ "interval" ] ~docv:"SECONDS"
              ~doc:"Refresh period for the live view.")
      $ Arg.(
          value & opt int 0
          & info [ "count" ] ~docv:"N"
              ~doc:
                "Exit after $(docv) snapshots (0 = keep refreshing until \
                 the deadline or the daemon drains).")
      $ flag [ "once" ] "Print a single snapshot and exit (same as --count 1)."
      $ flag [ "raw" ]
          "Machine-readable output: one line per tenant row, histogram, \
           counter and gauge — no screen clearing (for scripts and CI).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live per-tenant view of a szcd daemon: active/queued campaigns, \
          held run slots, completed runs and DRR deficit per tenant, plus \
          event-loop tick-latency and grant-batch percentiles from the \
          daemon's ops histograms. Sorted by held slots (the busiest \
          tenant first).")
    term

(* ------------------------------------------------------------------ *)
(* szc fuzz                                                            *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run seed count jobs out resume rand_runs shrink_budget plant watchdog
      quiet =
    let* plant =
      match plant with
      | None -> Ok None
      | Some "shift-clamp" -> Ok (Some Stz_vm.Opt.Shift_clamp)
      | Some other ->
          Error (`Msg (Printf.sprintf "unknown planted bug %S" other))
    in
    let cfg =
      {
        Stabilizer.Fuzzer.fuzz_seed = Int64.of_int seed;
        count;
        jobs;
        out_dir = out;
        resume;
        rand_runs;
        shrink_budget;
        plant;
        watchdog = (if watchdog <= 0.0 then None else Some watchdog);
        log =
          (if quiet then ignore
           else fun line -> Printf.printf "%s\n%!" line);
      }
    in
    match Stabilizer.Fuzzer.run_campaign cfg with
    | Error e ->
        Printf.eprintf "szc: fuzz aborted: %s\n" e;
        Ok 3
    | Ok s ->
        Printf.printf
          "fuzz: %d case%s — %d clean, %d trapped, %d failed, %d crashed, %d \
           hung\n"
          s.Stabilizer.Fuzzer.total
          (if s.Stabilizer.Fuzzer.total = 1 then "" else "s")
          s.Stabilizer.Fuzzer.clean s.Stabilizer.Fuzzer.trapped
          s.Stabilizer.Fuzzer.failed s.Stabilizer.Fuzzer.crashed
          s.Stabilizer.Fuzzer.hung;
        List.iter
          (fun r -> Printf.printf "reproducer: %s\n" (Filename.concat out r))
          s.Stabilizer.Fuzzer.reproducers;
        Ok (if s.Stabilizer.Fuzzer.failed > 0 then 2 else 0)
  in
  let term =
    Term.(
      term_result
        (const run
        $ Arg.(
            value & opt int 1
            & info [ "seed" ] ~docv:"SEED"
                ~doc:
                  "Fuzz seed. Every case is a pure function of (seed, \
                   index): the same seed and count always produce a \
                   byte-identical ledger and reproducer set.")
        $ Arg.(
            value & opt int 200
            & info [ "count"; "n" ] ~docv:"N"
                ~doc:"Number of generated programs to fuzz.")
        $ jobs_term
        $ Arg.(
            value & opt string "fuzz-out"
            & info [ "out" ] ~docv:"DIR"
                ~doc:
                  "Output directory for the fuzz ledger (fuzz.log) and \
                   shrunk reproducers (repro-*.szt, runnable with `szc \
                   exec').")
        $ flag [ "resume" ]
            "Continue an interrupted campaign from its ledger (self-heals \
             a torn tail first) instead of starting over. The finished \
             ledger is byte-identical to an uninterrupted run's."
        $ Arg.(
            value & opt int 2
            & info [ "rand-runs" ] ~docv:"N"
                ~doc:
                  "Randomization seeds per case for the layout-invariance \
                   oracle.")
        $ Arg.(
            value & opt int 2000
            & info [ "shrink-budget" ] ~docv:"N"
                ~doc:
                  "Maximum predicate evaluations while minimizing a failing \
                   program.")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "plant" ] ~docv:"BUG"
                ~doc:
                  "Arm a known optimizer bug (test hook; currently \
                   $(b,shift-clamp)) to prove the oracles catch it.")
        $ Arg.(
            value & opt float 30.0
            & info [ "watchdog" ] ~docv:"SECONDS"
                ~doc:
                  "Hang grace per case; a silent worker is SIGKILLed and \
                   the case censored. Forces fork isolation even at --jobs \
                   1; 0 disables (cases then run in-process at --jobs 1).")
        $ flag [ "quiet" ] "Suppress per-case progress output."))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing of the VM/optimizer stack: sample whole \
          generator configurations from a seed-deterministic meta-space, \
          then require (a) O0/O1/O2/O3 result equality with validated \
          pipeline outputs, (b) result invariance across layout/heap \
          randomization seeds, and (c) hardware-counter sanity. Failing \
          cases are shrunk to minimal reproducers; worker crashes and \
          hangs are censored, never fatal. Exit 0 clean, 2 when \
          reproducers were found, 3 when the harness aborted.")
    term

(* ------------------------------------------------------------------ *)
(* szc explain / szc layout sweep                                      *)
(* ------------------------------------------------------------------ *)

(* The attribution workloads: any SPEC-like profile, plus the planted
   layout-sensitivity programs that exercise the profiler itself. *)
let lookup_explain_workload name scale =
  match name with
  | "pathological" ->
      Ok
        ( Stz_workloads.Pathological.program (),
          Stz_workloads.Pathological.default_args )
  | "conflict" ->
      Ok (Stz_workloads.Conflict.program (), Stz_workloads.Conflict.default_args)
  | "conflict-control" ->
      Ok (Stz_workloads.Conflict.control (), Stz_workloads.Conflict.default_args)
  | _ ->
      let* prof = lookup_bench name scale in
      Ok (Stz_workloads.Generate.program prof, Stz_workloads.Generate.default_args)

(* Workload variants for the ANOVA's subject factor: ~5% argument steps
   around the workload's default, wide enough to register as a workload
   stratum yet narrow against any genuine layout swing. *)
let explain_variants ~variants base_args =
  List.init variants (fun v ->
      List.map (fun a -> a + (v * Stdlib.max 1 (a / 20))) base_args)

let explain_cmd =
  let run bench seeds variants seed scale jobs baseline csv trace =
    let* p, base_args = lookup_explain_workload bench scale in
    let config =
      if baseline then Stabilizer.Config.baseline else Stabilizer.Config.one_time
    in
    match
      Stz_attrib.Explain.run ~jobs ~config ~base_seed:(Int64.of_int seed)
        ~seeds ~variants:(explain_variants ~variants base_args) p
    with
    | Error e ->
        Printf.eprintf "szc: explain aborted: %s\n" e;
        Ok 3
    | Ok report ->
        print_string (Stz_attrib.Explain.to_string report);
        (match csv with
        | Some path -> write_file path (Stz_attrib.Explain.csv report)
        | None -> ());
        (match trace with
        | Some path -> write_file path (Stz_attrib.Explain.trace_string report)
        | None -> ());
        Ok (if report.Stz_attrib.Explain.decomposition = None then 2 else 0)
  in
  let term =
    Term.(
      term_result
        (const run
        $ Arg.(
            required
            & pos 0 (some string) None
            & info [] ~docv:"WORKLOAD"
                ~doc:
                  "Workload to attribute: a benchmark name (see `szc \
                   list'), or one of the planted programs $(b,pathological), \
                   $(b,conflict), $(b,conflict-control).")
        $ Arg.(
            value & opt int 8
            & info [ "seeds"; "k" ] ~docv:"K"
                ~doc:
                  "Layout seeds (the ANOVA's treatment factor), split \
                   deterministically from $(b,--seed).")
        $ Arg.(
            value & opt int 4
            & info [ "variants"; "w" ] ~docv:"W"
                ~doc:
                  "Workload argument variants (the ANOVA's subject \
                   factor), ~5% steps around the workload's default \
                   arguments.")
        $ seed_term $ scale_term $ jobs_term
        $ flag [ "baseline" ]
            "Attribute the unrandomized layout instead of one-time \
             randomized layouts (every seed then measures the same \
             deterministic placement)."
        $ Arg.(
            value
            & opt (some string) None
            & info [ "csv" ] ~docv:"FILE"
                ~doc:
                  "Write the ranked conflict table as CSV (decomposition \
                   in a `#' footer).")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "trace" ] ~docv:"FILE"
                ~doc:
                  "Write a Chrome trace_event JSON view of the K x W cycle \
                   matrix: one group per variant, one lane per layout \
                   seed.")))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Attribute layout bias: run WORKLOAD under K one-time layout \
          seeds x W argument variants on conflict-instrumented machines, \
          decompose cycle variance (within-subjects ANOVA) into layout / \
          workload / residual with eta-squared effect sizes, and rank \
          which function pairs conflict in which hardware structure at \
          what estimated cycle cost. Exit 0 with a decomposition, 2 when \
          too many cells were censored to decompose, 3 on abort.")
    term

let layout_sweep_cmd =
  let run seed count jobs out resume layout_seeds variants threshold
      shrink_budget watchdog quiet =
    let cfg =
      {
        Stz_attrib.Sweep.fuzz_seed = Int64.of_int seed;
        count;
        jobs;
        out_dir = out;
        resume;
        layout_seeds;
        variants;
        threshold;
        shrink_budget;
        watchdog = (if watchdog <= 0.0 then None else Some watchdog);
        log =
          (if quiet then ignore else fun line -> Printf.printf "%s\n%!" line);
      }
    in
    match Stz_attrib.Sweep.run_campaign cfg with
    | Error e ->
        Printf.eprintf "szc: layout sweep aborted: %s\n" e;
        Ok 3
    | Ok s ->
        Printf.printf
          "layout sweep: %d case%s — %d measured, %d trapped, %d crashed, %d \
           hung; max layout eta2 %.3f, %d offender%s at threshold %.2f\n"
          s.Stz_attrib.Sweep.total
          (if s.Stz_attrib.Sweep.total = 1 then "" else "s")
          s.Stz_attrib.Sweep.measured s.Stz_attrib.Sweep.trapped
          s.Stz_attrib.Sweep.crashed s.Stz_attrib.Sweep.hung
          s.Stz_attrib.Sweep.max_eta2
          (List.length s.Stz_attrib.Sweep.offenders)
          (if List.length s.Stz_attrib.Sweep.offenders = 1 then "" else "s")
          threshold;
        List.iter
          (fun r -> Printf.printf "reproducer: %s\n" (Filename.concat out r))
          s.Stz_attrib.Sweep.reproducers;
        Ok 0
  in
  let term =
    Term.(
      term_result
        (const run
        $ Arg.(
            value & opt int 1
            & info [ "seed" ] ~docv:"SEED"
                ~doc:
                  "Sweep seed keying the fuzz meta-space. Every case is a \
                   pure function of (seed, index): the same seed and \
                   count always produce a byte-identical ledger and \
                   reproducer set.")
        $ Arg.(
            value & opt int 25
            & info [ "count"; "n" ] ~docv:"N"
                ~doc:"Number of generated programs to sweep.")
        $ jobs_term
        $ Arg.(
            value & opt string "sweep-out"
            & info [ "out" ] ~docv:"DIR"
                ~doc:
                  "Output directory for the sweep ledger (sweep.log) and \
                   shrunk worst-offender reproducers (repro-*.szt, \
                   runnable with `szc exec').")
        $ flag [ "resume" ]
            "Continue an interrupted sweep from its ledger (self-heals a \
             torn tail first) instead of starting over. The finished \
             ledger is byte-identical to an uninterrupted run's."
        $ Arg.(
            value & opt int 6
            & info [ "layout-seeds"; "k" ] ~docv:"K"
                ~doc:"Layout seeds per case (ANOVA treatments).")
        $ Arg.(
            value & opt int 4
            & info [ "variants"; "w" ] ~docv:"W"
                ~doc:"Workload argument variants per case (ANOVA subjects).")
        $ Arg.(
            value & opt float 0.5
            & info [ "threshold" ] ~docv:"ETA2"
                ~doc:
                  "Layout eta-squared at or above which a case counts as \
                   an offender and is shrunk to a reproducer.")
        $ Arg.(
            value & opt int 200
            & info [ "shrink-budget" ] ~docv:"N"
                ~doc:
                  "Maximum predicate evaluations while minimizing an \
                   offender (each evaluation reruns the full K x W \
                   matrix; keep small).")
        $ Arg.(
            value & opt float 60.0
            & info [ "watchdog" ] ~docv:"SECONDS"
                ~doc:
                  "Hang grace per case; a silent worker is SIGKILLed and \
                   the case censored. Forces fork isolation even at \
                   --jobs 1; 0 disables.")
        $ flag [ "quiet" ] "Suppress per-case progress output."))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Worst-case layout search: walk the fuzzer's seed-deterministic \
          program meta-space, measure each program's layout eta-squared \
          with the `szc explain' machinery (K one-time layout seeds x W \
          argument variants), and shrink programs whose layout share of \
          cycle variance meets the threshold into minimal reproducers. \
          Crash-isolated, watchdogged, and resumable: the CRC-framed \
          ledger self-heals a torn tail and a resumed sweep converges to \
          a byte-identical ledger. Exit 0 on completion, 3 on abort.")
    term

let layout_cmd =
  Cmd.group
    (Cmd.info "layout"
       ~doc:"Layout-bias tooling: worst-case layout sweeps (`szc layout sweep').")
    [ layout_sweep_cmd ]

let remote_cmd =
  Cmd.group
    (Cmd.info "remote"
       ~doc:
         "Talk to a szcd campaign daemon: submit/status/attach/cancel/\
          drain/ping/top with deadline, exponential backoff and \
          deterministic jitter.")
    [
      remote_submit_cmd; remote_status_cmd; remote_attach_cmd;
      remote_cancel_cmd; remote_drain_cmd; remote_ping_cmd; remote_top_cmd;
    ]

let () =
  (* A peer (daemon socket, pipe, pager) dying mid-write must surface
     as EPIPE and a censoring event, never kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let info =
    Cmd.info "szc" ~version:"1.0.0"
      ~doc:"STABILIZER driver: run simulated benchmarks under layout randomization."
  in
  (* Exit-code contract: 0 = verdict/success, 1 = usage or bad input,
     2 = insufficient uncensored samples, 3 = campaign aborted. fsck
     reuses the numbers with its own meaning: 0 = intact, 1 = unknown
     artifact, 2 = salvageable corruption, 3 = unrecoverable. *)
  match
    Cmd.eval_value
      (Cmd.group info
         [
           list_cmd; run_cmd; compare_cmd; campaign_cmd; selftest_cmd; nist_cmd;
           disasm_cmd; profile_cmd; top_cmd; check_trace_cmd; fsck_cmd;
           exec_cmd; power_cmd; history_cmd; regress_cmd; fuzz_cmd;
           explain_cmd; layout_cmd; remote_cmd;
         ])
  with
  | Ok (`Ok code) -> exit code
  | Ok (`Help | `Version) -> exit 0
  | Error _ -> exit 1
