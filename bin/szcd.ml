(* szcd: the campaign daemon — a long-lived multi-tenant service
   multiplexing concurrent campaigns onto one shared worker pool.
   Exit codes: 0 = clean drain (SIGTERM/SIGINT or `szc remote drain`),
   3 = unusable spool or socket. *)

open Cmdliner

let socket_term =
  Arg.(
    value
    & opt string (Filename.concat (Filename.get_temp_dir_name ()) "szcd.sock")
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let spool_term =
  Arg.(
    value & opt string "szcd-spool"
    & info [ "spool" ] ~docv:"DIR"
        ~doc:
          "Spool directory: one subdirectory per tenant/campaign holding \
           manifest, checkpoint, CSV, ledger and result. Scanned and \
           repaired on startup; interrupted campaigns resume.")

let slots_term =
  Arg.(
    value & opt int 4
    & info [ "slots" ] ~docv:"N"
        ~doc:"Concurrent run slots shared by every campaign.")

let quantum_term =
  Arg.(
    value & opt int 2
    & info [ "quantum" ] ~docv:"N"
        ~doc:
          "Deficit-round-robin quantum: run credits added per scheduler \
           visit. Smaller is fairer, larger is batchier.")

let max_campaigns_term =
  Arg.(
    value & opt int Stz_daemon.Quota.default_limits.Stz_daemon.Quota.max_campaigns_per_tenant
    & info [ "max-campaigns" ] ~docv:"N"
        ~doc:"Per-tenant cap on concurrent in-flight campaigns.")

let max_runs_term =
  Arg.(
    value & opt int Stz_daemon.Quota.default_limits.Stz_daemon.Quota.max_runs_per_tenant
    & info [ "max-runs" ] ~docv:"N"
        ~doc:"Per-tenant cap on total runs across in-flight campaigns.")

let run_budget_term =
  Arg.(
    value & opt int Stz_daemon.Quota.default_limits.Stz_daemon.Quota.global_run_budget
    & info [ "run-budget" ] ~docv:"N"
        ~doc:"Global cap on total in-flight runs across all tenants.")

let verbose_term =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log lifecycle events to stderr.")

let oplog_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "oplog" ] ~docv:"PATH"
        ~doc:
          "Append lifecycle events (spawns, restarts, admissions, drains) \
           to a rotating CRC-framed JSONL oplog at $(docv); `szc fsck' \
           verifies and salvages it. Purely operational: enabling it \
           changes no campaign artifact byte.")

let ops_export_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "ops-export" ] ~docv:"PATH"
        ~doc:
          "Write the ops registry to $(docv) in Prometheus textfile \
           format, atomically, about once a second. Purely operational: \
           enabling it changes no campaign artifact byte.")

let () =
  let run socket spool slots quantum max_campaigns max_runs run_budget verbose
      oplog ops_export =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let cfg =
      {
        (Stz_daemon.Daemon.default_config ~socket ~spool) with
        Stz_daemon.Daemon.slots;
        quantum;
        verbose;
        oplog;
        ops_export;
        limits =
          {
            Stz_daemon.Quota.max_campaigns_per_tenant = max_campaigns;
            max_runs_per_tenant = max_runs;
            global_run_budget = run_budget;
          };
      }
    in
    Stz_daemon.Daemon.run cfg
  in
  let term =
    Term.(
      const run $ socket_term $ spool_term $ slots_term $ quantum_term
      $ max_campaigns_term $ max_runs_term $ run_budget_term $ verbose_term
      $ oplog_term $ ops_export_term)
  in
  let info =
    Cmd.info "szcd" ~version:"1.0.0"
      ~doc:
        "Fault-tolerant multi-tenant campaign daemon: admission control \
         (per-tenant quotas, global run budget), deficit-round-robin fair \
         share onto one worker pool, drain on SIGTERM, spool crash \
         recovery. Every campaign's artifacts are byte-identical to a solo \
         `szc campaign' run."
  in
  match Cmd.eval_value (Cmd.v info term) with
  | Ok (`Ok code) -> exit code
  | Ok (`Help | `Version) -> exit 0
  | Error _ -> exit 1
