(* Self-timing performance harness for the simulator itself (ROADMAP
   item 1): measure how fast *we* execute simulated runs, not how fast
   the simulated programs are. A workload matrix over representative
   `lib/workloads` profiles is run with warmup and repeats, wall-clock
   timed, and the results are written as BENCH_<PR>.json at the repo
   root. Optionally every workload's per-repeat wall time per run is
   appended to a `Stz_store.Ledger` history, so `szc regress` — the
   same Cohen's-d confidence-interval gate used for simulated
   campaigns — judges the simulator's own performance trajectory
   across PRs: we eat our own statistical dog food.

     dune exec bench/perf.exe -- --out BENCH_7.json --ledger perf.ledger

   Each repeat re-simulates the *identical* deterministic set of runs
   (fixed base seed), so repeat-to-repeat variance is pure harness and
   machine noise — exactly what a regression gate wants to see
   through. Knobs: --runs (simulated runs per repeat), --repeats,
   --warmup, --matrix quick|full, and STZ_SCALE shrinks the workloads
   like everywhere else in the bench suite. *)

module S = Stabilizer
module W = Stz_workloads
module Welford = Stz_monitor.Welford
module Ledger = Stz_store.Ledger
module Json = S.Json

let scale =
  match Sys.getenv_opt "STZ_SCALE" with Some s -> float_of_string s | None -> 1.0

(* The matrix spans the axes that stress different interpreter paths:
   short vs long runs, branchy vs loopy code, heap churn vs streaming
   data. Names match `szc list`. *)
let full_matrix =
  [
    ("astar", "heap-heavy: churny allocation, pointer-chasing");
    ("hmmer", "loopy: long inner trips, table scans");
    ("libquantum", "short: streaming global arrays, low branchiness");
    ("mcf", "long: memory-bound pointer loops");
    ("sjeng", "branchy: irregular control flow");
  ]

let quick_matrix = [ List.nth full_matrix 0; List.nth full_matrix 3; List.nth full_matrix 4 ]

type opts = {
  out : string;
  ledger : string option;
  runs : int;
  repeats : int;
  warmup : int;
  matrix : (string * string) list;
}

let default_opts =
  {
    out = "BENCH_7.json";
    ledger = None;
    runs = 12;
    repeats = 5;
    warmup = 1;
    matrix = full_matrix;
  }

let usage () =
  prerr_endline
    "usage: perf [--out FILE] [--ledger FILE] [--runs N] [--repeats K] \
     [--warmup W] [--matrix quick|full]";
  exit 1

let parse_opts argv =
  let rec go o = function
    | [] -> o
    | "--out" :: v :: rest -> go { o with out = v } rest
    | "--ledger" :: v :: rest -> go { o with ledger = Some v } rest
    | "--runs" :: v :: rest -> go { o with runs = int_of_string v } rest
    | "--repeats" :: v :: rest -> go { o with repeats = int_of_string v } rest
    | "--warmup" :: v :: rest -> go { o with warmup = int_of_string v } rest
    | "--matrix" :: "quick" :: rest -> go { o with matrix = quick_matrix } rest
    | "--matrix" :: "full" :: rest -> go { o with matrix = full_matrix } rest
    | _ -> usage ()
  in
  go default_opts (List.tl (Array.to_list argv))

(* ------------------------------------------------------------------ *)
(* Environment fingerprint                                             *)
(* ------------------------------------------------------------------ *)

let read_process cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with _ -> None

let git_sha () =
  match read_process "git rev-parse HEAD 2>/dev/null" with
  | Some sha -> sha
  | None -> "unknown"

let cpu_count () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    Stdlib.max 1 !n
  with _ -> 1

let env_fingerprint () =
  Json.Obj
    [
      ("ocaml", Json.String Sys.ocaml_version);
      ("git_sha", Json.String (git_sha ()));
      ("cpus", Json.Int (cpu_count ()));
      ("word_size", Json.Int Sys.word_size);
      ("os", Json.String Sys.os_type);
    ]

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type repeat = { wall_s : float; sim_cycles : int; completed : int }

type result = {
  name : string;
  why : string;
  repeats : repeat list;  (** measured repeats, warmups excluded *)
}

let base_seed = 0x5EED_7L

(* One repeat: simulate [runs] layout-randomized runs of the workload
   under the full STABILIZER configuration at O2 — the same inner loop
   every campaign and experiment in this repo spends its time in. The
   fixed base seed makes every repeat simulate the identical work. *)
let measure_repeat ~runs prof =
  let p = W.Generate.program prof in
  let t0 = Unix.gettimeofday () in
  let sample =
    S.Driver.build_and_run ~config:S.Config.stabilizer ~opt:Stz_vm.Opt.O2
      ~base_seed ~runs ~args:W.Generate.default_args p
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let sim_cycles = Array.fold_left ( + ) 0 sample.S.Sample.cycles in
  { wall_s; sim_cycles; completed = Array.length sample.S.Sample.times }

let measure ~opts (name, why) =
  match W.Spec.find name with
  | None -> failwith ("unknown workload: " ^ name)
  | Some prof ->
      let prof = W.Profile.scale scale prof in
      for _ = 1 to opts.warmup do
        ignore (measure_repeat ~runs:opts.runs prof)
      done;
      let repeats =
        List.init opts.repeats (fun _ -> measure_repeat ~runs:opts.runs prof)
      in
      Printf.eprintf "perf: %-12s %d repeats x %d runs: %s\n%!" name
        opts.repeats opts.runs
        (String.concat " "
           (List.map (fun r -> Printf.sprintf "%.3fs" r.wall_s) repeats));
      { name; why; repeats }

(* ------------------------------------------------------------------ *)
(* Aggregation + JSON                                                  *)
(* ------------------------------------------------------------------ *)

let stats_of values =
  let w = Welford.create () in
  List.iter (Welford.add w) values;
  Json.Obj
    [
      ("mean", Json.Float (Welford.mean w));
      ("sd", Json.Float (if Welford.count w > 1 then Welford.std_dev w else 0.0));
      ("min", Json.Float (Welford.min w));
      ("max", Json.Float (Welford.max w));
      ("per_repeat", Json.List (List.map (fun v -> Json.Float v) values));
    ]

let json_of_result ~opts r =
  let walls = List.map (fun x -> x.wall_s) r.repeats in
  let runs_per_s =
    List.map (fun x -> float_of_int opts.runs /. x.wall_s) r.repeats
  in
  let cycles_per_s =
    List.map (fun x -> float_of_int x.sim_cycles /. x.wall_s) r.repeats
  in
  let total_completed =
    List.fold_left (fun acc x -> acc + x.completed) 0 r.repeats
  in
  Json.Obj
    [
      ("name", Json.String r.name);
      ("why", Json.String r.why);
      ("wall_s", stats_of walls);
      ("runs_per_s", stats_of runs_per_s);
      ("sim_cycles_per_s", stats_of cycles_per_s);
      ( "sim_cycles_per_repeat",
        Json.List (List.map (fun x -> Json.Int x.sim_cycles) r.repeats) );
      ("completed_runs", Json.Int total_completed);
    ]

let totals results ~opts =
  let wall = ref 0.0 and cycles = ref 0 and runs = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun x ->
          wall := !wall +. x.wall_s;
          cycles := !cycles + x.sim_cycles;
          runs := !runs + opts.runs)
        r.repeats)
    results;
  Json.Obj
    [
      ("wall_s", Json.Float !wall);
      ("runs_per_s", Json.Float (float_of_int !runs /. !wall));
      ("sim_cycles_per_s", Json.Float (float_of_int !cycles /. !wall));
    ]

(* ------------------------------------------------------------------ *)
(* Ledger dog-food: one history entry per workload, seconds per        *)
(* simulated run, so `szc regress --label perf:<name>` gates us.       *)
(* ------------------------------------------------------------------ *)

let ledger_entry ~opts ~sha r =
  let w = Welford.create () in
  List.iter
    (fun x -> Welford.add w (x.wall_s /. float_of_int opts.runs))
    r.repeats;
  let n = Welford.count w in
  {
    Ledger.label = "perf:" ^ r.name;
    fingerprint =
      Printf.sprintf "perf|%s|O2|stabilizer|%h|runs=%d|git=%s" r.name scale
        opts.runs sha;
    base_seed;
    runs = opts.repeats;
    completed = n;
    censored = 0;
    mean = Welford.mean w;
    sd = (if n > 1 then Welford.std_dev w else 0.0);
    min = Welford.min w;
    max = Welford.max w;
    skewness = (if n > 2 then Welford.skewness w else 0.0);
    kurtosis = (if n > 3 then Welford.kurtosis w else 0.0);
    detectable_effect =
      (if n < 2 then 0.0 else Stz_stats.Power.detectable_effect ~n ());
    verdict = "-";
  }

let () =
  let opts = parse_opts Sys.argv in
  let results = List.map (measure ~opts) opts.matrix in
  let sha = git_sha () in
  let doc =
    Json.Obj
      [
        ("bench", Json.String "simulator-perf");
        ("schema", Json.Int 1);
        ("env", env_fingerprint ());
        ( "params",
          Json.Obj
            [
              ("runs_per_repeat", Json.Int opts.runs);
              ("repeats", Json.Int opts.repeats);
              ("warmup", Json.Int opts.warmup);
              ("scale", Json.Float scale);
              ("opt", Json.String "O2");
              ("config", Json.String "code.heap.stack");
              ("base_seed", Json.of_int64 base_seed);
            ] );
        ("workloads", Json.List (List.map (json_of_result ~opts) results));
        ("totals", totals results ~opts);
      ]
  in
  let oc = open_out opts.out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" opts.out;
  match opts.ledger with
  | None -> ()
  | Some path ->
      List.iter
        (fun r ->
          match Ledger.append path (ledger_entry ~opts ~sha r) with
          | Ok seq ->
              Printf.printf "ledger: %s entry %d appended to %s\n%!"
                ("perf:" ^ r.name) seq path
          | Error e ->
              Printf.eprintf "ledger append failed: %s\n%!" e;
              exit 1)
        results
