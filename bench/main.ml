(* The full experiment harness: regenerates every table and figure of
   the paper's evaluation on the simulated substrate.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- nist      -- §3.2 randomness table  (E1)
     dune exec bench/main.exe -- normality -- Table 1 + Figure 5     (E2)
     dune exec bench/main.exe -- overhead  -- Figure 6               (E3)
     dune exec bench/main.exe -- optimizations -- Figure 7           (E4)
     dune exec bench/main.exe -- anova     -- §6.1                   (E5)
     dune exec bench/main.exe -- bias      -- §1 motivation          (E6)
     dune exec bench/main.exe -- table2    -- Table 2
     dune exec bench/main.exe -- ablations -- N / interval / allocator / granularity
     dune exec bench/main.exe -- reloc     -- §3.5 relocation-table ABIs
     dune exec bench/main.exe -- adaptive  -- §8 adaptive re-randomization
     dune exec bench/main.exe -- predictor -- §8 predictor structure
     dune exec bench/main.exe -- faults    -- supervised campaigns under faults
     dune exec bench/main.exe -- perf      -- Bechamel microbenchmarks

   Environment knobs: STZ_RUNS (default 30) and STZ_SCALE (default 1.0)
   shrink the experiments for quick passes; SZC_JOBS (default 1) fans
   sample collection and campaigns out over forked workers — outputs
   are bit-identical whatever the worker count. *)

module S = Stabilizer
module W = Stz_workloads
module Stats = Stz_stats
module Opt = Stz_vm.Opt

let runs =
  match Sys.getenv_opt "STZ_RUNS" with Some s -> int_of_string s | None -> 30

let scale =
  match Sys.getenv_opt "STZ_SCALE" with Some s -> float_of_string s | None -> 1.0

let jobs =
  match Sys.getenv_opt "SZC_JOBS" with Some s -> int_of_string s | None -> 1

let args = W.Generate.default_args
let alpha = 0.05

let suite = List.map (fun p -> W.Profile.scale scale p) W.Spec.all

let progress fmt = Printf.eprintf fmt

let heading title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let mean = Stats.Desc.mean

(* ------------------------------------------------------------------ *)
(* Shared sample collection (memoized across experiments)              *)
(* ------------------------------------------------------------------ *)

type bench_samples = {
  prof : W.Profile.t;
  base_link : float array;  (** unrandomized, random link order *)
  code : float array;
  code_stack : float array;
  one_time : float array;  (** full randomization, no re-randomization *)
  full : float array;  (** full randomization with re-randomization *)
  o1 : float array;  (** O1/O2/O3 under full randomization *)
  o2 : float array;
  o3 : float array;
}

let collect_bench prof =
  progress "  sampling %-12s (%d runs x 8 configurations)...\n%!"
    prof.W.Profile.name runs;
  let p = W.Generate.program prof in
  let sample ?(opt = Opt.O2) config seed =
    (S.Driver.build_and_run ~jobs ~config ~opt ~base_seed:seed ~runs ~args p)
      .S.Sample.times
  in
  {
    prof;
    base_link =
      sample { S.Config.baseline with link_order = S.Config.Random_link } 1L;
    code = sample S.Config.code_only 2L;
    code_stack = sample S.Config.code_stack 3L;
    one_time = sample S.Config.one_time 4L;
    full = sample S.Config.stabilizer 5L;
    o1 = sample ~opt:Opt.O1 S.Config.stabilizer 6L;
    o2 = sample ~opt:Opt.O2 S.Config.stabilizer 7L;
    o3 = sample ~opt:Opt.O3 S.Config.stabilizer 8L;
  }

let all_samples = lazy (List.map collect_bench suite)

(* ------------------------------------------------------------------ *)
(* E1: §3.2 NIST randomness table                                      *)
(* ------------------------------------------------------------------ *)

let run_nist () =
  heading "E1  NIST SP 800-22 on heap-address index bits (paper §3.2)";
  print_endline
    "Paper: lrand48 and DieHard pass six of seven tests (all but Rank);\n\
     the shuffled heap with N = 256 passes the same tests. Each subject\n\
     is tested on the index-bit window it can randomize (see DESIGN.md).\n";
  List.iter
    (fun r -> Format.printf "%a@." S.Heap_randomness.pp_report r)
    (S.Heap_randomness.table ~seed:1L ());
  print_endline
    "\nShape check: pass counts rise monotonically with N; N >= 64 covers\n\
     every cache index bit of the simulated machine and passes 7/7."

(* ------------------------------------------------------------------ *)
(* E2: Table 1 (Shapiro-Wilk / Brown-Forsythe) + Figure 5 (QQ)         *)
(* ------------------------------------------------------------------ *)

let run_normality () =
  heading "E2  Normality of execution times: Table 1 and Figure 5";
  print_endline
    "Paper: without re-randomization 5 of 18 benchmarks fail Shapiro-Wilk\n\
     (astar, cactusADM, gromacs, h264ref, perlbench); with re-randomization\n\
     all recover except cactusADM (hmmer becomes non-normal). Brown-Forsythe\n\
     finds significantly lower variance for 8 benchmarks, higher for 2.\n";
  Printf.printf "%-12s | %10s %10s | %10s %8s | %s\n" "benchmark" "SW p (1x)"
    "SW p (re)" "BF p" "variance" "QQ corr (1x / re)";
  Printf.printf "%s\n" (String.make 78 '-');
  let one_non = ref 0 and re_non = ref 0 in
  let bf_dec = ref 0 and bf_inc = ref 0 in
  List.iter
    (fun b ->
      let sw1 = (Stats.Shapiro.test b.one_time).Stats.Shapiro.p_value in
      let sw2 = (Stats.Shapiro.test b.full).Stats.Shapiro.p_value in
      let bf = (Stats.Levene.brown_forsythe [ b.one_time; b.full ]).Stats.Levene.p_value in
      let decreased = Stats.Desc.variance b.full < Stats.Desc.variance b.one_time in
      if sw1 < alpha then incr one_non;
      if sw2 < alpha then incr re_non;
      if bf < alpha then if decreased then incr bf_dec else incr bf_inc;
      Printf.printf "%-12s | %10.4f %10.4f | %10.4f %8s | %.4f / %.4f\n"
        b.prof.W.Profile.name sw1 sw2 bf
        ((if decreased then "dec" else "inc") ^ if bf < alpha then "*" else "")
        (Stats.Qq.correlation b.one_time)
        (Stats.Qq.correlation b.full))
    (Lazy.force all_samples);
  Printf.printf "%s\n" (String.make 78 '-');
  Printf.printf
    "measured: %d/18 non-normal one-time -> %d/18 non-normal re-randomized\n"
    !one_non !re_non;
  Printf.printf
    "          variance significantly decreased for %d, increased for %d\n"
    !bf_dec !bf_inc;
  Printf.printf "paper:    5/18 -> 2/18; decreased for 8, increased for 2\n";
  (* Figure 5, two representative QQ plots. *)
  List.iter
    (fun name ->
      match
        List.find_opt
          (fun b -> b.prof.W.Profile.name = name)
          (Lazy.force all_samples)
      with
      | None -> ()
      | Some b ->
          let sd = Stats.Desc.std_dev b.full in
          let plot label xs =
            Printf.printf "\nFigure 5 (%s, %s): QQ plot vs normal\n" name label;
            print_string
              (Stats.Qq.ascii_plot ~width:56 ~height:14
                 (Stats.Qq.points ~shift:(mean xs) ~scale:sd xs))
          in
          plot "one-time randomization" b.one_time;
          plot "re-randomization" b.full)
    [ "astar"; "cactusADM" ]

(* ------------------------------------------------------------------ *)
(* E3: Figure 6 overhead                                               *)
(* ------------------------------------------------------------------ *)

let run_overhead () =
  heading "E3  Overhead of STABILIZER relative to randomized link order (Fig 6)";
  print_endline
    "Paper: median overhead 6.7% with all randomizations; below 40% for all\n\
     benchmarks; gobmk/gcc/perlbench worst (many functions -> stack tables);\n\
     cactusADM dominated by heap randomization (power-of-two rounding waste);\n\
     a few benchmarks run slightly faster with code randomization (branch\n\
     aliasing removal).\n";
  Printf.printf "%-12s | %8s %12s %16s\n" "benchmark" "code" "code.stack"
    "code.heap.stack";
  Printf.printf "%s\n" (String.make 58 '-');
  let all = Lazy.force all_samples in
  let overheads =
    List.map
      (fun b ->
        let base = mean b.base_link in
        let ov xs = 100.0 *. ((mean xs /. base) -. 1.0) in
        let o_code = ov b.code and o_cs = ov b.code_stack and o_full = ov b.full in
        Printf.printf "%-12s | %7.1f%% %11.1f%% %15.1f%%\n" b.prof.W.Profile.name
          o_code o_cs o_full;
        (b.prof.W.Profile.name, o_code, o_full))
      all
  in
  Printf.printf "%s\n" (String.make 58 '-');
  let fulls = List.map (fun (_, _, f) -> f) overheads in
  let med = Stats.Desc.median (Array.of_list fulls) in
  Printf.printf "measured: median %.1f%%, max %.1f%%\n" med
    (List.fold_left max neg_infinity fulls);
  Printf.printf "paper:    median 6.7%%, all below 40%%\n";
  (match List.filter (fun (_, c, _) -> c < 0.0) overheads with
  | [] -> ()
  | faster ->
      Printf.printf "code randomization speedups (paper: astar/hmmer/mcf/namd): %s\n"
        (String.concat ", " (List.map (fun (n, _, _) -> n) faster)))

(* ------------------------------------------------------------------ *)
(* E4: Figure 7 speedups per benchmark                                 *)
(* ------------------------------------------------------------------ *)

let figure7_row b =
  let eval a bb =
    let c = S.Experiment.compare_samples ~alpha a bb in
    (c.S.Experiment.speedup, c.S.Experiment.significant, c.S.Experiment.used_ttest)
  in
  (eval b.o1 b.o2, eval b.o2 b.o3)

let run_optimizations () =
  heading "E4  Impact of optimization levels under STABILIZER (Figure 7)";
  print_endline
    "Paper: 17 of 18 benchmarks show a statistically significant change from\n\
     -O2 vs -O1 (three of them slowdowns); 9 of 18 for -O3 vs -O2 (three\n\
     slowdowns). Speedup > 1 means the higher level is faster; * marks 95%\n\
     significance; t/W marks t-test vs Wilcoxon (used when normality fails).\n";
  Printf.printf "%-12s | %-18s | %-18s\n" "benchmark" "O2 vs O1" "O3 vs O2";
  Printf.printf "%s\n" (String.make 56 '-');
  let sig_o2 = ref 0 and sig_o3 = ref 0 in
  let slow_o2 = ref 0 and slow_o3 = ref 0 in
  List.iter
    (fun b ->
      let (s2, g2, t2), (s3, g3, t3) = figure7_row b in
      if g2 then incr sig_o2;
      if g3 then incr sig_o3;
      if g2 && s2 < 1.0 then incr slow_o2;
      if g3 && s3 < 1.0 then incr slow_o3;
      let cell s g t =
        Printf.sprintf "%6.3fx %s%s" s (if t then "t" else "W") (if g then " *" else "")
      in
      Printf.printf "%-12s | %-18s | %-18s\n" b.prof.W.Profile.name (cell s2 g2 t2)
        (cell s3 g3 t3))
    (Lazy.force all_samples);
  Printf.printf "%s\n" (String.make 56 '-');
  Printf.printf
    "measured: O2 significant for %d/18 (%d slowdowns); O3 for %d/18 (%d slowdowns)\n"
    !sig_o2 !slow_o2 !sig_o3 !slow_o3;
  Printf.printf "paper:    O2 17/18 (3 slowdowns); O3 9/18 (3 slowdowns)\n"

(* ------------------------------------------------------------------ *)
(* E5: §6.1 ANOVA                                                      *)
(* ------------------------------------------------------------------ *)

let run_anova () =
  heading "E5  Suite-wide analysis of variance (paper §6.1)";
  print_endline
    "Paper: one-way within-subjects ANOVA over all benchmarks. O2 vs O1:\n\
     F(1) = 3.235, p = 0.0898 -> significant only at 90%, not 95%. O3 vs O2:\n\
     F(1) = 1.335, p = 0.2534 -> not significant: indistinguishable from noise.\n";
  let all = Lazy.force all_samples in
  let eval label extract =
    let pairs = Array.of_list (List.map extract all) in
    let r = S.Experiment.suite_anova pairs in
    Printf.printf "%-10s %s  eta^2 = %.3f -> %s\n" label (Stats.Anova.to_string r)
      r.Stats.Anova.eta_squared
      (if r.Stats.Anova.p_value < 0.05 then "significant at 95%"
       else if r.Stats.Anova.p_value < 0.10 then "significant only at 90%"
       else "NOT significant");
    r
  in
  let r2 = eval "O2 vs O1:" (fun b -> (b.o1, b.o2)) in
  let r3 = eval "O3 vs O2:" (fun b -> (b.o2, b.o3)) in
  Printf.printf
    "\nshape check: p(O3 vs O2) = %.3f should exceed p(O2 vs O1) = %.3f -> %s\n"
    r3.Stats.Anova.p_value r2.Stats.Anova.p_value
    (if r3.Stats.Anova.p_value > r2.Stats.Anova.p_value then "holds" else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E6: measurement bias                                                *)
(* ------------------------------------------------------------------ *)

let run_bias () =
  heading "E6  Layout-induced measurement bias without STABILIZER (paper §1)";
  print_endline
    "Paper: changing the link order of object files alone can change\n\
     performance by up to 57%; Mytkowicz et al. report up to 300% from\n\
     environment size. Below, the same program under permuted link\n\
     orders and varying environment blocks, unrandomized.\n";
  let p = W.Pathological.program () in
  let cycles_with config seed =
    (S.Runtime.run ~config ~seed p ~args:W.Pathological.default_args)
      .S.Runtime.cycles
  in
  let n_orders = 24 in
  let link =
    List.init n_orders (fun i ->
        cycles_with
          { S.Config.baseline with link_order = S.Config.Random_link }
          (Int64.of_int (i + 1)))
  in
  let mn = List.fold_left min (List.hd link) link in
  let mx = List.fold_left max (List.hd link) link in
  Printf.printf "link orders (%d permutations): min %d, max %d cycles\n" n_orders mn mx;
  Printf.printf "  -> swing %.1f%%  (paper observed up to 57%%)\n"
    (100.0 *. float_of_int (mx - mn) /. float_of_int mn);
  (* The environment effect needs data-cache traffic against the stack:
     use a data-heavy benchmark rather than the code-bound stress one. *)
  let env_p = W.Generate.program (List.nth suite 7 (* hmmer *)) in
  let envs = [ 0; 1040; 2080; 3120; 4160; 5200; 6240; 7280 ] in
  let env_cycles =
    List.map
      (fun e ->
        (S.Runtime.run ~config:{ S.Config.baseline with env_bytes = e } ~seed:1L
           env_p ~args)
          .S.Runtime.cycles)
      envs
  in
  let emn = List.fold_left min (List.hd env_cycles) env_cycles in
  let emx = List.fold_left max (List.hd env_cycles) env_cycles in
  Printf.printf "environment sizes (%d settings):   min %d, max %d cycles\n"
    (List.length envs) emn emx;
  Printf.printf "  -> swing %.1f%%\n"
    (100.0 *. float_of_int (emx - emn) /. float_of_int emn);
  (* And the cure: the same program under STABILIZER, two different
     "builds" (seeds), is statistically indistinguishable. *)
  let a = S.Sample.times ~config:S.Config.stabilizer ~base_seed:100L ~runs:20 ~args:[ 1 ] p in
  let b = S.Sample.times ~config:S.Config.stabilizer ~base_seed:200L ~runs:20 ~args:[ 1 ] p in
  let c = S.Experiment.compare_samples a b in
  Printf.printf "under STABILIZER the bias disappears: %s\n" (S.Experiment.describe c)

(* ------------------------------------------------------------------ *)
(* Table 2: related-work feature matrix                                *)
(* ------------------------------------------------------------------ *)

let run_table2 () =
  heading "Table 2  Prior work in layout randomization";
  let rows =
    [
      ("ASLR / PaX", "-", "base", "base", "no recompilation", false);
      ("Transparent Runtime Rand.", "base", "base", "base", "dynamic", false);
      ("Address Space Layout Perm.", "base", "base", "base", "recompilation", false);
      ("Address Obfuscation", "partial", "yes", "yes", "dynamic", false);
      ("Dynamic Offset Rand.", "partial", "yes", "-", "dynamic", false);
      ("Bhatkar et al.", "yes", "yes", "yes", "recompilation", false);
      ("DieHard", "-", "-", "fine", "dynamic", false);
      ("STABILIZER (this repo)", "fine", "fine", "fine", "recompilation+dynamic", true);
    ]
  in
  Printf.printf "%-28s %-9s %-7s %-7s %-24s %s\n" "system" "code" "stack" "heap"
    "implementation" "re-rand";
  Printf.printf "%s\n" (String.make 84 '-');
  List.iter
    (fun (name, code, stack, heap, impl, rr) ->
      Printf.printf "%-28s %-9s %-7s %-7s %-24s %s\n" name code stack heap impl
        (if rr then "yes" else "no"))
    rows

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let run_ablations () =
  heading "A1  Shuffling parameter N: overhead vs randomness";
  let prof = List.nth suite 0 (* astar *) in
  let p = W.Generate.program prof in
  let base =
    mean
      (S.Sample.times
         ~config:{ S.Config.baseline with link_order = S.Config.Random_link }
         ~base_seed:1L ~runs:(max 5 (runs / 3)) ~args p)
  in
  List.iter
    (fun n ->
      let t =
        mean
          (S.Sample.times
             ~config:{ S.Config.stabilizer with shuffle_n = n }
             ~base_seed:2L ~runs:(max 5 (runs / 3)) ~args p)
      in
      let rand = S.Heap_randomness.shuffled ~n ~seed:1L Stz_alloc.Allocator.Segregated in
      Printf.printf "N = %4d: overhead %5.1f%%, NIST %d/%d on bits %d-%d\n" n
        (100.0 *. ((t /. base) -. 1.0))
        rand.S.Heap_randomness.passed rand.S.Heap_randomness.total
        rand.S.Heap_randomness.lo_bit rand.S.Heap_randomness.hi_bit)
    [ 1; 16; 256; 1024 ];

  heading "A2  Re-randomization interval: normality vs overhead (§4 made quantitative)";
  List.iter
    (fun interval ->
      let config = { S.Config.stabilizer with interval_cycles = interval } in
      let s = S.Sample.collect ~config ~base_seed:3L ~runs:(max 10 runs) ~args p in
      let sw = (Stats.Shapiro.test s.S.Sample.times).Stats.Shapiro.p_value in
      let epochs = s.S.Sample.results.(0).S.Runtime.epochs in
      Printf.printf
        "interval %8d cycles (%3d epochs): overhead %5.1f%%, Shapiro-Wilk p = %.3f\n"
        interval epochs
        (100.0 *. ((mean s.S.Sample.times /. base) -. 1.0))
        sw)
    [ 30_000; 150_000; 600_000; 3_000_000 ];

  heading "A3  Base allocator under the shuffling layer";
  List.iter
    (fun kind ->
      let config = { S.Config.stabilizer with base_allocator = kind } in
      let s = S.Sample.collect ~config ~base_seed:4L ~runs:(max 5 (runs / 3)) ~args p in
      let hs = s.S.Sample.results.(0).S.Runtime.heap_stats in
      Printf.printf "%-12s overhead %5.1f%%, heap reserved/live = %.2f\n"
        (Stz_alloc.Allocator.kind_to_string kind)
        (100.0 *. ((mean s.S.Sample.times /. base) -. 1.0))
        (float_of_int hs.Stz_alloc.Allocator.reserved_bytes
        /. float_of_int (max 1 hs.Stz_alloc.Allocator.live_bytes)))
    [ Stz_alloc.Allocator.Segregated; Stz_alloc.Allocator.Tlsf; Stz_alloc.Allocator.Diehard ];

  heading "A4  Code granularity: function vs basic block (paper §8 future work)";
  List.iter
    (fun (label, granularity) ->
      let config = { S.Config.stabilizer with granularity } in
      let s = S.Sample.collect ~config ~base_seed:5L ~runs:(max 10 runs) ~args p in
      let sw = (Stats.Shapiro.test s.S.Sample.times).Stats.Shapiro.p_value in
      Printf.printf "%-14s overhead %5.1f%%, Shapiro-Wilk p = %.3f, relocations %d\n"
        label
        (100.0 *. ((mean s.S.Sample.times /. base) -. 1.0))
        sw
        s.S.Sample.results.(0).S.Runtime.relocations)
    [
      ("function", Stz_layout.Code_rand.Function_grain);
      ("basic block", Stz_layout.Code_rand.Block_grain);
    ]

(* ------------------------------------------------------------------ *)
(* A6: relocation-table ABI (paper §3.5)                               *)
(* ------------------------------------------------------------------ *)

let run_reloc_styles () =
  heading "A6  Relocation-table ABI: x86-64 adjacent vs PowerPC/x86-32 fixed (§3.5)";
  print_endline
    "Adjacent tables move with every copy and charge one indirection per\n\
     global reference; fixed tables never move and are used for calls only.\n";
  let prof = List.nth suite 7 (* hmmer: global-heavy *) in
  let p = W.Generate.program prof in
  let n = max 8 (runs / 3) in
  let base =
    mean
      (S.Sample.times
         ~config:{ S.Config.baseline with link_order = S.Config.Random_link }
         ~base_seed:1L ~runs:n ~args p)
  in
  List.iter
    (fun (label, reloc_style) ->
      let t =
        mean
          (S.Sample.times
             ~config:{ S.Config.stabilizer with reloc_style }
             ~base_seed:2L ~runs:n ~args p)
      in
      Printf.printf "%-26s overhead %5.1f%%\n" label (100.0 *. ((t /. base) -. 1.0)))
    [
      ("adjacent (x86-64)", Stz_layout.Code_rand.Adjacent_table);
      ("fixed (PowerPC/x86-32)", Stz_layout.Code_rand.Fixed_table);
    ]

(* ------------------------------------------------------------------ *)
(* A5: adaptive re-randomization (paper §8, second part)               *)
(* ------------------------------------------------------------------ *)

let run_adaptive () =
  heading "A5  Adaptive re-randomization (paper §8: escape unlucky layouts)";
  print_endline
    "The paper sketches using performance counters to detect layout-induced\n\
     problems and re-randomize in response. Here: timer-only vs timer+adaptive\n\
     on the layout-sensitive stress program, one-time randomization as the\n\
     worst case. Adaptive mode should cut the worst-case (unlucky-layout)\n\
     runs without raising the median much.\n";
  let p = W.Pathological.program () in
  let n = max 20 runs in
  let sample config =
    S.Sample.collect ~config ~base_seed:42L ~runs:n ~args:[ 1 ] p
  in
  let report label (s : S.Sample.t) =
    let ts = s.S.Sample.times in
    let triggers =
      Array.fold_left (fun a r -> a + r.S.Runtime.adaptive_triggers) 0 s.S.Sample.results
    in
    Printf.printf "%-22s median %.6f s  p95 %.6f s  worst %.6f s  adaptive fires %d\n"
      label (Stats.Desc.median ts) (Stats.Desc.quantile ts 0.95) (Stats.Desc.max ts)
      triggers;
    ts
  in
  let one = report "one-time" (sample S.Config.one_time) in
  let timer = report "timer (500ms-equiv)" (sample S.Config.stabilizer) in
  let adaptive =
    report "timer + adaptive"
      (sample { S.Config.stabilizer with adaptive = true; adaptive_threshold = 1.3 })
  in
  Printf.printf "\nworst-case vs one-time: timer %.1f%%, adaptive %.1f%%\n"
    (100.0 *. (Stats.Desc.max timer /. Stats.Desc.max one -. 1.0))
    (100.0 *. (Stats.Desc.max adaptive /. Stats.Desc.max one -. 1.0))

(* ------------------------------------------------------------------ *)
(* A7: predictor structure vs code granularity (paper §8)              *)
(* ------------------------------------------------------------------ *)

let run_predictor_ablation () =
  heading
    "A7  Branch predictor structure x randomization granularity (paper §8)";
  print_endline
    "§8 argues block-level randomization with branch-sense swapping would\n\
     randomize the history-indexed part of the predictor too. Mispredictions\n\
     per 1k branches under bimodal vs gshare, function vs block granularity:\n";
  let prof = List.nth suite 14 (* sjeng: branchy *) in
  let p = W.Generate.program prof in
  let n = max 6 (runs / 5) in
  List.iter
    (fun (mlabel, kind) ->
      List.iter
        (fun (glabel, granularity) ->
          let mispreds = ref 0 and branches = ref 0 and cycles = ref 0 in
          for i = 1 to n do
            let r =
              S.Runtime.run
                ~machine_factory:(fun () ->
                  Stz_machine.Hierarchy.create ~predictor_kind:kind ())
                ~config:{ S.Config.stabilizer with granularity }
                ~seed:(Int64.of_int i) p ~args
            in
            mispreds :=
              !mispreds + r.S.Runtime.counters.Stz_machine.Hierarchy.branch_mispredictions;
            branches := !branches + r.S.Runtime.counters.Stz_machine.Hierarchy.branches;
            cycles := !cycles + r.S.Runtime.cycles
          done;
          Printf.printf "%-8s / %-12s: %6.1f mispredictions per 1k branches\n"
            mlabel glabel
            (1000.0 *. float_of_int !mispreds /. float_of_int (max 1 !branches)))
        [
          ("function", Stz_layout.Code_rand.Function_grain);
          ("block", Stz_layout.Code_rand.Block_grain);
        ])
    [ ("bimodal", Stz_machine.Branch.Bimodal); ("gshare", Stz_machine.Branch.Gshare 8) ]

(* ------------------------------------------------------------------ *)
(* E7: supervised campaigns under fault injection                      *)
(* ------------------------------------------------------------------ *)

let run_faults () =
  heading "E7 Supervised campaigns under fault injection";
  Printf.printf
    "Per benchmark and fault profile: surviving sample after bounded retry\n\
     and quarantine, censored runs by final class, and whether the min-N\n\
     gate still admits a verdict against a clean campaign of equal size.\n\n";
  let module F = Stz_faults.Fault in
  let profiles = [ ("none", F.none); ("light", F.light); ("heavy", F.heavy) ] in
  let min_n = max 3 (runs / 3) in
  Printf.printf "%-12s %-6s | %9s %7s %7s %7s | %s\n" "benchmark" "faults"
    "completed" "retried" "quarant" "censord" "verdict vs clean";
  List.iter
    (fun prof ->
      let p = W.Generate.program prof in
      let clean =
        S.Driver.campaign ~jobs ~config:S.Config.stabilizer ~opt:Opt.O2
          ~base_seed:1L ~runs ~args p
      in
      List.iter
        (fun (name, profile) ->
          let c =
            S.Driver.campaign ~jobs ~profile ~config:S.Config.stabilizer
              ~opt:Opt.O2 ~base_seed:2L ~runs ~args p
          in
          let s = S.Supervisor.summarize c in
          let verdict =
            S.Experiment.describe_gated (S.Supervisor.verdict ~min_n clean c)
          in
          Printf.printf "%-12s %-6s | %5d/%3d %7d %7d %7d | %s\n"
            prof.W.Profile.name name s.S.Supervisor.completed
            s.S.Supervisor.runs s.S.Supervisor.retried_runs
            s.S.Supervisor.quarantined s.S.Supervisor.censored verdict;
          progress "#%!")
        profiles;
      Printf.printf "\n")
    (match suite with a :: b :: c :: _ -> [ a; b; c ] | s -> s);
  progress "\n%!"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrate itself                    *)
(* ------------------------------------------------------------------ *)

let run_perf () =
  heading "P  Substrate microbenchmarks (Bechamel)";
  let open Bechamel in
  let cache = Stz_machine.Cache.create { Stz_machine.Cache.name = "b"; sets = 64; ways = 2; line_bits = 6 } in
  let addr = ref 0 in
  let cache_test =
    Test.make ~name:"cache.access"
      (Staged.stage (fun () ->
           addr := (!addr + 8191) land 0xFFFFF;
           ignore (Stz_machine.Cache.access cache !addr)))
  in
  let arena = Stz_alloc.Arena.create ~base:0x1000_0000 ~size:(1 lsl 28) in
  let shuffled =
    Stz_alloc.Factory.randomized ~source:(Stz_prng.Source.marsaglia ~seed:1L)
      Stz_alloc.Allocator.Segregated arena
  in
  let malloc_test =
    Test.make ~name:"shuffle.malloc+free"
      (Staged.stage (fun () ->
           let a = shuffled.Stz_alloc.Allocator.malloc 64 in
           shuffled.Stz_alloc.Allocator.free a))
  in
  let tiny =
    W.Generate.program
      { W.Profile.default with W.Profile.iterations = 2; inner_trips = 4; functions = 4; hot_functions = 2 }
  in
  let interp_test =
    Test.make ~name:"runtime.run(tiny)"
      (Staged.stage (fun () ->
           ignore (Stabilizer.Runtime.run ~config:Stabilizer.Config.stabilizer ~seed:1L tiny ~args:[ 1 ])))
  in
  let sw_data = Array.init 30 (fun i -> float_of_int i +. (0.1 *. float_of_int (i mod 7))) in
  let shapiro_test =
    Test.make ~name:"stats.shapiro(n=30)"
      (Staged.stage (fun () -> ignore (Stats.Shapiro.test sw_data)))
  in
  let marsaglia = Stz_prng.Marsaglia.create ~seed:1L in
  let prng_test =
    Test.make ~name:"prng.marsaglia"
      (Staged.stage (fun () -> ignore (Stz_prng.Marsaglia.next marsaglia)))
  in
  let test =
    Test.make_grouped ~name:"substrate"
      [ prng_test; cache_test; malloc_test; shapiro_test; interp_test ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let analysis = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all analysis Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
          Printf.printf "%-36s %12.1f ns/op%s\n" name est
            (match Analyze.OLS.r_square ols with
            | Some r2 -> Printf.sprintf "  (r2 = %.3f)" r2
            | None -> "")
      | Some [] | None -> Printf.printf "%-36s (no estimate)\n" name)
    rows

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe [nist|normality|overhead|optimizations|anova|bias|table2|\
     ablations|reloc|adaptive|predictor|faults|perf|all]"

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Unix.gettimeofday () in
  (match which with
  | "nist" -> run_nist ()
  | "normality" -> run_normality ()
  | "overhead" -> run_overhead ()
  | "optimizations" -> run_optimizations ()
  | "anova" -> run_anova ()
  | "bias" -> run_bias ()
  | "table2" -> run_table2 ()
  | "ablations" -> run_ablations ()
  | "reloc" -> run_reloc_styles ()
  | "predictor" -> run_predictor_ablation ()
  | "adaptive" -> run_adaptive ()
  | "faults" -> run_faults ()
  | "perf" -> run_perf ()
  | "all" ->
      run_nist ();
      run_bias ();
      run_normality ();
      run_overhead ();
      run_optimizations ();
      run_anova ();
      run_table2 ();
      run_ablations ();
      run_reloc_styles ();
      run_adaptive ();
      run_predictor_ablation ();
      run_faults ()
  | _ -> usage ());
  Printf.eprintf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
