type level = O0 | O1 | O2 | O3

let level_to_string = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2" | O3 -> "O3"

let level_of_string = function
  | "O0" | "o0" -> Some O0
  | "O1" | "o1" -> Some O1
  | "O2" | "o2" -> Some O2
  | "O3" | "o3" -> Some O3
  | _ -> None

let map_funcs f p =
  let p = Ir.copy_program p in
  p.Ir.funcs <- Array.map f p.Ir.funcs;
  p

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let fold_block blk =
  let known : (Ir.reg, int) Hashtbl.t = Hashtbl.create 16 in
  let subst = function
    | Ir.Reg r as op ->
        (match Hashtbl.find_opt known r with Some v -> Ir.Imm v | None -> op)
    | Ir.Imm _ as op -> op
  in
  let define d value =
    match value with
    | Some v -> Hashtbl.replace known d v
    | None -> Hashtbl.remove known d
  in
  let fold_instr instr =
    match instr with
    | Ir.Bin (op, d, a, b) -> (
        let a = subst a and b = subst b in
        match (a, b) with
        | Ir.Imm x, Ir.Imm y ->
            let v = Interp.eval_binop op x y in
            define d (Some v);
            Ir.Mov (d, Ir.Imm v)
        | _ ->
            define d None;
            Ir.Bin (op, d, a, b))
    | Ir.Cmp (op, d, a, b) -> (
        let a = subst a and b = subst b in
        match (a, b) with
        | Ir.Imm x, Ir.Imm y ->
            let v = Interp.eval_cmp op x y in
            define d (Some v);
            Ir.Mov (d, Ir.Imm v)
        | _ ->
            define d None;
            Ir.Cmp (op, d, a, b))
    | Ir.Mov (d, a) -> (
        let a = subst a in
        (match a with
        | Ir.Imm v -> define d (Some v)
        | Ir.Reg _ -> define d None);
        Ir.Mov (d, a))
    | Ir.Load (d, b, o) ->
        define d None;
        Ir.Load (d, b, o)
    | Ir.Store (b, o, v) -> Ir.Store (b, o, subst v)
    | Ir.Frame (d, o) ->
        define d None;
        Ir.Frame (d, o)
    | Ir.Global (d, g) ->
        define d None;
        Ir.Global (d, g)
    | Ir.Malloc (d, s) ->
        define d None;
        Ir.Malloc (d, subst s)
    | Ir.Free r -> Ir.Free r
    | Ir.Call { fn; args; dst } ->
        let args = List.map subst args in
        define dst None;
        Ir.Call { fn; args; dst }
    | Ir.Ret v -> Ir.Ret (subst v)
    | Ir.Br b -> Ir.Br b
    | Ir.Brc (c, t, e) -> (
        match subst c with
        | Ir.Imm v -> Ir.Br (if v <> 0 then t else e)
        | Ir.Reg _ as c -> Ir.Brc (c, t, e))
  in
  blk.Ir.instrs <- Array.map fold_instr blk.Ir.instrs

let const_fold p =
  map_funcs
    (fun f ->
      Array.iter fold_block f.Ir.blocks;
      f)
    p

(* ------------------------------------------------------------------ *)
(* Algebraic simplification                                            *)
(* ------------------------------------------------------------------ *)

type planted = Shift_clamp

let planted_bug : planted option ref = ref None

let simplify_instr instr =
  match instr with
  (* Test hook for the fuzzer's acceptance gauntlet: with Shift_clamp
     planted, shift-by-1 is "simplified" to a move — the observable
     symptom of the pre-PR-7 [land 62] clamp, now expressed as a
     miscompile the differential oracles must catch. Listed before the
     legitimate identities so it wins the match when armed. *)
  | Ir.Bin ((Ir.Shl | Ir.Shr), d, x, Ir.Imm 1) when !planted_bug = Some Shift_clamp
    ->
      Ir.Mov (d, x)
  | Ir.Bin (op, d, a, b) -> (
      match (op, a, b) with
      | Ir.Add, x, Ir.Imm 0 | Ir.Add, Ir.Imm 0, x -> Ir.Mov (d, x)
      | Ir.Sub, x, Ir.Imm 0 -> Ir.Mov (d, x)
      | Ir.Mul, x, Ir.Imm 1 | Ir.Mul, Ir.Imm 1, x -> Ir.Mov (d, x)
      | Ir.Mul, _, Ir.Imm 0 | Ir.Mul, Ir.Imm 0, _ -> Ir.Mov (d, Ir.Imm 0)
      | Ir.Div, x, Ir.Imm 1 -> Ir.Mov (d, x)
      | Ir.And, _, Ir.Imm 0 | Ir.And, Ir.Imm 0, _ -> Ir.Mov (d, Ir.Imm 0)
      | Ir.Or, x, Ir.Imm 0 | Ir.Or, Ir.Imm 0, x -> Ir.Mov (d, x)
      | Ir.Xor, x, Ir.Imm 0 | Ir.Xor, Ir.Imm 0, x -> Ir.Mov (d, x)
      | (Ir.Shl | Ir.Shr), x, Ir.Imm 0 -> Ir.Mov (d, x)
      | _ -> instr)
  | _ -> instr

let simplify p =
  map_funcs
    (fun f ->
      Array.iter
        (fun blk -> blk.Ir.instrs <- Array.map simplify_instr blk.Ir.instrs)
        f.Ir.blocks;
      f)
    p

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)
(* ------------------------------------------------------------------ *)

let reads_of instr =
  let of_operand = function Ir.Reg r -> [ r ] | Ir.Imm _ -> [] in
  match instr with
  | Ir.Bin (_, _, a, b) | Ir.Cmp (_, _, a, b) -> of_operand a @ of_operand b
  | Ir.Mov (_, a) -> of_operand a
  | Ir.Load (_, b, _) -> [ b ]
  | Ir.Store (b, _, v) -> b :: of_operand v
  | Ir.Frame _ | Ir.Global _ -> []
  | Ir.Malloc (_, s) -> of_operand s
  | Ir.Free r -> [ r ]
  | Ir.Call { args; _ } -> List.concat_map of_operand args
  | Ir.Ret v -> of_operand v
  | Ir.Br _ -> []
  | Ir.Brc (c, _, _) -> of_operand c

(* The destination of a pure (removable-when-dead) instruction. Calls,
   stores, frees and terminators are never removed. Loads are pure:
   removing a dead load preserves values (it only changes timing, which
   is what optimization is supposed to do). *)
let pure_dst = function
  | Ir.Bin (_, d, _, _)
  | Ir.Cmp (_, d, _, _)
  | Ir.Mov (d, _)
  | Ir.Load (d, _, _)
  | Ir.Frame (d, _)
  | Ir.Global (d, _) ->
      Some d
  | Ir.Store _ | Ir.Malloc _ | Ir.Free _ | Ir.Call _ | Ir.Ret _ | Ir.Br _
  | Ir.Brc _ ->
      None

let dce_func f =
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Array.make (Stdlib.max 1 f.Ir.n_regs) false in
    (* Arguments are observable at entry but only matter if read;
       reads are what we collect. *)
    Array.iter
      (fun blk ->
        Array.iter
          (fun i -> List.iter (fun r -> used.(r) <- true) (reads_of i))
          blk.Ir.instrs)
      f.Ir.blocks;
    Array.iter
      (fun blk ->
        let keep =
          Array.to_list blk.Ir.instrs
          |> List.filter (fun i ->
                 match pure_dst i with
                 | Some d when not used.(d) ->
                     changed := true;
                     false
                 | Some _ | None -> true)
        in
        blk.Ir.instrs <- Array.of_list keep)
      f.Ir.blocks
  done;
  f

let dce p = map_funcs dce_func p

(* ------------------------------------------------------------------ *)
(* Local common subexpression elimination                              *)
(* ------------------------------------------------------------------ *)

type expr_key =
  | Kbin of Ir.binop * Ir.operand * Ir.operand
  | Kcmp of Ir.cmp * Ir.operand * Ir.operand
  | Kframe of int
  | Kglobal of int
  | Kload of Ir.reg * int

let key_mentions r = function
  | Kbin (_, a, b) | Kcmp (_, a, b) -> a = Ir.Reg r || b = Ir.Reg r
  | Kload (base, _) -> base = r
  | Kframe _ | Kglobal _ -> false

let cse_block blk =
  let avail : (expr_key, Ir.reg) Hashtbl.t = Hashtbl.create 16 in
  let invalidate_reg r =
    let dead =
      Hashtbl.fold
        (fun k holder acc ->
          if holder = r || key_mentions r k then k :: acc else acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) dead
  in
  let invalidate_loads () =
    let dead =
      Hashtbl.fold
        (fun k _ acc -> match k with Kload _ -> k :: acc | _ -> acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) dead
  in
  let rewrite instr =
    let try_reuse d key mk =
      match Hashtbl.find_opt avail key with
      | Some holder when holder <> d ->
          invalidate_reg d;
          Ir.Mov (d, Ir.Reg holder)
      | Some _ | None ->
          invalidate_reg d;
          (* A key mentioning its own destination refers to the value d
             held *before* this instruction; it must not be recorded. *)
          if not (key_mentions d key) then Hashtbl.replace avail key d;
          mk ()
    in
    match instr with
    | Ir.Bin (op, d, a, b) ->
        try_reuse d (Kbin (op, a, b)) (fun () -> Ir.Bin (op, d, a, b))
    | Ir.Cmp (op, d, a, b) ->
        try_reuse d (Kcmp (op, a, b)) (fun () -> Ir.Cmp (op, d, a, b))
    | Ir.Frame (d, o) -> try_reuse d (Kframe o) (fun () -> Ir.Frame (d, o))
    | Ir.Global (d, g) -> try_reuse d (Kglobal g) (fun () -> Ir.Global (d, g))
    | Ir.Load (d, b, o) -> try_reuse d (Kload (b, o)) (fun () -> Ir.Load (d, b, o))
    | Ir.Mov (d, a) ->
        invalidate_reg d;
        Ir.Mov (d, a)
    | Ir.Store (b, o, v) ->
        invalidate_loads ();
        Ir.Store (b, o, v)
    | Ir.Malloc (d, s) ->
        invalidate_reg d;
        invalidate_loads ();
        Ir.Malloc (d, s)
    | Ir.Free r ->
        invalidate_loads ();
        Ir.Free r
    | Ir.Call { fn; args; dst } ->
        invalidate_reg dst;
        invalidate_loads ();
        Ir.Call { fn; args; dst }
    | Ir.Ret _ | Ir.Br _ | Ir.Brc _ -> instr
  in
  blk.Ir.instrs <- Array.map rewrite blk.Ir.instrs

let cse_local p =
  map_funcs
    (fun f ->
      Array.iter cse_block f.Ir.blocks;
      f)
    p

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

let default_inline_threshold = 16
let o1_inline_threshold = 10
let o3_inline_threshold = 120

let inlinable p fid threshold =
  let g = p.Ir.funcs.(fid) in
  fid <> p.Ir.entry
  && Array.length g.Ir.blocks = 1
  && Ir.callees g = []
  && Ir.func_instr_count g <= threshold

let inline_leaves ?(threshold = default_inline_threshold) p =
  let p = Ir.copy_program p in
  let funcs =
    Array.map
      (fun f ->
        let extra_frame = ref 0 in
        let next_reg = ref f.Ir.n_regs in
        let expand instr =
          match instr with
          | Ir.Call { fn; args; dst } when inlinable p fn threshold ->
              let g = p.Ir.funcs.(fn) in
              let reg_base = !next_reg in
              next_reg := !next_reg + g.Ir.n_regs;
              extra_frame := Stdlib.max !extra_frame g.Ir.frame_size;
              let map_reg r = reg_base + r in
              let map_operand = function
                | Ir.Reg r -> Ir.Reg (map_reg r)
                | Ir.Imm _ as o -> o
              in
              let arg_moves =
                List.mapi (fun i a -> Ir.Mov (map_reg i, a)) args
              in
              let body =
                Array.to_list g.Ir.blocks.(0).Ir.instrs
                |> List.map (fun gi ->
                       match gi with
                       | Ir.Bin (op, d, a, b) ->
                           Ir.Bin (op, map_reg d, map_operand a, map_operand b)
                       | Ir.Cmp (op, d, a, b) ->
                           Ir.Cmp (op, map_reg d, map_operand a, map_operand b)
                       | Ir.Mov (d, a) -> Ir.Mov (map_reg d, map_operand a)
                       | Ir.Load (d, b, o) -> Ir.Load (map_reg d, map_reg b, o)
                       | Ir.Store (b, o, v) ->
                           Ir.Store (map_reg b, o, map_operand v)
                       | Ir.Frame (d, o) ->
                           (* Callee frame slots live beyond the caller's
                              own frame region. *)
                           Ir.Frame (map_reg d, o + f.Ir.frame_size)
                       | Ir.Global (d, g) -> Ir.Global (map_reg d, g)
                       | Ir.Malloc (d, s) -> Ir.Malloc (map_reg d, map_operand s)
                       | Ir.Free r -> Ir.Free (map_reg r)
                       | Ir.Ret v -> Ir.Mov (dst, map_operand v)
                       | Ir.Call _ | Ir.Br _ | Ir.Brc _ ->
                           (* Excluded by [inlinable]. *)
                           assert false)
              in
              arg_moves @ body
          | other -> [ other ]
        in
        Array.iter
          (fun blk ->
            blk.Ir.instrs <-
              Array.of_list (List.concat_map expand (Array.to_list blk.Ir.instrs)))
          f.Ir.blocks;
        f.Ir.n_regs <- !next_reg;
        { f with Ir.frame_size = f.Ir.frame_size + !extra_frame })
      p.Ir.funcs
  in
  p.Ir.funcs <- funcs;
  p

(* ------------------------------------------------------------------ *)
(* Copy propagation                                                    *)
(* ------------------------------------------------------------------ *)

let copy_propagate_block blk =
  (* copies.(d) = Some s when d currently holds a copy of s. *)
  let copies : (Ir.reg, Ir.reg) Hashtbl.t = Hashtbl.create 16 in
  let invalidate r =
    Hashtbl.remove copies r;
    let stale =
      Hashtbl.fold (fun d s acc -> if s = r then d :: acc else acc) copies []
    in
    List.iter (Hashtbl.remove copies) stale
  in
  let subst_reg r = match Hashtbl.find_opt copies r with Some s -> s | None -> r in
  let subst = function
    | Ir.Reg r -> Ir.Reg (subst_reg r)
    | Ir.Imm _ as op -> op
  in
  let rewrite instr =
    match instr with
    | Ir.Mov (d, Ir.Reg s) ->
        let s = subst_reg s in
        invalidate d;
        if s <> d then Hashtbl.replace copies d s;
        Ir.Mov (d, Ir.Reg s)
    | Ir.Mov (d, a) ->
        invalidate d;
        Ir.Mov (d, a)
    | Ir.Bin (op, d, a, b) ->
        let a = subst a and b = subst b in
        invalidate d;
        Ir.Bin (op, d, a, b)
    | Ir.Cmp (op, d, a, b) ->
        let a = subst a and b = subst b in
        invalidate d;
        Ir.Cmp (op, d, a, b)
    | Ir.Load (d, b, o) ->
        let b = subst_reg b in
        invalidate d;
        Ir.Load (d, b, o)
    | Ir.Store (b, o, v) -> Ir.Store (subst_reg b, o, subst v)
    | Ir.Frame (d, o) ->
        invalidate d;
        Ir.Frame (d, o)
    | Ir.Global (d, g) ->
        invalidate d;
        Ir.Global (d, g)
    | Ir.Malloc (d, sz) ->
        let sz = subst sz in
        invalidate d;
        Ir.Malloc (d, sz)
    | Ir.Free r -> Ir.Free (subst_reg r)
    | Ir.Call { fn; args; dst } ->
        let args = List.map subst args in
        invalidate dst;
        Ir.Call { fn; args; dst }
    | Ir.Ret v -> Ir.Ret (subst v)
    | Ir.Br b -> Ir.Br b
    | Ir.Brc (c, t, e) -> Ir.Brc (subst c, t, e)
  in
  blk.Ir.instrs <- Array.map rewrite blk.Ir.instrs

let copy_propagate p =
  map_funcs
    (fun f ->
      Array.iter copy_propagate_block f.Ir.blocks;
      f)
    p

(* ------------------------------------------------------------------ *)
(* Dead global / function elimination                                  *)
(* ------------------------------------------------------------------ *)

let strip_dead p =
  let p = Ir.copy_program p in
  let n = Array.length p.Ir.funcs in
  let reachable = Array.make n false in
  let rec visit fid =
    if not reachable.(fid) then begin
      reachable.(fid) <- true;
      List.iter visit (Ir.callees p.Ir.funcs.(fid))
    end
  in
  visit p.Ir.entry;
  let fid_map = Array.make n (-1) in
  let next = ref 0 in
  for fid = 0 to n - 1 do
    if reachable.(fid) then begin
      fid_map.(fid) <- !next;
      incr next
    end
  done;
  let live_globals = Hashtbl.create 16 in
  Array.iteri
    (fun fid f ->
      if reachable.(fid) then
        List.iter (fun g -> Hashtbl.replace live_globals g ()) (Ir.referenced_globals f))
    p.Ir.funcs;
  let gn = Array.length p.Ir.globals in
  let gid_map = Array.make gn (-1) in
  let gnext = ref 0 in
  for gid = 0 to gn - 1 do
    if Hashtbl.mem live_globals gid then begin
      gid_map.(gid) <- !gnext;
      incr gnext
    end
  done;
  let remap_instr = function
    | Ir.Call { fn; args; dst } -> Ir.Call { fn = fid_map.(fn); args; dst }
    | Ir.Global (d, g) -> Ir.Global (d, gid_map.(g))
    | other -> other
  in
  let funcs =
    Array.to_list p.Ir.funcs
    |> List.filteri (fun fid _ -> reachable.(fid))
    |> List.map (fun f ->
           Array.iter
             (fun blk -> blk.Ir.instrs <- Array.map remap_instr blk.Ir.instrs)
             f.Ir.blocks;
           { f with Ir.fid = fid_map.(f.Ir.fid) })
    |> Array.of_list
  in
  let globals =
    Array.to_list p.Ir.globals
    |> List.filteri (fun gid _ -> Hashtbl.mem live_globals gid)
    |> List.map (fun g -> { g with Ir.gid = gid_map.(g.Ir.gid) })
    |> Array.of_list
  in
  { Ir.funcs; globals; entry = fid_map.(p.Ir.entry) }

(* ------------------------------------------------------------------ *)
(* Pipelines                                                           *)
(* ------------------------------------------------------------------ *)

let apply level p =
  let passes =
    match level with
    | O0 -> []
    (* Like LLVM, the basic inliner already runs at O1 (tiny callees
       only); O2 adds common subexpression elimination; O3 "increases
       the amount of inlining" and strips dead globals (paper §6). *)
    | O1 ->
        [
          const_fold; simplify;
          inline_leaves ~threshold:o1_inline_threshold;
          const_fold; simplify; dce;
        ]
    | O2 ->
        [
          const_fold; simplify;
          inline_leaves ~threshold:o1_inline_threshold;
          cse_local; const_fold; simplify; dce;
        ]
    | O3 ->
        [
          const_fold; simplify;
          inline_leaves ~threshold:o3_inline_threshold;
          cse_local; const_fold; simplify; dce;
          strip_dead;
        ]
  in
  let out = List.fold_left (fun acc pass -> pass acc) (Ir.copy_program p) passes in
  Validate.check_exn out;
  out
