(** The IR interpreter. It executes a program against a machine model
    through an {!env} of layout callbacks, so the same interpreter
    serves unrandomized runs, STABILIZER runs, and every configuration
    in between — the interpreter itself knows nothing about layout
    policy.

    Semantics notes: memory is a word-granular store private to each
    [run] (loads of untouched words read 0), integer division by zero
    yields 0, and shift amounts are clamped into [0, 62] — wrapped
    through [land 63] like a hardware shifter, then capped at 62 —
    keeping generated programs total. The clamp preserves odd amounts:
    an earlier [land 62] mask silently simulated [x lsl 1] as
    [x lsl 0]. *)

(** Per-invocation view of a function's code placement, captured at
    function entry. If the runtime re-randomizes while the invocation
    is live, the invocation keeps executing at its old addresses — the
    same behaviour as the paper's on-stack functions, which are only
    reclaimed once no return address points into them. *)
type code_view = {
  block_addrs : int array;  (** address of each block's first instruction *)
  branch_flips : bool array;
      (** per-block branch-sense flip (basic-block randomization mode);
          all false at function granularity *)
}

type env = {
  machine : Stz_machine.Hierarchy.t;
  enter_function : fid:int -> code_view;
      (** called on every function entry; the trap point where the
          runtime relocates ped functions and re-randomizes *)
  frame_push : fid:int -> int;  (** returns the new frame's base address *)
  frame_pop : fid:int -> unit;
  global_addr : caller:int -> gid:int -> int;
      (** resolve a global's address; charged through the caller's
          relocation table when code randomization is on *)
  malloc : size:int -> int;
  free : addr:int -> unit;
  call_prologue : caller:int -> callee:int -> unit;
      (** per-call instrumentation cost (stack pad logic, relocation
          table indirection) *)
}

type limits = { max_instructions : int; max_call_depth : int }

val default_limits : limits

(** [limits ()] is {!default_limits} with the given overrides — the
    constructor the fault injector and campaign supervisor use to
    tighten budgets without restating the defaults. *)
val limits : ?max_instructions:int -> ?max_call_depth:int -> unit -> limits

exception Fuel_exhausted
exception Call_depth_exceeded

(** [run env p ~args] executes [p.entry] and returns its return value.
    Cycle counts accumulate in [env.machine]. *)
val run : ?limits:limits -> env -> Ir.program -> args:int list -> int

(** Pure arithmetic semantics, shared with the constant folder. *)
val eval_binop : Ir.binop -> int -> int -> int

val eval_cmp : Ir.cmp -> int -> int -> int

(** A plain environment with no randomization: code laid out by
    [code_addrs] (one base per function, blocks consecutive), stack
    frames contiguous from [stack_base] growing down, globals at
    [global_addrs], and the given allocator. Useful for tests; the
    layout library builds richer environments. *)
val plain_env :
  machine:Stz_machine.Hierarchy.t ->
  code_addrs:int array ->
  global_addrs:int array ->
  stack_base:int ->
  malloc:(int -> int) ->
  free:(int -> unit) ->
  Ir.program ->
  env
