module Hierarchy = Stz_machine.Hierarchy

type code_view = { block_addrs : int array; branch_flips : bool array }

type env = {
  machine : Hierarchy.t;
  enter_function : fid:int -> code_view;
  frame_push : fid:int -> int;
  frame_pop : fid:int -> unit;
  global_addr : caller:int -> gid:int -> int;
  malloc : size:int -> int;
  free : addr:int -> unit;
  call_prologue : caller:int -> callee:int -> unit;
}

type limits = { max_instructions : int; max_call_depth : int }

let default_limits = { max_instructions = 200_000_000; max_call_depth = 10_000 }

let limits ?(max_instructions = default_limits.max_instructions)
    ?(max_call_depth = default_limits.max_call_depth) () =
  { max_instructions; max_call_depth }

exception Fuel_exhausted
exception Call_depth_exceeded

type state = { mutable fuel : int; limits : limits }

let eval_binop op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then 0 else a / b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  (* Shift amounts clamp into [0, 62]: [land 63] keeps the encodable
     range (negative amounts wrap like hardware shifters), then 63
     clamps to 62 so [lsl]/[asr] stay in OCaml's defined range. The
     clamp must not drop low bits — an earlier [land 62] silently
     turned every odd shift (x lsl 1!) into the next-lower even one. *)
  | Ir.Shl -> a lsl (Stdlib.min (b land 63) 62)
  | Ir.Shr -> a asr (Stdlib.min (b land 63) 62)

let eval_cmp op a b =
  let r =
    match op with
    | Ir.Eq -> a = b
    | Ir.Ne -> a <> b
    | Ir.Lt -> a < b
    | Ir.Le -> a <= b
    | Ir.Gt -> a > b
    | Ir.Ge -> a >= b
  in
  if r then 1 else 0

(* Pre-decoded instruction forms: operand shapes ([Reg] vs [Imm]) are
   resolved once per function per run instead of re-matched on every
   executed instruction, mul/div surcharge cycles are baked in at
   decode time, and all-immediate ALU ops are folded to their constant
   result (the cycle charge stays — the simulated machine still
   executes them). Decoding is purely shape-driven: it never looks at
   addresses, so one decode per function is valid across mid-run
   re-randomizations, which only move code and flip branches. *)
type dinstr =
  | DBinRR of Ir.binop * int * int * int * int  (* op, d, ra, rb, extra *)
  | DBinRI of Ir.binop * int * int * int * int  (* op, d, ra, imm, extra *)
  | DBinIR of Ir.binop * int * int * int * int  (* op, d, imm, rb, extra *)
  | DBinK of int * int * int (* d, folded result, extra cycles *)
  | DCmpRR of Ir.cmp * int * int * int
  | DCmpRI of Ir.cmp * int * int * int
  | DCmpIR of Ir.cmp * int * int * int
  | DCmpK of int * int (* d, folded result *)
  | DMovR of int * int
  | DMovI of int * int
  | DLoad of int * int * int
  | DStoreR of int * int * int
  | DStoreI of int * int * int
  | DFrame of int * int
  | DGlobal of int * int
  | DMallocR of int * int
  | DMallocK of int * int (* d, clamped size *)
  | DFree of int
  | DCall of int * Ir.operand array * int
  | DRetR of int
  | DRetI of int
  | DBr of int
  | DBrcR of int * int * int
  | DBrcK of bool * int * int (* constant condition; predictor still runs *)

let decode_instr cost instr =
  match instr with
  | Ir.Bin (op, d, a, b) ->
      let extra =
        match op with
        | Ir.Mul -> cost.Stz_machine.Cost.mul
        | Ir.Div -> cost.Stz_machine.Cost.div
        | _ -> 0
      in
      (match (a, b) with
      | Ir.Reg ra, Ir.Reg rb -> DBinRR (op, d, ra, rb, extra)
      | Ir.Reg ra, Ir.Imm ib -> DBinRI (op, d, ra, ib, extra)
      | Ir.Imm ia, Ir.Reg rb -> DBinIR (op, d, ia, rb, extra)
      | Ir.Imm ia, Ir.Imm ib -> DBinK (d, eval_binop op ia ib, extra))
  | Ir.Cmp (op, d, a, b) -> (
      match (a, b) with
      | Ir.Reg ra, Ir.Reg rb -> DCmpRR (op, d, ra, rb)
      | Ir.Reg ra, Ir.Imm ib -> DCmpRI (op, d, ra, ib)
      | Ir.Imm ia, Ir.Reg rb -> DCmpIR (op, d, ia, rb)
      | Ir.Imm ia, Ir.Imm ib -> DCmpK (d, eval_cmp op ia ib))
  | Ir.Mov (d, Ir.Reg r) -> DMovR (d, r)
  | Ir.Mov (d, Ir.Imm i) -> DMovI (d, i)
  | Ir.Load (d, b, o) -> DLoad (d, b, o)
  | Ir.Store (b, o, Ir.Reg r) -> DStoreR (b, o, r)
  | Ir.Store (b, o, Ir.Imm i) -> DStoreI (b, o, i)
  | Ir.Frame (d, o) -> DFrame (d, o)
  | Ir.Global (d, g) -> DGlobal (d, g)
  | Ir.Malloc (d, Ir.Reg r) -> DMallocR (d, r)
  | Ir.Malloc (d, Ir.Imm i) -> DMallocK (d, Stdlib.max 1 (i land 0xFFFFFF))
  | Ir.Free r -> DFree r
  | Ir.Call { fn; args; dst } -> DCall (fn, Array.of_list args, dst)
  | Ir.Ret (Ir.Reg r) -> DRetR r
  | Ir.Ret (Ir.Imm i) -> DRetI i
  | Ir.Br b -> DBr b
  | Ir.Brc (Ir.Reg c, t, e) -> DBrcR (c, t, e)
  | Ir.Brc (Ir.Imm c, t, e) -> DBrcK (c <> 0, t, e)

(* Simulated memory, word-granular ([addr lsr 3], exactly the key the
   former hashtable used, so negative addresses land on the same
   words). A paged flat store with a last-page memo replaces per-access
   hashing: loads see exactly what stores put there (0 when untouched),
   so program *values* are identical across layouts — layout affects
   timing only, the paper's premise. *)
let page_word_bits = 12
let page_words = 1 lsl page_word_bits
let page_mask = page_words - 1

type mem = {
  pages : (int, int array) Hashtbl.t;
  mutable memo_idx : int;
  mutable memo_page : int array;
}

let mem_create () =
  { pages = Hashtbl.create 64; memo_idx = -1; memo_page = [||] }

let mem_page m word =
  let idx = word lsr page_word_bits in
  if idx = m.memo_idx then m.memo_page
  else begin
    let page =
      match Hashtbl.find_opt m.pages idx with
      | Some pg -> pg
      | None ->
          let pg = Array.make page_words 0 in
          Hashtbl.add m.pages idx pg;
          pg
    in
    m.memo_idx <- idx;
    m.memo_page <- page;
    page
  end

let run ?(limits = default_limits) env p ~args =
  let state = { fuel = limits.max_instructions; limits } in
  let machine = env.machine in
  let cost = Hierarchy.cost machine in
  let base_cycles = cost.Stz_machine.Cost.base_cycles in
  let fetch_shift = Hierarchy.fetch_shift machine in
  let fetch_line = Hierarchy.fetch_line_memo machine in
  (* Retired instructions and their base/surcharge cycles accumulate
     here and are committed in one [charge_batch] per basic block (or
     earlier). The flush discipline is what keeps counters bit-exact:
     pending work is flushed before every [env] callback (they may read
     cycles — re-randomization, profiling — or raise — injected OOM)
     and before [Fuel_exhausted], so every external observation of the
     machine sees exactly the totals per-instruction charging would
     have produced. Cache/TLB/branch penalties still post immediately;
     order within a block commutes because counters are pure sums. *)
  let pending_instrs = ref 0 in
  let pending_cycles = ref 0 in
  let flush_pending () =
    if !pending_instrs <> 0 then begin
      Hierarchy.charge_batch machine ~instructions:!pending_instrs
        ~cycles:!pending_cycles;
      pending_instrs := 0;
      pending_cycles := 0
    end
  in
  let memory = mem_create () in
  let decoded = Array.make (Array.length p.Ir.funcs) [||] in
  let decode fid =
    let db = decoded.(fid) in
    if Array.length db > 0 then db
    else begin
      let f = p.Ir.funcs.(fid) in
      let db =
        Array.map (fun b -> Array.map (decode_instr cost) b.Ir.instrs) f.Ir.blocks
      in
      decoded.(fid) <- db;
      db
    end
  in
  let rec exec_func depth fid args =
    if depth > state.limits.max_call_depth then begin
      flush_pending ();
      raise Call_depth_exceeded
    end;
    let view = env.enter_function ~fid in
    let f = p.Ir.funcs.(fid) in
    let dblocks = decode fid in
    let regs = Array.make (Stdlib.max 1 f.Ir.n_regs) 0 in
    List.iteri (fun i a -> if i < f.Ir.n_args then regs.(i) <- a) args;
    let frame = env.frame_push ~fid in
    let rec run_block bid =
      let base = view.block_addrs.(bid) in
      let flip = view.branch_flips.(bid) in
      let dinstrs = dblocks.(bid) in
      let rec step ii =
        if state.fuel <= 0 then begin
          flush_pending ();
          raise Fuel_exhausted
        end;
        state.fuel <- state.fuel - 1;
        let pc = base + (ii * Ir.instr_bytes) in
        if pc lsr fetch_shift <> !fetch_line then
          Hierarchy.fetch_cross machine pc;
        pending_instrs := !pending_instrs + 1;
        pending_cycles := !pending_cycles + base_cycles;
        match dinstrs.(ii) with
        | DBinRR (op, d, ra, rb, extra) ->
            pending_cycles := !pending_cycles + extra;
            regs.(d) <- eval_binop op regs.(ra) regs.(rb);
            step (ii + 1)
        | DBinRI (op, d, ra, ib, extra) ->
            pending_cycles := !pending_cycles + extra;
            regs.(d) <- eval_binop op regs.(ra) ib;
            step (ii + 1)
        | DBinIR (op, d, ia, rb, extra) ->
            pending_cycles := !pending_cycles + extra;
            regs.(d) <- eval_binop op ia regs.(rb);
            step (ii + 1)
        | DBinK (d, v, extra) ->
            pending_cycles := !pending_cycles + extra;
            regs.(d) <- v;
            step (ii + 1)
        | DCmpRR (op, d, ra, rb) ->
            regs.(d) <- eval_cmp op regs.(ra) regs.(rb);
            step (ii + 1)
        | DCmpRI (op, d, ra, ib) ->
            regs.(d) <- eval_cmp op regs.(ra) ib;
            step (ii + 1)
        | DCmpIR (op, d, ia, rb) ->
            regs.(d) <- eval_cmp op ia regs.(rb);
            step (ii + 1)
        | DCmpK (d, v) ->
            regs.(d) <- v;
            step (ii + 1)
        | DMovR (d, r) ->
            regs.(d) <- regs.(r);
            step (ii + 1)
        | DMovI (d, i) ->
            regs.(d) <- i;
            step (ii + 1)
        | DLoad (d, b, o) ->
            let addr = regs.(b) + o in
            ignore (Hierarchy.data machine addr);
            let word = addr lsr 3 in
            regs.(d) <- (mem_page memory word).(word land page_mask);
            step (ii + 1)
        | DStoreR (b, o, r) ->
            let addr = regs.(b) + o in
            ignore (Hierarchy.data machine addr);
            let word = addr lsr 3 in
            (mem_page memory word).(word land page_mask) <- regs.(r);
            step (ii + 1)
        | DStoreI (b, o, i) ->
            let addr = regs.(b) + o in
            ignore (Hierarchy.data machine addr);
            let word = addr lsr 3 in
            (mem_page memory word).(word land page_mask) <- i;
            step (ii + 1)
        | DFrame (d, o) ->
            regs.(d) <- frame + o;
            step (ii + 1)
        | DGlobal (d, g) ->
            flush_pending ();
            regs.(d) <- env.global_addr ~caller:fid ~gid:g;
            step (ii + 1)
        | DMallocR (d, r) ->
            let size = Stdlib.max 1 (regs.(r) land 0xFFFFFF) in
            flush_pending ();
            regs.(d) <- env.malloc ~size;
            step (ii + 1)
        | DMallocK (d, size) ->
            flush_pending ();
            regs.(d) <- env.malloc ~size;
            step (ii + 1)
        | DFree r ->
            flush_pending ();
            env.free ~addr:regs.(r);
            step (ii + 1)
        | DCall (fn, dargs, dst) ->
            let argvals =
              Array.fold_right
                (fun a acc ->
                  (match a with Ir.Reg r -> regs.(r) | Ir.Imm i -> i) :: acc)
                dargs []
            in
            flush_pending ();
            env.call_prologue ~caller:fid ~callee:fn;
            regs.(dst) <- exec_func (depth + 1) fn argvals;
            step (ii + 1)
        | DRetR r -> regs.(r)
        | DRetI i -> i
        | DBr b -> run_block b
        | DBrcR (c, t, e) ->
            let taken = regs.(c) <> 0 in
            let outcome = if flip then not taken else taken in
            ignore (Hierarchy.branch machine ~pc ~taken:outcome);
            run_block (if taken then t else e)
        | DBrcK (taken, t, e) ->
            let outcome = if flip then not taken else taken in
            ignore (Hierarchy.branch machine ~pc ~taken:outcome);
            run_block (if taken then t else e)
      in
      step 0
    in
    let result = run_block 0 in
    flush_pending ();
    env.frame_pop ~fid;
    result
  in
  let result = exec_func 0 p.Ir.entry args in
  flush_pending ();
  result

let plain_env ~machine ~code_addrs ~global_addrs ~stack_base ~malloc ~free p =
  let views =
    Array.mapi
      (fun fid f ->
        let offsets = Ir.block_offsets f in
        {
          block_addrs = Array.map (fun o -> code_addrs.(fid) + o) offsets;
          branch_flips = Array.make (Array.length f.Ir.blocks) false;
        })
      p.Ir.funcs
  in
  let sp = ref stack_base in
  {
    machine;
    enter_function = (fun ~fid -> views.(fid));
    frame_push =
      (fun ~fid ->
        let f = p.Ir.funcs.(fid) in
        sp := !sp - f.Ir.frame_size;
        ignore (Hierarchy.data machine !sp);
        !sp);
    frame_pop =
      (fun ~fid ->
        let f = p.Ir.funcs.(fid) in
        sp := !sp + f.Ir.frame_size);
    global_addr = (fun ~caller:_ ~gid -> global_addrs.(gid));
    malloc = (fun ~size -> malloc size);
    free = (fun ~addr -> free addr);
    call_prologue = (fun ~caller:_ ~callee:_ -> Hierarchy.charge machine 2);
  }
