module Hierarchy = Stz_machine.Hierarchy

type code_view = { block_addrs : int array; branch_flips : bool array }

type env = {
  machine : Hierarchy.t;
  enter_function : fid:int -> code_view;
  frame_push : fid:int -> int;
  frame_pop : fid:int -> unit;
  global_addr : caller:int -> gid:int -> int;
  malloc : size:int -> int;
  free : addr:int -> unit;
  call_prologue : caller:int -> callee:int -> unit;
}

type limits = { max_instructions : int; max_call_depth : int }

let default_limits = { max_instructions = 200_000_000; max_call_depth = 10_000 }

let limits ?(max_instructions = default_limits.max_instructions)
    ?(max_call_depth = default_limits.max_call_depth) () =
  { max_instructions; max_call_depth }

exception Fuel_exhausted
exception Call_depth_exceeded

type state = { mutable fuel : int; limits : limits }

let eval_binop op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then 0 else a / b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl -> a lsl (b land 62)
  | Ir.Shr -> a asr (b land 62)

let eval_cmp op a b =
  let r =
    match op with
    | Ir.Eq -> a = b
    | Ir.Ne -> a <> b
    | Ir.Lt -> a < b
    | Ir.Le -> a <= b
    | Ir.Gt -> a > b
    | Ir.Ge -> a >= b
  in
  if r then 1 else 0

let run ?(limits = default_limits) env p ~args =
  let state = { fuel = limits.max_instructions; limits } in
  let cost = Hierarchy.cost env.machine in
  (* Simulated memory, word-granular. Loads see exactly what stores put
     there (0 when untouched), so program *values* are identical across
     layouts — layout affects timing only, the paper's premise. *)
  let memory : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec exec_func depth fid args =
    if depth > state.limits.max_call_depth then raise Call_depth_exceeded;
    let view = env.enter_function ~fid in
    let f = p.Ir.funcs.(fid) in
    let regs = Array.make (Stdlib.max 1 f.Ir.n_regs) 0 in
    List.iteri (fun i a -> if i < f.Ir.n_args then regs.(i) <- a) args;
    let frame = env.frame_push ~fid in
    let value = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
    let rec run_block bid =
      let base = view.block_addrs.(bid) in
      let flip = view.branch_flips.(bid) in
      let instrs = f.Ir.blocks.(bid).Ir.instrs in
      let rec step ii =
        if state.fuel <= 0 then raise Fuel_exhausted;
        state.fuel <- state.fuel - 1;
        let pc = base + (ii * Ir.instr_bytes) in
        ignore (Hierarchy.fetch env.machine pc);
        match instrs.(ii) with
        | Ir.Bin (op, d, a, b) ->
            (match op with
            | Ir.Mul -> Hierarchy.charge env.machine cost.Stz_machine.Cost.mul
            | Ir.Div -> Hierarchy.charge env.machine cost.Stz_machine.Cost.div
            | _ -> ());
            regs.(d) <- eval_binop op (value a) (value b);
            step (ii + 1)
        | Ir.Cmp (op, d, a, b) ->
            regs.(d) <- eval_cmp op (value a) (value b);
            step (ii + 1)
        | Ir.Mov (d, a) ->
            regs.(d) <- value a;
            step (ii + 1)
        | Ir.Load (d, b, o) ->
            let addr = regs.(b) + o in
            ignore (Hierarchy.data env.machine addr);
            regs.(d) <-
              (match Hashtbl.find_opt memory (addr lsr 3) with
              | Some v -> v
              | None -> 0);
            step (ii + 1)
        | Ir.Store (b, o, v) ->
            let addr = regs.(b) + o in
            ignore (Hierarchy.data env.machine addr);
            Hashtbl.replace memory (addr lsr 3) (value v);
            step (ii + 1)
        | Ir.Frame (d, o) ->
            regs.(d) <- frame + o;
            step (ii + 1)
        | Ir.Global (d, g) ->
            regs.(d) <- env.global_addr ~caller:fid ~gid:g;
            step (ii + 1)
        | Ir.Malloc (d, s) ->
            let size = Stdlib.max 1 (value s land 0xFFFFFF) in
            regs.(d) <- env.malloc ~size;
            step (ii + 1)
        | Ir.Free r ->
            env.free ~addr:regs.(r);
            step (ii + 1)
        | Ir.Call { fn; args; dst } ->
            let argvals = List.map value args in
            env.call_prologue ~caller:fid ~callee:fn;
            regs.(dst) <- exec_func (depth + 1) fn argvals;
            step (ii + 1)
        | Ir.Ret v -> value v
        | Ir.Br b -> run_block b
        | Ir.Brc (c, t, e) ->
            let taken = value c <> 0 in
            let outcome = if flip then not taken else taken in
            ignore (Hierarchy.branch env.machine ~pc ~taken:outcome);
            run_block (if taken then t else e)
      in
      step 0
    in
    let result = run_block 0 in
    env.frame_pop ~fid;
    result
  in
  exec_func 0 p.Ir.entry args

let plain_env ~machine ~code_addrs ~global_addrs ~stack_base ~malloc ~free p =
  let views =
    Array.mapi
      (fun fid f ->
        let offsets = Ir.block_offsets f in
        {
          block_addrs = Array.map (fun o -> code_addrs.(fid) + o) offsets;
          branch_flips = Array.make (Array.length f.Ir.blocks) false;
        })
      p.Ir.funcs
  in
  let sp = ref stack_base in
  {
    machine;
    enter_function = (fun ~fid -> views.(fid));
    frame_push =
      (fun ~fid ->
        let f = p.Ir.funcs.(fid) in
        sp := !sp - f.Ir.frame_size;
        ignore (Hierarchy.data machine !sp);
        !sp);
    frame_pop =
      (fun ~fid ->
        let f = p.Ir.funcs.(fid) in
        sp := !sp + f.Ir.frame_size);
    global_addr = (fun ~caller:_ ~gid -> global_addrs.(gid));
    malloc = (fun ~size -> malloc size);
    free = (fun ~addr -> free addr);
    call_prologue = (fun ~caller:_ ~callee:_ -> Hierarchy.charge machine 2);
  }
