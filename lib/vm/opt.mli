(** Optimization passes and the -O0/-O1/-O2/-O3 pipelines, standing in
    for LLVM's optimization levels in the paper's §6 evaluation:

    - O1: block-local constant folding, algebraic simplification, dead
      code elimination.
    - O2: O1 plus block-level common subexpression elimination (the
      paper: "-O2 optimizations include basic-block level common
      subexpression elimination") and inlining of small leaf functions.
    - O3: O2 with a higher inlining threshold plus dead global/function
      elimination (the paper: "-O3 adds argument promotion, global dead
      code elimination, increases the amount of inlining..."). Because
      O2 already captured the hot small callees, O3's *true* effect is
      modest — while its layout perturbation (stripped functions, fatter
      hot code) remains large, which is exactly the confound the paper's
      evaluation untangles.

    All passes return fresh programs; inputs are never mutated, and the
    output of every pipeline revalidates. *)

type level = O0 | O1 | O2 | O3

val level_to_string : level -> string
val level_of_string : string -> level option

(** Apply the pipeline for a level. *)
val apply : level -> Ir.program -> Ir.program

(** Individual passes, exposed for tests and ablations. Each returns a
    structurally fresh program. *)

val const_fold : Ir.program -> Ir.program

(** Algebraic identities: x+0, x*1, x*0, x|0, x^0, shifts by 0, x/1. *)
val simplify : Ir.program -> Ir.program

(** Plantable optimizer bugs, used by [szc fuzz --plant] and the fuzzer
    acceptance tests to prove the differential oracles catch a real
    historical failure class. [Shift_clamp] re-introduces the pre-PR-7
    shift-clamp symptom inside {!simplify}: shift-by-1 collapses to a
    move ([land 62] dropped the low bit of the amount). Off ([None]) in
    every normal build; forked fuzz workers inherit the setting. *)
type planted = Shift_clamp

val planted_bug : planted option ref

(** Remove pure instructions whose destination is never read
    (function-level fixpoint). *)
val dce : Ir.program -> Ir.program

(** Block-local common subexpression elimination, including redundant
    loads (invalidated by stores and calls). *)
val cse_local : Ir.program -> Ir.program

(** Inline single-block leaf callees up to [threshold] instructions
    (default 16). *)
val inline_leaves : ?threshold:int -> Ir.program -> Ir.program

(** Remove functions unreachable from the entry point and globals no
    remaining function references, renumbering densely. *)
val strip_dead : Ir.program -> Ir.program

(** Block-local copy propagation: uses of a register holding a pure
    copy ([Mov (d, Reg s)]) are rewritten to the source while the copy
    is live; dead moves are then removable by {!dce}. Not part of the
    default pipelines (kept separate so calibrated O-level deltas stay
    meaningful) but available for custom drivers. *)
val copy_propagate : Ir.program -> Ir.program
