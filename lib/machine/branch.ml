type kind = Bimodal | Gshare of int

type attrib_view = {
  funcs : int;
  slot_accesses : int array;
  aliases : int array;  (** funcs*funcs, [prev*funcs + curr] *)
  alias_mispredictions : int array;
}

(* Off-by-default alias recorder; see cache.mli — same plane-separation
   contract: never feeds back into predictions or counters. *)
type attrib = {
  a_funcs : int;
  mutable owner : int;
  slot_owner : int array;  (** last function to train each entry, -1 *)
  a_slot_accesses : int array;
  a_aliases : int array;
  a_alias_mispredictions : int array;
}

type t = {
  counters : Bytes.t;  (** 2-bit saturating counters, one byte each *)
  mask : int;
  kind : kind;
  mutable history : int;  (** global branch history (Gshare) *)
  mutable branches : int;
  mutable mispredictions : int;
  mutable attrib : attrib option;
}

let create ?(entries = 4096) ?(kind = Bimodal) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Branch.create: entries must be a power of two";
  (match kind with
  | Gshare bits when bits < 1 || bits > 30 ->
      invalid_arg "Branch.create: history bits must be in [1,30]"
  | Gshare _ | Bimodal -> ());
  {
    (* Weakly taken initial state. *)
    counters = Bytes.make entries '\002';
    mask = entries - 1;
    kind;
    history = 0;
    branches = 0;
    mispredictions = 0;
    attrib = None;
  }

let arm_attrib t ~funcs =
  if funcs <= 0 then invalid_arg "Branch.arm_attrib: funcs must be positive";
  let entries = t.mask + 1 in
  t.attrib <-
    Some
      {
        a_funcs = funcs;
        owner = -1;
        slot_owner = Array.make entries (-1);
        a_slot_accesses = Array.make entries 0;
        a_aliases = Array.make (funcs * funcs) 0;
        a_alias_mispredictions = Array.make (funcs * funcs) 0;
      }

let attrib_armed t = t.attrib <> None

let set_attrib_owner t fid =
  match t.attrib with None -> () | Some a -> a.owner <- fid

let attrib_view t =
  match t.attrib with
  | None -> None
  | Some a ->
      Some
        {
          funcs = a.a_funcs;
          slot_accesses = Array.copy a.a_slot_accesses;
          aliases = Array.copy a.a_aliases;
          alias_mispredictions = Array.copy a.a_alias_mispredictions;
        }

(* Instructions are 4 bytes in the simulated ISA; drop the offset bits. *)
let index_of t pc =
  match t.kind with
  | Bimodal -> (pc lsr 2) land t.mask
  | Gshare bits ->
      ((pc lsr 2) lxor (t.history land ((1 lsl bits) - 1))) land t.mask

let predict_and_update t ~pc ~taken =
  t.branches <- t.branches + 1;
  let i = index_of t pc in
  let counter = Char.code (Bytes.get t.counters i) in
  let predicted_taken = counter >= 2 in
  let correct = predicted_taken = taken in
  if not correct then t.mispredictions <- t.mispredictions + 1;
  (match t.attrib with
  | None -> ()
  | Some a ->
      a.a_slot_accesses.(i) <- a.a_slot_accesses.(i) + 1;
      let prev = a.slot_owner.(i) in
      if prev >= 0 && a.owner >= 0 && prev <> a.owner then begin
        let k = (prev * a.a_funcs) + a.owner in
        a.a_aliases.(k) <- a.a_aliases.(k) + 1;
        if not correct then
          a.a_alias_mispredictions.(k) <- a.a_alias_mispredictions.(k) + 1
      end;
      if a.owner >= 0 then a.slot_owner.(i) <- a.owner);
  let counter' =
    if taken then Stdlib.min 3 (counter + 1) else Stdlib.max 0 (counter - 1)
  in
  Bytes.set t.counters i (Char.chr counter');
  (match t.kind with
  | Gshare _ -> t.history <- (t.history lsl 1) lor (if taken then 1 else 0)
  | Bimodal -> ());
  correct

let branches t = t.branches
let mispredictions t = t.mispredictions

let reset t =
  Bytes.fill t.counters 0 (Bytes.length t.counters) '\002';
  t.history <- 0;
  t.branches <- 0;
  t.mispredictions <- 0;
  match t.attrib with
  | None -> ()
  | Some a ->
      a.owner <- -1;
      Array.fill a.slot_owner 0 (Array.length a.slot_owner) (-1);
      Array.fill a.a_slot_accesses 0 (Array.length a.a_slot_accesses) 0;
      Array.fill a.a_aliases 0 (Array.length a.a_aliases) 0;
      Array.fill a.a_alias_mispredictions 0
        (Array.length a.a_alias_mispredictions)
        0
