(** The full memory hierarchy of the simulated machine: split L1
    instruction/data caches, a unified L2 and L3, instruction and data
    TLBs, and a branch predictor, combined under one cycle cost model.
    This is the substrate on which program layout manifests as time. *)

type t

type counters = {
  cycles : int;
  instructions : int;
  l1i_misses : int;
  l1d_misses : int;
  l2_misses : int;
  l3_misses : int;
  itlb_misses : int;
  dtlb_misses : int;
  branches : int;
  branch_mispredictions : int;
}

(** [create ()] builds the default Core-i3-550-like machine; every
    structure can be overridden for ablations. *)
val create :
  ?cost:Cost.t ->
  ?l1i:Cache.config ->
  ?l1d:Cache.config ->
  ?l2:Cache.config ->
  ?l3:Cache.config ->
  ?itlb:Tlb.config ->
  ?dtlb:Tlb.config ->
  ?predictor_entries:int ->
  ?predictor_kind:Branch.kind ->
  unit ->
  t

(** [fetch t pc] charges an instruction fetch at code address [pc]:
    base cost plus I-side cache/TLB penalties; returns cycles. The
    caller is expected to call this once per executed instruction; the
    hierarchy internally filters same-line back-to-back fetches so
    straight-line code costs one L1I access per line, as on hardware. *)
val fetch : t -> int -> int

(** Hot-path decomposition of {!fetch}, used by the interpreter to
    batch base-cycle charging per basic block while keeping every
    counter bit-identical to per-instruction {!fetch} calls: the caller
    compares [pc lsr fetch_shift] against [!(fetch_line_memo t)] inline
    and only calls {!fetch_cross} on a line change (I-TLB + L1I + lower
    levels, penalty cycles charged, memo updated); base cycles and
    retired-instruction counts are then added in bulk with
    {!charge_batch}. *)
val fetch_shift : t -> int

val fetch_line_memo : t -> int ref
val fetch_cross : t -> int -> unit

(** [charge_batch t ~instructions ~cycles] retires [instructions] and
    charges [cycles] in one mutation — the bulk half of the decomposed
    fetch path. *)
val charge_batch : t -> instructions:int -> cycles:int -> unit

(** [data t addr] charges a load/store at [addr]; returns cycles.
    Back-to-back accesses within one L1D line take a memoized fast
    path (mirroring the fetch-line memo) whenever that is invisible to
    the model: a repeated hit must cost 0 cycles ([l1_hit = 0]) and a
    line must fit in a page. All counters are bit-identical either
    way. *)
val data : t -> int -> int

(** [branch t ~pc ~taken] consults and trains the predictor; returns
    penalty cycles (0 when predicted correctly). *)
val branch : t -> pc:int -> taken:bool -> int

(** Extra cycles charged explicitly (e.g. mul/div, runtime costs). *)
val charge : t -> int -> unit

(** Count one retired instruction (statistics only). *)
val retire : t -> unit

val cycles : t -> int
val counters : t -> counters

(** Counter arithmetic, for snapshot/delta attribution (profiling,
    telemetry rollups). *)
val counters_zero : counters

val counters_add : counters -> counters -> counters
val counters_sub : counters -> counters -> counters

(** Field names and values in declaration order, for uniform export. *)
val counters_fields : counters -> (string * int) list

(** Inverse of {!counters_fields}: unknown keys ignored, missing keys
    zero — lenient on purpose for checkpoint-format evolution. *)
val counters_of_fields : (string * int) list -> counters

(** Cost model in effect. *)
val cost : t -> Cost.t

(** Invalidate all cached state (a context-switch-like wipe) without
    clearing counters. *)
val flush : t -> unit

(** Fresh machine state and counters. *)
val reset : t -> unit

(** {1 Conflict attribution}

    Machine-wide arming of the per-structure recorders ({!Cache},
    {!Tlb}, {!Branch}); dark by default and counter-identical when lit
    — the observer never feeds back into the model. The runtime sets
    the owning function id on call/return when (and only when) the
    machine is armed, so campaigns on dark machines execute the exact
    pre-attribution instruction path. *)

(** One snapshot of every structure's recorder, taken together. *)
type attrib_snapshot = {
  a_funcs : int;
  a_l1i : Cache.attrib_view;
  a_l1d : Cache.attrib_view;
  a_l2 : Cache.attrib_view;
  a_l3 : Cache.attrib_view;
  a_itlb : Cache.attrib_view;  (** translation sets, not cache sets *)
  a_dtlb : Cache.attrib_view;
  a_predictor : Branch.attrib_view;
}

(** Arm all seven structures for [funcs] functions. *)
val arm_attrib : t -> funcs:int -> unit

val attrib_armed : t -> bool

(** Charge subsequent accesses in every structure to [fid] ([-1] =
    outside any function, never charged). *)
val set_attrib_owner : t -> int -> unit

(** [None] when dark. *)
val attrib_snapshot : t -> attrib_snapshot option
