(** A translation lookaside buffer: a small set-associative cache of
    page translations. Randomized layouts touch more distinct pages, so
    the TLB is the component that charges STABILIZER its overhead (the
    paper attributes most of the slowdown to added TLB pressure). *)

type config = {
  name : string;
  entries : int;  (** total entries, power of two *)
  ways : int;
  page_bits : int;  (** log2 page size, 12 for 4 KiB pages *)
}

type t

val create : config -> t

(** [access t addr] looks up the page of [addr]; returns [true] on hit. *)
val access : t -> int -> bool

val accesses : t -> int
val misses : t -> int

(** Drop all translations, keep statistics. *)
val flush : t -> unit

val reset : t -> unit

(** {1 Conflict attribution}

    Delegated to the underlying set-associative translation cache; for
    a TLB the "sets" of the {!Cache.attrib_view} are translation sets
    and evictions are page-translation conflicts. Same plane-separation
    contract as {!Cache}. *)

val arm_attrib : t -> funcs:int -> unit
val attrib_armed : t -> bool
val set_attrib_owner : t -> int -> unit
val attrib_view : t -> Cache.attrib_view option
