(** A bimodal branch predictor: a table of 2-bit saturating counters
    indexed by low-order bits of the branch's code address. Two hot
    branches whose addresses alias to the same entry destructively
    interfere — the "branch aliasing" effect the paper credits for the
    small speedups code randomization sometimes produces (§5.2). *)

type t

(** Predictor kinds: [Bimodal] is the paper-era table of 2-bit counters
    indexed by pc; [Gshare history_bits] XORs a global history register
    into the index, so branch *history* also determines the entry — the
    structure the paper's §8 branch-sense randomization targets. *)
type kind = Bimodal | Gshare of int

(** [create ~entries] with a power-of-two table size (default 4096)
    and predictor [kind] (default [Bimodal]). *)
val create : ?entries:int -> ?kind:kind -> unit -> t

(** [predict_and_update t ~pc ~taken] returns [true] when the prediction
    matched the outcome, and trains the counter either way. *)
val predict_and_update : t -> pc:int -> taken:bool -> bool

val branches : t -> int
val mispredictions : t -> int
val reset : t -> unit

(** Table index used for a pc (with the current history under Gshare) —
    exposed for aliasing diagnostics. *)
val index_of : t -> int -> int

(** {1 Conflict attribution}

    Off-by-default alias recorder, same plane-separation contract as
    {!Cache}: dark it costs one option check per branch; lit it never
    feeds back into predictions, training, or counters. *)

(** [aliases] is a [funcs*funcs] row-major matrix: entry
    [prev*funcs + curr] counts branches from function [curr] that
    landed on a table entry last trained by function [prev]
    (cross-function only). [alias_mispredictions] is the subset of
    those events that coincided with a misprediction — the
    destructive-interference signal the paper's §5.2 credits for
    code-randomization speedups. *)
type attrib_view = {
  funcs : int;
  slot_accesses : int array;  (** per table entry *)
  aliases : int array;
  alias_mispredictions : int array;
}

val arm_attrib : t -> funcs:int -> unit
val attrib_armed : t -> bool

(** Function id charged for subsequent branches; [-1] never charged. *)
val set_attrib_owner : t -> int -> unit

val attrib_view : t -> attrib_view option
