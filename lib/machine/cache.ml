type config = { name : string; sets : int; ways : int; line_bits : int }

type attrib_view = {
  funcs : int;
  set_accesses : int array;
  set_misses : int array;
  evictions : int array;  (** funcs*funcs, [victim*funcs + evictor] *)
}

(* Conflict-attribution recorder: off (None) unless armed. When lit it
   observes the access stream without participating in it — no counter,
   tag, stamp or clock mutation depends on it, so the dark and lit
   machines stay counter-identical by construction. *)
type attrib = {
  a_funcs : int;
  mutable owner : int;  (** current function id, -1 = outside any *)
  line_owner : int array;  (** per way slot: installer fid, -1 unknown *)
  a_set_accesses : int array;
  a_set_misses : int array;
  a_evictions : int array;
}

type t = {
  cfg : config;
  tags : int array;  (** sets * ways; -1 = invalid *)
  stamps : int array;  (** LRU timestamps, parallel to [tags] *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable attrib : attrib option;
}

let create cfg =
  if cfg.sets <= 0 || cfg.sets land (cfg.sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  if cfg.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  {
    cfg;
    tags = Array.make (cfg.sets * cfg.ways) (-1);
    stamps = Array.make (cfg.sets * cfg.ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    attrib = None;
  }

let config t = t.cfg

let arm_attrib t ~funcs =
  if funcs <= 0 then invalid_arg "Cache.arm_attrib: funcs must be positive";
  t.attrib <-
    Some
      {
        a_funcs = funcs;
        owner = -1;
        line_owner = Array.make (t.cfg.sets * t.cfg.ways) (-1);
        a_set_accesses = Array.make t.cfg.sets 0;
        a_set_misses = Array.make t.cfg.sets 0;
        a_evictions = Array.make (funcs * funcs) 0;
      }

let attrib_armed t = t.attrib <> None

let set_attrib_owner t fid =
  match t.attrib with None -> () | Some a -> a.owner <- fid

let attrib_view t =
  match t.attrib with
  | None -> None
  | Some a ->
      Some
        {
          funcs = a.a_funcs;
          set_accesses = Array.copy a.a_set_accesses;
          set_misses = Array.copy a.a_set_misses;
          evictions = Array.copy a.a_evictions;
        }

let set_of t addr = (addr lsr t.cfg.line_bits) land (t.cfg.sets - 1)
let tag_of t addr = addr lsr t.cfg.line_bits

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let set = set_of t addr in
  let tag = tag_of t addr in
  let base = set * t.cfg.ways in
  let hit = ref false in
  let victim = ref base in
  let oldest = ref max_int in
  (try
     for w = base to base + t.cfg.ways - 1 do
       if t.tags.(w) = tag then begin
         t.stamps.(w) <- t.clock;
         hit := true;
         raise Exit
       end;
       if t.stamps.(w) < !oldest then begin
         oldest := t.stamps.(w);
         victim := w
       end
     done
   with Exit -> ());
  (match t.attrib with
  | None -> ()
  | Some a ->
      a.a_set_accesses.(set) <- a.a_set_accesses.(set) + 1;
      if not !hit then begin
        a.a_set_misses.(set) <- a.a_set_misses.(set) + 1;
        (* A real eviction (valid victim line) installed by a different
           function than the evictor is a cross-function conflict. The
           matrix is read before [tags] is overwritten below. *)
        let victim_owner = a.line_owner.(!victim) in
        if
          t.tags.(!victim) <> -1
          && victim_owner >= 0
          && a.owner >= 0
          && victim_owner <> a.owner
        then begin
          let k = (victim_owner * a.a_funcs) + a.owner in
          a.a_evictions.(k) <- a.a_evictions.(k) + 1
        end;
        a.line_owner.(!victim) <- a.owner
      end);
  if not !hit then begin
    t.misses <- t.misses + 1;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock
  end;
  !hit

let probe t addr =
  let set = set_of t addr in
  let tag = tag_of t addr in
  let base = set * t.cfg.ways in
  let found = ref false in
  for w = base to base + t.cfg.ways - 1 do
    if t.tags.(w) = tag then found := true
  done;
  !found

let accesses t = t.accesses
let misses t = t.misses

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  match t.attrib with
  | None -> ()
  | Some a -> Array.fill a.line_owner 0 (Array.length a.line_owner) (-1)

let reset t =
  flush t;
  t.accesses <- 0;
  t.misses <- 0;
  t.clock <- 0;
  match t.attrib with
  | None -> ()
  | Some a ->
      a.owner <- -1;
      Array.fill a.a_set_accesses 0 (Array.length a.a_set_accesses) 0;
      Array.fill a.a_set_misses 0 (Array.length a.a_set_misses) 0;
      Array.fill a.a_evictions 0 (Array.length a.a_evictions) 0

let index_bits t =
  let bits = ref 0 and s = ref t.cfg.sets in
  while !s > 1 do
    incr bits;
    s := !s lsr 1
  done;
  (t.cfg.line_bits, t.cfg.line_bits + !bits - 1)
