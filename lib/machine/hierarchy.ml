type counters = {
  cycles : int;
  instructions : int;
  l1i_misses : int;
  l1d_misses : int;
  l2_misses : int;
  l3_misses : int;
  itlb_misses : int;
  dtlb_misses : int;
  branches : int;
  branch_mispredictions : int;
}

type t = {
  cost : Cost.t;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  predictor : Branch.t;
  mutable cycles : int;
  mutable instructions : int;
  fetch_shift : int;  (** L1I line_bits — the fetch-line granularity *)
  last_fetch_line : int ref;
  data_shift : int;  (** L1D line_bits — the data-line granularity *)
  last_data_line : int ref;
  data_memo_ok : bool;
      (** the data-side last-line memo is only transparent when a
          repeated L1D hit charges nothing (l1_hit = 0) and a data line
          never straddles a DTLB page *)
}

(* The default machine is the evaluation machine (Core i3-550) scaled
   down 4x: generated workloads are orders of magnitude shorter than
   SPEC runs, and scaling the caches keeps the working-set-to-cache
   ratios — and therefore the layout sensitivity the paper studies —
   in the same regime. Pass explicit configs for a full-size machine. *)
let default_l1i =
  { Cache.name = "L1I"; sets = 64; ways = 2; line_bits = 6 } (* 8 KiB *)

let default_l1d =
  { Cache.name = "L1D"; sets = 64; ways = 2; line_bits = 6 } (* 8 KiB *)

let default_l2 =
  { Cache.name = "L2"; sets = 128; ways = 8; line_bits = 6 } (* 64 KiB *)

let default_l3 =
  { Cache.name = "L3"; sets = 1024; ways = 16; line_bits = 6 } (* 1 MiB *)

let default_itlb = { Tlb.name = "ITLB"; entries = 32; ways = 4; page_bits = 12 }
let default_dtlb = { Tlb.name = "DTLB"; entries = 32; ways = 4; page_bits = 12 }

let create ?(cost = Cost.default) ?(l1i = default_l1i) ?(l1d = default_l1d)
    ?(l2 = default_l2) ?(l3 = default_l3) ?(itlb = default_itlb)
    ?(dtlb = default_dtlb) ?(predictor_entries = 256)
    ?(predictor_kind = Branch.Bimodal) () =
  {
    cost;
    l1i = Cache.create l1i;
    l1d = Cache.create l1d;
    l2 = Cache.create l2;
    l3 = Cache.create l3;
    itlb = Tlb.create itlb;
    dtlb = Tlb.create dtlb;
    predictor = Branch.create ~entries:predictor_entries ~kind:predictor_kind ();
    cycles = 0;
    instructions = 0;
    fetch_shift = l1i.Cache.line_bits;
    last_fetch_line = ref (-1);
    data_shift = l1d.Cache.line_bits;
    last_data_line = ref (-1);
    data_memo_ok = cost.Cost.l1_hit = 0 && l1d.Cache.line_bits <= dtlb.Tlb.page_bits;
  }

(* Penalty for a miss in an L1 (I or D): walk down L2, L3, memory. *)
let lower_levels t addr =
  if Cache.access t.l2 addr then t.cost.Cost.l2_hit
  else if Cache.access t.l3 addr then t.cost.Cost.l3_hit
  else t.cost.Cost.memory

(* The I-side walk on a fetch-line change: memo update, ITLB, L1I and
   lower levels, penalty cycles charged. Base cycles and the retired
   instruction are NOT counted here — [fetch] adds them per call, the
   interpreter's fast path batches them per basic block. The fetch line
   is [pc lsr fetch_shift] with the shift taken from the configured
   L1I geometry (a hardcoded [lsr 6] used to mischarge non-default
   instruction caches). *)
let fetch_cross t pc =
  t.last_fetch_line := pc lsr t.fetch_shift;
  let tlb_penalty = if Tlb.access t.itlb pc then 0 else t.cost.Cost.tlb_miss in
  let cache_penalty =
    if Cache.access t.l1i pc then t.cost.Cost.l1_hit else lower_levels t pc
  in
  t.cycles <- t.cycles + tlb_penalty + cache_penalty

let fetch t pc =
  t.instructions <- t.instructions + 1;
  let before = t.cycles in
  if pc lsr t.fetch_shift <> !(t.last_fetch_line) then fetch_cross t pc;
  let total = t.cost.Cost.base_cycles + (t.cycles - before) in
  t.cycles <- t.cycles + t.cost.Cost.base_cycles;
  total

let fetch_shift t = t.fetch_shift
let fetch_line_memo t = t.last_fetch_line

let charge_batch t ~instructions ~cycles =
  t.instructions <- t.instructions + instructions;
  t.cycles <- t.cycles + cycles

(* The full D-side walk; [line] is the address's L1D line. *)
let data_cross t addr line =
  t.last_data_line := line;
  let tlb_penalty = if Tlb.access t.dtlb addr then 0 else t.cost.Cost.tlb_miss in
  let cache_penalty =
    if Cache.access t.l1d addr then t.cost.Cost.l1_hit else lower_levels t addr
  in
  let total = tlb_penalty + cache_penalty in
  t.cycles <- t.cycles + total;
  total

let data t addr =
  let line = addr lsr t.data_shift in
  (* Back-to-back accesses in one data line are guaranteed L1D + DTLB
     hits (nothing else touched either structure in between, and a line
     never spans a page), so when a hit costs 0 cycles the walk can be
     skipped entirely. Collapsing consecutive duplicates preserves the
     relative LRU order of every line in every set, so all future
     hit/miss decisions — and therefore every exported counter — are
     bit-identical to the unmemoized machine. *)
  if t.data_memo_ok && line = !(t.last_data_line) then 0
  else data_cross t addr line

let branch t ~pc ~taken =
  if Branch.predict_and_update t.predictor ~pc ~taken then 0
  else begin
    let penalty = t.cost.Cost.branch_misprediction in
    t.cycles <- t.cycles + penalty;
    penalty
  end

let charge t n = t.cycles <- t.cycles + n
let retire t = t.instructions <- t.instructions + 1
let cycles t = t.cycles
let cost t = t.cost

type attrib_snapshot = {
  a_funcs : int;
  a_l1i : Cache.attrib_view;
  a_l1d : Cache.attrib_view;
  a_l2 : Cache.attrib_view;
  a_l3 : Cache.attrib_view;
  a_itlb : Cache.attrib_view;
  a_dtlb : Cache.attrib_view;
  a_predictor : Branch.attrib_view;
}

let arm_attrib t ~funcs =
  Cache.arm_attrib t.l1i ~funcs;
  Cache.arm_attrib t.l1d ~funcs;
  Cache.arm_attrib t.l2 ~funcs;
  Cache.arm_attrib t.l3 ~funcs;
  Tlb.arm_attrib t.itlb ~funcs;
  Tlb.arm_attrib t.dtlb ~funcs;
  Branch.arm_attrib t.predictor ~funcs

let attrib_armed t = Cache.attrib_armed t.l1i

let set_attrib_owner t fid =
  Cache.set_attrib_owner t.l1i fid;
  Cache.set_attrib_owner t.l1d fid;
  Cache.set_attrib_owner t.l2 fid;
  Cache.set_attrib_owner t.l3 fid;
  Tlb.set_attrib_owner t.itlb fid;
  Tlb.set_attrib_owner t.dtlb fid;
  Branch.set_attrib_owner t.predictor fid

let attrib_snapshot t =
  match
    ( Cache.attrib_view t.l1i,
      Cache.attrib_view t.l1d,
      Cache.attrib_view t.l2,
      Cache.attrib_view t.l3,
      Tlb.attrib_view t.itlb,
      Tlb.attrib_view t.dtlb,
      Branch.attrib_view t.predictor )
  with
  | Some l1i, Some l1d, Some l2, Some l3, Some itlb, Some dtlb, Some pred ->
      Some
        {
          a_funcs = l1i.Cache.funcs;
          a_l1i = l1i;
          a_l1d = l1d;
          a_l2 = l2;
          a_l3 = l3;
          a_itlb = itlb;
          a_dtlb = dtlb;
          a_predictor = pred;
        }
  | _ -> None

let counters t =
  {
    cycles = t.cycles;
    instructions = t.instructions;
    l1i_misses = Cache.misses t.l1i;
    l1d_misses = Cache.misses t.l1d;
    l2_misses = Cache.misses t.l2;
    l3_misses = Cache.misses t.l3;
    itlb_misses = Tlb.misses t.itlb;
    dtlb_misses = Tlb.misses t.dtlb;
    branches = Branch.branches t.predictor;
    branch_mispredictions = Branch.mispredictions t.predictor;
  }

let counters_zero =
  {
    cycles = 0;
    instructions = 0;
    l1i_misses = 0;
    l1d_misses = 0;
    l2_misses = 0;
    l3_misses = 0;
    itlb_misses = 0;
    dtlb_misses = 0;
    branches = 0;
    branch_mispredictions = 0;
  }

let counters_map2 f (a : counters) (b : counters) : counters =
  {
    cycles = f a.cycles b.cycles;
    instructions = f a.instructions b.instructions;
    l1i_misses = f a.l1i_misses b.l1i_misses;
    l1d_misses = f a.l1d_misses b.l1d_misses;
    l2_misses = f a.l2_misses b.l2_misses;
    l3_misses = f a.l3_misses b.l3_misses;
    itlb_misses = f a.itlb_misses b.itlb_misses;
    dtlb_misses = f a.dtlb_misses b.dtlb_misses;
    branches = f a.branches b.branches;
    branch_mispredictions = f a.branch_mispredictions b.branch_mispredictions;
  }

let counters_add = counters_map2 ( + )
let counters_sub = counters_map2 ( - )

let counters_fields (c : counters) =
  [
    ("cycles", c.cycles);
    ("instructions", c.instructions);
    ("l1i_misses", c.l1i_misses);
    ("l1d_misses", c.l1d_misses);
    ("l2_misses", c.l2_misses);
    ("l3_misses", c.l3_misses);
    ("itlb_misses", c.itlb_misses);
    ("dtlb_misses", c.dtlb_misses);
    ("branches", c.branches);
    ("branch_mispredictions", c.branch_mispredictions);
  ]

let counters_of_fields fields =
  List.fold_left
    (fun (c : counters) (k, v) ->
      match k with
      | "cycles" -> { c with cycles = v }
      | "instructions" -> { c with instructions = v }
      | "l1i_misses" -> { c with l1i_misses = v }
      | "l1d_misses" -> { c with l1d_misses = v }
      | "l2_misses" -> { c with l2_misses = v }
      | "l3_misses" -> { c with l3_misses = v }
      | "itlb_misses" -> { c with itlb_misses = v }
      | "dtlb_misses" -> { c with dtlb_misses = v }
      | "branches" -> { c with branches = v }
      | "branch_mispredictions" -> { c with branch_mispredictions = v }
      | _ -> c)
    counters_zero fields

let flush t =
  Cache.flush t.l1i;
  Cache.flush t.l1d;
  Cache.flush t.l2;
  Cache.flush t.l3;
  Tlb.flush t.itlb;
  Tlb.flush t.dtlb;
  t.last_fetch_line := -1;
  t.last_data_line := -1

let reset t =
  Cache.reset t.l1i;
  Cache.reset t.l1d;
  Cache.reset t.l2;
  Cache.reset t.l3;
  Tlb.reset t.itlb;
  Tlb.reset t.dtlb;
  Branch.reset t.predictor;
  t.cycles <- 0;
  t.instructions <- 0;
  t.last_fetch_line := -1;
  t.last_data_line := -1
