type config = { name : string; entries : int; ways : int; page_bits : int }

type t = { cache : Cache.t }

let create cfg =
  if cfg.entries mod cfg.ways <> 0 then
    invalid_arg "Tlb.create: entries must be a multiple of ways";
  let sets = cfg.entries / cfg.ways in
  {
    cache =
      Cache.create
        { Cache.name = cfg.name; sets; ways = cfg.ways; line_bits = cfg.page_bits };
  }

let access t addr = Cache.access t.cache addr
let arm_attrib t ~funcs = Cache.arm_attrib t.cache ~funcs
let attrib_armed t = Cache.attrib_armed t.cache
let set_attrib_owner t fid = Cache.set_attrib_owner t.cache fid
let attrib_view t = Cache.attrib_view t.cache
let accesses t = Cache.accesses t.cache
let misses t = Cache.misses t.cache
let flush t = Cache.flush t.cache
let reset t = Cache.reset t.cache
