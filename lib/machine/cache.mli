(** A set-associative cache with LRU replacement. Addresses are plain
    ints (simulated byte addresses). The *index bits* of an address —
    [line_bits .. line_bits + log2 sets - 1] — decide its set, which is
    exactly the layout sensitivity the paper exploits: two hot objects
    whose index bits collide evict each other regardless of how much
    total capacity is free. *)

type config = {
  name : string;
  sets : int;  (** power of two *)
  ways : int;
  line_bits : int;  (** log2 of the line size in bytes *)
}

type t

val create : config -> t
val config : t -> config

(** [access t addr] touches the line containing [addr]; returns [true]
    on hit. Misses fill the line (evicting the LRU way). *)
val access : t -> int -> bool

(** [probe t addr] is [true] if the line is resident; no state change. *)
val probe : t -> int -> bool

val accesses : t -> int
val misses : t -> int

(** Invalidate all lines and clear statistics. *)
val reset : t -> unit

(** Invalidate all lines, keep statistics. *)
val flush : t -> unit

(** The range of address bits (lo, hi) that select the set, e.g. (6, 12)
    for a 128-set cache with 64-byte lines — the bits the paper's NIST
    analysis calls the "index bits". *)
val index_bits : t -> int * int

(** {1 Conflict attribution}

    An off-by-default observer plane for layout-bias diagnosis ([szc
    explain]): per-set occupancy plus a per-function eviction matrix
    recording who evicted whose lines. Dark ([attrib_armed t = false],
    the default) it costs one option check per access and changes no
    observable state; lit, it still never feeds back into hits, misses,
    LRU order or the clock — counters are identical either way. *)

(** Immutable copy of the recorder state. [evictions] is a
    [funcs*funcs] row-major matrix: entry [victim*funcs + evictor]
    counts valid lines installed by function [victim] that were evicted
    by a miss from function [evictor] (cross-function only). *)
type attrib_view = {
  funcs : int;
  set_accesses : int array;  (** accesses landing in each set *)
  set_misses : int array;  (** misses landing in each set *)
  evictions : int array;
}

(** Arm the recorder for a program with [funcs] functions (fids
    [0..funcs-1]). Re-arming starts a fresh recorder. *)
val arm_attrib : t -> funcs:int -> unit

val attrib_armed : t -> bool

(** Set the function id charged for subsequent accesses; [-1] (the
    initial state) means "outside any function" and is never charged. *)
val set_attrib_owner : t -> int -> unit

(** Snapshot the recorder ([None] when dark). Arrays are copies. *)
val attrib_view : t -> attrib_view option
