(** Structured operational log (oplog): an append-only JSONL stream of
    daemon lifecycle events, framed with the {!Stz_store.Artifact}
    container/CRC discipline.

    Each record is one compact JSON object checksummed with CRC-32, so
    the file is a valid [%szc-artifact] container of kind
    ["szc-oplog"]: [szc fsck] verifies it, a SIGKILL mid-write
    salvages to the longest valid record prefix, and a reopened oplog
    {e self-heals} (the torn tail is truncated before appending
    resumes). Appends are one [write(2)] each — unbuffered, so a
    forked child that inherits the descriptor can never duplicate
    bytes at exit; the child simply closes the fd and stays silent.

    Size-based rotation: when the current file would exceed
    [max_bytes], it is renamed to [path.1] (shifting [path.1] to
    [path.2], ... keeping [keep] generations) and a fresh container is
    started.

    This is the {e wall-clock} plane's log. Nothing here is read by —
    or written from — campaign execution; enabling the oplog changes
    zero bytes of any campaign artifact. *)

type t

(** The container kind, ["szc-oplog"] — what [szc fsck] dispatches
    on. *)
val kind : string

(** Open (or create) the oplog at [path], self-healing any torn tail.
    [max_bytes] (default 4 MiB) bounds each generation; [keep]
    (default 3) rotated generations are retained. *)
val create :
  path:string -> ?max_bytes:int -> ?keep:int -> unit -> (t, string) result

(** Append one record. IO errors are swallowed — losing an ops log
    line must never take the daemon down. *)
val log : t -> Json.t -> unit

(** [event t ~ts_ms ~ev fields] appends
    [{"ts_ms": ts_ms, "ev": ev, ...fields}]. [ts_ms] is the caller's
    wall clock in milliseconds. *)
val event : t -> ts_ms:int -> ev:string -> (string * Json.t) list -> unit

val path : t -> string
val close : t -> unit

(** Strict read: every record frames, checksums and parses as JSON. *)
val load : string -> (Json.t list, string) result

(** Lenient read for repair: the longest valid prefix of records (raw
    [(tag, payload)] pairs, ready for {!rewrite}) plus a salvage note
    ([None] when the file was intact). *)
val recover : string -> ((string * string) list * string option, string) result

(** Rewrite the file as a clean container holding exactly [records]
    (atomic + durable via the artifact layer). *)
val rewrite : string -> (string * string) list -> unit
