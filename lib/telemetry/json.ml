type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit x)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            emit x)
          fields;
        Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "bad escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* ASCII only; enough for checkpoint files we write. *)
              Buffer.add_char buf (Char.chr (code land 0x7F));
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_str = function String s -> Some s | _ -> None
let of_int64 i = String (Int64.to_string i)

let to_int64 = function
  | String s -> Int64.of_string_opt s
  | Int i -> Some (Int64.of_int i)
  | _ -> None
