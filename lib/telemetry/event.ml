type args = (string * Json.t) list

type t =
  | Span of {
      name : string;
      cat : string;
      lane : int;
      ts : int;
      dur : int;
      args : args;
    }
  | Instant of { name : string; cat : string; lane : int; ts : int; args : args }
  | Counter of {
      name : string;
      cat : string;
      lane : int;
      ts : int;
      values : (string * int) list;
    }

let lane = function Span e -> e.lane | Instant e -> e.lane | Counter e -> e.lane
let ts = function Span e -> e.ts | Instant e -> e.ts | Counter e -> e.ts
let name = function Span e -> e.name | Instant e -> e.name | Counter e -> e.name
let cat = function Span e -> e.cat | Instant e -> e.cat | Counter e -> e.cat

(* End of the event on the timeline: spans extend, points don't. *)
let finish = function
  | Span e -> e.ts + e.dur
  | Instant e -> e.ts
  | Counter e -> e.ts

let shift ~lane ~by = function
  | Span e -> Span { e with lane; ts = e.ts + by }
  | Instant e -> Instant { e with lane; ts = e.ts + by }
  | Counter e -> Counter { e with lane; ts = e.ts + by }

let extent events = List.fold_left (fun acc e -> max acc (finish e)) 0 events
