(** Exporters for telemetry streams. All timestamps are simulated
    cycles (see {!Trace}), so for a fixed seed the emitted bytes are a
    pure function of the campaign — the property the byte-identity
    tests pin down.

    Chrome [trace_event] output: each group becomes one process
    ([pid] = group index), lanes become threads ([tid] = lane), spans
    are ["ph":"X"] complete events, instants ["ph":"i"], counters
    ["ph":"C"], and process/thread names are emitted as ["ph":"M"]
    metadata. Load the result at [chrome://tracing] or Perfetto. *)

(** One process group named [process_name] (default ["stabilizer"]). *)
val chrome : ?process_name:string -> Event.t list -> Json.t

val chrome_string : ?process_name:string -> Event.t list -> string

(** Multiple process groups — e.g. one per compared arm. *)
val chrome_of_groups : (string * Event.t list) list -> Json.t

val chrome_groups_string : (string * Event.t list) list -> string

(** One JSON object per line, in stream order. *)
val jsonl : Event.t list -> string

(** Structural check used by [szc check-trace] and CI: the value must
    hold a [traceEvents] array of well-formed events with non-negative
    timestamps and at least one non-metadata event. Returns
    [(spans, points)] counts on success. *)
val validate_chrome : Json.t -> (int * int, string) result

val validate_chrome_string : string -> (int * int, string) result
