let event_json ~pid e =
  let base name cat lane ts =
    [
      ("name", Json.String name);
      ("cat", Json.String (if cat = "" then "default" else cat));
      ("pid", Json.Int pid);
      ("tid", Json.Int lane);
      ("ts", Json.Int ts);
    ]
  in
  match e with
  | Event.Span { name; cat; lane; ts; dur; args } ->
      Json.Obj
        (base name cat lane ts
        @ [ ("ph", Json.String "X"); ("dur", Json.Int dur) ]
        @ (match args with [] -> [] | a -> [ ("args", Json.Obj a) ]))
  | Event.Instant { name; cat; lane; ts; args } ->
      Json.Obj
        (base name cat lane ts
        @ [ ("ph", Json.String "i"); ("s", Json.String "t") ]
        @ (match args with [] -> [] | a -> [ ("args", Json.Obj a) ]))
  | Event.Counter { name; cat; lane; ts; values } ->
      Json.Obj
        (base name cat lane ts
        @ [
            ("ph", Json.String "C");
            ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) values));
          ])

let metadata ~pid ~tid ~kind ~label =
  Json.Obj
    [
      ("name", Json.String kind);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String label) ]);
    ]

let lane_label lane =
  if lane = 0 then "control"
  else if lane = Trace.harness_lane then "harness"
  else Printf.sprintf "virtual-worker %d" (lane - 1)

let sorted_lanes events =
  List.sort_uniq compare (List.map Event.lane events)

let chrome_of_groups groups =
  let trace_events =
    List.concat
      (List.mapi
         (fun pid (pname, events) ->
           (metadata ~pid ~tid:0 ~kind:"process_name" ~label:pname
           :: List.map
                (fun lane ->
                  metadata ~pid ~tid:lane ~kind:"thread_name"
                    ~label:(lane_label lane))
                (sorted_lanes events))
           @ List.map (event_json ~pid) events)
         groups)
  in
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "simulated-cycles");
            ("generator", Json.String "stz_telemetry");
          ] );
    ]

let chrome ?(process_name = "stabilizer") events =
  chrome_of_groups [ (process_name, events) ]

let chrome_string ?process_name events =
  Json.to_string (chrome ?process_name events) ^ "\n"

let chrome_groups_string groups = Json.to_string (chrome_of_groups groups) ^ "\n"

let jsonl events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let kind, extra =
        match e with
        | Event.Span { dur; _ } -> ("span", [ ("dur", Json.Int dur) ])
        | Event.Instant _ -> ("instant", [])
        | Event.Counter { values; _ } ->
            ( "counter",
              [ ("values", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) values)) ]
            )
      in
      let line =
        Json.Obj
          ([
             ("kind", Json.String kind);
             ("name", Json.String (Event.name e));
             ("cat", Json.String (Event.cat e));
             ("lane", Json.Int (Event.lane e));
             ("ts", Json.Int (Event.ts e));
           ]
          @ extra
          @
          match e with
          | Event.Span { args = []; _ } | Event.Instant { args = []; _ } -> []
          | Event.Span { args; _ } | Event.Instant { args; _ } ->
              [ ("args", Json.Obj args) ]
          | Event.Counter _ -> [])
      in
      Buffer.add_string buf (Json.to_string line);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validation: the check CI and tests run over an emitted trace file.   *)
(* ------------------------------------------------------------------ *)

let validate_chrome json =
  let ( let* ) = Result.bind in
  let* entries =
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some l -> Ok l
    | None -> Error "no traceEvents array"
  in
  let check_event i e =
    let get name conv =
      match Option.bind (Json.member name e) conv with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "event %d: bad or missing %S" i name)
    in
    let* ph = get "ph" Json.to_str in
    let* _name = get "name" Json.to_str in
    let* _pid = get "pid" Json.to_int in
    let* _tid = get "tid" Json.to_int in
    match ph with
    | "M" -> Ok `Meta
    | "X" ->
        let* ts = get "ts" Json.to_int in
        let* dur = get "dur" Json.to_int in
        if ts < 0 || dur < 0 then
          Error (Printf.sprintf "event %d: negative ts/dur" i)
        else Ok `Span
    | "i" | "C" ->
        let* ts = get "ts" Json.to_int in
        if ts < 0 then Error (Printf.sprintf "event %d: negative ts" i)
        else Ok `Point
    | ph -> Error (Printf.sprintf "event %d: unknown phase %S" i ph)
  in
  let* spans, points =
    List.fold_left
      (fun acc e ->
        let* s, p = acc in
        let i = s + p in
        let* kind = check_event i e in
        match kind with
        | `Span -> Ok (s + 1, p)
        | `Point -> Ok (s, p + 1)
        | `Meta -> Ok (s, p))
      (Ok (0, 0)) entries
  in
  if spans + points = 0 then Error "trace holds no events, only metadata"
  else Ok (spans, points)

let validate_chrome_string s =
  Result.bind (Json.of_string s) validate_chrome
