type open_span = {
  o_name : string;
  o_cat : string;
  o_ts : int;
  o_args : Event.args;
}

type t = {
  mutable events_rev : Event.t list;
  mutable stack : open_span list;
  mutable last_ts : int;
}

let create () = { events_rev = []; stack = []; last_ts = 0 }

let check_clock t ~now =
  if now < t.last_ts then
    invalid_arg
      (Printf.sprintf "Runlog: clock went backwards (%d after %d)" now t.last_ts);
  t.last_ts <- now

let begin_span t ?(cat = "") ?(args = []) name ~now =
  check_clock t ~now;
  t.stack <- { o_name = name; o_cat = cat; o_ts = now; o_args = args } :: t.stack

let end_span ?(args = []) t ~now =
  check_clock t ~now;
  match t.stack with
  | [] -> invalid_arg "Runlog.end_span: no open span"
  | s :: rest ->
      t.stack <- rest;
      t.events_rev <-
        Event.Span
          {
            name = s.o_name;
            cat = s.o_cat;
            lane = 0;
            ts = s.o_ts;
            dur = now - s.o_ts;
            args = s.o_args @ args;
          }
        :: t.events_rev

let instant t ?(cat = "") ?(args = []) name ~now =
  check_clock t ~now;
  t.events_rev <- Event.Instant { name; cat; lane = 0; ts = now; args } :: t.events_rev

let counter t ?(cat = "") name ~values ~now =
  check_clock t ~now;
  t.events_rev <- Event.Counter { name; cat; lane = 0; ts = now; values } :: t.events_rev

(* Pre-built run-local events (e.g. a nested runtime's stream) dropped
   in at an offset; no interaction with the span stack. *)
let splice t ~offset events =
  List.iter
    (fun e ->
      let e = Event.shift ~lane:0 ~by:offset e in
      t.last_ts <- max t.last_ts (Event.ts e);
      t.events_rev <- e :: t.events_rev)
    events

let depth t = List.length t.stack

let close t ~now = while t.stack <> [] do end_span t ~now done

let events t =
  if t.stack <> [] then
    invalid_arg
      (Printf.sprintf "Runlog.events: %d unclosed span(s), innermost %S"
         (List.length t.stack)
         (match t.stack with s :: _ -> s.o_name | [] -> ""));
  (* Spans are recorded at their *end*; emit the stream ordered by start
     timestamp (stable, so nesting order survives ties) — the order the
     run actually produced them in. *)
  List.stable_sort
    (fun a b -> compare (Event.ts a) (Event.ts b))
    (List.rev t.events_rev)
