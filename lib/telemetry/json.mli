(** A minimal JSON value type, emitter and recursive-descent parser —
    just enough for the supervisor's checkpoint files. Int64 seeds are
    stored as decimal strings to survive the 63-bit OCaml [int]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result

(** Object member lookup; [None] on missing key or non-object. *)
val member : string -> t -> t option

(** Typed accessors; [None] on shape mismatch. *)
val to_int : t -> int option

val to_list : t -> t list option
val to_str : t -> string option

(** Int64 round-trip through decimal strings. *)
val of_int64 : int64 -> t

val to_int64 : t -> int64 option
