let control_lane = 0

type t = {
  lanes : int;
  clocks : int array;  (* virtual clock per run lane, index 0 = lane 1 *)
  mutable control_clock : int;
  mutable events_rev : Event.t list;
  mutable harness_rev : Event.t list;
  wall_origin : float;  (* Sys.time at creation, for harness timestamps *)
}

let create ?(lanes = 1) () =
  if lanes < 1 then invalid_arg "Trace.create: lanes must be >= 1";
  {
    lanes;
    clocks = Array.make lanes 0;
    control_clock = 0;
    events_rev = [];
    harness_rev = [];
    wall_origin = Sys.time ();
  }

let lanes t = t.lanes
let lane_for t ~run = 1 + (run mod t.lanes)

(* The virtual "now" of campaign-level bookkeeping: nothing the
   supervisor does can predate work already merged. *)
let now t =
  Array.fold_left max t.control_clock t.clocks

let push t e = t.events_rev <- e :: t.events_rev

let add_run t ~run events =
  let lane = lane_for t ~run in
  let base = t.clocks.(lane - 1) in
  List.iter (fun e -> push t (Event.shift ~lane ~by:base e)) events;
  t.clocks.(lane - 1) <- base + Event.extent events

let control_instant t ?(cat = "control") ?(args = []) name =
  let ts = now t in
  t.control_clock <- ts;
  push t (Event.Instant { name; cat; lane = control_lane; ts; args })

let control_counter t ?(cat = "control") name ~values =
  let ts = now t in
  t.control_clock <- ts;
  push t (Event.Counter { name; cat; lane = control_lane; ts; values })

let events t = List.rev t.events_rev

(* ------------------------------------------------------------------ *)
(* Harness events: nondeterministic, wall-clocked facts about the       *)
(* physical execution (worker pids, respawns, reorder buffering).       *)
(* Kept in a separate stream so the deterministic trace stays           *)
(* byte-identical across worker counts; exporters only see them when    *)
(* explicitly asked.                                                    *)
(* ------------------------------------------------------------------ *)

let harness_lane = 1000

let harness_instant t ?(cat = "harness") ?(args = []) name =
  let ts = int_of_float ((Sys.time () -. t.wall_origin) *. 1e6) in
  t.harness_rev <-
    Event.Instant { name; cat; lane = harness_lane; ts; args } :: t.harness_rev

let harness_events t = List.rev t.harness_rev
