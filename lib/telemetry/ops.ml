(* The operational (wall-clock) metrics plane. Strictly separate from
   the deterministic Metrics/Runlog layer: nothing in here may ever be
   observed by a campaign artifact. See ops.mli for the bucket-layout
   contract. *)

(* ------------------------------------------------------------------ *)
(* Log-linear histogram                                                *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  (* Values 0..15 get their own unit-width bucket; from 16 up, each
     power-of-two octave is split into 16 sub-buckets, so the relative
     quantization error is bounded by 1/16 = 6.25% everywhere. The
     layout is a pure function of the value — no auto-ranging, no
     rescaling — so two histograms recorded by different processes at
     different times merge by element-wise addition and snapshots are
     stable and diffable. *)

  let sub_buckets = 16

  (* msb 16 = 4, msb 31 = 4, msb 32 = 5 ... *)
  let msb v =
    let rec go v k = if v <= 1 then k else go (v lsr 1) (k + 1) in
    go v 0

  let bucket_of v =
    let v = if v < 0 then 0 else v in
    if v < sub_buckets then v
    else
      let e = msb v in
      ((e - 3) lsl 4) lor ((v lsr (e - 4)) land 15)

  let bucket_lower i =
    if i < sub_buckets then i
    else
      let e = (i lsr 4) + 3 and sub = i land 15 in
      (sub_buckets lor sub) lsl (e - 4)

  (* max_int has msb 62, so the largest index is 16*(62-3)+15 = 959. *)
  let n_buckets = 960

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable vmin : int;  (** exact; meaningless when [count = 0] *)
    mutable vmax : int;
  }

  let create () =
    { counts = Array.make n_buckets 0; count = 0; sum = 0; vmin = 0; vmax = 0 }

  let observe h v =
    let v = if v < 0 then 0 else v in
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1;
    if h.count = 0 then begin
      h.vmin <- v;
      h.vmax <- v
    end
    else begin
      if v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v
    end;
    h.count <- h.count + 1;
    h.sum <- h.sum + v

  let merge_into ~dst src =
    Array.iteri
      (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c)
      src.counts;
    if src.count > 0 then begin
      if dst.count = 0 then begin
        dst.vmin <- src.vmin;
        dst.vmax <- src.vmax
      end
      else begin
        if src.vmin < dst.vmin then dst.vmin <- src.vmin;
        if src.vmax > dst.vmax then dst.vmax <- src.vmax
      end;
      dst.count <- dst.count + src.count;
      dst.sum <- dst.sum + src.sum
    end

  let count h = h.count
  let sum h = h.sum
  let min_value h = if h.count = 0 then 0 else h.vmin
  let max_value h = if h.count = 0 then 0 else h.vmax

  (* The value reported for a percentile is the lower bound of the
     bucket holding the rank — deterministic, merge-stable, and at most
     6.25% below any value actually recorded into that bucket. *)
  let percentile h p =
    if h.count = 0 then 0
    else
      let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
      let rank =
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.count)) in
        if r < 1 then 1 else if r > h.count then h.count else r
      in
      let rec walk i cum =
        if i >= n_buckets then max_value h
        else
          let cum = cum + h.counts.(i) in
          if cum >= rank then bucket_lower i else walk (i + 1) cum
      in
      walk 0 0

  let nonzero_buckets h =
    let out = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then out := (i, h.counts.(i)) :: !out
    done;
    !out
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64; gauges = Hashtbl.create 32; hists = Hashtbl.create 16 }

let valid_key k =
  String.length k > 0
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '/' -> true
         | _ -> false)
       k

let check_key k =
  if not (valid_key k) then invalid_arg (Printf.sprintf "Ops: bad key %S" k)

let cell tbl k =
  match Hashtbl.find_opt tbl k with
  | Some r -> r
  | None ->
      check_key k;
      let r = ref 0 in
      Hashtbl.add tbl k r;
      r

let incr t ?(by = 1) k = cell t.counters k := !(cell t.counters k) + by
let counter t k = match Hashtbl.find_opt t.counters k with Some r -> !r | None -> 0
let set_gauge t k v = cell t.gauges k := v
let gauge t k = match Hashtbl.find_opt t.gauges k with Some r -> !r | None -> 0

let hist t k =
  match Hashtbl.find_opt t.hists k with
  | Some h -> h
  | None ->
      check_key k;
      let h = Hist.create () in
      Hashtbl.add t.hists k h;
      h

let observe t k v = Hist.observe (hist t k) v

let sorted_assoc tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_assoc t.counters ( ! )
let gauges t = sorted_assoc t.gauges ( ! )

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
  h_max : int;
}

let summarize h =
  {
    h_count = Hist.count h;
    h_sum = Hist.sum h;
    h_min = Hist.min_value h;
    h_p50 = Hist.percentile h 50.0;
    h_p90 = Hist.percentile h 90.0;
    h_p99 = Hist.percentile h 99.0;
    h_max = Hist.max_value h;
  }

let histograms t = sorted_assoc t.hists summarize

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let snapshot t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "counter %s %d\n" k v))
    (counters t);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "gauge %s %d\n" k v))
    (gauges t);
  List.iter
    (fun (k, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "hist %s count %d min %d p50 %d p90 %d p99 %d max %d sum %d\n" k
           s.h_count s.h_min s.h_p50 s.h_p90 s.h_p99 s.h_max s.h_sum))
    (histograms t);
  Buffer.contents buf

let prom_name prefix k =
  let b = Bytes.of_string (prefix ^ "_" ^ k) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

let to_prometheus ?(prefix = "szcd") t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (k, v) ->
      let n = prom_name prefix k in
      line "# TYPE %s counter\n%s %d\n" n n v)
    (counters t);
  List.iter
    (fun (k, v) ->
      let n = prom_name prefix k in
      line "# TYPE %s gauge\n%s %d\n" n n v)
    (gauges t);
  List.iter
    (fun (k, s) ->
      let n = prom_name prefix k in
      line "# TYPE %s summary\n" n;
      line "%s{quantile=\"0.5\"} %d\n" n s.h_p50;
      line "%s{quantile=\"0.9\"} %d\n" n s.h_p90;
      line "%s{quantile=\"0.99\"} %d\n" n s.h_p99;
      line "%s_sum %d\n" n s.h_sum;
      line "%s_count %d\n" n s.h_count;
      line "# TYPE %s_max gauge\n%s_max %d\n" n n s.h_max)
    (histograms t);
  Buffer.contents buf
