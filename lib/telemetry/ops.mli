(** The {e operational} metrics plane: counters, gauges and log-linear
    bucketed histograms for wall-clock measurements of the harness
    itself (daemon event-loop latency, scheduler batch sizes, client
    buffer high-water marks, ...).

    This plane is rigorously separate from the deterministic telemetry
    ({!Metrics}, {!Runlog}): nothing recorded here may ever influence a
    campaign artifact. The deterministic plane is clocked in simulated
    cycles; this one is fed wall-clock durations by its callers — the
    registry itself never reads a clock, so it stays trivially safe to
    link anywhere.

    {b Histogram bucket layout} (fixed, versioned by this interface):
    values 0–15 get unit-width buckets; from 16 up, every power-of-two
    octave [2{^e}, 2{^e+1}) is split into 16 equal sub-buckets. The
    relative quantization error is therefore ≤ 1/16 = 6.25% everywhere.
    Because the layout is a pure function of the value, histograms
    recorded independently (across processes, restarts, shards) merge
    by element-wise addition, and snapshots are stable and diffable. *)

module Hist : sig
  type t

  val create : unit -> t

  (** Record one non-negative value (negatives clamp to 0). *)
  val observe : t -> int -> unit

  (** Element-wise addition; exact count/sum/min/max combine too. *)
  val merge_into : dst:t -> t -> unit

  val count : t -> int
  val sum : t -> int

  (** Exact extrema of the observed values (0 when empty). *)
  val min_value : t -> int

  val max_value : t -> int

  (** [percentile h p] for [p] in [0..100]: the lower bound of the
      bucket containing the rank-⌈p/100·n⌉ value — deterministic and at
      most 6.25% below any value recorded in that bucket. 0 when
      empty. *)
  val percentile : t -> float -> int

  (** The fixed layout, exposed so tests can pin it: [bucket_of v] is
      the bucket index recording [v]; [bucket_lower i] is the smallest
      value mapping to bucket [i]. *)
  val bucket_of : int -> int

  val bucket_lower : int -> int

  (** Non-empty [(bucket index, count)] pairs in index order. *)
  val nonzero_buckets : t -> (int * int) list
end

type t

val create : unit -> t

(** Keys are dotted paths over [[A-Za-z0-9._/-]]; a malformed key
    raises [Invalid_argument]. *)
val incr : t -> ?by:int -> string -> unit

val counter : t -> string -> int
val set_gauge : t -> string -> int -> unit
val gauge : t -> string -> int
val observe : t -> string -> int -> unit

(** The named histogram, created on first use. *)
val hist : t -> string -> Hist.t

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
  h_max : int;
}

val summarize : Hist.t -> hist_summary

(** Sorted by key. *)
val counters : t -> (string * int) list

val gauges : t -> (string * int) list
val histograms : t -> (string * hist_summary) list

(** Stable text form, one line per metric, keys sorted within each
    class: ["counter <k> <v>"], ["gauge <k> <v>"],
    ["hist <k> count <n> min <m> p50 <v> p90 <v> p99 <v> max <M> sum
    <s>"]. Two snapshots of identical registries are byte-identical. *)
val snapshot : t -> string

(** Prometheus text exposition format: counters and gauges verbatim,
    histograms as summaries ([{quantile="0.5|0.9|0.99"}], [_sum],
    [_count], plus a [_max] gauge). Metric names are
    [<prefix>_<key>] with non-alphanumerics mapped to ['_']. *)
val to_prometheus : ?prefix:string -> t -> string
