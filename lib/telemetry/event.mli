(** One telemetry event. Timestamps are integers on whatever clock the
    producer chose — in this system, simulated cycles, so that a fixed
    seed yields a bit-identical event stream regardless of host machine,
    wall time or worker count. [lane] is a display track (Chrome
    trace_event "tid"); producers of run-local streams leave it at 0 and
    {!Trace.add_run} assigns the real lane at merge time. *)

type args = (string * Json.t) list

type t =
  | Span of {
      name : string;
      cat : string;
      lane : int;
      ts : int;
      dur : int;  (** duration in clock units; complete ("X") event *)
      args : args;
    }
  | Instant of { name : string; cat : string; lane : int; ts : int; args : args }
  | Counter of {
      name : string;
      cat : string;
      lane : int;
      ts : int;
      values : (string * int) list;
    }

val lane : t -> int
val ts : t -> int
val name : t -> string
val cat : t -> string

(** [ts] plus the duration for spans; [ts] for point events. *)
val finish : t -> int

(** Relocate an event onto [lane], its timestamp advanced [by]. *)
val shift : lane:int -> by:int -> t -> t

(** Largest {!finish} over the list; 0 when empty. *)
val extent : t list -> int
