(* Structured operational log for the daemon: one JSON object per
   record, framed with the store's container/CRC discipline so a crash
   mid-write salvages to the longest valid prefix and `szc fsck` can
   diagnose and repair it like any other artifact. Appends are one
   write(2) each — no buffering, so a forked child inheriting the fd
   never duplicates bytes at exit. *)

module A = Stz_store.Artifact

let kind = "szc-oplog"
let record_tag = "op"
let header = A.header_line ~kind

type t = {
  path : string;
  max_bytes : int;
  keep : int;
  mutable fd : Unix.file_descr;
  mutable size : int;
  mutable closed : bool;
}

let write_exact fd s =
  let buf = Bytes.of_string s in
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then
      match Unix.write fd buf pos (len - pos) with
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

let open_fresh path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_exact fd header;
  (fd, String.length header)

(* A reopened oplog self-heals: a torn tail (daemon SIGKILLed
   mid-write) is truncated back to the longest valid record prefix so
   subsequent appends stay parseable; a file that is not our container
   at all is moved aside rather than silently destroyed. *)
let open_existing path =
  match A.read_file path with
  | Error _ -> open_fresh path
  | Ok text when String.length text = 0 -> open_fresh path
  | Ok text -> (
      let s = A.salvage_string text in
      match s.A.kind with
      | Some k when k = kind ->
          let valid = s.A.valid_bytes in
          if valid = String.length text then begin
            let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
            (fd, valid)
          end
          else begin
            let fd =
              Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
            in
            write_exact fd (String.sub text 0 valid);
            (fd, valid)
          end
      | _ ->
          (try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ());
          open_fresh path)

let create ~path ?(max_bytes = 4 * 1024 * 1024) ?(keep = 3) () =
  match
    let fd, size =
      if Sys.file_exists path then open_existing path else open_fresh path
    in
    { path; max_bytes = Stdlib.max max_bytes (String.length header + 1); keep; fd; size; closed = false }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "oplog %s: %s" path (Unix.error_message e))
  | exception Sys_error e -> Error (Printf.sprintf "oplog %s: %s" path e)

let rotated t i = Printf.sprintf "%s.%d" t.path i

(* path -> path.1 -> path.2 ... up to [keep] rotated generations. *)
let rotate t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (try Sys.remove (rotated t t.keep) with Sys_error _ -> ());
  for i = t.keep - 1 downto 1 do
    if Sys.file_exists (rotated t i) then
      try Sys.rename (rotated t i) (rotated t (i + 1)) with Sys_error _ -> ()
  done;
  (if t.keep >= 1 then
     try Sys.rename t.path (rotated t 1) with Sys_error _ -> ());
  let fd, size = open_fresh t.path in
  t.fd <- fd;
  t.size <- size

let log t json =
  if not t.closed then begin
    let bytes = A.record_string (record_tag, Json.to_string json) in
    if
      t.size > String.length header
      && t.size + String.length bytes > t.max_bytes
    then rotate t;
    match write_exact t.fd bytes with
    | () -> t.size <- t.size + String.length bytes
    | exception Unix.Unix_error _ -> ()
  end

let event t ~ts_ms ~ev fields =
  log t (Json.Obj (("ts_ms", Json.Int ts_ms) :: ("ev", Json.String ev) :: fields))

let path t = t.path

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Read side (fsck, tests)                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let parse_records ~lenient records =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (tag, payload) :: rest when tag = record_tag -> (
        match Json.of_string payload with
        | Ok j -> go (j :: acc) rest
        | Error e ->
            if lenient then Ok (List.rev acc)
            else Error ("oplog: bad record payload: " ^ e))
    | (tag, _) :: rest ->
        if lenient then go acc rest
        else Error (Printf.sprintf "oplog: unknown record tag %S" tag)
  in
  go [] records

let load path =
  let* k, records = A.read_records path in
  let* () =
    if k = kind then Ok ()
    else Error (Printf.sprintf "oplog: unexpected artifact kind %S" k)
  in
  parse_records ~lenient:false records

(* Longest valid prefix, as raw (tag, payload) records suitable for
   {!rewrite}; the note reports what was lost, [None] when intact. *)
let recover path =
  let* text = A.read_file path in
  if not (A.is_container text) then Error "oplog: not a container"
  else
    let s = A.salvage_string text in
    if s.A.kind <> Some kind then
      Error
        (match s.A.error with
        | Some e -> e
        | None -> "oplog: unexpected artifact kind")
    else
      let rec valid_prefix acc = function
        | (tag, payload) :: rest
          when tag = record_tag && Result.is_ok (Json.of_string payload) ->
            valid_prefix ((tag, payload) :: acc) rest
        | _ -> List.rev acc
      in
      let records = valid_prefix [] s.A.records in
      let note =
        if s.A.error = None && List.length records = List.length s.A.records
        then None
        else
          Some
            (Printf.sprintf "salvaged %d of %d bytes (%d records)%s"
               s.A.valid_bytes s.A.total_bytes (List.length records)
               (match s.A.error with Some e -> ": " ^ e | None -> ""))
      in
      Ok (records, note)

let rewrite path records = A.write_records path ~kind records
