(** A flat registry of named integer counters — the aggregation target
    for hardware-counter totals, censoring tallies, epoch/relocation
    counts and pool statistics. Keys are dotted lowercase paths
    ([counters.l1d_misses], [campaign.completed]); values are integers
    on purpose: everything this system measures is a count or a cycle
    total, and integer aggregation keeps rollups bit-deterministic.

    The snapshot format is one ["key value"] line per counter, sorted by
    key, so two equal registries always serialize to equal bytes. *)

type t

val create : unit -> t

(** [add t k v] accumulates into [k] (missing keys start at 0). Raises
    [Invalid_argument] on malformed keys (anything outside
    [[a-zA-Z0-9._/-]]). *)
val add : t -> string -> int -> unit

val set : t -> string -> int -> unit

(** 0 for missing keys. *)
val get : t -> string -> int

(** Accumulate every counter of [src] into [dst]. *)
val merge_into : dst:t -> t -> unit

(** Key-sorted contents. *)
val to_assoc : t -> (string * int) list

(** The ["key value\n"] lines, key-sorted. *)
val snapshot : t -> string

(** Parse {!snapshot} output back (blank lines ignored). *)
val of_snapshot : string -> (t, string) result
