(** Run-local event recorder: an append-only log with a span stack, the
    thing a single (possibly forked) run writes into while it executes.
    Timestamps are the producer's clock — simulated cycles here — and
    must be monotone; the recorder enforces it, along with the span
    nesting invariants (every [end_span] matches an open span, and a
    stream with unclosed spans cannot be exported).

    The produced events are run-local: lane 0, timestamps starting
    wherever the producer's clock started. {!Trace.add_run} shifts them
    onto a campaign timeline, which is how worker-side streams merge
    deterministically in run order. *)

type t

val create : unit -> t

(** Raise [Invalid_argument] if [now] is behind the latest recorded
    timestamp (all recording functions do). *)
val begin_span : t -> ?cat:string -> ?args:Event.args -> string -> now:int -> unit

(** Close the innermost open span; [args] are appended to the ones given
    at [begin_span]. Raises [Invalid_argument] when no span is open. *)
val end_span : ?args:Event.args -> t -> now:int -> unit

val instant : t -> ?cat:string -> ?args:Event.args -> string -> now:int -> unit
val counter : t -> ?cat:string -> string -> values:(string * int) list -> now:int -> unit

(** Insert pre-built run-local events, timestamps advanced by [offset].
    Does not touch the span stack. *)
val splice : t -> offset:int -> Event.t list -> unit

(** Open spans right now. *)
val depth : t -> int

(** Close every open span at [now] (crash-path convenience). *)
val close : t -> now:int -> unit

(** The recorded stream ordered by start timestamp. Raises
    [Invalid_argument] if any span is still open. *)
val events : t -> Event.t list
