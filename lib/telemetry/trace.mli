(** Campaign-level trace assembler. Run-local event streams (produced
    by {!Runlog}, possibly inside forked workers and shipped back over
    their result pipes) are merged *in run order* onto a virtual
    timeline clocked in simulated cycles:

    - lane 0 is the control lane (calibration, checkpoints, campaign
      bookkeeping);
    - runs are dealt round-robin onto [lanes] virtual worker lanes,
      each with its own cumulative clock.

    The lanes model a deterministic round-robin schedule, NOT the
    physical worker pool: physical scheduling (which fork ran which
    stripe, when) is wall-clock nondeterminism, and baking it into the
    trace would break the system's core guarantee that [--jobs N]
    output is byte-identical to serial. The deterministic trace is
    therefore a pure function of (seed, run count, lanes); what the
    physical pool did is recorded separately as harness events. *)

type t

(** [lanes] virtual worker lanes (default 1 — a single serial
    timeline). Raises [Invalid_argument] when [lanes < 1]. *)
val create : ?lanes:int -> unit -> t

val lanes : t -> int

(** The lane run [run] lands on: [1 + run mod lanes]. *)
val lane_for : t -> run:int -> int

(** Current virtual time: the latest point any lane has reached. *)
val now : t -> int

(** Merge one run's run-local events: shifted onto the run's lane at
    that lane's current clock, which then advances by the stream's
    {!Event.extent}. Call in run order for deterministic output. *)
val add_run : t -> run:int -> Event.t list -> unit

(** Control-lane point event at virtual time {!now}. *)
val control_instant : t -> ?cat:string -> ?args:Event.args -> string -> unit

val control_counter : t -> ?cat:string -> string -> values:(string * int) list -> unit

(** The deterministic stream, in insertion order. *)
val events : t -> Event.t list

(** Nondeterministic facts about the physical execution (worker
    spawn/death/respawn, reorder buffering), wall-clocked in
    microseconds since trace creation on lane {!harness_lane}. Never
    mixed into {!events}. *)
val harness_instant : t -> ?cat:string -> ?args:Event.args -> string -> unit

val harness_events : t -> Event.t list
val harness_lane : int
