type t = (string, int) Hashtbl.t

let create () : t = Hashtbl.create 64

let valid_key k =
  String.length k > 0
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '/' -> true
         | _ -> false)
       k

let check_key k =
  if not (valid_key k) then invalid_arg (Printf.sprintf "Metrics: bad key %S" k)

let set t k v =
  check_key k;
  Hashtbl.replace t k v

let get t k = Option.value ~default:0 (Hashtbl.find_opt t k)

let add t k v =
  check_key k;
  Hashtbl.replace t k (get t k + v)

let merge_into ~dst src = Hashtbl.iter (fun k v -> add dst k v) src

let to_assoc t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" k v))
    (to_assoc t);
  Buffer.contents buf

let of_snapshot s =
  let parse_line acc line =
    Result.bind acc (fun m ->
        match String.trim line with
        | "" -> Ok m
        | line -> (
            match String.index_opt line ' ' with
            | None -> Error (Printf.sprintf "metrics: bad line %S" line)
            | Some i -> (
                let k = String.sub line 0 i in
                let v = String.sub line (i + 1) (String.length line - i - 1) in
                match int_of_string_opt (String.trim v) with
                | Some v when valid_key k ->
                    Hashtbl.replace m k v;
                    Ok m
                | _ -> Error (Printf.sprintf "metrics: bad line %S" line))))
  in
  List.fold_left parse_line (Ok (create ())) (String.split_on_char '\n' s)
