module Shapiro = Stz_stats.Shapiro
module Power = Stz_stats.Power
module Dist = Stz_stats.Dist

type config = {
  window : int;
  baseline : int;
  min_runs : int;
  target_rel_ci : float;
  target_effect : float;
  target_power : float;
  alpha : float;
  cusum_k : float;
  cusum_h : float;
}

let default_config =
  {
    window = 30;
    baseline = 8;
    min_runs = 5;
    target_rel_ci = 0.02;
    target_effect = 0.5;
    target_power = 0.8;
    alpha = 0.05;
    cusum_k = 0.5;
    cusum_h = 5.0;
  }

type verdict = Insufficient_data | Keep_going | Enough_runs | Drift_suspected

let verdict_to_string = function
  | Insufficient_data -> "insufficient-data"
  | Keep_going -> "keep-going"
  | Enough_runs -> "enough-runs"
  | Drift_suspected -> "drift-suspected"

let verdict_of_string = function
  | "insufficient-data" -> Some Insufficient_data
  | "keep-going" -> Some Keep_going
  | "enough-runs" -> Some Enough_runs
  | "drift-suspected" -> Some Drift_suspected
  | _ -> None

type snapshot = {
  observed : int;
  completed : int;
  censored : int;
  mean : float;
  std_dev : float;
  cv : float;
  skewness : float;
  kurtosis : float;
  q1 : float;
  median : float;
  q3 : float;
  ci_low : float;
  ci_high : float;
  rel_half_width : float;
  window_n : int;
  shapiro : (float * float) option;
  achieved_power : float;
  detectable_effect : float;
  cycles_drift : bool;
  censor_drift : bool;
  verdict : verdict;
}

type t = {
  cfg : config;
  moments : Welford.t;  (* seconds of completed runs *)
  q1 : P2.t;
  median : P2.t;
  q3 : P2.t;
  recent : Window.t;  (* seconds, sliding normality window *)
  cycles_cusum : Cusum.t;
  censor_cusum : Cusum.t;
  cycles_baseline : Welford.t;  (* first [baseline] completed runs *)
  mutable observed : int;
  mutable censored : int;
  mutable censored_in_baseline : int;
}

let create ?(config = default_config) () =
  if config.window < 3 then invalid_arg "Monitor.create: window must be >= 3";
  if config.baseline < 2 then invalid_arg "Monitor.create: baseline must be >= 2";
  {
    cfg = config;
    moments = Welford.create ();
    q1 = P2.create ~p:0.25;
    median = P2.create ~p:0.5;
    q3 = P2.create ~p:0.75;
    recent = Window.create ~size:config.window;
    cycles_cusum = Cusum.create ~k:config.cusum_k ~h:config.cusum_h ();
    censor_cusum = Cusum.create ~k:config.cusum_k ~h:config.cusum_h ();
    cycles_baseline = Welford.create ();
    observed = 0;
    censored = 0;
    censored_in_baseline = 0;
  }

let config t = t.cfg

(* The censoring detector watches the 0/1 censoring indicator of every
   run; its reference is the (Laplace-smoothed) censoring rate of the
   first [baseline] runs, so a campaign that was clean during baseline
   alarms quickly once faults start landing — and one that was faulty
   all along does not alarm just for staying faulty. *)
let freeze_censor_reference t =
  let n = float_of_int t.cfg.baseline in
  let p = (float_of_int t.censored_in_baseline +. 1.0) /. (n +. 2.0) in
  Cusum.set_reference t.censor_cusum ~mean:p ~sd:(sqrt (p *. (1.0 -. p)))

let observe_indicator t v =
  t.observed <- t.observed + 1;
  if t.observed <= t.cfg.baseline then begin
    if v then t.censored_in_baseline <- t.censored_in_baseline + 1;
    if t.observed = t.cfg.baseline then freeze_censor_reference t
  end
  else Cusum.observe t.censor_cusum (if v then 1.0 else 0.0)

let observe_completed t ~cycles ~seconds =
  observe_indicator t false;
  Welford.add t.moments seconds;
  P2.add t.q1 seconds;
  P2.add t.median seconds;
  P2.add t.q3 seconds;
  Window.add t.recent seconds;
  let c = float_of_int cycles in
  if Welford.count t.cycles_baseline < t.cfg.baseline then begin
    Welford.add t.cycles_baseline c;
    if Welford.count t.cycles_baseline = t.cfg.baseline then begin
      (* A sample sd from [baseline] (~8) runs underestimates the true
         spread often enough to false-alarm on a steady stream; widen
         the reference by an upper guard on the sampling error of the
         sd (se(s)/s ~ 1/sqrt(2(n-1)), taken at two standard errors).
         Real drifts are many reference-sds wide, so detection power is
         barely affected. *)
      let b = float_of_int t.cfg.baseline in
      let inflate = 1.0 +. (2.0 /. sqrt (2.0 *. (b -. 1.0))) in
      Cusum.set_reference t.cycles_cusum
        ~mean:(Welford.mean t.cycles_baseline)
        ~sd:(Welford.std_dev t.cycles_baseline *. inflate)
    end
  end
  else Cusum.observe t.cycles_cusum c

let observe_censored t =
  observe_indicator t true;
  t.censored <- t.censored + 1

let window_shapiro t =
  let xs = Window.contents t.recent in
  let n = Array.length xs in
  if n < 3 || n > 5000 then None
  else
    let lo = Array.fold_left Stdlib.min xs.(0) xs in
    let hi = Array.fold_left Stdlib.max xs.(0) xs in
    if hi <= lo then None
    else
      let r = Shapiro.test xs in
      Some (r.Shapiro.w, r.Shapiro.p_value)

let snapshot t =
  let completed = Welford.count t.moments in
  let mean = Welford.mean t.moments in
  let sd = Welford.std_dev t.moments in
  let ci_low, ci_high, rel_half =
    if completed < 2 then (mean, mean, 0.0)
    else begin
      let df = float_of_int (completed - 1) in
      let crit = Dist.Student_t.quantile ~df (1.0 -. (t.cfg.alpha /. 2.0)) in
      let half = crit *. sd /. sqrt (float_of_int completed) in
      ( mean -. half,
        mean +. half,
        if mean = 0.0 then 0.0 else half /. abs_float mean )
    end
  in
  let achieved_power =
    if completed < 2 then 0.0
    else
      Power.two_sample ~effect:t.cfg.target_effect ~n:completed
        ~alpha:t.cfg.alpha ()
  in
  let detectable_effect =
    if completed < 2 then 0.0
    else
      Power.detectable_effect ~n:completed ~power:t.cfg.target_power
        ~alpha:t.cfg.alpha ()
  in
  let cycles_drift = Cusum.alarmed t.cycles_cusum in
  let censor_drift = Cusum.alarmed t.censor_cusum in
  let verdict =
    if completed < t.cfg.min_runs then Insufficient_data
    else if cycles_drift || censor_drift then Drift_suspected
    else if
      rel_half <= t.cfg.target_rel_ci && achieved_power >= t.cfg.target_power
    then Enough_runs
    else Keep_going
  in
  {
    observed = t.observed;
    completed;
    censored = t.censored;
    mean;
    std_dev = sd;
    cv = Welford.cv t.moments;
    skewness = Welford.skewness t.moments;
    kurtosis = Welford.kurtosis t.moments;
    q1 = P2.quantile t.q1;
    median = P2.quantile t.median;
    q3 = P2.quantile t.q3;
    ci_low;
    ci_high;
    rel_half_width = rel_half;
    window_n = Array.length (Window.contents t.recent);
    shapiro = window_shapiro t;
    achieved_power;
    detectable_effect;
    cycles_drift;
    censor_drift;
    verdict;
  }

let advise t = (snapshot t).verdict

let status_line t =
  let s = snapshot t in
  Printf.sprintf
    "monitor: n=%d/%d (%d censored) mean=%.6fs cv=%.4f ci±%.2f%% %s \
     power(d=%.2f)=%.2f detect d=%.2f%s verdict=%s"
    s.completed s.observed s.censored s.mean s.cv
    (100.0 *. s.rel_half_width)
    (match s.shapiro with
    | Some (_, p) -> Printf.sprintf "SW[%d] p=%.3f" s.window_n p
    | None -> Printf.sprintf "SW[%d] -" s.window_n)
    t.cfg.target_effect s.achieved_power s.detectable_effect
    ((if s.cycles_drift then " CYCLES-DRIFT" else "")
    ^ if s.censor_drift then " CENSOR-DRIFT" else "")
    (verdict_to_string s.verdict)
