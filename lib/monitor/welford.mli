(** Streaming central moments (Welford / Pébay single-pass update):
    mean, unbiased variance, skewness and excess kurtosis of a sample
    observed one value at a time, in O(1) memory. Every statistic is
    total: undefined cases (too few samples, zero spread) return 0
    rather than NaN, so a live monitor line never prints garbage.

    The update is a fixed sequence of float operations per observation,
    so two monitors fed the same values in the same order hold
    bit-identical state — the property that makes monitor output
    byte-identical across worker counts. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

(** 0 before the first observation. *)
val mean : t -> float

(** Unbiased (n-1) sample variance; 0 when n < 2. *)
val variance : t -> float

val std_dev : t -> float

(** Coefficient of variation sd/|mean|; 0 when the mean is 0. *)
val cv : t -> float

(** Sample skewness (g1); 0 when n < 3 or the spread is 0. *)
val skewness : t -> float

(** Excess kurtosis (g2); 0 when n < 4 or the spread is 0. *)
val kurtosis : t -> float

(** Smallest / largest observation; 0 before the first. *)
val min : t -> float

val max : t -> float
