type t = {
  k : float;
  h : float;
  mutable reference : (float * float) option;  (* mean, sd *)
  mutable pos : float;
  mutable neg : float;
  mutable alarmed : bool;
  mutable observations : int;
}

let create ?(k = 0.5) ?(h = 5.0) () =
  { k; h; reference = None; pos = 0.0; neg = 0.0; alarmed = false; observations = 0 }

let set_reference t ~mean ~sd = t.reference <- Some (mean, sd)
let has_reference t = t.reference <> None

let observe t x =
  t.observations <- t.observations + 1;
  match t.reference with
  | None -> ()
  | Some (mean, sd) ->
      (* An all-equal baseline (sd = 0): score any deviation past the
         threshold-plus-slack so a single drifted observation alarms. *)
      let z =
        if sd > 0.0 then (x -. mean) /. sd
        else if x = mean then 0.0
        else if x > mean then t.h +. t.k +. 1.0
        else -.(t.h +. t.k +. 1.0)
      in
      t.pos <- Stdlib.max 0.0 (t.pos +. z -. t.k);
      t.neg <- Stdlib.max 0.0 (t.neg -. z -. t.k);
      if t.pos > t.h || t.neg > t.h then t.alarmed <- true

let pos t = t.pos
let neg t = t.neg
let alarmed t = t.alarmed
let observations t = t.observations
