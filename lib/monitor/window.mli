(** Fixed-capacity sliding window over a stream: the most recent [size]
    observations, in arrival order. Backs the monitor's windowed
    Shapiro–Wilk normality tracking — normality of the *recent* runs,
    not the whole history, so a campaign that drifts out of the
    Gaussian regime is seen while it is still running. *)

type t

(** Raises [Invalid_argument] when [size < 1]. *)
val create : size:int -> t

val size : t -> int
val add : t -> float -> unit

(** Observations currently in the window, oldest first. Length
    [min count size]. *)
val contents : t -> float array

(** Total observations ever added (not just the retained window). *)
val count : t -> int
