(* Pébay's single-pass update of the first four central moments. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable m3 : float;
  mutable m4 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; m3 = 0.0; m4 = 0.0; min = 0.0; max = 0.0 }

let add t x =
  let n1 = float_of_int t.n in
  t.n <- t.n + 1;
  let n = float_of_int t.n in
  let delta = x -. t.mean in
  let delta_n = delta /. n in
  let delta_n2 = delta_n *. delta_n in
  let term1 = delta *. delta_n *. n1 in
  t.mean <- t.mean +. delta_n;
  t.m4 <-
    t.m4
    +. (term1 *. delta_n2 *. ((n *. n) -. (3.0 *. n) +. 3.0))
    +. (6.0 *. delta_n2 *. t.m2)
    -. (4.0 *. delta_n *. t.m3);
  t.m3 <- t.m3 +. (term1 *. delta_n *. (n -. 2.0)) -. (3.0 *. delta_n *. t.m2);
  t.m2 <- t.m2 +. term1;
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let count t = t.n
let mean t = t.mean

let variance t =
  if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let std_dev t = sqrt (variance t)

let cv t = if t.mean = 0.0 then 0.0 else std_dev t /. abs_float t.mean

let skewness t =
  if t.n < 3 || t.m2 <= 0.0 then 0.0
  else sqrt (float_of_int t.n) *. t.m3 /. (t.m2 ** 1.5)

let kurtosis t =
  if t.n < 4 || t.m2 <= 0.0 then 0.0
  else (float_of_int t.n *. t.m4 /. (t.m2 *. t.m2)) -. 3.0

let min t = t.min
let max t = t.max
