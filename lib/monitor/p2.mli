(** The P² streaming quantile estimator (Jain & Chlamtac, CACM 1985):
    one quantile tracked in O(1) memory with five markers whose heights
    converge on the true order statistic via piecewise-parabolic
    adjustment. Exact (a sorted-sample quantile) while fewer than five
    observations have been seen.

    Deterministic: same observations in the same order, same estimate
    to the last bit. *)

type t

(** [create ~p] tracks the [p]-quantile, [p] in (0, 1). Raises
    [Invalid_argument] otherwise. *)
val create : p:float -> t

val add : t -> float -> unit
val count : t -> int

(** Current estimate; 0 before the first observation. *)
val quantile : t -> float
