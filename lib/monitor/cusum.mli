(** Two-sided CUSUM drift detector (Page, 1954). Observations are
    standardized against a frozen reference mean/sd and accumulated
    into upper and lower sums with slack [k]; either sum crossing the
    decision threshold [h] raises a persistent alarm. The monitor runs
    one detector on completed-run cycle counts (layout or budget drift)
    and one on the censored-run indicator (fault-rate drift).

    Until {!set_reference} is called, observations are buffered only as
    a count; they accumulate nothing — a detector with no baseline has
    nothing to detect drift from. *)

type t

(** [k] slack and [h] threshold, both in reference-sd units (defaults
    0.5 and 5.0 — the conventional "detect a 1-sd shift" tuning). *)
val create : ?k:float -> ?h:float -> unit -> t

(** Freeze the reference. A non-positive [sd] means an all-equal
    baseline: any later deviation from [mean] is scored at the full
    threshold, so a single drifted observation alarms. *)
val set_reference : t -> mean:float -> sd:float -> unit

val has_reference : t -> bool
val observe : t -> float -> unit

(** Upper / lower cumulative sums, in sd units. *)
val pos : t -> float

val neg : t -> float

(** True once either sum has crossed [h]; never resets. *)
val alarmed : t -> bool

val observations : t -> int
