type t = {
  buf : float array;
  mutable count : int;  (* total ever added *)
}

let create ~size =
  if size < 1 then invalid_arg "Window.create: size must be >= 1";
  { buf = Array.make size 0.0; count = 0 }

let size t = Array.length t.buf
let count t = t.count

let add t x =
  t.buf.(t.count mod Array.length t.buf) <- x;
  t.count <- t.count + 1

let contents t =
  let cap = Array.length t.buf in
  let n = Stdlib.min t.count cap in
  let start = if t.count <= cap then 0 else t.count mod cap in
  Array.init n (fun i -> t.buf.((start + i) mod cap))
