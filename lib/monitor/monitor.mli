(** Live statistical health of a running campaign.

    STABILIZER's argument is conditional: re-randomization makes run
    times Gaussian *so that* parametric statistics are sound. The
    monitor checks that condition while the campaign is still running,
    instead of after the CSV is written: streaming moments
    ({!Welford}), streaming quartiles ({!P2}), Shapiro–Wilk normality
    over a sliding window of the most recent runs ({!Window}), and
    CUSUM drift detectors ({!Cusum}) on the completed-run cycle counts
    and on the censored-run rate.

    On top of the estimators sits a sequential stopping advisor: after
    every observed run the monitor can say whether the data already
    collected supports the planned analysis ({!Enough_runs}), needs
    more runs ({!Keep_going}), is too small to judge
    ({!Insufficient_data}) — or whether the process being measured has
    drifted mid-campaign ({!Drift_suspected}), in which case more runs
    make the sample worse, not better.

    Determinism: a monitor is a pure fold over the observation
    sequence. Feed it runs in merged run order (what
    [Supervisor.run_campaign] does) and its state, snapshots and status
    lines are byte-identical for any worker count, and a killed+resumed
    campaign reaches the same final verdict as an uninterrupted one. *)

type config = {
  window : int;  (** sliding normality window, runs (default 30) *)
  baseline : int;
      (** observations before the CUSUM references freeze (default 8) *)
  min_runs : int;
      (** completed runs below which the verdict is
          {!Insufficient_data} (default 5) *)
  target_rel_ci : float;
      (** stopping target: CI half-width / mean (default 0.02) *)
  target_effect : float;
      (** standardized effect the analysis must be able to detect
          (default 0.5, Cohen's "medium") *)
  target_power : float;  (** required power at that effect (default 0.8) *)
  alpha : float;  (** CI level = 1 - alpha; normality alpha (default 0.05) *)
  cusum_k : float;  (** CUSUM slack, sd units (default 0.5) *)
  cusum_h : float;  (** CUSUM threshold, sd units (default 5.0) *)
}

val default_config : config

type verdict =
  | Insufficient_data  (** too few completed runs to say anything *)
  | Keep_going  (** precision or power target not yet met *)
  | Enough_runs  (** CI half-width and power targets both met *)
  | Drift_suspected
      (** a CUSUM alarm: the mean cycles or the censoring rate shifted
          mid-campaign — suspect layout drift or environment change *)

val verdict_to_string : verdict -> string
val verdict_of_string : string -> verdict option

type snapshot = {
  observed : int;  (** all runs seen, completed + censored *)
  completed : int;
  censored : int;
  mean : float;  (** seconds, streaming *)
  std_dev : float;
  cv : float;
  skewness : float;
  kurtosis : float;
  q1 : float;  (** P² streaming quartiles of seconds *)
  median : float;
  q3 : float;
  ci_low : float;  (** t-based CI for the mean at 1 - alpha *)
  ci_high : float;
  rel_half_width : float;  (** CI half-width / mean; 0 when mean = 0 *)
  window_n : int;  (** runs inside the normality window *)
  shapiro : (float * float) option;
      (** (W, p) over the window; [None] when the window is too small
          or degenerate (all-equal) *)
  achieved_power : float;
      (** power of a two-sample t-test at [target_effect] with the
          completed n per group *)
  detectable_effect : float;
      (** smallest d detectable at [target_power] with the completed n *)
  cycles_drift : bool;  (** CUSUM alarm on completed-run cycles *)
  censor_drift : bool;  (** CUSUM alarm on the censored-run rate *)
  verdict : verdict;
}

type t

val create : ?config:config -> unit -> t
val config : t -> config

(** Feed one run, in merged run order. *)
val observe_completed : t -> cycles:int -> seconds:float -> unit

val observe_censored : t -> unit

val snapshot : t -> snapshot

(** The current stopping advice (same as [(snapshot t).verdict]). *)
val advise : t -> verdict

(** One fixed-format status line, e.g.
    ["monitor: n=24/30 (1 censored) mean=0.031250s cv=0.0214 ci±1.12% \
      SW[24] p=0.412 power(d=0.50)=0.39 detect d=0.83 verdict=keep-going"].
    Deterministic: a pure function of the observation sequence. *)
val status_line : t -> string
