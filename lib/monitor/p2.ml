type t = {
  p : float;
  heights : float array;  (* marker heights q0..q4 *)
  pos : float array;  (* marker positions n0..n4, kept as floats *)
  desired : float array;  (* desired positions n'0..n'4 *)
  incr : float array;  (* desired-position increments dn'0..dn'4 *)
  mutable n : int;
}

let create ~p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "P2.create: p must be in (0,1)";
  {
    p;
    heights = Array.make 5 0.0;
    pos = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
    desired = [| 1.0; 1.0 +. (2.0 *. p); 1.0 +. (4.0 *. p); 3.0 +. (2.0 *. p); 5.0 |];
    incr = [| 0.0; p /. 2.0; p; (1.0 +. p) /. 2.0; 1.0 |];
    n = 0;
  }

let count t = t.n

(* Piecewise-parabolic (P²) height adjustment of marker [i] in
   direction [d] (+1 / -1). Falls back to linear when the parabolic
   prediction would leave the neighbours' bracket. *)
let adjust t i d =
  let q = t.heights and n = t.pos in
  let d_f = float_of_int d in
  let parab =
    q.(i)
    +. d_f
       /. (n.(i + 1) -. n.(i - 1))
       *. (((n.(i) -. n.(i - 1) +. d_f) *. (q.(i + 1) -. q.(i)) /. (n.(i + 1) -. n.(i)))
          +. ((n.(i + 1) -. n.(i) -. d_f) *. (q.(i) -. q.(i - 1)) /. (n.(i) -. n.(i - 1))))
  in
  (if q.(i - 1) < parab && parab < q.(i + 1) then q.(i) <- parab
   else
     (* Linear fallback toward the neighbour in direction d. *)
     q.(i) <- q.(i) +. (d_f *. (q.(i + d) -. q.(i)) /. (n.(i + d) -. n.(i))));
  n.(i) <- n.(i) +. d_f

let add t x =
  t.n <- t.n + 1;
  if t.n <= 5 then begin
    (* Initialization: collect the first five, kept sorted. *)
    t.heights.(t.n - 1) <- x;
    let i = ref (t.n - 1) in
    while !i > 0 && t.heights.(!i - 1) > t.heights.(!i) do
      let tmp = t.heights.(!i - 1) in
      t.heights.(!i - 1) <- t.heights.(!i);
      t.heights.(!i) <- tmp;
      decr i
    done
  end
  else begin
    let q = t.heights and n = t.pos in
    let k =
      if x < q.(0) then begin
        q.(0) <- x;
        0
      end
      else if x < q.(1) then 0
      else if x < q.(2) then 1
      else if x < q.(3) then 2
      else if x <= q.(4) then 3
      else begin
        q.(4) <- x;
        3
      end
    in
    for i = k + 1 to 4 do
      n.(i) <- n.(i) +. 1.0
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.incr.(i)
    done;
    for i = 1 to 3 do
      let d = t.desired.(i) -. n.(i) in
      if
        (d >= 1.0 && n.(i + 1) -. n.(i) > 1.0)
        || (d <= -1.0 && n.(i - 1) -. n.(i) < -1.0)
      then adjust t i (if d >= 1.0 then 1 else -1)
    done
  end

let quantile t =
  if t.n = 0 then 0.0
  else if t.n <= 5 then begin
    (* Exact quantile of the sorted prefix (nearest-rank with the same
       convention the markers converge to). *)
    let sorted = Array.sub t.heights 0 t.n in
    let idx =
      let r = t.p *. float_of_int (t.n - 1) in
      int_of_float (Float.round r)
    in
    sorted.(Stdlib.max 0 (Stdlib.min (t.n - 1) idx))
  end
  else t.heights.(2)
