(** Fault taxonomy and injection profiles. A profile assigns each fault
    class an independent per-run arming probability; the {!Injector}
    draws arming decisions deterministically from the run seed, so a
    faulty run is exactly reproducible from its seed — the property the
    supervisor's quarantine list and checkpoint/resume rely on. *)

type fault_class =
  | Fuel_starvation  (** run aborted by [Interp.Fuel_exhausted] *)
  | Depth_blowout  (** run aborted by [Interp.Call_depth_exceeded] *)
  | Alloc_failure  (** malloc failed (injected or genuine arena OOM) *)
  | Preemption_spike
      (** OS-preemption-like cycle inflation; the run completes but may
          blow the supervisor's cycle budget *)
  | Seed_poisoning
      (** a layout draw that silently corrupts the computation; detected
          only by comparing the result against the reference value *)
  | Unknown_trap  (** any other exception escaping a run *)

val all_classes : fault_class list
val class_to_string : fault_class -> string
val class_of_string : string -> fault_class option

(** Raised by the injector's wrapped [malloc] when an allocation
    failure fault fires. *)
exception Injected_oom

type profile = {
  fuel_starvation : float;  (** per-run arming probability, [0,1] *)
  depth_blowout : float;
  alloc_failure : float;
  preemption_spike : float;
  seed_poisoning : float;
  wedge : float;
      (** probability the run wedges — spins forever at its first
          function entry without trapping or finishing. A wedged run
          can only be survived by the parallel pool's hung-worker
          watchdog, which SIGKILLs the worker and censors the run as
          [Worker_hung]; the supervisor therefore refuses wedge-armed
          profiles below [jobs >= 2]. Not part of any preset. *)
  fuel_fraction : float;
      (** fuel left to a starved run, as a fraction of its limit *)
  starved_depth : int;  (** call-depth limit under a depth blowout *)
  oom_after : int;  (** allocations served before the injected OOM *)
  spike_cycles : int;  (** magnitude of one preemption spike *)
  spike_rate : float;  (** per-function-entry spike probability *)
}

(** No faults; the identity profile. *)
val none : profile

(** ~10% of runs fail or are perturbed; the acceptance-test profile. *)
val light : profile

(** Every class armed often; stress profile for the selftest. *)
val heavy : profile

(** [chaos] arms every fault class on every run. *)
val chaos : profile

val named : (string * profile) list

(** Parse ["none"], ["light"], ["heavy"], ["chaos"], or a
    comma-separated [key=prob] list over keys [fuel], [depth], [oom],
    [preempt], [poison] and [wedge] (e.g. ["fuel=0.1,oom=0.05"]),
    starting from {!none}. *)
val profile_of_string : string -> (profile, string) result

(** Stable fingerprint of a profile, stored in checkpoints so a resumed
    campaign refuses to continue under different fault assumptions. *)
val fingerprint : profile -> string
