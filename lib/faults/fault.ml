type fault_class =
  | Fuel_starvation
  | Depth_blowout
  | Alloc_failure
  | Preemption_spike
  | Seed_poisoning
  | Unknown_trap

let all_classes =
  [
    Fuel_starvation; Depth_blowout; Alloc_failure; Preemption_spike;
    Seed_poisoning; Unknown_trap;
  ]

let class_to_string = function
  | Fuel_starvation -> "fuel-starvation"
  | Depth_blowout -> "depth-blowout"
  | Alloc_failure -> "alloc-failure"
  | Preemption_spike -> "preemption-spike"
  | Seed_poisoning -> "seed-poisoning"
  | Unknown_trap -> "unknown-trap"

let class_of_string s =
  List.find_opt (fun c -> class_to_string c = s) all_classes

exception Injected_oom

type profile = {
  fuel_starvation : float;
  depth_blowout : float;
  alloc_failure : float;
  preemption_spike : float;
  seed_poisoning : float;
  wedge : float;
  fuel_fraction : float;
  starved_depth : int;
  oom_after : int;
  spike_cycles : int;
  spike_rate : float;
}

let none =
  {
    fuel_starvation = 0.0;
    depth_blowout = 0.0;
    alloc_failure = 0.0;
    preemption_spike = 0.0;
    seed_poisoning = 0.0;
    wedge = 0.0;
    fuel_fraction = 0.001;
    starved_depth = 2;
    oom_after = 4;
    spike_cycles = 25_000;
    spike_rate = 0.02;
  }

let light =
  {
    none with
    fuel_starvation = 0.04;
    depth_blowout = 0.03;
    alloc_failure = 0.04;
    preemption_spike = 0.08;
    seed_poisoning = 0.03;
  }

let heavy =
  {
    none with
    fuel_starvation = 0.15;
    depth_blowout = 0.10;
    alloc_failure = 0.15;
    preemption_spike = 0.25;
    seed_poisoning = 0.10;
  }

let chaos =
  {
    none with
    fuel_starvation = 1.0;
    depth_blowout = 1.0;
    alloc_failure = 1.0;
    preemption_spike = 1.0;
    seed_poisoning = 1.0;
  }

let named =
  [ ("none", none); ("light", light); ("heavy", heavy); ("chaos", chaos) ]

let profile_of_string s =
  match List.assoc_opt s named with
  | Some p -> Ok p
  | None ->
      let parts = String.split_on_char ',' s in
      List.fold_left
        (fun acc part ->
          Result.bind acc (fun p ->
              match String.split_on_char '=' (String.trim part) with
              | [ key; v ] -> (
                  match float_of_string_opt v with
                  | None -> Error (Printf.sprintf "bad probability %S" v)
                  | Some f when f < 0.0 || f > 1.0 ->
                      Error (Printf.sprintf "probability %g outside [0,1]" f)
                  | Some f -> (
                      match key with
                      | "fuel" -> Ok { p with fuel_starvation = f }
                      | "depth" -> Ok { p with depth_blowout = f }
                      | "oom" -> Ok { p with alloc_failure = f }
                      | "preempt" -> Ok { p with preemption_spike = f }
                      | "poison" -> Ok { p with seed_poisoning = f }
                      | "wedge" -> Ok { p with wedge = f }
                      | _ ->
                          Error
                            (Printf.sprintf
                               "unknown fault key %S (fuel, depth, oom, \
                                preempt, poison, wedge)"
                               key)))
              | _ ->
                  Error
                    (Printf.sprintf
                       "bad fault spec %S; want a preset or key=prob list" part)))
        (Ok none) parts

let fingerprint p =
  Printf.sprintf
    "fuel=%g,depth=%g,oom=%g,preempt=%g,poison=%g,wedge=%g,ff=%g,sd=%d,oa=%d,sc=%d,sr=%g"
    p.fuel_starvation p.depth_blowout p.alloc_failure p.preemption_spike
    p.seed_poisoning p.wedge p.fuel_fraction p.starved_depth p.oom_after
    p.spike_cycles p.spike_rate
