module Interp = Stz_vm.Interp
module Hierarchy = Stz_machine.Hierarchy
module Splitmix = Stz_prng.Splitmix

type plan = {
  armed : Fault.fault_class list;
  wedged : bool;
  limits : Interp.limits;
  env_wrap : Interp.env -> Interp.env;
  machine_factory : (unit -> Hierarchy.t) option;
}

(* Salt separating the injector's random stream from the layout stream
   the same seed drives inside the runtime. *)
let salt = 0xFA_017_5EEDL

let to_unit_float x = Int64.to_float (Int64.shift_right_logical x 11) *. 0x1p-53

let wrap_alloc_failure ~oom_after env =
  let served = ref 0 in
  {
    env with
    Interp.malloc =
      (fun ~size ->
        if !served >= oom_after then raise Fault.Injected_oom;
        incr served;
        env.Interp.malloc ~size);
  }

(* Seed poisoning: after the first allocation every malloc returns the
   same block, and after the first call every frame reports the same
   base, so heap objects and stack frames silently alias and overwrite
   each other — a wrong *answer*, not a crash, detectable only against
   the reference value. Frees become no-ops because the base allocator
   never saw the aliased addresses; the real frame_push/pop still run so
   the stack machinery's own bookkeeping stays balanced. *)
let wrap_seed_poisoning env =
  let heap_alias = ref None in
  let frame_alias = ref None in
  {
    env with
    Interp.malloc =
      (fun ~size ->
        match !heap_alias with
        | Some addr ->
            ignore (Hierarchy.data env.Interp.machine addr);
            addr
        | None ->
            let addr = env.Interp.malloc ~size in
            heap_alias := Some addr;
            addr);
    free = (fun ~addr:_ -> ());
    frame_push =
      (fun ~fid ->
        let real = env.Interp.frame_push ~fid in
        match !frame_alias with
        | Some addr -> addr
        | None ->
            frame_alias := Some real;
            real);
  }

(* A wedged run spins forever at its first function entry: no trap, no
   result, no progress — the worker executing it goes silent and only
   the pool watchdog's SIGKILL ends it. Sleeping in the loop keeps a
   wedged worker from burning a core while it waits to be noticed. *)
let wrap_wedge env =
  {
    env with
    Interp.enter_function =
      (fun ~fid:_ ->
        while true do
          ignore (Unix.select [] [] [] 0.05)
        done;
        assert false);
  }

let wrap_preemption ~rng ~spike_rate ~spike_cycles env =
  {
    env with
    Interp.enter_function =
      (fun ~fid ->
        if to_unit_float (Splitmix.next rng) < spike_rate then
          Hierarchy.charge env.Interp.machine spike_cycles;
        env.Interp.enter_function ~fid);
  }

let preemptive_factory () =
  let cost = Stz_machine.Cost.default in
  let cost =
    {
      cost with
      Stz_machine.Cost.memory =
        cost.Stz_machine.Cost.memory + (cost.Stz_machine.Cost.memory / 4);
    }
  in
  Hierarchy.create ~cost ()

let plan ?machine_factory ~profile ~limits ~seed () =
  let rng = Splitmix.create (Int64.logxor seed salt) in
  let draw prob = to_unit_float (Splitmix.next rng) < prob in
  (* Fixed draw order keeps plans stable as profiles vary. *)
  let fuel = draw profile.Fault.fuel_starvation in
  let depth = draw profile.Fault.depth_blowout in
  let oom = draw profile.Fault.alloc_failure in
  let preempt = draw profile.Fault.preemption_spike in
  let poison = draw profile.Fault.seed_poisoning in
  let wedge = draw profile.Fault.wedge in
  let armed =
    List.filter_map
      (fun (on, c) -> if on then Some c else None)
      [
        (fuel, Fault.Fuel_starvation);
        (depth, Fault.Depth_blowout);
        (oom, Fault.Alloc_failure);
        (preempt, Fault.Preemption_spike);
        (poison, Fault.Seed_poisoning);
      ]
  in
  let limits =
    {
      Interp.max_instructions =
        (if fuel then
           Stdlib.max 1
             (int_of_float
                (profile.Fault.fuel_fraction
                *. float_of_int limits.Interp.max_instructions))
         else limits.Interp.max_instructions);
      max_call_depth =
        (if depth then
           Stdlib.min profile.Fault.starved_depth limits.Interp.max_call_depth
         else limits.Interp.max_call_depth);
    }
  in
  let env_wrap env =
    let env = if oom then wrap_alloc_failure ~oom_after:profile.Fault.oom_after env else env in
    let env = if poison then wrap_seed_poisoning env else env in
    let env =
      if preempt then
        wrap_preemption ~rng ~spike_rate:profile.Fault.spike_rate
          ~spike_cycles:profile.Fault.spike_cycles env
      else env
    in
    if wedge then wrap_wedge env else env
  in
  let machine_factory =
    match (preempt, machine_factory) with
    | true, None -> Some preemptive_factory
    | _, f -> f
  in
  { armed; wedged = wedge; limits; env_wrap; machine_factory }

let armed p cls = List.mem cls p.armed
