(** Seed-deterministic fault injection. [plan ~profile ~limits ~seed]
    draws the run's arming decisions from [seed] (salted, so the draw is
    independent of the layout randomness the same seed drives) and
    returns everything the runtime needs to execute the run under those
    faults: tightened interpreter limits, an [Interp.env] wrapper, and a
    machine factory. The same [(profile, seed)] pair always yields the
    same plan — a faulty run can be replayed bit-for-bit. *)

type plan = {
  armed : Fault.fault_class list;
      (** classes armed for this run, fixed order; empty = clean run *)
  wedged : bool;
      (** the run will spin forever at its first function entry (see
          {!Fault.profile}[.wedge]); not a {!Fault.fault_class} because
          a wedge never traps — it is detected and censored by the
          pool watchdog as [Worker_hung] *)
  limits : Stz_vm.Interp.limits;
      (** caller's limits, tightened by fuel starvation / depth blowout *)
  env_wrap : Stz_vm.Interp.env -> Stz_vm.Interp.env;
      (** injects allocation failures, heap poisoning and preemption
          spikes; identity when nothing is armed *)
  machine_factory : (unit -> Stz_machine.Hierarchy.t) option;
      (** machine with preemption-inflated memory latency when a spike
          fault is armed, otherwise the caller's factory *)
}

val plan :
  ?machine_factory:(unit -> Stz_machine.Hierarchy.t) ->
  profile:Fault.profile ->
  limits:Stz_vm.Interp.limits ->
  seed:int64 ->
  unit ->
  plan

(** [armed plan cls] — is [cls] armed in this plan? *)
val armed : plan -> Fault.fault_class -> bool
