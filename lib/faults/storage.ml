module Splitmix = Stz_prng.Splitmix
module Artifact = Stz_store.Artifact

type profile = {
  torn_write : float;
  bit_flip : float;
  short_write : float;
  rename_dropped : float;
}

let none =
  { torn_write = 0.0; bit_flip = 0.0; short_write = 0.0; rename_dropped = 0.0 }

let light =
  { torn_write = 0.04; bit_flip = 0.03; short_write = 0.03; rename_dropped = 0.05 }

let heavy =
  { torn_write = 0.15; bit_flip = 0.10; short_write = 0.10; rename_dropped = 0.20 }

let chaos =
  { torn_write = 1.0; bit_flip = 1.0; short_write = 1.0; rename_dropped = 1.0 }

let named =
  [ ("none", none); ("light", light); ("heavy", heavy); ("chaos", chaos) ]

let profile_of_string s =
  match List.assoc_opt s named with
  | Some p -> Ok p
  | None ->
      let parts = String.split_on_char ',' s in
      List.fold_left
        (fun acc part ->
          Result.bind acc (fun p ->
              match String.split_on_char '=' (String.trim part) with
              | [ key; v ] -> (
                  match float_of_string_opt v with
                  | None -> Error (Printf.sprintf "bad probability %S" v)
                  | Some f when f < 0.0 || f > 1.0 ->
                      Error (Printf.sprintf "probability %g outside [0,1]" f)
                  | Some f -> (
                      match key with
                      | "torn" -> Ok { p with torn_write = f }
                      | "flip" -> Ok { p with bit_flip = f }
                      | "short" -> Ok { p with short_write = f }
                      | "rename" -> Ok { p with rename_dropped = f }
                      | _ ->
                          Error
                            (Printf.sprintf
                               "unknown storage fault key %S (torn, flip, \
                                short, rename)"
                               key)))
              | _ ->
                  Error
                    (Printf.sprintf
                       "bad storage fault spec %S; want a preset or key=prob \
                        list"
                       part)))
        (Ok none) parts

let fingerprint p =
  Printf.sprintf "torn=%g,flip=%g,short=%g,rename=%g" p.torn_write p.bit_flip
    p.short_write p.rename_dropped

let active p =
  p.torn_write > 0.0 || p.bit_flip > 0.0 || p.short_write > 0.0
  || p.rename_dropped > 0.0

(* Salt separating the storage stream from the run-fault streams the
   same seed may drive elsewhere. *)
let salt = 0x57_0F_A1_7EEDL

let to_unit_float x = Int64.to_float (Int64.shift_right_logical x 11) *. 0x1p-53

let arm ~seed profile =
  let rng = Splitmix.create (Int64.logxor seed salt) in
  let draw prob = to_unit_float (Splitmix.next rng) < prob in
  let draw_int n =
    if n <= 0 then 0
    else Int64.to_int (Int64.rem (Int64.shift_right_logical (Splitmix.next rng) 1) (Int64.of_int n))
  in
  Artifact.set_injector (fun ~path:_ ~len ->
      (* Fixed draw order keeps the damage stream stable as profiles
         vary; offsets are drawn only for the class that fires, so a
         write's fate depends only on its position in the write
         sequence. *)
      let torn = draw profile.torn_write in
      let flip = draw profile.bit_flip in
      let short = draw profile.short_write in
      let rename = draw profile.rename_dropped in
      if torn && len > 0 then Some (Artifact.Torn_write (draw_int len))
      else if flip && len > 0 then Some (Artifact.Bit_flip (draw_int (8 * len)))
      else if short && len > 0 then
        Some (Artifact.Short_write (1 + draw_int len))
      else if rename then Some Artifact.Rename_dropped
      else None)

let disarm () = Artifact.clear_injector ()
