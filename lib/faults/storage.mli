(** Seed-deterministic storage-fault injection at the
    {!Stz_store.Artifact} layer — the durability counterpart of the
    run-level taxonomy in {!Fault}. A profile assigns each storage
    fault class an independent per-write arming probability; {!arm}
    installs an injector whose decisions are drawn from a seeded
    stream, so the same [(profile, seed)] pair corrupts the same writes
    at the same offsets every time. At most one fault fires per write
    (fixed priority: torn, flip, short, rename), mirroring how a single
    crash or media error damages one write once.

    The classes model the four ways a checkpoint/CSV/trace write goes
    wrong in production:

    - {b torn write}: the file is cut at an arbitrary byte [k] — a
      crash mid-write that the artifact layer's rename would normally
      make impossible, forced anyway to exercise recovery;
    - {b bit flip}: one bit of the payload inverted — silent media
      corruption that only a checksum catches;
    - {b short write}: the final bytes dropped — an unchecked short
      [write(2)];
    - {b rename dropped}: the temp file is durable but the rename never
      lands — a crash inside the commit window, leaving the previous
      version of the file. *)

type profile = {
  torn_write : float;  (** per-write arming probability, [0,1] *)
  bit_flip : float;
  short_write : float;
  rename_dropped : float;
}

(** No storage faults. *)
val none : profile

(** A few percent of writes damaged — the recovery-test profile. *)
val light : profile

(** Every class armed often; the crash-recovery CI profile. *)
val heavy : profile

(** Every write damaged. *)
val chaos : profile

val named : (string * profile) list

(** Parse ["none"], ["light"], ["heavy"], ["chaos"], or a
    comma-separated [key=prob] list over keys [torn], [flip], [short]
    and [rename] (e.g. ["torn=0.1,rename=0.05"]), starting from
    {!none}. *)
val profile_of_string : string -> (profile, string) result

(** Stable fingerprint, for logs and reports. *)
val fingerprint : profile -> string

(** Does any class have a nonzero probability? *)
val active : profile -> bool

(** Install the seeded injector into {!Stz_store.Artifact}. Replaces
    any previous injector; {!arm} with {!none} is equivalent to
    {!disarm}. *)
val arm : seed:int64 -> profile -> unit

(** Remove the injector: clean writes from here on. *)
val disarm : unit -> unit
