type fault =
  | Torn_write of int
  | Bit_flip of int
  | Short_write of int
  | Rename_dropped

let injector : (path:string -> len:int -> fault option) option ref = ref None
let set_injector f = injector := Some f
let clear_injector () = injector := None

(* ------------------------------------------------------------------ *)
(* Durable writes                                                      *)
(* ------------------------------------------------------------------ *)

let write_exact fd s =
  let buf = Bytes.of_string s in
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then
      match Unix.write fd buf pos (len - pos) with
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

(* Directory fsync makes the rename itself durable (the file's data is
   durable after its own fsync, but the new directory entry is not).
   Best-effort: some filesystems refuse fsync on a directory fd. *)
let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

(* What actually lands on disk under an injected fault, and whether the
   rename happens. *)
let apply_fault contents = function
  | None -> (contents, true)
  | Some (Torn_write k) ->
      (String.sub contents 0 (Stdlib.min (Stdlib.max 0 k) (String.length contents)), true)
  | Some (Short_write k) ->
      (String.sub contents 0 (Stdlib.max 0 (String.length contents - Stdlib.max 0 k)), true)
  | Some (Bit_flip i) ->
      let b = Bytes.of_string contents in
      let bits = 8 * Bytes.length b in
      if bits > 0 then begin
        let i = ((i mod bits) + bits) mod bits in
        Bytes.set b (i / 8)
          (Char.chr (Char.code (Bytes.get b (i / 8)) lxor (1 lsl (i mod 8))))
      end;
      (Bytes.to_string b, true)
  | Some Rename_dropped -> (contents, false)

let write_file path contents =
  let fault =
    match !injector with
    | None -> None
    | Some f -> f ~path ~len:(String.length contents)
  in
  let damaged, renamed = apply_fault contents fault in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_exact fd damaged;
      Unix.fsync fd);
  (* A dropped rename models a crash between write and rename: the temp
     file stays behind (as it would after a real crash) and the previous
     complete version of [path], if any, survives. *)
  if renamed then begin
    Sys.rename tmp path;
    fsync_dir path
  end

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Ok text
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Record containers                                                   *)
(* ------------------------------------------------------------------ *)

let magic = "%szc-artifact 1"

let is_container text =
  String.length text >= String.length magic
  && String.sub text 0 (String.length magic) = magic

(* The record checksum covers the tag as well as the payload, so a bit
   flip anywhere in a record — header or body — is caught. *)
let record_crc tag payload = Crc32.update (Crc32.update 0l tag) payload

let header_line ~kind = Printf.sprintf "%s %s\n" magic kind

let record_string (tag, payload) =
  Printf.sprintf "@%s %d %s\n%s\n" tag (String.length payload)
    (Crc32.to_hex (record_crc tag payload))
    payload

let container ~kind records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header_line ~kind);
  List.iter (fun r -> Buffer.add_string buf (record_string r)) records;
  Buffer.contents buf

let write_records path ~kind records =
  write_file path (container ~kind records)

type salvage = {
  kind : string option;
  records : (string * string) list;
  valid_bytes : int;
  total_bytes : int;
  error : string option;
}

(* A valid tag or kind token: printable, no spaces (anything else means
   the header bytes themselves are damaged). *)
let token_ok s =
  s <> ""
  && String.for_all
       (fun c -> c > ' ' && Char.code c < 0x7f)
       s

let salvage_string text =
  let total = String.length text in
  let fail ?kind ?(records = []) ~at msg =
    { kind; records = List.rev records; valid_bytes = at; total_bytes = total; error = Some msg }
  in
  (* The line [pos..newline); None when no newline before EOF. *)
  let line_at pos =
    match String.index_from_opt text pos '\n' with
    | Some nl -> Some (String.sub text pos (nl - pos), nl + 1)
    | None -> None
  in
  match line_at 0 with
  | None -> fail ~at:0 "missing or truncated header line"
  | Some (header, body) -> (
      match String.split_on_char ' ' header with
      | [ "%szc-artifact"; "1"; kind ] when token_ok kind ->
          let rec records pos acc =
            if pos >= total then
              {
                kind = Some kind;
                records = List.rev acc;
                valid_bytes = pos;
                total_bytes = total;
                error = None;
              }
            else
              match line_at pos with
              | None ->
                  fail ~kind ~records:acc ~at:pos "truncated record header"
              | Some (rh, payload_start) -> (
                  match String.split_on_char ' ' rh with
                  | [ tag; len; crc ]
                    when String.length tag > 1
                         && tag.[0] = '@'
                         && token_ok (String.sub tag 1 (String.length tag - 1))
                    -> (
                      match (int_of_string_opt len, Crc32.of_hex crc) with
                      | Some len, Some crc when len >= 0 -> (
                          if payload_start + len + 1 > total then
                            fail ~kind ~records:acc ~at:pos
                              "record payload truncated"
                          else
                            let payload =
                              String.sub text payload_start len
                            in
                            let tag =
                              String.sub tag 1 (String.length tag - 1)
                            in
                            if text.[payload_start + len] <> '\n' then
                              fail ~kind ~records:acc ~at:pos
                                "record framing damaged (missing terminator)"
                            else if record_crc tag payload <> crc then
                              fail ~kind ~records:acc ~at:pos
                                "record checksum mismatch"
                            else
                              records
                                (payload_start + len + 1)
                                ((tag, payload) :: acc))
                      | _ ->
                          fail ~kind ~records:acc ~at:pos
                            "unparsable record header")
                  | _ ->
                      fail ~kind ~records:acc ~at:pos
                        "unparsable record header")
          in
          records body []
      | _ -> fail ~at:0 "not an artifact container (bad header)")

let salvage_file path = Result.map salvage_string (read_file path)

let read_records path =
  match salvage_file path with
  | Error e -> Error e
  | Ok { error = Some e; _ } -> Error e
  | Ok { kind = None; _ } -> Error "not an artifact container"
  | Ok { kind = Some kind; records; _ } -> Ok (kind, records)

(* ------------------------------------------------------------------ *)
(* Summed payloads                                                     *)
(* ------------------------------------------------------------------ *)

let sum_path path = path ^ ".sum"

let sum_line contents =
  Printf.sprintf "crc32 %s len %d\n"
    (Crc32.to_hex (Crc32.digest contents))
    (String.length contents)

let write_with_sum path contents =
  write_file path contents;
  write_file (sum_path path) (sum_line contents)

let verify_sum path =
  if not (Sys.file_exists (sum_path path)) then Ok false
  else
    match read_file (sum_path path) with
    | Error e -> Error e
    | Ok sum -> (
        match String.split_on_char ' ' (String.trim sum) with
        | [ "crc32"; crc; "len"; len ] -> (
            match (Crc32.of_hex crc, int_of_string_opt len) with
            | Some crc, Some len -> (
                match read_file path with
                | Error e -> Error e
                | Ok payload ->
                    if String.length payload <> len then
                      Error
                        (Printf.sprintf
                           "length mismatch: %d bytes on disk, %d expected"
                           (String.length payload) len)
                    else if Crc32.digest payload <> crc then
                      Error "checksum mismatch"
                    else Ok true)
            | _ -> Error "malformed checksum sidecar")
        | _ -> Error "malformed checksum sidecar")
