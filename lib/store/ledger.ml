type entry = {
  label : string;
  fingerprint : string;
  base_seed : int64;
  runs : int;
  completed : int;
  censored : int;
  mean : float;
  sd : float;
  min : float;
  max : float;
  skewness : float;
  kurtosis : float;
  detectable_effect : float;
  verdict : string;
}

let kind = "szc-ledger"
let record_tag = "campaign"

(* Line-oriented payload: one "key value" pair per line, fixed order.
   Floats are written as hexadecimal literals so they round-trip
   bit-exactly — the regression decision must be recomputable from the
   ledger alone, on any machine, to the last bit. *)

let float_str x = Printf.sprintf "%h" x

let entry_to_payload e =
  String.concat "\n"
    [
      "label " ^ e.label;
      "fingerprint " ^ e.fingerprint;
      "base_seed " ^ Int64.to_string e.base_seed;
      "runs " ^ string_of_int e.runs;
      "completed " ^ string_of_int e.completed;
      "censored " ^ string_of_int e.censored;
      "mean " ^ float_str e.mean;
      "sd " ^ float_str e.sd;
      "min " ^ float_str e.min;
      "max " ^ float_str e.max;
      "skewness " ^ float_str e.skewness;
      "kurtosis " ^ float_str e.kurtosis;
      "detectable_effect " ^ float_str e.detectable_effect;
      "verdict " ^ e.verdict;
    ]

let entry_of_payload s =
  let fields = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line <> "" then
        match String.index_opt line ' ' with
        | Some i ->
            Hashtbl.replace fields
              (String.sub line 0 i)
              (String.sub line (i + 1) (String.length line - i - 1))
        | None -> Hashtbl.replace fields line "")
    (String.split_on_char '\n' s);
  let ( let* ) = Result.bind in
  let str key =
    match Hashtbl.find_opt fields key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "ledger: missing field %S" key)
  in
  let num key conv =
    let* v = str key in
    match conv v with
    | Some x -> Ok x
    | None | (exception Failure _) ->
        Error (Printf.sprintf "ledger: bad field %S" key)
  in
  let int key = num key int_of_string_opt in
  let i64 key = num key Int64.of_string_opt in
  let flt key = num key float_of_string_opt in
  let* label = str "label" in
  let* fingerprint = str "fingerprint" in
  let* base_seed = i64 "base_seed" in
  let* runs = int "runs" in
  let* completed = int "completed" in
  let* censored = int "censored" in
  let* mean = flt "mean" in
  let* sd = flt "sd" in
  let* min = flt "min" in
  let* max = flt "max" in
  let* skewness = flt "skewness" in
  let* kurtosis = flt "kurtosis" in
  let* detectable_effect = flt "detectable_effect" in
  let* verdict = str "verdict" in
  Ok
    {
      label;
      fingerprint;
      base_seed;
      runs;
      completed;
      censored;
      mean;
      sd;
      min;
      max;
      skewness;
      kurtosis;
      detectable_effect;
      verdict;
    }

let entries_of_records ~lenient records =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (tag, payload) :: rest when tag = record_tag -> (
        match entry_of_payload payload with
        | Ok e -> go (e :: acc) rest
        | Error e -> if lenient then Ok (List.rev acc) else Error e)
    | (tag, _) :: rest ->
        if lenient then go acc rest
        else Error (Printf.sprintf "ledger: unknown record tag %S" tag)
  in
  go [] records

let write path entries =
  Artifact.write_records path ~kind
    (List.map (fun e -> (record_tag, entry_to_payload e)) entries)

let load path =
  match Artifact.read_records path with
  | Error e -> Error e
  | Ok (k, records) ->
      if k <> kind then Error "ledger: unexpected artifact kind"
      else entries_of_records ~lenient:false records

let recover path =
  match Artifact.read_file path with
  | Error e -> Error e
  | Ok text ->
      if not (Artifact.is_container text) then Error "ledger: not a container"
      else
        let s = Artifact.salvage_string text in
        if s.Artifact.kind <> Some kind then
          Error
            (match s.Artifact.error with
            | Some e -> e
            | None -> "ledger: unexpected artifact kind")
        else
          Result.map
            (fun entries ->
              let note =
                match s.Artifact.error with
                | None -> None
                | Some e ->
                    Some
                      (Printf.sprintf "salvaged %d of %d bytes (%d entries): %s"
                         s.Artifact.valid_bytes s.Artifact.total_bytes
                         (List.length entries) e)
              in
              (entries, note))
            (entries_of_records ~lenient:true s.Artifact.records)

let append path e =
  (* A zero-length file is a fresh ledger, not a corrupt one: callers
     (and Filename.temp_file) routinely pre-create the file empty. *)
  let existing =
    if Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 then load path
    else Ok []
  in
  match existing with
  | Error err -> Error err
  | Ok entries ->
      write path (entries @ [ e ]);
      Ok (List.length entries)
