(* Fuzz-campaign ledger: a container of one meta record plus one case
   record per index, appended incrementally with the oplog discipline
   (one unbuffered write(2) per record, torn-tail self-heal on reopen)
   so the file is resumable byte-identically after a SIGKILL. *)

module A = Artifact

let kind = "szc-fuzz"
let meta_tag = "meta"
let case_tag = "case"
let header = A.header_line ~kind

type meta = {
  version : int;
  fuzz_seed : int64;
  count : int;
  rand_runs : int;
  plant : string;
}

type verdict = Clean | Trapped | Fail | Crashed | Hung

type case = {
  index : int;
  case_seed : int64;
  verdict : verdict;
  oracle : string;
  detail : string;
  repro : string;
  repro_instrs : int;
  shrink_steps : int;
  result : int;
  cycles : int;
}

let verdict_to_string = function
  | Clean -> "clean"
  | Trapped -> "trapped"
  | Fail -> "fail"
  | Crashed -> "crashed"
  | Hung -> "hung"

let verdict_of_string = function
  | "clean" -> Some Clean
  | "trapped" -> Some Trapped
  | "fail" -> Some Fail
  | "crashed" -> Some Crashed
  | "hung" -> Some Hung
  | _ -> None

(* Line-oriented "key value" payloads, fixed field order, like the
   history ledger. Values may not contain newlines; free-text fields
   are sanitized on write. *)

let sanitize s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let meta_to_payload m =
  String.concat "\n"
    [
      "version " ^ string_of_int m.version;
      "fuzz_seed " ^ Int64.to_string m.fuzz_seed;
      "count " ^ string_of_int m.count;
      "rand_runs " ^ string_of_int m.rand_runs;
      "plant " ^ sanitize m.plant;
    ]

let case_to_payload c =
  String.concat "\n"
    [
      "index " ^ string_of_int c.index;
      "case_seed " ^ Int64.to_string c.case_seed;
      "verdict " ^ verdict_to_string c.verdict;
      "oracle " ^ sanitize c.oracle;
      "detail " ^ sanitize c.detail;
      "repro " ^ sanitize c.repro;
      "repro_instrs " ^ string_of_int c.repro_instrs;
      "shrink_steps " ^ string_of_int c.shrink_steps;
      "result " ^ string_of_int c.result;
      "cycles " ^ string_of_int c.cycles;
    ]

let fields_of_payload s =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line <> "" then
        match String.index_opt line ' ' with
        | Some i ->
            Hashtbl.replace tbl (String.sub line 0 i)
              (String.sub line (i + 1) (String.length line - i - 1))
        | None -> Hashtbl.replace tbl line "")
    (String.split_on_char '\n' s);
  tbl

let ( let* ) = Result.bind

let field tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "fuzzlog: missing field %S" key)

let num tbl key conv =
  let* v = field tbl key in
  match conv v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "fuzzlog: bad field %S" key)

let meta_of_payload s =
  let tbl = fields_of_payload s in
  let* version = num tbl "version" int_of_string_opt in
  let* fuzz_seed = num tbl "fuzz_seed" Int64.of_string_opt in
  let* count = num tbl "count" int_of_string_opt in
  let* rand_runs = num tbl "rand_runs" int_of_string_opt in
  let* plant = field tbl "plant" in
  Ok { version; fuzz_seed; count; rand_runs; plant }

let case_of_payload s =
  let tbl = fields_of_payload s in
  let* index = num tbl "index" int_of_string_opt in
  let* case_seed = num tbl "case_seed" Int64.of_string_opt in
  let* verdict = num tbl "verdict" verdict_of_string in
  let* oracle = field tbl "oracle" in
  let* detail = field tbl "detail" in
  let* repro = field tbl "repro" in
  let* repro_instrs = num tbl "repro_instrs" int_of_string_opt in
  let* shrink_steps = num tbl "shrink_steps" int_of_string_opt in
  let* result = num tbl "result" int_of_string_opt in
  let* cycles = num tbl "cycles" int_of_string_opt in
  Ok
    {
      index;
      case_seed;
      verdict;
      oracle;
      detail;
      repro;
      repro_instrs;
      shrink_steps;
      result;
      cycles;
    }

(* Strict record-list decode: meta first, then cases. [lenient] stops
   at the first undecodable record instead of failing (salvage may
   have kept a record whose bytes checksum but whose payload predates
   a format change). *)
let decode ~lenient records =
  match records with
  | [] -> Error "fuzzlog: empty container (no meta record)"
  | (tag, payload) :: rest ->
      if tag <> meta_tag then
        Error (Printf.sprintf "fuzzlog: expected %S first, got %S" meta_tag tag)
      else
        let* meta = meta_of_payload payload in
        let rec cases acc = function
          | [] -> Ok (List.rev acc)
          | (tag, payload) :: rest when tag = case_tag -> (
              match case_of_payload payload with
              | Ok c -> cases (c :: acc) rest
              | Error e -> if lenient then Ok (List.rev acc) else Error e)
          | (tag, _) :: rest ->
              if lenient then cases acc rest
              else Error (Printf.sprintf "fuzzlog: unknown record tag %S" tag)
        in
        let* cs = cases [] rest in
        Ok (meta, cs)

(* Only a contiguous index prefix 0..k-1 is trustworthy for resume:
   anything after a gap was appended out of order (impossible in a
   healthy run) and is dropped. *)
let contiguous_prefix cases =
  let rec go next acc = function
    | c :: rest when c.index = next -> go (next + 1) (c :: acc) rest
    | _ -> List.rev acc
  in
  go 0 [] cases

type t = { path : string; mutable fd : Unix.file_descr; mutable closed : bool }

let write_exact fd s =
  let buf = Bytes.of_string s in
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then
      match Unix.write fd buf pos (len - pos) with
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

let meta_record m = A.record_string (meta_tag, meta_to_payload m)
let case_record c = A.record_string (case_tag, case_to_payload c)

let wrap_io path f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "fuzzlog %s: %s" path (Unix.error_message e))
  | exception Sys_error e -> Error (Printf.sprintf "fuzzlog %s: %s" path e)

let create ~path meta =
  wrap_io path (fun () ->
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      write_exact fd header;
      write_exact fd (meta_record meta);
      { path; fd; closed = false })

let meta_matches a b =
  a.version = b.version && a.fuzz_seed = b.fuzz_seed && a.count = b.count
  && a.rand_runs = b.rand_runs && a.plant = b.plant

let resume ~path meta =
  if
    (not (Sys.file_exists path))
    || (Unix.stat path).Unix.st_size = 0
  then Result.map (fun t -> (t, [])) (create ~path meta)
  else
    let* text = A.read_file path in
    let s = A.salvage_string text in
    if s.A.kind <> Some kind then
      Error
        (Printf.sprintf "fuzzlog %s: not a %s container%s" path kind
           (match s.A.error with Some e -> " (" ^ e ^ ")" | None -> ""))
    else
      let* stored, cases = decode ~lenient:true s.A.records in
      if not (meta_matches stored meta) then
        Error
          (Printf.sprintf
             "fuzzlog %s: campaign mismatch (ledger: seed=%Ld count=%d \
              rand_runs=%d plant=%s; requested: seed=%Ld count=%d \
              rand_runs=%d plant=%s)"
             path stored.fuzz_seed stored.count stored.rand_runs stored.plant
             meta.fuzz_seed meta.count meta.rand_runs meta.plant)
      else
        let cases = contiguous_prefix cases in
        (* Rebuild the exact byte prefix an uninterrupted run would
           have at this point — covers torn tails, undecodable-but-
           checksummed records, and out-of-order survivors alike. *)
        let good =
          header ^ meta_record stored
          ^ String.concat "" (List.map case_record cases)
        in
        wrap_io path (fun () ->
            let fd =
              Unix.openfile path
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                0o644
            in
            write_exact fd good;
            ({ path; fd; closed = false }, cases))

let append t c =
  if t.closed then invalid_arg "Fuzzlog.append: closed";
  write_exact t.fd (case_record c)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let load path =
  let* k, records = A.read_records path in
  if k <> kind then Error "fuzzlog: unexpected artifact kind"
  else decode ~lenient:false records

let recover path =
  let* text = A.read_file path in
  if not (A.is_container text) then Error "fuzzlog: not a container"
  else
    let s = A.salvage_string text in
    if s.A.kind <> Some kind then
      Error
        (match s.A.error with
        | Some e -> e
        | None -> "fuzzlog: unexpected artifact kind")
    else
      let* meta, cases = decode ~lenient:true s.A.records in
      let note =
        match s.A.error with
        | None -> None
        | Some e ->
            Some
              (Printf.sprintf "salvaged %d of %d bytes (%d cases): %s"
                 s.A.valid_bytes s.A.total_bytes (List.length cases) e)
      in
      Ok (meta, cases, note)

let rewrite path meta cases =
  A.write_records path ~kind
    ((meta_tag, meta_to_payload meta)
    :: List.map (fun c -> (case_tag, case_to_payload c)) cases)
