(** The fuzz ledger: the durable record of a [szc fuzz] campaign, a
    [%szc-artifact] container of kind ["szc-fuzz"].

    Layout: the container header, one [meta] record pinning the
    campaign's identity (seed, count, oracle knobs, planted bug), then
    one [case] record per fuzzed index, appended strictly in index
    order. Appends are one unbuffered [write(2)] each (the oplog
    discipline), so a SIGKILL at any instant leaves a valid prefix:
    {!resume} self-heals the torn tail, reports the surviving cases,
    and continues appending — the finished file is byte-identical to an
    uninterrupted run's. [szc fsck] verifies and repairs it like any
    other container. *)

(** Campaign identity. {!resume} refuses a file whose meta differs —
    resuming under different knobs would silently change what the
    remaining indices compute. *)
type meta = {
  version : int;
  fuzz_seed : int64;
  count : int;
  rand_runs : int;  (** randomization seeds per case (oracle b) *)
  plant : string;  (** planted bug name, ["none"] normally *)
}

type verdict =
  | Clean
  | Trapped  (** trap-seeded case trapped as designed; oracles skipped *)
  | Fail  (** an oracle fired; a reproducer was shrunk and written *)
  | Crashed  (** worker died mid-case (censored) *)
  | Hung  (** watchdog killed the worker (censored) *)

type case = {
  index : int;
  case_seed : int64;
  verdict : verdict;
  oracle : string;  (** which oracle fired, [""] unless [Fail] *)
  detail : string;  (** one-line diagnosis (newlines are sanitized) *)
  repro : string;  (** reproducer file name, [""] unless [Fail] *)
  repro_instrs : int;  (** static instructions in the reproducer *)
  shrink_steps : int;  (** accepted shrink transformations *)
  result : int;  (** O0 return value ([Clean]/[Fail]) *)
  cycles : int;  (** O0 baseline cycles ([Clean]) *)
}

(** The container kind, ["szc-fuzz"]. *)
val kind : string

val verdict_to_string : verdict -> string
val verdict_of_string : string -> verdict option

(** An open ledger, positioned for appending. *)
type t

(** Start a fresh ledger (truncating any existing file): header + meta
    record. *)
val create : path:string -> meta -> (t, string) result

(** Reopen an existing ledger: salvage to the longest valid record
    prefix, truncate any torn tail, check the stored meta against
    [meta], and return the surviving cases (a contiguous index prefix
    [0..k-1]; valid records beyond a gap are dropped and rewritten).
    A missing or empty file degrades to {!create}. *)
val resume : path:string -> meta -> (t * case list, string) result

(** Append one case — one [write(2)], crash-atomic at record
    granularity. Raises [Unix.Unix_error] on real IO failure. *)
val append : t -> case -> unit

val close : t -> unit

(** Strict read: the whole file must parse and checksum. *)
val load : string -> (meta * case list, string) result

(** Lenient read: longest valid prefix plus a salvage note ([None] when
    the file was intact). *)
val recover : string -> (meta * case list * string option, string) result

(** Rewrite as a clean container (atomic + durable) — [szc fsck
    --repair]. *)
val rewrite : string -> meta -> case list -> unit
