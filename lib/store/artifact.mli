(** Durable artifact storage: every file the harness must be able to
    trust after a crash goes through this module.

    Two shapes are supported:

    - {b Record containers} — a magic header line plus a sequence of
      tagged, length-prefixed, CRC-32-checksummed records. Used for the
      supervisor's checkpoints: a torn or bit-flipped file is recovered
      to its longest valid record prefix instead of being lost
      ({!salvage_string}).
    - {b Summed payloads} — the payload bytes verbatim (so CSVs stay
      spreadsheet-loadable and traces stay Chrome-loadable) plus a
      [.sum] sidecar carrying the payload's CRC-32 and length
      ({!write_with_sum} / {!verify_sum}).

    All writes are atomic and durable: the bytes go to [path ^ ".tmp"],
    the temp file is fsynced, renamed over [path], and the parent
    directory is fsynced — so a crash at any point leaves either the
    old complete file or the new complete file, never a torn one.

    {b Storage-fault injection.} A process-wide injector hook
    ({!set_injector}) lets a test harness corrupt writes
    deterministically: keep a prefix (torn write), flip one bit, drop a
    tail (short write), or skip the rename entirely (the crash window
    this module otherwise closes). The injector sees every durable
    write in order, so a seeded stream reproduces the same damage every
    time. See [Stz_faults.Storage] for the seeded profiles. *)

(** One injected storage fault, applied to a single durable write. *)
type fault =
  | Torn_write of int
      (** only the first [k] bytes reach the disk (crash mid-write);
          clamped to the payload length *)
  | Bit_flip of int
      (** bit [i] (of the whole payload, [i mod (8 * len)]) is inverted
          — silent media corruption *)
  | Short_write of int
      (** the last [k] bytes are dropped (a short [write(2)] whose
          return value went unchecked); clamped to the payload length *)
  | Rename_dropped
      (** the temp file is written and fsynced but the rename never
          happens — the pre-existing file (if any) survives intact *)

(** Install / remove the storage-fault injector. The callback observes
    every durable write ([path] and payload [len]) and returns the
    fault to apply, or [None] for a clean write. Process-wide; forked
    workers inherit a copy but never write artifacts. *)
val set_injector : (path:string -> len:int -> fault option) -> unit

val clear_injector : unit -> unit

(** [write_file path contents] — atomic, durable, fault-injectable
    write of [contents] to [path] (tmp + fsync + rename + directory
    fsync). Raises [Sys_error]/[Unix.Unix_error] only on real IO
    failure, never because of an injected fault. *)
val write_file : string -> string -> unit

(** [read_file path] — whole file as a string. *)
val read_file : string -> (string, string) result

(** {1 Record containers} *)

(** The container magic ("%szc-artifact 1"); a file starting with it is
    treated as a container by {!is_container} and [szc fsck]. *)
val magic : string

val is_container : string -> bool

(** Serialize records to container bytes: a header line
    ["%szc-artifact 1 <kind>\n"], then per record
    ["@<tag> <len> <crc32hex>\n<payload>\n"] — the CRC covers the tag
    and the payload, so a single-bit flip anywhere in a record is
    caught. Deterministic: same records, same bytes. *)
val container : kind:string -> (string * string) list -> string

(** The container header line for [kind] alone — what {!container}
    emits before any records. *)
val header_line : kind:string -> string

(** One framed record, exactly as {!container} emits it. Incremental
    writers (the daemon's oplog) append these to a file that started
    with {!header_line}; the result is byte-compatible with
    {!salvage_string}, so a torn tail recovers to the longest valid
    record prefix. *)
val record_string : string * string -> string

(** {!container} composed with {!write_file}. *)
val write_records : string -> kind:string -> (string * string) list -> unit

(** Result of lenient container parsing: the longest prefix of records
    whose framing and CRC both check out. *)
type salvage = {
  kind : string option;
      (** [None] when the header line itself is unrecognizable — the
          file is not a (recoverable) container *)
  records : (string * string) list;  (** [(tag, payload)], valid prefix *)
  valid_bytes : int;  (** bytes covered by the header + valid prefix *)
  total_bytes : int;
  error : string option;
      (** why parsing stopped short, [None] when the whole file parsed
          ([error = None] implies [valid_bytes = total_bytes]; an empty
          or headerless file has an error even at zero valid bytes) *)
}

(** Never raises: any byte string produces a salvage report. *)
val salvage_string : string -> salvage

(** {!salvage_string} over a file; [Error] only on IO failure. *)
val salvage_file : string -> (salvage, string) result

(** Strict read: [Ok (kind, records)] only when the whole container
    parses and every record's CRC matches. *)
val read_records : string -> (string * (string * string) list, string) result

(** {1 Summed payloads} *)

(** [sum_path path = path ^ ".sum"]. *)
val sum_path : string -> string

(** Durable write of the payload plus its sidecar
    ["crc32 <hex> len <n>\n"]. Both writes are fault-injectable. *)
val write_with_sum : string -> string -> unit

(** Verify [path] against its sidecar. [Ok true] when the checksum
    matches, [Ok false] when no sidecar exists (nothing to verify),
    [Error] on mismatch, unreadable payload, or malformed sidecar. *)
val verify_sum : string -> (bool, string) result
