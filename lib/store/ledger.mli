(** The cross-campaign regression history: an append-only, CRC-checked
    {!Artifact} record container (kind ["szc-ledger"]) holding one
    record per finished campaign. Campaign results used to evaporate
    once their CSV was written; the ledger is what lets [szc regress]
    compare today's campaign against last week's baseline without
    re-running anything.

    Each entry keeps the campaign's identity (label, configuration
    fingerprint, base seed) and its summary moments — enough to
    recompute effect-size confidence intervals from the ledger alone.
    Floats are serialized as hexadecimal literals ([%h]), so a value
    written and read back is bit-identical and the regression decision
    is exactly reproducible.

    Appending re-writes the container through {!Artifact.write_file}
    (atomic, durable); existing records are never modified, so the file
    history is append-only even though the bytes are rewritten. A torn
    or bit-flipped ledger salvages to its longest valid entry prefix
    ({!recover}, [szc fsck --repair]). *)

type entry = {
  label : string;  (** benchmark name *)
  fingerprint : string;
      (** full configuration identity: bench, optimization level,
          randomization config, fault profile, scale — campaigns are
          comparable when their labels match, identical when their
          fingerprints do *)
  base_seed : int64;
  runs : int;  (** planned runs *)
  completed : int;
  censored : int;
  mean : float;  (** seconds, over completed runs *)
  sd : float;
  min : float;
  max : float;
  skewness : float;
  kurtosis : float;
  detectable_effect : float;
      (** smallest standardized effect detectable at 0.8 power with
          [completed] runs per side *)
  verdict : string;
      (** the monitor's final stopping verdict, or ["-"] when the
          campaign ran unmonitored *)
}

(** Container kind: ["szc-ledger"]. *)
val kind : string

(** Record payload round-trip (line-oriented [key value] text; floats
    in hexadecimal). [entry_of_payload] rejects malformed payloads. *)
val entry_to_payload : entry -> string

val entry_of_payload : string -> (entry, string) result

(** Strict load: the whole container must parse, every CRC must match.
    [Error] on a missing, corrupt or non-ledger file. *)
val load : string -> (entry list, string) result

(** Lenient load: salvage the longest valid entry prefix of a damaged
    ledger, plus [Some note] describing what was lost ([None] when
    intact). [Error] only when the file is missing or not a ledger. *)
val recover : string -> (entry list * string option, string) result

(** [append path e] adds one entry: creates the ledger when [path] does
    not exist or is empty, otherwise strict-loads it first — a corrupt ledger is
    refused (run [szc fsck --repair]) rather than silently truncated.
    Returns the new entry's sequence number (0-based position). *)
val append : string -> entry -> (int, string) result

(** Durably (re)write a whole ledger — what [fsck --repair] uses to
    rewrite a salvaged prefix. *)
val write : string -> entry list -> unit
