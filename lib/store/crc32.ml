let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let t = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let digest s = update 0l s

let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if String.length s = 0 || String.length s > 8 then None
  else
    let ok =
      String.for_all
        (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
        s
    in
    if not ok then None
    else
      (* Through int64 to survive values with the top bit set. *)
      match Int64.of_string_opt ("0x" ^ s) with
      | Some v -> Some (Int64.to_int32 v)
      | None -> None
