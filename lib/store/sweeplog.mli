(** The layout-sweep ledger: the durable record of a [szc layout sweep]
    campaign, a [%szc-artifact] container of kind ["szc-sweep"].

    Same discipline as {!Fuzzlog}: the container header, one [meta]
    record pinning the sweep's identity, then one [case] record per
    swept index appended strictly in index order with one unbuffered
    [write(2)] each — a SIGKILL at any instant leaves a valid prefix
    that {!resume} self-heals byte-identically. [szc fsck] verifies and
    repairs it like any other container. *)

(** Sweep identity. {!resume} refuses a file whose meta differs. *)
type meta = {
  version : int;
  fuzz_seed : int64;  (** keys the {!Stz_workloads.Fuzz} meta-space *)
  count : int;
  layout_seeds : int;  (** K layout seeds per case (ANOVA treatments) *)
  variants : int;  (** W workload variants per case (ANOVA subjects) *)
  threshold : float;  (** layout η² at or above which a case is shrunk *)
  shrink_budget : int;
}

type verdict =
  | Measured  (** full matrix completed; η² decomposition recorded *)
  | Trapped  (** some cell trapped; case censored, no decomposition *)
  | Crashed  (** worker died mid-case (censored) *)
  | Hung  (** watchdog killed the worker (censored) *)

(** One swept program. Effect-size floats are stored as hex float
    literals, so records round-trip bit-exactly. [structure .. conflict_cycles]
    describe the case's #1 conflict pair (empty/zero when none). *)
type case = {
  index : int;
  case_seed : int64;
  verdict : verdict;
  eta2 : float;  (** classic layout η²: SS_layout / SS_total *)
  partial_eta2 : float;  (** SS_layout / (SS_layout + SS_error) *)
  workload_share : float;  (** SS_subjects / SS_total *)
  residual_share : float;  (** SS_error / SS_total *)
  mean_cycles : int;
  instrs : int;  (** static instruction count of the case program *)
  structure : string;  (** structure of the top conflict pair, or "" *)
  victim : int;  (** fid whose lines/slots were evicted, or -1 *)
  evictor : int;  (** fid doing the evicting, or -1 *)
  conflict_events : int;
  conflict_cycles : int;  (** estimated cycles charged to the top pair *)
  repro : string;  (** reproducer file name, "" unless shrunk *)
  repro_instrs : int;
  shrink_steps : int;
  detail : string;  (** one-line diagnosis (newlines sanitized) *)
}

(** The container kind, ["szc-sweep"]. *)
val kind : string

val verdict_to_string : verdict -> string
val verdict_of_string : string -> verdict option

(** An open ledger, positioned for appending. *)
type t

(** Start a fresh ledger (truncating any existing file). *)
val create : path:string -> meta -> (t, string) result

(** Reopen an existing ledger: salvage to the longest valid prefix,
    truncate any torn tail, check the stored meta, and return the
    surviving cases (a contiguous index prefix). A missing or empty
    file degrades to {!create}. *)
val resume : path:string -> meta -> (t * case list, string) result

(** Append one case — one [write(2)], crash-atomic at record
    granularity. Raises [Unix.Unix_error] on real IO failure. *)
val append : t -> case -> unit

val close : t -> unit

(** Strict read: the whole file must parse and checksum. *)
val load : string -> (meta * case list, string) result

(** Lenient read: longest valid prefix plus a salvage note ([None] when
    the file was intact). *)
val recover : string -> (meta * case list * string option, string) result

(** Rewrite as a clean container (atomic + durable) — [szc fsck
    --repair]. *)
val rewrite : string -> meta -> case list -> unit
