(* Layout-sweep ledger: one meta record plus one case record per swept
   index, appended with the oplog discipline (one unbuffered write(2)
   per record, torn-tail self-heal on reopen) so the file is resumable
   byte-identically after a SIGKILL. Effect sizes are hex-float encoded
   so records round-trip bit-exactly. *)

module A = Artifact

let kind = "szc-sweep"
let meta_tag = "meta"
let case_tag = "case"
let header = A.header_line ~kind

type meta = {
  version : int;
  fuzz_seed : int64;
  count : int;
  layout_seeds : int;
  variants : int;
  threshold : float;
  shrink_budget : int;
}

type verdict = Measured | Trapped | Crashed | Hung

type case = {
  index : int;
  case_seed : int64;
  verdict : verdict;
  eta2 : float;
  partial_eta2 : float;
  workload_share : float;
  residual_share : float;
  mean_cycles : int;
  instrs : int;
  structure : string;
  victim : int;
  evictor : int;
  conflict_events : int;
  conflict_cycles : int;
  repro : string;
  repro_instrs : int;
  shrink_steps : int;
  detail : string;
}

let verdict_to_string = function
  | Measured -> "measured"
  | Trapped -> "trapped"
  | Crashed -> "crashed"
  | Hung -> "hung"

let verdict_of_string = function
  | "measured" -> Some Measured
  | "trapped" -> Some Trapped
  | "crashed" -> Some Crashed
  | "hung" -> Some Hung
  | _ -> None

let sanitize s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

(* %h hex floats print and parse bit-exactly, the history-ledger trick
   that keeps resume byte-identity independent of decimal rounding. *)
let float_str x = Printf.sprintf "%h" x

let meta_to_payload m =
  String.concat "\n"
    [
      "version " ^ string_of_int m.version;
      "fuzz_seed " ^ Int64.to_string m.fuzz_seed;
      "count " ^ string_of_int m.count;
      "layout_seeds " ^ string_of_int m.layout_seeds;
      "variants " ^ string_of_int m.variants;
      "threshold " ^ float_str m.threshold;
      "shrink_budget " ^ string_of_int m.shrink_budget;
    ]

let case_to_payload c =
  String.concat "\n"
    [
      "index " ^ string_of_int c.index;
      "case_seed " ^ Int64.to_string c.case_seed;
      "verdict " ^ verdict_to_string c.verdict;
      "eta2 " ^ float_str c.eta2;
      "partial_eta2 " ^ float_str c.partial_eta2;
      "workload_share " ^ float_str c.workload_share;
      "residual_share " ^ float_str c.residual_share;
      "mean_cycles " ^ string_of_int c.mean_cycles;
      "instrs " ^ string_of_int c.instrs;
      "structure " ^ sanitize c.structure;
      "victim " ^ string_of_int c.victim;
      "evictor " ^ string_of_int c.evictor;
      "conflict_events " ^ string_of_int c.conflict_events;
      "conflict_cycles " ^ string_of_int c.conflict_cycles;
      "repro " ^ sanitize c.repro;
      "repro_instrs " ^ string_of_int c.repro_instrs;
      "shrink_steps " ^ string_of_int c.shrink_steps;
      "detail " ^ sanitize c.detail;
    ]

let fields_of_payload s =
  let tbl = Hashtbl.create 24 in
  List.iter
    (fun line ->
      if line <> "" then
        match String.index_opt line ' ' with
        | Some i ->
            Hashtbl.replace tbl (String.sub line 0 i)
              (String.sub line (i + 1) (String.length line - i - 1))
        | None -> Hashtbl.replace tbl line "")
    (String.split_on_char '\n' s);
  tbl

let ( let* ) = Result.bind

let field tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "sweeplog: missing field %S" key)

let num tbl key conv =
  let* v = field tbl key in
  match conv v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "sweeplog: bad field %S" key)

let meta_of_payload s =
  let tbl = fields_of_payload s in
  let* version = num tbl "version" int_of_string_opt in
  let* fuzz_seed = num tbl "fuzz_seed" Int64.of_string_opt in
  let* count = num tbl "count" int_of_string_opt in
  let* layout_seeds = num tbl "layout_seeds" int_of_string_opt in
  let* variants = num tbl "variants" int_of_string_opt in
  let* threshold = num tbl "threshold" float_of_string_opt in
  let* shrink_budget = num tbl "shrink_budget" int_of_string_opt in
  Ok { version; fuzz_seed; count; layout_seeds; variants; threshold; shrink_budget }

let case_of_payload s =
  let tbl = fields_of_payload s in
  let* index = num tbl "index" int_of_string_opt in
  let* case_seed = num tbl "case_seed" Int64.of_string_opt in
  let* verdict = num tbl "verdict" verdict_of_string in
  let* eta2 = num tbl "eta2" float_of_string_opt in
  let* partial_eta2 = num tbl "partial_eta2" float_of_string_opt in
  let* workload_share = num tbl "workload_share" float_of_string_opt in
  let* residual_share = num tbl "residual_share" float_of_string_opt in
  let* mean_cycles = num tbl "mean_cycles" int_of_string_opt in
  let* instrs = num tbl "instrs" int_of_string_opt in
  let* structure = field tbl "structure" in
  let* victim = num tbl "victim" int_of_string_opt in
  let* evictor = num tbl "evictor" int_of_string_opt in
  let* conflict_events = num tbl "conflict_events" int_of_string_opt in
  let* conflict_cycles = num tbl "conflict_cycles" int_of_string_opt in
  let* repro = field tbl "repro" in
  let* repro_instrs = num tbl "repro_instrs" int_of_string_opt in
  let* shrink_steps = num tbl "shrink_steps" int_of_string_opt in
  let* detail = field tbl "detail" in
  Ok
    {
      index;
      case_seed;
      verdict;
      eta2;
      partial_eta2;
      workload_share;
      residual_share;
      mean_cycles;
      instrs;
      structure;
      victim;
      evictor;
      conflict_events;
      conflict_cycles;
      repro;
      repro_instrs;
      shrink_steps;
      detail;
    }

let decode ~lenient records =
  match records with
  | [] -> Error "sweeplog: empty container (no meta record)"
  | (tag, payload) :: rest ->
      if tag <> meta_tag then
        Error (Printf.sprintf "sweeplog: expected %S first, got %S" meta_tag tag)
      else
        let* meta = meta_of_payload payload in
        let rec cases acc = function
          | [] -> Ok (List.rev acc)
          | (tag, payload) :: rest when tag = case_tag -> (
              match case_of_payload payload with
              | Ok c -> cases (c :: acc) rest
              | Error e -> if lenient then Ok (List.rev acc) else Error e)
          | (tag, _) :: rest ->
              if lenient then cases acc rest
              else Error (Printf.sprintf "sweeplog: unknown record tag %S" tag)
        in
        let* cs = cases [] rest in
        Ok (meta, cs)

(* Only a contiguous index prefix 0..k-1 is trustworthy for resume. *)
let contiguous_prefix cases =
  let rec go next acc = function
    | c :: rest when c.index = next -> go (next + 1) (c :: acc) rest
    | _ -> List.rev acc
  in
  go 0 [] cases

type t = { path : string; mutable fd : Unix.file_descr; mutable closed : bool }

let write_exact fd s =
  let buf = Bytes.of_string s in
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then
      match Unix.write fd buf pos (len - pos) with
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

let meta_record m = A.record_string (meta_tag, meta_to_payload m)
let case_record c = A.record_string (case_tag, case_to_payload c)

let wrap_io path f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "sweeplog %s: %s" path (Unix.error_message e))
  | exception Sys_error e -> Error (Printf.sprintf "sweeplog %s: %s" path e)

let create ~path meta =
  wrap_io path (fun () ->
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      write_exact fd header;
      write_exact fd (meta_record meta);
      { path; fd; closed = false })

(* Hex-float round-tripping makes the threshold comparison exact. *)
let meta_matches a b =
  a.version = b.version && a.fuzz_seed = b.fuzz_seed && a.count = b.count
  && a.layout_seeds = b.layout_seeds
  && a.variants = b.variants
  && Int64.bits_of_float a.threshold = Int64.bits_of_float b.threshold
  && a.shrink_budget = b.shrink_budget

let resume ~path meta =
  if (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0 then
    Result.map (fun t -> (t, [])) (create ~path meta)
  else
    let* text = A.read_file path in
    let s = A.salvage_string text in
    if s.A.kind <> Some kind then
      Error
        (Printf.sprintf "sweeplog %s: not a %s container%s" path kind
           (match s.A.error with Some e -> " (" ^ e ^ ")" | None -> ""))
    else
      let* stored, cases = decode ~lenient:true s.A.records in
      if not (meta_matches stored meta) then
        Error
          (Printf.sprintf
             "sweeplog %s: sweep mismatch (ledger: seed=%Ld count=%d K=%d \
              W=%d; requested: seed=%Ld count=%d K=%d W=%d)"
             path stored.fuzz_seed stored.count stored.layout_seeds
             stored.variants meta.fuzz_seed meta.count meta.layout_seeds
             meta.variants)
      else
        let cases = contiguous_prefix cases in
        (* Rebuild the exact byte prefix an uninterrupted run would
           have at this point. *)
        let good =
          header ^ meta_record stored
          ^ String.concat "" (List.map case_record cases)
        in
        wrap_io path (fun () ->
            let fd =
              Unix.openfile path
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                0o644
            in
            write_exact fd good;
            ({ path; fd; closed = false }, cases))

let append t c =
  if t.closed then invalid_arg "Sweeplog.append: closed";
  write_exact t.fd (case_record c)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let load path =
  let* k, records = A.read_records path in
  if k <> kind then Error "sweeplog: unexpected artifact kind"
  else decode ~lenient:false records

let recover path =
  let* text = A.read_file path in
  if not (A.is_container text) then Error "sweeplog: not a container"
  else
    let s = A.salvage_string text in
    if s.A.kind <> Some kind then
      Error
        (match s.A.error with
        | Some e -> e
        | None -> "sweeplog: unexpected artifact kind")
    else
      let* meta, cases = decode ~lenient:true s.A.records in
      let note =
        match s.A.error with
        | None -> None
        | Some e ->
            Some
              (Printf.sprintf "salvaged %d of %d bytes (%d cases): %s"
                 s.A.valid_bytes s.A.total_bytes (List.length cases) e)
      in
      Ok (meta, cases, note)

let rewrite path meta cases =
  A.write_records path ~kind
    ((meta_tag, meta_to_payload meta)
    :: List.map (fun c -> (case_tag, case_to_payload c)) cases)
