(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320), table
    driven. Artifact records carry this checksum so torn writes and bit
    rot are detected before a corrupted payload reaches a parser. *)

(** [update crc s] folds [s] into a running checksum; [update 0l] of a
    whole string equals {!digest}, and
    [update (update 0l a) b = digest (a ^ b)]. *)
val update : int32 -> string -> int32

(** [digest s = update 0l s]. [digest "123456789" = 0xCBF43926l]. *)
val digest : string -> int32

(** Fixed-width lowercase hex, 8 digits. *)
val to_hex : int32 -> string

(** Parse {!to_hex} output (or any hex up to 8 digits); [None] on
    malformed input. *)
val of_hex : string -> int32 option
