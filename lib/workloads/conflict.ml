module Ir = Stz_vm.Ir
module B = Stz_vm.Builder

let default_args = [ 50 ]
let hot_pair = (1, 2)

(* Sizes are chosen against the default L1I geometry (64 sets x 2 ways
   x 64-byte lines; way span 4096 bytes) AND the code heap's segregated
   size classes, which quantize a function's alignment residue:

   - [wrapper]: 1536 instrs = 6144 bytes (class 8192). It spans the way
     span 1.5 times, so 32 consecutive sets hold two of its lines.
   - [rider]: 240 instrs = 960 bytes (class 1024). Blocks of its class
     are 1024 bytes apart, so each layout seed parks it on one of four
     residues modulo the way span — sometimes inside [wrapper]'s
     double-mapped window (3 lines > 2 ways: every round-robin pass
     thrashes), sometimes clear of it. *)
let wrapper_pairs = 767 (* 1 + 2*767 + 1 = 1536 instrs *)
let rider_pairs = 119 (* 1 + 2*119 + 1 = 240 instrs *)

(* Straight-line integer chain: data-dependent on the argument, so no
   optimization level can fold or dedup it and shrink the footprint. *)
let emit_chain b ~acc ~pairs =
  for k = 1 to pairs do
    let r = B.fresh_reg b in
    B.emit b (Ir.Bin (Ir.Add, r, Ir.Reg acc, Ir.Imm k));
    B.emit b (Ir.Bin (Ir.Xor, acc, Ir.Reg acc, Ir.Reg r))
  done

let gen_straight ~fid ~name ~pairs =
  let b = B.func ~fid ~name ~n_args:1 ~frame_size:32 () in
  let acc = B.fresh_reg b in
  B.emit b (Ir.Mov (acc, Ir.Reg 0));
  emit_chain b ~acc ~pairs;
  B.emit b (Ir.Ret (Ir.Reg acc));
  B.finish b

(* The conflict driver loops in main, alternating wrapper and rider
   every iteration so an overlapping layout reloads the contended sets
   each pass. *)
let program () =
  let wrapper = gen_straight ~fid:1 ~name:"wrapper" ~pairs:wrapper_pairs in
  let rider = gen_straight ~fid:2 ~name:"rider" ~pairs:rider_pairs in
  let main =
    let b = B.func ~fid:0 ~name:"main" ~n_args:1 ~frame_size:32 () in
    let total = B.fresh_reg b in
    let i = B.fresh_reg b in
    B.emit b (Ir.Mov (total, Ir.Imm 0));
    B.emit b (Ir.Mov (i, Ir.Imm 0));
    let head = B.new_block b in
    let body = B.new_block b in
    let exit = B.new_block b in
    B.emit b (Ir.Br head);
    B.set_block b head;
    let c = B.fresh_reg b in
    B.emit b (Ir.Cmp (Ir.Lt, c, Ir.Reg i, Ir.Reg 0));
    B.emit b (Ir.Brc (Ir.Reg c, body, exit));
    B.set_block b body;
    List.iter
      (fun fid ->
        let r = B.fresh_reg b in
        B.emit b (Ir.Call { fn = fid; args = [ Ir.Reg i ]; dst = r });
        B.emit b (Ir.Bin (Ir.Add, total, Ir.Reg total, Ir.Reg r)))
      [ fst hot_pair; snd hot_pair ];
    B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
    B.emit b (Ir.Br head);
    B.set_block b exit;
    B.emit b (Ir.Ret (Ir.Reg total));
    B.finish b
  in
  let p = B.program ~funcs:[ main; wrapper; rider ] ~globals:[] ~entry:0 in
  Stz_vm.Validate.check_exn p;
  p

(* Control twin: each hot function fits well inside one way and runs
   its iteration loop internally, so main's lines stay cold and no set
   ever sees more than two hot lines — there is no third line to evict,
   whatever the layout. *)
let gen_looped ~fid ~name ~pairs =
  let b = B.func ~fid ~name ~n_args:1 ~frame_size:32 () in
  let acc = B.fresh_reg b in
  let i = B.fresh_reg b in
  B.emit b (Ir.Mov (acc, Ir.Reg 0));
  B.emit b (Ir.Mov (i, Ir.Imm 0));
  let head = B.new_block b in
  let body = B.new_block b in
  let exit = B.new_block b in
  B.emit b (Ir.Br head);
  B.set_block b head;
  let c = B.fresh_reg b in
  B.emit b (Ir.Cmp (Ir.Lt, c, Ir.Reg i, Ir.Reg 0));
  B.emit b (Ir.Brc (Ir.Reg c, body, exit));
  B.set_block b body;
  emit_chain b ~acc ~pairs;
  B.emit b (Ir.Bin (Ir.Add, i, Ir.Reg i, Ir.Imm 1));
  B.emit b (Ir.Br head);
  B.set_block b exit;
  B.emit b (Ir.Ret (Ir.Reg acc));
  B.finish b

let control () =
  let a = gen_looped ~fid:1 ~name:"steady_a" ~pairs:rider_pairs in
  let b_fn = gen_looped ~fid:2 ~name:"steady_b" ~pairs:rider_pairs in
  let main =
    let b = B.func ~fid:0 ~name:"main" ~n_args:1 ~frame_size:32 () in
    let total = B.fresh_reg b in
    B.emit b (Ir.Mov (total, Ir.Imm 0));
    List.iter
      (fun fid ->
        let r = B.fresh_reg b in
        B.emit b (Ir.Call { fn = fid; args = [ Ir.Reg 0 ]; dst = r });
        B.emit b (Ir.Bin (Ir.Add, total, Ir.Reg total, Ir.Reg r)))
      [ 1; 2 ];
    B.emit b (Ir.Ret (Ir.Reg total));
    B.finish b
  in
  let p = B.program ~funcs:[ main; a; b_fn ] ~globals:[] ~entry:0 in
  Stz_vm.Validate.check_exn p;
  p
