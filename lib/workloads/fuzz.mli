(** Seed-deterministic sampling of whole generator configurations: the
    meta-space above {!Generate}. Where a {!Profile.t} fixes one point
    in program space, [Fuzz.plan] draws the profile itself — function
    count, loop/phase nesting, branchiness, heap behaviour, code-size
    distribution — from a PRNG keyed by [(fuzz_seed, index)], then
    wraps the generated program with adversarial material the curated
    SPEC clones never produce: a self-recursive function (call-depth
    pressure, never inlinable) and a "mixer" tail of arithmetic whose
    operands are biased toward optimizer edge cases (shift amounts 0,
    1, 63, negative; division by zero) applied to a call result the
    constant folder cannot see through.

    Everything is a pure function of [(fuzz_seed, index)]: the same
    pair always yields the same plan, program, args and limits, on any
    machine — which is what makes a fuzz campaign resumable and its
    ledger byte-reproducible. *)

(** Why a case deliberately runs under tightened interpreter limits:
    trap-seeded cases exercise the censoring path (the fuzzer classifies
    them and skips the oracles rather than raising). *)
type trap_mode =
  | No_trap
  | Tight_fuel of int  (** [max_instructions] override *)
  | Tight_depth of int  (** [max_call_depth] override *)

(** One sampled case. [mixer] is the tail of binary operations folded
    over the accumulator: [(op, None)] uses the program argument as the
    second operand, [(op, Some k)] the immediate [k]. *)
type t = {
  index : int;
  case_seed : int64;  (** derived seed: drives profile and wrapper *)
  profile : Profile.t;
  recursion_depth : int;  (** 0 = no recursive function appended *)
  mixer : (Stz_vm.Ir.binop * int option) list;
  arg : int;  (** the single program argument *)
  trap_mode : trap_mode;
}

(** [plan ~fuzz_seed ~index] — O(1), total, deterministic. *)
val plan : fuzz_seed:int64 -> index:int -> t

(** Materialize the plan: [Generate.program] on the sampled profile,
    plus the recursive function and the mixer entry wrapper. The result
    is validated ({!Stz_vm.Validate.check_exn}) and its functions are
    fid-sorted, so it round-trips through {!Stz_vm.Text}. *)
val build : t -> Stz_vm.Ir.program

(** Arguments for {!Stz_vm.Interp.run} / [Runtime.run]. *)
val args : t -> int list

(** Interpreter limits for the classification run: the defaults, or the
    tightened budget of a trap-seeded plan. *)
val limits : t -> Stz_vm.Interp.limits

(** One-line human summary ("funcs=4 phases=2 rec=17 mixer=9 trap=fuel:1200"). *)
val describe : t -> string
