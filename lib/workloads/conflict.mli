(** Planted conflict workloads for the layout-bias attribution profiler
    ([szc explain]) and its tests.

    {!program} plants a two-function instruction-cache conflict whose
    cost is decided purely by layout. Function [wrapper] is bigger than
    one L1I way (6144 bytes against the default 64-set x 2-way x 64-byte
    geometry), so it wraps the 4 KiB way span and double-maps 32 sets
    all by itself. Function [rider] (960 bytes) sits in a smaller
    allocator size class, so each layout seed drops it on one of four
    1 KiB-spaced alignment residues: in overlapping layouts its lines
    land in [wrapper]'s double-mapped window — three lines contending
    for two ways, thrashing on every iteration of the caller's
    [wrapper]/[rider] round-robin — while in disjoint layouts the run is
    conflict-free. Cycle variance across layout seeds is therefore
    dominated by the layout factor, and the ([wrapper], [rider]) pair
    tops the L1I conflict table.

    {!control} is the conflict-free twin: the same round-robin work,
    but both hot functions fit well inside one way and run their loops
    internally, so no cache set ever holds more than two hot lines in
    any layout — cycle variance across layout seeds is negligible. *)

(** The planted-conflict program. *)
val program : unit -> Stz_vm.Ir.program

(** The conflict-free control twin. *)
val control : unit -> Stz_vm.Ir.program

(** Fids of the planted pair in {!program}: [(wrapper, rider)]. *)
val hot_pair : int * int

(** Arguments for {!Stz_vm.Interp.run}: the iteration count. *)
val default_args : int list
