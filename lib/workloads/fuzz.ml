(* The fuzzer's meta-sampler: draw a whole Profile.t (plus adversarial
   wrapper material) from (fuzz_seed, index). Kept O(1) per case —
   resume at index 100000 must not replay 99999 PRNG streams — by
   mixing the index into the SplitMix seed instead of advancing one
   shared stream. *)

module Ir = Stz_vm.Ir
module B = Stz_vm.Builder
module X = Stz_prng.Xorshift

type trap_mode = No_trap | Tight_fuel of int | Tight_depth of int

type t = {
  index : int;
  case_seed : int64;
  profile : Profile.t;
  recursion_depth : int;
  mixer : (Ir.binop * int option) list;
  arg : int;
  trap_mode : trap_mode;
}

(* Golden-ratio odd constant (SplitMix64's own increment): distinct
   indices land in well-separated SplitMix streams. *)
let gamma = 0x9E3779B97F4A7C15L

let ri rng lo hi = if hi <= lo then lo else lo + X.next_int rng (hi - lo + 1)
let rf rng lo hi = lo +. (X.next_float rng *. (hi -. lo))
let chance rng p = X.next_float rng < p
let pick rng l = List.nth l (X.next_int rng (List.length l))

(* Shift amounts biased toward clamp edges: 1 appears twice because the
   historical [land 62] bug was exactly "shift by 1 becomes shift by
   0"; 63 exercises the 62 cap, -1 the land-63 wrap. *)
let shift_amounts = [ 0; 1; 1; 2; 3; 5; 7; 15; 31; 62; 63; -1 ]
let div_amounts = [ 0; 1; 2; 3; 7; 10 ]

let all_binops =
  [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.And; Ir.Or; Ir.Xor; Ir.Shl; Ir.Shr ]

let sample_profile rng ~name ~gen_seed =
  let functions = ri rng 1 6 in
  let blo = ri rng 1 3 in
  let ilo = ri rng 2 6 in
  let flo = 16 * ri rng 0 4 in
  let alo = 8 * ri rng 1 4 in
  {
    Profile.name;
    functions;
    hot_functions = ri rng 1 functions;
    blocks_per_function = (blo, blo + ri rng 0 5);
    instrs_per_block = (ilo, ilo + ri rng 2 12);
    frame_size_range = (flo, flo + (16 * ri rng 0 4));
    heap_churn = rf rng 0.0 0.5;
    alloc_size_range = (alo, alo + (8 * ri rng 0 16));
    large_arrays = ri rng 0 2;
    heap_data_bias = rf rng 0.0 1.0;
    large_array_size = 64 * ri rng 2 32;
    globals = ri rng 1 4;
    global_size = 64 * ri rng 1 8;
    data_stride = 8 * ri rng 1 8;
    branchiness = rf rng 0.0 0.8;
    leaf_helpers = ri rng 0 3;
    leaf_call_rate = rf rng 0.0 0.6;
    fold_material = ri rng 0 3;
    cse_material = ri rng 0 3;
    dead_functions = ri rng 0 2;
    phases = ri rng 1 3;
    iterations = ri rng 1 4;
    inner_trips = ri rng 1 8;
    seed = gen_seed;
  }

let sample_mixer rng =
  let n = ri rng 4 12 in
  List.init n (fun _ ->
      let op = pick rng all_binops in
      if chance rng 0.30 then (op, None)
      else
        let imm =
          match op with
          | Ir.Shl | Ir.Shr -> pick rng shift_amounts
          | Ir.Div -> pick rng div_amounts
          | _ -> ri rng (-100) 100
        in
        (op, Some imm))

let plan ~fuzz_seed ~index =
  let sm =
    Stz_prng.Splitmix.create
      (Int64.logxor fuzz_seed (Int64.mul (Int64.of_int (index + 1)) gamma))
  in
  let case_seed = Stz_prng.Splitmix.split sm in
  let gen_seed = Stz_prng.Splitmix.split sm in
  let rng = X.create ~seed:(Stz_prng.Splitmix.split sm) in
  let profile =
    sample_profile rng ~name:(Printf.sprintf "fuzz-%d" index) ~gen_seed
  in
  let recursion_depth = if chance rng 0.4 then ri rng 1 40 else 0 in
  let mixer = sample_mixer rng in
  let arg = pick rng [ 0; 1; 2; 7; 42; 255; ri rng 1 100_000 ] in
  let trap_mode =
    if not (chance rng 0.10) then No_trap
    else if chance rng 0.5 then Tight_fuel (ri rng 200 5_000)
    else Tight_depth (ri rng 2 8)
  in
  { index; case_seed; profile; recursion_depth; mixer; arg; trap_mode }

(* rec_f(n) = if n <= 0 then 1 else rec_f(n-1) + 3. Multi-block with a
   (self-)callee, so no inliner ever touches it; its depth is the
   plan's call-depth pressure. *)
let build_rec_func ~fid =
  let b = B.func ~fid ~name:"fuzz_rec" ~n_args:1 ~frame_size:16 () in
  let c = B.fresh_reg b in
  let b_base = B.new_block b in
  let b_rec = B.new_block b in
  B.emit b (Ir.Cmp (Ir.Le, c, Ir.Reg 0, Ir.Imm 0));
  B.emit b (Ir.Brc (Ir.Reg c, b_base, b_rec));
  B.set_block b b_base;
  B.emit b (Ir.Ret (Ir.Imm 1));
  B.set_block b b_rec;
  let t = B.fresh_reg b in
  let r = B.fresh_reg b in
  let s = B.fresh_reg b in
  B.emit b (Ir.Bin (Ir.Sub, t, Ir.Reg 0, Ir.Imm 1));
  B.emit b (Ir.Call { fn = fid; args = [ Ir.Reg t ]; dst = r });
  B.emit b (Ir.Bin (Ir.Add, s, Ir.Reg r, Ir.Imm 3));
  B.emit b (Ir.Ret (Ir.Reg s));
  B.finish b

(* fuzz_entry(arg): acc = old_entry(arg); optionally fold in rec_f;
   then the mixer tail. The accumulator starts as a call result, which
   the constant folder never tracks — so mixer shifts/divides keep a
   genuinely unknown operand all the way through every pipeline. *)
let build_entry plan ~fid ~old_entry ~rec_fid =
  let b = B.func ~fid ~name:"fuzz_entry" ~n_args:1 ~frame_size:16 () in
  let acc = ref (B.fresh_reg b) in
  B.emit b (Ir.Call { fn = old_entry; args = [ Ir.Reg 0 ]; dst = !acc });
  (match rec_fid with
  | None -> ()
  | Some rf ->
      let rv = B.fresh_reg b in
      let mixed = B.fresh_reg b in
      B.emit b
        (Ir.Call { fn = rf; args = [ Ir.Imm plan.recursion_depth ]; dst = rv });
      B.emit b (Ir.Bin (Ir.Xor, mixed, Ir.Reg !acc, Ir.Reg rv));
      acc := mixed);
  List.iter
    (fun (op, operand) ->
      let d = B.fresh_reg b in
      let src = match operand with None -> Ir.Reg 0 | Some k -> Ir.Imm k in
      B.emit b (Ir.Bin (op, d, Ir.Reg !acc, src));
      acc := d)
    plan.mixer;
  B.emit b (Ir.Ret (Ir.Reg !acc));
  B.finish b

let build plan =
  let base = Generate.program plan.profile in
  let n = Array.length base.Ir.funcs in
  let rec_fid = if plan.recursion_depth > 0 then Some n else None in
  let entry_fid = match rec_fid with Some _ -> n + 1 | None -> n in
  let extra =
    (match rec_fid with Some fid -> [ build_rec_func ~fid ] | None -> [])
    @ [ build_entry plan ~fid:entry_fid ~old_entry:base.Ir.entry ~rec_fid ]
  in
  let p =
    {
      Ir.funcs = Array.append base.Ir.funcs (Array.of_list extra);
      globals = base.Ir.globals;
      entry = entry_fid;
    }
  in
  Stz_vm.Validate.check_exn p;
  p

let args plan = [ plan.arg ]

let limits plan =
  match plan.trap_mode with
  | No_trap -> Stz_vm.Interp.default_limits
  | Tight_fuel n -> Stz_vm.Interp.limits ~max_instructions:n ()
  | Tight_depth d -> Stz_vm.Interp.limits ~max_call_depth:d ()

let describe plan =
  let trap =
    match plan.trap_mode with
    | No_trap -> "none"
    | Tight_fuel n -> Printf.sprintf "fuel:%d" n
    | Tight_depth d -> Printf.sprintf "depth:%d" d
  in
  Printf.sprintf
    "funcs=%d phases=%d iters=%d rec=%d mixer=%d arg=%d trap=%s"
    plan.profile.Profile.functions plan.profile.Profile.phases
    plan.profile.Profile.iterations plan.recursion_depth
    (List.length plan.mixer) plan.arg trap
