(** Statistical power analysis for the two-sample t-test. §2.3 of the
    paper: "Statistical power is the probability of correctly rejecting
    a false null hypothesis. Parametric tests typically have greater
    power than non-parametric tests" — and the practical question a
    STABILIZER user faces is "how many runs do I need to detect an
    effect of this size?". Normal approximation to the noncentral t,
    accurate to a run or two for the n >= 10 regime used here. *)

(** [two_sample ~effect ~n ~alpha] is the power of a two-sided
    two-sample t-test with [n] samples *per group* (n >= 1),
    standardized effect size [effect] (Cohen's d) and significance
    level [alpha]. Total over degenerate inputs: an infinite effect
    (all-equal samples with different means) has power 1; a NaN effect
    raises [Invalid_argument] rather than propagating. *)
val two_sample : effect:float -> n:int -> ?alpha:float -> unit -> float

(** [required_runs ~effect ~power ~alpha] is the smallest per-group n
    whose power reaches [power] (default 0.8). An infinite effect needs
    the minimum n = 2. *)
val required_runs : effect:float -> ?power:float -> ?alpha:float -> unit -> int

(** [detectable_effect ~n ~power ~alpha] is the smallest standardized
    effect detectable with [n] runs per group (n >= 1) at the given
    power. *)
val detectable_effect : n:int -> ?power:float -> ?alpha:float -> unit -> float

(** [effect_of_speedup ~speedup ~cv] converts a relative speedup (e.g.
    1.01 for 1%) and a coefficient of variation of the timing samples
    into a standardized effect size: (speedup - 1) / cv. This is how a
    pilot STABILIZER sample translates into power-analysis inputs.
    [cv <= 0] (an all-equal pilot) yields [infinity] for any real
    change and 0 for no change, instead of raising. *)
val effect_of_speedup : speedup:float -> cv:float -> float
