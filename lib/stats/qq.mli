(** Quantile-quantile data against the standard normal, used to render
    the paper's Figure 5. Points lie on a straight line when the sample
    comes from a normal family; the line's slope is the sample scale. *)

type point = { theoretical : float; observed : float }

(** One point per sample: theoretical normal quantile at plotting
    position (i - 0.375)/(n + 0.25) vs the i-th order statistic. The
    sample is optionally normalized: shifted to mean zero and scaled by
    [scale] (the paper normalizes by the re-randomized run's standard
    deviation). *)
val points : ?shift:float -> ?scale:float -> float array -> point array

(** Correlation between theoretical and observed quantiles; values near
    1 indicate normality (this is the basis of the Ryan-Joiner test).
    An all-equal sample (zero spread) yields 0 — no normality evidence
    — instead of NaN. *)
val correlation : float array -> float

(** Slope and intercept of the line through the first and third
    quartiles, as drawn by R's [qqline]. *)
val line : float array -> float * float

(** Render the points as a crude ASCII scatter, [width] x [height]
    characters, for terminal output. *)
val ascii_plot : ?width:int -> ?height:int -> point array -> string
