(** Descriptive statistics over float arrays. Input arrays are never
    modified; functions requiring order work on an internal sorted copy.

    Ordering is {!Float.compare}'s total order: NaNs sort before every
    other value and compare equal to each other, so NaN inputs yield a
    deterministic (if statistically meaningless) result rather than the
    unspecified order a polymorphic sort would give. *)

val mean : float array -> float

(** Unbiased (n-1) sample variance. Requires at least 2 samples. *)
val variance : float array -> float

(** Sample standard deviation. *)
val std_dev : float array -> float

val min : float array -> float
val max : float array -> float
val median : float array -> float

(** [quantile xs q] for q in [0,1], with linear interpolation between
    order statistics (R's default type-7 definition). *)
val quantile : float array -> float -> float

(** Sample skewness (g1, biased moment estimator). *)
val skewness : float array -> float

(** Excess kurtosis (g2, biased moment estimator). *)
val kurtosis : float array -> float

(** Sorted copy of the input ({!Float.compare} order: NaNs first). *)
val sorted : float array -> float array

(** Standard error of the mean. *)
val std_error : float array -> float

(** [geometric_mean xs] requires all-positive samples. *)
val geometric_mean : float array -> float

(** Ranks with ties sharing their average rank (1-based), as used by
    rank-based tests. NaNs rank lowest and tie with each other. *)
val ranks : float array -> float array
