let cohen_d a b =
  if Array.length a < 2 || Array.length b < 2 then
    invalid_arg "Effect.cohen_d: needs >= 2 samples each";
  let na = float_of_int (Array.length a) in
  let nb = float_of_int (Array.length b) in
  let pooled =
    sqrt
      ((((na -. 1.0) *. Desc.variance a) +. ((nb -. 1.0) *. Desc.variance b))
      /. (na +. nb -. 2.0))
  in
  if pooled = 0.0 then invalid_arg "Effect.cohen_d: zero pooled variance";
  (Desc.mean a -. Desc.mean b) /. pooled

let hedges_g a b =
  let n = float_of_int (Array.length a + Array.length b) in
  cohen_d a b *. (1.0 -. (3.0 /. ((4.0 *. n) -. 9.0)))

(* --- Moments-only variants: everything the history ledger stores ---

   A campaign persisted to the regression ledger keeps only its summary
   moments (n, mean, sd), so the cross-campaign comparison must be
   computable — and totally defined — from those alone. *)

type moments = { n : int; mean : float; sd : float }

let moments_of_sample xs =
  {
    n = Array.length xs;
    mean = (if Array.length xs = 0 then 0.0 else Desc.mean xs);
    sd = (if Array.length xs < 2 then 0.0 else Desc.std_dev xs);
  }

let cohen_d_moments a b =
  let na = float_of_int a.n and nb = float_of_int b.n in
  let pooled =
    if a.n + b.n < 3 then 0.0
    else
      sqrt
        ((((na -. 1.0) *. a.sd *. a.sd) +. ((nb -. 1.0) *. b.sd *. b.sd))
        /. (na +. nb -. 2.0))
  in
  let diff = a.mean -. b.mean in
  if pooled > 0.0 then diff /. pooled
  else if diff = 0.0 then 0.0
  else if diff > 0.0 then infinity
  else neg_infinity

let cohen_d_ci_moments ?(confidence = 0.95) a b =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Effect.cohen_d_ci_moments: confidence must be in (0,1)";
  let d = cohen_d_moments a b in
  if Float.is_nan d then invalid_arg "Effect.cohen_d_ci_moments: NaN moments";
  if abs_float d = infinity then (d, d, d)
  else if a.n < 2 || b.n < 2 then (d, neg_infinity, infinity)
  else begin
    (* Large-sample normal approximation to the sampling distribution
       of d (Hedges & Olkin):
       SE² = (na+nb)/(na·nb) + d²/(2(na+nb)). *)
    let na = float_of_int a.n and nb = float_of_int b.n in
    let se =
      sqrt (((na +. nb) /. (na *. nb)) +. (d *. d /. (2.0 *. (na +. nb))))
    in
    let z = Dist.Normal.quantile (1.0 -. ((1.0 -. confidence) /. 2.0)) in
    (d, d -. (z *. se), d +. (z *. se))
  end

(* Two-sided t critical value. *)
let t_critical ~df p =
  Dist.Student_t.quantile ~df (1.0 -. ((1.0 -. p) /. 2.0))

let mean_ci ?(confidence = 0.95) xs =
  if Array.length xs < 2 then invalid_arg "Effect.mean_ci: needs >= 2 samples";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Effect.mean_ci: confidence must be in (0,1)";
  let df = float_of_int (Array.length xs - 1) in
  let half = t_critical ~df confidence *. Desc.std_error xs in
  let m = Desc.mean xs in
  (m -. half, m +. half)

let resample rng xs out =
  let n = Array.length xs in
  for i = 0 to Array.length out - 1 do
    out.(i) <- xs.(Stz_prng.Xorshift.next_int rng n)
  done

let bootstrap_ci ?(confidence = 0.95) ?(resamples = 2000) ~seed ~statistic xs =
  if Array.length xs < 2 then invalid_arg "Effect.bootstrap_ci: needs >= 2 samples";
  let rng = Stz_prng.Xorshift.create ~seed in
  let scratch = Array.make (Array.length xs) 0.0 in
  let stats =
    Array.init resamples (fun _ ->
        resample rng xs scratch;
        statistic scratch)
  in
  let lo = (1.0 -. confidence) /. 2.0 in
  (Desc.quantile stats lo, Desc.quantile stats (1.0 -. lo))

let speedup_ci ?(confidence = 0.95) ?(resamples = 2000) ~seed a b =
  if Array.length a < 2 || Array.length b < 2 then
    invalid_arg "Effect.speedup_ci: needs >= 2 samples each";
  let rng = Stz_prng.Xorshift.create ~seed in
  let sa = Array.make (Array.length a) 0.0 in
  let sb = Array.make (Array.length b) 0.0 in
  let stats =
    Array.init resamples (fun _ ->
        resample rng a sa;
        resample rng b sb;
        Desc.mean sa /. Desc.mean sb)
  in
  let lo = (1.0 -. confidence) /. 2.0 in
  (Desc.quantile stats lo, Desc.quantile stats (1.0 -. lo))
