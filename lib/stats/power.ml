(* Normal approximation: for a two-sided level-alpha test with n per
   group and standardized effect d, the noncentrality parameter is
   delta = d * sqrt(n/2); power ~ Phi(delta - z_(1-alpha/2)) (the other
   tail is negligible for the effects of interest).

   Every entry point is total over its documented domain: degenerate
   inputs (n = 1, zero variability, infinite effects from all-equal
   pilot samples) return the defined limit value instead of NaN or an
   exception, so a live monitor or report line never crashes on a
   degenerate campaign. *)

let two_sample ~effect ~n ?(alpha = 0.05) () =
  if n < 1 then invalid_arg "Power.two_sample: n must be >= 1";
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Power.two_sample: alpha must be in (0,1)";
  if Float.is_nan effect then invalid_arg "Power.two_sample: effect is NaN";
  let d = abs_float effect in
  if d = infinity then 1.0
  else begin
    let delta = d *. sqrt (float_of_int n /. 2.0) in
    let z_crit = Dist.Normal.quantile (1.0 -. (alpha /. 2.0)) in
    let upper = Dist.Normal.cdf (delta -. z_crit) in
    let lower = Dist.Normal.cdf (-.delta -. z_crit) in
    Stdlib.min 1.0 (upper +. lower)
  end

let required_runs ~effect ?(power = 0.8) ?(alpha = 0.05) () =
  if Float.is_nan effect then invalid_arg "Power.required_runs: effect is NaN";
  if abs_float effect <= 0.0 then
    invalid_arg "Power.required_runs: effect must be non-zero";
  if power <= 0.0 || power >= 1.0 then
    invalid_arg "Power.required_runs: power must be in (0,1)";
  if abs_float effect = infinity then 2
  else begin
    (* Closed-form seed, then walk to the exact threshold. *)
    let z_a = Dist.Normal.quantile (1.0 -. (alpha /. 2.0)) in
    let z_b = Dist.Normal.quantile power in
    let seed =
      int_of_float (ceil (2.0 *. ((z_a +. z_b) /. abs_float effect) ** 2.0))
    in
    let n = ref (Stdlib.max 2 (seed - 3)) in
    while two_sample ~effect ~n:!n ~alpha () < power && !n < 100_000_000 do
      incr n
    done;
    !n
  end

let detectable_effect ~n ?(power = 0.8) ?(alpha = 0.05) () =
  if n < 1 then invalid_arg "Power.detectable_effect: n must be >= 1";
  let lo = ref 0.0 and hi = ref 100.0 in
  for _ = 1 to 200 do
    let mid = (!lo +. !hi) /. 2.0 in
    if two_sample ~effect:mid ~n ~alpha () < power then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2.0

let effect_of_speedup ~speedup ~cv =
  if Float.is_nan speedup || Float.is_nan cv then
    invalid_arg "Power.effect_of_speedup: NaN input";
  if cv <= 0.0 then
    (* Zero variability: any real change is infinitely many standard
       deviations; no change is no effect. *)
    if speedup = 1.0 then 0.0 else infinity
  else abs_float (speedup -. 1.0) /. cv
