(** The Wilcoxon signed-rank test, the paper's non-parametric fallback
    for benchmarks whose execution times fail the normality check (§6).
    Uses the normal approximation with tie and continuity corrections,
    adequate for the n = 30 sample sizes used throughout. *)

type result = {
  w : float;  (** signed-rank statistic (min of W+ and W-) *)
  z : float;
      (** normal-approximation z-score; on the exact path, the
          equivalent normal deviate of the exact p-value, so exact and
          approximate results read alike *)
  p_value : float;
      (** two-sided p-value. The exact path uses
          2 min(P(W <= w), P(W >= w)) capped at 1 — doubling only the
          lower tail would double-count the discrete atom at w *)
  n_effective : int;  (** pairs remaining after dropping zero differences *)
  exact : bool;
      (** true when the p-value came from the exact null distribution of
          W+ (used for n <= 25 with no ties in |differences|) rather
          than the normal approximation *)
}

(** Paired test; arrays must have equal length. Raises [Invalid_argument]
    on NaN differences — a silent NaN would otherwise corrupt the ranks. *)
val signed_rank : float array -> float array -> result

(** One-sample variant against a hypothesized median [mu]. *)
val one_sample : mu:float -> float array -> result

(** Mann-Whitney U (rank-sum) test for two independent samples, with
    normal approximation. Raises [Invalid_argument] on NaN inputs. *)
val rank_sum : float array -> float array -> result

(** [exact_cdf ~n w] is P(W+ <= w) under the signed-rank null for [n]
    untied pairs (exposed for tests; O(n^3) dynamic program). *)
val exact_cdf : n:int -> float -> float
