let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Desc." ^ name ^ ": empty input")

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  if Array.length xs < 2 then invalid_arg "Desc.variance: needs >= 2 samples";
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs - 1)

let std_dev xs = sqrt (variance xs)

let min xs =
  check_nonempty "min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let sorted xs =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  copy

let quantile xs q =
  check_nonempty "quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Desc.quantile: q must be in [0,1]";
  let s = sorted xs in
  let n = Array.length s in
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  s.(lo) +. ((h -. float_of_int lo) *. (s.(hi) -. s.(lo)))

let median xs = quantile xs 0.5

let central_moment xs k =
  let m = mean xs in
  Array.fold_left (fun a x -> a +. ((x -. m) ** float_of_int k)) 0.0 xs
  /. float_of_int (Array.length xs)

let skewness xs =
  check_nonempty "skewness" xs;
  let m2 = central_moment xs 2 in
  if m2 = 0.0 then 0.0 else central_moment xs 3 /. (m2 ** 1.5)

let kurtosis xs =
  check_nonempty "kurtosis" xs;
  let m2 = central_moment xs 2 in
  if m2 = 0.0 then 0.0 else (central_moment xs 4 /. (m2 *. m2)) -. 3.0

let std_error xs = std_dev xs /. sqrt (float_of_int (Array.length xs))

let geometric_mean xs =
  check_nonempty "geometric_mean" xs;
  let acc =
    Array.fold_left
      (fun a x ->
        if x <= 0.0 then
          invalid_arg "Desc.geometric_mean: requires positive samples"
        else a +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))

let ranks xs =
  check_nonempty "ranks" xs;
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare xs.(i) xs.(j)) order;
  let result = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    (* Find the run of ties starting at !i and give each its average rank. *)
    let j = ref !i in
    while !j + 1 < n && Float.compare xs.(order.(!j + 1)) xs.(order.(!i)) = 0 do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      result.(order.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  result
