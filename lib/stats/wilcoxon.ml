type result = {
  w : float;
  z : float;
  p_value : float;
  n_effective : int;
  exact : bool;
}

(* counts.(s) = number of subsets of {1..n} with rank sum s. *)
let signed_rank_counts n =
  let max_sum = n * (n + 1) / 2 in
  let counts = Array.make (max_sum + 1) 0.0 in
  counts.(0) <- 1.0;
  for rank = 1 to n do
    for s = max_sum downto rank do
      counts.(s) <- counts.(s) +. counts.(s - rank)
    done
  done;
  counts

let exact_cdf ~n w =
  if n < 1 then invalid_arg "Wilcoxon.exact_cdf: n must be >= 1";
  let counts = signed_rank_counts n in
  let limit = Stdlib.min (Array.length counts - 1) (int_of_float (floor w)) in
  let acc = ref 0.0 in
  for s = 0 to Stdlib.max (-1) limit do
    acc := !acc +. counts.(s)
  done;
  !acc /. (2.0 ** float_of_int n)

let check_finite name xs =
  Array.iter
    (fun x ->
      if Float.is_nan x then invalid_arg ("Wilcoxon." ^ name ^ ": NaN input"))
    xs

let signed_rank_of_diffs diffs =
  check_finite "signed_rank" diffs;
  let nonzero = Array.of_list (List.filter (fun d -> d <> 0.0) (Array.to_list diffs)) in
  let n = Array.length nonzero in
  if n < 2 then invalid_arg "Wilcoxon: fewer than 2 non-zero differences";
  let abs_diffs = Array.map abs_float nonzero in
  let rks = Desc.ranks abs_diffs in
  let w_plus = ref 0.0 in
  let w_minus = ref 0.0 in
  Array.iteri
    (fun i d -> if d > 0.0 then w_plus := !w_plus +. rks.(i)
                else w_minus := !w_minus +. rks.(i))
    nonzero;
  let w = Stdlib.min !w_plus !w_minus in
  let fn = float_of_int n in
  let mean = fn *. (fn +. 1.0) /. 4.0 in
  (* Tie correction on the variance: subtract sum(t^3 - t)/48 over tie
     groups of the absolute differences. *)
  let sorted = Desc.sorted abs_diffs in
  let tie_term = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && Float.compare sorted.(!j + 1) sorted.(!i) = 0 do
      incr j
    done;
    let t = float_of_int (!j - !i + 1) in
    if t > 1.0 then tie_term := !tie_term +. ((t *. t *. t) -. t);
    i := !j + 1
  done;
  (* With no ties and modest n, use the exact null distribution of W+
     rather than the normal approximation. *)
  let has_ties = !tie_term > 0.0 in
  if (not has_ties) && n <= 25 then begin
    (* Two-sided p = 2 min(P(W <= w), P(W >= w)), capped at 1 — doubling
       only the lower tail double-counts the atom at w itself (the
       distribution is discrete) and overshoots 1 near the center.
       With no ties W is integral, so P(W >= w) = 1 - P(W <= w-1). *)
    let cdf_le = exact_cdf ~n w in
    let cdf_ge = 1.0 -. exact_cdf ~n (w -. 1.0) in
    let p = Stdlib.min 1.0 (2.0 *. Stdlib.min cdf_le cdf_ge) in
    (* The z a normal approximation would have needed to produce this
       p, so callers can treat exact and approximate results alike. *)
    let z = Dist.Normal.quantile (Stdlib.max 1e-300 (p /. 2.0)) in
    { w; z; p_value = p; n_effective = n; exact = true }
  end
  else begin
    let var =
      (fn *. (fn +. 1.0) *. ((2.0 *. fn) +. 1.0) /. 24.0) -. (!tie_term /. 48.0)
    in
    (* Continuity correction of 0.5 toward the mean. *)
    let z = (w -. mean +. 0.5) /. sqrt var in
    let p = 2.0 *. Dist.Normal.cdf z in
    { w; z; p_value = Stdlib.min 1.0 p; n_effective = n; exact = false }
  end

let signed_rank a b =
  if Array.length a <> Array.length b then
    invalid_arg "Wilcoxon.signed_rank: arrays must have equal length";
  signed_rank_of_diffs (Array.init (Array.length a) (fun i -> a.(i) -. b.(i)))

let one_sample ~mu xs = signed_rank_of_diffs (Array.map (fun x -> x -. mu) xs)

let rank_sum a b =
  check_finite "rank_sum" a;
  check_finite "rank_sum" b;
  let na = Array.length a and nb = Array.length b in
  if na < 2 || nb < 2 then invalid_arg "Wilcoxon.rank_sum: needs >= 2 samples each";
  let combined = Array.append a b in
  let rks = Desc.ranks combined in
  let r1 = ref 0.0 in
  for i = 0 to na - 1 do r1 := !r1 +. rks.(i) done;
  let fa = float_of_int na and fb = float_of_int nb in
  let u1 = !r1 -. (fa *. (fa +. 1.0) /. 2.0) in
  let u = Stdlib.min u1 ((fa *. fb) -. u1) in
  let mean = fa *. fb /. 2.0 in
  let nt = fa +. fb in
  (* Tie correction over the combined sample. *)
  let sorted = Desc.sorted combined in
  let tie_term = ref 0.0 in
  let i = ref 0 in
  let n = na + nb in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && Float.compare sorted.(!j + 1) sorted.(!i) = 0 do
      incr j
    done;
    let t = float_of_int (!j - !i + 1) in
    if t > 1.0 then tie_term := !tie_term +. ((t *. t *. t) -. t);
    i := !j + 1
  done;
  let var =
    fa *. fb /. 12.0 *. ((nt +. 1.0) -. (!tie_term /. (nt *. (nt -. 1.0))))
  in
  let z = (u -. mean +. 0.5) /. sqrt var in
  let p = 2.0 *. Dist.Normal.cdf z in
  { w = u; z; p_value = Stdlib.min 1.0 p; n_effective = n; exact = false }
