(** Effect sizes and confidence intervals: the paper argues that
    significance alone is not enough — researchers also need effect
    magnitude. These helpers complement the hypothesis tests. *)

(** Cohen's d for two independent samples (pooled standard deviation).
    Conventional bands: 0.2 small, 0.5 medium, 0.8 large. *)
val cohen_d : float array -> float array -> float

(** Hedges' g: Cohen's d with the small-sample bias correction
    factor (1 - 3 / (4 (n1 + n2) - 9)). *)
val hedges_g : float array -> float array -> float

(** Summary moments of one sample — all a regression-history ledger
    entry keeps, and all the cross-campaign comparison needs. *)
type moments = { n : int; mean : float; sd : float }

(** Total: empty samples yield n = 0, mean = 0, sd = 0 (and n < 2 keeps
    sd = 0). *)
val moments_of_sample : float array -> moments

(** Cohen's d computed from summary moments alone. Totally defined:
    zero pooled spread yields 0 when the means agree and ±infinity when
    they differ (a deterministic difference is infinitely many standard
    deviations), never NaN. Positive when [a]'s mean is larger. *)
val cohen_d_moments : moments -> moments -> float

(** [(d, low, high)]: d plus its large-sample (Hedges–Olkin) confidence
    interval, SE² = (na+nb)/(na·nb) + d²/(2(na+nb)) (default confidence
    0.95). Degenerate cases stay defined: an infinite d has the
    point interval (d, d); n < 2 on either side gives the vacuous
    interval (-inf, inf) — no conclusion can exclude anything. *)
val cohen_d_ci_moments :
  ?confidence:float -> moments -> moments -> float * float * float

(** [mean_ci ?confidence xs] is the t-based confidence interval
    (low, high) for the mean (default confidence 0.95). Needs >= 2
    samples. *)
val mean_ci : ?confidence:float -> float array -> float * float

(** [bootstrap_ci ?confidence ?resamples ~seed ~statistic xs] is a
    percentile bootstrap interval for an arbitrary statistic (default
    2000 resamples). Deterministic given [seed]. *)
val bootstrap_ci :
  ?confidence:float ->
  ?resamples:int ->
  seed:int64 ->
  statistic:(float array -> float) ->
  float array ->
  float * float

(** [speedup_ci ?confidence ?resamples ~seed a b] bootstraps the ratio
    mean(a)/mean(b), the paper's speedup metric. *)
val speedup_ci :
  ?confidence:float ->
  ?resamples:int ->
  seed:int64 ->
  float array ->
  float array ->
  float * float
